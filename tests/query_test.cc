#include <gtest/gtest.h>

#include "query/classify.h"
#include "query/edge_cover.h"
#include "query/hypergraph.h"
#include "query/join_tree.h"

namespace emjoin::query {
namespace {

TEST(HypergraphTest, LineFactoryShape) {
  const JoinQuery q = JoinQuery::Line(4, {10, 20, 30, 40});
  EXPECT_EQ(q.num_edges(), 4u);
  EXPECT_EQ(q.edge(1), Schema({1, 2}));
  EXPECT_EQ(q.size(2), 30u);
  EXPECT_EQ(q.attrs().size(), 5u);
}

TEST(HypergraphTest, StarFactoryShape) {
  const JoinQuery q = JoinQuery::Star(3);
  EXPECT_EQ(q.num_edges(), 4u);
  EXPECT_EQ(q.edge(0), Schema({0, 1, 2}));
  EXPECT_EQ(q.edge(2), Schema({1, 4}));
}

TEST(HypergraphTest, BergeAcyclicity) {
  EXPECT_TRUE(JoinQuery::Line(5).IsBergeAcyclic());
  EXPECT_TRUE(JoinQuery::Star(4).IsBergeAcyclic());

  // Triangle: cyclic.
  JoinQuery tri;
  tri.AddRelation(Schema({0, 1}));
  tri.AddRelation(Schema({1, 2}));
  tri.AddRelation(Schema({0, 2}));
  EXPECT_FALSE(tri.IsBergeAcyclic());

  // Two relations sharing two attributes: Berge-cyclic (§1.3).
  JoinQuery two;
  two.AddRelation(Schema({0, 1, 2}));
  two.AddRelation(Schema({1, 2}));
  EXPECT_FALSE(two.IsBergeAcyclic());

  // alpha-acyclic but Berge-cyclic: R(a,b,c) with pairwise edges.
  JoinQuery alpha;
  alpha.AddRelation(Schema({0, 1, 2}));
  alpha.AddRelation(Schema({0, 1}));
  EXPECT_FALSE(alpha.IsBergeAcyclic());
}

TEST(HypergraphTest, ConnectivityAndComponents) {
  JoinQuery q;
  q.AddRelation(Schema({0, 1}));
  q.AddRelation(Schema({1, 2}));
  q.AddRelation(Schema({5, 6}));
  EXPECT_FALSE(q.IsConnected());
  const auto comps = q.ConnectedComponents({0, 1, 2});
  EXPECT_EQ(comps.size(), 2u);
  EXPECT_EQ(q.ConnectedComponents({0, 2}).size(), 2u);
  EXPECT_EQ(q.ConnectedComponents({0, 1}).size(), 1u);
}

TEST(HypergraphTest, WithoutEdgeAndAttrs) {
  const JoinQuery q = JoinQuery::Line(3, {1, 2, 3});
  const JoinQuery q2 = q.WithoutEdge(1);
  EXPECT_EQ(q2.num_edges(), 2u);
  EXPECT_EQ(q2.size(1), 3u);

  const JoinQuery q3 = q.WithoutAttrs({1, 2});
  // e1 = {0}, e2 dropped (empty), e3 = {2,3} -> {3} wait: attrs 1,2 removed.
  EXPECT_EQ(q3.num_edges(), 2u);
  EXPECT_EQ(q3.edge(0), Schema({0}));
  EXPECT_EQ(q3.edge(1), Schema({3}));
}

TEST(ClassifyTest, LineRoles) {
  const JoinQuery q = JoinQuery::Line(3);
  EXPECT_EQ(ClassifyEdge(q, 0), EdgeKind::kLeaf);
  EXPECT_EQ(ClassifyEdge(q, 1), EdgeKind::kInternal);
  EXPECT_EQ(ClassifyEdge(q, 2), EdgeKind::kLeaf);
  const LeafInfo info = DescribeLeaf(q, 0);
  EXPECT_EQ(info.join_attr, 1u);
  EXPECT_EQ(info.unique_attrs, (std::vector<AttrId>{0}));
  EXPECT_EQ(info.neighbors, (std::vector<EdgeId>{1}));
}

TEST(ClassifyTest, IslandsAndBuds) {
  JoinQuery q;
  q.AddRelation(Schema({0, 1}));  // island (nothing shared)
  q.AddRelation(Schema({2}));     // bud with the next edge
  q.AddRelation(Schema({2, 3}));  // leaf
  EXPECT_EQ(ClassifyEdge(q, 0), EdgeKind::kIsland);
  EXPECT_EQ(ClassifyEdge(q, 1), EdgeKind::kBud);
  EXPECT_EQ(ClassifyEdge(q, 2), EdgeKind::kLeaf);
  EXPECT_EQ(EdgesOfKind(q, EdgeKind::kBud), (std::vector<EdgeId>{1}));
}

TEST(ClassifyTest, StarDetectionOnL3) {
  // L3's middle edge is the core of stars {e1,e2}, {e2,e3}, and the
  // standalone 2-petal star (§4.4).
  const JoinQuery q = JoinQuery::Line(3);
  const std::vector<Star> stars = FindStars(q);
  ASSERT_FALSE(stars.empty());
  int one_petal = 0, two_petal = 0;
  for (const Star& s : stars) {
    EXPECT_EQ(s.core, 1u);
    if (s.petals.size() == 1) ++one_petal;
    if (s.petals.size() == 2) ++two_petal;
  }
  EXPECT_EQ(one_petal, 2);
  EXPECT_EQ(two_petal, 1);
}

TEST(ClassifyTest, StarDetectionOnStandaloneStar) {
  const JoinQuery q = JoinQuery::Star(3);
  const std::vector<Star> stars = FindStars(q);
  bool found_full = false;
  for (const Star& s : stars) {
    if (s.core == 0 && s.petals.size() == 3 && !s.outward_attr.has_value()) {
      found_full = true;
    }
  }
  EXPECT_TRUE(found_full);
}

TEST(ClassifyTest, NoStarInLine2) {
  // L2: two leaves, no edge without unique attributes.
  EXPECT_TRUE(FindStars(JoinQuery::Line(2)).empty());
}

TEST(EdgeCoverTest, OptimalCoverIsIntegralAndMinimal) {
  // L3 with N = (10, 1000, 10): optimal cover {e1, e3} (x2 = 0).
  const JoinQuery q = JoinQuery::Line(3, {10, 1000, 10});
  const EdgeCover cover = OptimalEdgeCover(q);
  EXPECT_EQ(cover.edges, (std::vector<EdgeId>{0, 2}));
  EXPECT_NEAR(static_cast<double>(cover.product), 100.0, 1e-6);
  EXPECT_NEAR(static_cast<double>(AgmBound(q)), 100.0, 1e-6);
}

TEST(EdgeCoverTest, L4CoverDependsOnSizes) {
  // (1,0,1,1) vs (1,1,0,1) depending on N2 vs N3.
  const EdgeCover a = OptimalEdgeCover(JoinQuery::Line(4, {10, 10, 99, 10}));
  EXPECT_EQ(a.edges, (std::vector<EdgeId>{0, 1, 3}));
  const EdgeCover b = OptimalEdgeCover(JoinQuery::Line(4, {10, 99, 10, 10}));
  EXPECT_EQ(b.edges, (std::vector<EdgeId>{0, 2, 3}));
}

TEST(EdgeCoverTest, StarCoverIsPetals) {
  // Star with small petals: covering with petals beats using the core
  // (the core has no unique attributes, so the petals are forced anyway).
  const JoinQuery q = JoinQuery::Star(3, {100, 5, 5, 5});
  const EdgeCover cover = OptimalEdgeCover(q);
  EXPECT_EQ(cover.edges, (std::vector<EdgeId>{1, 2, 3}));
}

TEST(EdgeCoverTest, GreedyMinEdgeCoverOnLines) {
  // Minimum edge cover of L_n has ceil(n+1 attrs / ...) = the alternating
  // pattern: L3 -> {e1, e3}; L5 -> {e1, e3, e5}; L4 -> 3 edges.
  EXPECT_EQ(GreedyMinEdgeCover(JoinQuery::Line(3)).size(), 2u);
  EXPECT_EQ(GreedyMinEdgeCover(JoinQuery::Line(5)).size(), 3u);
  EXPECT_EQ(GreedyMinEdgeCover(JoinQuery::Line(4)).size(), 3u);
  EXPECT_EQ(GreedyMinEdgeCover(JoinQuery::Star(3)).size(), 3u);
}

TEST(EdgeCoverTest, IsEdgeCover) {
  const JoinQuery q = JoinQuery::Line(3);
  EXPECT_TRUE(IsEdgeCover(q, {0, 2}));
  EXPECT_FALSE(IsEdgeCover(q, {0, 1}));
  EXPECT_TRUE(IsEdgeCover(q, {0, 1, 2}));
}

TEST(JoinTreeTest, LineTreeIsAPath) {
  const JoinQuery q = JoinQuery::Line(4);
  const JoinTree tree = BuildJoinTree(q);
  EXPECT_EQ(tree.roots.size(), 1u);
  EXPECT_EQ(tree.bottom_up.size(), 4u);
  // Each non-root's parent shares exactly the line attribute.
  for (EdgeId e = 0; e < 4; ++e) {
    if (tree.parent[e] >= 0) {
      const Schema& a = q.edge(e);
      const Schema& b = q.edge(static_cast<EdgeId>(tree.parent[e]));
      EXPECT_EQ(a.CommonAttrs(b).size(), 1u);
      EXPECT_EQ(a.CommonAttrs(b).front(), tree.parent_attr[e]);
    }
  }
}

TEST(JoinTreeTest, DisconnectedQueryYieldsForest) {
  JoinQuery q;
  q.AddRelation(Schema({0, 1}));
  q.AddRelation(Schema({2, 3}));
  const JoinTree tree = BuildJoinTree(q);
  EXPECT_EQ(tree.roots.size(), 2u);
}

TEST(JoinTreeTest, BottomUpOrderPutsChildrenFirst) {
  const JoinQuery q = JoinQuery::Star(3);
  const JoinTree tree = BuildJoinTree(q);
  std::vector<bool> seen(q.num_edges(), false);
  for (EdgeId e : tree.bottom_up) {
    for (EdgeId c : tree.children[e]) EXPECT_TRUE(seen[c]);
    seen[e] = true;
  }
}

}  // namespace
}  // namespace emjoin::query
