// Tests for src/parallel: the worker pool, the shard plan, and the
// sharded join's three contracts — correctness (union of shard joins ==
// the serial join), determinism (the emitted byte sequence and every
// per-shard I/O count are pure functions of the inputs and K, never of
// the worker count or thread interleaving), and containment (one
// shard's typed failure surfaces as the whole query's Status, with
// nothing emitted and independent, replayable per-shard fault seeds).
#include "parallel/parallel_join.h"

#include <atomic>
#include <numeric>

#include <gtest/gtest.h>

#include "core/dispatch.h"
#include "core/reference.h"
#include "metrics/registry.h"
#include "parallel/shard_plan.h"
#include "parallel/worker_pool.h"
#include "tests/test_util.h"
#include "trace/tracer.h"
#include "workload/random_instance.h"

namespace emjoin::parallel {
namespace {

std::vector<storage::Relation> Line3Instance(extmem::Device* dev,
                                             double zipf_s = 0.0) {
  workload::RandomOptions opts;
  opts.seed = 42;
  opts.domain_size = 64;
  opts.zipf_s = zipf_s;
  return workload::RandomInstance(dev, query::JoinQuery::Line(3),
                                  {300, 300, 300}, opts);
}

// ---------------------------------------------------------------------
// WorkerPool.
// ---------------------------------------------------------------------

TEST(WorkerPoolTest, RunsEveryTaskAtEachWorkerCount) {
  for (const std::uint32_t workers : {1u, 2u, 8u}) {
    WorkerPool pool(workers);
    EXPECT_EQ(pool.workers(), workers);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(ran.load(), 100);
    // The pool is reusable after a barrier.
    pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    pool.Wait();
    EXPECT_EQ(ran.load(), 101);
  }
}

TEST(WorkerPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    WorkerPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // No Wait(): ~WorkerPool must finish the queue before joining.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(WorkerPoolTest, ClampsZeroWorkersToOne) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.workers(), 1u);
}

// ---------------------------------------------------------------------
// ShardPlan.
// ---------------------------------------------------------------------

TEST(ShardPlanTest, ShardOfValueIsDeterministicAndCoversAllShards) {
  for (const std::uint32_t k : {2u, 4u, 8u}) {
    std::vector<std::uint64_t> hits(k, 0);
    for (Value v = 0; v < 1000; ++v) {
      const std::uint32_t s = ShardOfValue(v, k);
      ASSERT_LT(s, k);
      EXPECT_EQ(s, ShardOfValue(v, k));  // pure function of (v, k)
      ++hits[s];
    }
    // The mixer must not send consecutive small values (what the
    // workload generators produce) to a strict subset of shards.
    for (const std::uint64_t h : hits) EXPECT_GT(h, 0u);
  }
}

TEST(ShardPlanTest, PicksTheAttributeCoveringTheMostData) {
  extmem::Device dev(64, 4);
  // L3 = e0(v0,v1) |><| e1(v1,v2) |><| e2(v2,v3), with e0 and e1 large:
  // attr 1 covers 16 tuples, attr 2 covers 10, so attr 1 partitions and
  // only broadcast-relation e2 is replicated.
  auto mk = [&](std::vector<storage::AttrId> attrs, std::size_t n) {
    std::vector<storage::Tuple> rows;
    for (std::size_t i = 0; i < n; ++i) {
      rows.push_back({Value(i), Value(i + 1)});
    }
    return test::MakeRel(&dev, std::move(attrs), std::move(rows));
  };
  const std::vector<storage::Relation> rels = {mk({0, 1}, 8), mk({1, 2}, 8),
                                               mk({2, 3}, 2)};
  const ShardPlan plan = PlanShards(rels, 4);
  EXPECT_EQ(plan.shards, 4u);
  EXPECT_EQ(plan.partition_attr, storage::AttrId{1});
  ASSERT_EQ(plan.partitioned.size(), 3u);
  EXPECT_TRUE(plan.partitioned[0]);
  EXPECT_TRUE(plan.partitioned[1]);
  EXPECT_FALSE(plan.partitioned[2]);
  // Budget splits M across shards, floored at one block.
  EXPECT_EQ(plan.shard_memory, TupleCount{16});
  extmem::Device tiny(8, 4);
  const ShardPlan floor_plan =
      PlanShards({test::MakeRel(&tiny, {0, 1}, {{1, 2}})}, 4);
  EXPECT_EQ(floor_plan.shard_memory, TupleCount{4});
}

TEST(ShardPlanTest, FragmentsPartitionTheInputExactly) {
  extmem::Device src(64, 4);
  const std::vector<storage::Relation> rels = Line3Instance(&src);
  const ShardPlan plan = PlanShards(rels, 4);
  std::vector<std::unique_ptr<extmem::Device>> devs;
  std::vector<extmem::Device*> dev_ptrs;
  for (int i = 0; i < 4; ++i) {
    devs.push_back(
        std::make_unique<extmem::Device>(plan.shard_memory, src.B()));
    dev_ptrs.push_back(devs.back().get());
  }
  const auto frags = PartitionRelations(rels, plan, dev_ptrs);
  ASSERT_EQ(frags.size(), 4u);
  for (std::size_t r = 0; r < rels.size(); ++r) {
    TupleCount total = 0;
    for (std::size_t s = 0; s < 4; ++s) {
      ASSERT_EQ(frags[s].size(), rels.size());
      EXPECT_EQ(frags[s][r].schema().attrs(), rels[r].schema().attrs());
      total += frags[s][r].size();
    }
    // Partitioned relations split without loss or duplication;
    // broadcast relations appear once per shard.
    EXPECT_EQ(total, plan.partitioned[r] ? rels[r].size()
                                         : rels[r].size() * 4);
  }
}

// ---------------------------------------------------------------------
// TryParallelJoinAuto: correctness.
// ---------------------------------------------------------------------

TEST(ParallelJoinTest, ShardedJoinMatchesSerialResults) {
  for (const std::uint32_t k : {2u, 3u, 4u, 8u}) {
    extmem::Device dev(64, 4);
    const std::vector<storage::Relation> rels = Line3Instance(&dev);
    const std::vector<std::vector<Value>> expected =
        core::ReferenceJoin(rels);

    core::CollectingSink sink;
    ParallelOptions options;
    options.shards = k;
    options.workers = 2;
    const auto result = TryParallelJoinAuto(rels, sink.AsEmitFn(), options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(test::Sorted(std::move(sink.results())), expected) << "K=" << k;
    EXPECT_TRUE(result->sharded);
    EXPECT_EQ(result->shards, k);
    EXPECT_EQ(result->results, expected.size());
    EXPECT_EQ(result->per_shard.size(), k);
    // max/sum bookkeeping is consistent with the per-shard reports.
    std::uint64_t sum = 0, mx = 0;
    for (const ShardReport& s : result->per_shard) {
      sum += s.io.total();
      mx = std::max(mx, s.io.total());
    }
    EXPECT_EQ(result->sum_shard_ios, sum);
    EXPECT_EQ(result->max_shard_ios, mx);
  }
}

TEST(ParallelJoinTest, ShardedStarAndZipfMatchSerial) {
  for (const double zipf : {0.0, 1.0}) {
    extmem::Device dev(64, 4);
    workload::RandomOptions opts;
    opts.seed = 7;
    opts.domain_size = 32;
    opts.zipf_s = zipf;
    const std::vector<storage::Relation> rels = workload::RandomInstance(
        &dev, query::JoinQuery::Star(3), {400, 80, 80, 80}, opts);
    core::CollectingSink sink;
    ParallelOptions options;
    options.shards = 4;
    options.workers = 2;
    const auto result = TryParallelJoinAuto(rels, sink.AsEmitFn(), options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(test::Sorted(std::move(sink.results())),
              core::ReferenceJoin(rels))
        << "zipf=" << zipf;
  }
}

// ---------------------------------------------------------------------
// TryParallelJoinAuto: determinism (the satellite claim).
// ---------------------------------------------------------------------

TEST(ParallelJoinTest, OutputAndPerShardIoAreIdenticalAcrossWorkerCounts) {
  // The emitted sequence and every per-shard counter must be pure
  // functions of (inputs, K): W only changes the schedule.
  std::vector<std::vector<std::vector<Value>>> sequences;
  std::vector<ParallelJoinReport> reports;
  for (const std::uint32_t workers : {1u, 2u, 8u}) {
    extmem::Device dev(64, 4);
    const std::vector<storage::Relation> rels = Line3Instance(&dev);
    core::CollectingSink sink;
    ParallelOptions options;
    options.shards = 4;
    options.workers = workers;
    const auto result = TryParallelJoinAuto(rels, sink.AsEmitFn(), options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    sequences.push_back(std::move(sink.results()));  // NOT sorted: exact order
    reports.push_back(*result);
  }
  for (std::size_t i = 1; i < sequences.size(); ++i) {
    EXPECT_EQ(sequences[i], sequences[0]);
    EXPECT_EQ(reports[i].results, reports[0].results);
    EXPECT_EQ(reports[i].max_shard_ios, reports[0].max_shard_ios);
    EXPECT_EQ(reports[i].sum_shard_ios, reports[0].sum_shard_ios);
    EXPECT_EQ(reports[i].partition_io, reports[0].partition_io);
    ASSERT_EQ(reports[i].per_shard.size(), reports[0].per_shard.size());
    for (std::size_t s = 0; s < reports[0].per_shard.size(); ++s) {
      EXPECT_EQ(reports[i].per_shard[s].io, reports[0].per_shard[s].io)
          << "shard " << s;
      EXPECT_EQ(reports[i].per_shard[s].results,
                reports[0].per_shard[s].results);
      EXPECT_EQ(reports[i].per_shard[s].peak_resident,
                reports[0].per_shard[s].peak_resident);
    }
  }
}

TEST(ParallelJoinTest, SingleShardIsBitIdenticalToSerialJoin) {
  // Twin devices, same instance: K=1 must charge exactly the I/Os the
  // plain dispatcher charges and emit exactly the same sequence.
  extmem::Device serial_dev(64, 4);
  extmem::Device sharded_dev(64, 4);
  const auto serial_rels = Line3Instance(&serial_dev);
  const auto sharded_rels = Line3Instance(&sharded_dev);

  const extmem::IoStats serial_before = serial_dev.stats();
  core::CollectingSink serial_sink;
  const auto serial_report =
      core::TryJoinAuto(serial_rels, serial_sink.AsEmitFn());
  ASSERT_TRUE(serial_report.ok());
  const extmem::IoStats serial_delta = serial_dev.stats() - serial_before;

  const extmem::IoStats sharded_before = sharded_dev.stats();
  core::CollectingSink sharded_sink;
  const auto sharded =
      TryParallelJoinAuto(sharded_rels, sharded_sink.AsEmitFn(), {});
  ASSERT_TRUE(sharded.ok());
  const extmem::IoStats sharded_delta = sharded_dev.stats() - sharded_before;

  EXPECT_FALSE(sharded->sharded);
  EXPECT_TRUE(sharded->per_shard.empty());
  EXPECT_EQ(sharded_delta, serial_delta);
  EXPECT_EQ(sharded_sink.results(), serial_sink.results());
  EXPECT_EQ(sharded->auto_report.algorithm, serial_report->algorithm);
  EXPECT_EQ(sharded->results, serial_sink.results().size());
}

// ---------------------------------------------------------------------
// Observability merge.
// ---------------------------------------------------------------------

TEST(ParallelJoinTest, MergedMetricsCarryShardLabels) {
  extmem::Device dev(64, 4);
  const auto rels = Line3Instance(&dev);
  metrics::Registry merged;
  core::CountingSink sink;
  ParallelOptions options;
  options.shards = 2;
  const auto result =
      TryParallelJoinAuto(rels, sink.AsEmitFn(), options, &merged);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(merged.empty());
  const std::string text = merged.ToPrometheusText();
  EXPECT_NE(text.find("shard=\"0\""), std::string::npos) << text;
  EXPECT_NE(text.find("shard=\"1\""), std::string::npos) << text;
  // Untagged device totals exist per shard, so totals can be compared
  // across shards straight from the exposition.
  EXPECT_NE(text.find("emjoin_peak_resident_tuples{shard=\"0\"}"),
            std::string::npos)
      << text;
}

TEST(RegistryMergeTest, ExtraLabelsKeepShardSeriesDistinct) {
  metrics::Registry shard0, shard1, merged;
  shard0.GetCounter("emjoin_reads", {{"tag", "sort"}})->Add(3);
  shard1.GetCounter("emjoin_reads", {{"tag", "sort"}})->Add(5);
  merged.MergeFrom(shard0, {{"shard", "0"}});
  merged.MergeFrom(shard1, {{"shard", "1"}});
  EXPECT_EQ(
      merged.GetCounter("emjoin_reads", {{"tag", "sort"}, {"shard", "0"}})
          ->value(),
      3u);
  EXPECT_EQ(
      merged.GetCounter("emjoin_reads", {{"tag", "sort"}, {"shard", "1"}})
          ->value(),
      5u);
  // Merging the same series again accumulates instead of overwriting.
  merged.MergeFrom(shard0, {{"shard", "0"}});
  EXPECT_EQ(
      merged.GetCounter("emjoin_reads", {{"tag", "sort"}, {"shard", "0"}})
          ->value(),
      6u);
}

TEST(ParallelJoinTest, TracerAbsorbsOneSubtreePerShard) {
  extmem::Device dev(64, 4);
  trace::Tracer tracer;
  dev.set_tracer(&tracer);
  const auto rels = Line3Instance(&dev);
  core::CountingSink sink;
  ParallelOptions options;
  options.shards = 2;
  const auto result = TryParallelJoinAuto(rels, sink.AsEmitFn(), options);
  ASSERT_TRUE(result.ok());
  dev.set_tracer(nullptr);

  std::uint64_t shard_roots = 0;
  std::uint64_t shard_children = 0;
  for (const trace::SpanRecord& s : tracer.spans()) {
    const std::string_view name = s.name;
    if (name == "shard 0" || name == "shard 1") {
      ++shard_roots;
      EXPECT_EQ(s.parent, trace::kNoSpan);
      EXPECT_TRUE(s.closed);
    } else if (s.parent != trace::kNoSpan) {
      const std::string_view parent_name =
          tracer.spans()[s.parent].name;
      if (parent_name == "shard 0" || parent_name == "shard 1") {
        ++shard_children;
        EXPECT_EQ(s.depth, tracer.spans()[s.parent].depth + 1);
      }
    }
  }
  EXPECT_EQ(shard_roots, 2u);
  EXPECT_GT(shard_children, 0u);
}

// ---------------------------------------------------------------------
// Fault containment.
// ---------------------------------------------------------------------

TEST(ParallelJoinTest, ShardFailureSurfacesAsWholeQueryStatus) {
  extmem::Device dev(64, 4);
  const auto rels = Line3Instance(&dev);
  core::CollectingSink sink;
  ParallelOptions options;
  options.shards = 4;
  options.workers = 2;
  options.faults = true;
  options.fault_config.seed = 1;
  options.fault_config.read_fail = 1.0;  // every retry budget exhausts
  options.fault_config.retry.max_retries = 1;
  const auto result = TryParallelJoinAuto(rels, sink.AsEmitFn(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), extmem::StatusCode::kIoError)
      << result.status().ToString();
  // The failed query emits nothing: no partial shard output escapes.
  EXPECT_TRUE(sink.results().empty());
}

TEST(ParallelJoinTest, ShardFaultSchedulesAreSeededAndReplayable) {
  auto run = [](std::uint64_t seed) {
    extmem::Device dev(64, 4);
    const auto rels = Line3Instance(&dev);
    core::CountingSink sink;
    ParallelOptions options;
    options.shards = 4;
    options.workers = 2;
    options.faults = true;
    options.fault_config.seed = seed;
    options.fault_config.read_fail = 0.02;  // transient: retries recover
    const auto result = TryParallelJoinAuto(rels, sink.AsEmitFn(), options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result;
  };

  const ParallelJoinReport a = run(42);
  const ParallelJoinReport b = run(42);
  const ParallelJoinReport c = run(43);

  // Same base seed: every shard's fault schedule replays exactly, and
  // the join still produces the full result set.
  EXPECT_GT(a.faults.read_faults, 0u);
  EXPECT_EQ(a.results, c.results);
  ASSERT_EQ(a.per_shard.size(), b.per_shard.size());
  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < a.per_shard.size(); ++s) {
    EXPECT_EQ(a.per_shard[s].faults, b.per_shard[s].faults) << "shard " << s;
    sum += a.per_shard[s].faults.read_faults;
  }
  EXPECT_EQ(a.faults.read_faults, sum);

  // Different base seed: shard i's seed is base + i, so at least one
  // shard must draw a different schedule.
  bool any_diff = false;
  for (std::size_t s = 0; s < a.per_shard.size(); ++s) {
    if (!(a.per_shard[s].faults == c.per_shard[s].faults)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace emjoin::parallel
