// Tests for the multi-query daemon (src/serve/): the QuerySpec wire
// format, the admission ledger's budget/queue/promotion arithmetic, and
// the Server end to end over a real loopback socket — submit/run/
// complete with output and I/O counts bit-identical to an in-process
// reference run, the aggregated multi-tenant /metrics exposition
// (query="<id>" labels, Prometheus-conformant, no duplicate headers),
// concurrent scrapes mid-join, and kill/resume-on-readmission through
// the QueryManifest with zero duplicate emits.
//
// All concurrency goes through parallel::WorkerPool (the
// thread-discipline rule applies to tests too).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dispatch.h"
#include "core/emit.h"
#include "extmem/device.h"
#include "metrics/registry.h"
#include "parallel/worker_pool.h"
#include "serve/admission.h"
#include "serve/query_spec.h"
#include "serve/server.h"
#include "storage/csv.h"

namespace emjoin {
namespace {

// ---------------------------------------------------------------------
// Loopback HTTP helpers (HTTP/1.0, read to EOF)
// ---------------------------------------------------------------------

std::string HttpRoundTrip(std::uint16_t port, const std::string& request) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t k = send(fd, request.data() + sent, request.size() - sent,
                           0);
    if (k <= 0) {
      close(fd);
      return "";
    }
    sent += static_cast<std::size_t>(k);
  }
  std::string response;
  char buf[4096];
  ssize_t got = 0;
  while ((got = recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(got));
  }
  close(fd);
  return response;
}

std::string HttpGet(std::uint16_t port, const std::string& path) {
  return HttpRoundTrip(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

std::string HttpPost(std::uint16_t port, const std::string& path,
                     const std::string& body) {
  return HttpRoundTrip(port, "POST " + path + " HTTP/1.0\r\nContent-Length: " +
                                 std::to_string(body.size()) + "\r\n\r\n" +
                                 body);
}

std::string BodyOf(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : response.substr(at + 4);
}

// Polls GET /queries/<id> until its state matches (or ~5 s elapse).
bool WaitForState(std::uint16_t port, const std::string& id,
                  const std::string& state) {
  const std::string needle = "\"state\": \"" + state + "\"";
  for (int i = 0; i < 2500; ++i) {
    if (HttpGet(port, "/queries/" + id).find(needle) != std::string::npos) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

// ---------------------------------------------------------------------
// Fixture data + the in-process reference run
// ---------------------------------------------------------------------

void WriteCsv(const std::string& path,
              const std::vector<std::pair<std::uint64_t, std::uint64_t>>&
                  rows) {
  std::ofstream out(path);
  for (const auto& [a, b] : rows) out << a << "," << b << "\n";
}

// R1 = (i, 0), R2 = (0, j): a full bipartite join with n*n results —
// enough I/O volume to observe queries mid-flight.
void WriteBipartite(const std::string& r1, const std::string& r2,
                    std::uint64_t n) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> left, right;
  for (std::uint64_t i = 1; i <= n; ++i) {
    left.emplace_back(i, 0);
    right.emplace_back(0, i);
  }
  WriteCsv(r1, left);
  WriteCsv(r2, right);
}

std::string FormatRow(std::span<const Value> row) {
  std::string line;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) line += ",";
    line += std::to_string(row[i]);
  }
  return line;
}

// Loads the same CSVs through the same storage path and joins in
// process — the ground truth the daemon's output file and I/O counts
// must match exactly.
std::vector<std::string> ReferenceRows(
    const std::vector<std::pair<std::string, std::string>>& rels_spec,
    TupleCount memory, TupleCount block, extmem::IoStats* io) {
  extmem::Device dev(memory, block);
  std::vector<std::string> names;
  std::vector<storage::Relation> rels;
  for (const auto& [attrs, path] : rels_spec) {
    auto schema = storage::ParseSchemaSpec(attrs, &names);
    EXPECT_TRUE(schema.ok()) << schema.status().ToString();
    auto rel = storage::RelationFromCsvFile(&dev, *std::move(schema), path);
    EXPECT_TRUE(rel.ok()) << rel.status().ToString();
    rels.push_back(*std::move(rel));
  }
  std::vector<std::string> rows;
  const core::EmitFn emit = [&rows](std::span<const Value> row) {
    rows.push_back(FormatRow(row));
  };
  const auto report = core::TryJoinAuto(rels, emit);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (io != nullptr) *io = dev.stats();
  return rows;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::size_t CountOf(const std::string& text, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

// ---------------------------------------------------------------------
// ServeSpec: the POST /queries wire format
// ---------------------------------------------------------------------

TEST(ServeSpec, ParsesAFullSpec) {
  const auto spec = serve::ParseQuerySpec(
      "# demo query\n"
      "id=q-1.a\n"
      "memory=2048\n"
      "block=32\n"
      "shards=4\n"
      "workers=2\n"
      "output=/tmp/q1.csv\n"
      "rel=a,b=/data/r1.csv\n"
      "rel=b,c=/data/r2.csv\n"
      "fault-seed=42\n"
      "fault-read=0.25\n"
      "fault-retries=6\n"
      "fault-kill-at=500\n"
      "fault-adaptive-retry=1\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->id, "q-1.a");
  EXPECT_EQ(spec->memory, 2048u);
  EXPECT_EQ(spec->block, 32u);
  EXPECT_EQ(spec->shards, 4u);
  EXPECT_EQ(spec->workers, 2u);
  EXPECT_EQ(spec->output_path, "/tmp/q1.csv");
  ASSERT_EQ(spec->relations.size(), 2u);
  EXPECT_EQ(spec->relations[0].attrs, "a,b");
  EXPECT_EQ(spec->relations[1].csv_path, "/data/r2.csv");
  EXPECT_EQ(spec->fault_config.seed, 42u);
  EXPECT_DOUBLE_EQ(spec->fault_config.read_fail, 0.25);
  EXPECT_EQ(spec->fault_config.retry.max_retries, 6u);
  EXPECT_EQ(spec->fault_config.kill_at_ios, 500u);
  EXPECT_TRUE(spec->fault_config.adaptive_retry);
  EXPECT_TRUE(spec->fault_config.Active());
}

TEST(ServeSpec, RejectsMalformedDirectivesWithLineNumbers) {
  const char* bad[] = {
      "id=q1\nnot a directive\nrel=a,b=x.csv\n",
      "id=q1\nrel=a,b\n",                 // rel missing the =path part
      "id=q1\nshards=0\nrel=a,b=x.csv\n",
      "id=q1\nworkers=65\nrel=a,b=x.csv\n",
      "id=q1\nfault-read=1.5\nrel=a,b=x.csv\n",
      "id=q1\nmystery=1\nrel=a,b=x.csv\n",
  };
  for (const char* body : bad) {
    const auto spec = serve::ParseQuerySpec(body);
    EXPECT_FALSE(spec.ok()) << body;
    EXPECT_EQ(spec.status().code(), extmem::StatusCode::kInvalidInput);
    EXPECT_NE(spec.status().ToString().find("line 2"), std::string::npos)
        << spec.status().ToString();
  }
  const auto bad_id = serve::ParseQuerySpec("id=bad id!\nrel=a,b=x.csv\n");
  ASSERT_FALSE(bad_id.ok());
  EXPECT_NE(bad_id.status().ToString().find("line 1"), std::string::npos);
}

TEST(ServeSpec, RejectsMissingFieldsAndDegenerateMemory) {
  EXPECT_FALSE(serve::ParseQuerySpec("rel=a,b=x.csv\n").ok());  // no id
  EXPECT_FALSE(serve::ParseQuerySpec("id=q1\n").ok());          // no rel
  // memory < 4*block is a submit-time 400, not a late budget error.
  EXPECT_FALSE(
      serve::ParseQuerySpec("id=q1\nmemory=100\nblock=64\nrel=a,b=x.csv\n")
          .ok());
  EXPECT_TRUE(
      serve::ParseQuerySpec("id=q1\nmemory=256\nblock=64\nrel=a,b=x.csv\n")
          .ok());
}

// ---------------------------------------------------------------------
// ServeAdmission: the budget/queue ledger
// ---------------------------------------------------------------------

TEST(ServeAdmission, AdmitsQueuesAndPromotesFifo) {
  serve::AdmissionController ctl({.memory_budget = 1000, .max_queued = 4});
  EXPECT_EQ(ctl.Submit("a", 600), serve::AdmissionDecision::kAdmitted);
  EXPECT_EQ(ctl.Submit("b", 600), serve::AdmissionDecision::kQueued);
  // Strict FIFO: "c" fits right now, but queues behind "b" so a stream
  // of small queries cannot starve a large one.
  EXPECT_EQ(ctl.Submit("c", 100), serve::AdmissionDecision::kQueued);
  auto snap = ctl.Snapshot();
  EXPECT_EQ(snap.admitted_memory, 600u);
  EXPECT_EQ(snap.running, 1u);
  EXPECT_EQ(snap.queued, 2u);

  // Releasing "a" promotes both: b (600) then c (100) fit together.
  const auto promoted = ctl.Release(600);
  ASSERT_EQ(promoted.size(), 2u);
  EXPECT_EQ(promoted[0], "b");
  EXPECT_EQ(promoted[1], "c");
  snap = ctl.Snapshot();
  EXPECT_EQ(snap.admitted_memory, 700u);
  EXPECT_EQ(snap.running, 2u);
  EXPECT_EQ(snap.queued, 0u);
  EXPECT_EQ(snap.admitted_total, 3u);
  EXPECT_EQ(snap.queued_total, 2u);
}

TEST(ServeAdmission, RejectsOversizedAndOverflowingSubmissions) {
  serve::AdmissionController ctl({.memory_budget = 100, .max_queued = 1});
  // Larger than the whole budget: can never run.
  EXPECT_EQ(ctl.Submit("huge", 101), serve::AdmissionDecision::kRejected);
  EXPECT_EQ(ctl.Submit("a", 100), serve::AdmissionDecision::kAdmitted);
  EXPECT_EQ(ctl.Submit("b", 50), serve::AdmissionDecision::kQueued);
  // The one queue slot is taken.
  EXPECT_EQ(ctl.Submit("c", 50), serve::AdmissionDecision::kRejected);
  const auto snap = ctl.Snapshot();
  EXPECT_EQ(snap.rejected_total, 2u);
}

TEST(ServeAdmission, CancelQueuedRemovesExactlyThatEntry) {
  serve::AdmissionController ctl({.memory_budget = 100, .max_queued = 8});
  EXPECT_EQ(ctl.Submit("a", 100), serve::AdmissionDecision::kAdmitted);
  EXPECT_EQ(ctl.Submit("b", 100), serve::AdmissionDecision::kQueued);
  EXPECT_EQ(ctl.Submit("c", 100), serve::AdmissionDecision::kQueued);
  EXPECT_TRUE(ctl.CancelQueued("b"));
  EXPECT_FALSE(ctl.CancelQueued("b"));     // already gone
  EXPECT_FALSE(ctl.CancelQueued("a"));     // admitted, not queued
  const auto promoted = ctl.Release(100);  // "a" done -> only "c" left
  ASSERT_EQ(promoted.size(), 1u);
  EXPECT_EQ(promoted[0], "c");
}

// ---------------------------------------------------------------------
// ServeServer: the daemon end to end over loopback
// ---------------------------------------------------------------------

TEST(ServeServer, HealthzIsJsonQueriesStartEmptyAndUnknownPathsAre404) {
  serve::Server server({});
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();
  ASSERT_GT(port, 0);

  const std::string health = HttpGet(port, "/healthz");
  EXPECT_NE(health.find("200"), std::string::npos) << health;
  EXPECT_NE(health.find("\"status\": \"ok\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"version\": "), std::string::npos) << health;
  EXPECT_NE(health.find("\"io_clock\": 0"), std::string::npos) << health;
  EXPECT_NE(health.find("\"queries_live\": 0"), std::string::npos) << health;

  EXPECT_NE(HttpGet(port, "/queries").find("\"count\": 0"),
            std::string::npos);
  EXPECT_NE(HttpGet(port, "/no-such-endpoint").find("404"),
            std::string::npos);
  EXPECT_NE(HttpGet(port, "/queries/ghost").find("404"), std::string::npos);
  EXPECT_NE(HttpPost(port, "/queries/ghost/kill", "").find("404"),
            std::string::npos);

  // A malformed spec is a 400 with the parser's line-numbered message.
  const std::string bad = HttpPost(port, "/queries", "id=q1\nbogus\n");
  EXPECT_NE(bad.find("400"), std::string::npos) << bad;
  EXPECT_NE(bad.find("line 2"), std::string::npos) << bad;

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(ServeServer, RunsAQueryMatchingTheInProcessReferenceExactly) {
  WriteBipartite("serve_ref_r1.csv", "serve_ref_r2.csv", 24);
  serve::Server server({});
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();

  const std::string accepted = BodyOf(HttpPost(
      port, "/queries",
      "id=ref\nmemory=512\nblock=8\n"
      "rel=a,b=serve_ref_r1.csv\nrel=b,c=serve_ref_r2.csv\n"
      "output=serve_ref.out\n"));
  EXPECT_NE(accepted.find("\"decision\": \"admitted\""), std::string::npos)
      << accepted;
  ASSERT_TRUE(WaitForState(port, "ref", "completed"));

  extmem::IoStats reference_io;
  const std::vector<std::string> expected =
      ReferenceRows({{"a,b", "serve_ref_r1.csv"}, {"b,c", "serve_ref_r2.csv"}},
                    512, 8, &reference_io);
  EXPECT_EQ(ReadLines("serve_ref.out"), expected);  // bit-identical

  // The daemon's charged I/O equals the reference run's: telemetry and
  // the (idle) kill-switch injector change zero charged I/Os.
  const std::string snapshot = BodyOf(HttpGet(port, "/queries/ref"));
  EXPECT_NE(snapshot.find("\"rows\": " + std::to_string(expected.size())),
            std::string::npos)
      << snapshot;
  EXPECT_NE(snapshot.find(
                "\"reads\": " + std::to_string(reference_io.block_reads)),
            std::string::npos)
      << snapshot;
  EXPECT_NE(snapshot.find(
                "\"writes\": " + std::to_string(reference_io.block_writes)),
            std::string::npos)
      << snapshot;

  // Per-query sub-endpoints serve that query's tracker and recorder.
  const std::string progress = BodyOf(HttpGet(port, "/queries/ref/progress"));
  EXPECT_NE(progress.find("\"complete\": true"), std::string::npos)
      << progress;
  EXPECT_NE(HttpGet(port, "/queries/ref/events").find("phase_begin"),
            std::string::npos);

  // Re-submitting a completed id is idempotent: 200, no re-run, and the
  // output file is left alone.
  const std::string again = HttpPost(
      port, "/queries",
      "id=ref\nmemory=512\nblock=8\n"
      "rel=a,b=serve_ref_r1.csv\nrel=b,c=serve_ref_r2.csv\n"
      "output=serve_ref.out\n");
  EXPECT_NE(again.find("200"), std::string::npos) << again;
  EXPECT_NE(again.find("\"state\": \"completed\""), std::string::npos);
  EXPECT_EQ(ReadLines("serve_ref.out"), expected);

  // The structured request log saw the whole exchange on the I/O clock.
  const std::string log = BodyOf(HttpGet(port, "/log"));
  EXPECT_NE(log.find("\"method\": \"POST\""), std::string::npos) << log;
  EXPECT_NE(log.find("\"path\": \"/queries\""), std::string::npos) << log;
  EXPECT_NE(log.find("\"io_clock\": "), std::string::npos) << log;

  server.Stop();
}

// ---------------------------------------------------------------------
// ServeScrape: multi-tenant aggregation + concurrent scrapes mid-join
// ---------------------------------------------------------------------

TEST(ServeScrape, TwoConcurrentQueriesAggregateWithQueryLabels) {
  WriteBipartite("serve_agg_r1.csv", "serve_agg_r2.csv", 32);
  serve::ServerOptions options;
  options.run_workers = 2;
  serve::Server server(options);
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();

  const std::string spec_a =
      "id=qa\nmemory=512\nblock=8\n"
      "rel=a,b=serve_agg_r1.csv\nrel=b,c=serve_agg_r2.csv\n"
      "output=serve_agg_a.out\n";
  const std::string spec_b =
      "id=qb\nmemory=512\nblock=8\n"
      "rel=a,b=serve_agg_r1.csv\nrel=b,c=serve_agg_r2.csv\n"
      "output=serve_agg_b.out\n";
  EXPECT_NE(HttpPost(port, "/queries", spec_a).find("202"),
            std::string::npos);
  EXPECT_NE(HttpPost(port, "/queries", spec_b).find("202"),
            std::string::npos);
  ASSERT_TRUE(WaitForState(port, "qa", "completed"));
  ASSERT_TRUE(WaitForState(port, "qb", "completed"));

  // Identical specs, identical outputs — each exactly the reference.
  const std::vector<std::string> expected = ReferenceRows(
      {{"a,b", "serve_agg_r1.csv"}, {"b,c", "serve_agg_r2.csv"}}, 512, 8,
      nullptr);
  EXPECT_EQ(ReadLines("serve_agg_a.out"), expected);
  EXPECT_EQ(ReadLines("serve_agg_b.out"), expected);

  // The aggregate exposition carries both tenants, conforms to the
  // Prometheus text format, and emits each family header exactly once
  // even though two sessions merged the same families.
  const std::string metrics = BodyOf(HttpGet(port, "/metrics"));
  std::string error;
  EXPECT_TRUE(metrics::CheckPrometheusText(metrics, &error)) << error;
  EXPECT_NE(metrics.find("query=\"qa\""), std::string::npos);
  EXPECT_NE(metrics.find("query=\"qb\""), std::string::npos);
  EXPECT_EQ(CountOf(metrics, "# TYPE emjoin_device_io_blocks_total"), 1u);
  EXPECT_EQ(CountOf(metrics, "# HELP emjoin_device_io_blocks_total"), 1u);
  EXPECT_EQ(CountOf(metrics, "# TYPE emjoin_query_done_ios"), 1u);
  EXPECT_NE(
      metrics.find("emjoin_serve_queries{state=\"completed\"} 2"),
      std::string::npos)
      << metrics;

  // /progress and /events aggregate across tenants too.
  const std::string progress = BodyOf(HttpGet(port, "/progress"));
  EXPECT_NE(progress.find("\"id\": \"qa\""), std::string::npos);
  EXPECT_NE(progress.find("\"id\": \"qb\""), std::string::npos);
  const std::string events = BodyOf(HttpGet(port, "/events"));
  EXPECT_NE(events.find("{\"query\": \"qa\"}"), std::string::npos);
  EXPECT_NE(events.find("{\"query\": \"qb\"}"), std::string::npos);

  server.Stop();
}

TEST(ServeScrape, ConcurrentScrapersSeeConsistentRepliesMidJoin) {
  WriteBipartite("serve_hammer_r1.csv", "serve_hammer_r2.csv", 48);
  serve::ServerOptions options;
  options.run_workers = 2;
  serve::Server server(options);
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();

  EXPECT_NE(
      HttpPost(port, "/queries",
               "id=h1\nmemory=512\nblock=8\n"
               "rel=a,b=serve_hammer_r1.csv\nrel=b,c=serve_hammer_r2.csv\n")
          .find("202"),
      std::string::npos);
  EXPECT_NE(
      HttpPost(port, "/queries",
               "id=h2\nmemory=512\nblock=8\n"
               "rel=a,b=serve_hammer_r1.csv\nrel=b,c=serve_hammer_r2.csv\n")
          .find("202"),
      std::string::npos);

  // Four scrapers hammer every read endpoint while the joins run; every
  // reply must be well-formed (200, and /metrics always conformant).
  const char* paths[] = {"/metrics", "/progress", "/queries", "/healthz"};
  std::vector<int> bad_replies(4, 0);
  {
    parallel::WorkerPool pool(4);
    for (int w = 0; w < 4; ++w) {
      pool.Submit([port, w, &paths, &bad_replies] {
        for (int i = 0; i < 25; ++i) {
          const std::string response = HttpGet(port, paths[w]);
          if (response.find("200") == std::string::npos) {
            ++bad_replies[w];
            continue;
          }
          if (w == 0) {
            std::string error;
            if (!metrics::CheckPrometheusText(BodyOf(response), &error)) {
              ++bad_replies[w];
            }
          }
        }
      });
    }
    pool.Wait();
  }
  for (int w = 0; w < 4; ++w) EXPECT_EQ(bad_replies[w], 0) << paths[w];

  ASSERT_TRUE(WaitForState(port, "h1", "completed"));
  ASSERT_TRUE(WaitForState(port, "h2", "completed"));
  server.Stop();
}

// ---------------------------------------------------------------------
// ServeResume: kill, re-submit, resume from the manifest
// ---------------------------------------------------------------------

TEST(ServeResume, KilledQueryResumesOnResubmissionWithZeroDuplicates) {
  WriteBipartite("serve_res_r1.csv", "serve_res_r2.csv", 40);
  serve::Server server({});
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();

  // fault-kill-at murders the first attempt mid-join, after some rows
  // have already been emitted and journaled.
  const std::string killing =
      "id=res\nmemory=512\nblock=8\n"
      "rel=a,b=serve_res_r1.csv\nrel=b,c=serve_res_r2.csv\n"
      "output=serve_res.out\nfault-kill-at=40\n";
  EXPECT_NE(HttpPost(port, "/queries", killing).find("202"),
            std::string::npos);
  ASSERT_TRUE(WaitForState(port, "res", "killed"));

  // Re-submission without the kill resumes from the manifest: the
  // second attempt appends only the remainder.
  const std::string clean =
      "id=res\nmemory=512\nblock=8\n"
      "rel=a,b=serve_res_r1.csv\nrel=b,c=serve_res_r2.csv\n"
      "output=serve_res.out\n";
  const std::string resumed = HttpPost(port, "/queries", clean);
  EXPECT_NE(resumed.find("\"resumed\": true"), std::string::npos) << resumed;
  ASSERT_TRUE(WaitForState(port, "res", "completed"));

  const std::string snapshot = BodyOf(HttpGet(port, "/queries/res"));
  EXPECT_NE(snapshot.find("\"attempts\": 2"), std::string::npos) << snapshot;

  // The union of both attempts is the uninterrupted run's output
  // exactly: same multiset, zero duplicates.
  const std::vector<std::string> expected = ReferenceRows(
      {{"a,b", "serve_res_r1.csv"}, {"b,c", "serve_res_r2.csv"}}, 512, 8,
      nullptr);
  std::vector<std::string> got = ReadLines("serve_res.out");
  ASSERT_EQ(got.size(), expected.size());
  EXPECT_EQ(std::set<std::string>(got.begin(), got.end()).size(),
            got.size());  // no duplicate emits
  std::vector<std::string> sorted_got = got;
  std::vector<std::string> sorted_expected = expected;
  std::sort(sorted_got.begin(), sorted_got.end());
  std::sort(sorted_expected.begin(), sorted_expected.end());
  EXPECT_EQ(sorted_got, sorted_expected);

  // The resume shows up in the admission counters.
  EXPECT_NE(BodyOf(HttpGet(port, "/metrics"))
                .find("emjoin_serve_admissions_total{outcome=\"resumed\"} 1"),
            std::string::npos);

  server.Stop();
}

TEST(ServeResume, QueuedQueryCanBeKilledBeforeItEverRuns) {
  // Heavy enough that "front" is still mid-join while the follow-up
  // submission and kill round-trips land.
  WriteBipartite("serve_q_r1.csv", "serve_q_r2.csv", 120);
  serve::ServerOptions options;
  options.admission.memory_budget = 512;  // one 512-tuple query at a time
  serve::Server server(options);
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();

  EXPECT_NE(HttpPost(port, "/queries",
                     "id=front\nmemory=512\nblock=8\n"
                     "rel=a,b=serve_q_r1.csv\nrel=b,c=serve_q_r2.csv\n")
                .find("202"),
            std::string::npos);
  const std::string queued =
      HttpPost(port, "/queries",
               "id=behind\nmemory=512\nblock=8\n"
               "rel=a,b=serve_q_r1.csv\nrel=b,c=serve_q_r2.csv\n");
  // Whether "behind" queued (front still running) or was admitted
  // (front already finished), the kill route must land it in a terminal
  // state and the daemon must stay consistent.
  EXPECT_NE(queued.find("202"), std::string::npos) << queued;
  EXPECT_NE(HttpPost(port, "/queries/behind/kill", "").find("200"),
            std::string::npos);
  ASSERT_TRUE(WaitForState(port, "front", "completed"));
  for (int i = 0; i < 2500; ++i) {
    const std::string state = BodyOf(HttpGet(port, "/queries/behind"));
    if (state.find("\"state\": \"killed\"") != std::string::npos ||
        state.find("\"state\": \"completed\"") != std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Killing a terminal query is a 409, not a crash.
  EXPECT_NE(HttpPost(port, "/queries/behind/kill", "").find("409"),
            std::string::npos);
  // A query too large for the whole budget is rejected outright.
  const std::string rejected =
      HttpPost(port, "/queries",
               "id=huge\nmemory=4096\nblock=8\n"
               "rel=a,b=serve_q_r1.csv\nrel=b,c=serve_q_r2.csv\n");
  EXPECT_NE(rejected.find("429"), std::string::npos) << rejected;
  server.Stop();
}

TEST(ServeResume, ShardedKillClassifiesAsKilledAndResumes) {
  WriteBipartite("serve_shres_r1.csv", "serve_shres_r2.csv", 32);
  serve::Server server({});
  ASSERT_TRUE(server.Start().ok());
  const std::uint16_t port = server.port();

  const std::string killing =
      "id=shres\nmemory=512\nblock=8\nshards=2\nworkers=2\n"
      "rel=a,b=serve_shres_r1.csv\nrel=b,c=serve_shres_r2.csv\n"
      "output=serve_shres.out\nfault-kill-at=30\n";
  EXPECT_NE(HttpPost(port, "/queries", killing).find("202"),
            std::string::npos);
  ASSERT_TRUE(WaitForState(port, "shres", "killed"));
  // The sharded barrier is all-or-nothing: the killed attempt delivered
  // nothing to the output sink.
  EXPECT_TRUE(ReadLines("serve_shres.out").empty());

  const std::string clean =
      "id=shres\nmemory=512\nblock=8\nshards=2\nworkers=2\n"
      "rel=a,b=serve_shres_r1.csv\nrel=b,c=serve_shres_r2.csv\n"
      "output=serve_shres.out\n";
  EXPECT_NE(HttpPost(port, "/queries", clean).find("\"resumed\": true"),
            std::string::npos);
  ASSERT_TRUE(WaitForState(port, "shres", "completed"));

  const std::vector<std::string> expected = ReferenceRows(
      {{"a,b", "serve_shres_r1.csv"}, {"b,c", "serve_shres_r2.csv"}}, 512, 8,
      nullptr);
  std::vector<std::string> got = ReadLines("serve_shres.out");
  std::vector<std::string> sorted_expected = expected;
  std::sort(got.begin(), got.end());
  std::sort(sorted_expected.begin(), sorted_expected.end());
  EXPECT_EQ(got, sorted_expected);
  server.Stop();
}

}  // namespace
}  // namespace emjoin
