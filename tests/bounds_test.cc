// I/O-bound conformance tests: the measured I/O count of each algorithm
// must stay within a constant factor of the Theorem 3 bound (instance-
// exact Ψ evaluation plus the linear scan term) on the paper's worst-case
// constructions, across M and B settings.
#include <gtest/gtest.h>

#include "core/acyclic_join.h"
#include "core/dispatch.h"
#include "core/line3.h"
#include "gens/psi.h"
#include "tests/test_util.h"
#include "workload/constructions.h"

namespace emjoin {
namespace {

double TheoremBound(const std::vector<storage::Relation>& rels,
                    const extmem::Device& dev) {
  query::JoinQuery q;
  for (const auto& r : rels) q.AddRelation(r.schema(), r.size());
  const gens::BoundReport report =
      gens::PredictBoundExact(q, rels, dev.M(), dev.B());
  return static_cast<double>(report.bound);
}

struct MbCase {
  TupleCount m;
  TupleCount b;
  TupleCount n;
};

class L3BoundTest : public ::testing::TestWithParam<MbCase> {};

TEST_P(L3BoundTest, AcyclicJoinWithinConstantOfTheorem3) {
  const auto [m, b, n] = GetParam();
  extmem::Device dev(m, b);
  const auto rels = workload::L3WorstCase(&dev, n, 1, n);
  const double bound = TheoremBound(rels, dev);
  const extmem::IoStats before = dev.stats();
  core::CountingSink sink;
  core::AcyclicJoin(rels, sink.AsEmitFn());
  const double used = static_cast<double>((dev.stats() - before).total());
  EXPECT_EQ(sink.count(), n * n);
  // Constant covers the reducer, sorting log factors and per-level
  // constants the Õ suppresses.
  EXPECT_LE(used, 30 * bound) << "M=" << m << " B=" << b << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, L3BoundTest,
    ::testing::Values(MbCase{16, 4, 128}, MbCase{32, 4, 256},
                      MbCase{64, 8, 512}, MbCase{128, 16, 512},
                      MbCase{64, 8, 1024}, MbCase{256, 8, 1024}));

class StarBoundTest : public ::testing::TestWithParam<MbCase> {};

TEST_P(StarBoundTest, AcyclicJoinWithinConstantOfTheorem3) {
  const auto [m, b, n] = GetParam();
  extmem::Device dev(m, b);
  const auto rels = workload::StarWorstCase(&dev, {n, n, n});
  const double bound = TheoremBound(rels, dev);
  const extmem::IoStats before = dev.stats();
  core::CountingSink sink;
  core::AcyclicJoin(rels, sink.AsEmitFn());
  const double used = static_cast<double>((dev.stats() - before).total());
  EXPECT_EQ(sink.count(), n * n * n);
  EXPECT_LE(used, 30 * bound) << "M=" << m << " B=" << b << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, StarBoundTest,
                         ::testing::Values(MbCase{16, 4, 32},
                                           MbCase{32, 8, 64},
                                           MbCase{64, 8, 128}));

TEST(BalancedLineBoundTest, L5CrossProductInstance) {
  extmem::Device dev(32, 4);
  // z = (1, 64, 1, 64, 1, 64): all N_i = 64, results 64^3.
  const auto rels = workload::CrossProductLine(&dev, {1, 64, 1, 64, 1, 64});
  const double bound = TheoremBound(rels, dev);
  const extmem::IoStats before = dev.stats();
  core::CountingSink sink;
  core::AcyclicJoin(rels, sink.AsEmitFn());
  const double used = static_cast<double>((dev.stats() - before).total());
  EXPECT_EQ(sink.count(), 64u * 64 * 64);
  EXPECT_LE(used, 40 * bound);
}

TEST(EqualSizeBoundTest, CostScalesAsNOverMToTheC) {
  // Theorem 7: Õ((N/M)^c · M/B). For L5 (c = 3), quadrupling N at fixed
  // M, B must scale I/O by ~64x, not more.
  extmem::Device dev1(16, 4), dev2(16, 4);
  const query::JoinQuery q = query::JoinQuery::Line(5);
  const auto small = workload::EqualSizeWorstCase(&dev1, q, 32);
  const auto large = workload::EqualSizeWorstCase(&dev2, q, 128);

  core::CountingSink s1, s2;
  const extmem::IoStats b1 = dev1.stats();
  core::AcyclicJoin(small, s1.AsEmitFn());
  const double io1 = static_cast<double>((dev1.stats() - b1).total());
  const extmem::IoStats b2 = dev2.stats();
  core::AcyclicJoin(large, s2.AsEmitFn());
  const double io2 = static_cast<double>((dev2.stats() - b2).total());

  EXPECT_EQ(s1.count(), 32u * 32 * 32);
  EXPECT_EQ(s2.count(), 128u * 128 * 128);
  const double growth = io2 / io1;
  // Ideal 4^3 = 64; allow generous slack for the linear terms.
  EXPECT_GT(growth, 16.0);
  EXPECT_LT(growth, 200.0);
}

TEST(Line3DirectBoundTest, Algorithm1TracksMB) {
  // Doubling M at fixed N should roughly halve Algorithm 1's I/O on the
  // quadratic-output instance.
  const TupleCount n = 1024;
  extmem::Device dev_small(32, 8), dev_large(128, 8);
  const auto r1 = workload::L3WorstCase(&dev_small, n, 1, n);
  const auto r2 = workload::L3WorstCase(&dev_large, n, 1, n);
  core::CountingSink s1, s2;
  const extmem::IoStats b1 = dev_small.stats();
  core::LineJoin3(r1[0], r1[1], r1[2], s1.AsEmitFn());
  const double io_small = static_cast<double>((dev_small.stats() - b1).total());
  const extmem::IoStats b2 = dev_large.stats();
  core::LineJoin3(r2[0], r2[1], r2[2], s2.AsEmitFn());
  const double io_large = static_cast<double>((dev_large.stats() - b2).total());
  EXPECT_EQ(s1.count(), s2.count());
  // 4x memory: expect >= 2x fewer I/Os (linear terms damp the ratio).
  EXPECT_GT(io_small / io_large, 2.0);
}

TEST(DispatchBoundTest, UnbalancedL5BeatsTheBalancedBoundTerm) {
  // On the §6.3 unbalanced instance, Algorithm 4's cost must be below the
  // N2*N4/(M^2 B) term that Algorithm 2's analysis would pay.
  extmem::Device dev(16, 4);
  const auto rels = workload::UnbalancedL5(&dev, 16, 16, {4, 96, 64, 4});
  // N1=16, N2=384, N3=96, N4=256, N5=16: N1N3N5 = 24576 < N2N4 = 98304.
  ASSERT_LT(rels[0].size() * rels[2].size() * rels[4].size(),
            rels[1].size() * rels[3].size());
  core::CountingSink sink;
  const extmem::IoStats before = dev.stats();
  const core::AutoJoinReport report = core::JoinAuto(rels, sink.AsEmitFn());
  const double used = static_cast<double>((dev.stats() - before).total());
  EXPECT_EQ(report.algorithm, "LineJoinUnbalanced5");
  const double balanced_term =
      static_cast<double>(rels[1].size()) * rels[3].size() /
      (static_cast<double>(dev.M()) * dev.M() * dev.B());
  const double unbalanced_bound =
      static_cast<double>(rels[0].size()) * rels[2].size() * rels[4].size() /
          (static_cast<double>(dev.M()) * dev.M() * dev.B()) +
      static_cast<double>(rels[0].size()) * rels[2].size() / dev.B() +
      static_cast<double>(rels[2].size()) * rels[4].size() / dev.B() +
      768.0 / dev.B();
  EXPECT_LE(used, 30 * unbalanced_bound);
  (void)balanced_term;
}

}  // namespace
}  // namespace emjoin
