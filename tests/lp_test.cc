#include "gens/lp.h"

#include <gtest/gtest.h>

#include <cmath>

namespace emjoin::gens {
namespace {

TEST(SimplexTest, UnconstrainedVariablePinnedByConstraint) {
  // max y s.t. y <= 5.
  EXPECT_NEAR(static_cast<double>(SolveLpMax({{1}}, {5}, {1})), 5.0, 1e-9);
}

TEST(SimplexTest, TwoVariables) {
  // max x + y s.t. x + y <= 4, x <= 3, y <= 3 -> 4.
  const long double v =
      SolveLpMax({{1, 1}, {1, 0}, {0, 1}}, {4, 3, 3}, {1, 1});
  EXPECT_NEAR(static_cast<double>(v), 4.0, 1e-9);
}

TEST(SimplexTest, ObjectiveIgnoresUnrewardedVariables) {
  // max x s.t. x + y <= 2, y free to be 0 -> 2.
  const long double v = SolveLpMax({{1, 1}}, {2}, {1, 0});
  EXPECT_NEAR(static_cast<double>(v), 2.0, 1e-9);
}

TEST(SimplexTest, DegenerateZeroRhs) {
  // max x s.t. x <= 0 -> 0 (Bland's rule must not cycle).
  EXPECT_NEAR(static_cast<double>(SolveLpMax({{1}}, {0}, {1})), 0.0, 1e-9);
}

TEST(MaxCrossProductSubjoinTest, SingleRelationIsItsSize) {
  const query::JoinQuery q = query::JoinQuery::Line(2, {12, 20});
  EXPECT_NEAR(static_cast<double>(MaxCrossProductSubjoin(q, {0})), 12.0,
              1e-6);
}

TEST(MaxCrossProductSubjoinTest, IndependentPairMultiplies) {
  const query::JoinQuery q = query::JoinQuery::Line(3, {10, 1000, 30});
  EXPECT_NEAR(static_cast<double>(MaxCrossProductSubjoin(q, {0, 2})), 300.0,
              1e-6);
}

TEST(MaxCrossProductSubjoinTest, NeighborSizesConstrainConnectedSubjoins) {
  // L4 {10, 50, 20, 10}: the subjoin {e2, e3} is capped below AGM
  // (= 1000) by the reduction constraints of e1 and e4 (see §4.4's
  // "dominated" discussion): z2 <= 10, z4 <= 10, z2*z3 <= 50, z3*z4 <= 20
  // -> max z2*z3*z4 = 200.
  const query::JoinQuery q = query::JoinQuery::Line(4, {10, 50, 20, 10});
  EXPECT_NEAR(static_cast<double>(MaxCrossProductSubjoin(q, {1, 2})), 200.0,
              1e-6);
}

TEST(MaxCrossProductSubjoinTest, FullLineJoinMatchesAlternatingProduct) {
  // Balanced L5, all sizes N: the full join reaches N^3 via the
  // alternating construction (Theorem 5).
  const query::JoinQuery q =
      query::JoinQuery::Line(5, {64, 64, 64, 64, 64});
  EXPECT_NEAR(static_cast<double>(
                  MaxCrossProductSubjoin(q, {0, 1, 2, 3, 4})),
              64.0 * 64 * 64, 1.0);
}

TEST(MaxCrossProductSubjoinTest, EmptyRelationKillsEverySubjoin) {
  query::JoinQuery q = query::JoinQuery::Line(3, {10, 10, 10});
  q.set_size(1, 0);
  EXPECT_EQ(static_cast<double>(MaxCrossProductSubjoin(q, {0, 2})), 0.0);
}

TEST(MaxCrossProductSubjoinTest, EmptySubsetIsOne) {
  const query::JoinQuery q = query::JoinQuery::Line(2, {5, 5});
  EXPECT_NEAR(static_cast<double>(MaxCrossProductSubjoin(q, {})), 1.0, 1e-9);
}

TEST(MaxCrossProductSubjoinTest, StarPetalsReachProduct) {
  // Star with unit core: the petal subjoin reaches the petal product
  // (Theorem 4's construction is a cross-product instance).
  const query::JoinQuery q = query::JoinQuery::Star(3, {1, 8, 16, 32});
  EXPECT_NEAR(static_cast<double>(MaxCrossProductSubjoin(q, {1, 2, 3})),
              8.0 * 16 * 32, 1e-3);
}

}  // namespace
}  // namespace emjoin::gens
