// Tests for the whole-query recovery layer: the EmitJournal output
// watermark, QueryManifest persistence and shard merging, resumable
// joins (serial and sharded, including kill-and-resume soaking),
// adaptive retry mode derivation, saturating FaultStats deltas, backoff
// saturation, recovery metrics export, and graceful degradation of
// every operator family under an adversarial budget shrink to the 4B
// floor.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dispatch.h"
#include "core/emit.h"
#include "core/yannakakis.h"
#include "extmem/device.h"
#include "extmem/fault_injector.h"
#include "extmem/status.h"
#include "metrics/registry.h"
#include "parallel/parallel_join.h"
#include "recover/manifest.h"
#include "recover/resume.h"
#include "storage/relation.h"
#include "workload/constructions.h"
#include "workload/soak.h"

namespace emjoin {
namespace {

using core::CollectingSink;
using core::CountingSink;
using core::EmitJournal;
using extmem::CatchStatus;
using extmem::FaultConfig;
using extmem::FaultInjector;
using extmem::FaultStats;
using extmem::RetryMode;
using extmem::RetryPolicy;
using extmem::StatusCode;
using recover::QueryManifest;

using Row = std::vector<Value>;

std::vector<Row> Sorted(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

// ---------------------------------------------------------------------
// EmitJournal: the output watermark
// ---------------------------------------------------------------------

TEST(EmitJournalTest, RecordForwardsNewRowsAndSuppressesReplays) {
  EmitJournal j;
  EXPECT_TRUE(j.Record(Row{1, 2}));
  EXPECT_TRUE(j.Record(Row{3, 4}));
  EXPECT_FALSE(j.Record(Row{1, 2}));  // replay artifact
  EXPECT_EQ(j.rows(), 2u);
  EXPECT_EQ(j.width(), 2u);
  EXPECT_TRUE(j.Contains(Row{3, 4}));
  EXPECT_FALSE(j.Contains(Row{9, 9}));
  EXPECT_EQ(j.rows(), 2u);  // Contains never records
}

TEST(EmitJournalTest, ReplayPreservesFirstEmissionOrder) {
  EmitJournal j;
  const std::vector<Row> rows = {{5, 1}, {2, 7}, {0, 0}};
  for (const Row& r : rows) j.Record(r);

  CollectingSink sink;
  j.ReplayInto(sink.AsEmitFn());
  EXPECT_EQ(sink.results(), rows);

  // The hash is order-sensitive: the same rows journaled in a different
  // order disagree.
  EmitJournal reversed;
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) reversed.Record(*it);
  EXPECT_EQ(reversed.rows(), j.rows());
  EXPECT_NE(reversed.hash(), j.hash());
}

TEST(EmitJournalTest, MergeFromKeepsReceiverPrefixAndAppendsDonor) {
  EmitJournal a, b;
  a.Record(Row{1});
  a.Record(Row{2});
  b.Record(Row{2});  // already in a: must not duplicate
  b.Record(Row{3});
  a.MergeFrom(b);

  CollectingSink sink;
  a.ReplayInto(sink.AsEmitFn());
  const std::vector<Row> expect = {{1}, {2}, {3}};
  EXPECT_EQ(sink.results(), expect);
}

TEST(EmitJournalTest, RestoreRoundTripsTheFlatRowStore) {
  EmitJournal j;
  j.Record(Row{1, 2});
  j.Record(Row{3, 4});

  EmitJournal copy;
  copy.Restore(j.width(), j.data());
  EXPECT_EQ(copy.rows(), j.rows());
  EXPECT_EQ(copy.hash(), j.hash());
  // The rebuilt index still deduplicates.
  EXPECT_FALSE(copy.Record(Row{3, 4}));
  EXPECT_TRUE(copy.Record(Row{5, 6}));
}

TEST(EmitJournalTest, JournaledEmitDeliversEachRowOnce) {
  EmitJournal j;
  CountingSink sink;
  const core::EmitFn emit = core::JournaledEmit(&j, sink.AsEmitFn());
  emit(Row{1, 1});
  emit(Row{2, 2});
  emit(Row{1, 1});  // suppressed
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_EQ(j.rows(), 2u);
}

// ---------------------------------------------------------------------
// QueryManifest: fingerprint, phases, shards, persistence
// ---------------------------------------------------------------------

TEST(QueryManifestTest, BindStampsThenVerifiesTheFingerprint) {
  extmem::Device dev(256, 16);
  const auto rels = workload::L3WorstCase(&dev, 4, 1, 4);

  QueryManifest m;
  ASSERT_TRUE(m.Bind(rels, 1).ok());
  EXPECT_NE(m.fingerprint(), 0u);
  EXPECT_TRUE(m.Bind(rels, 1).ok());  // same query rebinds fine

  // A different instance (or shard count) is a different query: resuming
  // it from this manifest would corrupt output, so Bind refuses.
  const auto other = workload::L3WorstCase(&dev, 5, 1, 4);
  EXPECT_EQ(m.Bind(other, 1).code(), StatusCode::kInvalidInput);
  EXPECT_EQ(m.Bind(rels, 4).code(), StatusCode::kInvalidInput);
}

TEST(QueryManifestTest, PhasesAndShardJournalsRoundTripThroughDisk) {
  extmem::Device dev(256, 16);
  const auto rels = workload::L3WorstCase(&dev, 4, 1, 4);

  QueryManifest m;
  ASSERT_TRUE(m.Bind(rels, 2).ok());
  m.journal().Record(Row{1, 0, 0, 2});
  m.journal().Record(Row{3, 0, 0, 4});
  m.MarkPhase("join");
  m.Shard(0).journal().Record(Row{1, 0, 0, 2});
  m.Shard(0).MarkPhase("join");
  m.Shard(1).journal().Record(Row{3, 0, 0, 4});

  const std::string path = testing::TempDir() + "/recover_roundtrip.manifest";
  ASSERT_TRUE(m.WriteTo(path).ok());

  QueryManifest loaded;
  ASSERT_TRUE(loaded.ReadFrom(path).ok());
  EXPECT_EQ(loaded.fingerprint(), m.fingerprint());
  EXPECT_TRUE(loaded.Bind(rels, 2).ok());  // fingerprint still verifies
  EXPECT_TRUE(loaded.PhaseCompleted("join"));
  EXPECT_EQ(loaded.journal().rows(), 2u);
  EXPECT_EQ(loaded.journal().hash(), m.journal().hash());
  ASSERT_EQ(loaded.shard_count(), 2u);
  EXPECT_TRUE(loaded.Shard(0).PhaseCompleted("join"));
  EXPECT_FALSE(loaded.Shard(1).PhaseCompleted("join"));
  EXPECT_EQ(loaded.Shard(1).journal().hash(), m.Shard(1).journal().hash());
}

TEST(QueryManifestTest, ReadErrorsAreTypedNotFatal) {
  QueryManifest m;
  EXPECT_EQ(m.ReadFrom("/nonexistent/dir/x.manifest").code(),
            StatusCode::kNotFound);

  const std::string path = testing::TempDir() + "/recover_garbage.manifest";
  std::ofstream(path) << "not a manifest at all\n";
  QueryManifest g;
  EXPECT_EQ(g.ReadFrom(path).code(), StatusCode::kInvalidInput);
}

TEST(QueryManifestTest, MergeShardsFoldsChildJournalsInShardOrder) {
  QueryManifest m;
  m.Shard(0).journal().Record(Row{1});
  m.Shard(0).journal().Record(Row{2});
  m.Shard(1).journal().Record(Row{2});  // overlap deduplicates
  m.Shard(1).journal().Record(Row{3});
  m.MergeShards();
  EXPECT_EQ(m.journal().rows(), 3u);

  m.MergeShards();  // idempotent
  EXPECT_EQ(m.journal().rows(), 3u);

  CollectingSink sink;
  m.journal().ReplayInto(sink.AsEmitFn());
  const std::vector<Row> expect = {{1}, {2}, {3}};
  EXPECT_EQ(sink.results(), expect);
}

// ---------------------------------------------------------------------
// Resumable joins
// ---------------------------------------------------------------------

TEST(ResumeTest, FreshRunJournalsEveryRowAndMarksThePhase) {
  extmem::Device dev(256, 16);
  const auto rels = workload::L3WorstCase(&dev, 6, 1, 5);

  QueryManifest m;
  CountingSink sink;
  const auto r = recover::TryResumableJoinAuto(rels, sink.AsEmitFn(), &m);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->already_complete);
  EXPECT_EQ(r->watermark_rows, 0u);
  EXPECT_EQ(r->emitted_rows, 30u);  // n1 * n3
  EXPECT_EQ(sink.count(), 30u);
  EXPECT_TRUE(m.PhaseCompleted("join"));
  EXPECT_EQ(m.journal().rows(), 30u);
}

TEST(ResumeTest, CompletedManifestSkipsAllWorkAndReplaysOnRequest) {
  extmem::Device dev(256, 16);
  const auto rels = workload::L3WorstCase(&dev, 6, 1, 5);

  QueryManifest m;
  CountingSink first;
  ASSERT_TRUE(recover::TryResumableJoinAuto(rels, first.AsEmitFn(), &m).ok());

  // Re-running a completed manifest does no operator work and, by
  // default, re-delivers nothing (the sink already has the rows).
  const std::uint64_t ios_before = dev.stats().total();
  CountingSink again;
  const auto r = recover::TryResumableJoinAuto(rels, again.AsEmitFn(), &m);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->already_complete);
  EXPECT_EQ(r->watermark_rows, 30u);
  EXPECT_EQ(again.count(), 0u);
  EXPECT_EQ(dev.stats().total(), ios_before);  // zero device I/O

  // A fresh sink asks for the watermark replay and gets the full set.
  CountingSink fresh;
  recover::ResumeOptions opts;
  opts.replay_watermark = true;
  const auto rr =
      recover::TryResumableJoinAuto(rels, fresh.AsEmitFn(), &m, opts);
  ASSERT_TRUE(rr.ok());
  EXPECT_TRUE(rr->already_complete);
  EXPECT_EQ(fresh.count(), 30u);
}

TEST(ResumeTest, KilledRunResumesWithZeroDuplicateEmits) {
  // Baseline: the uninterrupted output set.
  std::vector<Row> baseline;
  {
    extmem::Device dev(256, 16);
    const auto rels = workload::L3WorstCase(&dev, 12, 1, 10);
    CollectingSink sink;
    ASSERT_TRUE(core::TryJoinAuto(rels, sink.AsEmitFn()).ok());
    baseline = Sorted(std::move(sink.results()));
  }

  extmem::Device dev(256, 16);
  const auto rels = workload::L3WorstCase(&dev, 12, 1, 10);
  FaultConfig config;
  config.kill_at_ios = dev.stats().total() + 2;  // shortly into the join
  FaultInjector injector(config);
  dev.set_fault_injector(&injector);

  QueryManifest m;
  CollectingSink pre;
  const auto killed = recover::TryResumableJoinAuto(rels, pre.AsEmitFn(), &m);
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.status().code(), StatusCode::kIoError);
  EXPECT_FALSE(m.PhaseCompleted("join"));
  EXPECT_EQ(m.journal().rows(), pre.results().size());

  // Resume against the same manifest. The kill switch fires at most
  // once, so the still-attached injector is inert now.
  CollectingSink post;
  const auto resumed = recover::TryResumableJoinAuto(rels, post.AsEmitFn(), &m);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->watermark_rows, pre.results().size());
  EXPECT_TRUE(m.PhaseCompleted("join"));

  // Union = baseline, intersection = empty (zero duplicate emits).
  std::vector<Row> all = pre.results();
  all.insert(all.end(), post.results().begin(), post.results().end());
  EXPECT_EQ(all.size(), baseline.size());
  EXPECT_EQ(Sorted(std::move(all)), baseline);
}

TEST(ResumeTest, PartialWatermarkSuppressesExactlyTheJournaledRows) {
  // Baseline output set.
  extmem::Device base_dev(256, 16);
  const auto base_rels = workload::L3WorstCase(&base_dev, 6, 1, 5);
  CollectingSink all;
  ASSERT_TRUE(core::TryJoinAuto(base_rels, all.AsEmitFn()).ok());
  ASSERT_EQ(all.results().size(), 30u);

  // Simulate an attempt that crashed mid-emit: the manifest holds a
  // watermark of the first 7 rows but no completed phase.
  extmem::Device dev(256, 16);
  const auto rels = workload::L3WorstCase(&dev, 6, 1, 5);
  QueryManifest m;
  ASSERT_TRUE(m.Bind(rels, 1).ok());
  for (std::size_t i = 0; i < 7; ++i) m.journal().Record(all.results()[i]);

  CollectingSink rest;
  const auto r = recover::TryResumableJoinAuto(rels, rest.AsEmitFn(), &m);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->watermark_rows, 7u);
  EXPECT_EQ(rest.results().size(), 23u);  // exactly the remainder

  // Watermark + remainder is the full baseline set, no duplicates.
  std::vector<Row> merged(all.results().begin(), all.results().begin() + 7);
  merged.insert(merged.end(), rest.results().begin(), rest.results().end());
  EXPECT_EQ(Sorted(std::move(merged)), Sorted(all.results()));
}

TEST(ResumeTest, ShardedManifestSkipsCompletedShardsOnResume) {
  extmem::Device dev(1024, 16);
  const auto rels = workload::L3WorstCase(&dev, 24, 1, 8);

  // Fresh sharded run, journaling into a manifest.
  QueryManifest m;
  parallel::ParallelOptions options;
  options.shards = 4;
  options.workers = 2;
  options.manifest = &m;
  CollectingSink first;
  const auto r = parallel::TryParallelJoinAuto(rels, first.AsEmitFn(), options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->sharded);
  EXPECT_EQ(first.results().size(), 192u);  // n1 * n3
  EXPECT_EQ(m.journal().rows(), 192u);
  ASSERT_EQ(m.shard_count(), 4u);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_TRUE(m.Shard(s).PhaseCompleted("join")) << "shard " << s;
  }

  // Re-running with the completed manifest re-derives nothing: every
  // shard skips, and the query journal suppresses the barrier replay.
  CollectingSink again;
  const auto rr =
      parallel::TryParallelJoinAuto(rels, again.AsEmitFn(), options);
  ASSERT_TRUE(rr.ok()) << rr.status().ToString();
  EXPECT_EQ(again.results().size(), 0u);
  EXPECT_EQ(m.journal().rows(), 192u);
}

// ---------------------------------------------------------------------
// Kill-and-resume soak (satellite of the fault-soak harness)
// ---------------------------------------------------------------------

TEST(KillResumeSoak, SerialRunsResumeBitIdentically) {
  int interrupted = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto o = workload::RunKillResume(seed, 1);
    EXPECT_TRUE(o.ok) << "seed " << seed << ": " << o.detail;
    if (o.interrupted) ++interrupted;
  }
  EXPECT_GT(interrupted, 0);  // the kill tick actually fired somewhere
}

TEST(KillResumeSoak, ShardedRunsResumeBitIdentically) {
  int interrupted = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto o = workload::RunKillResume(seed, 4);
    EXPECT_TRUE(o.ok) << "seed " << seed << ": " << o.detail;
    if (o.interrupted) ++interrupted;
  }
  EXPECT_GT(interrupted, 0);
}

// ---------------------------------------------------------------------
// Adaptive retry
// ---------------------------------------------------------------------

TEST(AdaptiveRetry, DeadStreakFlipsToFailFast) {
  FaultConfig config;
  config.seed = 11;
  config.read_fail = 1.0;
  config.retry.max_retries = 4;
  config.retry.backoff_base_ios = 1;
  config.adaptive_retry = true;
  FaultInjector injector(config);

  EXPECT_EQ(injector.retry_mode(), RetryMode::kSteady);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(injector.NextReadFails());

  EXPECT_EQ(injector.retry_mode(), RetryMode::kFailFast);
  EXPECT_EQ(injector.mode_transitions(), 1u);
  EXPECT_EQ(injector.retry().max_retries, 1u);
  EXPECT_EQ(injector.retry().backoff_base_ios, 0u);

  RetryMode now = RetryMode::kSteady;
  RetryMode before = RetryMode::kSteady;
  EXPECT_TRUE(injector.TakeModeChange(&now, &before));
  EXPECT_EQ(now, RetryMode::kFailFast);
  EXPECT_EQ(before, RetryMode::kSteady);
  EXPECT_FALSE(injector.TakeModeChange(&now, &before));  // drained
}

TEST(AdaptiveRetry, BrokenHighFaultRateFlipsToPersistent) {
  FaultConfig config;
  config.seed = 12;
  config.write_fail = 1.0;   // deterministic faults
  config.read_fail = 1e-12;  // > 0 so the draw is observed, never fires
  config.retry.max_retries = 4;
  config.adaptive_retry = true;
  FaultInjector injector(config);

  // Seven faults then a clean draw, repeatedly: the streak never reaches
  // the dead threshold (8) but the overall rate stays far above 1-in-10,
  // so past the warmup window the injector settles on kPersistent.
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 7; ++i) EXPECT_TRUE(injector.NextWriteFails());
    EXPECT_FALSE(injector.NextReadFails());
  }
  EXPECT_EQ(injector.retry_mode(), RetryMode::kPersistent);
  EXPECT_EQ(injector.retry().max_retries, 8u);  // doubled budget
  EXPECT_EQ(injector.retry().backoff_base_ios,
            config.retry.backoff_base_ios);
}

TEST(AdaptiveRetry, OffByDefaultKeepsTheConfiguredPolicy) {
  FaultConfig config;
  config.read_fail = 1.0;
  config.retry.max_retries = 4;
  FaultInjector injector(config);
  for (int i = 0; i < 50; ++i) injector.NextReadFails();
  EXPECT_EQ(injector.retry_mode(), RetryMode::kSteady);
  EXPECT_EQ(injector.mode_transitions(), 0u);
  EXPECT_EQ(injector.retry().max_retries, 4u);
}

// ---------------------------------------------------------------------
// FaultStats delta saturation / RetryPolicy backoff saturation
// ---------------------------------------------------------------------

TEST(FaultStatsMath, DeltaOfASumRecoversTheAddend) {
  const FaultStats a{1, 2, 3, 4, 5, 6, 7};
  const FaultStats b{10, 20, 30, 40, 50, 60, 70};
  EXPECT_EQ((a + b) - a, b);
  EXPECT_EQ((a + b) - b, a);
}

TEST(FaultStatsMath, DeltaSaturatesAtZeroOnMergedShardUnderflow) {
  // Merged shard deltas can present a subtrahend larger than the minuend
  // field-by-field; an underflow would poison every roll-up downstream.
  const FaultStats small{1, 0, 2, 0, 3, 0, 4};
  const FaultStats big{5, 5, 5, 5, 5, 5, 5};
  const FaultStats d = small - big;
  EXPECT_EQ(d, FaultStats{});
  EXPECT_EQ(d.TotalActivity(), 0u);

  // Mixed: fields that do not underflow still subtract exactly.
  const FaultStats mixed = FaultStats{7, 1, 0, 9, 0, 2, 0} - small;
  EXPECT_EQ(mixed.read_faults, 6u);
  EXPECT_EQ(mixed.write_faults, 1u);
  EXPECT_EQ(mixed.torn_writes, 0u);  // 0 - 2 clamps
  EXPECT_EQ(mixed.retries, 9u);
  EXPECT_EQ(mixed.backoff_ios, 0u);  // 0 - 3 clamps
}

TEST(RetryPolicySaturation, BackoffStopsDoublingAtAttemptTwenty) {
  RetryPolicy p;
  p.backoff_base_ios = 1;
  EXPECT_EQ(p.BackoffFor(19), 1u << 19);
  EXPECT_EQ(p.BackoffFor(20), 1u << 20);
  EXPECT_EQ(p.BackoffFor(21), 1u << 20);    // saturated
  EXPECT_EQ(p.BackoffFor(1000), 1u << 20);  // no shift overflow

  p.backoff_base_ios = 3;
  EXPECT_EQ(p.BackoffFor(1000), 3u << 20);
}

// ---------------------------------------------------------------------
// Recovery metrics export (backoff histogram + adaptive-mode gauge)
// ---------------------------------------------------------------------

TEST(RecoveryMetrics, BackoffHistogramAndModeGaugeExport) {
  metrics::Registry reg;
  extmem::Device dev(256, 16);
  dev.set_metrics(&reg);

  FaultConfig config;
  config.seed = 5;
  config.read_fail = 1.0;  // dead device: retries, backoffs, then a flip
  config.retry.max_retries = 4;
  config.retry.backoff_base_ios = 1;
  config.adaptive_retry = true;
  FaultInjector injector(config);
  dev.set_fault_injector(&injector);

  for (int i = 0; i < 4; ++i) {
    const auto r = CatchStatus([&] {
      dev.ChargeReadBlocks(1);
      return 0;
    });
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  }
  EXPECT_EQ(injector.retry_mode(), RetryMode::kFailFast);
  EXPECT_GT(injector.stats().backoff_ios, 0u);

  const std::string text = reg.ToPrometheusText();
  EXPECT_NE(text.find("emjoin_recovery_backoff_ios"), std::string::npos)
      << text;
  EXPECT_NE(text.find("tag=\"recovery\""), std::string::npos) << text;
  EXPECT_NE(text.find("emjoin_adaptive_retry_mode"), std::string::npos)
      << text;
  std::string error;
  EXPECT_TRUE(metrics::CheckPrometheusText(text, &error)) << error;
}

// ---------------------------------------------------------------------
// Graceful degradation: every operator family completes (degraded, not
// terminal) under an adversarial shrink-at-every-poll to the 4B floor.
// ---------------------------------------------------------------------

std::uint64_t FaultFreeCount(int family) {
  extmem::Device dev(256, 16);
  std::vector<storage::Relation> rels;
  switch (family) {
    case 0: rels = workload::L3WorstCase(&dev, 8, 1, 8); break;
    case 1: rels = workload::StarWorstCase(&dev, {3, 4}); break;
    case 2: rels = workload::CrossProductLine(&dev, {1, 4, 1, 4, 1}); break;
    default: rels = workload::UnbalancedL5(&dev, 4, 4, {2, 12, 8, 2}); break;
  }
  CountingSink sink;
  extmem::Status st;
  if (family == 1) {
    if (const auto r = core::TryYannakakisJoin(rels, sink.AsEmitFn()); !r.ok())
      st = r.status();
  } else {
    if (const auto r = core::TryJoinAuto(rels, sink.AsEmitFn()); !r.ok())
      st = r.status();
  }
  EXPECT_TRUE(st.ok()) << st.ToString();
  return sink.count();
}

TEST(BudgetDegradation, OperatorFamiliesCompleteAtTheFloor) {
  for (int family = 0; family < 4; ++family) {
    const std::uint64_t expect = FaultFreeCount(family);

    extmem::Device dev(256, 16);
    std::vector<storage::Relation> rels;
    switch (family) {
      case 0: rels = workload::L3WorstCase(&dev, 8, 1, 8); break;
      case 1: rels = workload::StarWorstCase(&dev, {3, 4}); break;
      case 2: rels = workload::CrossProductLine(&dev, {1, 4, 1, 4, 1}); break;
      default:
        rels = workload::UnbalancedL5(&dev, 4, 4, {2, 12, 8, 2});
        break;
    }

    FaultConfig config;
    config.shrink_every_poll = true;  // adversarial: straight to the floor
    FaultInjector injector(config);
    dev.set_fault_injector(&injector);

    CountingSink sink;
    extmem::Status st;
    if (family == 1) {
      if (const auto r = core::TryYannakakisJoin(rels, sink.AsEmitFn());
          !r.ok())
        st = r.status();
    } else {
      if (const auto r = core::TryJoinAuto(rels, sink.AsEmitFn()); !r.ok())
        st = r.status();
    }
    ASSERT_TRUE(st.ok()) << "family " << family << ": " << st.ToString();
    EXPECT_EQ(sink.count(), expect) << "family " << family;
    EXPECT_GT(injector.stats().shrinks, 0u) << "family " << family;
  }
}

}  // namespace
}  // namespace emjoin
