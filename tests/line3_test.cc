#include "core/line3.h"

#include <gtest/gtest.h>

#include "core/reduce.h"

#include "core/reference.h"
#include "tests/test_util.h"
#include "workload/constructions.h"
#include "workload/random_instance.h"

namespace emjoin::core {
namespace {

using storage::Relation;
using test::MakeRel;

std::vector<std::vector<Value>> RunLine3(const Relation& r1,
                                         const Relation& r2,
                                         const Relation& r3) {
  CollectingSink sink;
  LineJoin3(r1, r2, r3, sink.AsEmitFn());
  return test::Sorted(std::move(sink.results()));
}

TEST(LineJoin3Test, TinyInstance) {
  extmem::Device dev(16, 4);
  const Relation r1 = MakeRel(&dev, {0, 1}, {{1, 5}, {2, 5}, {3, 6}});
  const Relation r2 = MakeRel(&dev, {1, 2}, {{5, 8}, {6, 9}});
  const Relation r3 = MakeRel(&dev, {2, 3}, {{8, 100}, {9, 200}});
  EXPECT_EQ(RunLine3(r1, r2, r3), ReferenceJoin({r1, r2, r3}));
}

TEST(LineJoin3Test, HeavyMiddleValues) {
  extmem::Device dev(8, 2);
  std::vector<storage::Tuple> r1_rows;
  for (Value i = 0; i < 30; ++i) r1_rows.push_back({i, 0});  // heavy v2=0
  for (Value i = 100; i < 104; ++i) r1_rows.push_back({i, 1});
  const Relation r1 = MakeRel(&dev, {0, 1}, r1_rows);
  const Relation r2 =
      MakeRel(&dev, {1, 2}, {{0, 10}, {0, 11}, {1, 12}, {2, 13}});
  const Relation r3 =
      MakeRel(&dev, {2, 3}, {{10, 1}, {11, 2}, {11, 3}, {12, 4}});
  EXPECT_EQ(RunLine3(r1, r2, r3), ReferenceJoin({r1, r2, r3}));
}

TEST(LineJoin3Test, RandomSweepMatchesReference) {
  for (std::uint64_t seed = 30; seed < 40; ++seed) {
    extmem::Device dev(seed % 3 == 0 ? 8 : 16, 4);
    workload::RandomOptions opts;
    opts.seed = seed;
    opts.domain_size = 5 + seed % 4;
    opts.zipf_s = (seed % 3) * 0.7;
    const auto rels = workload::RandomInstance(
        &dev, query::JoinQuery::Line(3), {40, 40, 40}, opts);
    EXPECT_EQ(RunLine3(rels[0], rels[1], rels[2]), ReferenceJoin(rels))
        << "seed " << seed;
  }
}

TEST(LineJoin3Test, WorstCaseIoIsNearOptimal) {
  // Theorem 1: Õ(N1*N3/(MB)) on the Fig. 3 instance.
  extmem::Device dev(64, 8);
  const TupleCount n = 2048;
  const auto rels = workload::L3WorstCase(&dev, n, 1, n);
  const extmem::IoStats before = dev.stats();
  CountingSink sink;
  LineJoin3(rels[0], rels[1], rels[2], sink.AsEmitFn());
  const extmem::IoStats used = dev.stats() - before;
  EXPECT_EQ(sink.count(), n * n);
  const double bound =
      static_cast<double>(n) * n / (dev.M() * dev.B()) + 3.0 * n / dev.B();
  EXPECT_LE(static_cast<double>(used.total()), 12 * bound);
  // And it must be far below the naive 3-relation nested loop
  // N1*N2*N3/(M^2 B) ... here N2=1 so compare against Yannakakis-style
  // |intermediate|/B = n^2/B instead.
  EXPECT_LT(static_cast<double>(used.total()),
            static_cast<double>(n) * n / dev.B() / 4);
}

TEST(LineJoin3Test, ToDiskMatchesEmitModel) {
  extmem::Device dev(16, 4);
  workload::RandomOptions opts;
  opts.seed = 7;
  opts.domain_size = 5;
  auto rels = workload::RandomInstance(&dev, query::JoinQuery::Line(3),
                                       {30, 30, 30}, opts);
  rels = FullyReduce(rels);
  const Relation out = LineJoin3ToDisk(rels[0], rels[1], rels[2]);
  EXPECT_EQ(test::Sorted(out.ReadAll()), ReferenceJoin(rels));
}

}  // namespace
}  // namespace emjoin::core
