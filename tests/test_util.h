#ifndef EMJOIN_TESTS_TEST_UTIL_H_
#define EMJOIN_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <vector>

#include "core/emit.h"
#include "core/reference.h"
#include "storage/relation.h"

namespace emjoin::test {

/// Builds a relation over `attrs` from explicit rows.
inline storage::Relation MakeRel(extmem::Device* dev,
                                 std::vector<storage::AttrId> attrs,
                                 std::vector<storage::Tuple> rows) {
  return storage::Relation::FromTuples(dev, storage::Schema(std::move(attrs)),
                                       rows);
}

/// Sorted result rows from a collecting sink.
inline std::vector<std::vector<Value>> Sorted(
    std::vector<std::vector<Value>> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Runs `algo(emit)` and returns the sorted collected results.
template <typename Algo>
std::vector<std::vector<Value>> CollectSorted(Algo&& algo) {
  core::CollectingSink sink;
  algo(sink.AsEmitFn());
  return Sorted(std::move(sink.results()));
}

/// Reorders each reference row from `from` attribute order to `to` order.
inline std::vector<std::vector<Value>> Reorder(
    const std::vector<std::vector<Value>>& rows,
    const core::ResultSchema& from, const core::ResultSchema& to) {
  std::vector<std::vector<Value>> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<Value> r;
    r.reserve(to.attrs.size());
    for (storage::AttrId a : to.attrs) r.push_back(row[from.PositionOf(a)]);
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace emjoin::test

#endif  // EMJOIN_TESTS_TEST_UTIL_H_
