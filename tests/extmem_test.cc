#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "extmem/device.h"
#include "extmem/file.h"
#include "extmem/sorter.h"

namespace emjoin::extmem {
namespace {

TEST(DeviceTest, ChargesCeilOfTuplesOverB) {
  Device dev(64, 8);
  dev.ChargeReadTuples(1);
  EXPECT_EQ(dev.stats().block_reads, 1u);
  dev.ChargeReadTuples(8);
  EXPECT_EQ(dev.stats().block_reads, 2u);
  dev.ChargeReadTuples(9);
  EXPECT_EQ(dev.stats().block_reads, 4u);
  dev.ChargeWriteTuples(0);
  EXPECT_EQ(dev.stats().block_writes, 0u);
}

TEST(DeviceTest, BlocksFor) {
  Device dev(64, 8);
  EXPECT_EQ(dev.BlocksFor(0), 0u);
  EXPECT_EQ(dev.BlocksFor(1), 1u);
  EXPECT_EQ(dev.BlocksFor(8), 1u);
  EXPECT_EQ(dev.BlocksFor(17), 3u);
}

TEST(FileTest, WriterChargesOneWritePerBlock) {
  Device dev(64, 8);
  FilePtr f = dev.NewFile(2);
  {
    FileWriter w(f);
    for (Value i = 0; i < 20; ++i) {
      const Value t[2] = {i, i + 1};
      w.Append(t);
    }
    w.Finish();
  }
  // 20 tuples at B=8: 2 full blocks + 1 partial = 3 writes.
  EXPECT_EQ(dev.stats().block_writes, 3u);
  EXPECT_EQ(f->size(), 20u);
}

TEST(FileTest, WriterFinishIsIdempotent) {
  Device dev(64, 8);
  FilePtr f = dev.NewFile(1);
  FileWriter w(f);
  const Value t[1] = {1};
  w.Append(t);
  w.Finish();
  w.Finish();
  EXPECT_EQ(dev.stats().block_writes, 1u);
}

TEST(FileTest, ReaderChargesOneReadPerBlockTouched) {
  Device dev(64, 8);
  FilePtr f = dev.NewFile(1);
  {
    FileWriter w(f);
    for (Value i = 0; i < 24; ++i) {
      const Value t[1] = {i};
      w.Append(t);
    }
  }
  const IoStats before = dev.stats();
  FileReader r{FileRange(f)};
  Value sum = 0;
  while (!r.Done()) sum += r.Next()[0];
  EXPECT_EQ(sum, 23u * 24u / 2);
  EXPECT_EQ(dev.stats().block_reads - before.block_reads, 3u);
}

TEST(FileTest, RangeReaderChargesBlocksItsSpanTouches) {
  Device dev(64, 8);
  FilePtr f = dev.NewFile(1);
  {
    FileWriter w(f);
    for (Value i = 0; i < 32; ++i) {
      const Value t[1] = {i};
      w.Append(t);
    }
  }
  const IoStats before = dev.stats();
  // Tuples [6, 10): straddles blocks 0 and 1 -> 2 reads.
  FileReader r{FileRange(f, 6, 10)};
  TupleCount n = 0;
  while (!r.Done()) {
    r.Next();
    ++n;
  }
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(dev.stats().block_reads - before.block_reads, 2u);
}

TEST(FileTest, PeekDoesNotAdvanceAndChargesOnce) {
  Device dev(64, 8);
  FilePtr f = dev.NewFile(1);
  {
    FileWriter w(f);
    const Value t[1] = {7};
    w.Append(t);
  }
  const IoStats before = dev.stats();
  FileReader r{FileRange(f)};
  EXPECT_EQ(r.Peek()[0], 7u);
  EXPECT_EQ(r.Peek()[0], 7u);
  EXPECT_EQ(r.Next()[0], 7u);
  EXPECT_TRUE(r.Done());
  EXPECT_EQ(dev.stats().block_reads - before.block_reads, 1u);
}

TEST(MemoryGaugeTest, TracksResidentAndHighWater) {
  MemoryGauge gauge(100);
  {
    MemoryReservation a(&gauge, 30);
    EXPECT_EQ(gauge.resident(), 30u);
    {
      MemoryReservation b(&gauge, 50);
      EXPECT_EQ(gauge.resident(), 80u);
    }
    EXPECT_EQ(gauge.resident(), 30u);
  }
  EXPECT_EQ(gauge.resident(), 0u);
  EXPECT_EQ(gauge.high_water(), 80u);
}

TEST(MemoryGaugeTest, ReservationResizeAndMove) {
  MemoryGauge gauge(100);
  MemoryReservation a(&gauge, 10);
  a.Resize(25);
  EXPECT_EQ(gauge.resident(), 25u);
  MemoryReservation b = std::move(a);
  EXPECT_EQ(gauge.resident(), 25u);
  b.Resize(5);
  EXPECT_EQ(gauge.resident(), 5u);
}

TEST(MemoryGaugeTest, HighWaterUnderNestedReservations) {
  MemoryGauge gauge(100);
  {
    MemoryReservation a(&gauge, 20);
    {
      MemoryReservation b(&gauge, 30);
      MemoryReservation c(&gauge, 10);
      EXPECT_EQ(gauge.resident(), 60u);
    }
    EXPECT_EQ(gauge.high_water(), 60u);
    // A later, smaller burst must not lower the watermark.
    MemoryReservation d(&gauge, 15);
    EXPECT_EQ(gauge.high_water(), 60u);
  }
  EXPECT_EQ(gauge.resident(), 0u);
  EXPECT_EQ(gauge.high_water(), 60u);
}

TEST(MemoryGaugeTest, WatermarkScopesTrackLocalPeaksAndFoldUpward) {
  MemoryGauge gauge(100);
  MemoryReservation ambient(&gauge, 10);
  gauge.PushWatermark();  // outer scope, starts at 10
  { MemoryReservation a(&gauge, 25); }  // outer-only peak: 35
  gauge.PushWatermark();  // inner scope, starts at 10
  { MemoryReservation b(&gauge, 5); }
  EXPECT_EQ(gauge.PopWatermark(), 15u);  // inner peak
  // The inner peak (15) is below the outer's own 35; folding keeps 35.
  EXPECT_EQ(gauge.PopWatermark(), 35u);

  // A child peak above the parent's own folds upward on pop.
  gauge.PushWatermark();
  gauge.PushWatermark();
  { MemoryReservation c(&gauge, 80); }
  EXPECT_EQ(gauge.PopWatermark(), 90u);
  EXPECT_EQ(gauge.PopWatermark(), 90u);

  // Watermark scopes never disturb the global high water.
  EXPECT_EQ(gauge.high_water(), 90u);
}

TEST(DeviceTest, ScopedIoTagRestoredOnUnwind) {
  Device dev(64, 8);
  dev.ChargeReadBlocks(1);  // default tag: "scan"
  {
    ScopedIoTag sort(&dev, "sort");
    dev.ChargeReadBlocks(2);
    {
      ScopedIoTag semi(&dev, "semijoin");
      dev.ChargeWriteBlocks(3);
    }
    // Inner scope unwound: charges attribute to "sort" again.
    dev.ChargeReadBlocks(4);
  }
  // All scopes unwound: back to the default tag.
  dev.ChargeWriteBlocks(5);

  const auto& tags = dev.per_tag();
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags.at("scan"), (IoStats{1, 5}));
  EXPECT_EQ(tags.at("sort"), (IoStats{6, 0}));
  EXPECT_EQ(tags.at("semijoin"), (IoStats{0, 3}));
  // The per-tag breakdown decomposes stats() exactly.
  EXPECT_EQ(Total(tags), dev.stats());
}

TEST(DeviceTest, SameContentTagsFromDifferentSitesMerge) {
  Device dev(64, 8);
  // Distinct string objects with equal content must share one row, as
  // when two translation units both tag their charges "sort".
  const std::string site_a = "sort";
  const std::string site_b = std::string("so") + "rt";
  {
    ScopedIoTag tag(&dev, site_a.c_str());
    dev.ChargeReadBlocks(2);
  }
  {
    ScopedIoTag tag(&dev, site_b.c_str());
    dev.ChargeReadBlocks(3);
  }
  ASSERT_EQ(dev.per_tag().count("sort"), 1u);
  EXPECT_EQ(dev.per_tag().at("sort"), (IoStats{5, 0}));
}

class SorterTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(SorterTest, SortsAndChargesExpectedPasses) {
  const auto [n, m, b] = GetParam();
  Device dev(m, b);
  FilePtr f = dev.NewFile(2);
  std::mt19937_64 rng(static_cast<std::uint64_t>(n) * 1000003 + m);
  std::vector<std::pair<Value, Value>> rows;
  {
    FileWriter w(f);
    for (int i = 0; i < n; ++i) {
      const Value t[2] = {rng() % 97, rng() % 1000};
      rows.push_back({t[0], t[1]});
      w.Append(t);
    }
  }
  const IoStats before = dev.stats();
  const std::uint32_t keys[1] = {0};
  FilePtr sorted = ExternalSort(FileRange(f), keys);

  ASSERT_EQ(sorted->size(), static_cast<TupleCount>(n));
  for (TupleCount i = 1; i < sorted->size(); ++i) {
    EXPECT_LE(sorted->RawTuple(i - 1)[0], sorted->RawTuple(i)[0]);
  }
  // Content preserved.
  std::vector<std::pair<Value, Value>> got;
  for (TupleCount i = 0; i < sorted->size(); ++i) {
    got.push_back({sorted->RawTuple(i)[0], sorted->RawTuple(i)[1]});
  }
  std::sort(rows.begin(), rows.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(rows, got);

  // I/O: run formation reads+writes everything once; each merge pass
  // reads+writes once more. Allow per-run partial-block slack.
  const std::uint64_t passes = MergePassesFor(dev, n);
  const std::uint64_t blocks = dev.BlocksFor(n);
  const std::uint64_t runs = (n + m - 1) / m;
  const IoStats used = dev.stats() - before;
  EXPECT_LE(used.total(), 2 * (passes + 1) * (blocks + runs) + 4 * passes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SorterTest,
    ::testing::Values(std::make_tuple(0, 16, 4), std::make_tuple(1, 16, 4),
                      std::make_tuple(15, 16, 4), std::make_tuple(16, 16, 4),
                      std::make_tuple(17, 16, 4), std::make_tuple(100, 16, 4),
                      std::make_tuple(1000, 16, 4),
                      std::make_tuple(1000, 32, 4),
                      std::make_tuple(5000, 64, 8),
                      std::make_tuple(257, 16, 16)));

TEST(SorterTest, MergePassesForSmallInputsIsZero) {
  Device dev(16, 4);
  EXPECT_EQ(MergePassesFor(dev, 10), 0u);
  EXPECT_EQ(MergePassesFor(dev, 16), 0u);
  EXPECT_GE(MergePassesFor(dev, 17), 1u);
}

TEST(SorterTest, CompareTuplesTieBreaksOnFullTuple) {
  const Value a[3] = {1, 2, 3};
  const Value b[3] = {1, 2, 4};
  const std::uint32_t keys[1] = {0};
  EXPECT_EQ(CompareTuples(a, a, 3, keys), 0);
  EXPECT_LT(CompareTuples(a, b, 3, keys), 0);
  EXPECT_GT(CompareTuples(b, a, 3, keys), 0);
}

}  // namespace
}  // namespace emjoin::extmem
