// Tests for the fault-injection and recovery layer: the typed error
// model, the seeded injector's determinism, recovery-tag accounting,
// memory-budget enforcement through the core operators, and the
// sorter's graceful degradation (budget shrink => extra merge passes)
// and manifest-based resume.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dispatch.h"
#include "core/yannakakis.h"
#include "extmem/device.h"
#include "extmem/fault_injector.h"
#include "extmem/file.h"
#include "extmem/memory_gauge.h"
#include "extmem/sorter.h"
#include "extmem/status.h"
#include "storage/relation.h"
#include "trace/tracer.h"
#include "workload/constructions.h"

namespace emjoin {
namespace {

using extmem::CatchStatus;
using extmem::FaultConfig;
using extmem::FaultInjector;
using extmem::Result;
using extmem::Status;
using extmem::StatusCode;
using extmem::StatusException;

std::vector<storage::Tuple> XorshiftRows(TupleCount n) {
  std::vector<storage::Tuple> rows;
  rows.reserve(n);
  std::uint64_t x = 88172645463325252ull;
  for (TupleCount i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rows.push_back({x % 100000, i});
  }
  return rows;
}

extmem::IoStats RecoveryCharges(const extmem::Device& dev) {
  extmem::IoStats total;
  for (const auto& [tag, stats] : dev.per_tag()) {
    if (tag == "recovery") total += stats;
  }
  return total;
}

extmem::IoStats TagCharges(const extmem::Device& dev, const std::string& t) {
  extmem::IoStats total;
  for (const auto& [tag, stats] : dev.per_tag()) {
    if (tag == t) total += stats;
  }
  return total;
}

// ---------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------

TEST(StatusTest, OkAndErrorToString) {
  const Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  const Status err(StatusCode::kIoError, "disk on fire");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kIoError);
  EXPECT_EQ(err.ToString(), "IO_ERROR: disk on fire");
  EXPECT_EQ(extmem::StatusCodeName(StatusCode::kBudgetExceeded),
            "BUDGET_EXCEEDED");
}

TEST(StatusTest, CatchStatusConvertsExceptionsToResults) {
  const Result<int> ok = CatchStatus([] { return 7; });
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);

  const Result<int> err = CatchStatus([]() -> int {
    // lint: allow(status-boundary) — this test simulates the substrate
    // raising; production code outside src/extmem uses ThrowStatus.
    throw StatusException(Status(StatusCode::kDeviceFull, "full"));
  });
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kDeviceFull);
  EXPECT_EQ(err.status().message(), "full");
}

TEST(StatusTest, StatusExceptionCarriesMessageAsWhat) {
  const StatusException e(Status(StatusCode::kDataLoss, "torn block"));
  EXPECT_EQ(std::string(e.what()), "DATA_LOSS: torn block");
  EXPECT_EQ(e.status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------
// RetryPolicy / FaultInjector
// ---------------------------------------------------------------------

TEST(RetryPolicyTest, BackoffDoublesPerAttempt) {
  const extmem::RetryPolicy policy{.max_retries = 4, .backoff_base_ios = 2};
  EXPECT_EQ(policy.BackoffFor(0), 2u);
  EXPECT_EQ(policy.BackoffFor(1), 4u);
  EXPECT_EQ(policy.BackoffFor(2), 8u);
  EXPECT_EQ(policy.BackoffFor(3), 16u);
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultConfig config;
  config.seed = 1234;
  config.read_fail = 0.5;
  config.write_fail = 0.5;
  FaultInjector a(config);
  FaultInjector b(config);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.NextReadFails(), b.NextReadFails()) << "draw " << i;
    EXPECT_EQ(a.NextWriteFails(), b.NextWriteFails()) << "draw " << i;
  }
  EXPECT_EQ(a.stats().read_faults, b.stats().read_faults);
  EXPECT_EQ(a.stats().write_faults, b.stats().write_faults);
  EXPECT_NE(a.Describe().find("seed=1234"), std::string::npos);
}

TEST(FaultInjectorTest, ScheduledShrinksFireOncePerTickAndRespectFloor) {
  FaultConfig config;
  config.shrink_at_ios = {100, 200};
  FaultInjector injector(config);

  // Before the first tick: nothing.
  EXPECT_FALSE(injector.NextShrink(50, 1024, 64).has_value());
  // First poll at-or-after tick 100 fires it exactly once.
  const auto first = injector.NextShrink(150, 1024, 64);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 512u);
  EXPECT_FALSE(injector.NextShrink(160, 512, 64).has_value());
  // Second tick, and the floor clamps the result.
  const auto second = injector.NextShrink(250, 512, 300);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 300u);
  // At the floor no further shrink is possible.
  EXPECT_FALSE(injector.NextShrink(900, 300, 300).has_value());
  EXPECT_EQ(injector.stats().shrinks, 2u);
}

TEST(FaultInjectorTest, UnsortedScheduleStillFiresInTickOrder) {
  FaultConfig config;
  config.shrink_at_ios = {900, 100};  // constructor sorts
  FaultInjector injector(config);
  const auto first = injector.NextShrink(150, 1024, 64);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 512u);
}

// ---------------------------------------------------------------------
// Device fault paths
// ---------------------------------------------------------------------

TEST(DeviceFaultTest, ZeroConfigInjectorChargesNothingExtra) {
  extmem::Device plain(256, 16);
  extmem::Device faulty(256, 16);
  FaultConfig config;  // all probabilities zero, no capacity, no shrinks
  config.seed = 7;
  FaultInjector injector(config);
  faulty.set_fault_injector(&injector);

  for (extmem::Device* dev : {&plain, &faulty}) {
    dev->ChargeReadBlocks(10);
    dev->ChargeWriteBlocks(5);
    dev->ChargeReadTuples(100);
    dev->ChargeWriteTuples(33);
    EXPECT_EQ(dev->PlanningBudget(), 256u);
  }
  EXPECT_EQ(plain.stats().block_reads, faulty.stats().block_reads);
  EXPECT_EQ(plain.stats().block_writes, faulty.stats().block_writes);
  EXPECT_EQ(injector.stats().TotalFaults(), 0u);
  EXPECT_EQ(RecoveryCharges(faulty).total(), 0u);
}

TEST(DeviceFaultTest, ReadRetryExhaustionIsTypedWithBackoffCharges) {
  extmem::Device dev(256, 16);
  FaultConfig config;
  config.read_fail = 1.0;  // every attempt fails deterministically
  config.retry.max_retries = 2;
  FaultInjector injector(config);
  dev.set_fault_injector(&injector);

  const auto r = CatchStatus([&] {
    dev.ChargeReadBlocks(1);
    return 0;
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_NE(r.status().message().find("seed="), std::string::npos);
  EXPECT_EQ(injector.stats().exhaustions, 1u);
  EXPECT_EQ(injector.stats().read_faults, 3u);  // initial + 2 retries
  // Recovery absorbed every tick: 3 failed transfers + backoff 1 + 2.
  EXPECT_EQ(RecoveryCharges(dev).block_reads, 6u);
  EXPECT_EQ(injector.stats().backoff_ios, 3u);
  // The caller's tag saw nothing.
  EXPECT_EQ(TagCharges(dev, "scan").total(), 0u);
}

TEST(DeviceFaultTest, DeviceFullIsPermanentTypedError) {
  extmem::Device dev(256, 16);
  FaultConfig config;
  config.device_capacity_blocks = 2;
  FaultInjector injector(config);
  dev.set_fault_injector(&injector);

  const auto r = CatchStatus([&] {
    dev.ChargeWriteBlocks(3);
    return 0;
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeviceFull);
  EXPECT_EQ(dev.stats().block_writes, 2u);  // the two that fit landed
}

TEST(DeviceFaultTest, UnrepairableTornWriteIsDataLoss) {
  extmem::Device dev(256, 16);
  FaultConfig config;
  config.torn_write = 1.0;  // every landing tears, every rewrite re-tears
  config.retry.max_retries = 2;
  FaultInjector injector(config);
  dev.set_fault_injector(&injector);

  const auto r = CatchStatus([&] {
    dev.ChargeWriteBlocks(1);
    return 0;
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(injector.stats().exhaustions, 1u);
  EXPECT_GT(injector.stats().torn_writes, 0u);
}

// The accounting invariant the cost model depends on: with transient
// faults injected into a full external sort, the operator-attributed
// tags ("scan", "sort") count exactly the fault-free charges, and every
// injected fault, retry, backoff tick, verify read, and rewrite lands
// under "recovery" — so totals = fault-free totals + recovery.
TEST(DeviceFaultTest, RecoveryTagAbsorbsAllFaultOverhead) {
  extmem::Device dev(1024, 64);
  const std::vector<storage::Tuple> rows = XorshiftRows(20000);
  const storage::Relation rel =
      storage::Relation::FromTuples(&dev, storage::Schema({0, 1}), rows);

  FaultConfig config;
  config.seed = 99;
  config.read_fail = 0.02;
  config.write_fail = 0.02;
  config.torn_write = 0.01;
  config.retry.max_retries = 10;  // transient faults never exhaust here
  FaultInjector injector(config);
  dev.set_fault_injector(&injector);

  const std::uint32_t key[] = {0};
  const auto sorted = extmem::TryExternalSort(rel.range(), key);
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  ASSERT_EQ((*sorted)->size(), rows.size());

  // Golden A's fault-free per-tag profile, unchanged under faults.
  const extmem::IoStats scan = TagCharges(dev, "scan");
  const extmem::IoStats sort = TagCharges(dev, "sort");
  EXPECT_EQ(scan.block_reads, 0u);
  EXPECT_EQ(scan.block_writes, 313u);
  EXPECT_EQ(sort.block_reads, 939u);
  EXPECT_EQ(sort.block_writes, 939u);

  // The seed injects a nonzero schedule, and recovery absorbs all of it.
  EXPECT_GT(injector.stats().TotalFaults(), 0u);
  const extmem::IoStats recovery = RecoveryCharges(dev);
  EXPECT_GT(recovery.total(), 0u);
  EXPECT_EQ(dev.stats().block_reads, 939u + recovery.block_reads);
  EXPECT_EQ(dev.stats().block_writes, 1252u + recovery.block_writes);
}

// ---------------------------------------------------------------------
// MemoryGauge enforcement
// ---------------------------------------------------------------------

TEST(MemoryGaugeTest, EnforcedLimitRaisesTypedError) {
  extmem::MemoryGauge gauge(256);
  gauge.SetEnforcedLimit(10);
  gauge.Acquire(10);  // exactly at the limit is fine
  try {
    gauge.Acquire(1);
    FAIL() << "expected kBudgetExceeded";
    // lint: allow(status-boundary) — asserts the exception type itself.
  } catch (const StatusException& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kBudgetExceeded);
  }
  gauge.Release(10);
}

TEST(MemoryGaugeTest, ShrinkGrandfathersExistingResidency) {
  extmem::MemoryGauge gauge(256);
  gauge.Acquire(100);
  gauge.SetEnforcedLimit(50);  // resident 100 > limit: grandfathered
  EXPECT_EQ(gauge.resident(), 100u);
  EXPECT_THROW(gauge.Acquire(1), StatusException);
  gauge.Release(60);  // back under the limit
  gauge.Acquire(5);
  EXPECT_EQ(gauge.resident(), 45u);
  gauge.Release(45);
}

TEST(MemoryGaugeTest, ClearEnforcedLimitDisablesEnforcement) {
  extmem::MemoryGauge gauge(256);
  gauge.SetEnforcedLimit(1);
  EXPECT_TRUE(gauge.enforcing());
  gauge.ClearEnforcedLimit();
  EXPECT_FALSE(gauge.enforcing());
  gauge.Acquire(1000);  // no limit: only recorded
  EXPECT_EQ(gauge.high_water(), 1000u);
  gauge.Release(1000);
}

// ---------------------------------------------------------------------
// Typed errors out of the core operators
// ---------------------------------------------------------------------

TEST(OperatorBudgetTest, SorterBudgetOverrunIsTypedNotAssert) {
  extmem::Device dev(256, 16);
  const storage::Relation rel = storage::Relation::FromTuples(
      &dev, storage::Schema({0, 1}), XorshiftRows(1000));
  dev.gauge().SetEnforcedLimit(8);  // below one block
  const std::uint32_t key[] = {0};
  const auto sorted = extmem::TryExternalSort(rel.range(), key);
  ASSERT_FALSE(sorted.ok());
  EXPECT_EQ(sorted.status().code(), StatusCode::kBudgetExceeded);
}

TEST(OperatorBudgetTest, JoinAutoBudgetOverrunIsTypedNotAssert) {
  extmem::Device dev(256, 16);
  const auto rels = workload::L3WorstCase(&dev, 64, 1, 64);
  dev.gauge().SetEnforcedLimit(4);
  const auto report =
      core::TryJoinAuto(rels, [](std::span<const Value>) {});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kBudgetExceeded);
}

TEST(OperatorBudgetTest, YannakakisBudgetOverrunIsTypedNotAssert) {
  extmem::Device dev(256, 16);
  const auto rels = workload::L3WorstCase(&dev, 64, 1, 64);
  dev.gauge().SetEnforcedLimit(4);
  const auto report =
      core::TryYannakakisJoin(rels, [](std::span<const Value>) {});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kBudgetExceeded);
}

TEST(OperatorBudgetTest, NonAcyclicQueryIsInvalidInput) {
  extmem::Device dev(256, 16);
  std::vector<storage::Relation> triangle;
  triangle.push_back(storage::Relation::FromTuples(
      &dev, storage::Schema({0, 1}), {{0, 0}}));
  triangle.push_back(storage::Relation::FromTuples(
      &dev, storage::Schema({1, 2}), {{0, 0}}));
  triangle.push_back(storage::Relation::FromTuples(
      &dev, storage::Schema({2, 0}), {{0, 0}}));

  const auto auto_report =
      core::TryJoinAuto(triangle, [](std::span<const Value>) {});
  ASSERT_FALSE(auto_report.ok());
  EXPECT_EQ(auto_report.status().code(), StatusCode::kInvalidInput);
  EXPECT_NE(auto_report.status().message().find("acyclic"),
            std::string::npos);

  const auto yann_report =
      core::TryYannakakisJoin(triangle, [](std::span<const Value>) {});
  ASSERT_FALSE(yann_report.ok());
  EXPECT_EQ(yann_report.status().code(), StatusCode::kInvalidInput);
}

// ---------------------------------------------------------------------
// Sorter degradation and resume
// ---------------------------------------------------------------------

// A mid-run budget shrink (M halved, then halved again to the 4B floor)
// must cost only extra merge passes — same bits out, more sweeps, never
// an error. This is the acceptance criterion for graceful degradation.
TEST(SorterDegradation, MidRunShrinkAddsPassesNotErrors) {
  const std::vector<storage::Tuple> rows = XorshiftRows(20000);
  const std::uint32_t key[] = {0};

  // Fault-free baseline: 2 merge passes at fan-in M/B = 16.
  extmem::Device base_dev(1024, 64);
  trace::Tracer base_tracer;
  base_dev.set_tracer(&base_tracer);
  const storage::Relation base_rel = storage::Relation::FromTuples(
      &base_dev, storage::Schema({0, 1}), rows);
  const extmem::FilePtr expected = extmem::ExternalSort(base_rel.range(), key);
  const auto base_passes = base_tracer.totals().find("merge_passes");
  ASSERT_NE(base_passes, base_tracer.totals().end());
  EXPECT_EQ(base_passes->second, 2u);

  // Shrunk run: scheduled shrinks 1024 -> 512 -> 256 (the 4B floor
  // blocks the third tick). Probabilistic faults all zero.
  extmem::Device dev(1024, 64);
  trace::Tracer tracer;
  dev.set_tracer(&tracer);
  const storage::Relation rel =
      storage::Relation::FromTuples(&dev, storage::Schema({0, 1}), rows);
  FaultConfig config;
  config.shrink_at_ios = {300, 600, 900};
  FaultInjector injector(config);
  dev.set_fault_injector(&injector);

  const auto sorted = extmem::TryExternalSort(rel.range(), key);
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  EXPECT_EQ(injector.stats().shrinks, 2u);  // third tick hit the floor
  EXPECT_EQ(injector.stats().TotalFaults(), 0u);

  // Bit-identical output.
  ASSERT_EQ((*sorted)->size(), expected->size());
  const std::uint32_t w = expected->width();
  for (TupleCount i = 0; i < expected->size(); ++i) {
    ASSERT_EQ(0, std::memcmp((*sorted)->RawTuple(i), expected->RawTuple(i),
                             w * sizeof(Value)))
        << "tuple " << i;
  }

  // The cost of degradation is only the suppressed logarithmic factor:
  // more merge passes, observed both by the tracer and as extra sweeps.
  const auto passes = tracer.totals().find("merge_passes");
  ASSERT_NE(passes, tracer.totals().end());
  EXPECT_GT(passes->second, 2u);
  const auto shrinks = tracer.totals().find("budget_shrinks");
  ASSERT_NE(shrinks, tracer.totals().end());
  EXPECT_EQ(shrinks->second, 2u);
  EXPECT_EQ(RecoveryCharges(dev).total(), 0u);  // no faults => no recovery
}

TEST(SorterDegradation, ShrinkAtEveryPollStillSortsAtTheFloor) {
  const std::vector<storage::Tuple> rows = XorshiftRows(8000);
  const std::uint32_t key[] = {0};

  extmem::Device base_dev(1024, 64);
  const storage::Relation base_rel = storage::Relation::FromTuples(
      &base_dev, storage::Schema({0, 1}), rows);
  const extmem::FilePtr expected = extmem::ExternalSort(base_rel.range(), key);

  extmem::Device dev(1024, 64);
  const storage::Relation rel =
      storage::Relation::FromTuples(&dev, storage::Schema({0, 1}), rows);
  FaultConfig config;
  config.shrink_every_poll = true;  // adversarial: every planning poll
  FaultInjector injector(config);
  dev.set_fault_injector(&injector);

  const auto sorted = extmem::TryExternalSort(rel.range(), key);
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  EXPECT_GT(injector.stats().shrinks, 0u);
  ASSERT_EQ((*sorted)->size(), expected->size());
  for (TupleCount i = 0; i < expected->size(); ++i) {
    ASSERT_EQ(0, std::memcmp((*sorted)->RawTuple(i), expected->RawTuple(i),
                             expected->width() * sizeof(Value)));
  }
}

// An interrupted multi-pass sort resumes from its manifest: completed
// runs are not redone (run formation is skipped entirely), and the
// resumed sort's output is bit-identical to an uninterrupted one.
TEST(SorterResume, ManifestResumesFromCompletedRuns) {
  const std::vector<storage::Tuple> rows = XorshiftRows(20000);
  const std::uint32_t key[] = {0};

  extmem::Device base_dev(1024, 64);
  const storage::Relation base_rel = storage::Relation::FromTuples(
      &base_dev, storage::Schema({0, 1}), rows);
  const extmem::FilePtr expected = extmem::ExternalSort(base_rel.range(), key);

  extmem::Device dev(1024, 64);
  const storage::Relation rel =
      storage::Relation::FromTuples(&dev, storage::Schema({0, 1}), rows);

  // Capacity chosen to survive run formation (313 writes) and die 100
  // blocks into the first merge pass. Deterministic: no PRNG involved.
  FaultConfig config;
  config.device_capacity_blocks = dev.stats().block_writes + 313 + 100;
  FaultInjector injector(config);
  dev.set_fault_injector(&injector);

  extmem::SortManifest manifest;
  const auto failed = extmem::TryExternalSort(rel.range(), key, &manifest);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kDeviceFull);
  ASSERT_TRUE(manifest.valid);
  EXPECT_FALSE(manifest.runs.empty());

  // "Replace the device": drop the capacity limit, then resume.
  dev.set_fault_injector(nullptr);
  trace::Tracer tracer;
  dev.set_tracer(&tracer);
  const extmem::IoStats before = dev.stats();
  const auto resumed = extmem::TryExternalSort(rel.range(), key, &manifest);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(manifest.valid);  // consumed

  const auto resumes = tracer.totals().find("sort_resumes");
  ASSERT_NE(resumes, tracer.totals().end());
  EXPECT_EQ(resumes->second, 1u);

  // The resume skipped run formation: strictly fewer reads than the
  // 939 a from-scratch sort of this input costs.
  const extmem::IoStats delta = dev.stats() - before;
  EXPECT_LT(delta.block_reads, 939u);

  ASSERT_EQ((*resumed)->size(), expected->size());
  for (TupleCount i = 0; i < expected->size(); ++i) {
    ASSERT_EQ(0, std::memcmp((*resumed)->RawTuple(i), expected->RawTuple(i),
                             expected->width() * sizeof(Value)))
        << "tuple " << i;
  }
}

}  // namespace
}  // namespace emjoin
