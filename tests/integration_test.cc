// End-to-end integration: the dispatcher on every query class the paper
// analyses (lines, stars, lollipops, dumbbells, general trees), verified
// against the reference oracle.
#include <gtest/gtest.h>

#include "core/dispatch.h"
#include "core/reference.h"
#include "core/yannakakis.h"
#include "tests/test_util.h"
#include "workload/random_instance.h"

namespace emjoin {
namespace {

void ExpectAutoMatchesReference(const query::JoinQuery& q, std::uint64_t seed,
                                TupleCount rel_size, TupleCount domain,
                                double zipf = 0.0) {
  extmem::Device dev(8, 2);
  workload::RandomOptions opts;
  opts.seed = seed;
  opts.domain_size = domain;
  opts.zipf_s = zipf;
  const auto rels = workload::RandomInstance(
      &dev, q, std::vector<TupleCount>(q.num_edges(), rel_size), opts);
  core::CollectingSink sink;
  core::JoinAuto(rels, sink.AsEmitFn());
  EXPECT_EQ(test::Sorted(std::move(sink.results())),
            core::ReferenceJoin(rels));

  // Yannakakis must agree too (independent implementation).
  core::CountingSink ysink;
  core::YannakakisJoin(rels, ysink.AsEmitFn());
  EXPECT_EQ(ysink.count(), core::ReferenceJoinCount(rels));
}

TEST(IntegrationTest, LollipopQueries) {
  for (std::uint32_t petals = 1; petals <= 3; ++petals) {
    ExpectAutoMatchesReference(query::JoinQuery::Lollipop(petals),
                               200 + petals, 12, 3);
  }
}

TEST(IntegrationTest, DumbbellQueries) {
  ExpectAutoMatchesReference(query::JoinQuery::Dumbbell(2, 2), 210, 10, 3);
  ExpectAutoMatchesReference(query::JoinQuery::Dumbbell(3, 2), 211, 8, 3);
  ExpectAutoMatchesReference(query::JoinQuery::Dumbbell(1, 3), 212, 8, 3);
}

TEST(IntegrationTest, LollipopAndDumbbellShapesAreAcyclic) {
  EXPECT_TRUE(query::JoinQuery::Lollipop(3).IsBergeAcyclic());
  EXPECT_TRUE(query::JoinQuery::Dumbbell(3, 4).IsBergeAcyclic());
  EXPECT_TRUE(query::JoinQuery::Lollipop(1).IsBergeAcyclic());
}

TEST(IntegrationTest, BinaryTreeShapedQuery) {
  // A perfect binary tree of binary relations (general acyclic case).
  query::JoinQuery q;
  q.AddRelation(query::Schema({0, 1}));
  q.AddRelation(query::Schema({0, 2}));
  q.AddRelation(query::Schema({1, 3}));
  q.AddRelation(query::Schema({1, 4}));
  q.AddRelation(query::Schema({2, 5}));
  q.AddRelation(query::Schema({2, 6}));
  ASSERT_TRUE(q.IsBergeAcyclic());
  ExpectAutoMatchesReference(q, 220, 10, 3);
}

TEST(IntegrationTest, MixedArityTreeQuery) {
  // A 3-ary core with a chain hanging off one attribute.
  query::JoinQuery q;
  q.AddRelation(query::Schema({0, 1, 2}));
  q.AddRelation(query::Schema({0, 3}));
  q.AddRelation(query::Schema({3, 4}));
  q.AddRelation(query::Schema({1, 5}));
  ASSERT_TRUE(q.IsBergeAcyclic());
  ExpectAutoMatchesReference(q, 230, 10, 3);
  ExpectAutoMatchesReference(q, 231, 14, 3, 1.2);
}

TEST(IntegrationTest, DisconnectedQuery) {
  query::JoinQuery q;
  q.AddRelation(query::Schema({0, 1}));
  q.AddRelation(query::Schema({1, 2}));
  q.AddRelation(query::Schema({5, 6}));
  ExpectAutoMatchesReference(q, 240, 8, 3);
}

TEST(IntegrationTest, EmptyResultInstance) {
  extmem::Device dev(8, 2);
  const auto r1 = test::MakeRel(&dev, {0, 1}, {{1, 10}});
  const auto r2 = test::MakeRel(&dev, {1, 2}, {{20, 5}});
  core::CountingSink sink;
  core::JoinAuto({r1, r2}, sink.AsEmitFn());
  EXPECT_EQ(sink.count(), 0u);
}

TEST(IntegrationTest, EmptyRelationInstance) {
  extmem::Device dev(8, 2);
  const auto r1 = test::MakeRel(&dev, {0, 1}, {{1, 10}});
  const auto r2 = test::MakeRel(&dev, {1, 2}, {});
  core::CountingSink sink;
  core::JoinAuto({r1, r2}, sink.AsEmitFn());
  EXPECT_EQ(sink.count(), 0u);
}

}  // namespace
}  // namespace emjoin
