#include "core/pairwise.h"

#include <gtest/gtest.h>

#include "core/reference.h"
#include "tests/test_util.h"
#include "workload/random_instance.h"

namespace emjoin::core {
namespace {

using storage::Relation;
using test::MakeRel;

std::vector<std::vector<Value>> RunPairwise(const Relation& a,
                                            const Relation& b, bool nl) {
  CollectingSink sink;
  Assignment assignment(MakeResultSchema({a, b}));
  if (nl) {
    BlockNestedLoopJoin(a, b, &assignment, sink.AsEmitFn());
  } else {
    SortMergeJoin(a, b, &assignment, sink.AsEmitFn());
  }
  return test::Sorted(std::move(sink.results()));
}

TEST(PairwiseTest, NestedLoopBasic) {
  extmem::Device dev(16, 4);
  const Relation a = MakeRel(&dev, {0, 1}, {{1, 5}, {2, 5}, {3, 6}});
  const Relation b = MakeRel(&dev, {1, 2}, {{5, 9}, {6, 8}, {7, 7}});
  EXPECT_EQ(RunPairwise(a, b, true), ReferenceJoin({a, b}));
}

TEST(PairwiseTest, NestedLoopCrossProduct) {
  extmem::Device dev(16, 4);
  const Relation a = MakeRel(&dev, {0}, {{1}, {2}});
  const Relation b = MakeRel(&dev, {1}, {{5}, {6}, {7}});
  const auto rows = RunPairwise(a, b, true);
  EXPECT_EQ(rows.size(), 6u);
}

TEST(PairwiseTest, SortMergeMatchesNestedLoop) {
  extmem::Device dev(16, 4);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    workload::RandomOptions opts;
    opts.seed = seed;
    opts.domain_size = 6;
    opts.zipf_s = seed * 0.5;
    const auto rels = workload::RandomInstance(
        &dev, query::JoinQuery::Line(2), {50, 50}, opts);
    EXPECT_EQ(RunPairwise(rels[0], rels[1], false),
              ReferenceJoin({rels[0], rels[1]}))
        << "seed " << seed;
  }
}

TEST(PairwiseTest, SortMergeHandlesHeavyHeavyValues) {
  extmem::Device dev(8, 2);  // M = 8: a value with >= 8 tuples is heavy
  std::vector<storage::Tuple> a_rows, b_rows;
  for (Value i = 0; i < 20; ++i) a_rows.push_back({i, 1});
  for (Value i = 0; i < 15; ++i) b_rows.push_back({1, 100 + i});
  a_rows.push_back({99, 2});
  b_rows.push_back({2, 999});
  const Relation a = MakeRel(&dev, {0, 1}, a_rows);
  const Relation b = MakeRel(&dev, {1, 2}, b_rows);
  const auto rows = RunPairwise(a, b, false);
  EXPECT_EQ(rows.size(), 20u * 15u + 1);
  EXPECT_EQ(rows, ReferenceJoin({a, b}));
}

TEST(PairwiseTest, NestedLoopIoIsChunksTimesInnerScan) {
  extmem::Device dev(16, 4);
  std::vector<storage::Tuple> a_rows, b_rows;
  for (Value i = 0; i < 64; ++i) a_rows.push_back({i, 0});
  for (Value i = 0; i < 128; ++i) b_rows.push_back({0, i});
  const Relation a = MakeRel(&dev, {0, 1}, a_rows);
  const Relation b = MakeRel(&dev, {1, 2}, b_rows);
  const extmem::IoStats before = dev.stats();
  CountingSink sink;
  Assignment assignment(MakeResultSchema({a, b}));
  BlockNestedLoopJoin(a, b, &assignment, sink.AsEmitFn());
  const extmem::IoStats used = dev.stats() - before;
  EXPECT_EQ(sink.count(), 64u * 128u);
  // ceil(64/16) = 4 outer chunks; each reads inner 128/4 = 32 blocks,
  // plus 16 reads for the outer itself: 4*32 + 16 = 144.
  EXPECT_EQ(used.block_reads, 144u);
  EXPECT_EQ(used.block_writes, 0u);  // emit model: nothing written
}

TEST(PairwiseTest, SortMergeInstanceOptimalOnDisjointKeys) {
  // No common values: cost should be ~ one sort + one merge pass, with
  // zero results.
  extmem::Device dev(16, 4);
  std::vector<storage::Tuple> a_rows, b_rows;
  for (Value i = 0; i < 100; ++i) a_rows.push_back({i, 2 * i});
  for (Value i = 0; i < 100; ++i) b_rows.push_back({2 * i + 1, i});
  const Relation a = MakeRel(&dev, {0, 1}, a_rows);
  const Relation b = MakeRel(&dev, {1, 2}, b_rows);
  CountingSink sink;
  Assignment assignment(MakeResultSchema({a, b}));
  const extmem::IoStats before = dev.stats();
  SortMergeJoin(a, b, &assignment, sink.AsEmitFn());
  const extmem::IoStats used = dev.stats() - before;
  EXPECT_EQ(sink.count(), 0u);
  // Õ((N1+N2)/B): generous constant (sort passes + group scans).
  EXPECT_LE(used.total(), 12 * (200 / 4));
}

TEST(PairwiseTest, JoinToDiskMaterializesJoinedSchema) {
  extmem::Device dev(16, 4);
  const Relation a = MakeRel(&dev, {0, 1}, {{1, 5}, {2, 6}});
  const Relation b = MakeRel(&dev, {1, 2}, {{5, 9}, {5, 10}});
  const Relation j = JoinToDisk(a, b);
  EXPECT_EQ(j.schema(), storage::Schema({0, 1, 2}));
  EXPECT_EQ(j.size(), 2u);
  const auto rows = test::Sorted(j.ReadAll());
  EXPECT_EQ(rows, (std::vector<std::vector<Value>>{{1, 5, 9}, {1, 5, 10}}));
}

}  // namespace
}  // namespace emjoin::core
