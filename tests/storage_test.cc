#include <gtest/gtest.h>

#include "storage/relation.h"
#include "storage/schema.h"
#include "storage/tuple.h"
#include "tests/test_util.h"

namespace emjoin::storage {
namespace {

TEST(SchemaTest, PositionsAndContains) {
  const Schema s({3, 7, 5});
  EXPECT_EQ(s.arity(), 3u);
  EXPECT_EQ(s.PositionOf(7), 1u);
  EXPECT_FALSE(s.PositionOf(4).has_value());
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(0));
}

TEST(SchemaTest, CommonAttrs) {
  const Schema a({1, 2, 3});
  const Schema b({3, 4, 1});
  EXPECT_EQ(a.CommonAttrs(b), (std::vector<AttrId>{1, 3}));
  EXPECT_EQ(b.CommonAttrs(a), (std::vector<AttrId>{3, 1}));
}

TEST(TupleTest, ProjectAndJoinable) {
  const Schema from({1, 2, 3});
  const Schema to({3, 1});
  const Tuple t = {10, 20, 30};
  EXPECT_EQ(ProjectTuple(t, from, to), (Tuple{30, 10}));

  const Schema other({2, 4});
  const Tuple u_match = {20, 99};
  const Tuple u_mismatch = {21, 99};
  EXPECT_TRUE(TuplesJoinable(t, from, u_match, other));
  EXPECT_FALSE(TuplesJoinable(t, from, u_mismatch, other));
}

TEST(TupleTest, ConcatAndJoinedSchema) {
  const Schema a({1, 2});
  const Schema b({2, 3});
  EXPECT_EQ(JoinedSchema(a, b), Schema({1, 2, 3}));
  const Tuple ta = {10, 20};
  const Tuple tb = {20, 30};
  EXPECT_EQ(ConcatTuples(ta, a, tb, b), (Tuple{10, 20, 30}));
}

TEST(RelationTest, FromTuplesRoundTrip) {
  extmem::Device dev(16, 4);
  const Relation r = test::MakeRel(&dev, {0, 1}, {{1, 2}, {3, 4}});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.ReadAll(), (std::vector<Tuple>{{1, 2}, {3, 4}}));
  EXPECT_GE(dev.stats().block_writes, 1u);
}

TEST(RelationTest, SortedByAndEqualRange) {
  extmem::Device dev(16, 4);
  const Relation r = test::MakeRel(
      &dev, {0, 1}, {{5, 1}, {3, 2}, {5, 3}, {1, 4}, {3, 5}, {5, 6}});
  const Relation s = r.SortedBy(0);
  ASSERT_TRUE(s.IsSortedBy(0));
  const auto rows = s.ReadAll();
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1][0], rows[i][0]);
  }
  const Relation g5 = s.EqualRange(0, 5);
  EXPECT_EQ(g5.size(), 3u);
  const Relation g2 = s.EqualRange(0, 2);
  EXPECT_TRUE(g2.empty());
}

TEST(RelationTest, SortedByIsNoOpWhenAlreadySorted) {
  extmem::Device dev(16, 4);
  const Relation r = test::MakeRel(&dev, {0, 1}, {{1, 1}, {2, 2}});
  const Relation s = r.SortedBy(0);
  const extmem::IoStats before = dev.stats();
  const Relation s2 = s.SortedBy(0);
  EXPECT_EQ(dev.stats().total(), before.total());
  EXPECT_EQ(s2.size(), 2u);
}

TEST(RelationTest, ForEachGroupVisitsEveryValueOnce) {
  extmem::Device dev(16, 4);
  const Relation r =
      test::MakeRel(&dev, {0, 1}, {{1, 0}, {1, 1}, {2, 0}, {4, 0}, {4, 1}})
          .SortedBy(0);
  std::vector<std::pair<Value, TupleCount>> seen;
  r.ForEachGroup(0, [&](Value v, Relation g) { seen.push_back({v, g.size()}); });
  EXPECT_EQ(seen, (std::vector<std::pair<Value, TupleCount>>{
                      {1, 2}, {2, 1}, {4, 2}}));
}

TEST(RelationTest, GroupCursorMatchesForEachGroup) {
  extmem::Device dev(16, 4);
  const Relation r =
      test::MakeRel(&dev, {0, 1},
                    {{1, 0}, {1, 1}, {2, 0}, {4, 0}, {4, 1}, {4, 2}})
          .SortedBy(0);
  std::vector<std::pair<Value, TupleCount>> seen;
  for (GroupCursor cur(r, 0); !cur.Done(); cur.Advance()) {
    seen.push_back({cur.value(), cur.group().size()});
  }
  EXPECT_EQ(seen, (std::vector<std::pair<Value, TupleCount>>{
                      {1, 2}, {2, 1}, {4, 3}}));
}

TEST(RelationTest, SliceInheritsSortOrder) {
  extmem::Device dev(16, 4);
  const Relation r =
      test::MakeRel(&dev, {0, 1}, {{1, 0}, {2, 0}, {3, 0}}).SortedBy(0);
  const Relation s = r.Slice(1, 3);
  EXPECT_TRUE(s.IsSortedBy(0));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.ReadAll().front(), (Tuple{2, 0}));
}

TEST(MemChunkTest, AppendMatchDistinct) {
  extmem::Device dev(64, 8);
  MemChunk chunk(Schema({0, 1}), &dev);
  const Tuple rows[] = {{1, 10}, {2, 20}, {1, 30}};
  for (const Tuple& t : rows) chunk.Append(t);
  EXPECT_EQ(chunk.size(), 3u);
  EXPECT_EQ(dev.gauge().resident(), 3u);

  TupleCount matches = 0;
  chunk.ForEachMatch(0, 1, [&](TupleRef) { ++matches; });
  EXPECT_EQ(matches, 2u);
  EXPECT_EQ(chunk.DistinctValues(0), (std::vector<Value>{1, 2}));
  chunk.Clear();
  EXPECT_EQ(dev.gauge().resident(), 0u);
}

TEST(MemChunkTest, LoadChunkRespectsBudget) {
  extmem::Device dev(8, 2);
  const Relation r = test::MakeRel(
      &dev, {0}, {{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {9}, {10}});
  extmem::FileReader reader(r.range());
  MemChunk chunk;
  TupleCount total = 0;
  int chunks = 0;
  while (LoadChunk(reader, r.schema(), &dev, dev.M(), &chunk)) {
    EXPECT_LE(chunk.size(), dev.M());
    total += chunk.size();
    ++chunks;
  }
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(chunks, 2);
}

TEST(MemChunkTest, LoadChunkByValueKeepsGroupsTogether) {
  extmem::Device dev(4, 2);
  // Groups of size 3, 3, 2 on attr 0; min_tuples = 4 -> first chunk must
  // take both of the first groups entirely (6 tuples), second chunk 2.
  const Relation r =
      test::MakeRel(&dev, {0, 1},
                    {{1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 1}, {2, 2}, {3, 0},
                     {3, 1}})
          .SortedBy(0);
  extmem::FileReader reader(r.range());
  MemChunk chunk;
  std::vector<TupleCount> chunk_sizes;
  while (LoadChunkByValue(reader, r.schema(), &dev, 0, 4, &chunk)) {
    chunk_sizes.push_back(chunk.size());
    // No group may be split: the last value of a chunk differs from the
    // first value of the next (checked implicitly by sizes).
  }
  EXPECT_EQ(chunk_sizes, (std::vector<TupleCount>{6, 2}));
}

}  // namespace
}  // namespace emjoin::storage
