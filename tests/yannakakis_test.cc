#include "core/yannakakis.h"

#include <gtest/gtest.h>

#include "core/acyclic_join.h"
#include "core/reference.h"
#include "tests/test_util.h"
#include "workload/constructions.h"
#include "workload/random_instance.h"

namespace emjoin::core {
namespace {

TEST(YannakakisTest, MatchesReferenceOnRandomInstances) {
  for (std::uint64_t seed = 100; seed < 106; ++seed) {
    extmem::Device dev(16, 4);
    const query::JoinQuery q = seed % 2 == 0 ? query::JoinQuery::Line(4)
                                             : query::JoinQuery::Star(3);
    workload::RandomOptions opts;
    opts.seed = seed;
    opts.domain_size = 5;
    const auto rels = workload::RandomInstance(
        &dev, q, std::vector<TupleCount>(q.num_edges(), 25), opts);
    CollectingSink sink;
    YannakakisJoin(rels, sink.AsEmitFn());
    EXPECT_EQ(test::Sorted(std::move(sink.results())), ReferenceJoin(rels))
        << "seed " << seed;
  }
}

TEST(YannakakisTest, ReportsIntermediateSizes) {
  extmem::Device dev(16, 4);
  const auto rels = workload::L3WorstCase(&dev, 32, 1, 32);
  CountingSink sink;
  const YannakakisReport report = YannakakisJoin(rels, sink.AsEmitFn());
  EXPECT_EQ(sink.count(), 32u * 32u);
  // The final intermediate is the full result: >= 1024 tuples written.
  EXPECT_GE(report.intermediate_tuples, 1024u);
}

TEST(YannakakisTest, EmitModelGapOnTwoRelationCrossProduct) {
  // §1.2: in the emit model Yannakakis is worse than the optimal join by
  // up to a factor M — it writes the N1*N2 cross product to disk while
  // the nested loop only reads N1/M * N2/B blocks.
  const TupleCount n = 512;
  extmem::Device dev_y(64, 8), dev_a(64, 8);
  const auto make = [n](extmem::Device* dev) {
    return std::vector<storage::Relation>{
        workload::ManyToOne(dev, 0, 1, n, 1),
        workload::OneToMany(dev, 1, 2, n, 1)};
  };
  CountingSink s1, s2;
  const auto rels_y = make(&dev_y);
  const extmem::IoStats y0 = dev_y.stats();
  YannakakisJoin(rels_y, s1.AsEmitFn());
  const std::uint64_t yann_io = (dev_y.stats() - y0).total();

  const auto rels_a = make(&dev_a);
  const extmem::IoStats a0 = dev_a.stats();
  AcyclicJoin(rels_a, s2.AsEmitFn());
  const std::uint64_t acyc_io = (dev_a.stats() - a0).total();

  EXPECT_EQ(s1.count(), n * n);
  EXPECT_EQ(s2.count(), n * n);
  // Yannakakis pays ~n^2/B; AcyclicJoin ~n^2/(MB). Expect a wide gap
  // (at least M/4 with constant-factor slack).
  EXPECT_GT(yann_io, acyc_io * (dev_a.M() / 4));
}

}  // namespace
}  // namespace emjoin::core
