#include "core/exhaustive.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/acyclic_join.h"
#include "core/reference.h"
#include "tests/test_util.h"
#include "workload/random_instance.h"

namespace emjoin::core {
namespace {

TEST(ExhaustiveTest, EveryBranchComputesTheSameResultCount) {
  extmem::Device dev(8, 2);
  workload::RandomOptions opts;
  opts.seed = 301;
  opts.domain_size = 4;
  const auto rels = workload::RandomInstance(
      &dev, query::JoinQuery::Line(4), std::vector<TupleCount>(4, 20), opts);
  const std::uint64_t expected = ReferenceJoinCount(rels);

  const auto branches = ExhaustivePeelSearch(rels);
  ASSERT_GE(branches.size(), 2u);  // L4 has at least two top-level choices
  for (const auto& b : branches) {
    EXPECT_EQ(b.results, expected);
    EXPECT_GT(b.ios, 0u);
  }
}

TEST(ExhaustiveTest, CostGuidedChooserIsNearTheBestBranch) {
  extmem::Device dev(8, 2);
  workload::RandomOptions opts;
  opts.seed = 302;
  opts.domain_size = 4;
  opts.zipf_s = 1.2;
  const auto rels = workload::RandomInstance(
      &dev, query::JoinQuery::Line(4), std::vector<TupleCount>(4, 24), opts);

  const auto branches = ExhaustivePeelSearch(rels);
  std::uint64_t best = branches.front().ios;
  for (const auto& b : branches) best = std::min(best, b.ios);

  CountingSink sink;
  const extmem::IoStats before = dev.stats();
  AcyclicJoin(rels, sink.AsEmitFn());
  const std::uint64_t guided = (dev.stats() - before).total();

  // The guided run pays the full reducer again plus its own branch; it
  // must stay within a small constant of the empirically best branch.
  EXPECT_LE(guided, 6 * best + 64);
}

TEST(ExhaustiveTest, SingleRelationHasSingleBranch) {
  extmem::Device dev(8, 2);
  const auto rel = test::MakeRel(&dev, {0, 1}, {{1, 2}, {3, 4}});
  const auto branches = ExhaustivePeelSearch({rel});
  ASSERT_EQ(branches.size(), 1u);
  EXPECT_EQ(branches.front().results, 2u);
}

TEST(ExhaustiveTest, RespectsMaxBranches) {
  extmem::Device dev(8, 2);
  workload::RandomOptions opts;
  opts.seed = 303;
  opts.domain_size = 3;
  const auto rels = workload::RandomInstance(
      &dev, query::JoinQuery::Line(6), std::vector<TupleCount>(6, 9), opts);
  const auto branches = ExhaustivePeelSearch(rels, 3);
  EXPECT_LE(branches.size(), 3u);
}

}  // namespace
}  // namespace emjoin::core
