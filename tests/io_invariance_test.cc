// Regression tests pinning the substrate's I/O counts to golden values.
//
// The external-memory substrate is free to optimize wall-clock however it
// likes (block-batched reads, radix run formation, cascade/loser-tree
// merges), but the Aggarwal-Vitter charge profile is part of the
// simulator's contract: every experiment's reported I/O cost must be
// reproducible bit-for-bit across substrate rewrites. These tests freeze
// three representative workloads' total AND per-tag block counts, captured
// from the original tuple-at-a-time substrate. If a substrate change moves
// any number here, it changed the cost model, not just the clock — that is
// a bug (or needs a deliberate, documented golden update).
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/emit.h"
#include "core/line3.h"
#include "extmem/fault_injector.h"
#include "extmem/sorter.h"
#include "metrics/collect.h"
#include "metrics/registry.h"
#include "obs/telemetry.h"
#include "query/hypergraph.h"
#include "storage/relation.h"
#include "trace/tracer.h"
#include "workload/constructions.h"
#include "workload/random_instance.h"

namespace emjoin {
namespace {

// Per-tag totals keyed by tag content. The device may keep several entries
// per tag name (it keys on distinct tag sites); the contract we pin is the
// merged per-tag sum.
std::map<std::string, extmem::IoStats> MergedTags(const extmem::Device& dev) {
  std::map<std::string, extmem::IoStats> merged;
  for (const auto& [tag, st] : dev.per_tag()) {
    auto& s = merged[tag];
    s.block_reads += st.block_reads;
    s.block_writes += st.block_writes;
  }
  return merged;
}

void ExpectTag(const std::map<std::string, extmem::IoStats>& tags,
               const std::string& name, std::uint64_t reads,
               std::uint64_t writes) {
  const auto it = tags.find(name);
  ASSERT_NE(it, tags.end()) << "missing tag: " << name;
  EXPECT_EQ(it->second.block_reads, reads) << "tag " << name;
  EXPECT_EQ(it->second.block_writes, writes) << "tag " << name;
}

std::vector<storage::Tuple> XorshiftRows(TupleCount n) {
  std::vector<storage::Tuple> rows;
  rows.reserve(n);
  std::uint64_t x = 88172645463325252ull;
  for (TupleCount i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rows.push_back({x % 100000, i});
  }
  return rows;
}

// Checks `sorted` is a correctly ordered sort of `rows` by `key_cols`
// (CompareTuples total order). Uses uncharged raw access — correctness
// oracles are exempt from the cost model.
void ExpectSorted(const extmem::FilePtr& sorted,
                  std::vector<storage::Tuple> rows,
                  std::span<const std::uint32_t> key_cols) {
  const std::uint32_t w = sorted->width();
  ASSERT_EQ(sorted->size(), rows.size());
  std::sort(rows.begin(), rows.end(),
            [&](const storage::Tuple& a, const storage::Tuple& b) {
              return extmem::CompareTuples(a.data(), b.data(), w, key_cols) <
                     0;
            });
  for (TupleCount i = 0; i < sorted->size(); ++i) {
    const Value* t = sorted->RawTuple(i);
    for (std::uint32_t c = 0; c < w; ++c) {
      ASSERT_EQ(t[c], rows[i][c]) << "tuple " << i << " col " << c;
    }
  }
}

// Golden A: two-pass external sort, M=1024 B=64, n=20000, width 2.
// Captured from the seed substrate: 313 runs-in blocks scanned on load,
// then sort reads and writes each of the (passes+1)=3 sweeps' 313 blocks:
// 939 reads, 939 writes under the "sort" tag.
TEST(IoInvariance, ExternalSortTwoPass) {
  extmem::Device dev(1024, 64);
  const std::vector<storage::Tuple> rows = XorshiftRows(20000);
  const storage::Relation rel =
      storage::Relation::FromTuples(&dev, storage::Schema({0, 1}), rows);
  const std::uint32_t key[] = {0};
  const extmem::FilePtr sorted = extmem::ExternalSort(rel.range(), key);

  ExpectSorted(sorted, rows, key);
  EXPECT_EQ(dev.stats().block_reads, 939u);
  EXPECT_EQ(dev.stats().block_writes, 1252u);
  const auto tags = MergedTags(dev);
  ExpectTag(tags, "scan", 0, 313);
  ExpectTag(tags, "sort", 939, 939);
}

// Golden B: sort on a non-leading key column with duplicate keys,
// M=64 B=8, n=1000, width 3 — exercises the generic (non-radix,
// w>2 comparison) paths. 125 blocks loaded; 3 sweeps of 125 blocks.
TEST(IoInvariance, ExternalSortWideTupleDuplicateKeys) {
  extmem::Device dev(64, 8);
  std::vector<storage::Tuple> rows;
  std::uint64_t x = 123456789ull;
  for (TupleCount i = 0; i < 1000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    rows.push_back({x % 50, x % 7, i});
  }
  const storage::Relation rel =
      storage::Relation::FromTuples(&dev, storage::Schema({0, 1, 2}), rows);
  const std::uint32_t key[] = {1};
  const extmem::FilePtr sorted = extmem::ExternalSort(rel.range(), key);

  ExpectSorted(sorted, rows, key);
  EXPECT_EQ(dev.stats().block_reads, 375u);
  EXPECT_EQ(dev.stats().block_writes, 500u);
  const auto tags = MergedTags(dev);
  ExpectTag(tags, "scan", 0, 125);
  ExpectTag(tags, "sort", 375, 375);
}

// Golden C: a full Line-3 join on a random instance, M=256 B=16 —
// covers sort, semijoin, and scan charges composed by a real operator
// pipeline, plus the join's result count.
TEST(IoInvariance, Line3JoinPipeline) {
  extmem::Device dev(256, 16);
  const query::JoinQuery q = query::JoinQuery::Line(3);
  workload::RandomOptions opt;
  opt.seed = 7;
  opt.domain_size = 32;
  std::vector<storage::Relation> rels =
      workload::RandomInstance(&dev, q, {3000, 2000, 3000}, opt);
  core::CountingSink sink;
  core::LineJoin3(rels[0], rels[1], rels[2], sink.AsEmitFn());

  EXPECT_EQ(sink.count(), 1048576u);
  EXPECT_EQ(dev.stats().block_reads, 2577u);
  EXPECT_EQ(dev.stats().block_writes, 1472u);
  const auto tags = MergedTags(dev);
  ExpectTag(tags, "scan", 896, 192);
  ExpectTag(tags, "semijoin", 721, 320);
  ExpectTag(tags, "sort", 960, 960);
}

// The tracer is an observer: attaching one must change zero block
// charges. Rerun Golden C with a tracer attached and pin the exact same
// totals and per-tag counts — and, since we have the span tree, assert
// that the root spans' inclusive I/O accounts for every charge of the
// join, i.e. the trace is a lossless decomposition of stats().
TEST(IoInvariance, TracerChangesNoCharges) {
  extmem::Device dev(256, 16);
  trace::Tracer tracer;
  dev.set_tracer(&tracer);
  const query::JoinQuery q = query::JoinQuery::Line(3);
  workload::RandomOptions opt;
  opt.seed = 7;
  opt.domain_size = 32;
  std::vector<storage::Relation> rels =
      workload::RandomInstance(&dev, q, {3000, 2000, 3000}, opt);
  const extmem::IoStats before_join = dev.stats();
  core::CountingSink sink;
  core::LineJoin3(rels[0], rels[1], rels[2], sink.AsEmitFn());

  // Bit-identical to IoInvariance.Line3JoinPipeline (tracer detached).
  EXPECT_EQ(sink.count(), 1048576u);
  EXPECT_EQ(dev.stats().block_reads, 2577u);
  EXPECT_EQ(dev.stats().block_writes, 1472u);
  const auto tags = MergedTags(dev);
  ExpectTag(tags, "scan", 896, 192);
  ExpectTag(tags, "semijoin", 721, 320);
  ExpectTag(tags, "sort", 960, 960);

  // The join ran under root spans (the loading above is untraced);
  // their inclusive I/O must sum to exactly the join's stats() delta.
  extmem::IoStats roots;
  for (const auto& span : tracer.spans()) {
    EXPECT_TRUE(span.closed);
    if (span.parent == trace::kNoSpan) roots += span.inclusive;
  }
  EXPECT_FALSE(tracer.spans().empty());
  EXPECT_EQ(roots, dev.stats() - before_join);
}

// The recovery layer's manifest and output watermark are host-side
// state, exactly like the tracer: routing Golden C's emissions through
// a journaled EmitFn (the manifest's watermark) must change zero block
// charges — fault-free golden counts stay pinned with recovery attached.
TEST(IoInvariance, EmitJournalChangesNoCharges) {
  extmem::Device dev(256, 16);
  const query::JoinQuery q = query::JoinQuery::Line(3);
  workload::RandomOptions opt;
  opt.seed = 7;
  opt.domain_size = 32;
  std::vector<storage::Relation> rels =
      workload::RandomInstance(&dev, q, {3000, 2000, 3000}, opt);
  core::CountingSink sink;
  core::EmitJournal journal;
  core::LineJoin3(rels[0], rels[1], rels[2],
                  core::JournaledEmit(&journal, sink.AsEmitFn()));

  // Bit-identical to IoInvariance.Line3JoinPipeline (journal detached).
  EXPECT_EQ(sink.count(), 1048576u);
  EXPECT_EQ(journal.rows(), 1048576u);
  EXPECT_EQ(dev.stats().block_reads, 2577u);
  EXPECT_EQ(dev.stats().block_writes, 1472u);
  const auto tags = MergedTags(dev);
  ExpectTag(tags, "scan", 896, 192);
  ExpectTag(tags, "semijoin", 721, 320);
  ExpectTag(tags, "sort", 960, 960);
}

// Fan-in past the cascade limit routes through the loser tree: M=64 B=2
// gives fan-in M/B=32 > 16. n=4096 forms 64 runs, so the first pass
// merges 32-wide. The charge profile is engine-independent: 3 sweeps
// (runs, pass1, pass2) of n/B=2048 blocks each.
TEST(IoInvariance, LargeFanInMerge) {
  extmem::Device dev(64, 2);
  const std::vector<storage::Tuple> rows = XorshiftRows(4096);
  const storage::Relation rel =
      storage::Relation::FromTuples(&dev, storage::Schema({0, 1}), rows);
  const std::uint32_t key[] = {0};
  ASSERT_EQ(extmem::MergePassesFor(dev, 4096), 2u);

  const extmem::FilePtr sorted = extmem::ExternalSort(rel.range(), key);
  ExpectSorted(sorted, rows, key);
  const auto tags = MergedTags(dev);
  ExpectTag(tags, "sort", 3 * 2048, 3 * 2048);
}

// The fault layer must be invisible when it injects nothing: attaching
// an injector whose schedule is empty (all probabilities zero, no
// capacity, no shrinks) reruns Golden A through the faulty-charge code
// paths and must reproduce the exact golden counts, with zero recovery
// charges.
TEST(IoInvariance, IdleFaultInjectorChangesNoCharges) {
  extmem::Device dev(1024, 64);
  extmem::FaultConfig config;
  config.seed = 42;  // seed alone activates nothing
  extmem::FaultInjector injector(config);
  dev.set_fault_injector(&injector);

  const std::vector<storage::Tuple> rows = XorshiftRows(20000);
  const storage::Relation rel =
      storage::Relation::FromTuples(&dev, storage::Schema({0, 1}), rows);
  const std::uint32_t key[] = {0};
  const extmem::FilePtr sorted = extmem::ExternalSort(rel.range(), key);

  ExpectSorted(sorted, rows, key);
  EXPECT_EQ(dev.stats().block_reads, 939u);
  EXPECT_EQ(dev.stats().block_writes, 1252u);
  const auto tags = MergedTags(dev);
  ExpectTag(tags, "scan", 0, 313);
  ExpectTag(tags, "sort", 939, 939);
  EXPECT_EQ(tags.count("recovery"), 0u);
  EXPECT_EQ(injector.stats().TotalFaults(), 0u);
}

// Budget enforcement at exactly M is the boundary case: nothing ever
// overruns, and the only plan change is the merge fan-in reserving its
// output-block headroom (15 inputs + 1 output instead of 16 + 1). For
// this input both plans sweep every block in 2 passes, so the golden
// counts are unchanged — enforcement at-or-above M is free.
TEST(IoInvariance, EnforcementAtMKeepsGoldenCounts) {
  extmem::Device dev(1024, 64);
  dev.gauge().SetEnforcedLimit(1024);

  const std::vector<storage::Tuple> rows = XorshiftRows(20000);
  const storage::Relation rel =
      storage::Relation::FromTuples(&dev, storage::Schema({0, 1}), rows);
  const std::uint32_t key[] = {0};
  const extmem::FilePtr sorted = extmem::ExternalSort(rel.range(), key);

  ExpectSorted(sorted, rows, key);
  EXPECT_EQ(dev.stats().block_reads, 939u);
  EXPECT_EQ(dev.stats().block_writes, 1252u);
  const auto tags = MergedTags(dev);
  ExpectTag(tags, "scan", 0, 313);
  ExpectTag(tags, "sort", 939, 939);
}

// The metrics registry is an observer like the tracer: attaching one
// must change zero block charges. Rerun Golden A with a registry
// attached (the sorter streams run-length / fan-in histograms into it)
// and pin the exact golden counts; then fold the device delta into the
// registry and check the exported per-tag counters equal the goldens —
// the metrics view is consistent with the charge profile, not merely
// harmless.
TEST(IoInvariance, MetricsRegistryChangesNoCharges) {
  extmem::Device dev(1024, 64);
  metrics::Registry reg;
  dev.set_metrics(&reg);

  const std::vector<storage::Tuple> rows = XorshiftRows(20000);
  const storage::Relation rel =
      storage::Relation::FromTuples(&dev, storage::Schema({0, 1}), rows);
  const std::uint32_t key[] = {0};
  const extmem::FilePtr sorted = extmem::ExternalSort(rel.range(), key);

  ExpectSorted(sorted, rows, key);
  EXPECT_EQ(dev.stats().block_reads, 939u);
  EXPECT_EQ(dev.stats().block_writes, 1252u);
  const auto tags = MergedTags(dev);
  ExpectTag(tags, "scan", 0, 313);
  ExpectTag(tags, "sort", 939, 939);

  // The live sort instrumentation observed runs and merge groups.
  EXPECT_GT(reg.GetHistogram("emjoin_sort_run_tuples")->count(), 0u);
  EXPECT_GT(reg.GetHistogram("emjoin_sort_merge_fanin")->count(), 0u);

  // Collected counters must mirror the golden charge profile exactly.
  metrics::CollectDeviceDelta(dev, extmem::IoStats{}, {}, &reg);
  EXPECT_EQ(reg.GetCounter("emjoin_device_io_blocks_total",
                           {{"op", "read"}, {"tag", "sort"}})
                ->value(),
            939u);
  EXPECT_EQ(reg.GetCounter("emjoin_device_io_blocks_total",
                           {{"op", "write"}, {"tag", "scan"}})
                ->value(),
            313u);
  EXPECT_EQ(reg.GetCounter("emjoin_device_io_blocks_total", {{"op", "read"}})
                ->value(),
            939u);
  EXPECT_EQ(reg.GetCounter("emjoin_device_io_blocks_total", {{"op", "write"}})
                ->value(),
            1252u);
}

// Golden C with a registry attached: the operator pipeline (semijoins,
// peel emit batches) streams through Device::metrics() too, and must
// still charge bit-identically.
TEST(IoInvariance, MetricsOnJoinPipelineChangesNoCharges) {
  extmem::Device dev(256, 16);
  metrics::Registry reg;
  dev.set_metrics(&reg);
  const query::JoinQuery q = query::JoinQuery::Line(3);
  workload::RandomOptions opt;
  opt.seed = 7;
  opt.domain_size = 32;
  std::vector<storage::Relation> rels =
      workload::RandomInstance(&dev, q, {3000, 2000, 3000}, opt);
  core::CountingSink sink;
  core::LineJoin3(rels[0], rels[1], rels[2], sink.AsEmitFn());

  EXPECT_EQ(sink.count(), 1048576u);
  EXPECT_EQ(dev.stats().block_reads, 2577u);
  EXPECT_EQ(dev.stats().block_writes, 1472u);
  const auto tags = MergedTags(dev);
  ExpectTag(tags, "scan", 896, 192);
  ExpectTag(tags, "semijoin", 721, 320);
  ExpectTag(tags, "sort", 960, 960);
}

// Golden A with live telemetry attached: the event sink (progress
// tracker + flight recorder) is the fourth Device observer, and like
// tracer/metrics/idle-injector it must change zero charged I/Os. The
// tracker must also agree with the device about how much work happened:
// every charged block flows through OnBlocks exactly once.
TEST(IoInvariance, TelemetryChangesNoCharges) {
  extmem::Device dev(1024, 64);
  obs::Telemetry telemetry;
  dev.set_events(&telemetry);

  const std::vector<storage::Tuple> rows = XorshiftRows(20000);
  const storage::Relation rel =
      storage::Relation::FromTuples(&dev, storage::Schema({0, 1}), rows);
  const std::uint32_t key[] = {0};
  const extmem::FilePtr sorted = extmem::ExternalSort(rel.range(), key);

  ExpectSorted(sorted, rows, key);
  EXPECT_EQ(dev.stats().block_reads, 939u);
  EXPECT_EQ(dev.stats().block_writes, 1252u);
  const auto tags = MergedTags(dev);
  ExpectTag(tags, "scan", 0, 313);
  ExpectTag(tags, "sort", 939, 939);

  // The virtual I/O clock saw every charge: reads + writes, no recovery.
  EXPECT_EQ(telemetry.tracker().Clock(), 939u + 1252u);
  EXPECT_EQ(telemetry.tracker().Snapshot().recovery_ios, 0u);
  // The sorter's spans landed in the flight recorder as phase events.
  bool saw_sort_phase = false;
  for (const obs::RecordedEvent& e : telemetry.recorder().Snapshot()) {
    if (e.event.kind == extmem::ObsEventKind::kPhaseBegin &&
        std::string(e.event.name) == "sort") {
      saw_sort_phase = true;
    }
  }
  EXPECT_TRUE(saw_sort_phase);
}

// Golden C with telemetry attached: the full operator pipeline charges
// bit-identically with the event hook live, and the clock totals match.
TEST(IoInvariance, TelemetryOnJoinPipelineChangesNoCharges) {
  extmem::Device dev(256, 16);
  obs::Telemetry telemetry;
  dev.set_events(&telemetry);
  const query::JoinQuery q = query::JoinQuery::Line(3);
  workload::RandomOptions opt;
  opt.seed = 7;
  opt.domain_size = 32;
  std::vector<storage::Relation> rels =
      workload::RandomInstance(&dev, q, {3000, 2000, 3000}, opt);
  core::CountingSink sink;
  core::LineJoin3(rels[0], rels[1], rels[2], sink.AsEmitFn());

  EXPECT_EQ(sink.count(), 1048576u);
  EXPECT_EQ(dev.stats().block_reads, 2577u);
  EXPECT_EQ(dev.stats().block_writes, 1472u);
  const auto tags = MergedTags(dev);
  ExpectTag(tags, "scan", 896, 192);
  ExpectTag(tags, "semijoin", 721, 320);
  ExpectTag(tags, "sort", 960, 960);
  EXPECT_EQ(telemetry.tracker().Clock(), 2577u + 1472u);
}

TEST(MergePasses, InMemoryInputNeedsNoMergePass) {
  const extmem::Device dev(1024, 64);
  EXPECT_EQ(extmem::MergePassesFor(dev, 0), 0u);
  EXPECT_EQ(extmem::MergePassesFor(dev, 1), 0u);
  EXPECT_EQ(extmem::MergePassesFor(dev, 1024), 0u);
  EXPECT_EQ(extmem::MergePassesFor(dev, 1025), 1u);
}

TEST(MergePasses, DegenerateBlockSizeClampsFanInToTwo) {
  // B == M leaves room for only one input block under a naive M/B
  // fan-in; the sorter clamps to binary merges rather than dividing by
  // one. 8 runs at fan-in 2 need 3 passes.
  const extmem::Device dev(64, 64);
  EXPECT_EQ(extmem::MergePassesFor(dev, 8 * 64), 3u);
}

TEST(MergePasses, FanInFollowsMOverB) {
  const extmem::Device dev(1024, 64);  // fan-in 16
  EXPECT_EQ(extmem::MergePassesFor(dev, 16 * 1024), 1u);
  EXPECT_EQ(extmem::MergePassesFor(dev, 16 * 1024 + 1), 2u);
  EXPECT_EQ(extmem::MergePassesFor(dev, 256 * 1024), 2u);
}

}  // namespace
}  // namespace emjoin
