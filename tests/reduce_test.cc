#include "core/reduce.h"

#include <gtest/gtest.h>

#include <set>

#include "core/reference.h"
#include "tests/test_util.h"
#include "workload/random_instance.h"

namespace emjoin::core {
namespace {

using storage::Relation;
using test::MakeRel;

TEST(SemiJoinTest, FiltersByMembership) {
  extmem::Device dev(16, 4);
  const Relation rel = MakeRel(&dev, {0, 1}, {{1, 5}, {2, 6}, {3, 5}});
  const Relation filter = MakeRel(&dev, {1, 2}, {{5, 0}, {7, 0}});
  const Relation out = SemiJoin(rel, filter, 1);
  EXPECT_EQ(test::Sorted(out.ReadAll()),
            (std::vector<std::vector<Value>>{{1, 5}, {3, 5}}));
  EXPECT_TRUE(out.IsSortedBy(1));
}

TEST(SemiJoinTest, DuplicateFilterValuesDoNotDuplicate) {
  extmem::Device dev(16, 4);
  const Relation rel = MakeRel(&dev, {0, 1}, {{1, 5}});
  const Relation filter = MakeRel(&dev, {1, 2}, {{5, 0}, {5, 1}, {5, 2}});
  EXPECT_EQ(SemiJoin(rel, filter, 1).size(), 1u);
}

TEST(SemiJoinValuesTest, FiltersAgainstSortedValueList) {
  extmem::Device dev(16, 4);
  const Relation rel =
      MakeRel(&dev, {0, 1}, {{1, 2}, {3, 4}, {5, 6}, {7, 8}}).SortedBy(0);
  const std::vector<Value> vals = {3, 7};
  const Relation out = SemiJoinValues(rel, 0, vals);
  EXPECT_EQ(test::Sorted(out.ReadAll()),
            (std::vector<std::vector<Value>>{{3, 4}, {7, 8}}));
}

TEST(SemiJoinValuesTest, EmptyValuesGiveEmptyResult) {
  extmem::Device dev(16, 4);
  const Relation rel = MakeRel(&dev, {0, 1}, {{1, 2}}).SortedBy(0);
  EXPECT_TRUE(SemiJoinValues(rel, 0, {}).empty());
}

// Oracle: a tuple is dangling iff it appears in no full join result.
std::vector<std::set<storage::Tuple>> SurvivingTuples(
    const std::vector<Relation>& rels) {
  const ResultSchema schema = MakeResultSchema(rels);
  const auto results = ReferenceJoin(rels);
  std::vector<std::set<storage::Tuple>> surviving(rels.size());
  for (const auto& row : results) {
    for (std::size_t i = 0; i < rels.size(); ++i) {
      storage::Tuple t;
      for (storage::AttrId a : rels[i].schema().attrs()) {
        t.push_back(row[schema.PositionOf(a)]);
      }
      surviving[i].insert(std::move(t));
    }
  }
  return surviving;
}

void ExpectFullyReduced(const std::vector<Relation>& input) {
  const auto reduced = FullyReduce(input);
  const auto expected = SurvivingTuples(input);
  ASSERT_EQ(reduced.size(), input.size());
  for (std::size_t i = 0; i < reduced.size(); ++i) {
    const auto rows = reduced[i].ReadAll();
    const std::set<storage::Tuple> got(rows.begin(), rows.end());
    EXPECT_EQ(got, expected[i]) << "relation " << i;
  }
}

TEST(FullyReduceTest, RemovesDanglingTuplesOnL3) {
  extmem::Device dev(16, 4);
  const Relation r1 = MakeRel(&dev, {0, 1}, {{1, 5}, {2, 6}, {3, 9}});
  const Relation r2 = MakeRel(&dev, {1, 2}, {{5, 8}, {6, 7}, {4, 8}});
  const Relation r3 = MakeRel(&dev, {2, 3}, {{8, 1}, {6, 2}});
  ExpectFullyReduced({r1, r2, r3});
}

TEST(FullyReduceTest, NoOpOnAlreadyReducedInstance) {
  extmem::Device dev(16, 4);
  const Relation r1 = MakeRel(&dev, {0, 1}, {{1, 5}});
  const Relation r2 = MakeRel(&dev, {1, 2}, {{5, 8}});
  const auto reduced = FullyReduce({r1, r2});
  EXPECT_EQ(reduced[0].size(), 1u);
  EXPECT_EQ(reduced[1].size(), 1u);
}

TEST(FullyReduceTest, StarQuery) {
  extmem::Device dev(16, 4);
  const Relation core = MakeRel(&dev, {0, 1}, {{1, 2}, {1, 9}, {8, 2}});
  const Relation p1 = MakeRel(&dev, {0, 5}, {{1, 100}, {7, 200}});
  const Relation p2 = MakeRel(&dev, {1, 6}, {{2, 300}});
  ExpectFullyReduced({core, p1, p2});
}

TEST(FullyReduceTest, RandomInstancesAgreeWithOracle) {
  extmem::Device dev(16, 4);
  for (std::uint64_t seed = 20; seed < 26; ++seed) {
    const query::JoinQuery q = seed % 2 == 0 ? query::JoinQuery::Line(4)
                                             : query::JoinQuery::Star(3);
    workload::RandomOptions opts;
    opts.seed = seed;
    opts.domain_size = 5;
    const auto rels = workload::RandomInstance(
        &dev, q, std::vector<TupleCount>(q.num_edges(), 25), opts);
    ExpectFullyReduced(rels);
  }
}

TEST(FullyReduceTest, CostIsLinearInInput) {
  extmem::Device dev(64, 8);
  std::vector<storage::Tuple> rows1, rows2, rows3;
  for (Value i = 0; i < 512; ++i) {
    rows1.push_back({i, i % 64});
    rows2.push_back({i % 64, i % 32});
    rows3.push_back({i % 32, i});
  }
  const Relation r1 = MakeRel(&dev, {0, 1}, rows1);
  const Relation r2 = MakeRel(&dev, {1, 2}, rows2);
  const Relation r3 = MakeRel(&dev, {2, 3}, rows3);
  const extmem::IoStats before = dev.stats();
  FullyReduce({r1, r2, r3});
  const extmem::IoStats used = dev.stats() - before;
  // Õ(ΣN/B) with sort log factors; generous constant.
  EXPECT_LE(used.total(), 40 * (3 * 512 / 8));
}

}  // namespace
}  // namespace emjoin::core
