#include "core/triangle.h"

#include <gtest/gtest.h>

#include <random>

#include "core/reference.h"
#include "tests/test_util.h"

namespace emjoin::core {
namespace {

using storage::Relation;
using test::MakeRel;

// Random graph triangle instance: three "edge" relations over the same
// underlying random graph (the canonical triangle workload).
std::vector<Relation> RandomTriangle(extmem::Device* dev, TupleCount n,
                                     TupleCount dom, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto edges = [&](storage::AttrId x, storage::AttrId y) {
    std::vector<storage::Tuple> rows;
    for (TupleCount i = 0; i < n; ++i) {
      rows.push_back({rng() % dom, rng() % dom});
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    return MakeRel(dev, {x, y}, rows);
  };
  return {edges(0, 1), edges(0, 2), edges(1, 2)};
}

std::vector<std::vector<Value>> RunTriangle(const std::vector<Relation>& r) {
  CollectingSink sink;
  TriangleJoin(r[0], r[1], r[2], sink.AsEmitFn());
  return test::Sorted(std::move(sink.results()));
}

TEST(TriangleTest, TinyInstance) {
  extmem::Device dev(16, 4);
  const Relation r1 = MakeRel(&dev, {0, 1}, {{1, 2}, {1, 3}, {4, 5}});
  const Relation r2 = MakeRel(&dev, {0, 2}, {{1, 7}, {4, 8}});
  const Relation r3 = MakeRel(&dev, {1, 2}, {{2, 7}, {3, 9}, {5, 8}});
  EXPECT_EQ(RunTriangle({r1, r2, r3}), ReferenceJoin({r1, r2, r3}));
}

TEST(TriangleTest, ColumnOrderIsNormalized) {
  extmem::Device dev(16, 4);
  // r3 given as (c, b) instead of (b, c).
  const Relation r1 = MakeRel(&dev, {0, 1}, {{1, 2}});
  const Relation r2 = MakeRel(&dev, {0, 2}, {{1, 7}});
  const Relation r3 = MakeRel(&dev, {2, 1}, {{7, 2}});
  const auto rows = RunTriangle({r1, r2, r3});
  EXPECT_EQ(rows.size(), 1u);
}

class TriangleRandomTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TriangleRandomTest, MatchesReference) {
  const auto [n, dom, seed] = GetParam();
  extmem::Device dev(16, 4);
  const auto rels = RandomTriangle(&dev, n, dom, seed);
  EXPECT_EQ(RunTriangle(rels), ReferenceJoin(rels));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TriangleRandomTest,
    ::testing::Values(std::make_tuple(30, 8, 1), std::make_tuple(60, 8, 2),
                      std::make_tuple(100, 10, 3),
                      std::make_tuple(100, 6, 4),
                      std::make_tuple(200, 12, 5),
                      std::make_tuple(50, 4, 6)));

TEST(TriangleTest, SkewedDegreesStillCorrect) {
  // One hub vertex participating in most edges (heavy value).
  extmem::Device dev(8, 2);
  std::vector<storage::Tuple> e1, e2, e3;
  for (Value i = 0; i < 30; ++i) {
    e1.push_back({0, i});
    e2.push_back({0, i});
    e3.push_back({i, i});
  }
  const auto r1 = MakeRel(&dev, {0, 1}, e1);
  const auto r2 = MakeRel(&dev, {0, 2}, e2);
  const auto r3 = MakeRel(&dev, {1, 2}, e3);
  EXPECT_EQ(RunTriangle({r1, r2, r3}), ReferenceJoin({r1, r2, r3}));
}

TEST(TriangleTest, MaterializationBaselineAgrees) {
  extmem::Device dev(16, 4);
  const auto rels = RandomTriangle(&dev, 80, 8, 7);
  CollectingSink sink;
  TriangleViaMaterialization(rels[0], rels[1], rels[2], sink.AsEmitFn());
  EXPECT_EQ(test::Sorted(std::move(sink.results())), ReferenceJoin(rels));
}

TEST(TriangleTest, IoScalesSubquadratically) {
  // Optimal triangle I/O is Õ(N^{3/2}/(√M B)): quadrupling N should grow
  // I/O by ~8x, far below the 16x of a quadratic algorithm.
  const TupleCount m = 256, b = 16;
  auto measure = [&](TupleCount dom, std::uint64_t seed) {
    extmem::Device dev(m, b);
    // Dense-ish graph: n = dom^2 / 4 random edges.
    const auto rels = RandomTriangle(&dev, dom * dom / 4, dom, seed);
    CountingSink sink;
    const extmem::IoStats before = dev.stats();
    TriangleJoin(rels[0], rels[1], rels[2], sink.AsEmitFn());
    return (dev.stats() - before).total();
  };
  const double io_small = static_cast<double>(measure(64, 11));
  const double io_large = static_cast<double>(measure(128, 12));
  // N grows 4x (edges ~dom^2); expect growth well below quadratic (16x).
  EXPECT_LT(io_large / io_small, 12.0);
  EXPECT_GT(io_large / io_small, 2.0);
}

}  // namespace
}  // namespace emjoin::core
