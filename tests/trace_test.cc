// Tests for the src/trace/ observability subsystem: IoStats algebra,
// span hierarchy roll-ups, per-tag attribution, per-span memory peaks,
// counters, expected-cost annotations, and the three sinks.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/emit.h"
#include "core/line3.h"
#include "extmem/device.h"
#include "extmem/io_stats.h"
#include "query/hypergraph.h"
#include "storage/relation.h"
#include "trace/sinks.h"
#include "trace/tracer.h"
#include "workload/random_instance.h"

namespace emjoin {
namespace {

using extmem::IoStats;

// --- IoStats algebra ---

TEST(IoStatsAlgebra, PlusAndPlusEquals) {
  IoStats a{3, 5};
  const IoStats b{10, 1};
  const IoStats sum = a + b;
  EXPECT_EQ(sum.block_reads, 13u);
  EXPECT_EQ(sum.block_writes, 6u);
  a += b;
  EXPECT_EQ(a, sum);
  EXPECT_EQ(sum.total(), 19u);
}

TEST(IoStatsAlgebra, TotalOverMapAndVector) {
  const std::map<std::string, IoStats> tagged = {
      {"scan", {1, 2}}, {"sort", {30, 40}}, {"semijoin", {500, 600}}};
  const IoStats from_map = extmem::Total(tagged);
  EXPECT_EQ(from_map.block_reads, 531u);
  EXPECT_EQ(from_map.block_writes, 642u);

  const std::vector<IoStats> flat = {{1, 2}, {3, 4}};
  const IoStats from_vec = extmem::Total(flat);
  EXPECT_EQ(from_vec, (IoStats{4, 6}));
}

TEST(IoStatsAlgebra, TagReportIncludesGrandTotal) {
  extmem::Device dev(64, 8);
  {
    extmem::ScopedIoTag tag(&dev, "sort");
    dev.ChargeReadBlocks(4);
  }
  dev.ChargeWriteBlocks(2);
  const std::string report = dev.TagReport();
  EXPECT_NE(report.find("total=6"), std::string::npos) << report;
}

// --- Span hierarchy ---

TEST(Tracer, DisabledPathRecordsNothing) {
  extmem::Device dev(64, 8);
  ASSERT_EQ(dev.tracer(), nullptr);
  trace::Span span(&dev, "ghost");
  EXPECT_FALSE(span.enabled());
  span.Count("ignored", 3);
  trace::Count(&dev, "also_ignored");
  dev.ChargeReadBlocks(1);  // must not crash or attribute anywhere
}

TEST(Tracer, HierarchicalInclusiveExclusiveDeltas) {
  extmem::Device dev(64, 8);
  trace::Tracer tracer;
  dev.set_tracer(&tracer);
  {
    trace::Span root(&dev, "root");
    dev.ChargeReadBlocks(5);
    {
      trace::Span child(&dev, "child");
      dev.ChargeWriteBlocks(3);
      {
        trace::Span grand(&dev, "grand");
        dev.ChargeReadBlocks(2);
      }
    }
    dev.ChargeWriteBlocks(1);
  }
  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  const auto& root = spans[0];
  const auto& child = spans[1];
  const auto& grand = spans[2];

  EXPECT_STREQ(root.name, "root");
  EXPECT_EQ(root.parent, trace::kNoSpan);
  EXPECT_EQ(root.depth, 0u);
  EXPECT_EQ(child.parent, 0u);
  EXPECT_EQ(child.depth, 1u);
  EXPECT_EQ(grand.parent, 1u);
  EXPECT_EQ(grand.depth, 2u);

  EXPECT_EQ(root.inclusive, (IoStats{7, 4}));
  EXPECT_EQ(root.child_sum, child.inclusive);
  EXPECT_EQ(root.exclusive(), (IoStats{5, 1}));

  EXPECT_EQ(child.inclusive, (IoStats{2, 3}));
  EXPECT_EQ(child.child_sum, grand.inclusive);
  EXPECT_EQ(child.exclusive(), (IoStats{0, 3}));

  EXPECT_EQ(grand.inclusive, (IoStats{2, 0}));
  EXPECT_EQ(grand.exclusive(), grand.inclusive);

  // The root span covers every charge on the device.
  EXPECT_EQ(root.inclusive, dev.stats());
  for (const auto& s : spans) EXPECT_TRUE(s.closed);
}

TEST(Tracer, SiblingSpansSumIntoParent) {
  extmem::Device dev(64, 8);
  trace::Tracer tracer;
  dev.set_tracer(&tracer);
  {
    trace::Span root(&dev, "root");
    for (int i = 0; i < 3; ++i) {
      trace::Span child(&dev, "child");
      dev.ChargeReadBlocks(2);
    }
  }
  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].child_sum, (IoStats{6, 0}));
  EXPECT_EQ(spans[0].inclusive, (IoStats{6, 0}));
  EXPECT_EQ(spans[0].exclusive(), (IoStats{0, 0}));
}

TEST(Tracer, OpenClockIsCumulativeIoAtOpen) {
  extmem::Device dev(64, 8);
  trace::Tracer tracer;
  dev.set_tracer(&tracer);
  {
    trace::Span a(&dev, "a");
    dev.ChargeReadBlocks(10);
  }
  {
    trace::Span b(&dev, "b");
    dev.ChargeWriteBlocks(4);
  }
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[0].open_clock, 0u);
  // b opens after a charged 10 blocks.
  EXPECT_EQ(tracer.spans()[1].open_clock, 10u);

  // A fresh device continues the global timeline rather than rewinding.
  extmem::Device dev2(64, 8);
  dev2.set_tracer(&tracer);
  {
    trace::Span c(&dev2, "c");
    dev2.ChargeReadBlocks(1);
  }
  EXPECT_EQ(tracer.spans()[2].open_clock, 14u);
}

// --- Per-tag attribution ---

TEST(Tracer, SpanTagDeltasMatchPerTagBreakdown) {
  extmem::Device dev(64, 8);
  trace::Tracer tracer;
  dev.set_tracer(&tracer);
  dev.ChargeReadBlocks(100);  // pre-span charges must not leak in
  {
    trace::Span span(&dev, "phase");
    {
      extmem::ScopedIoTag tag(&dev, "sort");
      dev.ChargeReadBlocks(4);
      dev.ChargeWriteBlocks(6);
    }
    dev.ChargeWriteBlocks(2);  // default tag: "scan"
  }
  const auto& span = tracer.spans()[0];
  ASSERT_EQ(span.by_tag.size(), 2u);
  EXPECT_EQ(span.by_tag.at("sort"), (IoStats{4, 6}));
  EXPECT_EQ(span.by_tag.at("scan"), (IoStats{0, 2}));
  // Tag deltas decompose the inclusive I/O exactly.
  EXPECT_EQ(extmem::Total(span.by_tag), span.inclusive);
}

// --- Memory peaks ---

TEST(Tracer, PeakResidentPerSpanWithParentFold) {
  extmem::Device dev(64, 8);
  trace::Tracer tracer;
  dev.set_tracer(&tracer);
  extmem::MemoryReservation ambient(&dev.gauge(), 10);
  {
    trace::Span root(&dev, "root");
    { extmem::MemoryReservation r(&dev.gauge(), 20); }  // root-only peak 30
    {
      trace::Span child(&dev, "child");
      extmem::MemoryReservation r(&dev.gauge(), 5);  // child peak 15
    }
  }
  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].peak_resident, 30u);
  EXPECT_EQ(spans[1].peak_resident, 15u);
  // A child's peak above the parent's own folds upward.
  extmem::Device dev2(64, 8);
  dev2.set_tracer(&tracer);
  {
    trace::Span root(&dev2, "root2");
    trace::Span child(&dev2, "child2");
    extmem::MemoryReservation r(&dev2.gauge(), 40);
  }
  EXPECT_EQ(tracer.spans()[2].peak_resident, 40u);
  EXPECT_EQ(tracer.spans()[3].peak_resident, 40u);
}

// --- Counters ---

TEST(Tracer, CountersAttributeToInnermostSpanAndTotals) {
  extmem::Device dev(64, 8);
  trace::Tracer tracer;
  dev.set_tracer(&tracer);
  {
    trace::Span root(&dev, "root");
    root.Count("steps", 1);
    {
      trace::Span child(&dev, "child");
      // Bumped through the root's handle while the child is innermost:
      // attribution follows the open stack, not the handle.
      root.Count("steps", 2);
      trace::Count(&dev, "widgets", 5);
    }
    root.Count("steps", 4);
  }
  trace::Count(&dev, "widgets", 1);  // no open span: totals only
  const auto& spans = tracer.spans();
  EXPECT_EQ(spans[0].counters.at("steps"), 5u);
  EXPECT_EQ(spans[1].counters.at("steps"), 2u);
  EXPECT_EQ(spans[1].counters.at("widgets"), 5u);
  EXPECT_EQ(tracer.totals().at("steps"), 7u);
  EXPECT_EQ(tracer.totals().at("widgets"), 6u);
}

// --- Expected-cost annotations ---

TEST(Tracer, ExpectIosAnnotation) {
  extmem::Device dev(64, 8);
  trace::Tracer tracer;
  dev.set_tracer(&tracer);
  {
    trace::Span span(&dev, "phase");
    span.ExpectIos(128.0L);
    dev.ChargeReadBlocks(96);
  }
  const auto& rec = tracer.spans()[0];
  ASSERT_TRUE(rec.has_expect());
  EXPECT_DOUBLE_EQ(static_cast<double>(rec.expect_ios), 128.0);
  EXPECT_EQ(rec.inclusive.total(), 96u);
  // Unannotated spans report no expectation.
  {
    trace::Span other(&dev, "other");
  }
  EXPECT_FALSE(tracer.spans()[1].has_expect());
}

// --- Sinks ---

class SinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<extmem::Device>(64, 8);
    dev_->set_tracer(&tracer_);
    trace::Span root(dev_.get(), "root");
    root.ExpectIos(10.0L);
    root.Count("steps", 3);
    {
      extmem::ScopedIoTag tag(dev_.get(), "sort");
      trace::Span child(dev_.get(), "child");
      dev_->ChargeReadBlocks(7);
    }
    dev_->ChargeWriteBlocks(5);
  }

  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + name;
  }

  static std::string Slurp(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    EXPECT_NE(f, nullptr) << path;
    if (f == nullptr) return {};
    std::string out;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
      out.append(buf, got);
    }
    std::fclose(f);
    return out;
  }

  trace::Tracer tracer_;
  std::unique_ptr<extmem::Device> dev_;
};

TEST_F(SinkTest, TreeReportShowsHierarchyAndRatio) {
  const std::string report = trace::TreeReport(tracer_);
  EXPECT_NE(report.find("root"), std::string::npos) << report;
  EXPECT_NE(report.find("  child"), std::string::npos) << report;
  EXPECT_NE(report.find("incl=12"), std::string::npos) << report;
  EXPECT_NE(report.find("meas/exp=1.200"), std::string::npos) << report;
  EXPECT_NE(report.find("steps=3"), std::string::npos) << report;
}

TEST_F(SinkTest, JsonlHasMetaSpansAndTotals) {
  const std::string path = TempPath("trace_test.jsonl");
  ASSERT_TRUE(trace::WriteJsonl(tracer_, path));
  const std::string body = Slurp(path);
  EXPECT_NE(body.find("\"event\": \"meta\""), std::string::npos);
  EXPECT_NE(body.find("\"name\": \"root\""), std::string::npos);
  EXPECT_NE(body.find("\"parent\": -1"), std::string::npos);
  EXPECT_NE(body.find("\"tags\": {\"sort\""), std::string::npos);
  EXPECT_NE(body.find("\"event\": \"totals\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(SinkTest, ChromeTraceIsCompleteEventJson) {
  const std::string path = TempPath("trace_test.chrome.json");
  ASSERT_TRUE(trace::WriteChromeTrace(tracer_, path));
  const std::string body = Slurp(path);
  EXPECT_EQ(body.front(), '{');
  EXPECT_EQ(body.back(), '\n');
  EXPECT_NE(body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(body.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(body.find("\"dur\": 12"), std::string::npos);
  EXPECT_NE(body.find("\"io_ratio\": 1.200"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(SinkTest, SinksRejectUnwritablePath) {
  EXPECT_FALSE(trace::WriteJsonl(tracer_, "/nonexistent-dir/x.jsonl"));
  EXPECT_FALSE(trace::WriteChromeTrace(tracer_, "/nonexistent-dir/x.json"));
}

// --- End-to-end: a real join's trace is a lossless decomposition ---

TEST(TracerPipeline, JoinSpanRollupsAreExact) {
  extmem::Device dev(256, 16);
  const query::JoinQuery q = query::JoinQuery::Line(3);
  workload::RandomOptions opt;
  opt.seed = 11;
  opt.domain_size = 24;
  std::vector<storage::Relation> rels =
      workload::RandomInstance(&dev, q, {800, 600, 800}, opt);

  trace::Tracer tracer;
  dev.set_tracer(&tracer);
  const extmem::IoStats before = dev.stats();
  core::CountingSink sink;
  core::LineJoin3(rels[0], rels[1], rels[2], sink.AsEmitFn());
  dev.set_tracer(nullptr);

  const auto& spans = tracer.spans();
  ASSERT_FALSE(spans.empty());

  // Every span closed; children's inclusive deltas sum to the parent's
  // recorded child_sum; exclusive is the difference; tag deltas
  // decompose inclusive exactly.
  std::vector<IoStats> child_check(spans.size());
  IoStats roots;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto& s = spans[i];
    EXPECT_TRUE(s.closed) << s.name;
    if (s.parent == trace::kNoSpan) {
      EXPECT_EQ(s.depth, 0u);
      roots += s.inclusive;
    } else {
      ASSERT_LT(s.parent, i) << "children open after their parents";
      EXPECT_EQ(s.depth, spans[s.parent].depth + 1);
      child_check[s.parent] += s.inclusive;
    }
    EXPECT_EQ(s.exclusive() + s.child_sum, s.inclusive);
    if (!s.by_tag.empty()) {
      EXPECT_EQ(extmem::Total(s.by_tag), s.inclusive) << s.name;
    }
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(child_check[i], spans[i].child_sum) << spans[i].name;
  }
  // Root spans account for every block the join charged.
  EXPECT_EQ(roots, dev.stats() - before);
  // The instrumented phases reported their counters.
  EXPECT_GT(tracer.totals().at("runs_formed"), 0u);
  EXPECT_GT(tracer.totals().at("semijoin_survivors"), 0u);
}

}  // namespace
}  // namespace emjoin
