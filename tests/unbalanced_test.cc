#include <gtest/gtest.h>

#include "core/acyclic_join.h"
#include "core/reference.h"
#include "core/unbalanced5.h"
#include "core/unbalanced7.h"
#include "tests/test_util.h"
#include "workload/constructions.h"
#include "workload/random_instance.h"

namespace emjoin::core {
namespace {

using storage::Relation;

TEST(Unbalanced5Test, TinyRandomInstancesMatchReference) {
  for (std::uint64_t seed = 50; seed < 56; ++seed) {
    extmem::Device dev(8, 2);
    workload::RandomOptions opts;
    opts.seed = seed;
    opts.domain_size = 4;
    const auto rels = workload::RandomInstance(
        &dev, query::JoinQuery::Line(5), std::vector<TupleCount>(5, 20),
        opts);
    CollectingSink sink;
    LineJoinUnbalanced5(rels[0], rels[1], rels[2], rels[3], rels[4],
                        sink.AsEmitFn());
    EXPECT_EQ(test::Sorted(std::move(sink.results())), ReferenceJoin(rels))
        << "seed " << seed;
  }
}

TEST(Unbalanced5Test, PaperConstructionCorrectCount) {
  extmem::Device dev(16, 4);
  // z = (4, 16, 8, 4): N2 = 64, N4 = 32, N3 = 16; n1 = n5 = 16.
  // Unbalanced: N1*N3*N5 = 16*16*16 = 4096 vs N2*N4 = 2048 — balanced
  // actually; correctness holds regardless of balance.
  const auto rels = workload::UnbalancedL5(&dev, 16, 16, {4, 16, 8, 4});
  CountingSink sink;
  LineJoinUnbalanced5(rels[0], rels[1], rels[2], rels[3], rels[4],
                      sink.AsEmitFn());
  EXPECT_EQ(sink.count(), ReferenceJoinCount(rels));
}

TEST(Unbalanced5Test, AgreesWithAcyclicJoinOnSkewedInstances) {
  for (std::uint64_t seed = 60; seed < 63; ++seed) {
    extmem::Device dev(8, 2);
    workload::RandomOptions opts;
    opts.seed = seed;
    opts.domain_size = 3;
    opts.zipf_s = 1.0;
    const auto rels = workload::RandomInstance(
        &dev, query::JoinQuery::Line(5), std::vector<TupleCount>(5, 9), opts);
    CollectingSink a, b;
    LineJoinUnbalanced5(rels[0], rels[1], rels[2], rels[3], rels[4],
                        a.AsEmitFn());
    AcyclicJoin(rels, b.AsEmitFn());
    EXPECT_EQ(test::Sorted(std::move(a.results())),
              test::Sorted(std::move(b.results())));
  }
}

TEST(Unbalanced7Test, TinyRandomInstancesMatchReference) {
  for (std::uint64_t seed = 70; seed < 74; ++seed) {
    extmem::Device dev(8, 2);
    workload::RandomOptions opts;
    opts.seed = seed;
    opts.domain_size = 3;
    const auto rels = workload::RandomInstance(
        &dev, query::JoinQuery::Line(7), std::vector<TupleCount>(7, 9), opts);
    CollectingSink sink;
    LineJoinUnbalanced7(rels, sink.AsEmitFn());
    EXPECT_EQ(test::Sorted(std::move(sink.results())), ReferenceJoin(rels))
        << "seed " << seed;
  }
}

TEST(Unbalanced7Test, DenseInstance) {
  extmem::Device dev(8, 2);
  workload::RandomOptions opts;
  opts.seed = 75;
  opts.domain_size = 2;
  const auto rels = workload::RandomInstance(
      &dev, query::JoinQuery::Line(7), std::vector<TupleCount>(7, 4), opts);
  CollectingSink sink;
  LineJoinUnbalanced7(rels, sink.AsEmitFn());
  EXPECT_EQ(test::Sorted(std::move(sink.results())), ReferenceJoin(rels));
}

}  // namespace
}  // namespace emjoin::core
