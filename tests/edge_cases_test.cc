// Edge cases called out in the paper's appendix and definitions:
// multiple petals on one core attribute (A.2), queries that disconnect
// under heavy peeling (Fig. 4), wide leaves with several unique
// attributes, and chains of buds created by recursion.
#include <gtest/gtest.h>

#include "core/acyclic_join.h"
#include "core/reference.h"
#include "query/classify.h"
#include "tests/test_util.h"
#include "workload/random_instance.h"

namespace emjoin {
namespace {

using core::AcyclicJoin;
using storage::Relation;
using test::MakeRel;

void ExpectMatchesReference(const std::vector<Relation>& rels) {
  core::CollectingSink sink;
  AcyclicJoin(rels, sink.AsEmitFn());
  EXPECT_EQ(test::Sorted(std::move(sink.results())),
            core::ReferenceJoin(rels));
}

TEST(EdgeCasesTest, TwoPetalsOnTheSameCoreAttribute) {
  // A.2: "if there are two or more petals in X joining with e0 on the
  // same join attribute, we ask Algorithm 2 to peel off the extra petals
  // first". Core {v0,v1}; petals {v0,u1} and {v0,u2} share v0.
  extmem::Device dev(8, 2);
  const Relation core = MakeRel(&dev, {0, 1}, {{1, 5}, {2, 6}});
  const Relation p1 = MakeRel(&dev, {0, 10}, {{1, 100}, {1, 101}, {2, 102}});
  const Relation p2 = MakeRel(&dev, {0, 11}, {{1, 200}, {2, 201}});
  const Relation p3 = MakeRel(&dev, {1, 12}, {{5, 300}, {6, 301}});

  // The classifier must see the same-attribute petals.
  query::JoinQuery q;
  for (const Relation& r : {core, p1, p2, p3}) {
    q.AddRelation(r.schema(), r.size());
  }
  bool found_multi = false;
  for (const query::Star& s : query::FindStars(q)) {
    if (s.core == 0 && s.petals.size() == 3) found_multi = true;
  }
  EXPECT_TRUE(found_multi);

  ExpectMatchesReference({core, p1, p2, p3});
}

TEST(EdgeCasesTest, HeavyPeelDisconnectsIntoThreeComponents) {
  // Fig. 4: peeling a leaf with several neighbours and removing the join
  // attribute splits the query. Leaf {v0,u}; three neighbours on v0,
  // each continuing into its own chain.
  extmem::Device dev(4, 2);
  std::vector<storage::Tuple> leaf_rows;
  for (Value i = 0; i < 12; ++i) leaf_rows.push_back({0, 100 + i});
  const Relation leaf = MakeRel(&dev, {0, 1}, leaf_rows);  // v0=0 is heavy
  const Relation n1 = MakeRel(&dev, {0, 2}, {{0, 1}, {0, 2}});
  const Relation n2 = MakeRel(&dev, {0, 3}, {{0, 7}});
  const Relation n3 = MakeRel(&dev, {0, 4}, {{0, 9}, {0, 8}});
  const Relation c1 = MakeRel(&dev, {2, 5}, {{1, 11}, {2, 12}, {2, 13}});
  const Relation c3 = MakeRel(&dev, {4, 6}, {{9, 21}, {8, 22}});
  ExpectMatchesReference({leaf, n1, n2, n3, c1, c3});
}

TEST(EdgeCasesTest, LeafWithSeveralUniqueAttributes) {
  // Arity-4 leaf: three unique attributes and one join attribute.
  extmem::Device dev(8, 2);
  const Relation leaf = MakeRel(
      &dev, {0, 1, 2, 3},
      {{1, 2, 3, 5}, {4, 5, 6, 5}, {7, 8, 9, 6}, {1, 1, 1, 7}});
  const Relation other = MakeRel(&dev, {3, 4}, {{5, 50}, {6, 60}});
  ExpectMatchesReference({leaf, other});
}

TEST(EdgeCasesTest, CascadingBuds) {
  // A bud chain: {v0} next to {v0, v1} whose peel makes {v1} appear as a
  // restricted bud deeper in the recursion.
  extmem::Device dev(4, 2);
  const Relation bud = MakeRel(&dev, {0}, {{1}, {2}});
  const Relation mid = MakeRel(&dev, {0, 1}, {{1, 10}, {2, 11}, {3, 12}});
  const Relation tail = MakeRel(&dev, {1, 2}, {{10, 5}, {11, 6}, {12, 7}});
  ExpectMatchesReference({bud, mid, tail});
}

TEST(EdgeCasesTest, BudFiltersCorrectlyInsideHeavyRecursion) {
  // The regression the bud-semijoin fix guards: peel the leaf's heavy
  // value, the neighbour becomes a logical bud, and its values must
  // still filter the rest of the query.
  extmem::Device dev(4, 2);
  std::vector<storage::Tuple> leaf_rows;
  for (Value i = 0; i < 10; ++i) leaf_rows.push_back({i, 0});  // heavy v1=0
  const Relation leaf = MakeRel(&dev, {0, 1}, leaf_rows);
  // Neighbour: v1=0 maps to w in {5, 6} only.
  const Relation nbr = MakeRel(&dev, {1, 2}, {{0, 5}, {0, 6}});
  // Tail has w values 5..9; only 5 and 6 may survive.
  const Relation tail = MakeRel(
      &dev, {2, 3}, {{5, 50}, {6, 60}, {7, 70}, {8, 80}, {9, 90}});
  core::CountingSink sink;
  AcyclicJoin({leaf, nbr, tail}, sink.AsEmitFn());
  EXPECT_EQ(sink.count(), 10u * 2u);
  ExpectMatchesReference({leaf, nbr, tail});
}

TEST(EdgeCasesTest, AllValuesExactlyAtTheHeavyThreshold) {
  // Group size == M is heavy by definition (N(e)|v=a >= M).
  extmem::Device dev(4, 2);
  std::vector<storage::Tuple> rows;
  for (Value g = 0; g < 3; ++g) {
    for (Value i = 0; i < 4; ++i) rows.push_back({g * 10 + i, g});
  }
  const Relation r1 = MakeRel(&dev, {0, 1}, rows);
  const Relation r2 = MakeRel(&dev, {1, 2}, {{0, 5}, {1, 6}, {2, 7}});
  ExpectMatchesReference({r1, r2});
}

TEST(EdgeCasesTest, MixedHeavyAndLightInterleaved) {
  extmem::Device dev(4, 2);
  std::vector<storage::Tuple> rows;
  // light(1), heavy(6), light(2), heavy(5), light(1) across sorted order.
  Value uid = 0;
  auto add = [&](Value v, int count) {
    for (int i = 0; i < count; ++i) rows.push_back({uid++, v});
  };
  add(1, 1);
  add(2, 6);
  add(3, 2);
  add(4, 5);
  add(5, 1);
  const Relation r1 = MakeRel(&dev, {0, 1}, rows);
  const Relation r2 =
      MakeRel(&dev, {1, 2}, {{1, 9}, {2, 8}, {3, 7}, {4, 6}, {5, 5}});
  const Relation r3 = MakeRel(&dev, {2, 3}, {{9, 1}, {8, 2}, {7, 3}, {6, 4},
                                             {5, 5}});
  ExpectMatchesReference({r1, r2, r3});
}

TEST(EdgeCasesTest, RepeatedJoinValuesAcrossAllRelations) {
  // Dense single-value instance: everything joins with everything.
  extmem::Device dev(4, 2);
  std::vector<storage::Tuple> a, b, c;
  for (Value i = 0; i < 9; ++i) a.push_back({i, 0});
  for (Value i = 0; i < 7; ++i) b.push_back({0, i});
  const Relation r1 = MakeRel(&dev, {0, 1}, a);
  const Relation r2 = MakeRel(&dev, {1, 2}, b);
  core::CountingSink sink;
  AcyclicJoin({r1, r2}, sink.AsEmitFn());
  EXPECT_EQ(sink.count(), 63u);
}

TEST(EdgeCasesTest, AttributeIdsNeedNotBeDense) {
  extmem::Device dev(8, 2);
  const Relation r1 = MakeRel(&dev, {1000, 7}, {{1, 2}, {3, 4}});
  const Relation r2 = MakeRel(&dev, {7, 424242}, {{2, 99}, {4, 98}});
  ExpectMatchesReference({r1, r2});
}

}  // namespace
}  // namespace emjoin
