#include "core/acyclic_join.h"

#include <gtest/gtest.h>

#include "core/reference.h"
#include "counting/cardinality.h"
#include "tests/test_util.h"
#include "workload/constructions.h"
#include "workload/random_instance.h"

namespace emjoin {
namespace {

using core::AcyclicJoin;
using core::AcyclicJoinOptions;
using storage::Relation;
using test::MakeRel;

std::vector<std::vector<Value>> RunAcyclic(
    const std::vector<Relation>& rels, const AcyclicJoinOptions& opts = {}) {
  core::CollectingSink sink;
  AcyclicJoin(rels, sink.AsEmitFn(), opts);
  return test::Sorted(std::move(sink.results()));
}

// Algorithm 2's results must equal the reference join's (both over
// MakeResultSchema(rels), so orders agree).
void ExpectMatchesReference(const std::vector<Relation>& rels) {
  const auto expected = core::ReferenceJoin(rels);
  const auto actual = RunAcyclic(rels);
  ASSERT_EQ(expected.size(), actual.size());
  EXPECT_EQ(expected, actual);
}

TEST(AcyclicJoinTest, SingleRelationEmitsAllTuples) {
  extmem::Device dev(64, 8);
  const Relation r = MakeRel(&dev, {0, 1}, {{1, 2}, {3, 4}, {5, 6}});
  ExpectMatchesReference({r});
}

TEST(AcyclicJoinTest, TwoRelationJoin) {
  extmem::Device dev(64, 8);
  const Relation r1 = MakeRel(&dev, {0, 1}, {{1, 10}, {2, 10}, {3, 20}});
  const Relation r2 = MakeRel(&dev, {1, 2}, {{10, 7}, {20, 8}, {30, 9}});
  ExpectMatchesReference({r1, r2});
}

TEST(AcyclicJoinTest, TwoRelationCrossProductViaIslands) {
  extmem::Device dev(64, 8);
  const Relation r1 = MakeRel(&dev, {0, 1}, {{1, 2}, {3, 4}});
  const Relation r2 = MakeRel(&dev, {2, 3}, {{5, 6}, {7, 8}, {9, 10}});
  ExpectMatchesReference({r1, r2});
}

TEST(AcyclicJoinTest, LineThreeTiny) {
  extmem::Device dev(64, 8);
  const Relation r1 = MakeRel(&dev, {0, 1}, {{1, 5}, {2, 5}, {3, 6}});
  const Relation r2 = MakeRel(&dev, {1, 2}, {{5, 8}, {6, 9}});
  const Relation r3 = MakeRel(&dev, {2, 3}, {{8, 100}, {9, 200}, {9, 300}});
  ExpectMatchesReference({r1, r2, r3});
}

TEST(AcyclicJoinTest, DanglingTuplesAreFiltered) {
  extmem::Device dev(64, 8);
  // r2's (6, 9) has no continuation in r3; r3's (7, ...) no support in r2.
  const Relation r1 = MakeRel(&dev, {0, 1}, {{1, 5}, {2, 6}});
  const Relation r2 = MakeRel(&dev, {1, 2}, {{5, 8}, {6, 9}});
  const Relation r3 = MakeRel(&dev, {2, 3}, {{8, 100}, {7, 200}});
  ExpectMatchesReference({r1, r2, r3});
}

TEST(AcyclicJoinTest, BudSingleAttributeRelation) {
  extmem::Device dev(64, 8);
  // r2 = {v1} is a bud: it filters r1 ⋈ r3 to v1 ∈ {5, 6}.
  const Relation r1 = MakeRel(&dev, {0, 1}, {{1, 5}, {2, 6}, {3, 7}});
  const Relation bud = MakeRel(&dev, {1}, {{5}, {6}});
  const Relation r3 = MakeRel(&dev, {1, 2}, {{5, 50}, {6, 60}, {7, 70}});
  ExpectMatchesReference({r1, bud, r3});
}

TEST(AcyclicJoinTest, StarQueryTiny) {
  extmem::Device dev(64, 8);
  const Relation core = MakeRel(&dev, {0, 1}, {{1, 2}, {1, 3}});
  const Relation p1 = MakeRel(&dev, {0, 10}, {{1, 100}, {1, 101}});
  const Relation p2 = MakeRel(&dev, {1, 11}, {{2, 200}, {3, 300}});
  ExpectMatchesReference({core, p1, p2});
}

TEST(AcyclicJoinTest, HeavyValuesExerciseHeavyPath) {
  // M = 8: values with >= 8 leaf tuples go through the heavy branch.
  extmem::Device dev(8, 2);
  std::vector<storage::Tuple> r1_rows;
  for (Value i = 0; i < 20; ++i) r1_rows.push_back({i, 5});   // heavy v=5
  for (Value i = 100; i < 103; ++i) r1_rows.push_back({i, 6});  // light v=6
  const storage::Relation r1 = MakeRel(&dev, {0, 1}, r1_rows);
  const storage::Relation r2 =
      MakeRel(&dev, {1, 2}, {{5, 1}, {5, 2}, {6, 3}});
  ExpectMatchesReference({r1, r2});
}

TEST(AcyclicJoinTest, WorstCaseL3MatchesCountingOracle) {
  extmem::Device dev(16, 4);
  const auto rels = workload::L3WorstCase(&dev, 40, 1, 30);
  core::CountingSink sink;
  AcyclicJoin(rels, sink.AsEmitFn());
  EXPECT_EQ(sink.count(), 40u * 30u);
  EXPECT_EQ(counting::JoinSize(rels), 40u * 30u);
}

TEST(AcyclicJoinTest, StarWorstCase) {
  extmem::Device dev(16, 4);
  const auto rels = workload::StarWorstCase(&dev, {5, 6, 7});
  core::CountingSink sink;
  AcyclicJoin(rels, sink.AsEmitFn());
  EXPECT_EQ(sink.count(), 5u * 6u * 7u);
}

struct RandomCase {
  std::uint32_t line_n;     // 0 = star query instead
  std::uint32_t petals;     // used when line_n == 0
  TupleCount rel_size;
  TupleCount domain;
  double zipf;
  std::uint64_t seed;
};

class AcyclicJoinRandomTest : public ::testing::TestWithParam<RandomCase> {};

TEST_P(AcyclicJoinRandomTest, MatchesReference) {
  const RandomCase& c = GetParam();
  extmem::Device dev(16, 4);
  const query::JoinQuery q = c.line_n > 0 ? query::JoinQuery::Line(c.line_n)
                                          : query::JoinQuery::Star(c.petals);
  workload::RandomOptions opts;
  opts.seed = c.seed;
  opts.domain_size = c.domain;
  opts.zipf_s = c.zipf;
  const std::vector<TupleCount> sizes(q.num_edges(), c.rel_size);
  const auto rels = workload::RandomInstance(&dev, q, sizes, opts);
  ExpectMatchesReference(rels);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AcyclicJoinRandomTest,
    ::testing::Values(
        RandomCase{2, 0, 30, 8, 0.0, 1}, RandomCase{3, 0, 30, 8, 0.0, 2},
        RandomCase{3, 0, 50, 6, 1.2, 3}, RandomCase{4, 0, 30, 6, 0.0, 4},
        RandomCase{4, 0, 40, 5, 1.0, 5}, RandomCase{5, 0, 25, 5, 0.0, 6},
        RandomCase{5, 0, 25, 4, 1.5, 7}, RandomCase{6, 0, 20, 4, 0.0, 8},
        RandomCase{7, 0, 15, 4, 0.8, 9}, RandomCase{0, 2, 25, 6, 0.0, 10},
        RandomCase{0, 3, 20, 5, 0.0, 11}, RandomCase{0, 4, 15, 4, 1.0, 12},
        RandomCase{0, 3, 30, 4, 1.5, 13}, RandomCase{3, 0, 60, 4, 0.0, 14},
        RandomCase{2, 0, 60, 4, 2.0, 15}, RandomCase{5, 0, 30, 3, 0.0, 16}));

// The memory gauge must stay within a constant multiple of M (the paper
// assumes memory c*M for constant c depending on query size).
TEST(AcyclicJoinTest, MemoryStaysWithinConstantFactorOfM) {
  extmem::Device dev(16, 4);
  const query::JoinQuery q = query::JoinQuery::Line(5);
  workload::RandomOptions opts;
  opts.domain_size = 6;
  const auto rels =
      workload::RandomInstance(&dev, q, std::vector<TupleCount>(5, 60), opts);
  core::CountingSink sink;
  dev.gauge().ResetHighWater();
  AcyclicJoin(rels, sink.AsEmitFn());
  // Recursion depth <= 5 levels, each holding <= 2M plus sort/merge
  // buffers; 8x is a comfortable constant bound.
  EXPECT_LE(dev.gauge().high_water(), 8 * dev.M());
}

TEST(AcyclicJoinTest, FirstLeafChooserAlsoCorrect) {
  extmem::Device dev(16, 4);
  const query::JoinQuery q = query::JoinQuery::Line(4);
  workload::RandomOptions opts;
  opts.domain_size = 5;
  const auto rels =
      workload::RandomInstance(&dev, q, std::vector<TupleCount>(4, 40), opts);
  AcyclicJoinOptions options;
  options.leaf_chooser = gens::FirstLeafChooser();
  const auto expected = core::ReferenceJoin(rels);
  const auto actual = RunAcyclic(rels, options);
  EXPECT_EQ(expected, actual);
}

}  // namespace
}  // namespace emjoin
