#include "core/lw.h"

#include <gtest/gtest.h>

#include <random>

#include "core/reference.h"
#include "tests/test_util.h"

namespace emjoin::core {
namespace {

using storage::Relation;
using test::MakeRel;

// Random LW_n instance over a shared domain.
std::vector<Relation> RandomLW(extmem::Device* dev, std::size_t n,
                               TupleCount tuples, TupleCount dom,
                               std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Relation> rels;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<storage::AttrId> attrs;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) attrs.push_back(static_cast<storage::AttrId>(j));
    }
    std::vector<storage::Tuple> rows;
    for (TupleCount t = 0; t < tuples; ++t) {
      storage::Tuple row;
      for (std::size_t j = 0; j + 1 < n; ++j) row.push_back(rng() % dom);
      rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    rels.push_back(MakeRel(dev, attrs, rows));
  }
  return rels;
}

TEST(LoomisWhitneyTest, DetectsLwShape) {
  extmem::Device dev(16, 4);
  const auto lw3 = RandomLW(&dev, 3, 10, 4, 1);
  EXPECT_TRUE(IsLoomisWhitney(lw3));
  const auto lw4 = RandomLW(&dev, 4, 10, 3, 2);
  EXPECT_TRUE(IsLoomisWhitney(lw4));
  // A line join is not LW.
  const Relation a = MakeRel(&dev, {0, 1}, {{1, 2}});
  const Relation b = MakeRel(&dev, {1, 2}, {{2, 3}});
  const Relation c = MakeRel(&dev, {2, 3}, {{3, 4}});
  EXPECT_FALSE(IsLoomisWhitney({a, b, c}));
}

TEST(LoomisWhitneyTest, Lw3TinyInstance) {
  extmem::Device dev(16, 4);
  const Relation r1 = MakeRel(&dev, {1, 2}, {{2, 7}, {3, 9}});
  const Relation r2 = MakeRel(&dev, {0, 2}, {{1, 7}});
  const Relation r3 = MakeRel(&dev, {0, 1}, {{1, 2}, {1, 3}});
  // Results: (v0,v1,v2) = (1,2,7); (1,3,9) fails r2.
  CollectingSink sink;
  LoomisWhitneyJoin({r1, r2, r3}, sink.AsEmitFn());
  EXPECT_EQ(test::Sorted(std::move(sink.results())),
            ReferenceJoin({r1, r2, r3}));
}

class LwRandomTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(LwRandomTest, MatchesReference) {
  const auto [n, tuples, dom, seed] = GetParam();
  extmem::Device dev(16, 4);
  const auto rels =
      RandomLW(&dev, static_cast<std::size_t>(n), tuples, dom, seed);
  CollectingSink sink;
  LoomisWhitneyJoin(rels, sink.AsEmitFn());
  EXPECT_EQ(test::Sorted(std::move(sink.results())), ReferenceJoin(rels));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LwRandomTest,
    ::testing::Values(std::make_tuple(3, 40, 6, 1),
                      std::make_tuple(3, 80, 8, 2),
                      std::make_tuple(4, 40, 4, 3),
                      std::make_tuple(4, 80, 5, 4),
                      std::make_tuple(5, 40, 3, 5),
                      std::make_tuple(3, 100, 4, 6)));

TEST(LoomisWhitneyTest, DenseLw4) {
  extmem::Device dev(8, 2);
  const auto rels = RandomLW(&dev, 4, 30, 3, 9);
  CollectingSink sink;
  LoomisWhitneyJoin(rels, sink.AsEmitFn());
  EXPECT_EQ(test::Sorted(std::move(sink.results())), ReferenceJoin(rels));
}

}  // namespace
}  // namespace emjoin::core
