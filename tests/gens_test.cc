#include "gens/gens.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gens/planner.h"
#include "gens/psi.h"
#include "tests/test_util.h"
#include "workload/constructions.h"

namespace emjoin::gens {
namespace {

bool Contains(const Family& f, const EdgeSet& s) {
  return std::find(f.begin(), f.end(), s) != f.end();
}

bool ContainsFamily(const std::vector<Family>& families, const Family& f) {
  return std::find(families.begin(), families.end(), f) != families.end();
}

Family AllSubsetsOf3ExceptFull() {
  return Family{{}, {0}, {0, 1}, {0, 2}, {1}, {1, 2}, {2}};
}

TEST(GenSTest, L3ReproducesEquationFour) {
  // §4.4: GenS(L3) generates S = { {e1,e3}, {e2,e3}, {e1,e2}, {e1}, {e2},
  // {e3}, ∅ } — every subset except the full set — via either one-petal
  // star peel; and 2^E via the standalone-star one-shot branch.
  const auto families = GenSFamilies(query::JoinQuery::Line(3));
  EXPECT_TRUE(ContainsFamily(families, AllSubsetsOf3ExceptFull()));

  // The one-shot standalone-star branch (2^E) only appears in the raw,
  // unpruned output: it is a superset of eq. (4) and thus never optimal.
  const auto raw = GenSFamilies(query::JoinQuery::Line(3), false);
  Family full;
  for (std::uint32_t mask = 0; mask < 8; ++mask) {
    EdgeSet s;
    for (std::uint32_t e = 0; e < 3; ++e) {
      if (mask & (1u << e)) s.push_back(e);
    }
    full.push_back(s);
  }
  std::sort(full.begin(), full.end());
  EXPECT_TRUE(ContainsFamily(raw, full));
  EXPECT_FALSE(ContainsFamily(families, full));
}

TEST(GenSTest, EveryL3FamilyContainsTheIndependentPair) {
  // {e1, e3} drives the optimal L3 bound; every branch must account for it.
  for (const Family& f : GenSFamilies(query::JoinQuery::Line(3))) {
    EXPECT_TRUE(Contains(f, {0, 2})) << FamilyToString(f);
  }
}

TEST(GenSTest, L4HasBothPeelingFamilies) {
  // §4.4: peeling {e1,e2} first accounts for {e1,e3,e4}; peeling {e3,e4}
  // first accounts for {e1,e2,e4}.
  const auto families = GenSFamilies(query::JoinQuery::Line(4));
  bool has_134 = false, has_124 = false;
  for (const Family& f : families) {
    if (Contains(f, {0, 2, 3}) && !Contains(f, {0, 1, 3})) has_134 = true;
    if (Contains(f, {0, 1, 3}) && !Contains(f, {0, 2, 3})) has_124 = true;
  }
  EXPECT_TRUE(has_134);
  EXPECT_TRUE(has_124);
}

TEST(GenSTest, L5FamiliesIncludeThePaperSets) {
  // §4.4: the better L5 branches account for {e1,e3,e5}, {e2,e5}/{e2,e4},
  // {e1,e4} but avoid pairing e2,e4 with a 3-subjoin through both.
  const auto families = GenSFamilies(query::JoinQuery::Line(5));
  ASSERT_FALSE(families.empty());
  for (const Family& f : families) {
    EXPECT_TRUE(Contains(f, {0, 2, 4})) << FamilyToString(f);
  }
  // Some branch avoids the expensive {e1,e2,e4,e5}-style subsets entirely
  // while still covering {e2,e4}.
  bool good_branch = false;
  for (const Family& f : families) {
    if (Contains(f, {1, 3}) && !Contains(f, {0, 1, 2, 3, 4})) {
      good_branch = true;
    }
  }
  EXPECT_TRUE(good_branch);
}

TEST(GenSTest, BudsAreDroppedFromFamilies) {
  // A bud {v} never appears in any generated subset.
  query::JoinQuery q;
  q.AddRelation(query::Schema({0, 1}), 10);
  q.AddRelation(query::Schema({1}), 10);  // bud
  q.AddRelation(query::Schema({1, 2}), 10);
  for (const Family& f : GenSFamilies(q)) {
    for (const EdgeSet& s : f) {
      EXPECT_TRUE(std::find(s.begin(), s.end(), 1u) == s.end());
    }
  }
}

TEST(GenSTest, StarHasBranchWithoutFullSet) {
  // §4.4 star discussion: removing all but one petal avoids the full join
  // (the full set is dominated by the all-petals subset).
  const auto families = GenSFamilies(query::JoinQuery::Star(3));
  bool no_full = false;
  for (const Family& f : families) {
    if (!Contains(f, {0, 1, 2, 3})) no_full = true;
  }
  EXPECT_TRUE(no_full);
}

TEST(GenSTest, SingleEdgeQuery) {
  query::JoinQuery q;
  q.AddRelation(query::Schema({0, 1}), 5);
  const auto families = GenSFamilies(q);
  ASSERT_EQ(families.size(), 1u);
  EXPECT_EQ(families[0], (Family{{}, {0}}));
}

TEST(PruneDominatedTest, DropsDeterminedExtensions) {
  const query::JoinQuery q = query::JoinQuery::Line(3, {10, 10, 10});
  // In the 2^E family, {e1,e2,e3} is dominated by {e1,e3} (e2's
  // attributes are covered, so its tuple is determined).
  Family f = {{0, 2}, {0, 1, 2}};
  const Family pruned = PruneDominated(q, f);
  EXPECT_EQ(pruned, (Family{{0, 2}}));
}

TEST(PruneDominatedTest, KeepsUndominatedSubsets) {
  const query::JoinQuery q = query::JoinQuery::Line(3, {10, 10, 10});
  Family f = {{0}, {0, 1}, {0, 2}};
  EXPECT_EQ(PruneDominated(q, f), f);
}

TEST(PsiTest, ExactMatchesHandComputation) {
  extmem::Device dev(16, 4);
  // Fig. 3 instance: subjoin on {e1,e3} = n1*n3 (cross product).
  const auto rels = workload::L3WorstCase(&dev, 20, 1, 30);
  query::JoinQuery q;
  for (const auto& r : rels) q.AddRelation(r.schema(), r.size());
  const long double psi13 = PsiExact(q, rels, {0, 2}, 16, 4);
  EXPECT_NEAR(static_cast<double>(psi13), 20.0 * 30.0 / (16 * 4), 1e-9);
  // |S| = 1: just a scan term N/B.
  EXPECT_NEAR(static_cast<double>(PsiExact(q, rels, {0}, 16, 4)), 20.0 / 4,
              1e-9);
  EXPECT_EQ(PsiExact(q, rels, {}, 16, 4), 0.0L);
}

TEST(PsiTest, WorstCaseUsesAgmPerComponent) {
  const query::JoinQuery q = query::JoinQuery::Line(3, {10, 20, 30});
  // {e1,e3}: two singleton components -> 10*30 / (M B).
  EXPECT_NEAR(static_cast<double>(PsiWorstCase(q, {0, 2}, 8, 2)),
              10.0 * 30.0 / 16, 1e-9);
  // {e1,e2}: connected, AGM = 10*20 (both have unique attrs).
  EXPECT_NEAR(static_cast<double>(PsiWorstCase(q, {0, 1}, 8, 2)),
              10.0 * 20.0 / 16, 1e-9);
}

TEST(PsiTest, PredictBoundWorstCaseOnL3) {
  // The Theorem 3 worst-case bound for L3 is N1*N3/(MB) + ΣN/B.
  const query::JoinQuery q = query::JoinQuery::Line(3, {100, 100, 100});
  const BoundReport report = PredictBoundWorstCase(q, 16, 4);
  EXPECT_NEAR(static_cast<double>(report.max_psi), 100.0 * 100.0 / 64, 1e-6);
  EXPECT_NEAR(static_cast<double>(report.linear_term), 300.0 / 4, 1e-9);
}

TEST(PsiTest, PredictBoundWorstCaseL4PicksCheaperPeeling) {
  // §4.4: worst case min( N1N3N4, N1N2N4 ) / (M^2 B).
  const query::JoinQuery q = query::JoinQuery::Line(4, {10, 50, 20, 10});
  const BoundReport report = PredictBoundWorstCase(q, 4, 2);
  const double expected = 10.0 * 20.0 * 10.0 / (4.0 * 4.0 * 2.0);
  EXPECT_NEAR(static_cast<double>(report.max_psi), expected, 1e-6);
}

TEST(PsiTest, Theorem3BoundNeverExceedsTheorem2Bound) {
  // Theorem 3 refines Theorem 2 by restricting the subset families via
  // GenS; on every instance min-max over families <= max over all
  // subsets.
  extmem::Device dev(16, 4);
  const auto rels = workload::L3WorstCase(&dev, 24, 1, 24);
  query::JoinQuery q;
  for (const auto& r : rels) q.AddRelation(r.schema(), r.size());
  const BoundReport t3 = PredictBoundExact(q, rels, 16, 4);
  const long double t2 = Theorem2BoundExact(q, rels, 16, 4);
  EXPECT_LE(static_cast<double>(t3.bound), static_cast<double>(t2) + 1e-9);
}

TEST(PsiTest, Theorem2GapAppearsOnStars) {
  // On a star, Theorem 2 includes the full join subset {core, petals},
  // which Theorem 3's families avoid (§4.2's observation). With a core
  // much larger than the petal product the gap is strict.
  extmem::Device dev(4, 2);
  const auto rels = workload::StarWorstCase(&dev, {6, 6});
  query::JoinQuery q;
  for (const auto& r : rels) q.AddRelation(r.schema(), r.size());
  const BoundReport t3 = PredictBoundExact(q, rels, 4, 2);
  const long double t2 = Theorem2BoundExact(q, rels, 4, 2);
  EXPECT_LE(static_cast<double>(t3.max_psi), static_cast<double>(t2));
}

TEST(PlannerTest, WorstCaseBoundsOfL4PeelingsAgreeUnderTheLp) {
  // Under the cross-product worst-case model, the two L4 peel orders have
  // identical bounds (both LPs range over the same attributes and
  // constraints); the distinction only appears on concrete instances.
  const query::JoinQuery q = query::JoinQuery::Line(4, {10, 50, 20, 10});
  const long double via_e1 = BoundIfPeeledFirst(q, 0, 4, 2);
  const long double via_e4 = BoundIfPeeledFirst(q, 3, 4, 2);
  EXPECT_NEAR(static_cast<double>(via_e1), static_cast<double>(via_e4), 1e-6);
  EXPECT_NEAR(static_cast<double>(via_e1), 2000.0 / 32, 1e-6);
}

TEST(PlannerTest, ExactChooserRespondsToSkew) {
  // All 50 R2-tuples share one v2 value: the subjoin R1 ⋈ R2 is large, so
  // the branch that pairs e2 with e4 (peel e4 first) is expensive and the
  // exact chooser must peel e1 first — the paper's compare-N2-N3 effect.
  extmem::Device dev(4, 2);
  std::vector<storage::Tuple> e1_rows, e2_rows, e3_rows, e4_rows;
  for (Value i = 0; i < 10; ++i) e1_rows.push_back({i, 0});
  for (Value j = 0; j < 50; ++j) e2_rows.push_back({0, j});
  for (Value j = 0; j < 50; ++j) e3_rows.push_back({j, j});
  for (Value j = 0; j < 50; ++j) e4_rows.push_back({j, j});
  const std::vector<storage::Relation> rels = {
      test::MakeRel(&dev, {0, 1}, e1_rows), test::MakeRel(&dev, {1, 2}, e2_rows),
      test::MakeRel(&dev, {2, 3}, e3_rows), test::MakeRel(&dev, {3, 4}, e4_rows)};
  query::JoinQuery q;
  for (const auto& r : rels) q.AddRelation(r.schema(), r.size());

  const long double via_e1 = BoundIfPeeledFirstExact(q, rels, 0, 4, 2);
  const long double via_e4 = BoundIfPeeledFirstExact(q, rels, 3, 4, 2);
  EXPECT_LT(via_e1, via_e4);

  const LeafChooser chooser = ExactCostGuidedChooser(4, 2);
  EXPECT_EQ(chooser(q, rels, {0, 3}), 0u);
}

TEST(PlannerTest, FirstLeafChooserPicksIndexZero) {
  const query::JoinQuery q = query::JoinQuery::Line(4, {1, 1, 1, 1});
  EXPECT_EQ(FirstLeafChooser()(q, {}, {2, 3}), 0u);
}

}  // namespace
}  // namespace emjoin::gens
