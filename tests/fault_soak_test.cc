// Randomized fault soak: many seeded runs, each executed fault-free and
// then under a seed-derived fault schedule. The contract under test is
// the robustness layer's core guarantee: a faulted run either produces
// output matching the baseline — bit-identical (row count +
// order-sensitive hash), or, when it degraded under budget shrinks
// (re-planned chunks legally reorder emissions), the same output *set*
// (row count + commutative set_hash) — or ends in a clean typed error;
// never a crash, an abort, or silently wrong output. A failing run's
// seed is printed so it can be replayed exactly
// (tools/emjoin_soak --seed=N --runs=1).
//
// Env overrides (used by the CI soak job):
//   EMJOIN_SOAK_SEED  base seed (default 1000)
//   EMJOIN_SOAK_RUNS  number of seeds (default 200)
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <gtest/gtest.h>

#include "extmem/status.h"
#include "workload/soak.h"

namespace emjoin::workload {
namespace {

std::uint64_t EnvOr(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

TEST(FaultSoak, SeededRunsEndBitIdenticalOrTypedError) {
  const std::uint64_t base = EnvOr("EMJOIN_SOAK_SEED", 1000);
  const std::uint64_t runs = EnvOr("EMJOIN_SOAK_RUNS", 200);

  std::uint64_t completed = 0;
  std::uint64_t typed_errors = 0;
  std::uint64_t resumed = 0;
  for (std::uint64_t seed = base; seed < base + runs; ++seed) {
    const SoakPlan plan = PlanFromSeed(seed);
    const SoakOutcome baseline = RunPlan(plan, /*inject=*/false);
    ASSERT_TRUE(baseline.completed)
        << "fault-free baseline failed; replay: "
        << ReplayLine(plan, baseline);
    ASSERT_EQ(baseline.fault_stats.TotalFaults(), 0u);
    ASSERT_EQ(baseline.recovery.total(), 0u);

    const SoakOutcome faulted = RunPlan(plan, /*inject=*/true);
    if (faulted.completed) {
      ++completed;
      if (faulted.resumed_sort) ++resumed;
      EXPECT_EQ(faulted.rows, baseline.rows)
          << "row count diverged; replay: " << ReplayLine(plan, faulted);
      const bool order_ok = faulted.hash == baseline.hash;
      const bool set_ok = faulted.fault_stats.shrinks > 0 &&
                          faulted.set_hash == baseline.set_hash;
      EXPECT_TRUE(order_ok || set_ok)
          << "output bits diverged; replay: " << ReplayLine(plan, faulted);
    } else {
      ++typed_errors;
      EXPECT_NE(faulted.status.code(), extmem::StatusCode::kOk)
          << "replay: " << ReplayLine(plan, faulted);
      EXPECT_FALSE(faulted.status.message().empty())
          << "typed error without a message; replay: "
          << ReplayLine(plan, faulted);
    }
    if (Test::HasFailure()) {
      std::fprintf(stderr, "[soak] FAILING SEED %llu -- replay with: "
                           "emjoin_soak --seed=%llu --runs=1\n",
                   (unsigned long long)seed, (unsigned long long)seed);
      break;
    }
  }
  std::printf("[soak] %llu runs: %llu completed bit-identical, %llu clean "
              "typed errors, %llu manifest resumes\n",
              (unsigned long long)runs, (unsigned long long)completed,
              (unsigned long long)typed_errors, (unsigned long long)resumed);
  // The seed-derived schedule mix must exercise both contract arms, or
  // the soak is vacuous.
  EXPECT_GT(completed, 0u);
  EXPECT_GT(typed_errors, 0u);
}

TEST(FaultSoak, ReplayIsDeterministic) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 999ull, 123456ull}) {
    const SoakPlan plan = PlanFromSeed(seed);
    const SoakOutcome first = RunPlan(plan, /*inject=*/true);
    const SoakOutcome second = RunPlan(plan, /*inject=*/true);
    EXPECT_EQ(first.completed, second.completed) << "seed " << seed;
    EXPECT_EQ(first.rows, second.rows) << "seed " << seed;
    EXPECT_EQ(first.hash, second.hash) << "seed " << seed;
    EXPECT_EQ(first.set_hash, second.set_hash) << "seed " << seed;
    EXPECT_EQ(first.status.code(), second.status.code()) << "seed " << seed;
    EXPECT_EQ(first.status.message(), second.status.message())
        << "seed " << seed;
    EXPECT_EQ(first.fault_stats.TotalFaults(),
              second.fault_stats.TotalFaults())
        << "seed " << seed;
    EXPECT_EQ(first.fault_stats.retries, second.fault_stats.retries)
        << "seed " << seed;
    EXPECT_EQ(first.fault_stats.shrinks, second.fault_stats.shrinks)
        << "seed " << seed;
    EXPECT_EQ(first.recovery.total(), second.recovery.total())
        << "seed " << seed;
    EXPECT_EQ(first.total.total(), second.total.total()) << "seed " << seed;
  }
}

// A pure budget-shrink schedule (shrink at EVERY planning poll, no other
// faults) across all workloads. The standalone sort must complete
// bit-identically — shrinks degrade it, never fail it. Joins re-plan
// their chunking under shrinks, which legally reorders emissions, so
// for them the degraded contract arm applies: same output set
// (rows + set_hash), or a typed kBudgetExceeded when even the floor
// cannot hold a single tuple's working set.
TEST(FaultSoak, ShrinkAtEveryPollHoldsTheContract) {
  for (int workload = 0; workload < kNumSoakWorkloads; ++workload) {
    SoakPlan plan;
    plan.seed = 77;
    plan.workload = workload;
    plan.memory = 256;
    plan.block = 8;
    switch (workload) {
      case 0: plan.params = {2000}; break;
      case 1: plan.params = {48, 48}; break;
      case 2: plan.params = {4, 4, 4}; break;
      default: plan.params = {8, 8}; break;
    }
    plan.faults.seed = 77;
    plan.faults.shrink_every_poll = true;

    const SoakOutcome baseline = RunPlan(plan, /*inject=*/false);
    ASSERT_TRUE(baseline.completed) << ReplayLine(plan, baseline);
    const SoakOutcome faulted = RunPlan(plan, /*inject=*/true);
    if (workload == 0) {
      ASSERT_TRUE(faulted.completed) << ReplayLine(plan, faulted);
    }
    if (faulted.completed) {
      EXPECT_EQ(faulted.rows, baseline.rows) << ReplayLine(plan, faulted);
      const bool order_ok = faulted.hash == baseline.hash;
      const bool set_ok = faulted.fault_stats.shrinks > 0 &&
                          faulted.set_hash == baseline.set_hash;
      EXPECT_TRUE(order_ok || set_ok) << ReplayLine(plan, faulted);
    } else {
      EXPECT_EQ(faulted.status.code(), extmem::StatusCode::kBudgetExceeded)
          << ReplayLine(plan, faulted);
    }
  }
}

}  // namespace
}  // namespace emjoin::workload
