#include "counting/cardinality.h"

#include <gtest/gtest.h>

#include "core/reference.h"
#include "tests/test_util.h"
#include "workload/random_instance.h"

namespace emjoin::counting {
namespace {

using test::MakeRel;

TEST(CardinalityTest, TwoRelations) {
  extmem::Device dev(16, 4);
  const auto r1 = MakeRel(&dev, {0, 1}, {{1, 10}, {2, 10}, {3, 20}});
  const auto r2 = MakeRel(&dev, {1, 2}, {{10, 5}, {10, 6}, {20, 7}});
  EXPECT_EQ(JoinSize({r1, r2}), 5u);  // 2*2 + 1*1
}

TEST(CardinalityTest, CrossProductOfComponents) {
  extmem::Device dev(16, 4);
  const auto r1 = MakeRel(&dev, {0, 1}, {{1, 2}, {3, 4}});
  const auto r2 = MakeRel(&dev, {5, 6}, {{0, 0}, {1, 1}, {2, 2}});
  EXPECT_EQ(JoinSize({r1, r2}), 6u);
}

TEST(CardinalityTest, EmptyRelationGivesZero) {
  extmem::Device dev(16, 4);
  const auto r1 = MakeRel(&dev, {0, 1}, {{1, 2}});
  const auto r2 = MakeRel(&dev, {1, 2}, {});
  EXPECT_EQ(JoinSize({r1, r2}), 0u);
}

TEST(CardinalityTest, SubjoinSize) {
  extmem::Device dev(16, 4);
  const auto r1 = MakeRel(&dev, {0, 1}, {{1, 10}, {2, 10}});
  const auto r2 = MakeRel(&dev, {1, 2}, {{10, 5}});
  const auto r3 = MakeRel(&dev, {2, 3}, {{5, 7}, {5, 8}, {6, 9}});
  EXPECT_EQ(SubjoinSize({r1, r2, r3}, {0, 1}), 2u);
  EXPECT_EQ(SubjoinSize({r1, r2, r3}, {0, 2}), 6u);  // disconnected: 2*3
  EXPECT_EQ(SubjoinSize({r1, r2, r3}, {0, 1, 2}), 4u);
}

TEST(CardinalityTest, MatchesReferenceOnRandomInstances) {
  extmem::Device dev(16, 4);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const query::JoinQuery q =
        seed % 2 == 0 ? query::JoinQuery::Line(4) : query::JoinQuery::Star(3);
    workload::RandomOptions opts;
    opts.seed = seed;
    opts.domain_size = 5;
    const auto rels = workload::RandomInstance(
        &dev, q, std::vector<TupleCount>(q.num_edges(), 30), opts);
    EXPECT_EQ(JoinSize(rels), core::ReferenceJoinCount(rels))
        << "seed=" << seed;
  }
}

TEST(CardinalityTest, PartialJoinEqualsSubjoinWhenConnected) {
  extmem::Device dev(16, 4);
  // Fully reduced L3 instance: connected S -> partial == subjoin (§1.4).
  const auto r1 = MakeRel(&dev, {0, 1}, {{1, 10}, {2, 10}});
  const auto r2 = MakeRel(&dev, {1, 2}, {{10, 5}});
  const auto r3 = MakeRel(&dev, {2, 3}, {{5, 7}, {5, 8}});
  EXPECT_EQ(PartialJoinSizeBrute({r1, r2, r3}, {0, 1}),
            SubjoinSize({r1, r2, r3}, {0, 1}));
}

TEST(CardinalityTest, PartialJoinCanBeSmallerThanSubjoinWhenDisconnected) {
  extmem::Device dev(16, 4);
  // Figure 1's phenomenon: the subjoin on {R1, R3} is a cross product,
  // but only some pairs extend to full results.
  const auto r1 = MakeRel(&dev, {0, 1}, {{1, 10}, {2, 11}});
  const auto r2 = MakeRel(&dev, {1, 2}, {{10, 5}, {11, 6}});
  const auto r3 = MakeRel(&dev, {2, 3}, {{5, 7}, {6, 8}});
  const std::uint64_t subjoin = SubjoinSize({r1, r2, r3}, {0, 2});
  const std::uint64_t partial = PartialJoinSizeBrute({r1, r2, r3}, {0, 2});
  EXPECT_EQ(subjoin, 4u);
  EXPECT_EQ(partial, 2u);
  EXPECT_LT(partial, subjoin);
}

TEST(CardinalityTest, SaturatesInsteadOfOverflowing) {
  extmem::Device dev(16, 4);
  // 5 disconnected relations of 2^13 tuples each: product 2^65 > 2^64.
  std::vector<storage::Relation> rels;
  for (std::uint32_t i = 0; i < 5; ++i) {
    std::vector<storage::Tuple> rows;
    for (Value j = 0; j < (1 << 13); ++j) rows.push_back({j});
    rels.push_back(MakeRel(&dev, {i}, rows));
  }
  EXPECT_EQ(JoinSize(rels), std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
}  // namespace emjoin::counting
