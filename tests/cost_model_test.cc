// Tests for the Table 1 cost-model catalog and the audit runner.
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "metrics/cost_model.h"

namespace emjoin::metrics {
namespace {

TEST(Table1Models, CatalogIsCompleteAndWellFormed) {
  const std::vector<CostModel> models = Table1Models();
  ASSERT_GE(models.size(), 10u);
  std::set<std::string> names;
  for (const CostModel& m : models) {
    EXPECT_TRUE(names.insert(m.name).second) << "duplicate " << m.name;
    EXPECT_FALSE(m.row.empty()) << m.name;
    EXPECT_FALSE(m.claim.empty()) << m.name;
    EXPECT_GE(m.n_series.size(), 2u) << m.name;
    EXPECT_TRUE(m.build != nullptr) << m.name;
    EXPECT_TRUE(m.exec != nullptr) << m.name;
    EXPECT_TRUE(m.expected != nullptr || m.expected_instance != nullptr)
        << m.name;
    if (!m.m_series.empty()) {
      EXPECT_GT(m.m_series_n, 0u) << m.name;
    }
  }
  // The acceptance floor: every Table 1 query class has a model.
  for (const char* required :
       {"two_rel_bnl", "line3_alg1", "line3_gens", "line4_alg2",
        "line5_alg2", "star3_alg2", "equal_size_l5", "unbalanced5_alg4",
        "unbalanced7_alg5", "yannakakis_gap", "triangle_c3", "lw3"}) {
    EXPECT_TRUE(names.count(required)) << "missing model " << required;
  }
}

TEST(Table1Models, ClosedFormsMatchHandComputation) {
  const std::vector<CostModel> models = Table1Models();
  const auto find = [&](const std::string& name) -> const CostModel& {
    for (const CostModel& m : models) {
      if (m.name == name) return m;
    }
    ADD_FAILURE() << "no model " << name;
    return models.front();
  };
  // two relations: N^2/(MB) + 2N/B.
  EXPECT_NEAR(static_cast<double>(find("two_rel_bnl").expected(1024, 64, 8)),
              1024.0 * 1024 / (64 * 8) + 2 * 1024.0 / 8, 1e-6);
  // L3: N1N3/(MB) + 3N/B on the symmetric worst case.
  EXPECT_NEAR(static_cast<double>(find("line3_alg1").expected(512, 64, 8)),
              512.0 * 512 / (64 * 8) + 3 * 512.0 / 8, 1e-6);
  // Yannakakis is memory-oblivious: same cost at any M.
  const CostModel& yann = find("yannakakis_gap");
  EXPECT_EQ(yann.expected(256, 16, 8), yann.expected(256, 1024, 8));
}

TEST(FitSlope, RecoversPowerLawExponent) {
  std::vector<std::pair<double, double>> xy;
  for (const double x : {64.0, 128.0, 256.0, 512.0}) {
    xy.emplace_back(std::log(x), std::log(7.0 * x * x));  // y = 7 x^2
  }
  EXPECT_NEAR(FitSlope(xy), 2.0, 1e-9);
}

TEST(FitSlope, DegenerateSeriesIsZero) {
  EXPECT_EQ(FitSlope({}), 0.0);
  EXPECT_EQ(FitSlope({{1.0, 2.0}}), 0.0);
}

// The audit runner is deterministic: two runs of the same (shrunken,
// cheap) model measure identical I/Os and reach the same verdict.
TEST(RunAudit, DeterministicAndPassesOnTwoRelations) {
  std::vector<CostModel> models = Table1Models();
  CostModel* model = nullptr;
  for (CostModel& m : models) {
    if (m.name == "two_rel_bnl") model = &m;
  }
  ASSERT_NE(model, nullptr);
  model->n_series = {256, 512, 1024};
  model->m_series = {64, 128};
  model->m_series_n = 512;

  const AuditRow first = RunAudit(*model);
  const AuditRow second = RunAudit(*model);
  ASSERT_EQ(first.n_points.size(), 3u);
  ASSERT_EQ(first.m_points.size(), 2u);
  for (std::size_t i = 0; i < first.n_points.size(); ++i) {
    EXPECT_EQ(first.n_points[i].measured, second.n_points[i].measured);
    EXPECT_EQ(first.n_points[i].results, second.n_points[i].results);
  }
  EXPECT_TRUE(first.pass) << [&] {
    std::string all;
    for (const std::string& f : first.failures) all += f + "; ";
    return all;
  }();
  EXPECT_EQ(first.pass, second.pass);
  // The claimed curve is an upper bound the BNL join actually tracks.
  EXPECT_GT(first.ratio_min, 0.1);
  EXPECT_LT(first.ratio_max, 10.0);
}

TEST(AuditToJson, EmitsSchemaAndVerdicts) {
  AuditRow row;
  row.name = "demo";
  row.row = "Table 1";
  row.claim = "N^2/(MB)";
  row.pass = true;
  CostPoint p;
  p.n = 64;
  p.m = 32;
  p.b = 8;
  p.measured = 100;
  p.expected = 90;
  row.n_points.push_back(p);
  const std::string json = AuditToJson({row}, AuditOptions{});
  EXPECT_NE(json.find("\"schema\": \"emjoin-audit-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"all_pass\": true"), std::string::npos);
  EXPECT_NE(json.find("\"verdict\": \"PASS\""), std::string::npos);
  EXPECT_NE(json.find("\"measured\": 100"), std::string::npos);
}

}  // namespace
}  // namespace emjoin::metrics
