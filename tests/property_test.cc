// Property-based sweeps over randomly generated Berge-acyclic queries:
// every algorithm must agree with the reference oracle, respect the
// memory model, and stay within the Theorem 3 cost envelope.
#include <gtest/gtest.h>

#include <random>

#include "core/acyclic_join.h"
#include "core/reduce.h"
#include "core/dispatch.h"
#include "core/reference.h"
#include "core/yannakakis.h"
#include "counting/cardinality.h"
#include "gens/gens.h"
#include "gens/psi.h"
#include "tests/test_util.h"
#include "workload/random_instance.h"

namespace emjoin {
namespace {

// Random Berge-acyclic query: grow a tree of hyperedges, each new edge
// sharing exactly one attribute with the existing query and adding 1–2
// fresh attributes.
query::JoinQuery RandomAcyclicQuery(std::uint64_t seed,
                                    std::uint32_t num_edges) {
  std::mt19937_64 rng(seed);
  query::JoinQuery q;
  storage::AttrId next_attr = 0;

  std::vector<storage::AttrId> attrs;
  {
    std::vector<storage::AttrId> first;
    const std::uint32_t arity = 2 + rng() % 2;
    for (std::uint32_t i = 0; i < arity; ++i) {
      first.push_back(next_attr);
      attrs.push_back(next_attr++);
    }
    q.AddRelation(query::Schema(first));
  }
  for (std::uint32_t e = 1; e < num_edges; ++e) {
    std::vector<storage::AttrId> schema;
    schema.push_back(attrs[rng() % attrs.size()]);  // the shared attribute
    const std::uint32_t fresh = 1 + rng() % 2;
    for (std::uint32_t i = 0; i < fresh; ++i) {
      schema.push_back(next_attr);
      attrs.push_back(next_attr++);
    }
    q.AddRelation(query::Schema(schema));
  }
  return q;
}

struct PropertyCase {
  std::uint64_t seed;
  std::uint32_t edges;
  TupleCount rel_size;
  TupleCount domain;
  double zipf;
};

class RandomQueryPropertyTest
    : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(RandomQueryPropertyTest, AllAlgorithmsAgreeAndRespectTheModel) {
  const PropertyCase& c = GetParam();
  const query::JoinQuery q = RandomAcyclicQuery(c.seed, c.edges);
  ASSERT_TRUE(q.IsBergeAcyclic());

  extmem::Device dev(16, 4);
  workload::RandomOptions opts;
  opts.seed = c.seed * 7 + 1;
  opts.domain_size = c.domain;
  opts.zipf_s = c.zipf;
  const auto rels = workload::RandomInstance(
      &dev, q, std::vector<TupleCount>(q.num_edges(), c.rel_size), opts);

  const auto expected = core::ReferenceJoin(rels);

  // JoinAuto == reference.
  core::CollectingSink auto_sink;
  dev.gauge().ResetHighWater();
  core::JoinAuto(rels, auto_sink.AsEmitFn());
  EXPECT_EQ(test::Sorted(std::move(auto_sink.results())), expected);

  // Memory model: O(1) * M resident tuples (depth <= #edges).
  EXPECT_LE(dev.gauge().high_water(), (2 * c.edges + 4) * dev.M());

  // Yannakakis == reference count.
  core::CountingSink yann_sink;
  core::YannakakisJoin(rels, yann_sink.AsEmitFn());
  EXPECT_EQ(yann_sink.count(), expected.size());

  // Counting oracle == reference count.
  EXPECT_EQ(counting::JoinSize(rels), expected.size());

  // Tag attribution sums to the totals.
  extmem::IoStats tagged;
  for (const auto& [tag, stats] : dev.per_tag()) {
    tagged.block_reads += stats.block_reads;
    tagged.block_writes += stats.block_writes;
  }
  EXPECT_EQ(tagged.block_reads, dev.stats().block_reads);
  EXPECT_EQ(tagged.block_writes, dev.stats().block_writes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomQueryPropertyTest,
    ::testing::Values(PropertyCase{1, 3, 20, 4, 0.0},
                      PropertyCase{2, 4, 20, 4, 0.0},
                      PropertyCase{3, 4, 16, 3, 1.0},
                      PropertyCase{4, 5, 14, 3, 0.0},
                      PropertyCase{5, 5, 12, 3, 1.5},
                      PropertyCase{6, 6, 10, 3, 0.0},
                      PropertyCase{7, 3, 40, 5, 0.5},
                      PropertyCase{8, 4, 30, 4, 2.0},
                      PropertyCase{9, 6, 8, 2, 0.0},
                      PropertyCase{10, 5, 16, 4, 0.8}));

TEST(RandomQueryPropertyTest, GenSFamiliesCoverEveryNonBudEdge) {
  for (std::uint64_t seed = 20; seed < 30; ++seed) {
    const query::JoinQuery q = RandomAcyclicQuery(seed, 3 + seed % 4);
    for (const auto& family : gens::GenSFamilies(q)) {
      for (query::EdgeId e = 0; e < q.num_edges(); ++e) {
        bool covered = false;
        for (const auto& s : family) {
          if (std::find(s.begin(), s.end(), e) != s.end()) covered = true;
        }
        // Our generator never emits single-attribute edges, so no buds:
        // every edge must be accounted for by some subjoin term.
        EXPECT_TRUE(covered) << "seed " << seed << " edge " << e;
      }
    }
  }
}

TEST(RandomQueryPropertyTest, ReducerIsIdempotent) {
  for (std::uint64_t seed = 40; seed < 44; ++seed) {
    const query::JoinQuery q = RandomAcyclicQuery(seed, 4);
    extmem::Device dev(16, 4);
    workload::RandomOptions opts;
    opts.seed = seed;
    opts.domain_size = 3;
    const auto rels = workload::RandomInstance(
        &dev, q, std::vector<TupleCount>(q.num_edges(), 12), opts);
    const auto once = core::FullyReduce(rels);
    const auto twice = core::FullyReduce(once);
    for (std::size_t i = 0; i < once.size(); ++i) {
      EXPECT_EQ(test::Sorted(once[i].ReadAll()),
                test::Sorted(twice[i].ReadAll()));
    }
  }
}

TEST(RandomQueryPropertyTest, MeasuredIoWithinTheoremEnvelope) {
  // Instance-exact Theorem 3 bound with a generous constant that covers
  // the per-recursion-level constants and the suppressed log factor.
  for (std::uint64_t seed = 50; seed < 56; ++seed) {
    const query::JoinQuery q = RandomAcyclicQuery(seed, 4);
    extmem::Device dev(16, 4);
    workload::RandomOptions opts;
    opts.seed = seed;
    opts.domain_size = 4;
    const auto rels = workload::RandomInstance(
        &dev, q, std::vector<TupleCount>(q.num_edges(), 24), opts);
    const auto reduced = core::FullyReduce(rels);

    query::JoinQuery rq;
    for (const auto& r : reduced) rq.AddRelation(r.schema(), r.size());
    const long double bound =
        gens::PredictBoundExact(rq, reduced, dev.M(), dev.B()).bound;

    core::CountingSink sink;
    const extmem::IoStats before = dev.stats();
    core::AcyclicJoinOptions a_opts;
    a_opts.reduce_first = false;
    core::AcyclicJoin(reduced, sink.AsEmitFn(), a_opts);
    const auto used = (dev.stats() - before).total();
    EXPECT_LE(static_cast<long double>(used), 120.0L * bound + 64.0L)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace emjoin
