#include "storage/csv.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "extmem/status.h"

namespace emjoin::storage {
namespace {

using extmem::StatusCode;

TEST(CsvTest, ParsesRowsSkipsCommentsAndDedupes) {
  extmem::Device dev(16, 4);
  std::istringstream in(
      "# header comment\n"
      "1, 10\n"
      "2,20\n"
      "\n"
      "1,10\n");
  const auto rel = RelationFromCsv(&dev, Schema({0, 1}), in);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->size(), 2u);
}

TEST(CsvTest, RejectsWrongArity) {
  extmem::Device dev(16, 4);
  std::istringstream in("1,2,3\n");
  const auto rel = RelationFromCsv(&dev, Schema({0, 1}), in);
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kInvalidInput);
  EXPECT_NE(rel.status().message().find("expected 2 fields"),
            std::string::npos);
}

TEST(CsvTest, RejectsNonNumeric) {
  extmem::Device dev(16, 4);
  std::istringstream in("1,apple\n");
  const auto rel = RelationFromCsv(&dev, Schema({0, 1}), in);
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kInvalidInput);
  EXPECT_NE(rel.status().message().find("non-numeric"), std::string::npos);
}

TEST(CsvTest, ErrorsNameSourceAndLine) {
  extmem::Device dev(16, 4);
  std::istringstream in("1,2\nbad,row\n");
  const auto rel =
      RelationFromCsv(&dev, Schema({0, 1}), in, "/data/edges.csv");
  ASSERT_FALSE(rel.ok());
  EXPECT_NE(rel.status().message().find("/data/edges.csv"),
            std::string::npos);
  EXPECT_NE(rel.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, MissingFileIsNotFoundWithPath) {
  extmem::Device dev(16, 4);
  const auto rel = RelationFromCsvFile(&dev, Schema({0, 1}),
                                       "/no/such/dir/missing.csv");
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kNotFound);
  EXPECT_NE(rel.status().message().find("/no/such/dir/missing.csv"),
            std::string::npos);
}

TEST(CsvTest, RejectsEmptyInputLoudly) {
  extmem::Device dev(16, 4);
  std::istringstream in("");
  const auto rel = RelationFromCsv(&dev, Schema({0, 1}), in, "empty.csv");
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kInvalidInput);
  EXPECT_NE(rel.status().message().find("empty.csv"), std::string::npos);
  EXPECT_NE(rel.status().message().find("empty"), std::string::npos);
}

TEST(CsvTest, CommentOnlyInputIsAnIntentionallyEmptyRelation) {
  extmem::Device dev(16, 4);
  std::istringstream in("# no data yet\n");
  const auto rel = RelationFromCsv(&dev, Schema({0, 1}), in);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->size(), 0u);
}

TEST(CsvTest, AcceptsMissingTrailingNewline) {
  extmem::Device dev(16, 4);
  std::istringstream in("1,2\n3,4");  // no final '\n'
  const auto rel = RelationFromCsv(&dev, Schema({0, 1}), in);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->size(), 2u);
}

TEST(CsvTest, RejectsOverlongLine) {
  extmem::Device dev(16, 4);
  std::string long_line(kMaxCsvLineBytes + 1, '7');
  std::istringstream in("1,2\n" + long_line + "\n");
  const auto rel = RelationFromCsv(&dev, Schema({0, 1}), in, "big.csv");
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(rel.status().code(), StatusCode::kInvalidInput);
  EXPECT_NE(rel.status().message().find("line too long"), std::string::npos);
  EXPECT_NE(rel.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, ParseErrorLeavesNoPartialDeviceWrites) {
  extmem::Device dev(64, 4);
  // 8 good rows, then a bad one: nothing may have been written to the
  // device, and no tuples may remain resident.
  std::ostringstream data;
  for (int i = 0; i < 8; ++i) data << i << "," << i << "\n";
  data << "oops,1\n";
  std::istringstream in(data.str());
  const auto rel = RelationFromCsv(&dev, Schema({0, 1}), in);
  ASSERT_FALSE(rel.ok());
  EXPECT_EQ(dev.stats().block_writes, 0u);
  EXPECT_EQ(dev.stats().total(), 0u);
  EXPECT_EQ(dev.gauge().resident(), 0u);
}

TEST(CsvTest, HandlesCrLf) {
  extmem::Device dev(16, 4);
  std::istringstream in("1,2\r\n3,4\r\n");
  const auto rel = RelationFromCsv(&dev, Schema({0, 1}), in);
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->size(), 2u);
}

TEST(CsvTest, RoundTrip) {
  extmem::Device dev(16, 4);
  std::istringstream in("5,6\n7,8\n");
  const auto rel = RelationFromCsv(&dev, Schema({0, 1}), in);
  ASSERT_TRUE(rel.ok());
  std::ostringstream out;
  RelationToCsv(*rel, out);
  EXPECT_EQ(out.str(), "5,6\n7,8\n");
}

TEST(CsvTest, SchemaSpecInternsNamesAcrossRelations) {
  std::vector<std::string> names;
  const auto s1 = ParseSchemaSpec("user, account", &names);
  ASSERT_TRUE(s1.ok()) << s1.status().ToString();
  const auto s2 = ParseSchemaSpec("account,thread", &names);
  ASSERT_TRUE(s2.ok()) << s2.status().ToString();
  EXPECT_EQ(names, (std::vector<std::string>{"user", "account", "thread"}));
  // "account" resolves to the same id in both schemas.
  EXPECT_EQ(s1->attr(1), s2->attr(0));
}

TEST(CsvTest, SchemaSpecRejectsDuplicatesAndEmpties) {
  std::vector<std::string> names;
  const auto dup = ParseSchemaSpec("a,a", &names);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidInput);
  const auto empty = ParseSchemaSpec("a,,b", &names);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidInput);
}

}  // namespace
}  // namespace emjoin::storage
