#include "storage/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace emjoin::storage {
namespace {

TEST(CsvTest, ParsesRowsSkipsCommentsAndDedupes) {
  extmem::Device dev(16, 4);
  std::istringstream in(
      "# header comment\n"
      "1, 10\n"
      "2,20\n"
      "\n"
      "1,10\n");
  std::string error;
  const auto rel = RelationFromCsv(&dev, Schema({0, 1}), in, &error);
  ASSERT_TRUE(rel.has_value()) << error;
  EXPECT_EQ(rel->size(), 2u);
}

TEST(CsvTest, RejectsWrongArity) {
  extmem::Device dev(16, 4);
  std::istringstream in("1,2,3\n");
  std::string error;
  EXPECT_FALSE(RelationFromCsv(&dev, Schema({0, 1}), in, &error).has_value());
  EXPECT_NE(error.find("expected 2 fields"), std::string::npos);
}

TEST(CsvTest, RejectsNonNumeric) {
  extmem::Device dev(16, 4);
  std::istringstream in("1,apple\n");
  std::string error;
  EXPECT_FALSE(RelationFromCsv(&dev, Schema({0, 1}), in, &error).has_value());
  EXPECT_NE(error.find("non-numeric"), std::string::npos);
}

TEST(CsvTest, HandlesCrLf) {
  extmem::Device dev(16, 4);
  std::istringstream in("1,2\r\n3,4\r\n");
  std::string error;
  const auto rel = RelationFromCsv(&dev, Schema({0, 1}), in, &error);
  ASSERT_TRUE(rel.has_value()) << error;
  EXPECT_EQ(rel->size(), 2u);
}

TEST(CsvTest, RoundTrip) {
  extmem::Device dev(16, 4);
  std::istringstream in("5,6\n7,8\n");
  std::string error;
  const auto rel = RelationFromCsv(&dev, Schema({0, 1}), in, &error);
  ASSERT_TRUE(rel.has_value());
  std::ostringstream out;
  RelationToCsv(*rel, out);
  EXPECT_EQ(out.str(), "5,6\n7,8\n");
}

TEST(CsvTest, SchemaSpecInternsNamesAcrossRelations) {
  std::vector<std::string> names;
  std::string error;
  const auto s1 = ParseSchemaSpec("user, account", &names, &error);
  ASSERT_TRUE(s1.has_value()) << error;
  const auto s2 = ParseSchemaSpec("account,thread", &names, &error);
  ASSERT_TRUE(s2.has_value()) << error;
  EXPECT_EQ(names, (std::vector<std::string>{"user", "account", "thread"}));
  // "account" resolves to the same id in both schemas.
  EXPECT_EQ(s1->attr(1), s2->attr(0));
}

TEST(CsvTest, SchemaSpecRejectsDuplicatesAndEmpties) {
  std::vector<std::string> names;
  std::string error;
  EXPECT_FALSE(ParseSchemaSpec("a,a", &names, &error).has_value());
  EXPECT_FALSE(ParseSchemaSpec("a,,b", &names, &error).has_value());
}

}  // namespace
}  // namespace emjoin::storage
