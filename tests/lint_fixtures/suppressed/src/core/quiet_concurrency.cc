// Fixture: the suppression syntax silences the two concurrency rules
// (lock-discipline, include-layering) exactly like the seven older ones
// — lint_test expects this whole tree to scan clean.
#include <atomic>
#include <mutex>

// lint: allow(include-layering) — deliberate upward edge for the test
#include "serve/query_spec.h"

namespace fixture {

struct Quiet {
  void Manual() {
    mu_.lock();  // lint: allow(lock-discipline)
    mu_.unlock();  // lint: allow(all)
  }

  // lint: allow(lock-discipline) — the guard protocol here is external;
  // a wrapped rationale in a contiguous comment block still counts.
  std::mutex mu_;
  // lint: allow(lock-discipline)
  std::atomic<int> bare_{0};
};

}  // namespace fixture
