// Fixture proving every suppression form works: each construct below
// violates a rule, and every one is silenced. Expected findings: none.
#include <fstream>  // lint: allow(substrate-hygiene)
#include <random>
#include <thread>

#include "extmem/device.h"
#include "extmem/status.h"

namespace emjoin::core {

// lint: tagged-by-caller — annotation form used by reader-style helpers.
void ProbeForCaller(extmem::Device* dev) {
  dev->ChargeReadBlocks(1);
}

void Quiet(extmem::Device* dev) {
  // Same-line suppression.
  const int a = std::rand();  // lint: allow(determinism)

  // Suppression on the line directly above.
  // lint: allow(determinism)
  std::random_device rd;

  // A wrapped rationale comment: the allow sits two lines above the
  // flagged line but still heads its contiguous comment block.
  // lint: allow(determinism) — this fixture documents that a suppression
  // at the top of a multi-line comment covers the statement below it.
  std::mt19937_64 rng;

  // lint: allow(all) — the catch-all form.
  std::ifstream in("x");

  // lint: allow(status-boundary)
  throw extmem::StatusException(extmem::Status());

  // lint: allow(tag-discipline) — site-level alternative to the
  // function-level tagged-by-caller note.
  dev->ChargeWriteBlocks(1);

  // lint: allow(thread-discipline) — fixture-only raw spawn; real code
  // outside src/parallel goes through parallel::WorkerPool.
  std::thread t([] {});
  t.join();
}

}  // namespace emjoin::core
