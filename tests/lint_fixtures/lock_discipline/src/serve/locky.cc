// Fixture: every way to violate lock-discipline, each next to the clean
// counterpart the rule must not flag. Scanned only by lint_test (the
// real-tree scan skips lint_fixtures/).
#include <atomic>
#include <condition_variable>
#include <mutex>

namespace fixture {

class Locky {
 public:
  void Manual() {
    mu_.lock();  // BAD: manual lock
    ++count_;
    mu_.unlock();  // BAD: manual unlock
  }

  bool TryManual(std::mutex* mu) {
    return mu->try_lock();  // BAD: manual try_lock through a pointer
  }

  void Guarded() {
    const std::lock_guard<std::mutex> lock(annotated_mu_);  // clean: RAII
    ++count_;
  }

 private:
  std::mutex mu_;  // BAD: no annotation anywhere names this mutex

  std::mutex annotated_mu_;  // clean: GUARDED_BY below references it
  int count_ GUARDED_BY(annotated_mu_) = 0;

  std::condition_variable cv_;  // BAD: no WAITS_ON pairing
  std::condition_variable ok_cv_ WAITS_ON(annotated_mu_);  // clean

  std::atomic<bool> bare_{false};  // BAD: undocumented lock-free sharing
  std::atomic<bool> marked_ LOCK_FREE_ATOMIC{false};  // clean
};

}  // namespace fixture
