// Fixture for the substrate-hygiene rule. Not compiled. Three findings:
// the include on line 4, the ifstream on line 9, the fopen on line 12.
#include <cstdio>
#include <fstream>

namespace emjoin::core {

std::uint64_t CountLines(const char* path) {
  std::ifstream in(path);  // bytes read here are never charged

  // Same problem through the C API.
  std::FILE* f = std::fopen(path, "r");
  (void)f;
  return 0;
}

}  // namespace emjoin::core
