// Fixture for the recovery-tag rule: a charge under a non-recovery tag
// fires (line 7); a charge under a "recovery" ScopedIoTag is clean.
namespace emjoin::recover {

void ReplayUnderWrongTag(Device* dev) {
  ScopedIoTag tag(dev, "spill");
  dev->ChargeReadBlocks(1);
}

void ReplayUnderRecoveryTag(Device* dev) {
  ScopedIoTag tag(dev, "recovery");
  dev->ChargeWriteBlocks(1);
}

}  // namespace emjoin::recover
