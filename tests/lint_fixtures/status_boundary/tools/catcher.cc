// Fixture for the status-boundary rule (catch side). Not compiled.
// Exactly one finding: the catch on line 10.
#include "extmem/status.h"

namespace {

int BadCatch() {
  try {
    return Work();
  } catch (const emjoin::extmem::StatusException& e) {
    return -1;
  }
}

int GoodCatch() {
  const auto r = emjoin::extmem::CatchStatus([] { return Work(); });
  return r.ok() ? *r : -1;
}

}  // namespace
