// Fixture for the status-boundary rule (throw side). Not compiled.
// Exactly one finding: the literal throw on line 12.
#include "extmem/status.h"

namespace emjoin::core {

void GoodRaise(const extmem::Status& s) {
  extmem::ThrowStatus(s);  // ok: the sanctioned raise helper
}

void BadRaise(const extmem::Status& s) {
  throw extmem::StatusException(s);
}

}  // namespace emjoin::core
