// Fixture for the status-discard rule. Not compiled. Exactly two
// findings: the bare calls on lines 10 and 16.
#include "extmem/sorter.h"

namespace {

void Drive() {
  // The classic swallowed error: sort fails, nobody notices, the join
  // runs over an unsorted file.
  emjoin::extmem::TryExternalSort(input, keys);

  auto sorted = emjoin::extmem::TryExternalSort(input, keys);  // ok
  if (!sorted.ok()) return;

  // Multi-line statement context: previous significant char is `;`.
  TryJoinAuto(rels, emit);

  const auto checked = TryJoinAuto(rels, emit);  // ok
  if (checked.ok()) Use(*checked);
}

}  // namespace
