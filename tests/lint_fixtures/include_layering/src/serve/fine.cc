// Fixture: the top layer may include everything below it — this file
// must produce zero findings.
#include "core/acyclic_join.h"
#include "extmem/device.h"
#include "obs/telemetry.h"
#include "parallel/parallel_join.h"
#include "recover/manifest.h"
#include "trace/tracer.h"

namespace fixture {}
