// Fixture: an operator-layer file reaching up into the execution and
// observability layers — both edges invert the subsystem DAG.
#include "core/operator.h"        // clean: same layer
#include "extmem/device.h"        // clean: downward
#include "obs/progress.h"         // BAD: obs (60) from core (20)
#include "parallel/worker_pool.h" // BAD: parallel (50) from core (20)
#include "trace/tracer.h"         // clean: layerless observer header

namespace fixture {}
