// Fixture: the substrate including the storage layer built on top of it
// — the shortest possible upward edge.
#include "extmem/status.h"     // clean: same layer
#include "metrics/registry.h"  // clean: layerless observer header
#include "storage/relation.h"  // BAD: storage (10) from extmem (0)

namespace fixture {}
