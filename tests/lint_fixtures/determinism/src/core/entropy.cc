// Fixture for the determinism rule. Not compiled. Six findings, one per
// banned construct: lines 10, 11, 12, 13, 16, 19.
#include <chrono>
#include <random>
#include <unordered_map>

namespace emjoin::core {

std::uint64_t Entropy() {
  const int a = std::rand();
  const auto b = std::time(nullptr);
  std::random_device rd;
  const auto c = std::chrono::system_clock::now();

  // Default-constructed engine: seed is implementation-defined.
  std::mt19937_64 rng;

  // Iteration order follows allocation addresses (ASLR), not the input.
  std::unordered_map<const void*, int> by_ptr;

  std::mt19937_64 seeded(42);  // ok: explicit seed
  std::unordered_map<int, int> by_value;  // ok: value-keyed
  return a + b + rd() + c.time_since_epoch().count() + rng() + seeded();
}

}  // namespace emjoin::core
