// Fixture for the tag-discipline rule. Not compiled — scanned by
// emjoin_lint in lint_test.cc. Exactly one finding: the charge in
// UntaggedProbe (line 21).
#include "extmem/device.h"

namespace emjoin::core {

void TaggedScan(extmem::Device* dev) {
  extmem::ScopedIoTag tag(dev, "scan");
  dev->ChargeReadBlocks(1);  // ok: under a ScopedIoTag
}

// lint: tagged-by-caller — fixture stand-in for a reader-style helper.
void InheritsTag(extmem::Device* dev) {
  dev->ChargeReadBlocks(2);  // ok: documented tagged-by-caller
}

void UntaggedProbe(extmem::Device* dev) {
  // Neither a ScopedIoTag in scope nor a tagged-by-caller note: this
  // charge would land on whatever tag happens to be active.
  dev->ChargeWriteBlocks(3);
}

}  // namespace emjoin::core
