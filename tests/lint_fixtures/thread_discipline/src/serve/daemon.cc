// Under src/serve/ the rule is silent on both halves: the daemon's run
// pool executes whole admitted queries (a concurrency domain the
// admission ledger governs), and its accept loop is a long-lived
// serving thread, not shard work. Expected findings in this file: none.
#include <thread>

namespace emjoin::serve {

struct Daemon {
  parallel::WorkerPool run_pool_{2};
};

void AcceptLoop() {
  std::jthread listener([] {});
}

}  // namespace emjoin::serve
