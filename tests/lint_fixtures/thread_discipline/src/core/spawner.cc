// Fixture for the thread-discipline rule. Not compiled. Four findings,
// one per raw spawn primitive: lines 9, 12, 15, 17.
#include <future>
#include <thread>

namespace emjoin::core {

void Spawn() {
  std::thread t([] {});

  // jthread auto-joins, but it is still a raw spawn outside the pool.
  std::jthread j([] {});

  // std::async hides its thread behind a future; same problem.
  auto f = std::async([] { return 1; });

  pthread_create(nullptr, nullptr, nullptr, nullptr);

  t.join();
  static_cast<void>(f.get());
}

// Members and includes that merely *name* threads are fine: the rule
// matches the qualified spawn spellings, not the word "thread".
struct Pool {
  int threads_ = 0;
};

}  // namespace emjoin::core

// The pool itself is also off-limits below the parallel layer: the
// operator layers are single-threaded by contract. One finding, on the
// member declaration line below (line 35).
struct Runner {
  parallel::WorkerPool pool_{2};
};
