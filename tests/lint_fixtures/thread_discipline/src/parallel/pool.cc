// Under src/parallel/ the rule is silent: this is the one directory
// allowed to spawn threads (it is where WorkerPool lives). Expected
// findings in this file: none.
#include <thread>

namespace emjoin::parallel {

void SpawnHere() {
  std::thread t([] {});
  t.join();
}

}  // namespace emjoin::parallel
