// Under src/obs/ the rule is also silent: the telemetry layer's sinks
// are concurrent observers (lock-free tracker/recorder, HTTP serve
// loop), not shard work, so raw spawns here do not bypass the
// WorkerPool confinement model. Expected findings in this file: none.
#include <thread>

namespace emjoin::obs {

void ServeHere() {
  std::jthread t([] {});
}

}  // namespace emjoin::obs
