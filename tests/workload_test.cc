#include "workload/constructions.h"

#include <gtest/gtest.h>

#include "core/reduce.h"
#include "core/reference.h"
#include "counting/cardinality.h"
#include "query/edge_cover.h"
#include "tests/test_util.h"
#include "workload/random_instance.h"

namespace emjoin::workload {
namespace {

TEST(PrimitivesTest, Shapes) {
  extmem::Device dev(16, 4);
  EXPECT_EQ(Matching(&dev, 0, 1, 5).size(), 5u);
  EXPECT_EQ(ManyToOne(&dev, 0, 1, 10, 3).size(), 10u);
  EXPECT_EQ(OneToMany(&dev, 0, 1, 10, 3).size(), 10u);
  EXPECT_EQ(CrossProduct(&dev, 0, 1, 4, 5).size(), 20u);
  EXPECT_EQ(CrossProductN(&dev, {0, 1, 2}, {2, 3, 4}).size(), 24u);
  EXPECT_EQ(SingleTuple(&dev, {0, 1}, {7, 8}).size(), 1u);
}

TEST(PrimitivesTest, ManyToOneCoversTargetDomain) {
  extmem::Device dev(16, 4);
  const auto rows = ManyToOne(&dev, 0, 1, 10, 3).ReadAll();
  std::set<Value> images;
  for (const auto& t : rows) images.insert(t[1]);
  EXPECT_EQ(images, (std::set<Value>{0, 1, 2}));
}

TEST(ConstructionsTest, L3WorstCaseIsFullyReducedWithQuadraticOutput) {
  extmem::Device dev(16, 4);
  const auto rels = L3WorstCase(&dev, 12, 1, 9);
  // Fully reduced: the reducer must not remove anything.
  const auto reduced = core::FullyReduce(rels);
  for (std::size_t i = 0; i < rels.size(); ++i) {
    EXPECT_EQ(reduced[i].size(), rels[i].size());
  }
  EXPECT_EQ(counting::JoinSize(rels), 12u * 9u);
  // Partial join on {e1, e3} equals the full cross product.
  EXPECT_EQ(counting::PartialJoinSizeBrute(rels, {0, 2}), 12u * 9u);
}

TEST(ConstructionsTest, StarWorstCasePartialJoinIsPetalProduct) {
  extmem::Device dev(16, 4);
  const auto rels = StarWorstCase(&dev, {3, 4, 5});
  EXPECT_EQ(rels.size(), 4u);
  EXPECT_EQ(counting::JoinSize(rels), 3u * 4u * 5u);
  EXPECT_EQ(counting::PartialJoinSizeBrute(rels, {1, 2, 3}), 60u);
}

TEST(ConstructionsTest, CrossProductLineSizes) {
  extmem::Device dev(16, 4);
  // z = (1, 8, 1, 8, 1, 8): N_i alternate 8, 8, 8, 8, 8.
  const auto rels = CrossProductLine(&dev, {1, 8, 1, 8, 1, 8});
  ASSERT_EQ(rels.size(), 5u);
  for (const auto& r : rels) EXPECT_EQ(r.size(), 8u);
  // Join size: every combination along the line = 8^... the odd
  // relations are free: |Q| = 8*8*8 via z-degrees: product of all doms.
  EXPECT_EQ(counting::JoinSize(rels), 8u * 8u * 8u);
  // Partial join on the independent set {e1, e3, e5}: all of 8^3.
  EXPECT_EQ(counting::PartialJoinSizeBrute(rels, {0, 2, 4}), 512u);
}

TEST(ConstructionsTest, EqualSizeWorstCaseReachesCoverProduct) {
  extmem::Device dev(16, 4);
  const query::JoinQuery q = query::JoinQuery::Line(5);
  const auto rels = EqualSizeWorstCase(&dev, q, 6);
  // Cover number of L5 = 3; partial join on the cover = 6^3.
  const std::vector<query::EdgeId> cover = query::GreedyMinEdgeCover(q);
  ASSERT_EQ(cover.size(), 3u);
  std::vector<std::uint32_t> cover_idx(cover.begin(), cover.end());
  EXPECT_EQ(counting::PartialJoinSizeBrute(rels, cover_idx), 216u);
  for (query::EdgeId e = 0; e < q.num_edges(); ++e) {
    EXPECT_LE(rels[e].size(), 6u);
  }
}

TEST(ConstructionsTest, UnbalancedL5SatisfiesItsContract) {
  extmem::Device dev(16, 4);
  const auto rels = UnbalancedL5(&dev, 4, 4, {2, 12, 8, 2});
  ASSERT_EQ(rels.size(), 5u);
  EXPECT_EQ(rels[0].size(), 4u);   // N1
  EXPECT_EQ(rels[1].size(), 24u);  // N2 = 2*12
  EXPECT_EQ(rels[2].size(), 12u);  // N3 = |dom(v3)|
  EXPECT_EQ(rels[3].size(), 16u);  // N4 = 8*2
  EXPECT_EQ(rels[4].size(), 4u);   // N5
  // Unbalanced: N1*N3*N5 = 192 < N2*N4 = 384.
  EXPECT_LT(rels[0].size() * rels[2].size() * rels[4].size(),
            rels[1].size() * rels[3].size());
  // Fully reduced.
  const auto reduced = core::FullyReduce(rels);
  for (std::size_t i = 0; i < rels.size(); ++i) {
    EXPECT_EQ(reduced[i].size(), rels[i].size()) << i;
  }
}

TEST(RandomInstanceTest, RespectsSizesAndDistinctness) {
  extmem::Device dev(16, 4);
  const query::JoinQuery q = query::JoinQuery::Line(3);
  RandomOptions opts;
  opts.domain_size = 4;
  const auto rels = RandomInstance(&dev, q, {10, 16, 100}, opts);
  EXPECT_EQ(rels[0].size(), 10u);
  EXPECT_EQ(rels[1].size(), 16u);  // capped at 4*4 = 16 distinct tuples
  EXPECT_EQ(rels[2].size(), 16u);
  const auto rows = rels[1].ReadAll();
  const std::set<storage::Tuple> distinct(rows.begin(), rows.end());
  EXPECT_EQ(distinct.size(), rows.size());
}

TEST(RandomInstanceTest, ZipfSkewsValueFrequencies) {
  extmem::Device dev(16, 4);
  const query::JoinQuery q = query::JoinQuery::Line(2);
  RandomOptions skewed;
  skewed.domain_size = 64;
  skewed.zipf_s = 1.5;
  skewed.seed = 5;
  const auto rels = RandomInstance(&dev, q, {200, 200}, skewed);
  // With s=1.5, value 0 should appear far more often than value 32+.
  std::uint64_t low = 0, high = 0;
  for (const auto& t : rels[0].ReadAll()) {
    if (t[0] < 4) ++low;
    if (t[0] >= 32) ++high;
  }
  EXPECT_GT(low, high);
}

TEST(RandomInstanceTest, DeterministicUnderSeed) {
  extmem::Device dev(16, 4);
  const query::JoinQuery q = query::JoinQuery::Line(2);
  RandomOptions opts;
  opts.seed = 123;
  const auto a = RandomInstance(&dev, q, {20, 20}, opts);
  const auto b = RandomInstance(&dev, q, {20, 20}, opts);
  EXPECT_EQ(a[0].ReadAll(), b[0].ReadAll());
  EXPECT_EQ(a[1].ReadAll(), b[1].ReadAll());
}

}  // namespace
}  // namespace emjoin::workload
