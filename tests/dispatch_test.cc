#include "core/dispatch.h"

#include <gtest/gtest.h>

#include "core/reference.h"
#include "tests/test_util.h"
#include "workload/constructions.h"
#include "workload/random_instance.h"

namespace emjoin::core {
namespace {

TEST(LineOrderTest, DetectsLinesInAnyEdgeOrder) {
  query::JoinQuery q;
  q.AddRelation(query::Schema({2, 3}));  // e2 of the line
  q.AddRelation(query::Schema({0, 1}));  // e0
  q.AddRelation(query::Schema({3, 4}));  // e3
  q.AddRelation(query::Schema({1, 2}));  // e1
  const auto order = LineOrder(q);
  ASSERT_TRUE(order.has_value());
  // Either end can start the walk.
  const std::vector<query::EdgeId> forward = {1, 3, 0, 2};
  const std::vector<query::EdgeId> backward = {2, 0, 3, 1};
  EXPECT_TRUE(*order == forward || *order == backward);
}

TEST(LineOrderTest, RejectsNonLines) {
  EXPECT_FALSE(LineOrder(query::JoinQuery::Star(3)).has_value());
  query::JoinQuery branching;
  branching.AddRelation(query::Schema({0, 1}));
  branching.AddRelation(query::Schema({1, 2}));
  branching.AddRelation(query::Schema({1, 3}));
  EXPECT_FALSE(LineOrder(branching).has_value());
  query::JoinQuery wide;
  wide.AddRelation(query::Schema({0, 1, 2}));
  EXPECT_FALSE(LineOrder(wide).has_value());
}

TEST(BalanceTest, KnownCases) {
  // L3 balanced iff N1*N3 >= N2.
  EXPECT_TRUE(IsBalancedLine({10, 50, 10}));
  EXPECT_FALSE(IsBalancedLine({5, 100, 5}));
  // L5: N1N3N5 >= N2N4 plus the L3 sub-conditions.
  EXPECT_TRUE(IsBalancedLine({10, 10, 10, 10, 10}));
  EXPECT_FALSE(IsBalancedLine({4, 100, 4, 100, 4}));
}

void ExpectAutoMatches(const std::vector<storage::Relation>& rels,
                       const std::string& expected_algorithm = "") {
  CollectingSink sink;
  const AutoJoinReport report = JoinAuto(rels, sink.AsEmitFn());
  EXPECT_EQ(test::Sorted(std::move(sink.results())), ReferenceJoin(rels));
  if (!expected_algorithm.empty()) {
    EXPECT_EQ(report.algorithm, expected_algorithm);
  }
}

TEST(JoinAutoTest, RoutesBalancedLine5ToAcyclicJoin) {
  extmem::Device dev(8, 2);
  workload::RandomOptions opts;
  opts.seed = 80;
  opts.domain_size = 4;
  const auto rels = workload::RandomInstance(
      &dev, query::JoinQuery::Line(5), std::vector<TupleCount>(5, 16), opts);
  // Random equal-size instances are essentially balanced after reduction.
  CollectingSink sink;
  const AutoJoinReport report = JoinAuto(rels, sink.AsEmitFn());
  EXPECT_EQ(test::Sorted(std::move(sink.results())), ReferenceJoin(rels));
  EXPECT_FALSE(report.algorithm.empty());
}

TEST(JoinAutoTest, RoutesUnbalancedL5ToAlgorithm4) {
  extmem::Device dev(8, 2);
  // Paper construction with N1*N3*N5 < N2*N4:
  // z = (2, 12, 8, 2): N2 = 24, N4 = 16 -> N2*N4 = 384;
  // N1 = 4, N3 = 12, N5 = 4 -> product 192 < 384. Unbalanced.
  const auto rels = workload::UnbalancedL5(&dev, 4, 4, {2, 12, 8, 2});
  ExpectAutoMatches(rels, "LineJoinUnbalanced5");
}

TEST(JoinAutoTest, RoutesUnbalancedL6ToNestedLoopComposition) {
  extmem::Device dev(8, 2);
  // Unbalanced L5 prefix extended with a sixth relation on v6.
  auto rels = workload::UnbalancedL5(&dev, 4, 4, {2, 12, 8, 2});
  std::vector<storage::Tuple> r6_rows;
  for (Value i = 0; i < 4; ++i) r6_rows.push_back({i, 100 + i});
  rels.push_back(test::MakeRel(&dev, {5, 6}, r6_rows));
  CollectingSink sink;
  const AutoJoinReport report = JoinAuto(rels, sink.AsEmitFn());
  EXPECT_EQ(test::Sorted(std::move(sink.results())), ReferenceJoin(rels));
  EXPECT_TRUE(report.algorithm == "L6=NL(R6, Alg4)" ||
              report.algorithm == "L6=NL(R1, Alg4)" ||
              report.algorithm == "AcyclicJoin")
      << report.algorithm;
}

TEST(JoinAutoTest, GeneralAcyclicFallsBackToAlgorithm2) {
  extmem::Device dev(8, 2);
  workload::RandomOptions opts;
  opts.seed = 81;
  opts.domain_size = 4;
  const query::JoinQuery q = query::JoinQuery::Star(3);
  const auto rels = workload::RandomInstance(
      &dev, q, std::vector<TupleCount>(q.num_edges(), 16), opts);
  ExpectAutoMatches(rels, "AcyclicJoin");
}

TEST(JoinAutoTest, RandomLineSweep) {
  for (std::uint32_t n = 2; n <= 8; ++n) {
    extmem::Device dev(8, 2);
    workload::RandomOptions opts;
    opts.seed = 90 + n;
    opts.domain_size = 3;
    const auto rels = workload::RandomInstance(
        &dev, query::JoinQuery::Line(n), std::vector<TupleCount>(n, 8),
        opts);
    CollectingSink sink;
    JoinAuto(rels, sink.AsEmitFn());
    EXPECT_EQ(test::Sorted(std::move(sink.results())), ReferenceJoin(rels))
        << "n=" << n;
  }
}

}  // namespace
}  // namespace emjoin::core
