// Unit tests for the metrics registry: histogram bucketing, series
// identity, merge semantics (per-shard registries), and the JSON /
// Prometheus expositions.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "metrics/registry.h"

namespace emjoin::metrics {
namespace {

TEST(Histogram, BucketForPowersOfTwo) {
  // 0 and 1 land in bucket 0 (bound 1); 2 in bucket 1 (bound 2);
  // 3..4 in bucket 2 (bound 4); a value lands in the smallest bucket
  // whose bound holds it.
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 0);
  EXPECT_EQ(Histogram::BucketFor(2), 1);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 2);
  EXPECT_EQ(Histogram::BucketFor(5), 3);
  EXPECT_EQ(Histogram::BucketFor(8), 3);
  EXPECT_EQ(Histogram::BucketFor(9), 4);
  EXPECT_EQ(Histogram::BucketFor(1024), 10);
  EXPECT_EQ(Histogram::BucketFor(1025), 11);
}

TEST(Histogram, ValueNeverExceedsItsBucketBound) {
  for (std::uint64_t v : {1ull, 2ull, 3ull, 7ull, 100ull, 4095ull, 4097ull}) {
    const int bucket = Histogram::BucketFor(v);
    ASSERT_LT(bucket, Histogram::kFiniteBuckets);
    EXPECT_LE(v, Histogram::BucketBound(bucket)) << "v=" << v;
    if (bucket > 0) {
      EXPECT_GT(v, Histogram::BucketBound(bucket - 1)) << "v=" << v;
    }
  }
}

TEST(Histogram, HugeValuesOverflow) {
  EXPECT_EQ(Histogram::BucketFor(std::uint64_t{1} << 40),
            Histogram::kFiniteBuckets);
  Histogram h;
  h.Record(std::uint64_t{1} << 40);
  EXPECT_EQ(h.buckets()[Histogram::kFiniteBuckets], 1u);
}

TEST(Histogram, RecordTracksCountAndSum) {
  Histogram h;
  h.Record(3);
  h.Record(4);
  h.Record(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 107u);
  EXPECT_EQ(h.buckets()[2], 2u);  // 3 and 4 share bucket (2,4]
  EXPECT_EQ(h.buckets()[7], 1u);  // 100 <= 128
}

TEST(Registry, LabelKeyIsOrderInsensitive) {
  const Labels a = {{"op", "read"}, {"tag", "sort"}};
  const Labels b = {{"tag", "sort"}, {"op", "read"}};
  EXPECT_EQ(Registry::LabelKey(a), Registry::LabelKey(b));
  EXPECT_EQ(Registry::LabelKey(a), "{op=\"read\",tag=\"sort\"}");
  EXPECT_EQ(Registry::LabelKey({}), "");
}

TEST(Registry, SeriesPointersAreStable) {
  Registry reg;
  Counter* c = reg.GetCounter("emjoin_test_total", {{"op", "read"}});
  c->Add(1);
  // Creating more series must not invalidate earlier pointers.
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("emjoin_test_total",
                   {{"op", "x" + std::to_string(i)}});
  }
  EXPECT_EQ(reg.GetCounter("emjoin_test_total", {{"op", "read"}}), c);
  c->Add(1);
  EXPECT_EQ(c->value(), 2u);
}

TEST(Registry, MergeFromCombinesShards) {
  // Per-shard registries: counters add, gauges keep the max (peak
  // semantics), histograms merge bucket-wise.
  Registry a, b;
  a.GetCounter("emjoin_ops_total")->Add(3);
  b.GetCounter("emjoin_ops_total")->Add(4);
  b.GetCounter("emjoin_other_total")->Add(1);
  a.GetGauge("emjoin_peak")->SetMax(10);
  b.GetGauge("emjoin_peak")->SetMax(7);
  a.GetHistogram("emjoin_sizes")->Record(4);
  b.GetHistogram("emjoin_sizes")->Record(4);
  b.GetHistogram("emjoin_sizes")->Record(1000);

  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("emjoin_ops_total")->value(), 7u);
  EXPECT_EQ(a.GetCounter("emjoin_other_total")->value(), 1u);
  EXPECT_EQ(a.GetGauge("emjoin_peak")->value(), 10u);
  EXPECT_EQ(a.GetHistogram("emjoin_sizes")->count(), 3u);
  EXPECT_EQ(a.GetHistogram("emjoin_sizes")->sum(), 1008u);
  EXPECT_EQ(a.GetHistogram("emjoin_sizes")->buckets()[2], 2u);
}

TEST(Registry, MergeKeepsMaxGaugeEitherDirection) {
  Registry a, b;
  a.GetGauge("g")->Set(3);
  b.GetGauge("g")->Set(9);
  a.MergeFrom(b);
  EXPECT_EQ(a.GetGauge("g")->value(), 9u);
}

TEST(Registry, JsonExposition) {
  Registry reg;
  reg.GetCounter("emjoin_io_total", {{"op", "read"}})->Add(5);
  reg.GetGauge("emjoin_peak")->Set(42);
  reg.GetHistogram("emjoin_sizes")->Record(3);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"emjoin_io_total{op=\\\"read\\\"}\": 5"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"emjoin_peak\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum\": 3"), std::string::npos) << json;
}

// Deliberate golden update with the exposition-format completion work:
// every family now carries a # HELP line (SetHelp text, or a generic
// placeholder) ahead of its # TYPE, as the format expects.
TEST(Registry, PrometheusGolden) {
  Registry reg;
  reg.GetCounter("emjoin_io_total", {{"op", "read"}})->Add(5);
  reg.SetHelp("emjoin_io_total", "Block transfers, by op");
  reg.GetGauge("emjoin_peak")->Set(42);
  Histogram* h = reg.GetHistogram("emjoin_sizes");
  h->Record(3);
  h->Record(4);
  h->Record(9);

  const std::string expected =
      "# HELP emjoin_io_total Block transfers, by op\n"
      "# TYPE emjoin_io_total counter\n"
      "emjoin_io_total{op=\"read\"} 5\n"
      "# HELP emjoin_peak emjoin collected metric\n"
      "# TYPE emjoin_peak gauge\n"
      "emjoin_peak 42\n"
      "# HELP emjoin_sizes emjoin collected metric\n"
      "# TYPE emjoin_sizes histogram\n"
      "emjoin_sizes_bucket{le=\"4\"} 2\n"
      "emjoin_sizes_bucket{le=\"16\"} 3\n"
      "emjoin_sizes_bucket{le=\"+Inf\"} 3\n"
      "emjoin_sizes_sum 16\n"
      "emjoin_sizes_count 3\n";
  EXPECT_EQ(reg.ToPrometheusText(), expected);
}

TEST(Registry, LabelValuesEscapePerExpositionFormat) {
  Registry reg;
  reg.GetCounter("emjoin_paths_total",
                 {{"path", "a\\b\"c\nd"}})->Add(1);
  const std::string text = reg.ToPrometheusText();
  // Backslash, quote, and newline all escape; the sample stays one line.
  EXPECT_NE(text.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos)
      << text;
  std::string error;
  EXPECT_TRUE(CheckPrometheusText(text, &error)) << error;
}

TEST(Registry, HelpTextEscapesBackslashAndNewline) {
  Registry reg;
  reg.GetCounter("emjoin_c")->Add(1);
  reg.SetHelp("emjoin_c", "line one\nline \\ two");
  const std::string text = reg.ToPrometheusText();
  EXPECT_NE(text.find("# HELP emjoin_c line one\\nline \\\\ two\n"),
            std::string::npos)
      << text;
  std::string error;
  EXPECT_TRUE(CheckPrometheusText(text, &error)) << error;
}

TEST(Registry, MergeFromPropagatesHelpText) {
  Registry shard;
  shard.GetCounter("emjoin_c")->Add(2);
  shard.SetHelp("emjoin_c", "from the shard");
  Registry merged;
  merged.MergeFrom(shard, {{"shard", "0"}});
  EXPECT_NE(merged.ToPrometheusText().find("# HELP emjoin_c from the shard"),
            std::string::npos);
}

// The conformance gate itself: everything the registry can export must
// pass its own checker, across all three metric kinds, labels, escapes,
// and shard-merged series.
TEST(Conformance, EveryRegistryExportPasses) {
  Registry shard0, shard1;
  shard0.GetCounter("emjoin_io_total", {{"op", "read"}, {"tag", "sort"}})
      ->Add(7);
  shard0.GetGauge("emjoin_peak")->Set(10);
  shard0.GetHistogram("emjoin_sizes")->Record(5);
  shard1.GetCounter("emjoin_io_total", {{"op", "write"}})->Add(3);
  shard1.GetHistogram("emjoin_sizes")->Record(100);
  Registry merged;
  merged.SetHelp("emjoin_io_total", "Block transfers");
  merged.MergeFrom(shard0, {{"shard", "0"}});
  merged.MergeFrom(shard1, {{"shard", "1"}});
  std::string error;
  EXPECT_TRUE(CheckPrometheusText(merged.ToPrometheusText(), &error))
      << error;
  // The empty export is trivially conformant too.
  EXPECT_TRUE(CheckPrometheusText("", &error)) << error;
}

// The daemon's multi-tenant aggregation pattern: two queries export the
// same families, each absorbed under its own query="<id>" label. The
// merged exposition must stay conformant with exactly one # TYPE/# HELP
// header per family, never one per tenant.
TEST(Conformance, QueryLabeledAggregationEmitsEachHeaderOnce) {
  Registry q1, q2;
  for (Registry* q : {&q1, &q2}) {
    q->SetHelp("emjoin_device_io_blocks_total", "Block transfers");
    q->GetCounter("emjoin_device_io_blocks_total", {{"op", "read"}})->Add(21);
    q->GetCounter("emjoin_device_io_blocks_total",
                  {{"op", "read"}, {"tag", "sort"}})
        ->Add(3);
    q->GetGauge("emjoin_peak_resident_tuples")->Set(64);
    q->GetHistogram("emjoin_fault_retry_burst")->Record(2);
  }
  Registry aggregate;
  aggregate.MergeFrom(q1, {{"query", "q1"}});
  aggregate.MergeFrom(q2, {{"query", "q2"}});

  const std::string text = aggregate.ToPrometheusText();
  std::string error;
  EXPECT_TRUE(CheckPrometheusText(text, &error)) << error;

  const auto count = [&text](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + needle.size())) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("# TYPE emjoin_device_io_blocks_total counter"), 1u);
  EXPECT_EQ(count("# HELP emjoin_device_io_blocks_total Block transfers"),
            1u);
  EXPECT_EQ(count("# TYPE emjoin_peak_resident_tuples gauge"), 1u);
  EXPECT_EQ(count("# TYPE emjoin_fault_retry_burst histogram"), 1u);
  // Both tenants' series survive side by side under their own label.
  EXPECT_NE(
      text.find("emjoin_device_io_blocks_total{op=\"read\",query=\"q1\"} 21"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find("emjoin_device_io_blocks_total{op=\"read\",query=\"q2\"} 21"),
      std::string::npos)
      << text;
}

TEST(Conformance, RejectsMalformedExpositionText) {
  const auto rejects = [](const std::string& text) {
    std::string error;
    const bool ok = CheckPrometheusText(text, &error);
    EXPECT_FALSE(ok) << "accepted:\n" << text;
    if (!ok) {
      EXPECT_FALSE(error.empty());
    }
    return !ok;
  };
  // A sample whose family was never TYPEd.
  EXPECT_TRUE(rejects("emjoin_c 1\n"));
  // Duplicate TYPE for one family.
  EXPECT_TRUE(rejects("# TYPE emjoin_c counter\n# TYPE emjoin_c counter\n"
                      "emjoin_c 1\n"));
  // TYPE after the family's first sample.
  EXPECT_TRUE(rejects("# TYPE emjoin_c counter\nemjoin_c 1\n"
                      "# HELP emjoin_c late\n"));
  // Bad metric name, bad label name, unterminated label quoting.
  EXPECT_TRUE(rejects("# TYPE 9bad counter\n9bad 1\n"));
  EXPECT_TRUE(rejects("# TYPE emjoin_c counter\nemjoin_c{9l=\"x\"} 1\n"));
  EXPECT_TRUE(rejects("# TYPE emjoin_c counter\nemjoin_c{l=\"x} 1\n"));
  // Invalid escape inside a label value.
  EXPECT_TRUE(rejects("# TYPE emjoin_c counter\nemjoin_c{l=\"a\\qb\"} 1\n"));
  // Unparseable sample value.
  EXPECT_TRUE(rejects("# TYPE emjoin_c counter\nemjoin_c one\n"));
  // Histogram without the mandatory +Inf bucket.
  EXPECT_TRUE(rejects("# TYPE emjoin_h histogram\n"
                      "emjoin_h_bucket{le=\"4\"} 1\n"
                      "emjoin_h_sum 3\nemjoin_h_count 1\n"));
  // Histogram with non-cumulative buckets.
  EXPECT_TRUE(rejects("# TYPE emjoin_h histogram\n"
                      "emjoin_h_bucket{le=\"4\"} 5\n"
                      "emjoin_h_bucket{le=\"+Inf\"} 3\n"
                      "emjoin_h_sum 3\nemjoin_h_count 3\n"));
  // +Inf bucket disagreeing with _count.
  EXPECT_TRUE(rejects("# TYPE emjoin_h histogram\n"
                      "emjoin_h_bucket{le=\"+Inf\"} 3\n"
                      "emjoin_h_sum 3\nemjoin_h_count 4\n"));
  // _bucket sample missing its le label.
  EXPECT_TRUE(rejects("# TYPE emjoin_h histogram\n"
                      "emjoin_h_bucket 3\n"
                      "emjoin_h_sum 3\nemjoin_h_count 3\n"));
}

TEST(Conformance, AcceptsForeignButValidText) {
  // Not something our registry would emit (timestamps, +Inf values,
  // exotic spacing are all legal exposition text) — the checker follows
  // the format, not our exporter's subset.
  const std::string text =
      "# HELP http_requests_total The total number of HTTP requests.\n"
      "# TYPE http_requests_total counter\n"
      "http_requests_total{method=\"post\",code=\"200\"} 1027 1395066363000\n"
      "\n"
      "# TYPE something_weird gauge\n"
      "something_weird{problem=\"division by zero\"} +Inf -3982045\n";
  std::string error;
  EXPECT_TRUE(CheckPrometheusText(text, &error)) << error;
}

TEST(Registry, EmptyRegistryExportsEmptySections) {
  Registry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.ToPrometheusText(), "");
  reg.GetCounter("c");
  EXPECT_FALSE(reg.empty());
}

}  // namespace
}  // namespace emjoin::metrics
