// Unit tests for the metrics registry: histogram bucketing, series
// identity, merge semantics (per-shard registries), and the JSON /
// Prometheus expositions.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "metrics/registry.h"

namespace emjoin::metrics {
namespace {

TEST(Histogram, BucketForPowersOfTwo) {
  // 0 and 1 land in bucket 0 (bound 1); 2 in bucket 1 (bound 2);
  // 3..4 in bucket 2 (bound 4); a value lands in the smallest bucket
  // whose bound holds it.
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1), 0);
  EXPECT_EQ(Histogram::BucketFor(2), 1);
  EXPECT_EQ(Histogram::BucketFor(3), 2);
  EXPECT_EQ(Histogram::BucketFor(4), 2);
  EXPECT_EQ(Histogram::BucketFor(5), 3);
  EXPECT_EQ(Histogram::BucketFor(8), 3);
  EXPECT_EQ(Histogram::BucketFor(9), 4);
  EXPECT_EQ(Histogram::BucketFor(1024), 10);
  EXPECT_EQ(Histogram::BucketFor(1025), 11);
}

TEST(Histogram, ValueNeverExceedsItsBucketBound) {
  for (std::uint64_t v : {1ull, 2ull, 3ull, 7ull, 100ull, 4095ull, 4097ull}) {
    const int bucket = Histogram::BucketFor(v);
    ASSERT_LT(bucket, Histogram::kFiniteBuckets);
    EXPECT_LE(v, Histogram::BucketBound(bucket)) << "v=" << v;
    if (bucket > 0) {
      EXPECT_GT(v, Histogram::BucketBound(bucket - 1)) << "v=" << v;
    }
  }
}

TEST(Histogram, HugeValuesOverflow) {
  EXPECT_EQ(Histogram::BucketFor(std::uint64_t{1} << 40),
            Histogram::kFiniteBuckets);
  Histogram h;
  h.Record(std::uint64_t{1} << 40);
  EXPECT_EQ(h.buckets()[Histogram::kFiniteBuckets], 1u);
}

TEST(Histogram, RecordTracksCountAndSum) {
  Histogram h;
  h.Record(3);
  h.Record(4);
  h.Record(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 107u);
  EXPECT_EQ(h.buckets()[2], 2u);  // 3 and 4 share bucket (2,4]
  EXPECT_EQ(h.buckets()[7], 1u);  // 100 <= 128
}

TEST(Registry, LabelKeyIsOrderInsensitive) {
  const Labels a = {{"op", "read"}, {"tag", "sort"}};
  const Labels b = {{"tag", "sort"}, {"op", "read"}};
  EXPECT_EQ(Registry::LabelKey(a), Registry::LabelKey(b));
  EXPECT_EQ(Registry::LabelKey(a), "{op=\"read\",tag=\"sort\"}");
  EXPECT_EQ(Registry::LabelKey({}), "");
}

TEST(Registry, SeriesPointersAreStable) {
  Registry reg;
  Counter* c = reg.GetCounter("emjoin_test_total", {{"op", "read"}});
  c->Add(1);
  // Creating more series must not invalidate earlier pointers.
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("emjoin_test_total",
                   {{"op", "x" + std::to_string(i)}});
  }
  EXPECT_EQ(reg.GetCounter("emjoin_test_total", {{"op", "read"}}), c);
  c->Add(1);
  EXPECT_EQ(c->value(), 2u);
}

TEST(Registry, MergeFromCombinesShards) {
  // Per-shard registries: counters add, gauges keep the max (peak
  // semantics), histograms merge bucket-wise.
  Registry a, b;
  a.GetCounter("emjoin_ops_total")->Add(3);
  b.GetCounter("emjoin_ops_total")->Add(4);
  b.GetCounter("emjoin_other_total")->Add(1);
  a.GetGauge("emjoin_peak")->SetMax(10);
  b.GetGauge("emjoin_peak")->SetMax(7);
  a.GetHistogram("emjoin_sizes")->Record(4);
  b.GetHistogram("emjoin_sizes")->Record(4);
  b.GetHistogram("emjoin_sizes")->Record(1000);

  a.MergeFrom(b);
  EXPECT_EQ(a.GetCounter("emjoin_ops_total")->value(), 7u);
  EXPECT_EQ(a.GetCounter("emjoin_other_total")->value(), 1u);
  EXPECT_EQ(a.GetGauge("emjoin_peak")->value(), 10u);
  EXPECT_EQ(a.GetHistogram("emjoin_sizes")->count(), 3u);
  EXPECT_EQ(a.GetHistogram("emjoin_sizes")->sum(), 1008u);
  EXPECT_EQ(a.GetHistogram("emjoin_sizes")->buckets()[2], 2u);
}

TEST(Registry, MergeKeepsMaxGaugeEitherDirection) {
  Registry a, b;
  a.GetGauge("g")->Set(3);
  b.GetGauge("g")->Set(9);
  a.MergeFrom(b);
  EXPECT_EQ(a.GetGauge("g")->value(), 9u);
}

TEST(Registry, JsonExposition) {
  Registry reg;
  reg.GetCounter("emjoin_io_total", {{"op", "read"}})->Add(5);
  reg.GetGauge("emjoin_peak")->Set(42);
  reg.GetHistogram("emjoin_sizes")->Record(3);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"emjoin_io_total{op=\\\"read\\\"}\": 5"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"emjoin_peak\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum\": 3"), std::string::npos) << json;
}

TEST(Registry, PrometheusGolden) {
  Registry reg;
  reg.GetCounter("emjoin_io_total", {{"op", "read"}})->Add(5);
  reg.GetGauge("emjoin_peak")->Set(42);
  Histogram* h = reg.GetHistogram("emjoin_sizes");
  h->Record(3);
  h->Record(4);
  h->Record(9);

  const std::string expected =
      "# TYPE emjoin_io_total counter\n"
      "emjoin_io_total{op=\"read\"} 5\n"
      "# TYPE emjoin_peak gauge\n"
      "emjoin_peak 42\n"
      "# TYPE emjoin_sizes histogram\n"
      "emjoin_sizes_bucket{le=\"4\"} 2\n"
      "emjoin_sizes_bucket{le=\"16\"} 3\n"
      "emjoin_sizes_bucket{le=\"+Inf\"} 3\n"
      "emjoin_sizes_sum 16\n"
      "emjoin_sizes_count 3\n";
  EXPECT_EQ(reg.ToPrometheusText(), expected);
}

TEST(Registry, EmptyRegistryExportsEmptySections) {
  Registry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.ToPrometheusText(), "");
  reg.GetCounter("c");
  EXPECT_FALSE(reg.empty());
}

}  // namespace
}  // namespace emjoin::metrics
