// Larger-scale conformance checks: result counts against the counting
// oracle (reference enumeration would be too slow) and I/O envelopes on
// instances one to two orders of magnitude above the unit tests.
#include <gtest/gtest.h>

#include "core/acyclic_join.h"
#include "core/dispatch.h"
#include "core/line3.h"
#include "counting/cardinality.h"
#include "workload/constructions.h"
#include "workload/random_instance.h"

namespace emjoin {
namespace {

TEST(StressTest, L3WorstCaseQuarterMillionResults) {
  extmem::Device dev(128, 16);
  const auto rels = workload::L3WorstCase(&dev, 512, 1, 512);
  core::CountingSink sink;
  core::LineJoin3(rels[0], rels[1], rels[2], sink.AsEmitFn());
  EXPECT_EQ(sink.count(), 512u * 512u);
  // Õ(N^2/(MB)): 512^2/2048 = 128; very generous envelope.
  EXPECT_LE(dev.stats().total(), 40u * (128 + 3 * 512 / 16));
}

TEST(StressTest, RandomLine5AgainstCountingOracle) {
  extmem::Device dev(64, 8);
  workload::RandomOptions opts;
  opts.seed = 600;
  opts.domain_size = 24;
  const auto rels = workload::RandomInstance(
      &dev, query::JoinQuery::Line(5), std::vector<TupleCount>(5, 500),
      opts);
  const std::uint64_t expected = counting::JoinSize(rels);
  core::CountingSink sink;
  core::JoinAuto(rels, sink.AsEmitFn());
  EXPECT_EQ(sink.count(), expected);
}

TEST(StressTest, SkewedStarAgainstCountingOracle) {
  extmem::Device dev(64, 8);
  workload::RandomOptions opts;
  opts.seed = 601;
  opts.domain_size = 16;
  opts.zipf_s = 1.4;
  const query::JoinQuery q = query::JoinQuery::Star(3);
  const auto rels = workload::RandomInstance(
      &dev, q, std::vector<TupleCount>(q.num_edges(), 400), opts);
  const std::uint64_t expected = counting::JoinSize(rels);
  core::CountingSink sink;
  core::JoinAuto(rels, sink.AsEmitFn());
  EXPECT_EQ(sink.count(), expected);
}

TEST(StressTest, MemoryGaugeHoldsAtScale) {
  extmem::Device dev(256, 16);
  const auto rels = workload::CrossProductLine(&dev, {1, 96, 1, 96, 1, 96});
  dev.gauge().ResetHighWater();
  core::CountingSink sink;
  core::AcyclicJoin(rels, sink.AsEmitFn());
  EXPECT_EQ(sink.count(), 96u * 96 * 96);
  EXPECT_LE(dev.gauge().high_water(), 8 * dev.M());
}

TEST(StressTest, DeepChainWithWideRelations) {
  // Arity-3 relations chained through single shared attributes.
  extmem::Device dev(64, 8);
  query::JoinQuery q;
  q.AddRelation(query::Schema({0, 1, 2}));
  q.AddRelation(query::Schema({2, 3, 4}));
  q.AddRelation(query::Schema({4, 5, 6}));
  q.AddRelation(query::Schema({6, 7, 8}));
  workload::RandomOptions opts;
  opts.seed = 602;
  opts.domain_size = 8;
  const auto rels = workload::RandomInstance(
      &dev, q, std::vector<TupleCount>(4, 300), opts);
  const std::uint64_t expected = counting::JoinSize(rels);
  core::CountingSink sink;
  core::JoinAuto(rels, sink.AsEmitFn());
  EXPECT_EQ(sink.count(), expected);
}

}  // namespace
}  // namespace emjoin
