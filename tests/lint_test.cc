// Self-tests for tools/emjoin_lint: every rule fires exactly where the
// fixture says it should, suppression comments silence it, and the JSON
// report round-trips. The fixtures under tests/lint_fixtures/ are tiny
// mini-trees (src/core/..., tools/...) because several rules are scoped
// by path; they are scanned, never compiled.
//
// EMJOIN_LINT_BIN and EMJOIN_LINT_FIXTURES are injected by CMake.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string out;
  std::vector<std::string> lines;
};

LintRun RunLint(const std::string& args) {
  const std::string cmd = std::string(EMJOIN_LINT_BIN) + " " + args;
  LintRun r;
  std::FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  if (pipe == nullptr) return r;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) r.out += buf;
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::istringstream in(r.out);
  for (std::string line; std::getline(in, line);) r.lines.push_back(line);
  return r;
}

std::string Fixture(const std::string& name) {
  return std::string("--root=") + EMJOIN_LINT_FIXTURES + "/" + name +
         " 2>/dev/null";
}

TEST(LintTest, TagDisciplineFiresOnlyOnUntaggedCharge) {
  const LintRun r = RunLint(Fixture("tag_discipline"));
  EXPECT_EQ(r.exit_code, 1);
  ASSERT_EQ(r.lines.size(), 1u) << r.out;
  EXPECT_TRUE(r.lines[0].rfind("src/core/untagged.cc:21: tag-discipline:",
                               0) == 0)
      << r.lines[0];
}

TEST(LintTest, StatusBoundaryFlagsThrowAndCatchOutsideExtmem) {
  const LintRun r = RunLint(Fixture("status_boundary"));
  EXPECT_EQ(r.exit_code, 1);
  ASSERT_EQ(r.lines.size(), 2u) << r.out;
  EXPECT_TRUE(
      r.lines[0].rfind("src/core/raiser.cc:12: status-boundary:", 0) == 0)
      << r.lines[0];
  EXPECT_NE(r.lines[0].find("throw"), std::string::npos);
  EXPECT_TRUE(
      r.lines[1].rfind("tools/catcher.cc:10: status-boundary:", 0) == 0)
      << r.lines[1];
  EXPECT_NE(r.lines[1].find("catch"), std::string::npos);
}

TEST(LintTest, StatusDiscardFlagsBareCallsOnly) {
  const LintRun r = RunLint(Fixture("status_discard"));
  EXPECT_EQ(r.exit_code, 1);
  ASSERT_EQ(r.lines.size(), 2u) << r.out;
  EXPECT_TRUE(
      r.lines[0].rfind("tools/driver.cc:10: status-discard:", 0) == 0)
      << r.lines[0];
  EXPECT_NE(r.lines[0].find("TryExternalSort"), std::string::npos);
  EXPECT_TRUE(
      r.lines[1].rfind("tools/driver.cc:16: status-discard:", 0) == 0)
      << r.lines[1];
  EXPECT_NE(r.lines[1].find("TryJoinAuto"), std::string::npos);
}

TEST(LintTest, DeterminismFlagsEachBannedConstructOnce) {
  const LintRun r = RunLint(Fixture("determinism"));
  EXPECT_EQ(r.exit_code, 1);
  ASSERT_EQ(r.lines.size(), 6u) << r.out;
  const int expected_lines[] = {10, 11, 12, 13, 16, 19};
  for (std::size_t i = 0; i < 6; ++i) {
    const std::string prefix = "src/core/entropy.cc:" +
                               std::to_string(expected_lines[i]) +
                               ": determinism:";
    EXPECT_TRUE(r.lines[i].rfind(prefix, 0) == 0)
        << "want " << prefix << " got " << r.lines[i];
  }
  EXPECT_NE(r.lines[4].find("without a seed"), std::string::npos);
  EXPECT_NE(r.lines[5].find("pointer"), std::string::npos);
}

TEST(LintTest, SubstrateHygieneFlagsRawIoInCore) {
  const LintRun r = RunLint(Fixture("substrate_hygiene"));
  EXPECT_EQ(r.exit_code, 1);
  ASSERT_EQ(r.lines.size(), 3u) << r.out;
  EXPECT_TRUE(
      r.lines[0].rfind("src/core/rawio.cc:4: substrate-hygiene:", 0) == 0)
      << r.lines[0];
  EXPECT_TRUE(
      r.lines[1].rfind("src/core/rawio.cc:9: substrate-hygiene:", 0) == 0)
      << r.lines[1];
  EXPECT_TRUE(
      r.lines[2].rfind("src/core/rawio.cc:12: substrate-hygiene:", 0) == 0)
      << r.lines[2];
}

TEST(LintTest, ThreadDisciplineFlagsRawSpawnsOutsideParallel) {
  const LintRun r = RunLint(Fixture("thread_discipline"));
  EXPECT_EQ(r.exit_code, 1);
  // Five findings in src/core/spawner.cc: one per raw spawn primitive
  // plus the WorkerPool member (only the allowlisted layers may own a
  // pool inside src/). The identical spawns and pools in
  // src/parallel/pool.cc, src/obs/exporter.cc, and src/serve/daemon.cc
  // are exempt (all three directories are allowlisted) and must not
  // appear.
  ASSERT_EQ(r.lines.size(), 5u) << r.out;
  const int expected_lines[] = {9, 12, 15, 17, 35};
  const char* expected_tokens[] = {"std::thread", "std::jthread",
                                   "std::async", "pthread_create",
                                   "WorkerPool"};
  for (std::size_t i = 0; i < 5; ++i) {
    const std::string prefix = "src/core/spawner.cc:" +
                               std::to_string(expected_lines[i]) +
                               ": thread-discipline:";
    EXPECT_TRUE(r.lines[i].rfind(prefix, 0) == 0)
        << "want " << prefix << " got " << r.lines[i];
    EXPECT_NE(r.lines[i].find(expected_tokens[i]), std::string::npos)
        << r.lines[i];
  }
  EXPECT_EQ(r.out.find("src/parallel/"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("src/obs/"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("src/serve/"), std::string::npos) << r.out;
}

TEST(LintTest, RecoveryTagRequiresTheRecoveryTagInRecover) {
  const LintRun r = RunLint(Fixture("recovery_tag"));
  EXPECT_EQ(r.exit_code, 1);
  // The wrong-tag charge fires recovery-tag only (it IS under a
  // ScopedIoTag, so tag-discipline stays quiet); the "recovery"-tagged
  // charge is clean under both rules.
  ASSERT_EQ(r.lines.size(), 1u) << r.out;
  EXPECT_TRUE(
      r.lines[0].rfind("src/recover/rework.cc:7: recovery-tag:", 0) == 0)
      << r.lines[0];
  EXPECT_NE(r.lines[0].find("recovery"), std::string::npos);
}

TEST(LintTest, LockDisciplineFlagsManualOpsAndBareMembers) {
  const LintRun r = RunLint(Fixture("lock_discipline"));
  EXPECT_EQ(r.exit_code, 1);
  // Three manual mutex operations plus one undocumented member of each
  // primitive kind; the RAII guard, the GUARDED_BY-referenced mutex,
  // the WAITS_ON cv, and the LOCK_FREE_ATOMIC atomic stay quiet.
  ASSERT_EQ(r.lines.size(), 6u) << r.out;
  const int expected_lines[] = {13, 15, 19, 28, 33, 36};
  const char* expected_tokens[] = {".lock()",  ".unlock()", ".try_lock()",
                                   "mutex",    "condition", "atomic"};
  for (std::size_t i = 0; i < 6; ++i) {
    const std::string prefix = "src/serve/locky.cc:" +
                               std::to_string(expected_lines[i]) +
                               ": lock-discipline:";
    EXPECT_TRUE(r.lines[i].rfind(prefix, 0) == 0)
        << "want " << prefix << " got " << r.lines[i];
    EXPECT_NE(r.lines[i].find(expected_tokens[i]), std::string::npos)
        << r.lines[i];
  }
  EXPECT_NE(r.lines[3].find("'mu_'"), std::string::npos) << r.lines[3];
  EXPECT_NE(r.lines[4].find("'cv_'"), std::string::npos) << r.lines[4];
  EXPECT_NE(r.lines[5].find("'bare_'"), std::string::npos) << r.lines[5];
}

TEST(LintTest, IncludeLayeringFlagsUpwardEdgesOnly) {
  const LintRun r = RunLint(Fixture("include_layering"));
  EXPECT_EQ(r.exit_code, 1);
  // Two upward edges out of core, one out of extmem. The same-layer and
  // downward edges, the layerless observer headers, and the whole
  // top-layer serve file must not appear.
  ASSERT_EQ(r.lines.size(), 3u) << r.out;
  EXPECT_TRUE(
      r.lines[0].rfind("src/core/sideways.cc:5: include-layering:", 0) == 0)
      << r.lines[0];
  EXPECT_NE(r.lines[0].find("obs/progress.h"), std::string::npos);
  EXPECT_TRUE(
      r.lines[1].rfind("src/core/sideways.cc:6: include-layering:", 0) == 0)
      << r.lines[1];
  EXPECT_NE(r.lines[1].find("parallel/worker_pool.h"), std::string::npos);
  EXPECT_TRUE(
      r.lines[2].rfind("src/extmem/upward.cc:5: include-layering:", 0) == 0)
      << r.lines[2];
  EXPECT_NE(r.lines[2].find("storage/relation.h"), std::string::npos);
  EXPECT_EQ(r.out.find("fine.cc"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("trace/tracer.h"), std::string::npos) << r.out;
}

TEST(LintTest, SuppressionCommentsSilenceEveryRule) {
  const LintRun r = RunLint(Fixture("suppressed"));
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_TRUE(r.lines.empty()) << r.out;
}

TEST(LintTest, RuleFilterRestrictsChecking) {
  // The determinism fixture is clean under every *other* rule.
  const LintRun r =
      RunLint("--rule=substrate-hygiene " + Fixture("determinism"));
  EXPECT_EQ(r.exit_code, 0) << r.out;
}

TEST(LintTest, JsonReportMatchesTextFindings) {
  const std::string json_path =
      testing::TempDir() + "/lint_findings_test.json";
  const LintRun r =
      RunLint("--json=" + json_path + " " + Fixture("tag_discipline"));
  EXPECT_EQ(r.exit_code, 1);
  std::ifstream in(json_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"tool\": \"emjoin_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/core/untagged.cc\", \"line\": 21, "
                      "\"rule\": \"tag-discipline\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"clean\": false"), std::string::npos);
}

TEST(LintTest, JsonReportOnCleanTreeSaysClean) {
  const std::string json_path = testing::TempDir() + "/lint_clean_test.json";
  const LintRun r =
      RunLint("--json=" + json_path + " " + Fixture("suppressed"));
  EXPECT_EQ(r.exit_code, 0);
  std::ifstream in(json_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"clean\": true"), std::string::npos);
}

TEST(LintTest, ListRulesNamesTheFullCatalogue) {
  const LintRun r = RunLint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule :
       {"tag-discipline", "status-boundary", "status-discard", "determinism",
        "substrate-hygiene", "thread-discipline", "recovery-tag",
        "lock-discipline", "include-layering"}) {
    EXPECT_NE(r.out.find(rule), std::string::npos) << rule;
  }
}

TEST(LintTest, UsageAndIoErrorsUseBenchDiffExitCodes) {
  EXPECT_EQ(RunLint("--no-such-flag 2>/dev/null").exit_code, 2);
  EXPECT_EQ(RunLint("--rule=no-such-rule 2>/dev/null").exit_code, 2);
  EXPECT_EQ(RunLint("--root=/nonexistent/dir 2>/dev/null").exit_code, 66);
}

// The gate the CI lint job and the emjoin_lint_tree CTest check rely on:
// the real tree is clean. EMJOIN_LINT_SOURCE_ROOT points at the repo.
TEST(LintTest, RealTreeIsClean) {
  const LintRun r =
      RunLint(std::string("--root=") + EMJOIN_LINT_SOURCE_ROOT);
  EXPECT_EQ(r.exit_code, 0) << r.out;
}

}  // namespace
