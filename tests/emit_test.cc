#include "core/emit.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace emjoin::core {
namespace {

TEST(ResultSchemaTest, MakeResultSchemaFirstSeenOrder) {
  extmem::Device dev(16, 4);
  const auto r1 = test::MakeRel(&dev, {3, 1}, {});
  const auto r2 = test::MakeRel(&dev, {1, 7}, {});
  const ResultSchema schema = MakeResultSchema({r1, r2});
  EXPECT_EQ(schema.attrs, (std::vector<storage::AttrId>{3, 1, 7}));
  EXPECT_EQ(schema.PositionOf(7), 2u);
  EXPECT_EQ(schema.PositionOf(99), 3u);  // "not found" == size()
}

TEST(AssignmentTest, BindWritesAtSchemaPositions) {
  Assignment a(ResultSchema{{10, 20, 30}});
  const storage::Schema phys({20, 10});
  const Value t[2] = {200, 100};
  a.Bind(phys, t);
  EXPECT_EQ(a.ValueOf(10), 100u);
  EXPECT_EQ(a.ValueOf(20), 200u);
  EXPECT_EQ(a.values().size(), 3u);
}

TEST(AssignmentTest, BindIgnoresAttributesOutsideSchema) {
  Assignment a(ResultSchema{{1}});
  const storage::Schema phys({1, 2});
  const Value t[2] = {5, 6};
  a.Bind(phys, t);  // attr 2 silently dropped
  EXPECT_EQ(a.ValueOf(1), 5u);
}

TEST(AssignmentTest, LaterBindsOverwrite) {
  Assignment a(ResultSchema{{1, 2}});
  const storage::Schema s1({1});
  const storage::Schema s2({1, 2});
  const Value t1[1] = {7};
  const Value t2[2] = {9, 11};
  a.Bind(s1, t1);
  a.Bind(s2, t2);
  EXPECT_EQ(a.ValueOf(1), 9u);
  EXPECT_EQ(a.ValueOf(2), 11u);
}

TEST(SinksTest, CountingAndCollecting) {
  CountingSink count;
  CollectingSink collect;
  const std::vector<Value> row = {1, 2, 3};
  count.AsEmitFn()(row);
  count.AsEmitFn()(row);
  collect.AsEmitFn()(row);
  EXPECT_EQ(count.count(), 2u);
  ASSERT_EQ(collect.results().size(), 1u);
  EXPECT_EQ(collect.results()[0], row);
}

TEST(IoTagTest, ScopedTagAttributesCharges) {
  extmem::Device dev(16, 4);
  dev.ChargeReadBlocks(2);  // default "scan"
  {
    extmem::ScopedIoTag tag(&dev, "sort");
    dev.ChargeWriteBlocks(3);
    {
      extmem::ScopedIoTag inner(&dev, "semijoin");
      dev.ChargeReadBlocks(1);
    }
    dev.ChargeReadBlocks(1);  // back to "sort"
  }
  dev.ChargeReadBlocks(4);  // back to "scan"

  std::uint64_t scan = 0, sort = 0, semi = 0;
  for (const auto& [tag, stats] : dev.per_tag()) {
    const std::string name = tag;
    if (name == "scan") scan = stats.total();
    if (name == "sort") sort = stats.total();
    if (name == "semijoin") semi = stats.total();
  }
  EXPECT_EQ(scan, 6u);
  EXPECT_EQ(sort, 4u);
  EXPECT_EQ(semi, 1u);
  EXPECT_EQ(dev.stats().total(), 11u);
  EXPECT_NE(dev.TagReport().find("sort=4"), std::string::npos);
}

}  // namespace
}  // namespace emjoin::core
