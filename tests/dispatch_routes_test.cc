// Routing tests for the §6.3 composite strategies: the L7 cover-
// (1,1,0,1,0,1,1) double nested loop and the L8 end-relation reduction.
#include <gtest/gtest.h>

#include "core/dispatch.h"
#include "core/reference.h"
#include "tests/test_util.h"
#include "query/edge_cover.h"
#include "workload/constructions.h"
#include "workload/random_instance.h"

namespace emjoin::core {
namespace {

// L7 instance whose optimal edge cover is (1,1,0,1,0,1,1): tiny bridge
// relations e2/e6 and a huge middle, fully reduced by construction.
// Sizes: (10, 2, 200, 100, 200, 2, 10).
std::vector<storage::Relation> CoverCaseL7(extmem::Device* dev) {
  std::vector<storage::Relation> rels;
  rels.push_back(workload::ManyToOne(dev, 0, 1, 10, 2));    // e1
  rels.push_back(workload::Matching(dev, 1, 2, 2));         // e2
  rels.push_back(workload::CrossProduct(dev, 2, 3, 2, 100));  // e3
  rels.push_back(workload::Matching(dev, 3, 4, 100));       // e4
  rels.push_back(workload::CrossProduct(dev, 4, 5, 100, 2));  // e5
  rels.push_back(workload::Matching(dev, 5, 6, 2));         // e6
  rels.push_back(workload::OneToMany(dev, 6, 7, 10, 2));    // e7
  return rels;
}

TEST(DispatchRoutesTest, L7CoverCaseUsesDoubleNestedLoopAroundAlg4) {
  extmem::Device dev(16, 4);
  const auto rels = CoverCaseL7(&dev);
  // The cover (1,1,0,1,0,1,1) has product 10*2*100*2*10 = 40000, far
  // below the alternating cover's 10*200*200*10 = 4,000,000.
  query::JoinQuery q;
  for (const auto& r : rels) q.AddRelation(r.schema(), r.size());
  const query::EdgeCover cover = query::OptimalEdgeCover(q);
  EXPECT_EQ(cover.edges, (std::vector<query::EdgeId>{0, 1, 3, 5, 6}));

  CollectingSink sink;
  const AutoJoinReport report = JoinAuto(rels, sink.AsEmitFn());
  EXPECT_EQ(report.algorithm, "L7=NL(R1,R7, Alg4)");
  EXPECT_EQ(test::Sorted(std::move(sink.results())), ReferenceJoin(rels));
}

TEST(DispatchRoutesTest, FullyReducedL8AlwaysHasABalancedSplit) {
  // §6.3 says "an L8 can be reduced to smaller joins, so can be solved
  // optimally under all cases". Concretely: breaking the k=5 split needs
  // N1N3N5 < N2N4, which with N2 <= N1N3 (full reduction) forces
  // N4 > N5; breaking the k=3 split needs N4N6N8 < N5N7 <= N5N6N8,
  // forcing N4 < N5 — contradictory, so one of the two splits is always
  // balanced and Theorem 6 applies. The dispatcher must therefore route
  // every reduced L8 (even with an unbalanced L5 prefix) to Algorithm 2.
  extmem::Device dev(16, 4);
  std::vector<storage::Relation> rels;
  rels.push_back(workload::Matching(&dev, 0, 1, 32));
  rels.push_back(workload::CrossProduct(&dev, 1, 2, 32, 8));
  rels.push_back(workload::ManyToOne(&dev, 2, 3, 8, 4));
  rels.push_back(workload::CrossProduct(&dev, 3, 4, 4, 32));
  rels.push_back(workload::Matching(&dev, 4, 5, 32));
  rels.push_back(workload::Matching(&dev, 5, 6, 32));
  rels.push_back(workload::Matching(&dev, 6, 7, 32));
  rels.push_back(workload::Matching(&dev, 7, 8, 32));

  CollectingSink sink;
  const AutoJoinReport report = JoinAuto(rels, sink.AsEmitFn());
  EXPECT_EQ(test::Sorted(std::move(sink.results())), ReferenceJoin(rels));
  EXPECT_EQ(report.algorithm, "AcyclicJoin") << report.reason;
}

TEST(DispatchRoutesTest, BalancedL8UsesAlgorithm2) {
  extmem::Device dev(16, 4);
  // Alternating cross-product L8: all sizes equal, fully balanced.
  const auto rels = workload::CrossProductLine(
      &dev, {1, 8, 1, 8, 1, 8, 1, 8, 1});
  CollectingSink sink;
  const AutoJoinReport report = JoinAuto(rels, sink.AsEmitFn());
  EXPECT_EQ(report.algorithm, "AcyclicJoin");
  EXPECT_EQ(sink.results().size(),
            static_cast<std::size_t>(8 * 8 * 8 * 8));
}

TEST(DispatchRoutesTest, NineRelationLineFallsBackToAlgorithm2) {
  extmem::Device dev(8, 2);
  workload::RandomOptions opts;
  opts.seed = 500;
  opts.domain_size = 3;
  const auto rels = workload::RandomInstance(
      &dev, query::JoinQuery::Line(9), std::vector<TupleCount>(9, 8), opts);
  CollectingSink sink;
  const AutoJoinReport report = JoinAuto(rels, sink.AsEmitFn());
  EXPECT_EQ(test::Sorted(std::move(sink.results())), ReferenceJoin(rels));
  EXPECT_EQ(report.algorithm, "AcyclicJoin");
}

TEST(DispatchRoutesTest, TwoRelationQueriesSkipLineMachinery) {
  extmem::Device dev(8, 2);
  const auto r1 = test::MakeRel(&dev, {0, 1}, {{1, 2}, {3, 4}});
  const auto r2 = test::MakeRel(&dev, {1, 2}, {{2, 9}});
  CollectingSink sink;
  const AutoJoinReport report = JoinAuto({r1, r2}, sink.AsEmitFn());
  EXPECT_EQ(report.algorithm, "AcyclicJoin");
  EXPECT_EQ(sink.results().size(), 1u);
}

}  // namespace
}  // namespace emjoin::core
