// Tests for the live-telemetry layer (src/obs/): the ProgressTracker's
// phase-weighted percent and its guarantees (monotone, clamped,
// recovery-excluded, exactly 100 on completion), the FlightRecorder's
// lock-free ring (wrap-around, concurrent writers), the Telemetry
// routing fabric (serial, sharded, observer-only), the HTTP exporter's
// endpoints over a real loopback socket, and the S3 fault soak: under a
// seeded fault schedule, progress stays monotone and inside [0, 100]
// through every retry and lands at exactly 100 on success.
//
// All concurrency here goes through parallel::WorkerPool (the
// thread-discipline rule applies to tests too); pollers hand their
// samples back only after Wait(), so no extra locking is needed.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dispatch.h"
#include "core/emit.h"
#include "extmem/device.h"
#include "extmem/event_hook.h"
#include "extmem/fault_injector.h"
#include "gens/psi.h"
#include "obs/flight_recorder.h"
#include "obs/http_exporter.h"
#include "obs/progress.h"
#include "obs/telemetry.h"
#include "parallel/parallel_join.h"
#include "parallel/worker_pool.h"
#include "query/hypergraph.h"
#include "trace/tracer.h"
#include "workload/constructions.h"

namespace emjoin {
namespace {

using extmem::ObsEvent;
using extmem::ObsEventKind;

// ---------------------------------------------------------------------
// ProgressTracker
// ---------------------------------------------------------------------

TEST(ProgressTracker, PhaseWeightedPercentFollowsThePlan) {
  obs::ProgressTracker t;
  t.SetPlan({{"build", 100.0L}, {"join", 300.0L}});
  EXPECT_DOUBLE_EQ(t.Snapshot().percent, 0.0);
  EXPECT_DOUBLE_EQ(t.Snapshot().predicted_ios, 400.0);

  // Half of the build phase: 0.5 * (100/400) = 12.5%.
  t.OnPhaseBegin("build");
  t.OnBlocks(ObsEvent::kNoShard, 30, 20, false);
  EXPECT_NEAR(t.Snapshot().percent, 12.5, 0.02);
  EXPECT_EQ(t.Snapshot().phase, "build");

  // Ending the phase banks its full weight even though only 50 of the
  // predicted 100 blocks were charged (the model overestimated).
  t.OnPhaseEnd("build");
  EXPECT_NEAR(t.Snapshot().percent, 25.0, 0.02);
  EXPECT_EQ(t.Snapshot().phases_done, 1u);

  // Join runs over its prediction: the active-phase term saturates at
  // its full weight, so percent caps at 100 until MarkComplete.
  t.OnPhaseBegin("join");
  t.OnBlocks(ObsEvent::kNoShard, 500, 500, false);
  EXPECT_LE(t.Snapshot().percent, 100.0);
  EXPECT_GE(t.Snapshot().percent, 99.0);
  t.OnPhaseEnd("join");
  t.MarkComplete();
  EXPECT_DOUBLE_EQ(t.Snapshot().percent, 100.0);
  EXPECT_TRUE(t.Snapshot().complete);
}

TEST(ProgressTracker, InnerSpansWithOtherNamesDoNotAdvanceThePlan) {
  obs::ProgressTracker t;
  t.SetPlan({{"join", 100.0L}});
  t.OnPhaseBegin("join");
  // Operators open nested spans (sort, semijoin, sort.runs ...) inside
  // the planned phase; none of them may close it.
  t.OnPhaseBegin("sort");
  t.OnPhaseBegin("sort.runs");
  t.OnPhaseEnd("sort.runs");
  t.OnPhaseEnd("sort");
  EXPECT_EQ(t.Snapshot().phases_done, 0u);
  EXPECT_EQ(t.Snapshot().phase, "join");
  // A nested span reusing the phase's own name must not close it either.
  t.OnPhaseBegin("join");
  t.OnPhaseEnd("join");
  EXPECT_EQ(t.Snapshot().phases_done, 0u);
  t.OnPhaseEnd("join");
  EXPECT_EQ(t.Snapshot().phases_done, 1u);
}

TEST(ProgressTracker, RecoveryIoNeverAdvancesProgress) {
  obs::ProgressTracker t;
  t.SetPlan({{"join", 100.0L}});
  t.OnPhaseBegin("join");
  t.OnBlocks(ObsEvent::kNoShard, 10, 0, false);
  const double before = t.Snapshot().percent;
  // A storm of fault-overhead charges: tallied, excluded from percent.
  t.OnBlocks(ObsEvent::kNoShard, 500, 500, true);
  const obs::ProgressSnapshot s = t.Snapshot();
  EXPECT_DOUBLE_EQ(s.percent, before);
  EXPECT_EQ(s.recovery_ios, 1000u);
  EXPECT_EQ(s.done_ios, 10u);
  // Both flavors tick the I/O clock, though.
  EXPECT_EQ(t.Clock(), 1010u);
}

TEST(ProgressTracker, PercentIsMonotoneEvenWhenThePlanShrinks) {
  obs::ProgressTracker t;
  t.SetPlan({{"join", 10.0L}});
  t.OnPhaseBegin("join");
  t.OnBlocks(ObsEvent::kNoShard, 9, 0, false);
  const double high = t.Snapshot().percent;
  EXPECT_GE(high, 85.0);
  // Re-planning mid-run (say the model revises its estimate upward)
  // would naively drop percent to 9/1000; the monotone max holds it.
  t.SetPlan({{"join", 1000.0L}});
  EXPECT_GE(t.Snapshot().percent, high);
}

TEST(ProgressTracker, ShardChargesRollUpIntoTheQueryFigure) {
  obs::ProgressTracker t;
  t.SetPlan({{"join", 100.0L}});
  t.OnPhaseBegin("join");
  t.OnShardStart(0);
  t.OnShardStart(1);
  t.OnBlocks(0, 20, 0, false);
  t.OnBlocks(1, 0, 20, false);
  t.OnBlocks(1, 5, 0, true);  // shard-side recovery, excluded
  obs::ProgressSnapshot s = t.Snapshot();
  EXPECT_NEAR(s.percent, 40.0, 0.02);
  ASSERT_EQ(s.shards.size(), 2u);
  EXPECT_EQ(s.shards[0].ios, 20u);
  EXPECT_EQ(s.shards[0].state, 1);
  EXPECT_EQ(s.shards[1].ios, 20u);
  EXPECT_EQ(s.shards[1].recovery_ios, 5u);
  t.OnShardFinish(0, true);
  t.OnShardFinish(1, false);
  s = t.Snapshot();
  EXPECT_EQ(s.shards[0].state, 2);
  EXPECT_EQ(s.shards[1].state, 3);
}

TEST(ProgressTracker, MarkCompletePinsExactlyOneHundred) {
  obs::ProgressTracker t;
  t.SetPlan({{"join", 1000000.0L}});
  t.OnPhaseBegin("join");
  t.OnBlocks(ObsEvent::kNoShard, 1, 0, false);
  EXPECT_LT(t.Snapshot().percent, 1.0);
  t.MarkComplete();
  const obs::ProgressSnapshot s = t.Snapshot();
  EXPECT_DOUBLE_EQ(s.percent, 100.0);
  EXPECT_TRUE(s.complete);
  EXPECT_DOUBLE_EQ(s.eta_ios, 0.0);
}

TEST(ProgressTracker, EmptyPlanReportsZeroUntilComplete) {
  obs::ProgressTracker t;
  t.OnBlocks(ObsEvent::kNoShard, 50, 50, false);
  EXPECT_DOUBLE_EQ(t.Snapshot().percent, 0.0);
  t.MarkComplete();
  EXPECT_DOUBLE_EQ(t.Snapshot().percent, 100.0);
}

// ---------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------

ObsEvent Event(ObsEventKind kind, const char* name, std::uint64_t a = 0) {
  ObsEvent e;
  e.kind = kind;
  e.name = name;
  e.a = a;
  return e;
}

TEST(FlightRecorder, KeepsTheNewestEventsAcrossWrapAround) {
  obs::FlightRecorder rec(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    rec.Record(Event(ObsEventKind::kWatermark, "w", i), /*clock=*/i);
  }
  EXPECT_EQ(rec.recorded(), 20u);
  const std::vector<obs::RecordedEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest first, and exactly the last 8 (seq 12..19).
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_EQ(events[i].event.a, 12 + i);
    EXPECT_EQ(events[i].clock, 12 + i);
  }
}

TEST(FlightRecorder, JsonlCarriesKindNameAndShard) {
  obs::FlightRecorder rec(16);
  rec.Record(Event(ObsEventKind::kPhaseBegin, "join"), 0);
  ObsEvent fault = Event(ObsEventKind::kReadFault, "read", 3);
  fault.shard = 2;
  rec.Record(fault, 41);
  const std::string jsonl = rec.ToJsonl();
  EXPECT_NE(jsonl.find("\"kind\": \"phase_begin\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\": \"join\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\": \"read_fault\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"shard\": 2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"clock\": 41"), std::string::npos);
  // The orchestrator's kNoShard events carry no shard key at all.
  EXPECT_EQ(jsonl.find("\"shard\": 4294967295"), std::string::npos);
}

TEST(FlightRecorder, KindNamesAreStableAndExhaustive) {
  EXPECT_STREQ(obs::FlightRecorder::KindName(ObsEventKind::kPhaseBegin),
               "phase_begin");
  EXPECT_STREQ(obs::FlightRecorder::KindName(ObsEventKind::kRetryExhausted),
               "retry_exhausted");
  EXPECT_STREQ(obs::FlightRecorder::KindName(ObsEventKind::kBudgetShrink),
               "budget_shrink");
  EXPECT_STREQ(obs::FlightRecorder::KindName(ObsEventKind::kQueryComplete),
               "query_complete");
}

TEST(FlightRecorder, ConcurrentWritersNeverTearASnapshot) {
  obs::FlightRecorder rec(64);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 5000;
  {
    parallel::WorkerPool pool(kWriters + 1);
    std::atomic<bool> stop{false};
    for (int w = 0; w < kWriters; ++w) {
      pool.Submit([&rec, w] {
        for (std::uint64_t i = 0; i < kPerWriter; ++i) {
          rec.Record(Event(ObsEventKind::kWatermark, "w",
                           static_cast<std::uint64_t>(w) * kPerWriter + i),
                     i);
        }
      });
    }
    // A concurrent reader: every snapshot it takes mid-storm must be
    // internally consistent (monotone seqs, valid kinds).
    pool.Submit([&rec, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::vector<obs::RecordedEvent> snap = rec.Snapshot();
        std::uint64_t prev_seq = 0;
        bool first = true;
        for (const obs::RecordedEvent& e : snap) {
          if (!first) {
            if (e.seq <= prev_seq) {
              ADD_FAILURE() << "non-monotone seq in snapshot";
              return;
            }
          }
          prev_seq = e.seq;
          first = false;
          if (e.event.kind != ObsEventKind::kWatermark) {
            ADD_FAILURE() << "torn kind in snapshot";
            return;
          }
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
    // WorkerPool has no per-task join; writers finish when recorded()
    // says so, then the reader is released.
    while (rec.recorded() < kWriters * kPerWriter) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    stop.store(true, std::memory_order_release);
    pool.Wait();
  }
  EXPECT_EQ(rec.recorded(), kWriters * kPerWriter);
  EXPECT_EQ(rec.Snapshot().size(), 64u);
}

// ---------------------------------------------------------------------
// Telemetry end-to-end: serial and sharded joins
// ---------------------------------------------------------------------

// Runs a line-3 worst-case join with telemetry attached and returns the
// telemetry for inspection.
struct TelemetryRun {
  std::uint64_t results = 0;
  extmem::IoStats stats;
};

TelemetryRun RunLine3WithTelemetry(obs::Telemetry* telemetry, TupleCount n,
                                   TupleCount memory, TupleCount block) {
  extmem::Device dev(memory, block);
  if (telemetry != nullptr) dev.set_events(telemetry);
  std::vector<storage::Relation> rels;
  {
    trace::Span build(&dev, "build");
    rels = workload::L3WorstCase(&dev, n, 1, n);
  }
  core::CountingSink sink;
  {
    trace::Span join(&dev, "join");
    core::JoinAuto(rels, sink.AsEmitFn());
  }
  TelemetryRun out;
  out.results = sink.count();
  out.stats = dev.stats();
  return out;
}

TEST(Telemetry, SerialLine3ProgressReachesExactlyOneHundred) {
  obs::Telemetry telemetry;
  const query::JoinQuery q = query::JoinQuery::Line(3, {512, 1, 512});
  const long double bound =
      gens::PredictBoundWorstCase(q, 2048, 32).bound;
  telemetry.tracker().SetPlan({{"build", 70.0L}, {"join", bound}});

  const TelemetryRun run = RunLine3WithTelemetry(&telemetry, 512, 2048, 32);
  EXPECT_EQ(run.results, 512u * 512u);
  // Both planned phases have closed, so percent may already read 100 —
  // but `complete` is the success path's word alone.
  EXPECT_LE(telemetry.tracker().Snapshot().percent, 100.0);
  EXPECT_FALSE(telemetry.tracker().complete());
  telemetry.MarkComplete();
  const obs::ProgressSnapshot s = telemetry.tracker().Snapshot();
  EXPECT_DOUBLE_EQ(s.percent, 100.0);
  EXPECT_TRUE(s.complete);
  // Every charged block reached the clock; none was recovery.
  EXPECT_EQ(telemetry.tracker().Clock(),
            run.stats.block_reads + run.stats.block_writes);
  EXPECT_EQ(s.recovery_ios, 0u);
  // The planned phases were walked in order.
  EXPECT_EQ(s.phases_done, 2u);
  // And the recorder saw the query_complete epilogue.
  const std::vector<obs::RecordedEvent> events =
      telemetry.recorder().Snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().event.kind, ObsEventKind::kQueryComplete);
}

TEST(Telemetry, StarJoinWalksItsPlannedPhases) {
  obs::Telemetry telemetry;
  telemetry.tracker().SetPlan({{"build", 30.0L}, {"join", 500.0L}});
  extmem::Device dev(1024, 16);
  dev.set_events(&telemetry);
  std::vector<storage::Relation> rels;
  {
    trace::Span build(&dev, "build");
    rels = workload::StarWorstCase(&dev, {64, 64, 64});
  }
  core::CountingSink sink;
  {
    trace::Span join(&dev, "join");
    core::JoinAuto(rels, sink.AsEmitFn());
  }
  telemetry.MarkComplete();
  EXPECT_EQ(sink.count(), 64u * 64u * 64u);
  EXPECT_DOUBLE_EQ(telemetry.tracker().Snapshot().percent, 100.0);
  EXPECT_EQ(telemetry.tracker().Snapshot().phases_done, 2u);
}

TEST(Telemetry, ShardedJoinFeedsOneTrackerFromAllShards) {
  obs::Telemetry telemetry;
  telemetry.tracker().SetPlan({{"join", 400.0L}});
  extmem::Device dev(4096, 32);
  dev.set_events(&telemetry);
  const std::vector<storage::Relation> rels =
      workload::L3WorstCase(&dev, 512, 1, 512);

  core::CountingSink sink;
  parallel::ParallelOptions options;
  options.shards = 4;
  options.workers = 2;
  {
    trace::Span join(&dev, "join");
    const auto result =
        parallel::TryParallelJoinAuto(rels, sink.AsEmitFn(), options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  telemetry.MarkComplete();

  EXPECT_EQ(sink.count(), 512u * 512u);
  const obs::ProgressSnapshot s = telemetry.tracker().Snapshot();
  EXPECT_DOUBLE_EQ(s.percent, 100.0);
  // All four shards started, charged I/O, and finished cleanly.
  ASSERT_EQ(s.shards.size(), 4u);
  for (const obs::ShardProgress& sp : s.shards) {
    EXPECT_EQ(sp.state, 2) << "shard " << sp.shard;
    EXPECT_GT(sp.ios, 0u) << "shard " << sp.shard;
  }
  // The recorder holds the full lifecycle: 4 starts, 4 clean finishes,
  // 4 peak-residency watermarks from the merge barrier.
  int starts = 0, finishes = 0, watermarks = 0;
  for (const obs::RecordedEvent& e : telemetry.recorder().Snapshot()) {
    if (e.event.kind == ObsEventKind::kShardStart) ++starts;
    if (e.event.kind == ObsEventKind::kShardFinish) {
      ++finishes;
      EXPECT_EQ(e.event.a, 1u);
      EXPECT_LT(e.event.shard, 4u);
    }
    if (e.event.kind == ObsEventKind::kWatermark) ++watermarks;
  }
  EXPECT_EQ(starts, 4);
  EXPECT_EQ(finishes, 4);
  EXPECT_EQ(watermarks, 4);
}

// The observer-only contract, sharded flavor: attaching telemetry to a
// sharded run changes neither the result count nor any charge profile,
// at every worker count (scheduling must not leak into the cost model).
TEST(Telemetry, ObserverOnlyUnderShardingAtEveryWorkerCount) {
  const auto run = [](obs::Telemetry* telemetry, std::uint32_t workers) {
    extmem::Device dev(4096, 32);
    if (telemetry != nullptr) dev.set_events(telemetry);
    const std::vector<storage::Relation> rels =
        workload::L3WorstCase(&dev, 256, 1, 256);
    core::CountingSink sink;
    parallel::ParallelOptions options;
    options.shards = 4;
    options.workers = workers;
    const auto result =
        parallel::TryParallelJoinAuto(rels, sink.AsEmitFn(), options);
    EXPECT_TRUE(result.ok());
    struct { std::uint64_t results, sum_ios, max_ios, partition_reads; } out{
        sink.count(), result->sum_shard_ios, result->max_shard_ios,
        result->partition_io.block_reads};
    return out;
  };
  const auto baseline = run(nullptr, 1);
  for (const std::uint32_t workers : {1u, 2u, 8u}) {
    obs::Telemetry telemetry;
    const auto observed = run(&telemetry, workers);
    EXPECT_EQ(observed.results, baseline.results) << "W=" << workers;
    EXPECT_EQ(observed.sum_ios, baseline.sum_ios) << "W=" << workers;
    EXPECT_EQ(observed.max_ios, baseline.max_ios) << "W=" << workers;
    EXPECT_EQ(observed.partition_reads, baseline.partition_reads)
        << "W=" << workers;
    // And the telemetry actually observed that exact work.
    EXPECT_GT(telemetry.tracker().Clock(), 0u);
  }
}

// ---------------------------------------------------------------------
// S3: progress under fault injection
// ---------------------------------------------------------------------

// Seeded soak: sharded joins with injected read faults and bounded
// retries, a concurrent WorkerPool poller sampling percent the whole
// time. The guarantees under test: every sampled sequence is monotone
// non-decreasing, never exceeds 100 mid-run, and a successful run ends
// pinned at exactly 100 with recovery I/O tallied separately.
TEST(ProgressFaultSoak, MonotoneClampedAndExactlyHundredOnSuccess) {
  std::uint64_t successes = 0;
  std::uint64_t total_recovery = 0;
  for (const std::uint64_t seed : {3ull, 7ull, 11ull, 19ull, 29ull}) {
    obs::Telemetry telemetry;
    const query::JoinQuery q = query::JoinQuery::Line(3, {256, 1, 256});
    telemetry.tracker().SetPlan(
        {{"join", gens::PredictBoundWorstCase(q, 4096, 32).bound}});
    extmem::Device dev(4096, 32);
    dev.set_events(&telemetry);
    const std::vector<storage::Relation> rels =
        workload::L3WorstCase(&dev, 256, 1, 256);

    std::vector<double> samples;
    std::atomic<bool> stop{false};
    bool ok = false;
    {
      parallel::WorkerPool poller(1);
      poller.Submit([&telemetry, &samples, &stop] {
        while (!stop.load(std::memory_order_acquire)) {
          samples.push_back(telemetry.tracker().Snapshot().percent);
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        samples.push_back(telemetry.tracker().Snapshot().percent);
      });

      core::CountingSink sink;
      parallel::ParallelOptions options;
      options.shards = 2;
      options.workers = 2;
      options.faults = true;
      options.fault_config.seed = seed;
      options.fault_config.read_fail = 0.05;
      options.fault_config.retry.max_retries = 10;
      {
        trace::Span join(&dev, "join");
        const auto result =
            parallel::TryParallelJoinAuto(rels, sink.AsEmitFn(), options);
        ok = result.ok();
      }
      if (ok) {
        telemetry.MarkComplete();
        EXPECT_EQ(sink.count(), 256u * 256u);
      }
      stop.store(true, std::memory_order_release);
      poller.Wait();
    }

    // The sampled sequence is monotone and clamped, fault storm or not.
    ASSERT_FALSE(samples.empty());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      EXPECT_LE(samples[i], 100.0) << "seed " << seed << " sample " << i;
      EXPECT_GE(samples[i], 0.0) << "seed " << seed << " sample " << i;
      if (i > 0) {
        EXPECT_GE(samples[i], samples[i - 1])
            << "seed " << seed << " sample " << i;
      }
    }
    const obs::ProgressSnapshot s = telemetry.tracker().Snapshot();
    total_recovery += s.recovery_ios;
    if (ok) {
      ++successes;
      EXPECT_DOUBLE_EQ(s.percent, 100.0) << "seed " << seed;
      EXPECT_TRUE(s.complete) << "seed " << seed;
    }
  }
  // The soak must actually exercise the fault path and the success arm,
  // or the guarantees above are vacuously true.
  EXPECT_GT(successes, 0u);
  EXPECT_GT(total_recovery, 0u);
}

// A run that dies on retry exhaustion leaves a post-mortem trail: the
// flight recorder holds the faults and the terminal retry_exhausted,
// and progress stays short of 100 (no MarkComplete on the error path).
TEST(ProgressFaultSoak, ExhaustionLeavesAPostMortemTrail) {
  obs::Telemetry telemetry;
  telemetry.tracker().SetPlan({{"join", 200.0L}});
  extmem::Device dev(1024, 16);
  dev.set_events(&telemetry);
  const std::vector<storage::Relation> rels =
      workload::L3WorstCase(&dev, 128, 1, 128);

  core::CountingSink sink;
  parallel::ParallelOptions options;
  options.shards = 2;
  options.workers = 1;
  options.faults = true;
  options.fault_config.seed = 1;
  options.fault_config.read_fail = 1.0;  // every read fails
  options.fault_config.retry.max_retries = 2;
  const auto result =
      parallel::TryParallelJoinAuto(rels, sink.AsEmitFn(), options);
  ASSERT_FALSE(result.ok());

  EXPECT_LT(telemetry.tracker().Snapshot().percent, 100.0);
  EXPECT_FALSE(telemetry.tracker().complete());
  bool saw_fault = false, saw_exhausted = false, saw_failed_shard = false;
  for (const obs::RecordedEvent& e : telemetry.recorder().Snapshot()) {
    if (e.event.kind == ObsEventKind::kReadFault) saw_fault = true;
    if (e.event.kind == ObsEventKind::kRetryExhausted) saw_exhausted = true;
    if (e.event.kind == ObsEventKind::kShardFinish && e.event.a == 0) {
      saw_failed_shard = true;
    }
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_exhausted);
  EXPECT_TRUE(saw_failed_shard);
}

// ---------------------------------------------------------------------
// HttpExporter over a real loopback socket
// ---------------------------------------------------------------------

// Minimal HTTP/1.0 GET: connect, send, read to EOF. Returns the whole
// response (status line + headers + body), empty on any socket error.
std::string HttpGet(std::uint16_t port, const std::string& path) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t k = send(fd, request.data() + sent, request.size() - sent,
                           0);
    if (k <= 0) {
      close(fd);
      return "";
    }
    sent += static_cast<std::size_t>(k);
  }
  std::string response;
  char buf[4096];
  ssize_t got = 0;
  while ((got = recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(got));
  }
  close(fd);
  return response;
}

TEST(HttpExporter, ServesAllFourEndpointsAndRejectsTheRest) {
  obs::Telemetry telemetry;
  telemetry.tracker().SetPlan({{"join", 100.0L}});
  telemetry.tracker().OnPhaseBegin("join");
  telemetry.tracker().OnBlocks(ObsEvent::kNoShard, 25, 25, false);
  telemetry.recorder().Record(
      Event(ObsEventKind::kPhaseBegin, "join"), /*clock=*/0);

  obs::HttpExporter exporter(&telemetry);
  ASSERT_TRUE(exporter.Start(0).ok());
  ASSERT_TRUE(exporter.running());
  const std::uint16_t port = exporter.port();
  ASSERT_GT(port, 0);
  exporter.PublishMetrics(
      "# TYPE emjoin_requests_total counter\nemjoin_requests_total 1\n");

  const std::string health = HttpGet(port, "/healthz");
  EXPECT_NE(health.find("200"), std::string::npos) << health;
  EXPECT_NE(health.find("ok"), std::string::npos) << health;

  const std::string metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.find("200"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("emjoin_requests_total 1"), std::string::npos)
      << metrics;

  const std::string progress = HttpGet(port, "/progress");
  EXPECT_NE(progress.find("200"), std::string::npos) << progress;
  EXPECT_NE(progress.find("\"percent\": 50.0"), std::string::npos)
      << progress;
  EXPECT_NE(progress.find("\"complete\": false"), std::string::npos)
      << progress;

  const std::string events = HttpGet(port, "/events");
  EXPECT_NE(events.find("200"), std::string::npos) << events;
  EXPECT_NE(events.find("phase_begin"), std::string::npos) << events;

  const std::string missing = HttpGet(port, "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;

  EXPECT_GE(exporter.requests(), 5u);
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  // Stop is idempotent; a second call is a no-op.
  exporter.Stop();
}

TEST(HttpExporter, RestartAfterStopBindsAFreshPort) {
  obs::Telemetry telemetry;
  obs::HttpExporter exporter(&telemetry);
  ASSERT_TRUE(exporter.Start(0).ok());
  EXPECT_FALSE(exporter.Start(0).ok());  // already running
  exporter.Stop();
  ASSERT_TRUE(exporter.Start(0).ok());
  EXPECT_NE(HttpGet(exporter.port(), "/healthz").find("ok"),
            std::string::npos);
}

}  // namespace
}  // namespace emjoin
