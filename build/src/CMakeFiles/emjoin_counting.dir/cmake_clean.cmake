file(REMOVE_RECURSE
  "CMakeFiles/emjoin_counting.dir/counting/cardinality.cc.o"
  "CMakeFiles/emjoin_counting.dir/counting/cardinality.cc.o.d"
  "libemjoin_counting.a"
  "libemjoin_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emjoin_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
