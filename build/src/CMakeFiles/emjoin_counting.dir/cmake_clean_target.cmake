file(REMOVE_RECURSE
  "libemjoin_counting.a"
)
