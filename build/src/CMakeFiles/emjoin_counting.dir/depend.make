# Empty dependencies file for emjoin_counting.
# This may be replaced when dependencies are built.
