file(REMOVE_RECURSE
  "CMakeFiles/emjoin_workload.dir/workload/constructions.cc.o"
  "CMakeFiles/emjoin_workload.dir/workload/constructions.cc.o.d"
  "CMakeFiles/emjoin_workload.dir/workload/random_instance.cc.o"
  "CMakeFiles/emjoin_workload.dir/workload/random_instance.cc.o.d"
  "libemjoin_workload.a"
  "libemjoin_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emjoin_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
