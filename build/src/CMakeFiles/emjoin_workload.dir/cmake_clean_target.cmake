file(REMOVE_RECURSE
  "libemjoin_workload.a"
)
