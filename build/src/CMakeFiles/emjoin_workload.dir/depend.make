# Empty dependencies file for emjoin_workload.
# This may be replaced when dependencies are built.
