file(REMOVE_RECURSE
  "libemjoin_storage.a"
)
