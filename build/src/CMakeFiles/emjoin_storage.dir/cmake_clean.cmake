file(REMOVE_RECURSE
  "CMakeFiles/emjoin_storage.dir/storage/csv.cc.o"
  "CMakeFiles/emjoin_storage.dir/storage/csv.cc.o.d"
  "CMakeFiles/emjoin_storage.dir/storage/relation.cc.o"
  "CMakeFiles/emjoin_storage.dir/storage/relation.cc.o.d"
  "CMakeFiles/emjoin_storage.dir/storage/schema.cc.o"
  "CMakeFiles/emjoin_storage.dir/storage/schema.cc.o.d"
  "CMakeFiles/emjoin_storage.dir/storage/tuple.cc.o"
  "CMakeFiles/emjoin_storage.dir/storage/tuple.cc.o.d"
  "libemjoin_storage.a"
  "libemjoin_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emjoin_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
