# Empty compiler generated dependencies file for emjoin_storage.
# This may be replaced when dependencies are built.
