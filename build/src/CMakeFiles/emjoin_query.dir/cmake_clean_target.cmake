file(REMOVE_RECURSE
  "libemjoin_query.a"
)
