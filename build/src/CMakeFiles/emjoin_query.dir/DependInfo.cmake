
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/classify.cc" "src/CMakeFiles/emjoin_query.dir/query/classify.cc.o" "gcc" "src/CMakeFiles/emjoin_query.dir/query/classify.cc.o.d"
  "/root/repo/src/query/edge_cover.cc" "src/CMakeFiles/emjoin_query.dir/query/edge_cover.cc.o" "gcc" "src/CMakeFiles/emjoin_query.dir/query/edge_cover.cc.o.d"
  "/root/repo/src/query/hypergraph.cc" "src/CMakeFiles/emjoin_query.dir/query/hypergraph.cc.o" "gcc" "src/CMakeFiles/emjoin_query.dir/query/hypergraph.cc.o.d"
  "/root/repo/src/query/join_tree.cc" "src/CMakeFiles/emjoin_query.dir/query/join_tree.cc.o" "gcc" "src/CMakeFiles/emjoin_query.dir/query/join_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/emjoin_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emjoin_extmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
