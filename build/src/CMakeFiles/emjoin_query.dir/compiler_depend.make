# Empty compiler generated dependencies file for emjoin_query.
# This may be replaced when dependencies are built.
