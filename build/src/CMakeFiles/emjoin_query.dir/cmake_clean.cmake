file(REMOVE_RECURSE
  "CMakeFiles/emjoin_query.dir/query/classify.cc.o"
  "CMakeFiles/emjoin_query.dir/query/classify.cc.o.d"
  "CMakeFiles/emjoin_query.dir/query/edge_cover.cc.o"
  "CMakeFiles/emjoin_query.dir/query/edge_cover.cc.o.d"
  "CMakeFiles/emjoin_query.dir/query/hypergraph.cc.o"
  "CMakeFiles/emjoin_query.dir/query/hypergraph.cc.o.d"
  "CMakeFiles/emjoin_query.dir/query/join_tree.cc.o"
  "CMakeFiles/emjoin_query.dir/query/join_tree.cc.o.d"
  "libemjoin_query.a"
  "libemjoin_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emjoin_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
