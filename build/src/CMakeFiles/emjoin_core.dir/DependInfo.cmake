
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/acyclic_join.cc" "src/CMakeFiles/emjoin_core.dir/core/acyclic_join.cc.o" "gcc" "src/CMakeFiles/emjoin_core.dir/core/acyclic_join.cc.o.d"
  "/root/repo/src/core/dispatch.cc" "src/CMakeFiles/emjoin_core.dir/core/dispatch.cc.o" "gcc" "src/CMakeFiles/emjoin_core.dir/core/dispatch.cc.o.d"
  "/root/repo/src/core/emit.cc" "src/CMakeFiles/emjoin_core.dir/core/emit.cc.o" "gcc" "src/CMakeFiles/emjoin_core.dir/core/emit.cc.o.d"
  "/root/repo/src/core/exhaustive.cc" "src/CMakeFiles/emjoin_core.dir/core/exhaustive.cc.o" "gcc" "src/CMakeFiles/emjoin_core.dir/core/exhaustive.cc.o.d"
  "/root/repo/src/core/line3.cc" "src/CMakeFiles/emjoin_core.dir/core/line3.cc.o" "gcc" "src/CMakeFiles/emjoin_core.dir/core/line3.cc.o.d"
  "/root/repo/src/core/lw.cc" "src/CMakeFiles/emjoin_core.dir/core/lw.cc.o" "gcc" "src/CMakeFiles/emjoin_core.dir/core/lw.cc.o.d"
  "/root/repo/src/core/pairwise.cc" "src/CMakeFiles/emjoin_core.dir/core/pairwise.cc.o" "gcc" "src/CMakeFiles/emjoin_core.dir/core/pairwise.cc.o.d"
  "/root/repo/src/core/reduce.cc" "src/CMakeFiles/emjoin_core.dir/core/reduce.cc.o" "gcc" "src/CMakeFiles/emjoin_core.dir/core/reduce.cc.o.d"
  "/root/repo/src/core/reference.cc" "src/CMakeFiles/emjoin_core.dir/core/reference.cc.o" "gcc" "src/CMakeFiles/emjoin_core.dir/core/reference.cc.o.d"
  "/root/repo/src/core/triangle.cc" "src/CMakeFiles/emjoin_core.dir/core/triangle.cc.o" "gcc" "src/CMakeFiles/emjoin_core.dir/core/triangle.cc.o.d"
  "/root/repo/src/core/unbalanced5.cc" "src/CMakeFiles/emjoin_core.dir/core/unbalanced5.cc.o" "gcc" "src/CMakeFiles/emjoin_core.dir/core/unbalanced5.cc.o.d"
  "/root/repo/src/core/unbalanced7.cc" "src/CMakeFiles/emjoin_core.dir/core/unbalanced7.cc.o" "gcc" "src/CMakeFiles/emjoin_core.dir/core/unbalanced7.cc.o.d"
  "/root/repo/src/core/yannakakis.cc" "src/CMakeFiles/emjoin_core.dir/core/yannakakis.cc.o" "gcc" "src/CMakeFiles/emjoin_core.dir/core/yannakakis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/emjoin_gens.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emjoin_counting.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emjoin_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emjoin_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emjoin_extmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
