file(REMOVE_RECURSE
  "libemjoin_core.a"
)
