file(REMOVE_RECURSE
  "CMakeFiles/emjoin_core.dir/core/acyclic_join.cc.o"
  "CMakeFiles/emjoin_core.dir/core/acyclic_join.cc.o.d"
  "CMakeFiles/emjoin_core.dir/core/dispatch.cc.o"
  "CMakeFiles/emjoin_core.dir/core/dispatch.cc.o.d"
  "CMakeFiles/emjoin_core.dir/core/emit.cc.o"
  "CMakeFiles/emjoin_core.dir/core/emit.cc.o.d"
  "CMakeFiles/emjoin_core.dir/core/exhaustive.cc.o"
  "CMakeFiles/emjoin_core.dir/core/exhaustive.cc.o.d"
  "CMakeFiles/emjoin_core.dir/core/line3.cc.o"
  "CMakeFiles/emjoin_core.dir/core/line3.cc.o.d"
  "CMakeFiles/emjoin_core.dir/core/lw.cc.o"
  "CMakeFiles/emjoin_core.dir/core/lw.cc.o.d"
  "CMakeFiles/emjoin_core.dir/core/pairwise.cc.o"
  "CMakeFiles/emjoin_core.dir/core/pairwise.cc.o.d"
  "CMakeFiles/emjoin_core.dir/core/reduce.cc.o"
  "CMakeFiles/emjoin_core.dir/core/reduce.cc.o.d"
  "CMakeFiles/emjoin_core.dir/core/reference.cc.o"
  "CMakeFiles/emjoin_core.dir/core/reference.cc.o.d"
  "CMakeFiles/emjoin_core.dir/core/triangle.cc.o"
  "CMakeFiles/emjoin_core.dir/core/triangle.cc.o.d"
  "CMakeFiles/emjoin_core.dir/core/unbalanced5.cc.o"
  "CMakeFiles/emjoin_core.dir/core/unbalanced5.cc.o.d"
  "CMakeFiles/emjoin_core.dir/core/unbalanced7.cc.o"
  "CMakeFiles/emjoin_core.dir/core/unbalanced7.cc.o.d"
  "CMakeFiles/emjoin_core.dir/core/yannakakis.cc.o"
  "CMakeFiles/emjoin_core.dir/core/yannakakis.cc.o.d"
  "libemjoin_core.a"
  "libemjoin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emjoin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
