# Empty dependencies file for emjoin_core.
# This may be replaced when dependencies are built.
