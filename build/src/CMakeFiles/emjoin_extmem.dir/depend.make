# Empty dependencies file for emjoin_extmem.
# This may be replaced when dependencies are built.
