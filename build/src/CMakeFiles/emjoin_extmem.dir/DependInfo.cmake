
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extmem/device.cc" "src/CMakeFiles/emjoin_extmem.dir/extmem/device.cc.o" "gcc" "src/CMakeFiles/emjoin_extmem.dir/extmem/device.cc.o.d"
  "/root/repo/src/extmem/file.cc" "src/CMakeFiles/emjoin_extmem.dir/extmem/file.cc.o" "gcc" "src/CMakeFiles/emjoin_extmem.dir/extmem/file.cc.o.d"
  "/root/repo/src/extmem/io_stats.cc" "src/CMakeFiles/emjoin_extmem.dir/extmem/io_stats.cc.o" "gcc" "src/CMakeFiles/emjoin_extmem.dir/extmem/io_stats.cc.o.d"
  "/root/repo/src/extmem/memory_gauge.cc" "src/CMakeFiles/emjoin_extmem.dir/extmem/memory_gauge.cc.o" "gcc" "src/CMakeFiles/emjoin_extmem.dir/extmem/memory_gauge.cc.o.d"
  "/root/repo/src/extmem/sorter.cc" "src/CMakeFiles/emjoin_extmem.dir/extmem/sorter.cc.o" "gcc" "src/CMakeFiles/emjoin_extmem.dir/extmem/sorter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
