file(REMOVE_RECURSE
  "CMakeFiles/emjoin_extmem.dir/extmem/device.cc.o"
  "CMakeFiles/emjoin_extmem.dir/extmem/device.cc.o.d"
  "CMakeFiles/emjoin_extmem.dir/extmem/file.cc.o"
  "CMakeFiles/emjoin_extmem.dir/extmem/file.cc.o.d"
  "CMakeFiles/emjoin_extmem.dir/extmem/io_stats.cc.o"
  "CMakeFiles/emjoin_extmem.dir/extmem/io_stats.cc.o.d"
  "CMakeFiles/emjoin_extmem.dir/extmem/memory_gauge.cc.o"
  "CMakeFiles/emjoin_extmem.dir/extmem/memory_gauge.cc.o.d"
  "CMakeFiles/emjoin_extmem.dir/extmem/sorter.cc.o"
  "CMakeFiles/emjoin_extmem.dir/extmem/sorter.cc.o.d"
  "libemjoin_extmem.a"
  "libemjoin_extmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emjoin_extmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
