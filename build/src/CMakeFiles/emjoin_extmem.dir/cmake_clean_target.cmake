file(REMOVE_RECURSE
  "libemjoin_extmem.a"
)
