# Empty compiler generated dependencies file for emjoin_gens.
# This may be replaced when dependencies are built.
