
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gens/gens.cc" "src/CMakeFiles/emjoin_gens.dir/gens/gens.cc.o" "gcc" "src/CMakeFiles/emjoin_gens.dir/gens/gens.cc.o.d"
  "/root/repo/src/gens/lp.cc" "src/CMakeFiles/emjoin_gens.dir/gens/lp.cc.o" "gcc" "src/CMakeFiles/emjoin_gens.dir/gens/lp.cc.o.d"
  "/root/repo/src/gens/planner.cc" "src/CMakeFiles/emjoin_gens.dir/gens/planner.cc.o" "gcc" "src/CMakeFiles/emjoin_gens.dir/gens/planner.cc.o.d"
  "/root/repo/src/gens/psi.cc" "src/CMakeFiles/emjoin_gens.dir/gens/psi.cc.o" "gcc" "src/CMakeFiles/emjoin_gens.dir/gens/psi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/emjoin_counting.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emjoin_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emjoin_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/emjoin_extmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
