file(REMOVE_RECURSE
  "CMakeFiles/emjoin_gens.dir/gens/gens.cc.o"
  "CMakeFiles/emjoin_gens.dir/gens/gens.cc.o.d"
  "CMakeFiles/emjoin_gens.dir/gens/lp.cc.o"
  "CMakeFiles/emjoin_gens.dir/gens/lp.cc.o.d"
  "CMakeFiles/emjoin_gens.dir/gens/planner.cc.o"
  "CMakeFiles/emjoin_gens.dir/gens/planner.cc.o.d"
  "CMakeFiles/emjoin_gens.dir/gens/psi.cc.o"
  "CMakeFiles/emjoin_gens.dir/gens/psi.cc.o.d"
  "libemjoin_gens.a"
  "libemjoin_gens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emjoin_gens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
