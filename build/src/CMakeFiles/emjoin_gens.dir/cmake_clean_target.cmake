file(REMOVE_RECURSE
  "libemjoin_gens.a"
)
