file(REMOVE_RECURSE
  "CMakeFiles/emjoin_cli.dir/emjoin_cli.cc.o"
  "CMakeFiles/emjoin_cli.dir/emjoin_cli.cc.o.d"
  "emjoin_cli"
  "emjoin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emjoin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
