# Empty compiler generated dependencies file for emjoin_cli.
# This may be replaced when dependencies are built.
