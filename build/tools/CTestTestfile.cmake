# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(emjoin_cli_demo "/root/repo/build/tools/emjoin_cli" "demo")
set_tests_properties(emjoin_cli_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(emjoin_cli_plan "/root/repo/build/tools/emjoin_cli" "plan" "a,b:1000" "b,c:1000" "c,d:1000")
set_tests_properties(emjoin_cli_plan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
