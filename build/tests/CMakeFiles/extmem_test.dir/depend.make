# Empty dependencies file for extmem_test.
# This may be replaced when dependencies are built.
