file(REMOVE_RECURSE
  "CMakeFiles/extmem_test.dir/extmem_test.cc.o"
  "CMakeFiles/extmem_test.dir/extmem_test.cc.o.d"
  "extmem_test"
  "extmem_test.pdb"
  "extmem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extmem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
