file(REMOVE_RECURSE
  "CMakeFiles/lw_test.dir/lw_test.cc.o"
  "CMakeFiles/lw_test.dir/lw_test.cc.o.d"
  "lw_test"
  "lw_test.pdb"
  "lw_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
