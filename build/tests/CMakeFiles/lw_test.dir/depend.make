# Empty dependencies file for lw_test.
# This may be replaced when dependencies are built.
