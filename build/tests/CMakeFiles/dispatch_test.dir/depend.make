# Empty dependencies file for dispatch_test.
# This may be replaced when dependencies are built.
