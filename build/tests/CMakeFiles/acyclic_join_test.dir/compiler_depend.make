# Empty compiler generated dependencies file for acyclic_join_test.
# This may be replaced when dependencies are built.
