file(REMOVE_RECURSE
  "CMakeFiles/acyclic_join_test.dir/acyclic_join_test.cc.o"
  "CMakeFiles/acyclic_join_test.dir/acyclic_join_test.cc.o.d"
  "acyclic_join_test"
  "acyclic_join_test.pdb"
  "acyclic_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acyclic_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
