# Empty dependencies file for dispatch_routes_test.
# This may be replaced when dependencies are built.
