file(REMOVE_RECURSE
  "CMakeFiles/dispatch_routes_test.dir/dispatch_routes_test.cc.o"
  "CMakeFiles/dispatch_routes_test.dir/dispatch_routes_test.cc.o.d"
  "dispatch_routes_test"
  "dispatch_routes_test.pdb"
  "dispatch_routes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dispatch_routes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
