# Empty dependencies file for gens_test.
# This may be replaced when dependencies are built.
