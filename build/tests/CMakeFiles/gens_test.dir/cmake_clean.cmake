file(REMOVE_RECURSE
  "CMakeFiles/gens_test.dir/gens_test.cc.o"
  "CMakeFiles/gens_test.dir/gens_test.cc.o.d"
  "gens_test"
  "gens_test.pdb"
  "gens_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gens_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
