file(REMOVE_RECURSE
  "CMakeFiles/unbalanced_test.dir/unbalanced_test.cc.o"
  "CMakeFiles/unbalanced_test.dir/unbalanced_test.cc.o.d"
  "unbalanced_test"
  "unbalanced_test.pdb"
  "unbalanced_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unbalanced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
