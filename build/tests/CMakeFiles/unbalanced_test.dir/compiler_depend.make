# Empty compiler generated dependencies file for unbalanced_test.
# This may be replaced when dependencies are built.
