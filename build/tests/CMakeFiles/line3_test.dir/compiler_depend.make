# Empty compiler generated dependencies file for line3_test.
# This may be replaced when dependencies are built.
