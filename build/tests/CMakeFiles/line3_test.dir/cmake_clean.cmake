file(REMOVE_RECURSE
  "CMakeFiles/line3_test.dir/line3_test.cc.o"
  "CMakeFiles/line3_test.dir/line3_test.cc.o.d"
  "line3_test"
  "line3_test.pdb"
  "line3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/line3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
