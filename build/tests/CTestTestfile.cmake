# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/acyclic_join_test[1]_include.cmake")
include("/root/repo/build/tests/extmem_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/counting_test[1]_include.cmake")
include("/root/repo/build/tests/gens_test[1]_include.cmake")
include("/root/repo/build/tests/pairwise_test[1]_include.cmake")
include("/root/repo/build/tests/reduce_test[1]_include.cmake")
include("/root/repo/build/tests/line3_test[1]_include.cmake")
include("/root/repo/build/tests/unbalanced_test[1]_include.cmake")
include("/root/repo/build/tests/dispatch_test[1]_include.cmake")
include("/root/repo/build/tests/yannakakis_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/bounds_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/triangle_test[1]_include.cmake")
include("/root/repo/build/tests/exhaustive_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/lw_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/emit_test[1]_include.cmake")
include("/root/repo/build/tests/dispatch_routes_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
