file(REMOVE_RECURSE
  "CMakeFiles/memory_hierarchy_tour.dir/memory_hierarchy_tour.cc.o"
  "CMakeFiles/memory_hierarchy_tour.dir/memory_hierarchy_tour.cc.o.d"
  "memory_hierarchy_tour"
  "memory_hierarchy_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_hierarchy_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
