# Empty compiler generated dependencies file for memory_hierarchy_tour.
# This may be replaced when dependencies are built.
