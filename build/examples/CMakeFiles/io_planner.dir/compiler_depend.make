# Empty compiler generated dependencies file for io_planner.
# This may be replaced when dependencies are built.
