file(REMOVE_RECURSE
  "CMakeFiles/io_planner.dir/io_planner.cc.o"
  "CMakeFiles/io_planner.dir/io_planner.cc.o.d"
  "io_planner"
  "io_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
