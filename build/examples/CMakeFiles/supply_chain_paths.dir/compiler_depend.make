# Empty compiler generated dependencies file for supply_chain_paths.
# This may be replaced when dependencies are built.
