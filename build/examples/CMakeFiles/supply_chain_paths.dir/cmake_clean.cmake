file(REMOVE_RECURSE
  "CMakeFiles/supply_chain_paths.dir/supply_chain_paths.cc.o"
  "CMakeFiles/supply_chain_paths.dir/supply_chain_paths.cc.o.d"
  "supply_chain_paths"
  "supply_chain_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supply_chain_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
