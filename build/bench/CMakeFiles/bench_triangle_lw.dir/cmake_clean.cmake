file(REMOVE_RECURSE
  "CMakeFiles/bench_triangle_lw.dir/bench_triangle_lw.cc.o"
  "CMakeFiles/bench_triangle_lw.dir/bench_triangle_lw.cc.o.d"
  "bench_triangle_lw"
  "bench_triangle_lw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_triangle_lw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
