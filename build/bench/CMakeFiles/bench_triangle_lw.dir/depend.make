# Empty dependencies file for bench_triangle_lw.
# This may be replaced when dependencies are built.
