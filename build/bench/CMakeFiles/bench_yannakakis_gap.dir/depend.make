# Empty dependencies file for bench_yannakakis_gap.
# This may be replaced when dependencies are built.
