file(REMOVE_RECURSE
  "CMakeFiles/bench_yannakakis_gap.dir/bench_yannakakis_gap.cc.o"
  "CMakeFiles/bench_yannakakis_gap.dir/bench_yannakakis_gap.cc.o.d"
  "bench_yannakakis_gap"
  "bench_yannakakis_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_yannakakis_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
