# Empty dependencies file for bench_table1_equal_size.
# This may be replaced when dependencies are built.
