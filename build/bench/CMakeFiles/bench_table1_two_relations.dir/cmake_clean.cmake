file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_two_relations.dir/bench_table1_two_relations.cc.o"
  "CMakeFiles/bench_table1_two_relations.dir/bench_table1_two_relations.cc.o.d"
  "bench_table1_two_relations"
  "bench_table1_two_relations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_two_relations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
