# Empty dependencies file for bench_table1_two_relations.
# This may be replaced when dependencies are built.
