file(REMOVE_RECURSE
  "CMakeFiles/bench_line5_unbalanced.dir/bench_line5_unbalanced.cc.o"
  "CMakeFiles/bench_line5_unbalanced.dir/bench_line5_unbalanced.cc.o.d"
  "bench_line5_unbalanced"
  "bench_line5_unbalanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_line5_unbalanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
