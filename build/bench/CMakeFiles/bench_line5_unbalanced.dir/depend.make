# Empty dependencies file for bench_line5_unbalanced.
# This may be replaced when dependencies are built.
