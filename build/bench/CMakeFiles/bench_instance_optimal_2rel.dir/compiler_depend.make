# Empty compiler generated dependencies file for bench_instance_optimal_2rel.
# This may be replaced when dependencies are built.
