file(REMOVE_RECURSE
  "CMakeFiles/bench_instance_optimal_2rel.dir/bench_instance_optimal_2rel.cc.o"
  "CMakeFiles/bench_instance_optimal_2rel.dir/bench_instance_optimal_2rel.cc.o.d"
  "bench_instance_optimal_2rel"
  "bench_instance_optimal_2rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_instance_optimal_2rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
