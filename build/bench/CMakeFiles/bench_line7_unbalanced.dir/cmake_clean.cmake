file(REMOVE_RECURSE
  "CMakeFiles/bench_line7_unbalanced.dir/bench_line7_unbalanced.cc.o"
  "CMakeFiles/bench_line7_unbalanced.dir/bench_line7_unbalanced.cc.o.d"
  "bench_line7_unbalanced"
  "bench_line7_unbalanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_line7_unbalanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
