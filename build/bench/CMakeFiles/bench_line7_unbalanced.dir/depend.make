# Empty dependencies file for bench_line7_unbalanced.
# This may be replaced when dependencies are built.
