# Empty compiler generated dependencies file for bench_exhaustive_roundrobin.
# This may be replaced when dependencies are built.
