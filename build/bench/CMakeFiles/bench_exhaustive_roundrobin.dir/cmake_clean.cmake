file(REMOVE_RECURSE
  "CMakeFiles/bench_exhaustive_roundrobin.dir/bench_exhaustive_roundrobin.cc.o"
  "CMakeFiles/bench_exhaustive_roundrobin.dir/bench_exhaustive_roundrobin.cc.o.d"
  "bench_exhaustive_roundrobin"
  "bench_exhaustive_roundrobin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exhaustive_roundrobin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
