file(REMOVE_RECURSE
  "CMakeFiles/bench_lollipop.dir/bench_lollipop.cc.o"
  "CMakeFiles/bench_lollipop.dir/bench_lollipop.cc.o.d"
  "bench_lollipop"
  "bench_lollipop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lollipop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
