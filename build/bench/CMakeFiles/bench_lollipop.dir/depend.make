# Empty dependencies file for bench_lollipop.
# This may be replaced when dependencies are built.
