file(REMOVE_RECURSE
  "CMakeFiles/bench_extmem.dir/bench_extmem.cc.o"
  "CMakeFiles/bench_extmem.dir/bench_extmem.cc.o.d"
  "bench_extmem"
  "bench_extmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
