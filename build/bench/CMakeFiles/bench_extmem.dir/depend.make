# Empty dependencies file for bench_extmem.
# This may be replaced when dependencies are built.
