file(REMOVE_RECURSE
  "CMakeFiles/bench_dumbbell.dir/bench_dumbbell.cc.o"
  "CMakeFiles/bench_dumbbell.dir/bench_dumbbell.cc.o.d"
  "bench_dumbbell"
  "bench_dumbbell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dumbbell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
