# Empty dependencies file for bench_dumbbell.
# This may be replaced when dependencies are built.
