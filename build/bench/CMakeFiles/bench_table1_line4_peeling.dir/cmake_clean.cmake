file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_line4_peeling.dir/bench_table1_line4_peeling.cc.o"
  "CMakeFiles/bench_table1_line4_peeling.dir/bench_table1_line4_peeling.cc.o.d"
  "bench_table1_line4_peeling"
  "bench_table1_line4_peeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_line4_peeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
