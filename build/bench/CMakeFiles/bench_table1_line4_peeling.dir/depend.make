# Empty dependencies file for bench_table1_line4_peeling.
# This may be replaced when dependencies are built.
