# Empty compiler generated dependencies file for bench_table1_line5.
# This may be replaced when dependencies are built.
