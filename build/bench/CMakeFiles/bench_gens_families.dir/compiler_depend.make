# Empty compiler generated dependencies file for bench_gens_families.
# This may be replaced when dependencies are built.
