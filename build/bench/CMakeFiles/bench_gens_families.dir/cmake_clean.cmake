file(REMOVE_RECURSE
  "CMakeFiles/bench_gens_families.dir/bench_gens_families.cc.o"
  "CMakeFiles/bench_gens_families.dir/bench_gens_families.cc.o.d"
  "bench_gens_families"
  "bench_gens_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gens_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
