// emjoin_lint: the project's structural linter (same spirit as
// bench_diff: dependency-free, single file, repo-specific).
//
// The reproduction's claim is that *measured* block transfers match the
// closed-form bounds of Hu & Yi (PODS'16). That claim survives only if a
// handful of invariants hold everywhere, mechanically — not by review:
//
//   tag-discipline      Every Device charge call site in src/core,
//                       src/extmem, and src/storage is lexically under a
//                       ScopedIoTag (so per-tag attribution, and with it
//                       the Table 1 auditor's breakdowns, stay total) or
//                       sits in a function documented
//                       `// lint: tagged-by-caller`.
//   status-boundary     StatusException is an implementation detail of
//                       src/extmem: nobody else throws it (use
//                       extmem::ThrowStatus) and nobody else catches it
//                       (use extmem::CatchStatus / the Try* APIs), so
//                       every boundary sees typed Status values.
//   status-discard      A Status/Result<T>-returning call whose value is
//                       dropped on the floor is a swallowed error; the
//                       [[nodiscard]] sweep catches this at compile time
//                       for C++ callers, this rule catches it in code
//                       that is not compiled in every configuration.
//   determinism         rand/srand, std::random_device, time(),
//                       std::chrono::system_clock, unseeded RNG
//                       construction, and pointer-keyed unordered
//                       containers (iteration order = ASLR) are banned in
//                       src/ and tools/ — golden I/O counts and soak
//                       replay depend on bit-identical reruns.
//   substrate-hygiene   No raw host file I/O (fopen/fstream/...) in
//                       src/core: every byte an operator moves must flow
//                       through extmem::Device so it is charged.
//   thread-discipline   std::thread / std::jthread / std::async /
//                       pthread_create appear only in src/parallel/ —
//                       everywhere else concurrency goes through
//                       parallel::WorkerPool, so shard-confinement (one
//                       Device/Tracer/Registry per shard, merged at the
//                       barrier) is the only threading model in the tree.
//   recovery-tag        Any Device charge in src/recover/ must sit under
//                       a ScopedIoTag naming "recovery": resume rework
//                       is overhead, and attributing it anywhere else
//                       would silently shift the fault-free golden I/O
//                       counts the invariance tests pin.
//   lock-discipline     In src/, mutexes are held via RAII guards only
//                       (no manual .lock()/.unlock()/.try_lock() calls,
//                       which the clang thread-safety analysis cannot
//                       model and which leak on early returns), and
//                       every std::mutex / std::condition_variable /
//                       std::atomic member carries a thread-safety
//                       annotation: the mutex must be named by some
//                       GUARDED_BY/REQUIRES/EXCLUDES/... in the file,
//                       the cv a WAITS_ON(mu), the atomic a GUARDED_BY
//                       or an explicit LOCK_FREE_ATOMIC marker (see
//                       src/core/thread_annotations.h).
//   include-layering    Quoted #include edges inside src/ must point
//                       down the subsystem DAG (extmem < storage <
//                       core/query/counting/gens < trace/metrics <
//                       recover < parallel < obs < workload < serve);
//                       the cross-cutting observer headers
//                       (thread_annotations, tracer, registry) are
//                       layerless and includable from anywhere. An
//                       upward include is a layering escape that would
//                       eventually cycle the build and lets substrate
//                       code observe policy layers.
//
// Usage:
//   emjoin_lint [--root=DIR] [--json=PATH] [--rule=NAME ...]
//               [--list-rules] [PATH ...]
//
// PATHs are relative to --root (default: the current directory); with no
// PATHs the standard tree (src/ bench/ tools/ tests/ examples/) is
// scanned. --rule restricts checking to the named rules.
//
// Suppressions (only on the flagged line or the line directly above):
//   // lint: allow(rule-name)        suppress one rule at this site
//   // lint: allow(all)              suppress every rule at this site
//   // lint: tagged-by-caller       (tag-discipline only) documents that
//                                    the enclosing function inherits its
//                                    attribution tag from the caller
//
// Exit codes: 0 clean, 1 findings, 2 usage, 66 unreadable file — the
// same convention as bench_diff.
//
// The "parser" is deliberately lexical: comments and string/char
// literals are blanked, then rules match identifier tokens. That is
// enough to make every invariant above checkable, keeps the tool free
// of any compiler dependency, and makes false positives fixable with a
// visible, greppable suppression comment.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Rule catalogue.
// ---------------------------------------------------------------------

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
};

constexpr RuleInfo kRules[] = {
    {"tag-discipline",
     "Device charge calls must run under a ScopedIoTag or a function "
     "documented `// lint: tagged-by-caller`"},
    {"status-boundary",
     "StatusException is thrown/caught only inside src/extmem; "
     "boundaries use ThrowStatus/CatchStatus/Try*"},
    {"status-discard",
     "the value of a Status/Result-returning call must not be discarded"},
    {"determinism",
     "no rand/random_device/time()/system_clock/unseeded RNGs/"
     "pointer-keyed unordered containers in src/ or tools/"},
    {"substrate-hygiene",
     "no raw host file I/O in src/core (all bytes flow through "
     "extmem::Device)"},
    {"thread-discipline",
     "raw thread spawns (std::thread/std::jthread/std::async/"
     "pthread_create) only in src/parallel, src/obs, or src/serve; "
     "elsewhere use parallel::WorkerPool — and inside src/ only those "
     "three layers may own a WorkerPool at all"},
    {"recovery-tag",
     "Device charges in src/recover must run under a ScopedIoTag naming "
     "\"recovery\" so resume rework never shifts golden I/O counts"},
    {"lock-discipline",
     "in src/: no manual .lock()/.unlock()/.try_lock() (RAII guards "
     "only), and every mutex/condition_variable/atomic member carries a "
     "thread-safety annotation (GUARDED_BY/WAITS_ON/LOCK_FREE_ATOMIC)"},
    {"include-layering",
     "quoted #includes inside src/ must point down the subsystem DAG "
     "(extmem < storage < core < trace/metrics < recover < parallel < "
     "obs < workload < serve); cross-cutting observer headers are "
     "layerless"},
};

bool KnownRule(std::string_view name) {
  for (const RuleInfo& r : kRules) {
    if (r.name == name) return true;
  }
  return false;
}

struct Finding {
  std::string file;  // root-relative, forward slashes
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------
// Per-file lexical model.
// ---------------------------------------------------------------------

struct FileModel {
  std::string path;                  // root-relative
  std::vector<std::string> code;     // per line, comments/strings blanked
  std::vector<std::string> comment;  // per line, the comment text (if any)
  std::vector<std::string> raw;      // per line, unblanked (recovery-tag
                                     // needs the tag string literal)
};

// Blanks comments and string/char literals so token matching never trips
// on prose or log messages, while collecting comment text per line for
// the `lint:` directives. Tracks block comments and raw strings across
// lines.
FileModel LexFile(const std::string& path, const std::string& text) {
  FileModel m;
  m.path = path;
  std::string code, comment;
  bool in_block_comment = false;
  bool in_line_comment = false;
  bool in_string = false, in_char = false;
  auto flush_line = [&] {
    m.code.push_back(code);
    m.comment.push_back(comment);
    code.clear();
    comment.clear();
    in_line_comment = false;
    // Strings and char literals do not span lines in this codebase.
    in_string = in_char = false;
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      flush_line();
      continue;
    }
    if (in_block_comment) {
      comment += c;
      if (c == '*' && next == '/') {
        comment += next;
        ++i;
        in_block_comment = false;
      }
      continue;
    }
    if (in_line_comment) {
      comment += c;
      continue;
    }
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      code += ' ';
      continue;
    }
    if (in_char) {
      if (c == '\\') {
        ++i;
      } else if (c == '\'') {
        in_char = false;
      }
      code += ' ';
      continue;
    }
    if (c == '/' && next == '/') {
      in_line_comment = true;
      comment += "//";
      ++i;
      continue;
    }
    if (c == '/' && next == '*') {
      in_block_comment = true;
      comment += "/*";
      ++i;
      continue;
    }
    if (c == '"') {
      in_string = true;
      code += ' ';
      continue;
    }
    // A char literal, not a digit separator (1'000) or apostrophe.
    if (c == '\'' && !(i > 0 && std::isalnum(static_cast<unsigned char>(
                                    text[i - 1])))) {
      in_char = true;
      code += ' ';
      continue;
    }
    code += c;
  }
  flush_line();
  {
    // Raw lines, split identically to flush_line (one entry per '\n',
    // plus the final unterminated line).
    std::string cur;
    for (const char c : text) {
      if (c == '\n') {
        m.raw.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    m.raw.push_back(cur);
  }
  return m;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Finds `word` as a whole identifier token in `s`, starting at `from`.
// Returns npos if absent.
std::size_t FindToken(std::string_view s, std::string_view word,
                      std::size_t from = 0) {
  while (from < s.size()) {
    const std::size_t pos = s.find(word, from);
    if (pos == std::string_view::npos) return std::string_view::npos;
    const bool left_ok = pos == 0 || !IsWordChar(s[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= s.size() || !IsWordChar(s[end]);
    if (left_ok && right_ok) return pos;
    from = pos + 1;
  }
  return std::string_view::npos;
}

// True when the token at `pos` is followed (after whitespace) by `(`.
bool CalledWithParen(std::string_view s, std::size_t pos,
                     std::size_t word_len) {
  std::size_t i = pos + word_len;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i < s.size() && s[i] == '(';
}

// ---------------------------------------------------------------------
// Suppression directives.
// ---------------------------------------------------------------------

// `// lint: allow(rule-a, rule-b)` or `// lint: allow(all)`.
bool LineAllows(const std::string& comment, std::string_view rule) {
  std::size_t pos = comment.find("lint:");
  if (pos == std::string::npos) return false;
  pos = comment.find("allow(", pos);
  if (pos == std::string::npos) return false;
  const std::size_t close = comment.find(')', pos);
  if (close == std::string::npos) return false;
  std::string_view list(comment.data() + pos + 6, close - pos - 6);
  if (FindToken(list, "all") != std::string_view::npos) return true;
  return list.find(rule) != std::string_view::npos;
}

bool BlankCode(const std::string& code) {
  return std::all_of(code.begin(), code.end(), [](char c) {
    return std::isspace(static_cast<unsigned char>(c));
  });
}

// A finding on line `idx` (0-based) may be suppressed on its own line,
// on the line directly above, or anywhere in a contiguous comment-only
// block directly above (so wrapped rationale comments still count).
bool Suppressed(const FileModel& m, std::size_t idx, std::string_view rule) {
  if (LineAllows(m.comment[idx], rule)) return true;
  for (std::size_t j = idx; j-- > 0;) {
    if (LineAllows(m.comment[j], rule)) return true;
    const bool comment_only = !m.comment[j].empty() && BlankCode(m.code[j]);
    if (!comment_only) break;
  }
  return false;
}

bool HasTaggedByCaller(const std::string& comment) {
  const std::size_t pos = comment.find("lint:");
  if (pos == std::string::npos) return false;
  return comment.find("tagged-by-caller", pos) != std::string::npos;
}

// ---------------------------------------------------------------------
// Path scoping.
// ---------------------------------------------------------------------

bool Under(const std::string& path, std::string_view prefix) {
  return path.rfind(prefix, 0) == 0;
}

bool InTagScope(const std::string& p) {
  return Under(p, "src/core/") || Under(p, "src/extmem/") ||
         Under(p, "src/storage/") || Under(p, "src/recover/");
}

bool InDeterminismScope(const std::string& p) {
  return Under(p, "src/") || Under(p, "tools/");
}

// ---------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------

void AddFinding(std::vector<Finding>* out, const FileModel& m,
                std::size_t idx, std::string_view rule, std::string message) {
  if (Suppressed(m, idx, rule)) return;
  out->push_back(Finding{m.path, idx + 1, std::string(rule),
                         std::move(message)});
}

// Rule: tag-discipline. A Device charge call must have, somewhere between
// the most recent column-0 `}` (the end of the previous top-level
// definition — clang-format puts function and namespace closers there)
// and the call line, either a ScopedIoTag declaration or a
// `// lint: tagged-by-caller` note. This window is the lexical
// approximation of "the enclosing function or class".
void CheckTagDiscipline(const FileModel& m, std::vector<Finding>* out) {
  if (!InTagScope(m.path)) return;
  static constexpr std::string_view kCharges[] = {
      "ChargeReadTuples", "ChargeWriteTuples", "ChargeReadBlocks",
      "ChargeWriteBlocks"};
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    const std::string& line = m.code[i];
    for (std::string_view name : kCharges) {
      const std::size_t pos = FindToken(line, name);
      if (pos == std::string_view::npos) continue;
      if (!CalledWithParen(line, pos, name.size())) continue;
      // Skip the declaration/definition of the charge method itself
      // ("void ChargeReadBlocks(..." / "void Device::ChargeReadTuples(").
      if (FindToken(line.substr(0, pos), "void") != std::string_view::npos) {
        continue;
      }
      bool covered = false;
      for (std::size_t j = i + 1; j-- > 0;) {
        if (FindToken(m.code[j], "ScopedIoTag") != std::string_view::npos ||
            HasTaggedByCaller(m.comment[j])) {
          covered = true;
          break;
        }
        // Column-0 `}` closes the previous top-level scope.
        if (j != i && !m.code[j].empty() && m.code[j][0] == '}') break;
      }
      if (!covered) {
        AddFinding(out, m, i, "tag-discipline",
                   std::string(name) +
                       " outside any ScopedIoTag scope (add a tag or "
                       "document `// lint: tagged-by-caller`)");
      }
    }
  }
}

// Rule: status-boundary. Outside src/extmem, `throw ... StatusException`
// and `catch (... StatusException ...)` are both banned: raising goes
// through extmem::ThrowStatus, unwinding through extmem::CatchStatus or
// a Try* API, so Status stays typed at every boundary.
void CheckStatusBoundary(const FileModel& m, std::vector<Finding>* out) {
  if (Under(m.path, "src/extmem/")) return;
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    const std::string& line = m.code[i];
    const std::size_t exc = FindToken(line, "StatusException");
    if (exc == std::string_view::npos) continue;
    if (FindToken(line.substr(0, exc), "throw") != std::string_view::npos) {
      AddFinding(out, m, i, "status-boundary",
                 "throw of StatusException outside src/extmem (use "
                 "extmem::ThrowStatus)");
    } else if (FindToken(line.substr(0, exc), "catch") !=
               std::string_view::npos) {
      AddFinding(out, m, i, "status-boundary",
                 "catch of StatusException outside src/extmem (use "
                 "extmem::CatchStatus or a Try* API)");
    }
  }
}

// Rule: status-discard. The known Status/Result-returning entry points,
// called as a bare expression statement (previous significant character
// is `;`, `{`, or `}`), silently swallow their error.
void CheckStatusDiscard(const FileModel& m, std::vector<Finding>* out) {
  static constexpr std::string_view kReturnsStatus[] = {
      "TryExternalSort",    "TryJoinAuto",     "TryYannakakisJoin",
      "CatchStatus",        "RelationFromCsv", "RelationFromCsvFile",
      "ParseSchemaSpec"};
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    const std::string& line = m.code[i];
    for (std::string_view name : kReturnsStatus) {
      std::size_t pos = FindToken(line, name);
      if (pos == std::string_view::npos) continue;
      if (!CalledWithParen(line, pos, name.size())) continue;
      // Walk back over `ns::` qualifiers, then whitespace (possibly onto
      // previous lines), to the previous significant character.
      std::size_t li = i, ci = pos;
      bool discarded = false;
      for (;;) {
        const std::string& cur = m.code[li];
        // Step back over an immediately preceding `foo::` qualifier.
        if (ci >= 2 && cur.compare(ci - 2, 2, "::") == 0) {
          ci -= 2;
          while (ci > 0 && IsWordChar(cur[ci - 1])) --ci;
          continue;
        }
        // Step back over whitespace.
        while (ci > 0 &&
               std::isspace(static_cast<unsigned char>(cur[ci - 1]))) {
          --ci;
        }
        if (ci == 0) {
          if (li == 0) {
            discarded = true;  // first statement in the file
            break;
          }
          --li;
          ci = m.code[li].size();
          continue;
        }
        const char prev = cur[ci - 1];
        discarded = prev == ';' || prev == '{' || prev == '}';
        break;
      }
      if (discarded) {
        AddFinding(out, m, i, "status-discard",
                   "result of " + std::string(name) +
                       "() is discarded (check .ok() or propagate)");
      }
    }
  }
}

// Rule: determinism.
void CheckDeterminism(const FileModel& m, std::vector<Finding>* out) {
  if (!InDeterminismScope(m.path)) return;
  struct Ban {
    std::string_view token;
    bool call_only;  // must be followed by `(` to fire
    std::string_view why;
  };
  static constexpr Ban kBans[] = {
      {"rand", true, "unseeded C RNG"},
      {"srand", true, "process-global RNG seeding"},
      {"random_device", false, "nondeterministic entropy source"},
      {"time", true, "wall-clock dependence"},
      {"system_clock", false, "wall-clock dependence"},
      {"clock", true, "wall-clock dependence"},
  };
  static constexpr std::string_view kEngines[] = {
      "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
      "default_random_engine"};
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    const std::string& line = m.code[i];
    for (const Ban& b : kBans) {
      const std::size_t pos = FindToken(line, b.token);
      if (pos == std::string_view::npos) continue;
      if (b.call_only && !CalledWithParen(line, pos, b.token.size())) {
        continue;
      }
      AddFinding(out, m, i, "determinism",
                 std::string(b.token) + ": " + std::string(b.why) +
                     " breaks bit-identical replay");
    }
    // Unseeded RNG construction: `mt19937_64 rng;` (no ctor argument).
    // `engine& ref`, `engine* ptr`, and `engine name(seed)` are fine.
    for (std::string_view eng : kEngines) {
      const std::size_t pos = FindToken(line, eng);
      if (pos == std::string_view::npos) continue;
      std::size_t j = pos + eng.size();
      while (j < line.size() &&
             std::isspace(static_cast<unsigned char>(line[j]))) {
        ++j;
      }
      if (j >= line.size() || !IsWordChar(line[j])) continue;  // ref/ptr/...
      while (j < line.size() && IsWordChar(line[j])) ++j;
      while (j < line.size() &&
             std::isspace(static_cast<unsigned char>(line[j]))) {
        ++j;
      }
      if (j >= line.size() || line[j] == ';') {
        AddFinding(out, m, i, "determinism",
                   std::string(eng) +
                       " constructed without a seed (iteration must be "
                       "seed-reproducible)");
      }
    }
    // Pointer-keyed unordered containers: iteration order depends on
    // allocation addresses, i.e. on ASLR, not on the input.
    for (std::string_view cont : {"unordered_map", "unordered_set"}) {
      const std::size_t pos = FindToken(line, cont);
      if (pos == std::string_view::npos) continue;
      const std::size_t open = line.find('<', pos);
      if (open == std::string::npos) continue;
      // The key type ends at the first top-level `,` or `>`.
      std::size_t depth = 1;
      bool pointer_key = false;
      for (std::size_t j = open + 1; j < line.size() && depth > 0; ++j) {
        const char c = line[j];
        if (c == '<') ++depth;
        if (c == '>') --depth;
        if (depth == 1 && c == ',') break;
        if (depth >= 1 && c == '*') {
          pointer_key = true;
          break;
        }
      }
      if (pointer_key) {
        AddFinding(out, m, i, "determinism",
                   std::string(cont) +
                       " keyed by a pointer: iteration order follows "
                       "allocation addresses, not the input");
      }
    }
  }
}

// Rule: substrate-hygiene.
void CheckSubstrateHygiene(const FileModel& m, std::vector<Finding>* out) {
  if (!Under(m.path, "src/core/")) return;
  static constexpr std::string_view kRawIo[] = {
      "fopen", "freopen", "fread", "fwrite", "ifstream", "ofstream",
      "fstream"};
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    for (std::string_view name : kRawIo) {
      if (FindToken(m.code[i], name) != std::string_view::npos) {
        AddFinding(out, m, i, "substrate-hygiene",
                   std::string(name) +
                       " in src/core: bytes moved here bypass "
                       "extmem::Device and are never charged");
      }
    }
  }
}

// Rule: thread-discipline. Raw thread-spawn primitives outside
// src/parallel/ bypass the WorkerPool, and with it the one threading
// model the merge layer is correct under (shard-confined state, joined
// before the per-shard reports are read). src/obs/ is also allowlisted:
// its telemetry sinks are thread-safe by design (lock-free tracker and
// flight-recorder atomics) and the HTTP exporter's serve loop is a
// long-lived concurrent observer, not shard work — the opposite of the
// confinement the rule protects elsewhere. src/serve/ joins the
// allowlist with the daemon: its run pool executes whole queries, a
// concurrency domain the admission ledger (not shard confinement)
// governs. The match is lexical on the qualified spelling, so
// `threads_` members and `#include <thread>` lines do not fire.
//
// The rule's second half inverts the allowlist for the pool itself:
// inside src/, only those three layers may *own* a WorkerPool. The
// substrate and operator layers are single-threaded by contract (their
// Device charges assume one mutator), so a pool appearing in, say,
// src/core is a layering escape even though WorkerPool is the blessed
// primitive everywhere above src/.
void CheckThreadDiscipline(const FileModel& m, std::vector<Finding>* out) {
  if (Under(m.path, "src/parallel/") || Under(m.path, "src/obs/") ||
      Under(m.path, "src/serve/")) {
    return;
  }
  static constexpr std::string_view kSpawns[] = {
      "std::thread", "std::jthread", "std::async", "pthread_create"};
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    const std::string& line = m.code[i];
    for (std::string_view name : kSpawns) {
      if (FindToken(line, name) == std::string_view::npos) continue;
      AddFinding(out, m, i, "thread-discipline",
                 std::string(name) +
                     " outside src/parallel, src/obs, or src/serve: "
                     "route work through parallel::WorkerPool "
                     "(shard-confined state is the only supported "
                     "threading model)");
    }
    if (Under(m.path, "src/") &&
        FindToken(line, "WorkerPool") != std::string_view::npos) {
      AddFinding(out, m, i, "thread-discipline",
                 "WorkerPool outside src/parallel, src/obs, or "
                 "src/serve: the substrate and operator layers are "
                 "single-threaded by contract");
    }
  }
}

// Rule: recovery-tag. src/recover is the resume layer: any device I/O it
// performs is rework paid only on faulted or resumed runs, and must be
// attributed to the "recovery" tag — otherwise the fault-free golden
// counts pinned by io_invariance_test silently shift. Same lexical
// window as tag-discipline, but the covering ScopedIoTag line must also
// name "recovery" (checked against the raw line, since string literals
// are blanked in the lexical model).
void CheckRecoveryTag(const FileModel& m, std::vector<Finding>* out) {
  if (!Under(m.path, "src/recover/")) return;
  static constexpr std::string_view kCharges[] = {
      "ChargeReadTuples", "ChargeWriteTuples", "ChargeReadBlocks",
      "ChargeWriteBlocks"};
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    const std::string& line = m.code[i];
    for (std::string_view name : kCharges) {
      const std::size_t pos = FindToken(line, name);
      if (pos == std::string_view::npos) continue;
      if (!CalledWithParen(line, pos, name.size())) continue;
      if (FindToken(line.substr(0, pos), "void") != std::string_view::npos) {
        continue;
      }
      bool covered = false;
      for (std::size_t j = i + 1; j-- > 0;) {
        if (FindToken(m.code[j], "ScopedIoTag") != std::string_view::npos &&
            m.raw[j].find("recovery") != std::string::npos) {
          covered = true;
          break;
        }
        if (j != i && !m.code[j].empty() && m.code[j][0] == '}') break;
      }
      if (!covered) {
        AddFinding(out, m, i, "recovery-tag",
                   std::string(name) +
                       " in src/recover outside a \"recovery\" ScopedIoTag "
                       "(resume rework must be charged to the recovery "
                       "tag)");
      }
    }
  }
}

// Rule: lock-discipline. Two halves, both scoped to src/ (tests and
// tools may drive synchronization primitives directly to exercise them).
//
// (a) Manual mutex operations — `m.lock()`, `m->unlock()`,
//     `m.try_lock()` — are banned: an early return or exception between
//     lock and unlock deadlocks the next waiter, and the clang
//     thread-safety analysis (src/core/thread_annotations.h) cannot
//     model hand-rolled protocols. Hold mutexes via std::lock_guard /
//     std::unique_lock / std::scoped_lock, whose scopes the analysis
//     understands. The member-access prefix (`.` or `->`) is what
//     distinguishes a manual call from the ubiquitous guard variable
//     *named* `lock(...)`.
//
// (b) Every synchronization-primitive member must declare its protocol:
//       std::mutex              some GUARDED_BY/PT_GUARDED_BY/REQUIRES/
//                               EXCLUDES/ACQUIRE/RELEASE/WAITS_ON in the
//                               same file must name it — a mutex nothing
//                               claims to be guarded by guards nothing;
//       std::condition_variable a WAITS_ON(mu) on its declaration line,
//                               pinning the cv/mutex pairing;
//       std::atomic             a GUARDED_BY (mixed protocol) or an
//                               explicit LOCK_FREE_ATOMIC marker on its
//                               declaration line, so lock-free sharing
//                               is a documented decision, never a
//                               default.
//     A declaration is a type token followed by optional <...> template
//     arguments and then an identifier — `std::lock_guard<std::mutex>`
//     and `std::mutex&` parameters do not match.
void CheckLockDiscipline(const FileModel& m, std::vector<Finding>* out) {
  if (!Under(m.path, "src/")) return;
  static constexpr std::string_view kManualOps[] = {"lock", "unlock",
                                                    "try_lock"};
  static constexpr std::string_view kAnnotations[] = {
      "GUARDED_BY", "PT_GUARDED_BY", "REQUIRES", "EXCLUDES",
      "ACQUIRE",    "RELEASE",       "WAITS_ON"};
  // (a) manual lock operations.
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    const std::string& line = m.code[i];
    for (std::string_view op : kManualOps) {
      for (std::size_t pos = FindToken(line, op);
           pos != std::string_view::npos;
           pos = FindToken(line, op, pos + 1)) {
        if (!CalledWithParen(line, pos, op.size())) continue;
        const bool member_access =
            (pos >= 1 && line[pos - 1] == '.') ||
            (pos >= 2 && line.compare(pos - 2, 2, "->") == 0);
        if (!member_access) continue;
        AddFinding(out, m, i, "lock-discipline",
                   "manual ." + std::string(op) +
                       "() call: hold mutexes via RAII guards "
                       "(lock_guard/unique_lock/scoped_lock) so scopes "
                       "are exception-safe and analyzable");
      }
    }
  }
  // (b) undocumented synchronization members.
  struct Primitive {
    std::string_view type;
    int kind;  // 0 = mutex, 1 = condition variable, 2 = atomic
  };
  static constexpr Primitive kPrimitives[] = {
      {"mutex", 0},
      {"timed_mutex", 0},
      {"recursive_mutex", 0},
      {"shared_mutex", 0},
      {"condition_variable", 1},
      {"condition_variable_any", 1},
      {"atomic", 2},
      {"atomic_flag", 2},
  };
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    const std::string& line = m.code[i];
    for (const Primitive& p : kPrimitives) {
      const std::size_t pos = FindToken(line, p.type);
      if (pos == std::string_view::npos) continue;
      std::size_t j = pos + p.type.size();
      if (j < line.size() && line[j] == '<') {
        // Skip balanced template arguments; a '>'-terminated token with
        // no trailing declarator (e.g. inside lock_guard<std::mutex>)
        // falls out below.
        std::size_t depth = 1;
        ++j;
        while (j < line.size() && depth > 0) {
          if (line[j] == '<') ++depth;
          if (line[j] == '>') --depth;
          ++j;
        }
        if (depth > 0) continue;  // template args continue past the line
      }
      if (j >= line.size() ||
          !std::isspace(static_cast<unsigned char>(line[j]))) {
        continue;  // template argument, &/* parameter, or cast
      }
      while (j < line.size() &&
             std::isspace(static_cast<unsigned char>(line[j]))) {
        ++j;
      }
      if (j >= line.size() || !IsWordChar(line[j]) ||
          std::isdigit(static_cast<unsigned char>(line[j]))) {
        continue;
      }
      std::size_t name_end = j;
      while (name_end < line.size() && IsWordChar(line[name_end])) {
        ++name_end;
      }
      const std::string name = line.substr(j, name_end - j);
      if (p.kind == 0) {
        // The mutex must be named inside some annotation's parentheses
        // anywhere in this file.
        bool referenced = false;
        for (std::size_t k = 0; k < m.code.size() && !referenced; ++k) {
          for (std::string_view ann : kAnnotations) {
            const std::size_t apos = FindToken(m.code[k], ann);
            if (apos == std::string_view::npos) continue;
            const std::size_t open = m.code[k].find('(', apos);
            if (open == std::string::npos) continue;
            const std::size_t close = m.code[k].find(')', open);
            if (close == std::string::npos) continue;
            const std::string_view args(m.code[k].data() + open + 1,
                                        close - open - 1);
            if (FindToken(args, name) != std::string_view::npos) {
              referenced = true;
              break;
            }
          }
        }
        if (!referenced) {
          AddFinding(out, m, i, "lock-discipline",
                     "mutex member '" + name +
                         "' is never named by a thread-safety annotation "
                         "(GUARDED_BY/REQUIRES/EXCLUDES/...): declare "
                         "what it guards, see "
                         "src/core/thread_annotations.h");
        }
      } else if (p.kind == 1) {
        if (FindToken(line, "WAITS_ON") == std::string_view::npos) {
          AddFinding(out, m, i, "lock-discipline",
                     "condition variable '" + name +
                         "' missing WAITS_ON(<mutex>) on its "
                         "declaration: pin the cv/mutex pairing");
        }
      } else {
        if (FindToken(line, "GUARDED_BY") == std::string_view::npos &&
            FindToken(line, "LOCK_FREE_ATOMIC") == std::string_view::npos) {
          AddFinding(out, m, i, "lock-discipline",
                     "atomic member '" + name +
                         "' missing GUARDED_BY or LOCK_FREE_ATOMIC: "
                         "lock-free sharing must be a documented "
                         "decision");
        }
      }
    }
  }
}

// Rule: include-layering. The subsystem DAG, as enforced ranks — an
// include edge may point at the same rank or lower, never higher:
//
//   rank  0  extmem      cost-model substrate (Device, Status, faults)
//   rank 10  storage     relations/runs on top of the substrate
//   rank 20  core, query, counting, gens   operators and plan structure
//   rank 30  trace, metrics                derived accounting
//   rank 40  recover     manifests/resume (consumed by parallel)
//   rank 50  parallel    sharded execution
//   rank 60  obs         live observability plane
//   rank 70  workload    soak/bench instance constructions
//   rank 80  serve       the multi-query daemon
//
// Three cross-cutting observer headers are layerless (includable from
// any layer): core/thread_annotations.h (annotation macros, no deps),
// trace/tracer.h and metrics/registry.h (the event/metrics sinks every
// layer reports into — the substrate charges I/O, the tracer observes
// it). Three metrics files are re-ranked to 70: parallel_audit.{h,cc}
// and cost_model.cc are audit harnesses *over* parallel runs and
// workload constructions, not accounting the lower layers depend on.
// Harness trees (tests/ tools/ bench/ examples/) may include anything.
void CheckIncludeLayering(const FileModel& m, std::vector<Finding>* out) {
  struct Layer {
    std::string_view dir;
    int rank;
  };
  static constexpr Layer kLayers[] = {
      {"extmem", 0},    {"storage", 10}, {"core", 20},  {"query", 20},
      {"counting", 20}, {"gens", 20},    {"trace", 30}, {"metrics", 30},
      {"recover", 40},  {"parallel", 50}, {"obs", 60},  {"workload", 70},
      {"serve", 80},
  };
  static constexpr std::string_view kLayerless[] = {
      "core/thread_annotations.h", "trace/tracer.h", "metrics/registry.h"};
  struct Override {
    std::string_view file;
    int rank;
  };
  static constexpr Override kOverrides[] = {
      {"src/metrics/parallel_audit.h", 70},
      {"src/metrics/parallel_audit.cc", 70},
      {"src/metrics/cost_model.cc", 70},
  };
  if (!Under(m.path, "src/")) return;
  const auto rank_of = [](std::string_view dir) {
    for (const Layer& l : kLayers) {
      if (l.dir == dir) return l.rank;
    }
    return -1;
  };
  const auto dir_of = [](std::string_view path) {
    const std::size_t slash = path.find('/');
    return slash == std::string_view::npos ? std::string_view{}
                                           : path.substr(0, slash);
  };
  int source_rank = rank_of(dir_of(std::string_view(m.path).substr(4)));
  std::string_view source_dir = dir_of(std::string_view(m.path).substr(4));
  for (const Override& o : kOverrides) {
    if (o.file == m.path) source_rank = o.rank;
  }
  if (source_rank < 0) return;  // unknown subsystem: nothing to enforce
  for (std::size_t i = 0; i < m.raw.size(); ++i) {
    // Parse `#include "target"` off the raw line (the lexical model
    // blanks string literals, and the include path is one).
    const std::string& raw = m.raw[i];
    std::size_t j = 0;
    while (j < raw.size() &&
           std::isspace(static_cast<unsigned char>(raw[j]))) {
      ++j;
    }
    if (j >= raw.size() || raw[j] != '#') continue;
    ++j;
    while (j < raw.size() &&
           std::isspace(static_cast<unsigned char>(raw[j]))) {
      ++j;
    }
    if (raw.compare(j, 7, "include") != 0) continue;
    j += 7;
    while (j < raw.size() &&
           std::isspace(static_cast<unsigned char>(raw[j]))) {
      ++j;
    }
    if (j >= raw.size() || raw[j] != '"') continue;  // <system> is free
    const std::size_t close = raw.find('"', j + 1);
    if (close == std::string::npos) continue;
    const std::string target = raw.substr(j + 1, close - j - 1);
    bool layerless = false;
    for (std::string_view exempt : kLayerless) {
      if (target == exempt) layerless = true;
    }
    if (layerless) continue;
    const int target_rank = rank_of(dir_of(target));
    if (target_rank < 0) continue;
    if (target_rank <= source_rank) continue;
    AddFinding(out, m, i, "include-layering",
               "include of \"" + target + "\" (layer " +
                   std::string(dir_of(target)) + ", rank " +
                   std::to_string(target_rank) + ") from layer " +
                   std::string(source_dir) + " (rank " +
                   std::to_string(source_rank) +
                   "): include edges must point down the subsystem DAG "
                   "(see docs/STATIC_ANALYSIS.md)");
  }
}

// ---------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------

bool RuleEnabled(const std::vector<std::string>& only,
                 std::string_view rule) {
  if (only.empty()) return true;
  return std::find(only.begin(), only.end(), rule) != only.end();
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: emjoin_lint [--root=DIR] [--json=PATH] [--rule=NAME ...]\n"
      "                   [--list-rules] [PATH ...]\n");
  return 2;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  std::vector<std::string> only_rules;
  std::vector<std::string> explicit_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--rule=", 0) == 0) {
      const std::string rule = arg.substr(7);
      if (!KnownRule(rule)) {
        std::fprintf(stderr, "emjoin_lint: unknown rule '%s'\n",
                     rule.c_str());
        return Usage();
      }
      only_rules.push_back(rule);
    } else if (arg == "--list-rules") {
      for (const RuleInfo& r : kRules) {
        std::printf("%-18s %s\n", std::string(r.name).c_str(),
                    std::string(r.summary).c_str());
      }
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "emjoin_lint: unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else {
      explicit_paths.push_back(arg);
    }
  }

  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    std::fprintf(stderr, "emjoin_lint: --root=%s is not a directory\n",
                 root.c_str());
    return 66;
  }

  // Collect the files to scan, as root-relative forward-slash paths.
  std::vector<std::string> files;
  auto add_tree = [&](const fs::path& dir) {
    if (!fs::is_directory(dir, ec)) return;
    for (const auto& entry :
         fs::recursive_directory_iterator(dir, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cc" && ext != ".h") continue;
      const std::string rel =
          fs::relative(entry.path(), root, ec).generic_string();
      // The lint self-test fixtures violate every rule on purpose.
      if (rel.find("lint_fixtures/") != std::string::npos) continue;
      files.push_back(rel);
    }
  };
  if (explicit_paths.empty()) {
    for (const char* sub : {"src", "bench", "tools", "tests", "examples"}) {
      add_tree(fs::path(root) / sub);
    }
  } else {
    for (const std::string& p : explicit_paths) {
      const fs::path abs = fs::path(root) / p;
      if (fs::is_directory(abs, ec)) {
        add_tree(abs);
      } else if (fs::is_regular_file(abs, ec)) {
        files.push_back(fs::path(p).generic_string());
      } else {
        std::fprintf(stderr, "emjoin_lint: cannot read %s\n",
                     abs.string().c_str());
        return 66;
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const std::string& rel : files) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "emjoin_lint: cannot read %s\n", rel.c_str());
      return 66;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const FileModel m = LexFile(rel, buf.str());

    std::vector<Finding> file_findings;
    if (RuleEnabled(only_rules, "tag-discipline")) {
      CheckTagDiscipline(m, &file_findings);
    }
    if (RuleEnabled(only_rules, "status-boundary")) {
      CheckStatusBoundary(m, &file_findings);
    }
    if (RuleEnabled(only_rules, "status-discard")) {
      CheckStatusDiscard(m, &file_findings);
    }
    if (RuleEnabled(only_rules, "determinism")) {
      CheckDeterminism(m, &file_findings);
    }
    if (RuleEnabled(only_rules, "substrate-hygiene")) {
      CheckSubstrateHygiene(m, &file_findings);
    }
    if (RuleEnabled(only_rules, "thread-discipline")) {
      CheckThreadDiscipline(m, &file_findings);
    }
    if (RuleEnabled(only_rules, "recovery-tag")) {
      CheckRecoveryTag(m, &file_findings);
    }
    if (RuleEnabled(only_rules, "lock-discipline")) {
      CheckLockDiscipline(m, &file_findings);
    }
    if (RuleEnabled(only_rules, "include-layering")) {
      CheckIncludeLayering(m, &file_findings);
    }
    std::sort(file_findings.begin(), file_findings.end(),
              [](const Finding& a, const Finding& b) {
                return a.line != b.line ? a.line < b.line : a.rule < b.rule;
              });
    for (Finding& f : file_findings) findings.push_back(std::move(f));
  }

  for (const Finding& f : findings) {
    std::printf("%s:%zu: %s: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "emjoin_lint: cannot write %s\n",
                   json_path.c_str());
      return 66;
    }
    out << "{\n  \"tool\": \"emjoin_lint\",\n";
    out << "  \"files_scanned\": " << files.size() << ",\n";
    out << "  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      out << (i == 0 ? "\n" : ",\n");
      out << "    {\"file\": \"" << JsonEscape(f.file)
          << "\", \"line\": " << f.line << ", \"rule\": \"" << f.rule
          << "\", \"message\": \"" << JsonEscape(f.message) << "\"}";
    }
    out << (findings.empty() ? "]" : "\n  ]") << ",\n";
    out << "  \"clean\": " << (findings.empty() ? "true" : "false")
        << "\n}\n";
  }

  if (!findings.empty()) {
    std::fprintf(stderr, "emjoin_lint: %zu finding%s in %zu files scanned\n",
                 findings.size(), findings.size() == 1 ? "" : "s",
                 files.size());
    return 1;
  }
  return 0;
}
