// emjoin_export: live-telemetry demo driver + Prometheus conformance
// checker.
//
//   emjoin_export --check-prom=FILE
//       Validates FILE against the Prometheus text exposition format
//       (metrics::CheckPrometheusText). Exit 0 when it conforms, 1 with
//       a line-numbered diagnostic on stderr when it does not, 66 when
//       FILE cannot be read. The CI telemetry smoke job feeds scraped
//       /metrics bodies through this mode.
//
//   emjoin_export [--workload=line3|star] [--n=N] [--petals=K]
//                 [--memory=M] [--block=B] [--loops=L]
//                 [--shards=K] [--workers=W]
//                 [--fault-seed=N] [--fault-read=P] [--fault-write=P]
//                 [--fault-torn=P] [--fault-retries=K]
//                 [--export-port=PORT] [--export-linger-ms=MS]
//                 [--recorder=PATH] [--metrics=PATH] ...
//       Runs L loops of (build worst-case instance, join it) with live
//       telemetry attached, serving /metrics, /healthz, /progress, and
//       /events while it works. The phase plan covers every loop, so
//       /progress climbs monotonically across the whole run and ends at
//       exactly 100 — this is the binary the CI smoke job polls.
//
// Exit codes follow the emjoin_cli contract (0 ok, 64 usage, 66 no
// input, 69/70/73/74/75 per typed Status).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "extmem/device.h"
#include "extmem/fault_injector.h"
#include "extmem/status.h"
#include "gens/psi.h"
#include "metrics/collect.h"
#include "metrics/obs.h"
#include "obs/runtime.h"
#include "parallel/parallel_join.h"
#include "query/hypergraph.h"
#include "trace/tracer.h"
#include "workload/constructions.h"

namespace {

using namespace emjoin;

constexpr int kExitUsage = 64;

int ExitCodeFor(const extmem::Status& status) {
  switch (status.code()) {
    case extmem::StatusCode::kOk: return 0;
    case extmem::StatusCode::kInvalidInput: return 65;
    case extmem::StatusCode::kNotFound: return 66;
    case extmem::StatusCode::kDeviceFull: return 69;
    case extmem::StatusCode::kInternal: return 70;
    case extmem::StatusCode::kDataLoss: return 73;
    case extmem::StatusCode::kIoError: return 74;
    case extmem::StatusCode::kBudgetExceeded: return 75;
  }
  return 70;
}

int Fail(const extmem::Status& status) {
  std::fprintf(stderr, "emjoin_export: %s\n", status.ToString().c_str());
  return ExitCodeFor(status);
}

int CheckPromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "emjoin_export: cannot read %s\n", path.c_str());
    return 66;
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::string error;
  if (!metrics::CheckPrometheusText(text, &error)) {
    std::fprintf(stderr, "emjoin_export: %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("%s: conformant Prometheus exposition (%zu bytes)\n",
              path.c_str(), text.size());
  return 0;
}

struct Options {
  std::string workload = "line3";  // line3 | star
  TupleCount n = 4096;
  std::uint32_t petals = 3;
  TupleCount memory = 1 << 12;
  TupleCount block = 1 << 6;
  int loops = 1;
  std::uint32_t shards = 1;
  std::uint32_t workers = 1;
  bool faults = false;
  extmem::FaultConfig fault_config;
};

bool ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty();
}

std::uint64_t BlocksFor(TupleCount tuples, TupleCount block) {
  return (tuples + block - 1) / block;
}

int RunWorkload(const Options& opt) {
  // Analytic phase plan, known before any I/O happens: per loop, the
  // build phase writes the input once, and the join phase is bounded by
  // the Theorem 3 worst case (closed form over sizes/M/B only — the
  // instance-exact PredictBoundExact runs counting oracles that charge
  // I/O, which planning must never do).
  std::vector<TupleCount> sizes;
  query::JoinQuery q;
  if (opt.workload == "line3") {
    sizes = {opt.n, 1, opt.n};
    q = query::JoinQuery::Line(3, sizes);
  } else if (opt.workload == "star") {
    sizes.push_back(1);  // core
    for (std::uint32_t p = 0; p < opt.petals; ++p) sizes.push_back(opt.n);
    q = query::JoinQuery::Star(opt.petals, sizes);
  } else {
    std::fprintf(stderr, "emjoin_export: unknown workload '%s'\n",
                 opt.workload.c_str());
    return kExitUsage;
  }
  std::uint64_t input_blocks = 0;
  for (const TupleCount s : sizes) input_blocks += BlocksFor(s, opt.block);
  long double join_expected =
      gens::PredictBoundWorstCase(q, opt.memory, opt.block).bound;
  if (opt.shards > 1) {
    join_expected += 2.0L * static_cast<long double>(input_blocks);
  }
  std::vector<obs::PhasePlan> plan;
  for (int l = 0; l < opt.loops; ++l) {
    plan.push_back({"build", static_cast<long double>(input_blocks)});
    plan.push_back({"join", join_expected});
  }
  obs::GlobalTelemetry().tracker().SetPlan(std::move(plan));

  metrics::GlobalMetricsRegistry().SetHelp(
      "emjoin_device_io_blocks_total",
      "Block transfers charged to the simulated device, by op and tag");
  metrics::GlobalMetricsRegistry().SetHelp(
      "emjoin_peak_resident_tuples",
      "High-water mark of tuples resident in simulated memory");

  for (int l = 0; l < opt.loops; ++l) {
    extmem::Device dev(opt.memory, opt.block);
    metrics::AttachMetrics(&dev);
    obs::AttachTelemetry(&dev);
    extmem::FaultInjector injector(opt.fault_config);
    if (opt.faults) dev.set_fault_injector(&injector);

    std::vector<storage::Relation> rels;
    {
      trace::Span build_span(&dev, "build");
      auto built = extmem::CatchStatus([&] {
        return opt.workload == "line3"
                   ? workload::L3WorstCase(&dev, opt.n, 1, opt.n)
                   : workload::StarWorstCase(
                         &dev, std::vector<TupleCount>(sizes.begin() + 1,
                                                       sizes.end()));
      });
      if (!built.ok()) return Fail(built.status());
      rels = *std::move(built);
    }

    std::uint64_t results = 0;
    {
      trace::Span join_span(&dev, "join");
      parallel::ParallelOptions poptions;
      poptions.shards = opt.shards;
      poptions.workers = opt.workers;
      poptions.faults = opt.faults;
      poptions.fault_config = opt.fault_config;
      metrics::Registry* merged = metrics::MetricsCollectionEnabled()
                                      ? &metrics::GlobalMetricsRegistry()
                                      : nullptr;
      const auto report = parallel::TryParallelJoinAuto(
          rels, [&results](std::span<const Value>) { ++results; }, poptions,
          merged);
      if (!report.ok()) return Fail(report.status());
    }

    if (metrics::MetricsCollectionEnabled()) {
      metrics::Registry* reg = &metrics::GlobalMetricsRegistry();
      metrics::CollectDeviceDelta(dev, extmem::IoStats{}, {}, reg);
      metrics::CollectFaultStats(dev, reg);
      obs::PublishGlobalMetrics();
    }
    std::printf("loop %d/%d: %s n=%llu -> %llu results, %s\n", l + 1,
                opt.loops, opt.workload.c_str(),
                (unsigned long long)opt.n, (unsigned long long)results,
                dev.stats().ToString().c_str());
  }
  if (!metrics::WriteMetricsFile()) {
    return Fail(extmem::Status(extmem::StatusCode::kInternal,
                               "failed to write metrics"));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--check-prom=", 0) == 0) {
      return CheckPromFile(value("--check-prom="));
    }
    if (arg.rfind("--workload=", 0) == 0) {
      opt.workload = value("--workload=");
    } else if (arg.rfind("--n=", 0) == 0) {
      opt.n = std::strtoull(value("--n=").c_str(), nullptr, 10);
    } else if (arg.rfind("--petals=", 0) == 0) {
      opt.petals = static_cast<std::uint32_t>(
          std::strtoul(value("--petals=").c_str(), nullptr, 10));
    } else if (arg.rfind("--memory=", 0) == 0) {
      opt.memory = std::strtoull(value("--memory=").c_str(), nullptr, 10);
    } else if (arg.rfind("--block=", 0) == 0) {
      opt.block = std::strtoull(value("--block=").c_str(), nullptr, 10);
    } else if (arg.rfind("--loops=", 0) == 0) {
      opt.loops = std::atoi(value("--loops=").c_str());
    } else if (arg.rfind("--shards=", 0) == 0) {
      opt.shards = static_cast<std::uint32_t>(
          std::strtoul(value("--shards=").c_str(), nullptr, 10));
    } else if (arg.rfind("--workers=", 0) == 0) {
      opt.workers = static_cast<std::uint32_t>(
          std::strtoul(value("--workers=").c_str(), nullptr, 10));
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      opt.faults = true;
      opt.fault_config.seed =
          std::strtoull(value("--fault-seed=").c_str(), nullptr, 10);
    } else if (arg.rfind("--fault-read=", 0) == 0) {
      opt.faults = true;
      if (!ParseDouble(value("--fault-read="), &opt.fault_config.read_fail)) {
        std::fprintf(stderr, "emjoin_export: bad probability in %s\n",
                     arg.c_str());
        return kExitUsage;
      }
    } else if (arg.rfind("--fault-write=", 0) == 0) {
      opt.faults = true;
      if (!ParseDouble(value("--fault-write="),
                       &opt.fault_config.write_fail)) {
        std::fprintf(stderr, "emjoin_export: bad probability in %s\n",
                     arg.c_str());
        return kExitUsage;
      }
    } else if (arg.rfind("--fault-torn=", 0) == 0) {
      opt.faults = true;
      if (!ParseDouble(value("--fault-torn="),
                       &opt.fault_config.torn_write)) {
        std::fprintf(stderr, "emjoin_export: bad probability in %s\n",
                     arg.c_str());
        return kExitUsage;
      }
    } else if (arg.rfind("--fault-retries=", 0) == 0) {
      opt.faults = true;
      opt.fault_config.retry.max_retries = static_cast<std::uint32_t>(
          std::strtoul(value("--fault-retries=").c_str(), nullptr, 10));
    } else if (const int obs_flag = metrics::ParseObsFlag(arg);
               obs_flag != 0) {
      if (obs_flag < 0) return kExitUsage;
    } else {
      std::fprintf(stderr,
                   "emjoin_export: unknown flag %s\n"
                   "usage: emjoin_export --check-prom=FILE | emjoin_export "
                   "[--workload=line3|star] [--n=N] [--petals=K] "
                   "[--memory=M] [--block=B] [--loops=L] [--shards=K] "
                   "[--workers=W] [--fault-*] [--export-port=PORT] "
                   "[--export-linger-ms=MS] [--recorder=PATH] "
                   "[--metrics=PATH]\n",
                   arg.c_str());
      return kExitUsage;
    }
  }
  if (opt.loops < 1 || opt.block < 1 || opt.block > opt.memory ||
      opt.n == 0 || opt.petals == 0) {
    std::fprintf(stderr,
                 "emjoin_export: require loops >= 1, n >= 1, petals >= 1, "
                 "1 <= block <= memory\n");
    return kExitUsage;
  }
  if (const extmem::Status status = obs::StartConfiguredExporter();
      !status.ok()) {
    return Fail(status);
  }
  return obs::FinishTelemetry(RunWorkload(opt));
}
