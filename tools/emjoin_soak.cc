// Standalone fault-soak driver (the CI soak job's entry point, and the
// replay tool for seeds printed by failing soak runs).
//
//   emjoin_soak [--runs=N] [--seed=S] [--verbose] [--kill-resume]
//
// Runs N seeded soak plans (seeds S, S+1, ..., S+N-1). Each plan runs
// fault-free first, then with its seeded fault schedule injected; the
// faulted run must end bit-identical to the baseline (same rows and
// order hash — or, when the run degraded under budget shrinks, the same
// rows and output *set*) or in a clean typed error. Any contract
// violation prints the failing seed and exits 1. --seed defaults to a
// time-derived value so CI adds fresh coverage on every run; the chosen
// base seed is always printed for replay.
//
// --kill-resume switches to the kill-and-resume matrix: each seed's join
// is interrupted at a seed-derived virtual-I/O tick while journaling
// into a QueryManifest, then resumed from that manifest, at K = 1 and
// K = 4 shards; the union of the two attempts' outputs must be exactly
// the uninterrupted baseline set with zero duplicate emits.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "extmem/status.h"
#include "workload/soak.h"

int main(int argc, char** argv) {
  using namespace emjoin::workload;

  std::uint64_t runs = 200;
  // lint: allow(determinism) — the time-derived default seed is this
  // driver's documented fresh-coverage mode; the chosen seed is always
  // printed so any run can be replayed bit-identically with --seed.
  std::uint64_t base_seed = static_cast<std::uint64_t>(std::time(nullptr));
  bool verbose = false;
  bool seed_given = false;
  bool kill_resume = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--runs=", 0) == 0) {
      runs = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      base_seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
      seed_given = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--kill-resume") {
      kill_resume = true;
    } else {
      std::fprintf(stderr,
                   "emjoin_soak: usage: emjoin_soak [--runs=N] [--seed=S] "
                   "[--verbose] [--kill-resume]\n");
      return 64;
    }
  }

  if (kill_resume) {
    std::printf("[soak] kill-resume: base seed %llu (%s), %llu runs x "
                "K in {1, 4}\n",
                (unsigned long long)base_seed,
                seed_given ? "given" : "time-derived",
                (unsigned long long)runs);
    std::uint64_t interrupted = 0, uninterrupted = 0, violations = 0;
    for (std::uint64_t seed = base_seed; seed < base_seed + runs; ++seed) {
      for (const std::uint32_t shards : {1u, 4u}) {
        const KillResumeOutcome out = RunKillResume(seed, shards);
        if (verbose || !out.ok) {
          std::printf("[soak] seed=%llu K=%u tick=%llu -> %s "
                      "(baseline=%llu pre_kill=%llu resumed=%llu)%s%s\n",
                      (unsigned long long)seed, shards,
                      (unsigned long long)out.kill_tick,
                      out.ok ? (out.interrupted ? "ok" : "ok (no interrupt)")
                             : "VIOLATION",
                      (unsigned long long)out.baseline_rows,
                      (unsigned long long)out.pre_kill_rows,
                      (unsigned long long)out.resumed_rows,
                      out.detail.empty() ? "" : ": ", out.detail.c_str());
        }
        if (!out.ok) {
          ++violations;
          std::fprintf(stderr,
                       "[soak]   replay: emjoin_soak --kill-resume "
                       "--seed=%llu --runs=1 --verbose\n",
                       (unsigned long long)seed);
        } else if (out.interrupted) {
          ++interrupted;
        } else {
          ++uninterrupted;
        }
      }
    }
    std::printf("[soak] kill-resume done: %llu resumed bit-identical, "
                "%llu never interrupted, %llu violations\n",
                (unsigned long long)interrupted,
                (unsigned long long)uninterrupted,
                (unsigned long long)violations);
    return violations != 0 ? 1 : 0;
  }

  std::printf("[soak] base seed %llu (%s), %llu runs\n",
              (unsigned long long)base_seed,
              seed_given ? "given" : "time-derived",
              (unsigned long long)runs);

  std::uint64_t completed = 0, typed_errors = 0, violations = 0;
  for (std::uint64_t seed = base_seed; seed < base_seed + runs; ++seed) {
    const SoakPlan plan = PlanFromSeed(seed);
    const SoakOutcome baseline = RunPlan(plan, /*inject=*/false);
    if (!baseline.completed) {
      ++violations;
      std::fprintf(stderr, "[soak] VIOLATION: fault-free baseline failed\n");
      std::fprintf(stderr, "[soak]   %s\n",
                   ReplayLine(plan, baseline).c_str());
      continue;
    }
    const SoakOutcome faulted = RunPlan(plan, /*inject=*/true);
    if (verbose) {
      std::printf("[soak] %s\n", ReplayLine(plan, faulted).c_str());
    }
    if (faulted.completed) {
      ++completed;
      // Budget shrinks legally re-plan chunk fan-in, which reorders
      // emissions; the output *set* must still be bit-identical.
      const bool order_ok = faulted.hash == baseline.hash;
      const bool set_ok = faulted.fault_stats.shrinks > 0 &&
                          faulted.set_hash == baseline.set_hash;
      if (faulted.rows != baseline.rows || (!order_ok && !set_ok)) {
        ++violations;
        std::fprintf(stderr,
                     "[soak] VIOLATION: output diverged from baseline "
                     "(rows %llu vs %llu)\n",
                     (unsigned long long)faulted.rows,
                     (unsigned long long)baseline.rows);
        std::fprintf(stderr, "[soak]   %s\n",
                     ReplayLine(plan, faulted).c_str());
        std::fprintf(stderr, "[soak]   replay: emjoin_soak --seed=%llu "
                             "--runs=1 --verbose\n",
                     (unsigned long long)seed);
      }
    } else if (faulted.status.ok() || faulted.status.message().empty()) {
      ++violations;
      std::fprintf(stderr,
                   "[soak] VIOLATION: failed run without a typed error\n");
      std::fprintf(stderr, "[soak]   %s\n", ReplayLine(plan, faulted).c_str());
    } else {
      ++typed_errors;
    }
  }

  std::printf("[soak] done: %llu bit-identical, %llu clean typed errors, "
              "%llu violations\n",
              (unsigned long long)completed, (unsigned long long)typed_errors,
              (unsigned long long)violations);
  if (violations != 0) {
    std::fprintf(stderr, "[soak] FAILED: replay with emjoin_soak "
                         "--seed=<printed seed> --runs=1 --verbose\n");
    return 1;
  }
  return 0;
}
