// emjoin_audit: the Table 1 optimality auditor.
//
// Runs every CostModel (src/metrics/cost_model.h) — one per Table 1
// query class, plus the GenS eq. (4) bound and the Yannakakis gap
// baseline — over its geometric n-series and M-series on fresh
// simulated devices, fits the measured log-log exponent against the
// claimed closed form, and writes AUDIT_table1.json with a per-row
// PASS/FAIL verdict. CI runs this on every push and gates on the
// committed baseline via bench_diff (see bench/baselines/).
//
// Usage:
//   emjoin_audit [--out=PATH] [--model=NAME] [--list]
//                [--slope-tol=F] [--max-ratio=F]
//
// Exit codes: 0 all audited rows PASS, 1 any FAIL, 2 usage error,
// 74 the output file cannot be written.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/cost_model.h"
#include "metrics/parallel_audit.h"

namespace {

using emjoin::metrics::AuditOptions;
using emjoin::metrics::AuditRow;
using emjoin::metrics::CostModel;

int Usage() {
  std::fprintf(stderr,
               "usage: emjoin_audit [--out=PATH] [--model=NAME] [--list]\n"
               "                    [--slope-tol=F] [--max-ratio=F]\n");
  return 2;
}

void PrintRow(const AuditRow& row) {
  std::printf("%-18s %-4s  n-slope %6.3f vs %6.3f   M-slope %6.3f vs "
              "%6.3f   ratio [%.2f, %.2f]\n",
              row.name.c_str(), row.pass ? "PASS" : "FAIL",
              row.n_fit.measured, row.n_fit.expected, row.m_fit.measured,
              row.m_fit.expected, row.ratio_min, row.ratio_max);
  for (const std::string& f : row.failures) {
    std::printf("    ! %s\n", f.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "AUDIT_table1.json";
  std::string only_model;
  bool list_only = false;
  AuditOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else if (arg.rfind("--model=", 0) == 0) {
      only_model = std::string(arg.substr(8));
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg.rfind("--slope-tol=", 0) == 0) {
      options.slope_tol = std::atof(arg.substr(12).data());
    } else if (arg.rfind("--max-ratio=", 0) == 0) {
      options.max_ratio = std::atof(arg.substr(12).data());
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", std::string(arg).c_str());
      return Usage();
    }
  }

  std::vector<CostModel> models = emjoin::metrics::Table1Models();
  if (list_only) {
    for (const CostModel& m : models) {
      std::printf("%-18s %s\n    %s\n", m.name.c_str(), m.row.c_str(),
                  m.claim.c_str());
    }
    for (const std::string& name : emjoin::metrics::ParallelAuditNames()) {
      std::printf("%-18s parallel speedup (sharded execution)\n",
                  name.c_str());
    }
    return 0;
  }
  // The parallel-speedup rows are not CostModels (no closed-form n/M
  // series); they are filtered by the same --model flag and appended
  // after the Table 1 rows.
  bool run_table1 = true;
  std::string only_parallel;
  if (!only_model.empty()) {
    if (emjoin::metrics::IsParallelAuditName(only_model)) {
      run_table1 = false;
      only_parallel = only_model;
    } else {
      std::vector<CostModel> filtered;
      for (CostModel& m : models) {
        if (m.name == only_model) filtered.push_back(std::move(m));
      }
      if (filtered.empty()) {
        std::fprintf(stderr, "no model named '%s' (see --list)\n",
                     only_model.c_str());
        return 2;
      }
      models = std::move(filtered);
    }
  }

  std::vector<AuditRow> rows;
  if (run_table1) {
    std::printf("auditing %zu cost models...\n", models.size());
    rows.reserve(models.size());
    for (const CostModel& m : models) {
      rows.push_back(emjoin::metrics::RunAudit(m, options));
      PrintRow(rows.back());
    }
  }
  if (only_model.empty() || !only_parallel.empty()) {
    for (AuditRow& row :
         emjoin::metrics::RunParallelAudits(options, only_parallel)) {
      PrintRow(row);
      rows.push_back(std::move(row));
    }
  }

  if (!emjoin::metrics::WriteAuditJson(rows, options, out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 74;
  }

  bool all_pass = true;
  for (const AuditRow& r : rows) all_pass = all_pass && r.pass;
  std::printf("%s -> %s\n", all_pass ? "ALL PASS" : "FAILURES",
              out_path.c_str());
  return all_pass ? 0 : 1;
}
