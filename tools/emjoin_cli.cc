// emjoin command-line tool.
//
//   emjoin_cli join [--memory M] [--block B] [--print] [--algo auto|yann]
//              [--shards=K] [--workers=W]
//              [--stats] [--trace[=PATH]] [--trace-format=tree|jsonl|chrome]
//              [--metrics=PATH] [--metrics-format=json|prom] [--audit=PATH]
//              [--export-port=PORT] [--export-linger-ms=MS]
//              [--recorder=PATH]
//              [--fault-seed=N] [--fault-read=P] [--fault-write=P]
//              [--fault-torn=P] [--fault-capacity=BLOCKS]
//              [--fault-shrink-at=IOS[,IOS...]] [--fault-shrink-every-poll]
//              [--fault-retries=K] [--fault-adaptive-retry]
//              [--fault-kill-at=IOS] [--resume=MANIFEST]
//              "attr1,attr2=path.csv" ...
//       Loads CSV relations (unsigned integer columns; attributes are
//       matched by name across relations), runs the optimal join, and
//       reports result count and I/O statistics. --stats adds the per-tag
//       I/O breakdown and the peak-memory gauge; --trace records a span
//       tree of the run (tree report to stdout or PATH; jsonl / chrome
//       formats require a PATH, the latter loads in Perfetto).
//       --metrics exports the process metrics registry (counters,
//       gauges, log-bucketed histograms) as JSON or Prometheus text;
//       --audit writes a one-row measured-vs-Theorem-3 audit of the
//       join in the bench_diff-gateable shape. The
//       --fault-* flags attach a seeded fault injector to the device
//       (see docs/ROBUSTNESS.md); a run that cannot recover exits with
//       the code for its typed error. --fault-kill-at interrupts the
//       run at a virtual-I/O tick (exit 74); --resume=MANIFEST journals
//       the query through a QueryManifest persisted at MANIFEST on
//       every exit path — rerunning with the same --resume after an
//       interrupted run resumes it, replaying the full output set
//       exactly once (see docs/ROBUSTNESS.md). --export-port serves live
//       /metrics, /healthz, /progress, and /events over HTTP for the
//       duration of the run (plus --export-linger-ms for one final
//       scrape); --recorder dumps the flight-recorder event log as
//       JSONL on exit, success or failure (see docs/OBSERVABILITY.md).
//
//   emjoin_cli plan [--memory M] [--block B] "attr1,attr2:SIZE" ...
//       No data: prints the query classification, GenS families and the
//       Theorem 3 worst-case bound for the given relation sizes.
//
//   emjoin_cli demo
//       Runs the built-in Figure 3 worst case end to end.
//
// Exit codes (one failure class each, always with a one-line stderr
// message prefixed "emjoin_cli:"):
//   0   success
//   64  usage error (unknown flag/command, malformed argument syntax)
//   65  bad input data (CSV parse error, bad schema, non-acyclic query)
//   66  input file missing or unreadable
//   69  simulated device full
//   70  internal error
//   73  unrecoverable torn write (data loss)
//   74  I/O fault retries exhausted
//   75  enforced memory budget exceeded
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/dispatch.h"
#include "core/yannakakis.h"
#include "extmem/fault_injector.h"
#include "extmem/status.h"
#include "gens/gens.h"
#include "gens/psi.h"
#include "metrics/collect.h"
#include "metrics/obs.h"
#include "obs/runtime.h"
#include "parallel/parallel_join.h"
#include "query/classify.h"
#include "recover/manifest.h"
#include "recover/resume.h"
#include "storage/csv.h"
#include "trace/sinks.h"
#include "trace/tracer.h"
#include "workload/constructions.h"

namespace {

using namespace emjoin;

// Sysexits-style map; every StatusCode has a distinct exit code so shell
// callers (and the soak CI job) can tell failure classes apart.
constexpr int kExitUsage = 64;

int ExitCodeFor(const extmem::Status& status) {
  switch (status.code()) {
    case extmem::StatusCode::kOk: return 0;
    case extmem::StatusCode::kInvalidInput: return 65;
    case extmem::StatusCode::kNotFound: return 66;
    case extmem::StatusCode::kDeviceFull: return 69;
    case extmem::StatusCode::kInternal: return 70;
    case extmem::StatusCode::kDataLoss: return 73;
    case extmem::StatusCode::kIoError: return 74;
    case extmem::StatusCode::kBudgetExceeded: return 75;
  }
  return 70;
}

// One-line stderr diagnostic + mapped exit code.
int Fail(const extmem::Status& status) {
  std::fprintf(stderr, "emjoin_cli: %s\n", status.ToString().c_str());
  return ExitCodeFor(status);
}

int FailUsage(const std::string& message) {
  std::fprintf(stderr, "emjoin_cli: usage: %s\n", message.c_str());
  return kExitUsage;
}

struct CommonFlags {
  TupleCount memory = 1 << 16;
  TupleCount block = 1 << 10;
  bool print = false;
  bool stats = false;
  bool trace = false;
  std::string trace_path;              // empty: tree report to stdout
  std::string trace_format = "tree";   // tree | jsonl | chrome
  std::string algo = "auto";
  std::uint32_t shards = 1;
  std::uint32_t workers = 1;
  bool faults = false;
  extmem::FaultConfig fault_config;
  std::string resume_path;  // empty: no manifest
  std::vector<std::string> positional;
};

bool ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty();
}

// Returns 0 on success, else the exit code for the flag error.
int ParseFlags(int argc, char** argv, int start, CommonFlags* out) {
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq_value = [&](const char* prefix) {
      return arg.substr(std::strlen(prefix));
    };
    auto next = [&](TupleCount* dst) {
      if (i + 1 >= argc) return false;
      *dst = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    if (arg == "--memory") {
      if (!next(&out->memory)) return FailUsage("missing value after " + arg);
    } else if (arg == "--block") {
      if (!next(&out->block)) return FailUsage("missing value after " + arg);
    } else if (arg == "--print") {
      out->print = true;
    } else if (arg == "--stats") {
      out->stats = true;
    } else if (arg == "--trace") {
      out->trace = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      out->trace = true;
      out->trace_path = eq_value("--trace=");
    } else if (arg.rfind("--trace-format=", 0) == 0) {
      out->trace = true;
      out->trace_format = eq_value("--trace-format=");
      if (out->trace_format != "tree" && out->trace_format != "jsonl" &&
          out->trace_format != "chrome") {
        return FailUsage("unknown trace format '" + out->trace_format + "'");
      }
    } else if (arg == "--algo") {
      if (i + 1 >= argc) return FailUsage("missing value after --algo");
      out->algo = argv[++i];
    } else if (arg.rfind("--shards=", 0) == 0) {
      out->shards = static_cast<std::uint32_t>(
          std::strtoul(eq_value("--shards=").c_str(), nullptr, 10));
      if (out->shards == 0) return FailUsage("--shards must be >= 1");
    } else if (arg.rfind("--workers=", 0) == 0) {
      out->workers = static_cast<std::uint32_t>(
          std::strtoul(eq_value("--workers=").c_str(), nullptr, 10));
      if (out->workers == 0) return FailUsage("--workers must be >= 1");
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      out->faults = true;
      out->fault_config.seed =
          std::strtoull(eq_value("--fault-seed=").c_str(), nullptr, 10);
    } else if (arg.rfind("--fault-read=", 0) == 0) {
      out->faults = true;
      if (!ParseDouble(eq_value("--fault-read="),
                       &out->fault_config.read_fail)) {
        return FailUsage("bad probability in " + arg);
      }
    } else if (arg.rfind("--fault-write=", 0) == 0) {
      out->faults = true;
      if (!ParseDouble(eq_value("--fault-write="),
                       &out->fault_config.write_fail)) {
        return FailUsage("bad probability in " + arg);
      }
    } else if (arg.rfind("--fault-torn=", 0) == 0) {
      out->faults = true;
      if (!ParseDouble(eq_value("--fault-torn="),
                       &out->fault_config.torn_write)) {
        return FailUsage("bad probability in " + arg);
      }
    } else if (arg.rfind("--fault-capacity=", 0) == 0) {
      out->faults = true;
      out->fault_config.device_capacity_blocks =
          std::strtoull(eq_value("--fault-capacity=").c_str(), nullptr, 10);
    } else if (arg.rfind("--fault-shrink-at=", 0) == 0) {
      out->faults = true;
      const std::string list = eq_value("--fault-shrink-at=");
      std::size_t pos = 0;
      while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        out->fault_config.shrink_at_ios.push_back(
            std::strtoull(list.substr(pos, end - pos).c_str(), nullptr, 10));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (arg == "--fault-shrink-every-poll") {
      out->faults = true;
      out->fault_config.shrink_every_poll = true;
    } else if (arg.rfind("--fault-retries=", 0) == 0) {
      out->faults = true;
      out->fault_config.retry.max_retries = static_cast<std::uint32_t>(
          std::strtoul(eq_value("--fault-retries=").c_str(), nullptr, 10));
    } else if (arg == "--fault-adaptive-retry") {
      out->faults = true;
      out->fault_config.adaptive_retry = true;
    } else if (arg.rfind("--fault-kill-at=", 0) == 0) {
      out->faults = true;
      out->fault_config.kill_at_ios =
          std::strtoull(eq_value("--fault-kill-at=").c_str(), nullptr, 10);
      if (out->fault_config.kill_at_ios == 0) {
        return FailUsage("--fault-kill-at must be >= 1");
      }
    } else if (arg.rfind("--resume=", 0) == 0) {
      out->resume_path = eq_value("--resume=");
      if (out->resume_path.empty()) {
        return FailUsage("--resume requires a manifest path");
      }
    } else if (const int obs = metrics::ParseObsFlag(arg); obs != 0) {
      // --metrics=PATH / --metrics-format=... / --audit=PATH, shared
      // with the benches (bench/bench_util.h). Diagnostics for obs < 0
      // were already printed.
      if (obs < 0) return kExitUsage;
    } else if (arg.rfind("--", 0) == 0) {
      return FailUsage("unknown flag " + arg);
    } else {
      out->positional.push_back(arg);
    }
  }
  if (out->block < 1 || out->block > out->memory) {
    return FailUsage("require 1 <= block <= memory");
  }
  if (out->trace && out->trace_format != "tree" && out->trace_path.empty()) {
    return FailUsage("--trace-format=" + out->trace_format +
                     " requires --trace=PATH");
  }
  return 0;
}

// Flushes a recorded trace to the sink the flags selected. Returns 0 on
// success, 70 when the output file cannot be written.
int WriteTrace(const trace::Tracer& tracer, const CommonFlags& flags) {
  bool ok = true;
  if (flags.trace_format == "jsonl") {
    ok = trace::WriteJsonl(tracer, flags.trace_path);
  } else if (flags.trace_format == "chrome") {
    ok = trace::WriteChromeTrace(tracer, flags.trace_path);
  } else if (flags.trace_path.empty()) {
    std::fputs(trace::TreeReport(tracer).c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(flags.trace_path.c_str(), "w");
    ok = f != nullptr;
    if (ok) {
      std::fputs(trace::TreeReport(tracer).c_str(), f);
      std::fclose(f);
    }
  }
  if (!ok) {
    return Fail(extmem::Status(extmem::StatusCode::kInternal,
                               "failed to write trace to " +
                                   flags.trace_path));
  }
  if (!flags.trace_path.empty()) {
    std::printf("trace:     %zu spans (%s) -> %s\n", tracer.spans().size(),
                flags.trace_format.c_str(), flags.trace_path.c_str());
  }
  return 0;
}

int CmdJoin(const CommonFlags& flags) {
  extmem::Device dev(flags.memory, flags.block);
  trace::Tracer tracer;
  if (flags.trace) dev.set_tracer(&tracer);
  metrics::AttachMetrics(&dev);
  obs::AttachTelemetry(&dev);
  extmem::FaultInjector injector(flags.fault_config);
  if (flags.faults) dev.set_fault_injector(&injector);

  std::vector<std::string> names;
  std::vector<storage::Relation> rels;

  {
    trace::Span load_span(&dev, "load");
    for (const std::string& spec : flags.positional) {
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        return FailUsage("expected 'attrs=path.csv', got '" + spec + "'");
      }
      auto schema = storage::ParseSchemaSpec(spec.substr(0, eq), &names);
      if (!schema.ok()) return Fail(schema.status());
      auto rel = storage::RelationFromCsvFile(&dev, *std::move(schema),
                                              spec.substr(eq + 1));
      if (!rel.ok()) return Fail(rel.status());
      std::printf("loaded %s: %llu tuples\n", spec.c_str(),
                  (unsigned long long)rel->size());
      rels.push_back(*std::move(rel));
    }
  }
  if (rels.empty()) return FailUsage("no relations given");

  if (obs::TelemetryConfigured()) {
    // Phase plan for /progress: the Theorem 3 worst-case bound is a
    // closed form over (sizes, M, B) — unlike PredictBoundExact it runs
    // no counting oracles, so planning telemetry charges zero I/Os.
    query::JoinQuery q;
    for (const auto& r : rels) q.AddRelation(r.schema(), r.size());
    if (q.IsBergeAcyclic()) {
      long double expected =
          gens::PredictBoundWorstCase(q, dev.M(), dev.B()).bound;
      if (flags.shards > 1) {
        // Sharded runs pay one extra write+read pass to redistribute.
        std::uint64_t input_blocks = 0;
        for (const auto& r : rels) {
          input_blocks += (r.size() + dev.B() - 1) / dev.B();
        }
        expected += 2.0L * static_cast<long double>(input_blocks);
      }
      obs::GlobalTelemetry().tracker().SetPlan({{"join", expected}});
    }
  }

  const core::ResultSchema schema = core::MakeResultSchema(rels);
  std::printf("result schema:");
  for (storage::AttrId a : schema.attrs) {
    std::printf(" %s", names[a].c_str());
  }
  std::printf("\n");

  // Whole-query resume: load the manifest if it exists (a missing file
  // just means a fresh run) and persist it after the join on every exit
  // path — success or typed failure — so the next invocation with the
  // same --resume picks up exactly where this one stopped.
  recover::QueryManifest manifest;
  const bool resuming = !flags.resume_path.empty();
  if (resuming) {
    const extmem::Status s = manifest.ReadFrom(flags.resume_path);
    if (s.ok()) {
      std::printf("manifest:  loaded %s (%llu rows journaled)\n",
                  flags.resume_path.c_str(),
                  (unsigned long long)manifest.journal().rows());
    } else if (s.code() != extmem::StatusCode::kNotFound) {
      return Fail(s);
    }
    if (flags.algo == "yann") {
      return FailUsage("--resume requires --algo auto");
    }
  }

  std::uint64_t count = 0;
  const auto emit = [&](std::span<const Value> row) {
    ++count;
    if (flags.print) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        std::printf(i == 0 ? "%llu" : ",%llu", (unsigned long long)row[i]);
      }
      std::printf("\n");
    }
  };

  const extmem::IoStats join_before = dev.stats();
  extmem::Status join_status = extmem::Status::Ok();
  {
    // Scoped so the planned "join" phase closes before the audit path's
    // counting-oracle I/O (which runs outside the measured window).
    trace::Span join_span(&dev, "join");
    if (flags.algo == "yann") {
      if (flags.shards > 1) {
        return FailUsage("--shards requires --algo auto");
      }
      const auto report = core::TryYannakakisJoin(rels, emit);
      if (!report.ok()) return Fail(report.status());
      std::printf("algorithm: Yannakakis (baseline)\n");
    } else if (flags.shards > 1) {
      parallel::ParallelOptions poptions;
      poptions.shards = flags.shards;
      poptions.workers = flags.workers;
      poptions.faults = flags.faults;
      poptions.fault_config = flags.fault_config;
      if (resuming) {
        poptions.manifest = &manifest;
        // A loaded manifest whose query completed replays nothing at
        // the shard barrier (every row is already in the query-level
        // journal), so deliver the journal up front; an interrupted
        // manifest has an empty query journal and this emits nothing.
        manifest.journal().ReplayInto(emit);
      }
      metrics::Registry* merged = metrics::MetricsCollectionEnabled()
                                      ? &metrics::GlobalMetricsRegistry()
                                      : nullptr;
      const auto report =
          parallel::TryParallelJoinAuto(rels, emit, poptions, merged);
      if (!report.ok()) {
        join_status = report.status();
      } else {
        std::printf("algorithm: %s (%s)\n",
                    report->auto_report.algorithm.c_str(),
                    report->auto_report.reason.c_str());
        std::printf("shards:    %u x %s, %u workers; critical path %llu "
                    "I/Os, total %llu\n",
                    report->shards, names[report->partition_attr].c_str(),
                    report->workers,
                    (unsigned long long)report->max_shard_ios,
                    (unsigned long long)report->sum_shard_ios);
        if (flags.stats) {
          for (std::size_t s = 0; s < report->per_shard.size(); ++s) {
            const parallel::ShardReport& sr = report->per_shard[s];
            std::printf("shard %zu:   %s, results=%llu, peak mem %llu "
                        "tuples (%s)\n",
                        s, sr.io.ToString().c_str(),
                        (unsigned long long)sr.results,
                        (unsigned long long)sr.peak_resident,
                        sr.report.algorithm.c_str());
          }
        }
      }
    } else if (resuming) {
      recover::ResumeOptions ropts;
      // The CLI's output is the terminal sink, so a resumed run replays
      // the watermark too — the printed output is the full result set.
      ropts.replay_watermark = true;
      const auto report =
          recover::TryResumableJoinAuto(rels, emit, &manifest, ropts);
      if (!report.ok()) {
        join_status = report.status();
      } else {
        std::printf("algorithm: %s (%s)\n", report->join.algorithm.c_str(),
                    report->join.reason.c_str());
        std::printf("resume:    %llu rows replayed from watermark, %llu "
                    "new\n",
                    (unsigned long long)report->watermark_rows,
                    (unsigned long long)report->emitted_rows);
      }
    } else {
      const auto report = core::TryJoinAuto(rels, emit);
      if (!report.ok()) return Fail(report.status());
      std::printf("algorithm: %s (%s)\n", report->algorithm.c_str(),
                  report->reason.c_str());
    }
  }
  if (resuming) {
    // Persist on success AND typed failure: the manifest written after
    // an interrupted run is what the next invocation resumes from.
    if (const extmem::Status s = manifest.WriteTo(flags.resume_path);
        !s.ok()) {
      if (join_status.ok()) return Fail(s);
      std::fprintf(stderr, "emjoin_cli: %s\n", s.ToString().c_str());
    } else {
      std::printf("manifest:  wrote %s (%llu rows journaled)\n",
                  flags.resume_path.c_str(),
                  (unsigned long long)manifest.journal().rows());
    }
  }
  if (!join_status.ok()) return Fail(join_status);
  std::printf("results:   %llu\n", (unsigned long long)count);
  std::printf("I/O:       %s\n", dev.stats().ToString().c_str());
  if (flags.faults) {
    std::printf("faults:    %s\n", injector.Describe().c_str());
  }
  if (flags.stats) {
    std::printf("breakdown: %s\n", dev.TagReport().c_str());
    std::printf("peak mem:  %llu tuples (M = %llu)\n",
                (unsigned long long)dev.gauge().high_water(),
                (unsigned long long)dev.M());
  }
  const std::uint64_t join_ios = (dev.stats() - join_before).total();
  if (metrics::MetricsCollectionEnabled()) {
    metrics::Registry* reg = &metrics::GlobalMetricsRegistry();
    metrics::CollectDeviceDelta(dev, extmem::IoStats{}, {}, reg);
    metrics::CollectFaultStats(dev, reg);
    // WriteMetricsFile is a no-op unless --metrics was given; the
    // exporter's /metrics body is refreshed by FinishTelemetry.
    if (!metrics::WriteMetricsFile()) {
      return Fail(extmem::Status(extmem::StatusCode::kInternal,
                                 "failed to write metrics"));
    }
  }
  const std::string& audit_path = metrics::GlobalObsConfig().audit_path;
  if (!audit_path.empty()) {
    // One-row audit of this join against the instance-exact Theorem 3
    // bound, in the same shape the benches and emjoin_audit write so
    // bench_diff can gate it. The bound is computed after the measured
    // window, so its counting-oracle work never pollutes join_ios.
    query::JoinQuery q;
    for (const auto& r : rels) q.AddRelation(r.schema(), r.size());
    const long double bound =
        gens::PredictBoundExact(q, rels, dev.M(), dev.B()).bound;
    const double ratio =
        bound > 0 ? static_cast<double>(join_ios) /
                        static_cast<double>(bound)
                  : 0.0;
    // One-sided, like emjoin_audit: the claim is an upper bound, and
    // the additive slack absorbs partial-block rounding on instances
    // small enough that ceil(n/B) terms dominate the closed form.
    const bool pass = static_cast<double>(join_ios) <=
                      64.0 * static_cast<double>(bound) + 64.0;
    std::FILE* f = std::fopen(audit_path.c_str(), "w");
    if (f == nullptr) {
      return Fail(extmem::Status(extmem::StatusCode::kInternal,
                                 "failed to write " + audit_path));
    }
    std::fprintf(f,
                 "{\n  \"schema\": \"emjoin-bench-audit-v1\",\n"
                 "  \"all_pass\": %s,\n  \"rows\": [\n"
                 "    {\"name\": \"cli_join|M=%llu|B=%llu\", "
                 "\"measured\": %llu, \"expected\": %.3Lf, "
                 "\"ratio\": %.4f, \"verdict\": \"%s\"}\n  ]\n}\n",
                 pass ? "true" : "false", (unsigned long long)dev.M(),
                 (unsigned long long)dev.B(),
                 (unsigned long long)join_ios, bound, ratio,
                 pass ? "PASS" : "FAIL");
    std::fclose(f);
    std::printf("audit:     %s (measured/bound = %.2f) -> %s\n",
                pass ? "PASS" : "FAIL", ratio, audit_path.c_str());
  }
  if (flags.trace) return WriteTrace(tracer, flags);
  return 0;
}

int CmdPlan(const CommonFlags& flags) {
  std::vector<std::string> names;
  query::JoinQuery q;
  for (const std::string& spec : flags.positional) {
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
      return FailUsage("expected 'attrs:SIZE', got '" + spec + "'");
    }
    auto schema = storage::ParseSchemaSpec(spec.substr(0, colon), &names);
    if (!schema.ok()) return Fail(schema.status());
    const TupleCount size =
        std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
    if (size == 0) {
      return Fail(extmem::Status(extmem::StatusCode::kInvalidInput,
                                 "bad size in '" + spec + "'"));
    }
    q.AddRelation(*schema, size);
  }
  if (q.num_edges() == 0) return FailUsage("no relations given");
  if (!q.IsBergeAcyclic()) {
    return Fail(extmem::Status(extmem::StatusCode::kInvalidInput,
                               "query is not Berge-acyclic; only acyclic "
                               "joins are supported"));
  }

  std::printf("query: %s\n", q.ToString().c_str());
  std::printf("roles:");
  for (query::EdgeId e = 0; e < q.num_edges(); ++e) {
    const char* kind = "internal";
    switch (query::ClassifyEdge(q, e)) {
      case query::EdgeKind::kIsland: kind = "island"; break;
      case query::EdgeKind::kBud: kind = "bud"; break;
      case query::EdgeKind::kLeaf: kind = "leaf"; break;
      case query::EdgeKind::kInternal: kind = "internal"; break;
    }
    std::printf(" R%u=%s", e, kind);
  }
  std::printf("\n");

  const auto families = gens::GenSFamilies(q);
  std::printf("GenS(Q): %zu minimal families\n", families.size());
  const gens::BoundReport report =
      gens::PredictBoundWorstCase(q, flags.memory, flags.block);
  std::printf("Theorem 3 worst-case bound (M=%llu, B=%llu): %.1Lf I/Os\n",
              (unsigned long long)flags.memory,
              (unsigned long long)flags.block, report.bound);
  std::printf("dominant terms:\n");
  for (std::size_t i = 0; i < report.terms.size() && i < 5; ++i) {
    std::printf("  psi(%s) = %.1Lf\n",
                gens::FamilyToString({report.terms[i].first}).c_str(),
                report.terms[i].second);
  }
  return 0;
}

int CmdDemo() {
  extmem::Device dev(256, 16);
  const auto rels = workload::L3WorstCase(&dev, 1024, 1, 1024);
  std::uint64_t count = 0;
  const auto report =
      core::TryJoinAuto(rels, [&](std::span<const Value>) { ++count; });
  if (!report.ok()) return Fail(report.status());
  std::printf("demo: Figure 3 L3 worst case, N = 1024, M = 256, B = 16\n");
  std::printf("algorithm: %s\n", report->algorithm.c_str());
  std::printf("results:   %llu (= N^2)\n", (unsigned long long)count);
  std::printf("I/O:       %s\n", dev.stats().ToString().c_str());
  std::printf("breakdown: %s\n", dev.TagReport().c_str());
  std::printf("bound:     N^2/(MB) = %.0f\n",
              1024.0 * 1024.0 / (dev.M() * dev.B()));
  return 0;
}

int Usage() {
  return FailUsage(
      "emjoin_cli join [--memory M] [--block B] [--print] "
      "[--algo auto|yann] [--shards=K] [--workers=W] "
      "[--export-port=PORT] [--recorder=PATH] "
      "[--fault-seed=N ...] [--fault-kill-at=IOS] [--resume=MANIFEST] "
      "attrs=file.csv ... | "
      "emjoin_cli plan [--memory M] [--block B] attrs:SIZE ... | "
      "emjoin_cli demo");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  CommonFlags flags;
  if (const int code = ParseFlags(argc, argv, 2, &flags); code != 0) {
    return code;
  }
  if (cmd == "join") {
    if (const extmem::Status status = obs::StartConfiguredExporter();
        !status.ok()) {
      return Fail(status);
    }
    // FinishTelemetry runs on every exit path so a failed run still
    // dumps its flight recorder and serves one last /progress.
    return obs::FinishTelemetry(CmdJoin(flags));
  }
  if (cmd == "plan") return CmdPlan(flags);
  if (cmd == "demo") return CmdDemo();
  return Usage();
}
