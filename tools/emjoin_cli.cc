// emjoin command-line tool.
//
//   emjoin_cli join [--memory M] [--block B] [--print] [--algo auto|yann]
//              [--stats] [--trace[=PATH]] [--trace-format=tree|jsonl|chrome]
//              "attr1,attr2=path.csv" ...
//       Loads CSV relations (unsigned integer columns; attributes are
//       matched by name across relations), runs the optimal join, and
//       reports result count and I/O statistics. --stats adds the per-tag
//       I/O breakdown and the peak-memory gauge; --trace records a span
//       tree of the run (tree report to stdout or PATH; jsonl / chrome
//       formats require a PATH, the latter loads in Perfetto).
//
//   emjoin_cli plan [--memory M] [--block B] "attr1,attr2:SIZE" ...
//       No data: prints the query classification, GenS families and the
//       Theorem 3 worst-case bound for the given relation sizes.
//
//   emjoin_cli demo
//       Runs the built-in Figure 3 worst case end to end.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/dispatch.h"
#include "core/yannakakis.h"
#include "gens/gens.h"
#include "gens/psi.h"
#include "query/classify.h"
#include "storage/csv.h"
#include "trace/sinks.h"
#include "trace/tracer.h"
#include "workload/constructions.h"

namespace {

using namespace emjoin;

struct CommonFlags {
  TupleCount memory = 1 << 16;
  TupleCount block = 1 << 10;
  bool print = false;
  bool stats = false;
  bool trace = false;
  std::string trace_path;              // empty: tree report to stdout
  std::string trace_format = "tree";   // tree | jsonl | chrome
  std::string algo = "auto";
  std::vector<std::string> positional;
};

bool ParseFlags(int argc, char** argv, int start, CommonFlags* out) {
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](TupleCount* dst) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value after %s\n", arg.c_str());
        return false;
      }
      *dst = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    if (arg == "--memory") {
      if (!next(&out->memory)) return false;
    } else if (arg == "--block") {
      if (!next(&out->block)) return false;
    } else if (arg == "--print") {
      out->print = true;
    } else if (arg == "--stats") {
      out->stats = true;
    } else if (arg == "--trace") {
      out->trace = true;
    } else if (arg.rfind("--trace=", 0) == 0) {
      out->trace = true;
      out->trace_path = arg.substr(std::strlen("--trace="));
    } else if (arg.rfind("--trace-format=", 0) == 0) {
      out->trace = true;
      out->trace_format = arg.substr(std::strlen("--trace-format="));
      if (out->trace_format != "tree" && out->trace_format != "jsonl" &&
          out->trace_format != "chrome") {
        std::fprintf(stderr, "unknown trace format '%s'\n",
                     out->trace_format.c_str());
        return false;
      }
    } else if (arg == "--algo") {
      if (i + 1 >= argc) return false;
      out->algo = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return false;
    } else {
      out->positional.push_back(arg);
    }
  }
  if (out->block < 1 || out->block > out->memory) {
    std::fprintf(stderr, "require 1 <= block <= memory\n");
    return false;
  }
  if (out->trace && out->trace_format != "tree" && out->trace_path.empty()) {
    std::fprintf(stderr, "--trace-format=%s requires --trace=PATH\n",
                 out->trace_format.c_str());
    return false;
  }
  return true;
}

// Flushes a recorded trace to the sink the flags selected. Returns 0 on
// success, 1 when the output file cannot be written.
int WriteTrace(const trace::Tracer& tracer, const CommonFlags& flags) {
  bool ok = true;
  if (flags.trace_format == "jsonl") {
    ok = trace::WriteJsonl(tracer, flags.trace_path);
  } else if (flags.trace_format == "chrome") {
    ok = trace::WriteChromeTrace(tracer, flags.trace_path);
  } else if (flags.trace_path.empty()) {
    std::fputs(trace::TreeReport(tracer).c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(flags.trace_path.c_str(), "w");
    ok = f != nullptr;
    if (ok) {
      std::fputs(trace::TreeReport(tracer).c_str(), f);
      std::fclose(f);
    }
  }
  if (!ok) {
    std::fprintf(stderr, "failed to write trace to %s\n",
                 flags.trace_path.c_str());
    return 1;
  }
  if (!flags.trace_path.empty()) {
    std::printf("trace:     %zu spans (%s) -> %s\n", tracer.spans().size(),
                flags.trace_format.c_str(), flags.trace_path.c_str());
  }
  return 0;
}

int CmdJoin(const CommonFlags& flags) {
  extmem::Device dev(flags.memory, flags.block);
  trace::Tracer tracer;
  if (flags.trace) dev.set_tracer(&tracer);
  std::vector<std::string> names;
  std::vector<storage::Relation> rels;

  {
    trace::Span load_span(&dev, "load");
    for (const std::string& spec : flags.positional) {
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "expected 'attrs=path.csv', got '%s'\n",
                     spec.c_str());
        return 2;
      }
      std::string error;
      const auto schema =
          storage::ParseSchemaSpec(spec.substr(0, eq), &names, &error);
      if (!schema) {
        std::fprintf(stderr, "bad schema: %s\n", error.c_str());
        return 2;
      }
      const auto rel = storage::RelationFromCsvFile(&dev, *schema,
                                                    spec.substr(eq + 1),
                                                    &error);
      if (!rel) {
        std::fprintf(stderr, "bad relation: %s\n", error.c_str());
        return 2;
      }
      rels.push_back(*rel);
      std::printf("loaded %s: %llu tuples\n", spec.c_str(),
                  (unsigned long long)rel->size());
    }
  }
  if (rels.empty()) {
    std::fprintf(stderr, "no relations given\n");
    return 2;
  }

  query::JoinQuery q;
  for (const auto& r : rels) q.AddRelation(r.schema(), r.size());
  if (!q.IsBergeAcyclic()) {
    std::fprintf(stderr,
                 "query is not Berge-acyclic; only acyclic joins are "
                 "supported by the CLI\n");
    return 2;
  }

  const core::ResultSchema schema = core::MakeResultSchema(rels);
  std::printf("result schema:");
  for (storage::AttrId a : schema.attrs) {
    std::printf(" %s", names[a].c_str());
  }
  std::printf("\n");

  std::uint64_t count = 0;
  const auto emit = [&](std::span<const Value> row) {
    ++count;
    if (flags.print) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        std::printf(i == 0 ? "%llu" : ",%llu", (unsigned long long)row[i]);
      }
      std::printf("\n");
    }
  };

  if (flags.algo == "yann") {
    core::YannakakisJoin(rels, emit);
    std::printf("algorithm: Yannakakis (baseline)\n");
  } else {
    const core::AutoJoinReport report = core::JoinAuto(rels, emit);
    std::printf("algorithm: %s (%s)\n", report.algorithm.c_str(),
                report.reason.c_str());
  }
  std::printf("results:   %llu\n", (unsigned long long)count);
  std::printf("I/O:       %s\n", dev.stats().ToString().c_str());
  if (flags.stats) {
    std::printf("breakdown: %s\n", dev.TagReport().c_str());
    std::printf("peak mem:  %llu tuples (M = %llu)\n",
                (unsigned long long)dev.gauge().high_water(),
                (unsigned long long)dev.M());
  }
  if (flags.trace) return WriteTrace(tracer, flags);
  return 0;
}

int CmdPlan(const CommonFlags& flags) {
  std::vector<std::string> names;
  query::JoinQuery q;
  for (const std::string& spec : flags.positional) {
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "expected 'attrs:SIZE', got '%s'\n",
                   spec.c_str());
      return 2;
    }
    std::string error;
    const auto schema =
        storage::ParseSchemaSpec(spec.substr(0, colon), &names, &error);
    if (!schema) {
      std::fprintf(stderr, "bad schema: %s\n", error.c_str());
      return 2;
    }
    const TupleCount size =
        std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
    if (size == 0) {
      std::fprintf(stderr, "bad size in '%s'\n", spec.c_str());
      return 2;
    }
    q.AddRelation(*schema, size);
  }
  if (q.num_edges() == 0) {
    std::fprintf(stderr, "no relations given\n");
    return 2;
  }
  if (!q.IsBergeAcyclic()) {
    std::fprintf(stderr, "query is not Berge-acyclic\n");
    return 2;
  }

  std::printf("query: %s\n", q.ToString().c_str());
  std::printf("roles:");
  for (query::EdgeId e = 0; e < q.num_edges(); ++e) {
    const char* kind = "internal";
    switch (query::ClassifyEdge(q, e)) {
      case query::EdgeKind::kIsland: kind = "island"; break;
      case query::EdgeKind::kBud: kind = "bud"; break;
      case query::EdgeKind::kLeaf: kind = "leaf"; break;
      case query::EdgeKind::kInternal: kind = "internal"; break;
    }
    std::printf(" R%u=%s", e, kind);
  }
  std::printf("\n");

  const auto families = gens::GenSFamilies(q);
  std::printf("GenS(Q): %zu minimal families\n", families.size());
  const gens::BoundReport report =
      gens::PredictBoundWorstCase(q, flags.memory, flags.block);
  std::printf("Theorem 3 worst-case bound (M=%llu, B=%llu): %.1Lf I/Os\n",
              (unsigned long long)flags.memory,
              (unsigned long long)flags.block, report.bound);
  std::printf("dominant terms:\n");
  for (std::size_t i = 0; i < report.terms.size() && i < 5; ++i) {
    std::printf("  psi(%s) = %.1Lf\n",
                gens::FamilyToString({report.terms[i].first}).c_str(),
                report.terms[i].second);
  }
  return 0;
}

int CmdDemo() {
  extmem::Device dev(256, 16);
  const auto rels = workload::L3WorstCase(&dev, 1024, 1, 1024);
  std::uint64_t count = 0;
  const core::AutoJoinReport report =
      core::JoinAuto(rels, [&](std::span<const Value>) { ++count; });
  std::printf("demo: Figure 3 L3 worst case, N = 1024, M = 256, B = 16\n");
  std::printf("algorithm: %s\n", report.algorithm.c_str());
  std::printf("results:   %llu (= N^2)\n", (unsigned long long)count);
  std::printf("I/O:       %s\n", dev.stats().ToString().c_str());
  std::printf("breakdown: %s\n", dev.TagReport().c_str());
  std::printf("bound:     N^2/(MB) = %.0f\n",
              1024.0 * 1024.0 / (dev.M() * dev.B()));
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: emjoin_cli join [--memory M] [--block B] [--print] "
               "[--algo auto|yann] attrs=file.csv ...\n"
               "       emjoin_cli plan [--memory M] [--block B] "
               "attrs:SIZE ...\n"
               "       emjoin_cli demo\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string cmd = argv[1];
  CommonFlags flags;
  if (!ParseFlags(argc, argv, 2, &flags)) return 2;
  if (cmd == "join") return CmdJoin(flags);
  if (cmd == "plan") return CmdPlan(flags);
  if (cmd == "demo") return CmdDemo();
  Usage();
  return 2;
}
