// bench_diff: the bench/audit regression gate.
//
// Compares fresh BENCH_*.json (bench::Reporter output) and
// AUDIT_table1.json (emjoin_audit output) files against committed
// baselines under bench/baselines/. I/O counts, result counts, per-tag
// breakdowns and audit verdicts must match the baseline exactly — the
// simulator is deterministic, so any drift is a real behavior change —
// while wall-clock gets a tolerance band (noisy CI machines).
//
// Usage:
//   bench_diff --baseline=DIR [--wall-tol=F] [--no-wall] FRESH.json...
//   bench_diff BASELINE.json FRESH.json
//
// Exit codes: 0 no regression, 1 regression or FAIL verdict, 2 usage,
// 66 a file cannot be read or parsed.
//
// The parser below is a minimal recursive-descent JSON reader — the
// repo has a no-new-dependencies rule, and the two schemas it reads are
// produced by this repo, so full JSON generality is not needed (no
// \uXXXX escapes, no exotic numbers).
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace {

// ---------------------------------------------------------------------
// Minimal JSON.
// ---------------------------------------------------------------------

struct Json {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string raw;  // number as written, for exact integer compare
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  const Json* Get(std::string_view key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(Json* out) {
    const bool ok = Value(out);
    Skip();
    return ok && pos_ == text_.size();
  }

 private:
  void Skip() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool Value(Json* out) {
    Skip();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return Object(out);
    if (c == '[') return Array(out);
    if (c == '"') {
      out->kind = Json::kString;
      return String(&out->str);
    }
    if (c == 't') {
      out->kind = Json::kBool;
      out->boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = Json::kBool;
      out->boolean = false;
      return Literal("false");
    }
    if (c == 'n') {
      out->kind = Json::kNull;
      return Literal("null");
    }
    return Number(out);
  }

  bool String(std::string* out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: c = esc;
        }
      }
      *out += c;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number(Json* out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::strchr("+-.eE", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = Json::kNumber;
    out->raw = std::string(text_.substr(start, pos_ - start));
    out->number = std::atof(out->raw.c_str());
    return true;
  }

  bool Array(Json* out) {
    out->kind = Json::kArray;
    ++pos_;  // '['
    Skip();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Json v;
      if (!Value(&v)) return false;
      out->arr.push_back(std::move(v));
      Skip();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Object(Json* out) {
    out->kind = Json::kObject;
    ++pos_;  // '{'
    Skip();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      Skip();
      std::string key;
      if (pos_ >= text_.size() || !String(&key)) return false;
      Skip();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      Json v;
      if (!Value(&v)) return false;
      out->obj.emplace_back(std::move(key), std::move(v));
      Skip();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool LoadJson(const std::string& path, Json* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path.c_str());
    return false;
  }
  std::string text;
  char buf[1 << 14];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  if (!Parser(text).Parse(out) || out->kind != Json::kObject) {
    std::fprintf(stderr, "bench_diff: %s is not valid JSON\n", path.c_str());
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// Comparison.
// ---------------------------------------------------------------------

struct Options {
  double wall_tol = 10.0;  // fresh wall may be up to tol x baseline
  bool check_wall = true;
};

int failures = 0;

void Fail(const std::string& file, const std::string& what) {
  std::fprintf(stderr, "REGRESSION %s: %s\n", file.c_str(), what.c_str());
  ++failures;
}

std::string RecordKey(const Json& rec) {
  std::string key;
  if (const Json* b = rec.Get("bench")) key += b->str;
  if (const Json* cfg = rec.Get("config")) {
    for (const char* f : {"M", "B", "n"}) {
      if (const Json* v = cfg->Get(f)) key += "|" + v->raw;
    }
  }
  return key;
}

/// Exact compare of an integer-valued field via its raw text.
bool SameRaw(const Json* a, const Json* b) {
  if (a == nullptr || b == nullptr) return a == b;
  return a->raw == b->raw;
}

void CompareBenchRecord(const std::string& file, const std::string& key,
                        const Json& base, const Json& fresh,
                        const Options& opt) {
  for (const char* field : {"ios", "results", "peak_mem"}) {
    const Json* bv = base.Get(field);
    const Json* fv = fresh.Get(field);
    if (bv == nullptr) continue;  // older baseline without the field
    if (!SameRaw(bv, fv)) {
      Fail(file, key + ": " + field + " " + bv->raw + " -> " +
                     (fv != nullptr ? fv->raw : "<missing>"));
    }
  }
  const Json* btags = base.Get("tags");
  const Json* ftags = fresh.Get("tags");
  if (btags != nullptr && ftags != nullptr) {
    for (const auto& [tag, bio] : btags->obj) {
      const Json* fio = ftags->Get(tag);
      if (fio == nullptr) {
        Fail(file, key + ": tag '" + tag + "' disappeared");
        continue;
      }
      for (const char* field : {"reads", "writes"}) {
        if (!SameRaw(bio.Get(field), fio->Get(field))) {
          Fail(file, key + ": tag '" + tag + "' " + field + " " +
                         bio.Get(field)->raw + " -> " +
                         (fio->Get(field) ? fio->Get(field)->raw
                                          : "<missing>"));
        }
      }
    }
    for (const auto& [tag, fio] : ftags->obj) {
      (void)fio;
      if (btags->Get(tag) == nullptr) {
        Fail(file, key + ": new tag '" + tag + "' charged I/O");
      }
    }
  }
  if (opt.check_wall) {
    const Json* bw = base.Get("wall_ns");
    const Json* fw = fresh.Get("wall_ns");
    if (bw != nullptr && fw != nullptr && bw->number > 0 &&
        fw->number > bw->number * opt.wall_tol) {
      char buf[128];
      std::snprintf(buf, sizeof buf, "wall %.2fms -> %.2fms (> %.1fx)",
                    bw->number / 1e6, fw->number / 1e6, opt.wall_tol);
      Fail(file, key + ": " + buf);
    }
  }
}

void CompareBenchFile(const std::string& file, const Json& base,
                      const Json& fresh, const Options& opt) {
  const Json* brecs = base.Get("benches");
  const Json* frecs = fresh.Get("benches");
  if (brecs == nullptr || frecs == nullptr) {
    Fail(file, "missing 'benches' array");
    return;
  }
  // Duplicate keys (a bench measured twice at one config) pair up by
  // occurrence order.
  std::map<std::string, std::vector<const Json*>> fresh_by_key;
  for (const Json& rec : frecs->arr) {
    fresh_by_key[RecordKey(rec)].push_back(&rec);
  }
  std::map<std::string, std::size_t> used;
  for (const Json& rec : brecs->arr) {
    const std::string key = RecordKey(rec);
    const auto it = fresh_by_key.find(key);
    const std::size_t idx = used[key]++;
    if (it == fresh_by_key.end() || idx >= it->second.size()) {
      Fail(file, key + ": record missing from fresh run");
      continue;
    }
    CompareBenchRecord(file, key, rec, *it->second[idx], opt);
  }
}

void CompareAuditRow(const std::string& file, const Json& base,
                     const Json& fresh) {
  const std::string name =
      base.Get("name") != nullptr ? base.Get("name")->str : "?";
  const Json* bv = base.Get("verdict");
  const Json* fv = fresh.Get("verdict");
  if (bv != nullptr && fv != nullptr && bv->str != fv->str) {
    Fail(file, name + ": verdict " + bv->str + " -> " + fv->str);
  }
  if (fv != nullptr && fv->str != "PASS") {
    Fail(file, name + ": verdict is " + fv->str);
  }
  for (const char* series : {"n_points", "m_points"}) {
    const Json* bp = base.Get(series);
    const Json* fp = fresh.Get(series);
    if (bp == nullptr || fp == nullptr) continue;
    if (bp->arr.size() != fp->arr.size()) {
      Fail(file, name + ": " + series + " count changed");
      continue;
    }
    for (std::size_t i = 0; i < bp->arr.size(); ++i) {
      if (!SameRaw(bp->arr[i].Get("measured"), fp->arr[i].Get("measured"))) {
        Fail(file, name + ": " + series + "[" + std::to_string(i) +
                       "] measured " + bp->arr[i].Get("measured")->raw +
                       " -> " +
                       (fp->arr[i].Get("measured")
                            ? fp->arr[i].Get("measured")->raw
                            : "<missing>"));
      }
    }
  }
}

void CompareAuditFile(const std::string& file, const Json& base,
                      const Json& fresh) {
  const Json* ap = fresh.Get("all_pass");
  if (ap == nullptr || !ap->boolean) {
    Fail(file, "audit all_pass is not true");
  }
  const Json* brows = base.Get("rows");
  const Json* frows = fresh.Get("rows");
  if (brows == nullptr || frows == nullptr) {
    Fail(file, "missing 'rows' array");
    return;
  }
  for (const Json& brow : brows->arr) {
    const Json* bn = brow.Get("name");
    const Json* match = nullptr;
    for (const Json& frow : frows->arr) {
      const Json* fn = frow.Get("name");
      if (bn != nullptr && fn != nullptr && bn->str == fn->str) {
        match = &frow;
        break;
      }
    }
    if (match == nullptr) {
      Fail(file, (bn != nullptr ? bn->str : "?") +
                     ": audit row missing from fresh run");
      continue;
    }
    CompareAuditRow(file, brow, *match);
  }
}

std::string Basename(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

int CompareFiles(const std::string& base_path, const std::string& fresh_path,
                 const Options& opt) {
  Json base, fresh;
  if (!LoadJson(base_path, &base) || !LoadJson(fresh_path, &fresh)) return 66;
  const std::string file = Basename(fresh_path);
  if (base.Get("benches") != nullptr) {
    CompareBenchFile(file, base, fresh, opt);
  } else if (base.Get("rows") != nullptr) {
    CompareAuditFile(file, base, fresh);
  } else {
    Fail(file, "unknown schema (neither 'benches' nor 'rows')");
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_diff --baseline=DIR [--wall-tol=F] [--no-wall] "
      "FRESH.json...\n"
      "       bench_diff [--wall-tol=F] [--no-wall] BASELINE.json "
      "FRESH.json\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string baseline_dir;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_dir = std::string(arg.substr(11));
    } else if (arg.rfind("--wall-tol=", 0) == 0) {
      opt.wall_tol = std::atof(arg.substr(11).data());
    } else if (arg == "--no-wall") {
      opt.check_wall = false;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", std::string(arg).c_str());
      return Usage();
    } else {
      files.push_back(std::string(arg));
    }
  }

  int io_error = 0;
  if (!baseline_dir.empty()) {
    if (files.empty()) return Usage();
    for (const std::string& fresh : files) {
      const std::string base = baseline_dir + "/" + Basename(fresh);
      const int rc = CompareFiles(base, fresh, opt);
      if (rc != 0) io_error = rc;
    }
  } else {
    if (files.size() != 2) return Usage();
    io_error = CompareFiles(files[0], files[1], opt);
  }

  if (io_error != 0) return io_error;
  if (failures > 0) {
    std::fprintf(stderr, "bench_diff: %d regression(s)\n", failures);
    return 1;
  }
  std::printf("bench_diff: no regressions\n");
  return 0;
}
