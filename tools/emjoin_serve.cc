// emjoin_serve: the long-lived multi-query join daemon.
//
//   emjoin_serve [--port=PORT] [--workers=N]
//                [--memory-budget=TUPLES] [--max-queued=N]
//                [--request-log=PATH] [--manifest-dir=DIR]
//                [--serve-seconds=S] [--self-probe=PATH]
//
// Starts the serve::Server, prints one parseable line
//
//   emjoin_serve: listening on http://127.0.0.1:PORT/
//
// and serves until SIGINT/SIGTERM (or --serve-seconds elapses; 0 means
// forever). See docs/SERVICE.md for the endpoint catalogue and
// admission semantics.
//
// --self-probe=PATH starts the daemon on an ephemeral port, issues one
// loopback GET for PATH, prints the response body, and exits 0 iff the
// reply status is 2xx — the probe a WILL_FAIL ctest points at an
// unknown path to pin the 404 contract.
//
// Exit codes: 0 ok, 64 usage, 74 when the listener cannot bind.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "serve/server.h"

namespace {

using namespace emjoin;

constexpr int kExitUsage = 64;
constexpr int kExitIo = 74;

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

int Usage() {
  std::fprintf(
      stderr,
      "usage: emjoin_serve [--port=PORT] [--workers=N]\n"
      "                    [--memory-budget=TUPLES] [--max-queued=N]\n"
      "                    [--request-log=PATH] [--manifest-dir=DIR]\n"
      "                    [--serve-seconds=S] [--self-probe=PATH]\n");
  return kExitUsage;
}

bool ParseU64Flag(const char* arg, const char* name, std::uint64_t* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg + len + 1, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseStrFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

/// One loopback HTTP/1.0 GET against the running daemon; returns the
/// full response (status line + headers + body) or empty on error.
std::string LoopbackGet(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return {};
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

int RunSelfProbe(serve::Server* server, const std::string& path) {
  const std::string response = LoopbackGet(server->port(), path);
  if (response.empty()) {
    std::fprintf(stderr, "emjoin_serve: self-probe got no response\n");
    return kExitIo;
  }
  const std::size_t body = response.find("\r\n\r\n");
  std::fputs(
      body == std::string::npos ? response.c_str() : response.c_str() + body + 4,
      stdout);
  // "HTTP/1.0 2xx ..." — the status code starts at offset 9.
  const bool ok = response.size() > 9 && response[9] == '2';
  if (!ok) {
    std::fprintf(stderr, "emjoin_serve: self-probe %s -> %s\n", path.c_str(),
                 response.substr(0, response.find('\r')).c_str());
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions options;
  std::uint64_t port = 0;
  std::uint64_t workers = 2;
  std::uint64_t memory_budget = options.admission.memory_budget;
  std::uint64_t max_queued = options.admission.max_queued;
  std::uint64_t serve_seconds = 0;
  std::string self_probe;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseU64Flag(arg, "--port", &port) ||
        ParseU64Flag(arg, "--workers", &workers) ||
        ParseU64Flag(arg, "--memory-budget", &memory_budget) ||
        ParseU64Flag(arg, "--max-queued", &max_queued) ||
        ParseU64Flag(arg, "--serve-seconds", &serve_seconds) ||
        ParseStrFlag(arg, "--request-log", &options.request_log_path) ||
        ParseStrFlag(arg, "--manifest-dir", &options.manifest_dir) ||
        ParseStrFlag(arg, "--self-probe", &self_probe)) {
      continue;
    }
    std::fprintf(stderr, "emjoin_serve: unknown flag %s\n", arg);
    return Usage();
  }
  if (port > 65535 || workers == 0 || workers > 64) return Usage();

  options.port = static_cast<std::uint16_t>(port);
  options.run_workers = static_cast<std::uint32_t>(workers);
  options.admission.memory_budget = memory_budget;
  options.admission.max_queued = static_cast<std::size_t>(max_queued);
  if (!self_probe.empty()) options.port = 0;  // probe runs ephemeral

  serve::Server server(options);
  const extmem::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "emjoin_serve: %s\n", status.ToString().c_str());
    return kExitIo;
  }

  if (!self_probe.empty()) {
    const int rc = RunSelfProbe(&server, self_probe);
    server.Stop();
    return rc;
  }

  std::printf("emjoin_serve: listening on http://127.0.0.1:%u/\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(serve_seconds);
  while (!g_stop.load()) {
    if (serve_seconds > 0 && std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  server.Stop();
  std::printf("emjoin_serve: shut down\n");
  return 0;
}
