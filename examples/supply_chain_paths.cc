// Supply-chain path query: a 5-relation line join
//   Supplier–Part ⋈ Part–Component ⋈ Component–Assembly
//                 ⋈ Assembly–Product ⋈ Product–Market
// Every result is a full sourcing path. Line joins are the paper's L_n;
// this example shows the dispatcher's balance analysis (§6) choosing
// between Algorithm 2 and the unbalanced-case Algorithm 4 as the shape
// of the middle relations changes.
//
//   ./build/examples/supply_chain_paths
#include <cstdio>

#include "core/dispatch.h"
#include "extmem/device.h"
#include "workload/constructions.h"

namespace {

using namespace emjoin;

void RunScenario(const char* name, TupleCount parts, TupleCount components,
                 TupleCount fanout) {
  const TupleCount m = 128, b = 16;
  extmem::Device dev(m, b);

  // v1 supplier, v2 part, v3 component, v4 assembly, v5 product, v6 market.
  std::vector<storage::Relation> rels;
  rels.push_back(workload::Matching(&dev, 0, 1, parts));  // supplier-part
  rels.push_back(
      workload::CrossProduct(&dev, 1, 2, parts, components));  // part-comp
  rels.push_back(workload::ManyToOne(&dev, 2, 3, components,
                                     components / fanout));  // comp-assembly
  rels.push_back(workload::CrossProduct(&dev, 3, 4, components / fanout,
                                        parts));  // assembly-product
  rels.push_back(workload::Matching(&dev, 4, 5, parts));  // product-market

  std::printf("--- %s ---\n", name);
  std::printf("sizes:");
  for (const auto& r : rels) {
    std::printf(" %llu", (unsigned long long)r.size());
  }
  std::printf("\n");

  std::uint64_t paths = 0;
  const core::AutoJoinReport report =
      core::JoinAuto(rels, [&](std::span<const Value>) { ++paths; });
  std::printf("dispatcher:  %s\n", report.algorithm.c_str());
  std::printf("reason:      %s\n", report.reason.c_str());
  std::printf("paths:       %llu\n", (unsigned long long)paths);
  std::printf("I/O:         %s\n\n", dev.stats().ToString().c_str());
}

}  // namespace

int main() {
  std::printf("supply-chain sourcing paths as a 5-relation line join\n\n");
  // Balanced: part-component fan-in matched by the assembly fan-out.
  RunScenario("balanced catalogue", /*parts=*/64, /*components=*/4,
              /*fanout=*/4);
  // Unbalanced: huge part-component and assembly-product cross products
  // relative to the end matchings (N1*N3*N5 < N2*N4) — Algorithm 4
  // territory.
  RunScenario("promiscuous middle tiers", /*parts=*/64, /*components=*/32,
              /*fanout=*/2);
  return 0;
}
