// Quickstart: build three relations, run the worst-case I/O-optimal
// acyclic join, and inspect results and I/O statistics.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/dispatch.h"
#include "core/emit.h"
#include "extmem/device.h"
#include "storage/relation.h"

int main() {
  using namespace emjoin;

  // A simulated external-memory device: M = 64 tuples of main memory,
  // blocks of B = 8 tuples. All I/O the algorithms perform is counted.
  extmem::Device dev(/*memory_tuples=*/64, /*block_tuples=*/8);

  // Three relations forming the line join
  //   Follows(user, account) ⋈ Posts(account, thread)
  //                          ⋈ Tags(thread, topic).
  // Attributes are integers: user=0, account=1, thread=2, topic=3.
  const storage::Relation follows = storage::Relation::FromTuples(
      &dev, storage::Schema({0, 1}),
      {{100, 1}, {101, 1}, {102, 2}, {103, 3}});
  const storage::Relation posts = storage::Relation::FromTuples(
      &dev, storage::Schema({1, 2}), {{1, 77}, {2, 77}, {2, 88}, {9, 99}});
  const storage::Relation tags = storage::Relation::FromTuples(
      &dev, storage::Schema({2, 3}), {{77, 5}, {88, 5}, {88, 6}});

  // JoinAuto fully reduces the instance, classifies the query (here: a
  // balanced 3-relation line join), and runs the optimal algorithm. Each
  // result arrives as an assignment over the result schema — the emit
  // model: results are never written to disk.
  const core::ResultSchema schema =
      core::MakeResultSchema({follows, posts, tags});
  std::printf("result schema:");
  for (storage::AttrId a : schema.attrs) std::printf(" v%u", a);
  std::printf("\n");

  std::uint64_t count = 0;
  const core::AutoJoinReport report = core::JoinAuto(
      {follows, posts, tags}, [&](std::span<const Value> row) {
        ++count;
        std::printf("  result:");
        for (Value v : row) std::printf(" %llu", (unsigned long long)v);
        std::printf("\n");
      });

  std::printf("\nalgorithm: %s (%s)\n", report.algorithm.c_str(),
              report.reason.c_str());
  std::printf("results:   %llu\n", (unsigned long long)count);
  std::printf("I/O cost:  %s\n", dev.stats().ToString().c_str());
  std::printf("peak mem:  %llu tuples (M = %llu)\n",
              (unsigned long long)dev.gauge().high_water(),
              (unsigned long long)dev.M());
  return 0;
}
