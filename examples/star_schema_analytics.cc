// Star-schema analytics: a fact table joined with several dimension
// tables is exactly the paper's star join (§5). This example builds a
// synthetic warehouse, runs both the emit-model optimal AcyclicJoin and
// the classic Yannakakis pipeline, and reports the I/O gap — the reason
// a pairwise plan cannot be I/O-optimal when results are streamed to a
// consumer instead of written out (§1.2).
//
//   ./build/examples/star_schema_analytics
#include <cstdio>
#include <random>

#include "core/acyclic_join.h"
#include "core/yannakakis.h"
#include "extmem/device.h"
#include "storage/relation.h"

namespace {

using namespace emjoin;

// Attributes: 0 = customer_key, 1 = product_key, 2 = store_key,
// 3 = customer_segment, 4 = product_category, 5 = store_region.
constexpr storage::AttrId kCustomer = 0, kProduct = 1, kStore = 2;
constexpr storage::AttrId kSegment = 3, kCategory = 4, kRegion = 5;

storage::Relation MakeFact(extmem::Device* dev, TupleCount n,
                           TupleCount customers, TupleCount products,
                           TupleCount stores, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<storage::Tuple> rows;
  rows.reserve(n);
  for (TupleCount i = 0; i < n; ++i) {
    rows.push_back(
        {rng() % customers, rng() % products, rng() % stores});
  }
  // Relations are sets: dedupe.
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return storage::Relation::FromTuples(
      dev, storage::Schema({kCustomer, kProduct, kStore}), rows);
}

storage::Relation MakeDimension(extmem::Device* dev, storage::AttrId key,
                                storage::AttrId attr, TupleCount keys,
                                TupleCount attr_values_per_key) {
  std::vector<storage::Tuple> rows;
  for (Value k = 0; k < keys; ++k) {
    for (Value a = 0; a < attr_values_per_key; ++a) {
      rows.push_back({k, k * attr_values_per_key + a});
    }
  }
  return storage::Relation::FromTuples(dev, storage::Schema({key, attr}),
                                       rows);
}

}  // namespace

int main() {
  const TupleCount m = 256, b = 16;
  const TupleCount customers = 64, products = 32, stores = 16;

  extmem::Device dev_opt(m, b), dev_yan(m, b);
  auto build = [&](extmem::Device* dev) {
    std::vector<storage::Relation> rels;
    rels.push_back(MakeFact(dev, 4096, customers, products, stores, 42));
    rels.push_back(MakeDimension(dev, kCustomer, kSegment, customers, 4));
    rels.push_back(MakeDimension(dev, kProduct, kCategory, products, 4));
    rels.push_back(MakeDimension(dev, kStore, kRegion, stores, 4));
    return rels;
  };

  std::printf("star-schema warehouse: fact(customer, product, store) with\n"
              "3 dimension tables; each dimension key fans out to 4\n"
              "attribute values, so |results| = 64 * |fact|\n\n");

  const auto rels_opt = build(&dev_opt);
  std::uint64_t results = 0;
  core::AcyclicJoin(rels_opt, [&](std::span<const Value>) { ++results; });
  std::printf("AcyclicJoin (emit-model optimal):\n");
  std::printf("  results = %llu\n", (unsigned long long)results);
  std::printf("  %s\n\n", dev_opt.stats().ToString().c_str());

  const auto rels_yan = build(&dev_yan);
  std::uint64_t yresults = 0;
  const core::YannakakisReport yr = core::YannakakisJoin(
      rels_yan, [&](std::span<const Value>) { ++yresults; });
  std::printf("Yannakakis (pairwise, materializing):\n");
  std::printf("  results = %llu, intermediate tuples written = %llu\n",
              (unsigned long long)yresults,
              (unsigned long long)yr.intermediate_tuples);
  std::printf("  %s\n\n", dev_yan.stats().ToString().c_str());

  std::printf("I/O gap (Yannakakis / AcyclicJoin): %.2fx\n",
              static_cast<double>(dev_yan.stats().total()) /
                  static_cast<double>(dev_opt.stats().total()));
  return 0;
}
