// I/O planner: use the paper's cost machinery without running a join.
// Given a query hypergraph and relation sizes, this prints the GenS(Q)
// branch families (Algorithm 3), the Theorem 3 worst-case bound, the Ψ
// terms that dominate it, and the recommended first peel — everything a
// query optimizer would need to reason about external-memory join cost.
//
//   ./build/examples/io_planner
#include <cstdio>

#include "gens/gens.h"
#include "gens/planner.h"
#include "gens/psi.h"
#include "query/classify.h"
#include "query/edge_cover.h"

namespace {

using namespace emjoin;

void Plan(const char* name, const query::JoinQuery& q, TupleCount m,
          TupleCount b) {
  std::printf("=== %s ===\n", name);
  std::printf("query: %s\n", q.ToString().c_str());
  std::printf("Berge-acyclic: %s\n", q.IsBergeAcyclic() ? "yes" : "no");

  const query::EdgeCover cover = query::OptimalEdgeCover(q);
  std::printf("optimal edge cover (AGM):");
  for (query::EdgeId e : cover.edges) std::printf(" R%u", e);
  std::printf("  -> max |Q(R)| = %.0Lf\n", cover.product);

  const auto families = gens::GenSFamilies(q);
  std::printf("GenS(Q): %zu minimal branch families\n", families.size());

  const gens::BoundReport report = gens::PredictBoundWorstCase(q, m, b);
  std::printf("Theorem 3 worst-case bound (M=%llu, B=%llu): %.1Lf I/Os\n",
              (unsigned long long)m, (unsigned long long)b, report.bound);
  std::printf("best family: %s\n",
              gens::FamilyToString(
                  gens::PruneDominated(q, report.best_family))
                  .c_str());
  std::printf("dominant subjoin terms:\n");
  for (std::size_t i = 0; i < report.terms.size() && i < 3; ++i) {
    std::printf("  psi(%s) = %.1Lf\n",
                gens::FamilyToString({report.terms[i].first}).c_str(),
                report.terms[i].second);
  }

  // Recommend the first peel among the leaves.
  const std::vector<query::EdgeId> leaves =
      query::EdgesOfKind(q, query::EdgeKind::kLeaf);
  if (!leaves.empty()) {
    std::printf("first-peel bounds per leaf:\n");
    query::EdgeId best = leaves.front();
    long double best_bound = -1.0L;
    for (query::EdgeId e : leaves) {
      const long double bound = gens::BoundIfPeeledFirst(q, e, m, b);
      std::printf("  peel R%u first: %.1Lf\n", e, bound);
      if (best_bound < 0.0L || bound < best_bound) {
        best_bound = bound;
        best = e;
      }
    }
    std::printf("recommended first peel: R%u\n", best);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const TupleCount m = 1 << 16, b = 1 << 10;  // 64K tuples RAM, 1K blocks

  Plan("Ad-click attribution path (L4)",
       query::JoinQuery::Line(4, {1u << 20, 1u << 24, 1u << 20, 1u << 20}),
       m, b);

  Plan("Order fact with 3 dimensions (star)",
       query::JoinQuery::Star(3, {1u << 22, 1u << 16, 1u << 16, 1u << 16}),
       m, b);

  Plan("Device-session-event chain with a shared hub (lollipop)",
       query::JoinQuery::Lollipop(
           3, {1u << 18, 1u << 16, 1u << 16, 1u << 16, 1u << 16}),
       m, b);
  return 0;
}
