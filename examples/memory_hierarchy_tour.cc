// A tour of the simulated external-memory substrate: how I/Os are
// charged, what the sort costs, how the per-operation breakdown works,
// and how the same join's cost responds to M and B — the knobs behind
// every bound in the paper.
//
//   ./build/examples/memory_hierarchy_tour
#include <cstdio>

#include "core/acyclic_join.h"
#include "extmem/sorter.h"
#include "workload/constructions.h"

int main() {
  using namespace emjoin;

  std::printf("1) Scanning charges exactly ceil(N/B) block reads\n");
  {
    extmem::Device dev(256, 16);
    const storage::Relation rel = workload::Matching(&dev, 0, 1, 1000);
    const extmem::IoStats before = dev.stats();
    extmem::FileReader reader(rel.range());
    while (!reader.Done()) reader.Next();
    std::printf("   N=1000, B=16 -> %llu reads (= ceil(1000/16) = 63)\n\n",
                (unsigned long long)(dev.stats() - before).block_reads);
  }

  std::printf("2) External sort pays (merge passes + 1) * 2N/B\n");
  {
    for (TupleCount m : {64, 256, 1024}) {
      extmem::Device dev(m, 16);
      const storage::Relation rel =
          workload::ManyToOne(&dev, 0, 1, 4096, 97);
      const extmem::IoStats before = dev.stats();
      rel.SortedBy(1);
      std::printf("   N=4096, M=%-5llu -> %llu I/Os (%llu merge passes)\n",
                  (unsigned long long)m,
                  (unsigned long long)(dev.stats() - before).total(),
                  (unsigned long long)extmem::MergePassesFor(dev, 4096));
    }
    std::printf("\n");
  }

  std::printf("3) The same join under different M and B\n");
  std::printf("   (Fig. 3 worst case, N=1024: bound is N^2/(MB))\n");
  for (const auto& [m, b] : {std::pair<TupleCount, TupleCount>{64, 8},
                             {256, 8},
                             {1024, 8},
                             {256, 32}}) {
    extmem::Device dev(m, b);
    const auto rels = workload::L3WorstCase(&dev, 1024, 1, 1024);
    core::CountingSink sink;
    core::AcyclicJoin(rels, sink.AsEmitFn());
    std::printf("   M=%-5llu B=%-3llu -> %7llu I/Os  [%s]\n",
                (unsigned long long)m, (unsigned long long)b,
                (unsigned long long)dev.stats().total(),
                dev.TagReport().c_str());
  }

  std::printf(
      "\n4) Peak simulated memory never exceeds a small multiple of M\n");
  {
    extmem::Device dev(128, 16);
    const auto rels = workload::CrossProductLine(&dev, {1, 64, 1, 64, 1, 64});
    dev.gauge().ResetHighWater();
    core::CountingSink sink;
    core::AcyclicJoin(rels, sink.AsEmitFn());
    std::printf("   L5 cross-product join: high water %llu tuples, M=%llu\n",
                (unsigned long long)dev.gauge().high_water(),
                (unsigned long long)dev.M());
  }
  return 0;
}
