#ifndef EMJOIN_PARALLEL_PARALLEL_JOIN_H_
#define EMJOIN_PARALLEL_PARALLEL_JOIN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/dispatch.h"
#include "core/emit.h"
#include "extmem/fault_injector.h"
#include "extmem/io_stats.h"
#include "extmem/status.h"
#include "storage/relation.h"

namespace emjoin::metrics {
class Registry;
}  // namespace emjoin::metrics

namespace emjoin::recover {
class QueryManifest;
}  // namespace emjoin::recover

namespace emjoin::parallel {

/// Knobs for a sharded run. shards == 1 is the exact serial path
/// (TryJoinAuto on the source device — bit-identical I/O counts, pinned
/// by tests). shards >= 2 hash-partitions onto per-shard devices and
/// runs shard-local joins on `workers` pool threads.
struct ParallelOptions {
  std::uint32_t shards = 1;
  std::uint32_t workers = 1;
  /// Attach a per-shard FaultInjector seeded fault_config.seed + shard
  /// id, so every shard draws an independent but replayable schedule.
  bool faults = false;
  extmem::FaultConfig fault_config;
  /// Optional whole-query checkpoint. When set, every shard journals its
  /// output into its own child manifest (`manifest->Shard(s)`) as it
  /// runs; shards whose "join" phase is already completed in a loaded
  /// manifest are skipped outright (their rows replay from the journal
  /// with zero shard I/O), and the final emission is deduplicated
  /// against the query-level watermark. K == 1 routes through
  /// recover::TryResumableJoinAuto. Not owned; must outlive the call.
  recover::QueryManifest* manifest = nullptr;
};

/// What one shard did: its device's whole-run I/O, per-tag breakdown
/// (includes the "partition" writes that landed it its fragments), peak
/// residency, fault tallies, result count, and the algorithm the
/// dispatcher picked for its fragment.
struct ShardReport {
  extmem::IoStats io;
  std::map<std::string, extmem::IoStats, std::less<>> tags;
  TupleCount peak_resident = 0;
  extmem::FaultStats faults;
  std::uint64_t results = 0;
  core::AutoJoinReport report;
};

/// Merged view of a sharded run. For shards == 1, per_shard is empty and
/// auto_report is exactly what TryJoinAuto returned.
struct ParallelJoinReport {
  core::AutoJoinReport auto_report;
  std::uint32_t shards = 1;
  std::uint32_t workers = 1;
  bool sharded = false;
  storage::AttrId partition_attr = 0;
  /// I/O charged to the *source* device while partitioning (the one
  /// full read of every input relation).
  extmem::IoStats partition_io;
  std::vector<ShardReport> per_shard;
  std::uint64_t results = 0;
  /// The parallel cost model's two poles: the critical path (slowest
  /// shard) and the total work. max_shard_ios tracking sum_shard_ios / K
  /// is the load-balance claim the speedup audit checks.
  std::uint64_t max_shard_ios = 0;
  std::uint64_t sum_shard_ios = 0;
  extmem::FaultStats faults;
};

/// Sharded top-level join. Hash-partitions `rels` per PlanShards, runs
/// the existing JoinAuto dispatch shard-locally on a WorkerPool, and
/// replays each shard's buffered output through `emit` in shard order at
/// the barrier — so the emitted sequence is a pure function of the
/// inputs and shard count, never of thread interleaving (pinned by the
/// determinism tests at W in {1, 2, 8}).
///
/// Observability merges at the barrier: if the source device has a
/// Tracer attached, each shard runs under its own tracer whose spans are
/// absorbed into the source's as a "shard" subtree; if `merged_metrics`
/// is non-null, each shard collects into a private Registry merged in
/// with a shard=<i> label. One shard's typed failure surfaces as the
/// whole query's Status (first failing shard in shard order) and nothing
/// is emitted.
[[nodiscard]] extmem::Result<ParallelJoinReport> TryParallelJoinAuto(
    const std::vector<storage::Relation>& rels, const core::EmitFn& emit,
    const ParallelOptions& options,
    metrics::Registry* merged_metrics = nullptr);

}  // namespace emjoin::parallel

#endif  // EMJOIN_PARALLEL_PARALLEL_JOIN_H_
