#ifndef EMJOIN_PARALLEL_SHARD_PLAN_H_
#define EMJOIN_PARALLEL_SHARD_PLAN_H_

#include <cstdint>
#include <vector>

#include "extmem/device.h"
#include "storage/relation.h"
#include "storage/schema.h"

namespace emjoin::parallel {

/// How a query's input relations are split across K shards.
///
/// The plan follows the fragment-and-replicate scheme from the MPC
/// literature (Hu & Yi's parallel follow-up, PAPERS.md): one partition
/// attribute is chosen, every relation containing it is hash-partitioned
/// on its value, and every relation *not* containing it is broadcast to
/// all shards. Each shard then joins only tuples agreeing on the
/// partition attribute's hash bucket, so the union of the shard-local
/// joins is exactly the full join and every result row is produced by
/// exactly one shard (no dedup pass needed).
struct ShardPlan {
  std::uint32_t shards = 1;
  storage::AttrId partition_attr = 0;
  /// Per input relation: true = hash-partitioned on partition_attr,
  /// false = broadcast (replicated) to every shard.
  std::vector<bool> partitioned;
  /// Memory budget per shard device: max(M / shards, B) tuples.
  TupleCount shard_memory = 0;
};

/// Chooses the partition attribute that hash-partitions the most input
/// data: the attribute maximizing the total size of the relations that
/// contain it (everything else is broadcast). Ties break to the lowest
/// AttrId so the plan is deterministic. `rels` must be non-empty and
/// live on one device (whose M fixes shard_memory).
ShardPlan PlanShards(const std::vector<storage::Relation>& rels,
                     std::uint32_t shards);

/// Shard owning join-attribute value `v`: splitmix64 finalizer mod K.
/// A strong mixer matters here — workload generators hand out small
/// consecutive values, and `v % K` would send them to shards in lockstep
/// with the generator's patterns instead of uniformly.
std::uint32_t ShardOfValue(Value v, std::uint32_t shards);

/// Materializes the plan: reads each input relation once off its source
/// device (charged there under the "partition" tag) and writes each
/// shard's fragment onto that shard's device (charged there under
/// "partition" too). Fragments inherit the source relation's sorted-by
/// metadata — hash partitioning filters rows without reordering them, so
/// a sorted input yields sorted fragments.
///
/// Returns per-shard relation lists: result[s][r] is shard s's fragment
/// of rels[r].
std::vector<std::vector<storage::Relation>> PartitionRelations(
    const std::vector<storage::Relation>& rels, const ShardPlan& plan,
    const std::vector<extmem::Device*>& shard_devices);

}  // namespace emjoin::parallel

#endif  // EMJOIN_PARALLEL_SHARD_PLAN_H_
