#include "parallel/worker_pool.h"

#include <utility>

namespace emjoin::parallel {

WorkerPool::WorkerPool(std::uint32_t workers) {
  if (workers == 0) workers = 1;
  threads_.reserve(workers);
  for (std::uint32_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { RunWorker(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void WorkerPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void WorkerPool::RunWorker() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace emjoin::parallel
