#include "parallel/shard_plan.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace emjoin::parallel {

ShardPlan PlanShards(const std::vector<storage::Relation>& rels,
                     std::uint32_t shards) {
  assert(!rels.empty());
  if (shards == 0) shards = 1;

  // Total bytes (well, tuples) each attribute would hash-partition.
  std::map<storage::AttrId, TupleCount> coverage;
  for (const storage::Relation& r : rels) {
    for (const storage::AttrId a : r.schema().attrs()) {
      coverage[a] += r.size();
    }
  }
  // std::map iterates in ascending AttrId, so `>` breaks ties low.
  storage::AttrId best = coverage.begin()->first;
  TupleCount best_cover = 0;
  for (const auto& [attr, cover] : coverage) {
    if (cover > best_cover) {
      best = attr;
      best_cover = cover;
    }
  }

  ShardPlan plan;
  plan.shards = shards;
  plan.partition_attr = best;
  plan.partitioned.reserve(rels.size());
  for (const storage::Relation& r : rels) {
    plan.partitioned.push_back(r.schema().Contains(best));
  }
  const extmem::Device* dev = rels.front().device();
  plan.shard_memory = std::max<TupleCount>(dev->M() / shards, dev->B());
  return plan;
}

std::uint32_t ShardOfValue(Value v, std::uint32_t shards) {
  std::uint64_t x = v + 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x % shards);
}

std::vector<std::vector<storage::Relation>> PartitionRelations(
    const std::vector<storage::Relation>& rels, const ShardPlan& plan,
    const std::vector<extmem::Device*>& shard_devices) {
  assert(shard_devices.size() == plan.shards);
  assert(rels.size() == plan.partitioned.size());

  std::vector<std::vector<storage::Relation>> out(plan.shards);
  for (auto& shard_rels : out) shard_rels.reserve(rels.size());

  for (std::size_t ri = 0; ri < rels.size(); ++ri) {
    const storage::Relation& rel = rels[ri];
    std::vector<storage::Tuple> tuples;
    {
      const extmem::ScopedIoTag tag(rel.device(), "partition");
      tuples = rel.ReadAll();
    }

    std::vector<std::vector<storage::Tuple>> buckets(plan.shards);
    if (plan.partitioned[ri]) {
      const auto col = rel.schema().PositionOf(plan.partition_attr);
      assert(col.has_value());
      for (storage::Tuple& t : tuples) {
        buckets[ShardOfValue(t[*col], plan.shards)].push_back(std::move(t));
      }
    } else {
      // Broadcast: every shard sees the whole relation.
      for (std::uint32_t s = 0; s < plan.shards; ++s) buckets[s] = tuples;
    }

    for (std::uint32_t s = 0; s < plan.shards; ++s) {
      const extmem::ScopedIoTag tag(shard_devices[s], "partition");
      storage::Relation frag = storage::Relation::FromTuples(
          shard_devices[s], rel.schema(), buckets[s]);
      // Filtering rows preserves their relative order, so the fragment
      // keeps the source's sort metadata.
      out[s].emplace_back(rel.schema(), frag.range(), rel.sorted_by());
    }
  }
  return out;
}

}  // namespace emjoin::parallel
