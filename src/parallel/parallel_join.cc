#include "parallel/parallel_join.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <utility>

#include "extmem/device.h"
#include "metrics/collect.h"
#include "metrics/registry.h"
#include "parallel/shard_plan.h"
#include "parallel/worker_pool.h"
#include "recover/manifest.h"
#include "recover/resume.h"
#include "trace/tracer.h"

namespace emjoin::parallel {

namespace {

// Span names are const char* literals everywhere else; shard roots are
// the one dynamic case, so intern them. Called only at the merge
// barrier, on the orchestrating thread.
const char* InternShardName(std::uint32_t shard) {
  static std::set<std::string> names;
  return names.insert("shard " + std::to_string(shard)).first->c_str();
}

// One shard's task state: the output rows it buffered (replayed in shard
// order at the barrier) and its typed outcome. Each worker touches only
// its own ShardRun and its own shard-local substrate, so the pool needs
// no synchronization around these.
struct ShardRun {
  std::vector<Value> buffer;
  std::uint64_t rows = 0;
  std::optional<extmem::Result<core::AutoJoinReport>> outcome;
};

}  // namespace

extmem::Result<ParallelJoinReport> TryParallelJoinAuto(
    const std::vector<storage::Relation>& rels, const core::EmitFn& emit,
    const ParallelOptions& options, metrics::Registry* merged_metrics) {
  ParallelJoinReport report;
  report.shards = std::max<std::uint32_t>(options.shards, 1);
  report.workers = std::max<std::uint32_t>(options.workers, 1);

  // K=1 (or degenerate input): the exact serial path on the source
  // device — no partitioning, no extra devices, bit-identical I/O.
  if (report.shards == 1 || rels.empty()) {
    std::uint64_t rows = 0;
    const core::EmitFn counted = [&rows, &emit](std::span<const Value> row) {
      ++rows;
      emit(row);
    };
    if (options.manifest != nullptr) {
      extmem::Result<recover::ResumeReport> r =
          recover::TryResumableJoinAuto(rels, counted, options.manifest);
      if (!r.ok()) return r.status();
      report.auto_report = r->join;
      report.results = rows;
      return report;
    }
    extmem::Result<core::AutoJoinReport> r = core::TryJoinAuto(rels, counted);
    if (!r.ok()) return r.status();
    report.auto_report = std::move(r).value();
    report.results = rows;
    return report;
  }

  extmem::Device* src = rels.front().device();
  const ShardPlan plan = PlanShards(rels, report.shards);
  const std::uint32_t k = plan.shards;
  report.sharded = true;
  report.partition_attr = plan.partition_attr;

  // Bind the manifest (fingerprint check) and create every shard child
  // on the orchestrating thread — workers then touch only their own
  // child, the same confinement discipline as devices and tracers.
  recover::QueryManifest* manifest = options.manifest;
  std::vector<recover::QueryManifest*> children(k, nullptr);
  if (manifest != nullptr) {
    if (extmem::Status s = manifest->Bind(rels, k); !s.ok()) return s;
    for (std::uint32_t s = 0; s < k; ++s) children[s] = &manifest->Shard(s);
  }

  // Shard-local substrate: each shard owns a Device with budget
  // max(M/K, B), plus its own Tracer / Registry / FaultInjector when the
  // corresponding sink is active on the source. Nothing mutable is
  // shared across shards, which is what makes the worker pool safe and
  // the merged report deterministic. Declared before the fragments so
  // relations die before the devices backing their files.
  std::vector<std::unique_ptr<extmem::Device>> devices;
  std::vector<std::unique_ptr<trace::Tracer>> tracers(k);
  std::vector<std::unique_ptr<metrics::Registry>> registries(k);
  std::vector<std::unique_ptr<extmem::FaultInjector>> injectors(k);
  std::vector<extmem::Device*> raw_devices;
  devices.reserve(k);
  raw_devices.reserve(k);
  const bool faulted = options.faults && options.fault_config.Active();
  for (std::uint32_t s = 0; s < k; ++s) {
    devices.push_back(
        std::make_unique<extmem::Device>(plan.shard_memory, src->B()));
    extmem::Device* dev = devices.back().get();
    if (src->tracer() != nullptr) {
      tracers[s] = std::make_unique<trace::Tracer>();
      dev->set_tracer(tracers[s].get());
    }
    if (merged_metrics != nullptr) {
      registries[s] = std::make_unique<metrics::Registry>();
      dev->set_metrics(registries[s].get());
    }
    if (faulted) {
      extmem::FaultConfig config = options.fault_config;
      config.seed = options.fault_config.seed + s;
      injectors[s] = std::make_unique<extmem::FaultInjector>(config);
      dev->set_fault_injector(injectors[s].get());
    }
    if (src->events() != nullptr) {
      // Live telemetry: each shard device feeds the source's event sink
      // through a per-shard view that stamps the shard id on every
      // callback. Unlike tracers/registries this is not merged at the
      // barrier — the sink (obs::Telemetry) aggregates concurrently and
      // must therefore be thread-safe, per the device.h contract.
      dev->set_events(src->events()->ShardView(s));
    }
    raw_devices.push_back(dev);
  }

  // Partition on the orchestrating thread. Reads charge the source
  // device (whose own injector, if any, can fail them); fragment writes
  // charge the shard devices under their injectors — so a fault during
  // redistribution surfaces here as the query's Status.
  const extmem::IoStats src_before = src->stats();
  extmem::Result<std::vector<std::vector<storage::Relation>>> partitioned =
      extmem::CatchStatus(
          [&] { return PartitionRelations(rels, plan, raw_devices); });
  if (!partitioned.ok()) return partitioned.status();
  const std::vector<std::vector<storage::Relation>> fragments =
      std::move(partitioned).value();
  report.partition_io = src->stats() - src_before;

  std::vector<ShardRun> runs(k);
  {
    WorkerPool pool(report.workers);
    for (std::uint32_t s = 0; s < k; ++s) {
      pool.Submit([s, &runs, &fragments, &raw_devices, &children] {
        ShardRun& run = runs[s];
        extmem::Device* dev = raw_devices[s];
        recover::QueryManifest* child = children[s];
        const auto emit_lifecycle = [dev](extmem::ObsEventKind kind,
                                          std::uint64_t outcome) {
          if (extmem::IoEventSink* sink = dev->events()) {
            sink->OnEvent(extmem::ObsEvent{kind, "shard", outcome});
          }
        };
        emit_lifecycle(extmem::ObsEventKind::kShardStart, 0);
        if (child != nullptr && child->PhaseCompleted("join")) {
          // This shard finished in a prior attempt: zero-I/O resume —
          // its rows come out of the child journal at the barrier.
          run.rows = child->journal().rows();
          run.outcome = core::AutoJoinReport{
              "resume", "shard join already completed in manifest"};
          emit_lifecycle(extmem::ObsEventKind::kShardFinish, 1);
          return;
        }
        const std::vector<storage::Relation>& shard_rels = fragments[s];
        const bool any_empty =
            std::any_of(shard_rels.begin(), shard_rels.end(),
                        [](const storage::Relation& r) { return r.empty(); });
        if (any_empty) {
          // An empty fragment empties the whole shard-local join; skip
          // the operator instead of paying its fixed I/O for zero rows.
          if (child != nullptr) child->MarkPhase("join");
          run.outcome = core::AutoJoinReport{
              "empty-shard", "an input fragment is empty on this shard"};
          emit_lifecycle(extmem::ObsEventKind::kShardFinish, 1);
          return;
        }
        const core::EmitFn buffer_emit = [&run](std::span<const Value> row) {
          run.buffer.insert(run.buffer.end(), row.begin(), row.end());
          ++run.rows;
        };
        // With a manifest, the shard journals every buffered row; rows a
        // prior interrupted attempt already journaled are suppressed
        // here and recovered from the journal at the barrier instead.
        core::EmitFn shard_emit = buffer_emit;
        if (child != nullptr) {
          shard_emit = core::JournaledEmit(&child->journal(), buffer_emit);
        }
        // TryJoinAuto converts every failure into a Status internally,
        // so no exception crosses the thread boundary.
        run.outcome = core::TryJoinAuto(shard_rels, shard_emit);
        if (child != nullptr && run.outcome->ok()) {
          child->MarkPhase("join");
          run.rows = child->journal().rows();
        }
        emit_lifecycle(extmem::ObsEventKind::kShardFinish,
                       run.outcome->ok() ? 1 : 0);
      });
    }
    pool.Wait();
  }

  // First failing shard (in shard order, not completion order) decides
  // the query's Status; nothing has been emitted yet in that case.
  for (std::uint32_t s = 0; s < k; ++s) {
    if (!runs[s].outcome->ok()) return runs[s].outcome->status();
  }

  // Replay buffered output in shard order: the emitted sequence depends
  // only on the inputs and K, never on worker interleaving.
  if (manifest != nullptr) {
    // Replay each shard's journal (prior-attempt rows plus this run's)
    // through the query-level watermark — the same shard-order fold as
    // MergeShards(), deduplicated so a re-run never double-emits.
    const core::EmitFn journaled =
        core::JournaledEmit(&manifest->journal(), emit);
    for (std::uint32_t s = 0; s < k; ++s) {
      children[s]->journal().ReplayInto(journaled);
    }
    manifest->MarkPhase("join");
  } else {
    const std::size_t width = core::MakeResultSchema(rels).attrs.size();
    for (std::uint32_t s = 0; s < k; ++s) {
      const std::vector<Value>& buf = runs[s].buffer;
      for (std::size_t off = 0; off < buf.size(); off += width) {
        emit(std::span<const Value>(buf.data() + off, width));
      }
    }
  }

  // Merge shard observability into the source's sinks at the barrier.
  report.per_shard.reserve(k);
  for (std::uint32_t s = 0; s < k; ++s) {
    ShardReport sr;
    sr.io = devices[s]->stats();
    sr.tags = devices[s]->per_tag();
    sr.peak_resident = devices[s]->gauge().high_water();
    if (injectors[s] != nullptr) sr.faults = injectors[s]->stats();
    sr.results = runs[s].rows;
    sr.report = runs[s].outcome->value();

    report.results += sr.results;
    const std::uint64_t total = sr.io.total();
    report.sum_shard_ios += total;
    report.max_shard_ios = std::max(report.max_shard_ios, total);
    report.faults = report.faults + sr.faults;

    if (merged_metrics != nullptr) {
      metrics::CollectDeviceDelta(*devices[s], extmem::IoStats{},
                                  metrics::TagSnapshot{}, registries[s].get());
      if (injectors[s] != nullptr) {
        metrics::CollectFaultDelta(injectors[s]->stats(), registries[s].get());
      }
      merged_metrics->MergeFrom(*registries[s],
                                {{"shard", std::to_string(s)}});
    }
    if (tracers[s] != nullptr) {
      src->tracer()->Absorb(*tracers[s], InternShardName(s));
    }
    if (extmem::IoEventSink* sink = devices[s]->events()) {
      sink->OnEvent(extmem::ObsEvent{extmem::ObsEventKind::kWatermark,
                                     "peak_resident_tuples",
                                     sr.peak_resident});
    }
    report.per_shard.push_back(std::move(sr));
  }

  // The dispatcher's pick for the (first non-empty) fragment stands in
  // for the whole run; fragments of one instance agree in practice.
  report.auto_report.algorithm = "empty-shard";
  for (const ShardReport& sr : report.per_shard) {
    if (sr.report.algorithm != "empty-shard") {
      report.auto_report.algorithm = sr.report.algorithm;
      break;
    }
  }
  report.auto_report.reason =
      "hash-partitioned " + std::to_string(k) + " ways on attr " +
      std::to_string(plan.partition_attr) + ", " +
      std::to_string(report.workers) + " workers";
  return report;
}

}  // namespace emjoin::parallel
