#ifndef EMJOIN_PARALLEL_WORKER_POOL_H_
#define EMJOIN_PARALLEL_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"

namespace emjoin::parallel {

/// Fixed-size pool of worker threads draining a FIFO task queue.
///
/// This is the single place in the codebase where threads are spawned
/// (enforced by emjoin_lint's thread-discipline rule): everything the
/// workers touch must be shard-local by construction — its own Device,
/// files, Tracer, Registry, and FaultInjector — so the pool needs no
/// locking beyond its own queue and the merged results stay
/// deterministic regardless of interleaving.
///
/// Tasks must not let exceptions escape: shard tasks end in a typed
/// Status via the Try* APIs, never an unwind across the thread boundary.
class WorkerPool {
 public:
  /// Spawns `workers` threads (at least one).
  explicit WorkerPool(std::uint32_t workers);

  /// Joins all workers; pending tasks are drained first.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues one task. Tasks run in FIFO submission order (each worker
  /// pops the oldest pending task), concurrently across workers.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Barrier: blocks until every submitted task has finished running.
  /// Opted out of thread-safety analysis: the condition-variable wait
  /// protocol (std::unique_lock handed to wait()) is outside the
  /// analysis's model, but the body is the classic guarded-predicate
  /// loop and runs entirely under mu_.
  void Wait() NO_THREAD_SAFETY_ANALYSIS;

  [[nodiscard]] std::uint32_t workers() const {
    return static_cast<std::uint32_t>(threads_.size());
  }

 private:
  // Worker main loop: the cv-wait protocol again, hence the same
  // analysis opt-out as Wait().
  void RunWorker() NO_THREAD_SAFETY_ANALYSIS;

  std::vector<std::thread> threads_;  // written in the ctor only
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  std::mutex mu_;
  std::condition_variable work_cv_ WAITS_ON(mu_);  // tasks / shutdown
  std::condition_variable idle_cv_ WAITS_ON(mu_);  // pool drained
  std::size_t running_ GUARDED_BY(mu_) = 0;  // tasks currently executing
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace emjoin::parallel

#endif  // EMJOIN_PARALLEL_WORKER_POOL_H_
