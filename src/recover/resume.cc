#include "recover/resume.h"

namespace emjoin::recover {

extmem::Result<ResumeReport> TryResumableJoinAuto(
    const std::vector<storage::Relation>& rels, const core::EmitFn& emit,
    QueryManifest* manifest, const ResumeOptions& options) {
  ResumeReport report;
  if (extmem::Status s = manifest->Bind(rels, /*shards=*/1); !s.ok()) {
    return s;
  }
  core::EmitJournal& journal = manifest->journal();
  report.watermark_rows = journal.rows();

  if (options.replay_watermark) {
    journal.ReplayInto(emit);
  }

  if (manifest->PhaseCompleted("join")) {
    // Nothing to run: the interrupted attempt finished the join and the
    // journal holds the complete output.
    report.already_complete = true;
    report.join.algorithm = "resume";
    report.join.reason = "join phase already completed in manifest";
    return report;
  }

  // The watermark journal wraps the sink: rows the prior attempt already
  // delivered are suppressed, new rows are journaled then forwarded. The
  // operators' own GuardedEmit journals are nested inside this one and
  // handle intra-run replays; this journal spans attempts.
  std::uint64_t emitted = 0;
  const core::EmitFn journaled = core::JournaledEmit(
      &journal, [&](std::span<const Value> row) {
        ++emitted;
        emit(row);
      });
  extmem::Result<core::AutoJoinReport> joined =
      core::TryJoinAuto(rels, journaled);
  report.emitted_rows = emitted;
  if (!joined.ok()) {
    // The manifest now holds everything delivered up to the fault — the
    // caller persists it and the next attempt resumes from here.
    return joined.status();
  }
  report.join = *joined;
  manifest->MarkPhase("join");
  return report;
}

}  // namespace emjoin::recover
