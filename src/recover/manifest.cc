#include "recover/manifest.h"

#include <fstream>
#include <sstream>

namespace emjoin::recover {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t Mix(std::uint64_t h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (byte * 8)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

constexpr char kMagic[] = "emjoin-manifest v1";

extmem::Status Malformed(const std::string& path, const std::string& what) {
  return extmem::Status(extmem::StatusCode::kInvalidInput,
                        "manifest " + path + ": " + what);
}

}  // namespace

std::uint64_t FingerprintOf(const std::vector<storage::Relation>& rels,
                            std::uint32_t shards) {
  std::uint64_t h = kFnvOffset;
  h = Mix(h, rels.size());
  for (const storage::Relation& r : rels) {
    h = Mix(h, r.size());
    h = Mix(h, r.schema().arity());
    for (const storage::AttrId a : r.schema().attrs()) {
      h = Mix(h, static_cast<std::uint64_t>(a));
    }
  }
  h = Mix(h, shards);
  return h;
}

extmem::Status QueryManifest::Bind(const std::vector<storage::Relation>& rels,
                                   std::uint32_t shards) {
  const std::uint64_t fp = FingerprintOf(rels, shards);
  if (fingerprint_ != 0 && fingerprint_ != fp) {
    return extmem::Status(
        extmem::StatusCode::kInvalidInput,
        "manifest fingerprint mismatch: manifest was recorded for a "
        "different query instance (have " +
            std::to_string(fingerprint_) + ", query is " + std::to_string(fp) +
            ")");
  }
  fingerprint_ = fp;
  return extmem::Status::Ok();
}

void QueryManifest::MarkPhase(const std::string& name) {
  for (PhaseRecord& p : phases_) {
    if (p.name == name) {
      p.completed = true;
      p.rows = journal_.rows();
      return;
    }
  }
  phases_.push_back(PhaseRecord{name, true, journal_.rows()});
}

bool QueryManifest::PhaseCompleted(const std::string& name) const {
  for (const PhaseRecord& p : phases_) {
    if (p.name == name) return p.completed;
  }
  return false;
}

extmem::SortManifest* QueryManifest::SortCheckpoint(const std::string& name) {
  return &sort_checkpoints_[name];
}

QueryManifest& QueryManifest::Shard(std::uint32_t s) {
  if (s >= shards_.size()) shards_.resize(s + 1);
  if (!shards_[s]) shards_[s] = std::make_unique<QueryManifest>();
  return *shards_[s];
}

void QueryManifest::MergeShards() {
  for (const std::unique_ptr<QueryManifest>& shard : shards_) {
    if (shard) journal_.MergeFrom(shard->journal_);
  }
}

void QueryManifest::MergeFrom(const QueryManifest& other) {
  journal_.MergeFrom(other.journal_);
  for (const PhaseRecord& p : other.phases_) {
    if (p.completed) MarkPhase(p.name);
  }
}

namespace {

void WriteBody(std::ostream& out, const QueryManifest& m);

void WriteJournal(std::ostream& out, const core::EmitJournal& j) {
  out << "journal " << j.width() << " " << j.rows() << "\n";
  const std::vector<Value>& data = j.data();
  for (std::uint64_t r = 0; r < j.rows(); ++r) {
    for (std::uint32_t c = 0; c < j.width(); ++c) {
      if (c != 0) out << " ";
      out << data[static_cast<std::size_t>(r) * j.width() + c];
    }
    out << "\n";
  }
}

void WriteBody(std::ostream& out, const QueryManifest& m) {
  out << "fingerprint " << m.fingerprint() << "\n";
  out << "phases " << m.phases().size() << "\n";
  for (const PhaseRecord& p : m.phases()) {
    out << "phase " << (p.completed ? 1 : 0) << " " << p.rows << " " << p.name
        << "\n";
  }
  WriteJournal(out, m.journal());
}

}  // namespace

extmem::Status QueryManifest::WriteTo(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return extmem::Status(extmem::StatusCode::kIoError,
                          "manifest " + path + ": cannot open for writing");
  }
  out << kMagic << "\n";
  WriteBody(out, *this);
  out << "shards " << shards_.size() << "\n";
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!shards_[s]) continue;
    out << "shard " << s << "\n";
    WriteBody(out, *shards_[s]);
  }
  out << "end\n";
  out.flush();
  if (!out) {
    return extmem::Status(extmem::StatusCode::kIoError,
                          "manifest " + path + ": write failed");
  }
  return extmem::Status::Ok();
}

namespace {

extmem::Status ReadJournal(std::istream& in, const std::string& path,
                           core::EmitJournal* j) {
  std::string word;
  std::uint32_t width = 0;
  std::uint64_t rows = 0;
  if (!(in >> word) || word != "journal" || !(in >> width) || !(in >> rows)) {
    return Malformed(path, "expected journal header");
  }
  std::vector<Value> data;
  data.reserve(static_cast<std::size_t>(rows) * width);
  for (std::uint64_t i = 0; i < rows * width; ++i) {
    Value v = 0;
    if (!(in >> v)) return Malformed(path, "truncated journal row data");
    data.push_back(v);
  }
  j->Restore(width, std::move(data));
  return extmem::Status::Ok();
}

}  // namespace

extmem::Status QueryManifest::ReadFrom(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return extmem::Status(extmem::StatusCode::kNotFound,
                          "manifest " + path + ": cannot open for reading");
  }
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Malformed(path, "bad magic line");
  }

  const auto read_body = [&](QueryManifest* m) -> extmem::Status {
    std::string word;
    if (!(in >> word) || word != "fingerprint" || !(in >> m->fingerprint_)) {
      return Malformed(path, "expected fingerprint");
    }
    std::size_t nphases = 0;
    if (!(in >> word) || word != "phases" || !(in >> nphases)) {
      return Malformed(path, "expected phase count");
    }
    m->phases_.clear();
    for (std::size_t i = 0; i < nphases; ++i) {
      PhaseRecord p;
      int completed = 0;
      if (!(in >> word) || word != "phase" || !(in >> completed) ||
          !(in >> p.rows)) {
        return Malformed(path, "malformed phase record");
      }
      p.completed = completed != 0;
      // The phase name is the remainder of the line (may contain spaces).
      std::getline(in, line);
      const std::size_t start = line.find_first_not_of(' ');
      p.name = start == std::string::npos ? "" : line.substr(start);
      m->phases_.push_back(std::move(p));
    }
    return ReadJournal(in, path, &m->journal_);
  };

  if (extmem::Status s = read_body(this); !s.ok()) return s;

  std::string word;
  std::size_t nshards = 0;
  if (!(in >> word) || word != "shards" || !(in >> nshards)) {
    return Malformed(path, "expected shard count");
  }
  shards_.clear();
  while (in >> word && word == "shard") {
    std::size_t s = 0;
    if (!(in >> s) || s >= nshards) return Malformed(path, "bad shard id");
    if (extmem::Status st = read_body(&Shard(static_cast<std::uint32_t>(s)));
        !st.ok()) {
      return st;
    }
  }
  if (word != "end") return Malformed(path, "missing end marker");
  return extmem::Status::Ok();
}

}  // namespace emjoin::recover
