#ifndef EMJOIN_RECOVER_MANIFEST_H_
#define EMJOIN_RECOVER_MANIFEST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/emit.h"
#include "extmem/sorter.h"
#include "extmem/status.h"
#include "storage/relation.h"

namespace emjoin::recover {

/// Progress record for one named query phase ("join", "shard 3", ...).
/// A completed phase is never re-run by a resumed query; its emitted
/// rows are recovered from the journal instead.
struct PhaseRecord {
  std::string name;
  bool completed = false;
  std::uint64_t rows = 0;  // rows journaled when the phase completed
};

/// Whole-query checkpoint: composes the sorter's SortManifest (per-sort
/// run checkpoints) with per-phase progress records and the *output
/// watermark* — an EmitJournal of every row delivered so far. A query
/// interrupted at any virtual-I/O tick resumes from its manifest: rows
/// the first attempt already emitted are deduplicated against the
/// watermark, completed phases (and, under sharded execution, completed
/// shards) are skipped, and the union of both attempts' outputs is
/// bit-identical to the uninterrupted run with zero duplicate emits.
///
/// Sharded execution gives every shard its own child manifest
/// (`Shard(s)`); MergeShards() folds them into the query-level journal
/// in shard order — the same receiver-keeps-its-prefix discipline as
/// metrics::Registry::MergeFrom.
///
/// The manifest is host-side state (like the tracer and the registry):
/// maintaining it charges no device I/O, so fault-free golden counts
/// are untouched; any device rework a resume performs is charged under
/// the "recovery" tag by the operators themselves.
///
/// Persistence (WriteTo/ReadFrom) covers the fingerprint, phases, and
/// journals — everything needed to resume across processes. Sort
/// checkpoints hold live device file handles and are therefore
/// in-process only; a cross-process resume simply redoes any
/// interrupted sort (never the journaled output).
class QueryManifest {
 public:
  QueryManifest() = default;

  QueryManifest(const QueryManifest&) = delete;
  QueryManifest& operator=(const QueryManifest&) = delete;

  /// Binds this manifest to a query instance: hashes the relation
  /// shapes/sizes and the shard count. On a fresh manifest this stamps
  /// the fingerprint; on a loaded one it verifies the query matches
  /// (kInvalidInput otherwise — resuming a different query from a stale
  /// manifest would silently corrupt output).
  [[nodiscard]] extmem::Status Bind(
      const std::vector<storage::Relation>& rels, std::uint32_t shards);

  std::uint64_t fingerprint() const { return fingerprint_; }

  /// The output watermark: every row delivered to the query's sink so
  /// far, in first-emission order.
  core::EmitJournal& journal() { return journal_; }
  const core::EmitJournal& journal() const { return journal_; }

  /// Marks `name` completed with the current journaled row count.
  void MarkPhase(const std::string& name);
  [[nodiscard]] bool PhaseCompleted(const std::string& name) const;
  const std::vector<PhaseRecord>& phases() const { return phases_; }

  /// Named sort checkpoint, created on first use. In-process only (see
  /// class comment); not persisted by WriteTo.
  extmem::SortManifest* SortCheckpoint(const std::string& name);

  /// Child manifest for shard `s` (created on first use). Thread
  /// confinement matches the rest of the substrate: each shard's worker
  /// touches only its own child; create all children on the
  /// orchestrating thread before workers start.
  QueryManifest& Shard(std::uint32_t s);
  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }

  /// Folds every shard journal into the query-level journal, in shard
  /// order. Idempotent: already-merged rows deduplicate.
  void MergeShards();

  /// Folds `other`'s journal and phases into this manifest.
  void MergeFrom(const QueryManifest& other);

  /// Persists / restores the manifest as a small text file on the host
  /// filesystem. kNotFound when `path` cannot be opened for reading,
  /// kInvalidInput on a malformed file, kIoError on a failed write.
  [[nodiscard]] extmem::Status WriteTo(const std::string& path) const;
  [[nodiscard]] extmem::Status ReadFrom(const std::string& path);

 private:
  std::uint64_t fingerprint_ = 0;
  core::EmitJournal journal_;
  std::vector<PhaseRecord> phases_;
  std::map<std::string, extmem::SortManifest> sort_checkpoints_;
  std::vector<std::unique_ptr<QueryManifest>> shards_;
};

/// Query fingerprint: relation count, sizes, schemas, and shard count.
std::uint64_t FingerprintOf(const std::vector<storage::Relation>& rels,
                            std::uint32_t shards);

}  // namespace emjoin::recover

#endif  // EMJOIN_RECOVER_MANIFEST_H_
