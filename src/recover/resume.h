#ifndef EMJOIN_RECOVER_RESUME_H_
#define EMJOIN_RECOVER_RESUME_H_

#include <cstdint>
#include <vector>

#include "core/dispatch.h"
#include "core/emit.h"
#include "extmem/status.h"
#include "recover/manifest.h"
#include "storage/relation.h"

namespace emjoin::recover {

struct ResumeOptions {
  /// Re-deliver the watermark (rows the interrupted attempt already
  /// emitted) into the sink before running. Off by default: the usual
  /// consumer (CLI, soak harness) already received those rows from the
  /// first attempt, and wants only the remainder — the union of both
  /// attempts is then the exact uninterrupted output with zero
  /// duplicates. Turn on for a fresh sink that needs the full set.
  bool replay_watermark = false;
};

struct ResumeReport {
  /// Rows the manifest already held when this attempt started.
  std::uint64_t watermark_rows = 0;
  /// New rows this attempt delivered to the sink.
  std::uint64_t emitted_rows = 0;
  /// True when the manifest showed the query already complete and no
  /// operator work ran at all.
  bool already_complete = false;
  core::AutoJoinReport join;
};

/// JoinAuto made whole-query resumable (K = 1; sharded execution wires
/// the manifest through parallel::ParallelOptions instead). Binds
/// `manifest` to the query (fingerprint check), routes every emitted row
/// through the manifest's watermark journal — suppressing rows a prior
/// interrupted attempt already delivered — and marks the "join" phase
/// complete on success, so a further resume replays from the journal
/// without re-running anything. The manifest is updated in place on
/// BOTH success and failure; persisting it after a failed attempt
/// (QueryManifest::WriteTo) is exactly what makes the next attempt a
/// resume instead of a restart.
[[nodiscard]] extmem::Result<ResumeReport> TryResumableJoinAuto(
    const std::vector<storage::Relation>& rels, const core::EmitFn& emit,
    QueryManifest* manifest, const ResumeOptions& options = {});

}  // namespace emjoin::recover

#endif  // EMJOIN_RECOVER_RESUME_H_
