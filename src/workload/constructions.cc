#include "workload/constructions.h"

#include <cassert>

#include "query/edge_cover.h"

namespace emjoin::workload {

namespace {

using storage::Schema;
using storage::Tuple;

Relation Build(extmem::Device* dev, Schema schema,
               const std::vector<Tuple>& tuples) {
  return Relation::FromTuples(dev, std::move(schema), tuples);
}

}  // namespace

Relation Matching(extmem::Device* dev, AttrId a, AttrId b, TupleCount n) {
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (TupleCount i = 0; i < n; ++i) tuples.push_back({i, i});
  return Build(dev, Schema({a, b}), tuples);
}

Relation ManyToOne(extmem::Device* dev, AttrId a, AttrId b, TupleCount n,
                   TupleCount dom_b) {
  assert(dom_b >= 1);
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (TupleCount i = 0; i < n; ++i) tuples.push_back({i, i % dom_b});
  return Build(dev, Schema({a, b}), tuples);
}

Relation OneToMany(extmem::Device* dev, AttrId a, AttrId b, TupleCount n,
                   TupleCount dom_a) {
  assert(dom_a >= 1);
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (TupleCount i = 0; i < n; ++i) tuples.push_back({i % dom_a, i});
  return Build(dev, Schema({a, b}), tuples);
}

Relation CrossProduct(extmem::Device* dev, AttrId a, AttrId b,
                      TupleCount dom_a, TupleCount dom_b) {
  std::vector<Tuple> tuples;
  tuples.reserve(dom_a * dom_b);
  for (TupleCount i = 0; i < dom_a; ++i) {
    for (TupleCount j = 0; j < dom_b; ++j) tuples.push_back({i, j});
  }
  return Build(dev, Schema({a, b}), tuples);
}

Relation CrossProductN(extmem::Device* dev,
                       const std::vector<AttrId>& attrs,
                       const std::vector<TupleCount>& doms) {
  assert(attrs.size() == doms.size());
  std::vector<Tuple> tuples;
  Tuple current(attrs.size(), 0);
  // Odometer enumeration of the cross product.
  while (true) {
    tuples.push_back(current);
    std::size_t pos = attrs.size();
    while (pos > 0) {
      --pos;
      if (++current[pos] < doms[pos]) break;
      current[pos] = 0;
      if (pos == 0) {
        return Build(dev, Schema(attrs), tuples);
      }
    }
  }
}

Relation SingleTuple(extmem::Device* dev, const std::vector<AttrId>& attrs,
                     const std::vector<Value>& values) {
  return Build(dev, Schema(attrs), {values});
}

std::vector<Relation> L3WorstCase(extmem::Device* dev, TupleCount n1,
                                  TupleCount n2, TupleCount n3) {
  // v1=0, v2=1, v3=2, v4=3. R2 gets n2 tuples sharing v2=0, distinct v3 is
  // impossible while keeping dom(v3)={0}; the canonical Fig. 3 instance
  // uses a single middle tuple — extra middle tuples (0, j) for j>0 would
  // dangle, so we keep R2 = {(0,0)} and treat n2 as an upper bound.
  (void)n2;
  std::vector<Relation> rels;
  rels.push_back(ManyToOne(dev, 0, 1, n1, 1));  // R1: (i, 0)
  rels.push_back(SingleTuple(dev, {1, 2}, {0, 0}));
  rels.push_back(OneToMany(dev, 2, 3, n3, 1));  // R3: (0, i)
  return rels;
}

std::vector<Relation> StarWorstCase(
    extmem::Device* dev, const std::vector<TupleCount>& petal_sizes) {
  const std::uint32_t k = static_cast<std::uint32_t>(petal_sizes.size());
  std::vector<Relation> rels;
  // Core over attrs {0..k-1}, single all-zeros tuple.
  std::vector<AttrId> core_attrs;
  for (std::uint32_t i = 0; i < k; ++i) core_attrs.push_back(i);
  rels.push_back(
      SingleTuple(dev, core_attrs, std::vector<Value>(k, 0)));
  // Petal i = {i, k+i}: one-to-many from the single core value.
  for (std::uint32_t i = 0; i < k; ++i) {
    rels.push_back(OneToMany(dev, i, k + i, petal_sizes[i], 1));
  }
  return rels;
}

std::vector<Relation> CrossProductLine(extmem::Device* dev,
                                       const std::vector<TupleCount>& z) {
  assert(z.size() >= 2);
  std::vector<Relation> rels;
  for (std::size_t i = 0; i + 1 < z.size(); ++i) {
    rels.push_back(CrossProduct(dev, static_cast<AttrId>(i),
                                static_cast<AttrId>(i + 1), z[i], z[i + 1]));
  }
  return rels;
}

std::vector<Relation> EqualSizeWorstCase(extmem::Device* dev,
                                         const query::JoinQuery& q,
                                         TupleCount n) {
  // §7.1 / LP duality: the greedy cover's packing witness gives one
  // attribute per cover edge such that no relation contains two of them.
  const std::vector<AttrId> packing =
      query::GreedyCoverWithPacking(q).packing;

  auto dom_of = [&](AttrId a) -> TupleCount {
    for (AttrId p : packing) {
      if (p == a) return n;
    }
    return 1;
  };

  std::vector<Relation> rels;
  for (query::EdgeId e = 0; e < q.num_edges(); ++e) {
    std::vector<TupleCount> doms;
    for (AttrId a : q.edge(e).attrs()) doms.push_back(dom_of(a));
    rels.push_back(CrossProductN(dev, q.edge(e).attrs(), doms));
  }
  return rels;
}

std::vector<Relation> UnbalancedL5(extmem::Device* dev, TupleCount n1,
                                   TupleCount n5,
                                   const std::vector<TupleCount>& z) {
  assert(z.size() == 4);  // |dom(v2)|, |dom(v3)|, |dom(v4)|, |dom(v5)|
  assert(z[1] >= z[2] && "R3 must map dom(v3) onto dom(v4)");
  assert(n1 >= z[0] && n5 >= z[3] && "ends must cover their join domains");
  std::vector<Relation> rels;
  // Attrs v1..v6 = 0..5.
  rels.push_back(ManyToOne(dev, 0, 1, n1, z[0]));       // R1 onto dom(v2)
  rels.push_back(CrossProduct(dev, 1, 2, z[0], z[1]));  // R2
  rels.push_back(ManyToOne(dev, 2, 3, z[1], z[2]));     // R3: dom(v3)->dom(v4)
  rels.push_back(CrossProduct(dev, 3, 4, z[2], z[3]));  // R4
  rels.push_back(OneToMany(dev, 4, 5, n5, z[3]));       // R5 from dom(v5)
  return rels;
}

}  // namespace emjoin::workload
