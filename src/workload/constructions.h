#ifndef EMJOIN_WORKLOAD_CONSTRUCTIONS_H_
#define EMJOIN_WORKLOAD_CONSTRUCTIONS_H_

#include <vector>

#include "query/hypergraph.h"
#include "storage/relation.h"

namespace emjoin::workload {

using storage::AttrId;
using storage::Relation;

// ---------------------------------------------------------------------
// Building blocks. The paper's lower-bound instances are all composed of
// matchings, one/many mappings, cross products and single tuples over
// small join-attribute domains; these primitives build exactly those.
// Values are 0-based; domains are {0, ..., dom-1}.
// ---------------------------------------------------------------------

/// n tuples (i, i): a one-to-one matching between a and b.
Relation Matching(extmem::Device* dev, AttrId a, AttrId b, TupleCount n);

/// n tuples (i, i mod dom_b): many-to-one from dom(a) onto dom(b).
Relation ManyToOne(extmem::Device* dev, AttrId a, AttrId b, TupleCount n,
                   TupleCount dom_b);

/// n tuples (i mod dom_a, i): one-to-many from dom(a) to dom(b).
Relation OneToMany(extmem::Device* dev, AttrId a, AttrId b, TupleCount n,
                   TupleCount dom_a);

/// All dom_a * dom_b pairs: the cross product of the two domains.
Relation CrossProduct(extmem::Device* dev, AttrId a, AttrId b,
                      TupleCount dom_a, TupleCount dom_b);

/// A relation over `attrs` that is the cross product of per-attribute
/// domains (|dom(attr i)| = doms[i]).
Relation CrossProductN(extmem::Device* dev,
                       const std::vector<AttrId>& attrs,
                       const std::vector<TupleCount>& doms);

/// One tuple with the given values.
Relation SingleTuple(extmem::Device* dev, const std::vector<AttrId>& attrs,
                     const std::vector<Value>& values);

// ---------------------------------------------------------------------
// Named constructions from the paper.
// ---------------------------------------------------------------------

/// Figure 3: the L3 lower-bound instance. dom(v2) = dom(v3) = {0};
/// R1 has n1 tuples (v1, v2), R2 the single tuple (0,0), R3 has n3
/// tuples (v3, v4). |Q(R)| = |Q(R,{e1,e3})| = n1 * n3.
/// Attributes are numbered 0..3 in line order.
std::vector<Relation> L3WorstCase(extmem::Device* dev, TupleCount n1,
                                  TupleCount n2, TupleCount n3);

/// Theorem 4: the star lower-bound instance. Every join attribute's
/// domain has one value; petal i is a one-to-many matching of size
/// petal_sizes[i]; the core is a single all-zeros tuple. The partial join
/// on the petals has size Π petal_sizes. Query shape follows
/// JoinQuery::Star(petals): core attrs 0..k-1, petal i = {i, k+i}.
std::vector<Relation> StarWorstCase(extmem::Device* dev,
                                    const std::vector<TupleCount>& petal_sizes);

/// Theorem 5: the balanced-line lower-bound instance with attribute
/// domain sizes z[0..n] (attribute v_i has domain size z[i]); relation
/// e_i is the cross product dom(v_i) × dom(v_{i+1}), so N_i = z[i]*z[i+1].
/// With an alternating z (1, N, 1, N, ...), the partial join on the
/// independent relation subset reaches Π over that subset of N_i.
std::vector<Relation> CrossProductLine(extmem::Device* dev,
                                       const std::vector<TupleCount>& z);

/// §7.1: the equal-size lower-bound instance for any acyclic query: set
/// the domain of each packing vertex to n and all others to 1; every
/// relation is the cross product of its domains. The packing is derived
/// from the greedy minimum edge cover (LP duality). Partial join size on
/// the cover is n^c.
std::vector<Relation> EqualSizeWorstCase(extmem::Device* dev,
                                         const query::JoinQuery& q,
                                         TupleCount n);

/// §6.3: an unbalanced L5 instance (N1*N3*N5 < N2*N4): R2 and R4 are
/// cross products dom(v2)×dom(v3) and dom(v4)×dom(v5); R3 is a mapping
/// from dom(v3) onto dom(v4) (so N3 = |dom(v3)| = z[1], and z[1] >=
/// z[2]); R1 is many-to-one onto dom(v2) and R5 one-to-many from
/// dom(v5). Attributes 0..5 in line order; z are the four join-domain
/// sizes (|dom(v2)|, |dom(v3)|, |dom(v4)|, |dom(v5)|); requires n1 >=
/// z[0] and n5 >= z[3] so the instance is fully reduced.
std::vector<Relation> UnbalancedL5(extmem::Device* dev, TupleCount n1,
                                   TupleCount n5,
                                   const std::vector<TupleCount>& z);

}  // namespace emjoin::workload

#endif  // EMJOIN_WORKLOAD_CONSTRUCTIONS_H_
