#ifndef EMJOIN_WORKLOAD_SOAK_H_
#define EMJOIN_WORKLOAD_SOAK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "extmem/fault_injector.h"
#include "extmem/io_stats.h"
#include "extmem/status.h"

namespace emjoin::workload {

/// Randomized fault-soak harness (shared by tests/fault_soak_test.cc and
/// tools/emjoin_soak.cc). One soak run derives a full plan — workload,
/// device geometry, algorithm, and fault schedule — deterministically
/// from a single seed, executes it twice (fault-free baseline, then with
/// the injector attached), and checks the robustness contract: the
/// faulted run either produces bit-identical output (same row count and
/// content hash as the baseline) or ends in a clean typed error. Any
/// violation is reproducible from the printed seed alone.

inline constexpr int kNumSoakWorkloads = 4;

/// "sort", "join-l3", "join-star", "join-line".
const char* SoakWorkloadName(int workload);

/// Everything a run needs, all derived from the seed. Workload inputs
/// are a function of the plan only — never of the injector's PRNG — so
/// the baseline and the faulted run operate on identical data.
struct SoakPlan {
  std::uint64_t seed = 0;
  int workload = 0;
  TupleCount memory = 256;
  TupleCount block = 16;
  bool use_yannakakis = false;            // joins only
  /// shards >= 2 routes a join through TryParallelJoinAuto (auto
  /// dispatch only) and a sort through K shard devices each running its
  /// own SortManifest-checkpointed sort: per-shard injectors are seeded
  /// faults.seed + shard id, so the sharded fault schedule is as
  /// replayable as the serial one.
  std::uint32_t shards = 1;
  std::uint32_t workers = 1;
  std::vector<TupleCount> params;         // workload-specific sizes
  extmem::FaultConfig faults;
};

SoakPlan PlanFromSeed(std::uint64_t seed);

struct SoakOutcome {
  /// True when the run produced complete output; otherwise `status`
  /// carries the typed error it ended in.
  bool completed = false;
  extmem::Status status;

  std::uint64_t rows = 0;
  std::uint64_t hash = 0;   // order-sensitive FNV-1a over the output
  /// Commutative content hash (sum of per-row FNV-1a hashes): equal iff
  /// the output *sets* match regardless of emission order. The soak
  /// contract for a completed faulted run is: rows and `hash` match the
  /// baseline, OR the run degraded under budget shrinks (smaller chunk
  /// plans legally reorder emissions) and rows and `set_hash` match.
  std::uint64_t set_hash = 0;
  bool resumed_sort = false;  // the sort workload resumed from a manifest

  /// Injector tallies (zero for baselines). For sharded runs that
  /// complete, the per-shard injectors' tallies are folded in on top of
  /// the source device's.
  extmem::FaultStats fault_stats;
  extmem::IoStats recovery;        // the "recovery" tag's charges
  extmem::IoStats total;           // device totals for the run
};

/// Executes the plan on a fresh device; `inject` attaches the seeded
/// injector. Never throws: every failure mode is folded into the
/// returned outcome (that is the property under test).
SoakOutcome RunPlan(const SoakPlan& plan, bool inject);

/// One-line description for failure reports: the seed, the plan, and how
/// the run ended — everything needed to replay.
std::string ReplayLine(const SoakPlan& plan, const SoakOutcome& outcome);

/// Kill-and-resume soak: runs a seed-derived join three times — (1) an
/// uninterrupted baseline, (2) a run interrupted at a seed-derived
/// virtual-I/O tick (FaultConfig::kill_at_ios) journaling into a
/// QueryManifest, (3) a resume from that manifest — and checks that the
/// rows delivered before the kill plus the rows the resume delivered are
/// exactly the baseline output set with zero duplicate emits.
struct KillResumeOutcome {
  bool ok = false;
  /// What went wrong when !ok; everything needed to replay when ok.
  std::string detail;
  bool interrupted = false;   // the kill actually fired mid-run
  std::uint64_t kill_tick = 0;
  std::uint64_t baseline_rows = 0;
  std::uint64_t pre_kill_rows = 0;  // delivered by the interrupted run
  std::uint64_t resumed_rows = 0;   // delivered by the resumed run
};

/// `shards` == 1 exercises the serial resume path, >= 2 the sharded one
/// (per-shard manifests; completed shards skip on resume). The workload,
/// geometry, and kill tick all derive from `seed`.
KillResumeOutcome RunKillResume(std::uint64_t seed, std::uint32_t shards);

}  // namespace emjoin::workload

#endif  // EMJOIN_WORKLOAD_SOAK_H_
