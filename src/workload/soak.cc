#include "workload/soak.h"

#include <algorithm>
#include <memory>
#include <random>
#include <span>
#include <sstream>
#include <utility>

#include "core/dispatch.h"
#include "core/yannakakis.h"
#include "extmem/device.h"
#include "extmem/file.h"
#include "extmem/sorter.h"
#include "parallel/parallel_join.h"
#include "recover/manifest.h"
#include "workload/constructions.h"

namespace emjoin::workload {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void HashValue(std::uint64_t* h, Value v) {
  *h ^= v;
  *h *= kFnvPrime;
}

void HashRowEnd(std::uint64_t* h) { HashValue(h, ~Value{0} - 1); }

// Standalone FNV-1a of one row, for the commutative set hash (summed
// per-row hashes are order-insensitive, unlike the running order hash).
std::uint64_t RowFnv(std::span<const Value> row) {
  std::uint64_t h = kFnvOffset;
  for (Value v : row) HashValue(&h, v);
  HashRowEnd(&h);
  return h;
}

// Deterministic tuple stream for the sort workload, derived from the
// plan seed only (never the injector PRNG).
struct Xorshift {
  std::uint64_t x;
  std::uint64_t Next() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  }
};

struct BodyResult {
  std::uint64_t rows = 0;
  std::uint64_t hash = kFnvOffset;
  std::uint64_t set_hash = 0;  // commutative: sum of per-row FNV hashes
  bool resumed = false;
  extmem::FaultStats shard_faults;  // per-shard injector tallies (sharded)
  extmem::IoStats shard_recovery;   // shard devices' "recovery" charges
  extmem::IoStats shard_total;      // shard devices' whole-run totals
};

// One checkpointed sort of `input` with a single manifest resume on a
// transient failure (faults stay active, so the retry may itself end in
// a typed error). Shared by the serial and sharded sort workloads.
extmem::FilePtr SortWithOneResume(const extmem::FilePtr& input,
                                  bool* resumed) {
  const std::uint32_t key[] = {0};
  extmem::SortManifest manifest;
  auto sorted =
      extmem::TryExternalSort(extmem::FileRange(input), key, &manifest);
  if (!sorted.ok()) {
    const extmem::StatusCode code = sorted.status().code();
    const bool transient = code == extmem::StatusCode::kIoError ||
                           code == extmem::StatusCode::kDataLoss;
    if (transient && manifest.valid) {
      *resumed = true;
      sorted =
          extmem::TryExternalSort(extmem::FileRange(input), key, &manifest);
    }
  }
  if (!sorted.ok()) extmem::ThrowStatus(sorted.status());
  return *std::move(sorted);
}

// Content hash via uncharged raw access (a correctness oracle, exempt
// from the cost model like the sorter's own tests).
void HashSortedFile(const extmem::FilePtr& file, BodyResult* out) {
  out->rows += file->size();
  for (TupleCount i = 0; i < file->size(); ++i) {
    const Value* t = file->RawTuple(i);
    HashValue(&out->hash, t[0]);
    HashValue(&out->hash, t[1]);
    HashRowEnd(&out->hash);
    const Value row[2] = {t[0], t[1]};
    out->set_hash += RowFnv(row);
  }
}

BodyResult RunSort(extmem::Device* dev, const SoakPlan& plan, bool inject) {
  const TupleCount n = plan.params.at(0);
  BodyResult out;

  if (plan.shards <= 1) {
    extmem::FilePtr input = dev->NewFile(2);
    {
      extmem::FileWriter writer(input);
      Xorshift rng{plan.seed | 1};
      for (TupleCount i = 0; i < n; ++i) {
        const Value row[2] = {rng.Next() % 997, i};
        writer.Append(row);
      }
      writer.Finish();
    }
    HashSortedFile(SortWithOneResume(input, &out.resumed), &out);
    return out;
  }

  // Sharded sort: partition the same deterministic stream by key across
  // K shard devices (budget max(M/K, 4B), per-shard injectors seeded
  // seed + shard id), run each fragment's checkpointed sort with its own
  // SortManifest — so manifest resume is exercised under K > 1 — and
  // fold the outputs in shard order.
  const std::uint32_t k = plan.shards;
  const TupleCount shard_mem =
      std::max<TupleCount>(plan.memory / k, 4 * plan.block);
  std::vector<std::unique_ptr<extmem::Device>> devices;
  std::vector<std::unique_ptr<extmem::FaultInjector>> injectors(k);
  std::vector<extmem::FilePtr> inputs;
  for (std::uint32_t s = 0; s < k; ++s) {
    devices.push_back(std::make_unique<extmem::Device>(shard_mem, plan.block));
    if (inject) {
      extmem::FaultConfig config = plan.faults;
      config.seed = plan.faults.seed + s;
      injectors[s] = std::make_unique<extmem::FaultInjector>(config);
      devices[s]->set_fault_injector(injectors[s].get());
    }
    inputs.push_back(devices[s]->NewFile(2));
  }
  {
    std::vector<std::unique_ptr<extmem::FileWriter>> writers;
    for (std::uint32_t s = 0; s < k; ++s) {
      writers.push_back(std::make_unique<extmem::FileWriter>(inputs[s]));
    }
    Xorshift rng{plan.seed | 1};
    for (TupleCount i = 0; i < n; ++i) {
      const Value row[2] = {rng.Next() % 997, i};
      writers[row[0] % k]->Append(row);
    }
    for (auto& w : writers) w->Finish();
  }
  for (std::uint32_t s = 0; s < k; ++s) {
    HashSortedFile(SortWithOneResume(inputs[s], &out.resumed), &out);
  }
  for (std::uint32_t s = 0; s < k; ++s) {
    if (injectors[s]) out.shard_faults = out.shard_faults + injectors[s]->stats();
    for (const auto& [tag, stats] : devices[s]->per_tag()) {
      if (tag == "recovery") out.shard_recovery += stats;
    }
    out.shard_total += devices[s]->stats();
  }
  return out;
}

std::vector<storage::Relation> BuildJoinRels(extmem::Device* dev,
                                             const SoakPlan& plan) {
  switch (plan.workload) {
    case 1:
      return L3WorstCase(dev, plan.params.at(0), 1, plan.params.at(1));
    case 2:
      return StarWorstCase(
          dev, {plan.params.at(0), plan.params.at(1), plan.params.at(2)});
    default:
      return CrossProductLine(dev,
                              {1, plan.params.at(0), 1, plan.params.at(1), 1});
  }
}

BodyResult RunJoin(extmem::Device* dev, const SoakPlan& plan, bool inject) {
  std::vector<storage::Relation> rels = BuildJoinRels(dev, plan);

  BodyResult out;
  const auto emit = [&](std::span<const Value> row) {
    ++out.rows;
    for (Value v : row) HashValue(&out.hash, v);
    HashRowEnd(&out.hash);
    out.set_hash += RowFnv(row);
  };
  // The throwing entry points: device faults surface as StatusException,
  // which RunPlan's CatchStatus turns back into a typed outcome. The
  // sharded path is already typed (one shard's failure is the query's
  // Status), so it re-throws to land in the same catch.
  if (plan.shards > 1 && !plan.use_yannakakis) {
    parallel::ParallelOptions options;
    options.shards = plan.shards;
    options.workers = plan.workers;
    options.faults = inject;
    options.fault_config = plan.faults;
    const auto report = parallel::TryParallelJoinAuto(rels, emit, options);
    if (!report.ok()) extmem::ThrowStatus(report.status());
    out.shard_faults = report->faults;
  } else if (plan.use_yannakakis) {
    core::YannakakisJoin(rels, emit);
  } else {
    core::JoinAuto(rels, emit);
  }
  return out;
}

template <typename T>
T Pick(std::mt19937_64& rng, std::initializer_list<T> choices) {
  auto it = choices.begin();
  std::advance(it, rng() % choices.size());
  return *it;
}

}  // namespace

const char* SoakWorkloadName(int workload) {
  switch (workload) {
    case 0: return "sort";
    case 1: return "join-l3";
    case 2: return "join-star";
    case 3: return "join-line";
    default: return "unknown";
  }
}

SoakPlan PlanFromSeed(std::uint64_t seed) {
  // The plan PRNG is decoupled from the injector PRNG (which seeds with
  // `seed` directly) so plan choices and fault draws don't correlate.
  std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 1);

  SoakPlan plan;
  plan.seed = seed;
  plan.workload = static_cast<int>(rng() % kNumSoakWorkloads);
  plan.memory = Pick<TupleCount>(rng, {64, 128, 256, 512});
  plan.block = Pick<TupleCount>(rng, {4, 8, 16});
  if (plan.block * 4 > plan.memory) plan.block = plan.memory / 4;
  plan.use_yannakakis = plan.workload != 0 && rng() % 3 == 0;

  switch (plan.workload) {
    case 0:
      plan.params = {1500 + rng() % 2500};
      break;
    case 1:
      plan.params = {32 + rng() % 48, 32 + rng() % 48};
      break;
    case 2:
      plan.params = {3 + rng() % 5, 3 + rng() % 5, 3 + rng() % 5};
      break;
    default:
      plan.params = {6 + rng() % 8, 6 + rng() % 8};
      break;
  }

  extmem::FaultConfig& f = plan.faults;
  f.seed = seed;
  f.read_fail = Pick<double>(rng, {0.0, 0.002, 0.01, 0.04});
  f.write_fail = Pick<double>(rng, {0.0, 0.002, 0.01, 0.04});
  f.torn_write = Pick<double>(rng, {0.0, 0.002, 0.01});
  f.retry.max_retries = Pick<std::uint32_t>(rng, {2, 4, 6});
  if (rng() % 5 == 0) f.device_capacity_blocks = 400 + rng() % 4000;
  switch (rng() % 4) {
    case 0:
      break;  // no budget shrinks
    case 1: {  // scheduled one-shot shrinks mid-run
      const int k = 1 + static_cast<int>(rng() % 3);
      for (int i = 0; i < k; ++i) {
        f.shrink_at_ios.push_back(100 + rng() % 2500);
      }
      break;
    }
    case 2:
      f.shrink_every_poll = true;  // adversarial: shrink at every poll
      break;
    default:
      f.shrink_prob = 0.05;
      break;
  }
  if (!f.Active()) f.read_fail = 0.01;  // every soak run injects something

  // A third of the auto-dispatched joins run sharded, so the soak space
  // covers partitioning, per-shard injector seeds (f.seed + shard id),
  // and the shard-failure-to-Status path. Drawn last: plans for a given
  // seed keep every choice above identical to the unsharded planner, so
  // replay lines from before sharding existed still reproduce. A third
  // of the sort runs shard too (K partitioned inputs, each with its own
  // SortManifest), covering manifest resume under K > 1.
  if (plan.workload == 0) {
    if (rng() % 3 == 0) plan.shards = Pick<std::uint32_t>(rng, {2, 3, 4});
  } else if (!plan.use_yannakakis && rng() % 3 == 0) {
    plan.shards = Pick<std::uint32_t>(rng, {2, 3, 4});
    plan.workers = Pick<std::uint32_t>(rng, {1, 2});
  }
  return plan;
}

SoakOutcome RunPlan(const SoakPlan& plan, bool inject) {
  extmem::Device dev(plan.memory, plan.block);
  extmem::FaultInjector injector(plan.faults);
  if (inject) dev.set_fault_injector(&injector);

  const auto body = extmem::CatchStatus([&] {
    return plan.workload == 0 ? RunSort(&dev, plan, inject)
                              : RunJoin(&dev, plan, inject);
  });

  SoakOutcome out;
  if (body.ok()) {
    out.completed = true;
    out.rows = body->rows;
    out.hash = body->hash;
    out.set_hash = body->set_hash;
    out.resumed_sort = body->resumed;
  } else {
    out.status = body.status();
  }
  // Source-device injector tallies, plus (for completed sharded runs)
  // the per-shard injectors' tallies rolled up by the merge layer.
  out.fault_stats = injector.stats();
  if (body.ok()) out.fault_stats = out.fault_stats + body->shard_faults;
  for (const auto& [tag, stats] : dev.per_tag()) {
    if (tag == "recovery") out.recovery += stats;
  }
  out.total = dev.stats();
  if (body.ok()) {
    out.recovery += body->shard_recovery;
    out.total += body->shard_total;
  }
  return out;
}

std::string ReplayLine(const SoakPlan& plan, const SoakOutcome& outcome) {
  std::ostringstream os;
  os << "seed=" << plan.seed << " workload=" << SoakWorkloadName(plan.workload)
     << " M=" << plan.memory << " B=" << plan.block
     << " algo=" << (plan.workload == 0
                         ? "sort"
                         : (plan.use_yannakakis ? "yannakakis" : "auto"));
  if (plan.shards > 1) {
    os << " shards=" << plan.shards << " workers=" << plan.workers;
  }
  if (outcome.completed) {
    os << " -> ok rows=" << outcome.rows << " hash=" << std::hex
       << outcome.hash << std::dec;
    if (outcome.resumed_sort) os << " (resumed)";
  } else {
    os << " -> " << outcome.status.ToString();
  }
  os << " [faults=" << outcome.fault_stats.TotalFaults()
     << " retries=" << outcome.fault_stats.retries
     << " shrinks=" << outcome.fault_stats.shrinks
     << " recovery_ios=" << outcome.recovery.total() << "]";
  return os.str();
}

KillResumeOutcome RunKillResume(std::uint64_t seed, std::uint32_t shards) {
  // A seed-derived join plan (joins only; the kill switch targets the
  // manifest-journaled query path). Decoupled from PlanFromSeed so the
  // fault-soak replay space is untouched.
  SoakPlan plan;
  plan.seed = seed;
  std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 7);
  plan.workload = 1 + static_cast<int>(rng() % 3);
  plan.memory = Pick<TupleCount>(rng, {128, 256, 512});
  plan.block = Pick<TupleCount>(rng, {4, 8, 16});
  if (plan.block * 4 > plan.memory) plan.block = plan.memory / 4;
  switch (plan.workload) {
    case 1:
      plan.params = {32 + rng() % 48, 32 + rng() % 48};
      break;
    case 2:
      plan.params = {3 + rng() % 5, 3 + rng() % 5, 3 + rng() % 5};
      break;
    default:
      plan.params = {6 + rng() % 8, 6 + rng() % 8};
      break;
  }
  plan.shards = std::max<std::uint32_t>(shards, 1);
  plan.workers = plan.shards > 1 ? 2 : 1;

  struct Capture {
    std::uint64_t rows = 0;
    std::uint64_t set = 0;
  };
  // One attempt: fresh device + rebuilt inputs every time, so only the
  // manifest carries state across attempts (exactly the resume story).
  // Returns the query Status; fills the capture and the clock bound
  // (max of source total and slowest shard) used to pick the kill tick.
  const auto attempt = [&plan](recover::QueryManifest* manifest,
                               std::uint64_t kill_tick, Capture* cap,
                               std::uint64_t* clock_bound) -> extmem::Status {
    extmem::Device dev(plan.memory, plan.block);
    extmem::FaultInjector injector([&] {
      extmem::FaultConfig config;
      config.seed = plan.seed;
      config.kill_at_ios = kill_tick;
      return config;
    }());
    if (kill_tick > 0) dev.set_fault_injector(&injector);
    parallel::ParallelOptions options;
    options.shards = plan.shards;
    options.workers = plan.workers;
    options.manifest = manifest;
    if (kill_tick > 0) {
      options.faults = true;
      options.fault_config.seed = plan.seed;
      options.fault_config.kill_at_ios = kill_tick;
    }
    std::uint64_t max_shard = 0;
    const auto result = extmem::CatchStatus([&] {
      const std::vector<storage::Relation> rels = BuildJoinRels(&dev, plan);
      const core::EmitFn emit = [cap](std::span<const Value> row) {
        ++cap->rows;
        cap->set += RowFnv(row);
      };
      auto report = parallel::TryParallelJoinAuto(rels, emit, options);
      if (!report.ok()) extmem::ThrowStatus(report.status());
      max_shard = report->max_shard_ios;
      return 0;
    });
    if (clock_bound != nullptr) {
      *clock_bound = std::max<std::uint64_t>(dev.stats().total(), max_shard);
    }
    return result.ok() ? extmem::Status::Ok() : result.status();
  };

  KillResumeOutcome out;

  // (1) Uninterrupted baseline: output oracle + the virtual-clock bound.
  Capture baseline;
  std::uint64_t clock_bound = 0;
  if (extmem::Status s = attempt(nullptr, 0, &baseline, &clock_bound);
      !s.ok()) {
    out.detail = "baseline failed: " + s.ToString();
    return out;
  }
  out.baseline_rows = baseline.rows;
  if (clock_bound < 2) {
    out.detail = "degenerate plan: fewer than 2 I/Os";
    return out;
  }
  out.kill_tick = 1 + rng() % (clock_bound - 1);

  // (2) Interrupted run: kill at the tick, journal into the manifest.
  recover::QueryManifest manifest;
  Capture interrupted;
  const extmem::Status killed =
      attempt(&manifest, out.kill_tick, &interrupted, nullptr);
  out.pre_kill_rows = interrupted.rows;
  if (killed.ok()) {
    // The tick landed past this configuration's clock (possible when the
    // baseline bound covers a different device than the one that ran
    // longest); the run completed — it must still match the baseline.
    out.ok = interrupted.rows == baseline.rows && interrupted.set == baseline.set;
    if (!out.ok) out.detail = "uninterrupted-with-manifest output mismatch";
    return out;
  }
  if (killed.code() != extmem::StatusCode::kIoError) {
    out.detail = "kill surfaced as unexpected status: " + killed.ToString();
    return out;
  }
  out.interrupted = true;

  // (3) Resume from the manifest: no faults, fresh device + inputs.
  Capture resumed;
  if (extmem::Status s = attempt(&manifest, 0, &resumed, nullptr); !s.ok()) {
    out.detail = "resume failed: " + s.ToString();
    return out;
  }
  out.resumed_rows = resumed.rows;

  // The contract: both attempts together delivered every baseline row
  // exactly once — counts add up and the commutative multiset hash over
  // the union equals the baseline's (no duplicates, nothing missing).
  if (interrupted.rows + resumed.rows != baseline.rows ||
      interrupted.set + resumed.set != baseline.set) {
    out.detail = "resumed union differs from baseline";
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace emjoin::workload
