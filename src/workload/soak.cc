#include "workload/soak.h"

#include <random>
#include <sstream>
#include <utility>

#include "core/dispatch.h"
#include "core/yannakakis.h"
#include "extmem/device.h"
#include "extmem/file.h"
#include "extmem/sorter.h"
#include "parallel/parallel_join.h"
#include "workload/constructions.h"

namespace emjoin::workload {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void HashValue(std::uint64_t* h, Value v) {
  *h ^= v;
  *h *= kFnvPrime;
}

void HashRowEnd(std::uint64_t* h) { HashValue(h, ~Value{0} - 1); }

// Deterministic tuple stream for the sort workload, derived from the
// plan seed only (never the injector PRNG).
struct Xorshift {
  std::uint64_t x;
  std::uint64_t Next() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  }
};

struct BodyResult {
  std::uint64_t rows = 0;
  std::uint64_t hash = kFnvOffset;
  bool resumed = false;
  extmem::FaultStats shard_faults;  // per-shard injector tallies (sharded)
};

BodyResult RunSort(extmem::Device* dev, const SoakPlan& plan) {
  const TupleCount n = plan.params.at(0);
  extmem::FilePtr input = dev->NewFile(2);
  {
    extmem::FileWriter writer(input);
    Xorshift rng{plan.seed | 1};
    for (TupleCount i = 0; i < n; ++i) {
      const Value row[2] = {rng.Next() % 997, i};
      writer.Append(row);
    }
    writer.Finish();
  }

  const std::uint32_t key[] = {0};
  extmem::SortManifest manifest;
  auto sorted = extmem::TryExternalSort(extmem::FileRange(input), key,
                                        &manifest);
  BodyResult out;
  if (!sorted.ok()) {
    const extmem::StatusCode code = sorted.status().code();
    const bool transient = code == extmem::StatusCode::kIoError ||
                           code == extmem::StatusCode::kDataLoss;
    if (transient && manifest.valid) {
      // One resume from the checkpointed runs; faults stay active, so
      // the retry may itself end in a typed error.
      out.resumed = true;
      sorted = extmem::TryExternalSort(extmem::FileRange(input), key,
                                       &manifest);
    }
  }
  if (!sorted.ok()) extmem::ThrowStatus(sorted.status());

  // Content hash via uncharged raw access (a correctness oracle, exempt
  // from the cost model like the sorter's own tests).
  const extmem::FilePtr& file = *sorted;
  out.rows = file->size();
  for (TupleCount i = 0; i < file->size(); ++i) {
    const Value* t = file->RawTuple(i);
    HashValue(&out.hash, t[0]);
    HashValue(&out.hash, t[1]);
    HashRowEnd(&out.hash);
  }
  return out;
}

BodyResult RunJoin(extmem::Device* dev, const SoakPlan& plan, bool inject) {
  std::vector<storage::Relation> rels;
  switch (plan.workload) {
    case 1:
      rels = L3WorstCase(dev, plan.params.at(0), 1, plan.params.at(1));
      break;
    case 2:
      rels = StarWorstCase(
          dev, {plan.params.at(0), plan.params.at(1), plan.params.at(2)});
      break;
    default:
      rels = CrossProductLine(
          dev, {1, plan.params.at(0), 1, plan.params.at(1), 1});
      break;
  }

  BodyResult out;
  const auto emit = [&](std::span<const Value> row) {
    ++out.rows;
    for (Value v : row) HashValue(&out.hash, v);
    HashRowEnd(&out.hash);
  };
  // The throwing entry points: device faults surface as StatusException,
  // which RunPlan's CatchStatus turns back into a typed outcome. The
  // sharded path is already typed (one shard's failure is the query's
  // Status), so it re-throws to land in the same catch.
  if (plan.shards > 1 && !plan.use_yannakakis) {
    parallel::ParallelOptions options;
    options.shards = plan.shards;
    options.workers = plan.workers;
    options.faults = inject;
    options.fault_config = plan.faults;
    const auto report = parallel::TryParallelJoinAuto(rels, emit, options);
    if (!report.ok()) extmem::ThrowStatus(report.status());
    out.shard_faults = report->faults;
  } else if (plan.use_yannakakis) {
    core::YannakakisJoin(rels, emit);
  } else {
    core::JoinAuto(rels, emit);
  }
  return out;
}

template <typename T>
T Pick(std::mt19937_64& rng, std::initializer_list<T> choices) {
  auto it = choices.begin();
  std::advance(it, rng() % choices.size());
  return *it;
}

}  // namespace

const char* SoakWorkloadName(int workload) {
  switch (workload) {
    case 0: return "sort";
    case 1: return "join-l3";
    case 2: return "join-star";
    case 3: return "join-line";
    default: return "unknown";
  }
}

SoakPlan PlanFromSeed(std::uint64_t seed) {
  // The plan PRNG is decoupled from the injector PRNG (which seeds with
  // `seed` directly) so plan choices and fault draws don't correlate.
  std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 1);

  SoakPlan plan;
  plan.seed = seed;
  plan.workload = static_cast<int>(rng() % kNumSoakWorkloads);
  plan.memory = Pick<TupleCount>(rng, {64, 128, 256, 512});
  plan.block = Pick<TupleCount>(rng, {4, 8, 16});
  if (plan.block * 4 > plan.memory) plan.block = plan.memory / 4;
  plan.use_yannakakis = plan.workload != 0 && rng() % 3 == 0;

  switch (plan.workload) {
    case 0:
      plan.params = {1500 + rng() % 2500};
      break;
    case 1:
      plan.params = {32 + rng() % 48, 32 + rng() % 48};
      break;
    case 2:
      plan.params = {3 + rng() % 5, 3 + rng() % 5, 3 + rng() % 5};
      break;
    default:
      plan.params = {6 + rng() % 8, 6 + rng() % 8};
      break;
  }

  extmem::FaultConfig& f = plan.faults;
  f.seed = seed;
  f.read_fail = Pick<double>(rng, {0.0, 0.002, 0.01, 0.04});
  f.write_fail = Pick<double>(rng, {0.0, 0.002, 0.01, 0.04});
  f.torn_write = Pick<double>(rng, {0.0, 0.002, 0.01});
  f.retry.max_retries = Pick<std::uint32_t>(rng, {2, 4, 6});
  if (rng() % 5 == 0) f.device_capacity_blocks = 400 + rng() % 4000;
  switch (rng() % 4) {
    case 0:
      break;  // no budget shrinks
    case 1: {  // scheduled one-shot shrinks mid-run
      const int k = 1 + static_cast<int>(rng() % 3);
      for (int i = 0; i < k; ++i) {
        f.shrink_at_ios.push_back(100 + rng() % 2500);
      }
      break;
    }
    case 2:
      f.shrink_every_poll = true;  // adversarial: shrink at every poll
      break;
    default:
      f.shrink_prob = 0.05;
      break;
  }
  if (!f.Active()) f.read_fail = 0.01;  // every soak run injects something

  // A third of the auto-dispatched joins run sharded, so the soak space
  // covers partitioning, per-shard injector seeds (f.seed + shard id),
  // and the shard-failure-to-Status path. Drawn last: plans for a given
  // seed keep every choice above identical to the unsharded planner, so
  // replay lines from before sharding existed still reproduce.
  if (plan.workload != 0 && !plan.use_yannakakis && rng() % 3 == 0) {
    plan.shards = Pick<std::uint32_t>(rng, {2, 3, 4});
    plan.workers = Pick<std::uint32_t>(rng, {1, 2});
  }
  return plan;
}

SoakOutcome RunPlan(const SoakPlan& plan, bool inject) {
  extmem::Device dev(plan.memory, plan.block);
  extmem::FaultInjector injector(plan.faults);
  if (inject) dev.set_fault_injector(&injector);

  const auto body = extmem::CatchStatus([&] {
    return plan.workload == 0 ? RunSort(&dev, plan)
                              : RunJoin(&dev, plan, inject);
  });

  SoakOutcome out;
  if (body.ok()) {
    out.completed = true;
    out.rows = body->rows;
    out.hash = body->hash;
    out.resumed_sort = body->resumed;
  } else {
    out.status = body.status();
  }
  // Source-device injector tallies, plus (for completed sharded runs)
  // the per-shard injectors' tallies rolled up by the merge layer.
  out.fault_stats = injector.stats();
  if (body.ok()) out.fault_stats = out.fault_stats + body->shard_faults;
  for (const auto& [tag, stats] : dev.per_tag()) {
    if (tag == "recovery") out.recovery += stats;
  }
  out.total = dev.stats();
  return out;
}

std::string ReplayLine(const SoakPlan& plan, const SoakOutcome& outcome) {
  std::ostringstream os;
  os << "seed=" << plan.seed << " workload=" << SoakWorkloadName(plan.workload)
     << " M=" << plan.memory << " B=" << plan.block
     << " algo=" << (plan.workload == 0
                         ? "sort"
                         : (plan.use_yannakakis ? "yannakakis" : "auto"));
  if (plan.shards > 1) {
    os << " shards=" << plan.shards << " workers=" << plan.workers;
  }
  if (outcome.completed) {
    os << " -> ok rows=" << outcome.rows << " hash=" << std::hex
       << outcome.hash << std::dec;
    if (outcome.resumed_sort) os << " (resumed)";
  } else {
    os << " -> " << outcome.status.ToString();
  }
  os << " [faults=" << outcome.fault_stats.TotalFaults()
     << " retries=" << outcome.fault_stats.retries
     << " shrinks=" << outcome.fault_stats.shrinks
     << " recovery_ios=" << outcome.recovery.total() << "]";
  return os.str();
}

}  // namespace emjoin::workload
