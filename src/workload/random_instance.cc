#include "workload/random_instance.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <set>

namespace emjoin::workload {

namespace {

// Draws a value in [0, n) with probability proportional to 1/(k+1)^s.
class ZipfSampler {
 public:
  ZipfSampler(TupleCount n, double s) : n_(n), s_(s) {
    if (s_ > 0.0) {
      cdf_.reserve(n_);
      double acc = 0.0;
      for (TupleCount k = 0; k < n_; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k + 1), s_);
        cdf_.push_back(acc);
      }
    }
  }

  Value Sample(std::mt19937_64& rng) const {
    if (s_ <= 0.0) {
      std::uniform_int_distribution<Value> dist(0, n_ - 1);
      return dist(rng);
    }
    std::uniform_real_distribution<double> dist(0.0, cdf_.back());
    const double u = dist(rng);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<Value>(it - cdf_.begin());
  }

 private:
  TupleCount n_;
  double s_;
  std::vector<double> cdf_;
};

}  // namespace

std::vector<storage::Relation> RandomInstance(
    extmem::Device* dev, const query::JoinQuery& q,
    const std::vector<TupleCount>& sizes, const RandomOptions& options) {
  std::mt19937_64 rng(options.seed);
  const ZipfSampler sampler(options.domain_size, options.zipf_s);

  std::vector<storage::Relation> rels;
  for (query::EdgeId e = 0; e < q.num_edges(); ++e) {
    const storage::Schema& schema = q.edge(e);
    const std::uint32_t arity = schema.arity();

    // Cap at the number of distinct tuples available.
    long double max_distinct = 1.0L;
    for (std::uint32_t i = 0; i < arity; ++i) {
      max_distinct *= static_cast<long double>(options.domain_size);
    }
    TupleCount target = sizes[e];
    if (static_cast<long double>(target) > max_distinct) {
      target = static_cast<TupleCount>(max_distinct);
    }

    std::set<storage::Tuple> distinct;
    while (distinct.size() < target) {
      storage::Tuple t(arity);
      for (std::uint32_t i = 0; i < arity; ++i) t[i] = sampler.Sample(rng);
      distinct.insert(std::move(t));
    }
    rels.push_back(storage::Relation::FromTuples(
        dev, schema,
        std::vector<storage::Tuple>(distinct.begin(), distinct.end())));
  }
  return rels;
}

}  // namespace emjoin::workload
