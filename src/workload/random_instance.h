#ifndef EMJOIN_WORKLOAD_RANDOM_INSTANCE_H_
#define EMJOIN_WORKLOAD_RANDOM_INSTANCE_H_

#include <cstdint>
#include <vector>

#include "query/hypergraph.h"
#include "storage/relation.h"

namespace emjoin::workload {

/// Controls for random instance generation (correctness sweeps).
struct RandomOptions {
  std::uint64_t seed = 42;
  /// Values per attribute domain. Smaller domains produce denser joins
  /// and more skew.
  TupleCount domain_size = 16;
  /// Zipf exponent for value popularity; 0 = uniform. Positive values
  /// concentrate mass on low values, creating heavy join keys.
  double zipf_s = 0.0;
};

/// A random instance of `q`: relation e receives `sizes[e]` *distinct*
/// tuples with attribute values drawn from [0, domain_size). `sizes[e]`
/// is capped at domain_size^arity. Not necessarily fully reduced.
std::vector<storage::Relation> RandomInstance(
    extmem::Device* dev, const query::JoinQuery& q,
    const std::vector<TupleCount>& sizes, const RandomOptions& options = {});

}  // namespace emjoin::workload

#endif  // EMJOIN_WORKLOAD_RANDOM_INSTANCE_H_
