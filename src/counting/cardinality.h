#ifndef EMJOIN_COUNTING_CARDINALITY_H_
#define EMJOIN_COUNTING_CARDINALITY_H_

#include <cstdint>
#include <vector>

#include "query/hypergraph.h"
#include "storage/relation.h"

namespace emjoin::counting {

/// Exact size of the natural join of `rels`, whose schemas must form a
/// Berge-acyclic hypergraph. Disconnected sets multiply (cross product).
///
/// This is a planner/test *oracle*: it reads tuple data without charging
/// I/O, in O(total tuples) time via join-tree dynamic programming. It is
/// never called on the algorithms' measured path. Saturates at UINT64_MAX.
std::uint64_t JoinSize(const std::vector<storage::Relation>& rels);

/// JoinSize restricted to the subset `subset` of `rels`.
std::uint64_t SubjoinSize(const std::vector<storage::Relation>& rels,
                          const std::vector<std::uint32_t>& subset);

/// Exact size of the partial join Q(R, S): the projection of the full
/// join result onto the attributes of `subset` (§1.4). Brute-force
/// enumeration with deduplication — only use on small instances (tests);
/// `limit` caps the number of full-join results visited (0 = no cap).
std::uint64_t PartialJoinSizeBrute(const std::vector<storage::Relation>& rels,
                                   const std::vector<std::uint32_t>& subset,
                                   std::uint64_t limit = 0);

}  // namespace emjoin::counting

#endif  // EMJOIN_COUNTING_CARDINALITY_H_
