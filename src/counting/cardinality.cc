#include "counting/cardinality.h"

#include <cassert>
#include <functional>
#include <limits>
#include <set>
#include <unordered_map>

#include "query/join_tree.h"

namespace emjoin::counting {

namespace {

using u128 = unsigned __int128;

constexpr std::uint64_t kSaturated = std::numeric_limits<std::uint64_t>::max();

std::uint64_t ToU64(u128 x) {
  return x > static_cast<u128>(kSaturated) ? kSaturated
                                           : static_cast<std::uint64_t>(x);
}

u128 CapMul(u128 a, u128 b) {
  if (a == 0 || b == 0) return 0;
  // Cap at 2^96 to avoid overflow of u128 while staying > 2^64.
  constexpr u128 kCap = static_cast<u128>(1) << 96;
  if (a > kCap / b) return kCap;
  return a * b;
}

}  // namespace

std::uint64_t JoinSize(const std::vector<storage::Relation>& rels) {
  if (rels.empty()) return 1;  // empty join = the empty tuple

  query::JoinQuery q;
  for (const auto& r : rels) q.AddRelation(r.schema(), r.size());
  assert(q.IsBergeAcyclic());
  const query::JoinTree tree = query::BuildJoinTree(q);

  // W[e] maps the value of e's parent attribute to the summed count of
  // join combinations within e's subtree having that value.
  std::vector<std::unordered_map<Value, u128>> weight(rels.size());
  std::vector<u128> root_total(rels.size(), 0);

  for (query::EdgeId e : tree.bottom_up) {
    const storage::Relation& rel = rels[e];
    const storage::Schema& schema = rel.schema();

    // Column positions of each child's shared attribute within e.
    std::vector<std::pair<std::uint32_t, query::EdgeId>> child_cols;
    for (query::EdgeId c : tree.children[e]) {
      const auto pos = schema.PositionOf(tree.parent_attr[c]);
      assert(pos.has_value());
      child_cols.push_back({*pos, c});
    }
    std::uint32_t parent_col = 0;
    const bool is_root = tree.parent[e] < 0;
    if (!is_root) {
      const auto pos = schema.PositionOf(tree.parent_attr[e]);
      assert(pos.has_value());
      parent_col = *pos;
    }

    const extmem::FileRange& range = rel.range();
    for (TupleCount i = 0; i < range.size(); ++i) {
      const Value* t = range.RawTuple(i);
      u128 c = 1;
      for (const auto& [col, child] : child_cols) {
        auto it = weight[child].find(t[col]);
        if (it == weight[child].end()) {
          c = 0;
          break;
        }
        c = CapMul(c, it->second);
      }
      if (c == 0) continue;
      if (is_root) {
        root_total[e] += c;
      } else {
        weight[e][t[parent_col]] += c;
      }
    }
  }

  u128 total = 1;
  for (query::EdgeId r : tree.roots) total = CapMul(total, root_total[r]);
  return ToU64(total);
}

std::uint64_t SubjoinSize(const std::vector<storage::Relation>& rels,
                          const std::vector<std::uint32_t>& subset) {
  std::vector<storage::Relation> sub;
  sub.reserve(subset.size());
  for (std::uint32_t i : subset) sub.push_back(rels[i]);
  return JoinSize(sub);
}

std::uint64_t PartialJoinSizeBrute(const std::vector<storage::Relation>& rels,
                                   const std::vector<std::uint32_t>& subset,
                                   std::uint64_t limit) {
  // Attributes to project onto.
  std::vector<storage::AttrId> proj_attrs;
  for (std::uint32_t i : subset) {
    for (storage::AttrId a : rels[i].schema().attrs()) {
      bool seen = false;
      for (storage::AttrId b : proj_attrs) seen = seen || (b == a);
      if (!seen) proj_attrs.push_back(a);
    }
  }

  std::set<std::vector<Value>> projections;
  std::unordered_map<storage::AttrId, Value> assignment;
  std::uint64_t visited = 0;
  bool truncated = false;

  std::function<void(std::size_t)> recurse = [&](std::size_t level) {
    if (truncated) return;
    if (level == rels.size()) {
      ++visited;
      std::vector<Value> p;
      p.reserve(proj_attrs.size());
      for (storage::AttrId a : proj_attrs) p.push_back(assignment.at(a));
      projections.insert(std::move(p));
      if (limit > 0 && visited >= limit) truncated = true;
      return;
    }
    const storage::Relation& rel = rels[level];
    const storage::Schema& schema = rel.schema();
    const extmem::FileRange& range = rel.range();
    for (TupleCount i = 0; i < range.size() && !truncated; ++i) {
      const Value* t = range.RawTuple(i);
      bool compatible = true;
      std::vector<storage::AttrId> newly_bound;
      for (std::uint32_t c = 0; c < schema.arity(); ++c) {
        const storage::AttrId a = schema.attr(c);
        auto it = assignment.find(a);
        if (it == assignment.end()) {
          assignment[a] = t[c];
          newly_bound.push_back(a);
        } else if (it->second != t[c]) {
          compatible = false;
          break;
        }
      }
      if (compatible) recurse(level + 1);
      for (storage::AttrId a : newly_bound) assignment.erase(a);
    }
  };
  recurse(0);
  assert(!truncated && "PartialJoinSizeBrute hit its visit limit");
  return projections.size();
}

}  // namespace emjoin::counting
