#ifndef EMJOIN_SERVE_QUERY_SPEC_H_
#define EMJOIN_SERVE_QUERY_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "extmem/defs.h"
#include "extmem/fault_injector.h"
#include "extmem/status.h"

namespace emjoin::serve {

/// One relation of a submitted query: a schema spec in the CLI's
/// comma-separated attribute syntax ("a,b") plus the CSV file to load
/// through the storage layer — the same path emjoin_cli's join command
/// uses, so a spec submitted to the daemon and the equivalent CLI
/// invocation produce bit-identical output.
struct RelationSpec {
  std::string attrs;
  std::string csv_path;
};

/// A query submission, parsed from the POST /queries body. The wire
/// format is line-oriented `key=value`, one directive per line; blank
/// lines and '#' comments are ignored:
///
///   id=q1
///   memory=4096
///   block=64
///   shards=1
///   workers=1
///   output=/tmp/q1.csv
///   rel=a,b=/data/r1.csv
///   rel=b,c=/data/r2.csv
///   fault-seed=42
///   fault-read=0.01
///   fault-kill-at=500
///
/// `id` names the query for the whole observability plane (the
/// query="<id>" metrics label, /queries/<id>/... endpoints) and for
/// resume-on-readmission: re-submitting a killed or failed id picks up
/// from that session's QueryManifest instead of restarting.
///
/// `output` is a host-side CSV file receiving one result row per line
/// (empty: results are counted but not materialized). Across a
/// kill/resume cycle the first attempt truncates and later attempts
/// append; the manifest's output watermark deduplicates, so the file's
/// final contents equal the uninterrupted run's exactly.
struct QuerySpec {
  std::string id;
  TupleCount memory = 4096;
  TupleCount block = 64;
  std::uint32_t shards = 1;
  std::uint32_t workers = 1;
  std::string output_path;
  std::vector<RelationSpec> relations;
  extmem::FaultConfig fault_config;
};

/// Parses a POST /queries body. kInvalidInput with a line-numbered
/// message on any malformed directive, unknown key, or failed
/// validation (missing id, no relations, memory < 4*block, shard count
/// outside [1, 64]).
[[nodiscard]] extmem::Result<QuerySpec> ParseQuerySpec(
    const std::string& body);

}  // namespace emjoin::serve

#endif  // EMJOIN_SERVE_QUERY_SPEC_H_
