#include "serve/server.h"

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "extmem/device.h"
#include "gens/psi.h"
#include "metrics/collect.h"
#include "obs/build_info.h"
#include "parallel/parallel_join.h"
#include "query/hypergraph.h"
#include "recover/resume.h"
#include "storage/csv.h"
#include "trace/tracer.h"

namespace emjoin::serve {

namespace {

// GET /log serves at most this many of the most recent request lines.
constexpr std::size_t kLogTailMax = 1024;

// ProgressSnapshot::ToJson ends in a newline; strip it when embedding
// the object inside a larger JSON document.
std::string Inline(std::string json) {
  while (!json.empty() && (json.back() == '\n' || json.back() == '\r')) {
    json.pop_back();
  }
  return json;
}

void SetJson(obs::HttpReply* reply, std::string body) {
  reply->content_type = "application/json";
  reply->body = std::move(body);
}

void SetNotFound(obs::HttpReply* reply) {
  reply->status = "404 Not Found";
  reply->content_type = "application/json";
  reply->body = "{\"error\": \"not found\"}\n";
}

// The metric families the daemon itself exports. Help text for the
// per-query families collected at attempt boundaries lives with the
// attempt registry (SetAttemptHelp below) and propagates through
// MergeFrom into the aggregate.
void SetServeHelp(metrics::Registry* reg) {
  reg->SetHelp("emjoin_serve_queries",
               "Queries tracked by the daemon, by lifecycle state.");
  reg->SetHelp("emjoin_serve_admissions_total",
               "Admission decisions since daemon start, by outcome.");
  reg->SetHelp("emjoin_serve_memory_budget_tuples",
               "Global admission memory budget, in tuples.");
  reg->SetHelp("emjoin_serve_memory_admitted_tuples",
               "Memory reserved by currently admitted queries, in tuples.");
  reg->SetHelp("emjoin_serve_queue_depth",
               "Queries waiting in the admission queue.");
  reg->SetHelp("emjoin_serve_http_requests_total",
               "HTTP requests served since daemon start.");
  reg->SetHelp("emjoin_query_progress_basis_points",
               "Per-query progress percent, in basis points.");
  reg->SetHelp("emjoin_query_done_ios",
               "Per-query block I/Os counted toward progress.");
  reg->SetHelp("emjoin_query_recovery_ios",
               "Per-query fault-recovery block I/Os (excluded from "
               "progress).");
}

void SetAttemptHelp(metrics::Registry* reg) {
  reg->SetHelp("emjoin_device_io_blocks_total",
               "Block I/Os charged by the simulated device, by op and "
               "tag.");
  reg->SetHelp("emjoin_peak_resident_tuples",
               "Peak memory-resident tuples observed by the gauge.");
  reg->SetHelp("emjoin_faults_total",
               "Injected faults and recovery actions, by kind.");
  reg->SetHelp("emjoin_fault_retry_burst",
               "Retries per collection interval.");
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      exporter_(&idle_telemetry_),
      admission_(options_.admission) {}

Server::~Server() { Stop(); }

extmem::Status Server::Start() {
  if (running()) {
    return extmem::Status(extmem::StatusCode::kInternal,
                          "server already started");
  }
  if (!options_.request_log_path.empty()) {
    // No request thread exists yet, but a Start racing a Stop from
    // another thread would still collide on log_file_ — it is guarded
    // by log_mu_ and every touch holds the lock (the thread-safety
    // analysis flagged this site as the one bare access).
    const std::lock_guard<std::mutex> lock(log_mu_);
    log_file_ = std::fopen(options_.request_log_path.c_str(), "w");
    if (log_file_ == nullptr) {
      return extmem::Status(
          extmem::StatusCode::kIoError,
          "cannot open request log " + options_.request_log_path);
    }
  }
  stopping_.store(false, std::memory_order_release);
  run_pool_ = std::make_unique<parallel::WorkerPool>(
      std::max<std::uint32_t>(1, options_.run_workers));
  exporter_.set_handler(
      [this](const obs::HttpRequest& request, obs::HttpReply* reply) {
        return Handle(request, reply);
      });
  const extmem::Status status = exporter_.Start(options_.port);
  if (!status.ok()) {
    run_pool_.reset();
    const std::lock_guard<std::mutex> lock(log_mu_);
    if (log_file_ != nullptr) {
      std::fclose(log_file_);
      log_file_ = nullptr;
    }
    return status;
  }
  return extmem::Status::Ok();
}

void Server::Stop() {
  if (!running() && run_pool_ == nullptr) return;
  stopping_.store(true, std::memory_order_release);
  exporter_.Stop();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (QuerySession* session : order_) {
      const QueryState state = session->state();
      if (state == QueryState::kAdmitted || state == QueryState::kRunning) {
        session->RequestKill();
      }
    }
  }
  run_pool_.reset();  // drains in-flight attempts (killed at next charge)
  const std::lock_guard<std::mutex> lock(log_mu_);
  if (log_file_ != nullptr) {
    std::fclose(log_file_);
    log_file_ = nullptr;
  }
}

std::uint64_t Server::IoClock() {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t clock = 0;
  for (const QuerySession* session : order_) {
    clock += session->telemetry().tracker().Clock();
  }
  return clock;
}

Server::StateCounts Server::CountStates() {
  const std::lock_guard<std::mutex> lock(mu_);
  StateCounts counts;
  for (const QuerySession* session : order_) {
    const QueryState state = session->state();
    ++counts.by_state[static_cast<int>(state)];
    switch (state) {
      case QueryState::kQueued:
      case QueryState::kAdmitted:
      case QueryState::kRunning:
        ++counts.live;
        break;
      case QueryState::kCompleted:
        ++counts.completed;
        break;
      case QueryState::kFailed:
      case QueryState::kKilled:
        ++counts.failed;
        break;
    }
  }
  return counts;
}

std::string Server::HealthzJson() {
  const StateCounts counts = CountStates();
  std::string out = "{\"status\": \"ok\", \"version\": \"";
  out += obs::kBuildVersion;
  out += "\", \"uptime_ms\": " + std::to_string(exporter_.UptimeMs());
  out += ", \"io_clock\": " + std::to_string(IoClock());
  out += ", \"queries_live\": " + std::to_string(counts.live);
  out += ", \"queries_completed\": " + std::to_string(counts.completed);
  out += ", \"queries_failed\": " + std::to_string(counts.failed);
  out += ", \"requests\": " + std::to_string(exporter_.requests());
  out += "}\n";
  return out;
}

std::string Server::MetricsText() {
  metrics::Registry aggregate;
  SetServeHelp(&aggregate);

  const AdmissionSnapshot admission = admission_.Snapshot();
  aggregate.GetGauge("emjoin_serve_memory_budget_tuples")
      ->Set(admission.memory_budget);
  aggregate.GetGauge("emjoin_serve_memory_admitted_tuples")
      ->Set(admission.admitted_memory);
  aggregate.GetGauge("emjoin_serve_queue_depth")->Set(admission.queued);
  aggregate
      .GetCounter("emjoin_serve_admissions_total", {{"outcome", "admitted"}})
      ->Add(admission.admitted_total);
  aggregate
      .GetCounter("emjoin_serve_admissions_total", {{"outcome", "queued"}})
      ->Add(admission.queued_total);
  aggregate
      .GetCounter("emjoin_serve_admissions_total", {{"outcome", "rejected"}})
      ->Add(admission.rejected_total);
  aggregate
      .GetCounter("emjoin_serve_admissions_total", {{"outcome", "resumed"}})
      ->Add(admission.resumed_total);
  aggregate.GetCounter("emjoin_serve_http_requests_total")
      ->Add(exporter_.requests());

  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t by_state[6] = {};
  for (const QuerySession* session : order_) {
    ++by_state[static_cast<int>(session->state())];
  }
  for (int s = 0; s < 6; ++s) {
    aggregate
        .GetGauge("emjoin_serve_queries",
                  {{"state", QueryStateName(static_cast<QueryState>(s))}})
        ->Set(by_state[s]);
  }
  for (const QuerySession* session : order_) {
    session->CollectInto(&aggregate);
  }
  return aggregate.ToPrometheusText();
}

std::string Server::QueriesJson() {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"count\": " + std::to_string(order_.size());
  out += ", \"queries\": [";
  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (i > 0) out += ", ";
    out += order_[i]->Snapshot().ToJson();
  }
  out += "]}\n";
  return out;
}

bool Server::Handle(const obs::HttpRequest& request, obs::HttpReply* reply) {
  if (request.method == "GET") {
    RouteGet(request.path, reply);
  } else if (request.method == "POST") {
    RoutePost(request.path, request.body, reply);
  } else {
    reply->status = "405 Method Not Allowed";
    reply->body = "method not allowed\n";
  }
  LogRequest(request, *reply);
  return true;  // the daemon claims every route
}

void Server::RouteGet(const std::string& path, obs::HttpReply* reply) {
  if (path == "/healthz") {
    SetJson(reply, HealthzJson());
    return;
  }
  if (path == "/metrics") {
    reply->content_type = "text/plain; version=0.0.4";
    reply->body = MetricsText();
    return;
  }
  if (path == "/queries") {
    SetJson(reply, QueriesJson());
    return;
  }
  if (path == "/progress") {
    const std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\"queries\": [";
    for (std::size_t i = 0; i < order_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"id\": " + JsonQuote(order_[i]->id()) + ", \"progress\": ";
      out += Inline(order_[i]->telemetry().tracker().Snapshot().ToJson());
      out += "}";
    }
    out += "]}\n";
    SetJson(reply, std::move(out));
    return;
  }
  if (path == "/events") {
    const std::lock_guard<std::mutex> lock(mu_);
    std::string out;
    for (QuerySession* session : order_) {
      out += "{\"query\": " + JsonQuote(session->id()) + "}\n";
      out += session->telemetry().recorder().ToJsonl();
    }
    reply->content_type = "application/x-ndjson";
    reply->body = std::move(out);
    return;
  }
  if (path == "/log") {
    std::string out;
    {
      const std::lock_guard<std::mutex> lock(log_mu_);
      for (const std::string& line : log_tail_) out += line;
    }
    reply->content_type = "application/x-ndjson";
    reply->body = std::move(out);
    return;
  }
  const std::string prefix = "/queries/";
  if (path.rfind(prefix, 0) == 0) {
    std::string rest = path.substr(prefix.size());
    std::string sub;
    const std::size_t slash = rest.find('/');
    if (slash != std::string::npos) {
      sub = rest.substr(slash + 1);
      rest = rest.substr(0, slash);
    }
    const std::lock_guard<std::mutex> lock(mu_);
    QuerySession* session = FindSession(rest);
    if (session == nullptr) {
      SetNotFound(reply);
      return;
    }
    if (sub.empty()) {
      SetJson(reply, session->Snapshot().ToJson() + "\n");
    } else if (sub == "progress") {
      SetJson(reply, session->telemetry().tracker().Snapshot().ToJson());
    } else if (sub == "events") {
      reply->content_type = "application/x-ndjson";
      reply->body = session->telemetry().recorder().ToJsonl();
    } else {
      SetNotFound(reply);
    }
    return;
  }
  SetNotFound(reply);
}

void Server::RoutePost(const std::string& path, const std::string& body,
                       obs::HttpReply* reply) {
  if (path == "/queries") {
    std::string http_status = "200 OK";
    std::string response = Submit(body, &http_status);
    reply->status = http_status;
    SetJson(reply, std::move(response));
    return;
  }
  const std::string prefix = "/queries/";
  const std::string suffix = "/kill";
  if (path.rfind(prefix, 0) == 0 && path.size() > prefix.size() &&
      path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
          0 &&
      path.size() > prefix.size() + suffix.size()) {
    const std::string id = path.substr(
        prefix.size(), path.size() - prefix.size() - suffix.size());
    std::string http_status = "200 OK";
    std::string response = KillQuery(id, &http_status);
    reply->status = http_status;
    SetJson(reply, std::move(response));
    return;
  }
  SetNotFound(reply);
}

QuerySession* Server::FindSession(const std::string& id) {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

std::string Server::ManifestPathFor(const std::string& id) const {
  return options_.manifest_dir + "/" + id + ".manifest";
}

std::string Server::Submit(const std::string& body,
                           std::string* http_status) {
  auto parsed = ParseQuerySpec(body);
  if (!parsed.ok()) {
    *http_status = "400 Bad Request";
    return "{\"error\": " + JsonQuote(parsed.status().ToString()) + "}\n";
  }
  QuerySpec spec = *std::move(parsed);
  const std::string id = spec.id;
  const TupleCount memory = spec.memory;

  std::unique_ptr<QuerySession> fresh;
  QuerySession* session = nullptr;
  bool resumed = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    session = FindSession(id);
    if (session != nullptr) {
      switch (session->state()) {
        case QueryState::kQueued:
        case QueryState::kAdmitted:
        case QueryState::kRunning:
          *http_status = "409 Conflict";
          return "{\"id\": " + JsonQuote(id) + ", \"state\": \"" +
                 QueryStateName(session->state()) +
                 "\", \"error\": \"query is still live\"}\n";
        case QueryState::kCompleted: {
          // Idempotent completion: the journal already delivered every
          // row exactly once; re-running would duplicate the output.
          *http_status = "200 OK";
          const QuerySessionSnapshot snap = session->Snapshot();
          return "{\"id\": " + JsonQuote(id) +
                 ", \"state\": \"completed\", \"resumed\": false, "
                 "\"rows\": " +
                 std::to_string(snap.rows) + "}\n";
        }
        case QueryState::kFailed:
        case QueryState::kKilled:
          resumed = true;
          session->Respec(std::move(spec));
          break;
      }
    } else {
      fresh = std::make_unique<QuerySession>(std::move(spec),
                                             options_.recorder_capacity);
      session = fresh.get();
      if (!options_.manifest_dir.empty()) {
        // Probe-then-load so a malformed file cannot leave the session
        // manifest half-populated: losing a manifest only costs rework.
        recover::QueryManifest probe;
        if (probe.ReadFrom(ManifestPathFor(id)).ok()) {
          const extmem::Status loaded =
              session->manifest().ReadFrom(ManifestPathFor(id));
          resumed = loaded.ok() && session->manifest().journal().rows() > 0;
        }
      }
    }

    const AdmissionDecision decision = admission_.Submit(id, memory);
    if (decision == AdmissionDecision::kRejected) {
      // A fresh session is discarded (never registered); a resumed one
      // keeps its terminal state and manifest for a later attempt.
      *http_status = "429 Too Many Requests";
      return "{\"id\": " + JsonQuote(id) +
             ", \"decision\": \"rejected\", \"error\": \"admission "
             "budget or queue exhausted\"}\n";
    }
    if (resumed) admission_.CountResume();
    if (fresh != nullptr) {
      order_.push_back(session);
      sessions_.emplace(id, std::move(fresh));
    }
    if (decision == AdmissionDecision::kQueued) {
      session->set_state(QueryState::kQueued);
      *http_status = "202 Accepted";
      return "{\"id\": " + JsonQuote(id) +
             ", \"decision\": \"queued\", \"resumed\": " +
             (resumed ? "true" : "false") + "}\n";
    }
    session->set_state(QueryState::kAdmitted);
  }
  run_pool_->Submit([this, session] { RunSession(session); });
  *http_status = "202 Accepted";
  return "{\"id\": " + JsonQuote(id) +
         ", \"decision\": \"admitted\", \"resumed\": " +
         (resumed ? "true" : "false") + "}\n";
}

std::string Server::KillQuery(const std::string& id,
                              std::string* http_status) {
  const std::lock_guard<std::mutex> lock(mu_);
  QuerySession* session = FindSession(id);
  if (session == nullptr) {
    *http_status = "404 Not Found";
    return "{\"error\": \"unknown query\"}\n";
  }
  const QueryState state = session->state();
  if (state == QueryState::kCompleted || state == QueryState::kFailed ||
      state == QueryState::kKilled) {
    *http_status = "409 Conflict";
    return "{\"id\": " + JsonQuote(id) + ", \"state\": \"" +
           QueryStateName(state) +
           "\", \"error\": \"query already terminal\"}\n";
  }
  if (state == QueryState::kQueued && admission_.CancelQueued(id)) {
    // Still waiting: no budget to release, no worker to interrupt.
    session->RequestKill();
    session->set_state(QueryState::kKilled);
  } else {
    // Admitted or running (or promoted in the race above): the armed
    // injector raises the kill at the query's next block charge.
    session->RequestKill();
  }
  *http_status = "200 OK";
  return "{\"id\": " + JsonQuote(id) + ", \"state\": \"" +
         QueryStateName(session->state()) + "\", \"kill\": true}\n";
}

void Server::RunSession(QuerySession* session) {
  if (stopping_.load(std::memory_order_acquire)) return;
  session->BeginAttempt();
  const QuerySpec spec = session->spec();

  extmem::Device device(spec.memory, spec.block);
  device.set_events(&session->telemetry());
  // Always attached (idle config when no faults configured — golden
  // I/O counts are pinned unchanged for idle injectors): the injector
  // is also the live kill switch POST /queries/<id>/kill arms.
  extmem::FaultInjector injector(spec.fault_config);
  device.set_fault_injector(&injector);
  session->ArmKillSwitch(&injector);

  metrics::Registry attempt_registry;
  SetAttemptHelp(&attempt_registry);
  extmem::IoStats shard_io;
  extmem::FaultStats shard_faults;
  const extmem::Status status = ExecuteAttempt(
      spec, session, &device, &attempt_registry, &shard_io, &shard_faults);

  session->DisarmKillSwitch();

  metrics::CollectDeviceDelta(device, extmem::IoStats{}, {},
                              &attempt_registry);
  metrics::CollectFaultDelta(injector.stats(), &attempt_registry);
  session->AbsorbAttempt(attempt_registry, device.stats() + shard_io,
                         injector.stats() + shard_faults,
                         session->manifest().journal().rows(), status);

  // A sharded attempt's kill fires in a per-shard injector the
  // orchestrator never sees; the device's kill Status text ("(killed;")
  // is the stable signal in that case.
  const bool died_killed =
      injector.killed() || session->kill_requested() ||
      (status.code() == extmem::StatusCode::kIoError &&
       status.ToString().find("(killed;") != std::string::npos);
  if (status.ok()) {
    session->telemetry().MarkComplete();
    session->set_state(QueryState::kCompleted);
  } else if (died_killed) {
    session->set_state(QueryState::kKilled);
  } else {
    session->set_state(QueryState::kFailed);
  }

  if (!options_.manifest_dir.empty()) {
    // Best-effort persistence after every attempt: this is what makes
    // a killed query resumable across daemon restarts, not just across
    // re-submissions to this process.
    const extmem::Status persisted =
        session->manifest().WriteTo(ManifestPathFor(session->id()));
    static_cast<void>(persisted);
  }

  std::vector<QuerySession*> to_launch;
  {
    const std::vector<std::string> promoted = admission_.Release(spec.memory);
    const std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& id : promoted) {
      QuerySession* next = FindSession(id);
      if (next != nullptr) to_launch.push_back(next);
    }
  }
  for (QuerySession* next : to_launch) LaunchAdmitted(next);
}

void Server::LaunchAdmitted(QuerySession* session) {
  session->set_state(QueryState::kAdmitted);
  run_pool_->Submit([this, session] { RunSession(session); });
}

extmem::Status Server::ExecuteAttempt(const QuerySpec& spec,
                                      QuerySession* session,
                                      extmem::Device* device,
                                      metrics::Registry* attempt_registry,
                                      extmem::IoStats* shard_io,
                                      extmem::FaultStats* shard_faults) {
  std::vector<std::string> names;
  std::vector<storage::Relation> rels;
  {
    trace::Span load_span(device, "load");
    for (const RelationSpec& relation : spec.relations) {
      auto schema = storage::ParseSchemaSpec(relation.attrs, &names);
      if (!schema.ok()) return schema.status();
      auto rel = storage::RelationFromCsvFile(device, *std::move(schema),
                                              relation.csv_path);
      if (!rel.ok()) return rel.status();
      rels.push_back(*std::move(rel));
    }
  }

  query::JoinQuery q;
  for (const auto& r : rels) q.AddRelation(r.schema(), r.size());
  if (!q.IsBergeAcyclic()) {
    return extmem::Status(
        extmem::StatusCode::kInvalidInput,
        "query is not Berge-acyclic; the daemon serves acyclic joins");
  }
  long double expected =
      gens::PredictBoundWorstCase(q, device->M(), device->B()).bound;
  if (spec.shards > 1) {
    // Sharded runs pay one extra write+read pass to redistribute.
    std::uint64_t input_blocks = 0;
    for (const auto& r : rels) {
      input_blocks += (r.size() + device->B() - 1) / device->B();
    }
    expected += 2.0L * static_cast<long double>(input_blocks);
  }
  session->SetBound(static_cast<double>(expected));
  session->telemetry().tracker().SetPlan({{"join", expected}});

  std::FILE* out = nullptr;
  if (!spec.output_path.empty()) {
    // The first attempt truncates; resumed attempts append. The
    // manifest journal suppresses rows earlier attempts already
    // delivered, so the file's union is the exact uninterrupted output
    // with zero duplicates.
    const bool fresh_output =
        session->attempts() == 1 && session->manifest().journal().rows() == 0;
    out = std::fopen(spec.output_path.c_str(), fresh_output ? "w" : "a");
    if (out == nullptr) {
      return extmem::Status(extmem::StatusCode::kIoError,
                            "cannot open output file " + spec.output_path);
    }
  }
  const core::EmitFn emit = [out](std::span<const Value> row) {
    if (out == nullptr) return;
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::fprintf(out, i == 0 ? "%llu" : ",%llu",
                   static_cast<unsigned long long>(row[i]));
    }
    std::fputc('\n', out);
  };

  extmem::Status status = extmem::Status::Ok();
  {
    trace::Span join_span(device, "join");
    if (spec.shards > 1) {
      parallel::ParallelOptions poptions;
      poptions.shards = spec.shards;
      poptions.workers = spec.workers;
      poptions.faults = spec.fault_config.Active();
      poptions.fault_config = spec.fault_config;
      poptions.manifest = &session->manifest();
      const auto report =
          parallel::TryParallelJoinAuto(rels, emit, poptions, attempt_registry);
      if (!report.ok()) {
        status = report.status();
      } else {
        for (const parallel::ShardReport& sr : report->per_shard) {
          *shard_io += sr.io;
          *shard_faults = *shard_faults + sr.faults;
        }
      }
    } else {
      // replay_watermark stays off: rows earlier attempts delivered are
      // already in the output file; this attempt appends the remainder.
      const auto report = recover::TryResumableJoinAuto(
          rels, emit, &session->manifest(), recover::ResumeOptions{});
      if (!report.ok()) status = report.status();
    }
  }
  if (out != nullptr) std::fclose(out);
  return status;
}

void Server::LogRequest(const obs::HttpRequest& request,
                        const obs::HttpReply& reply) {
  const std::string code = reply.status.substr(0, reply.status.find(' '));
  std::string line;
  {
    const std::lock_guard<std::mutex> lock(log_mu_);
    ++log_seq_;
    line = "{\"seq\": " + std::to_string(log_seq_);
  }
  line += ", \"io_clock\": " + std::to_string(IoClock());
  line += ", \"method\": " + JsonQuote(request.method);
  line += ", \"path\": " + JsonQuote(request.path);
  line += ", \"status\": " + (code.empty() ? "0" : code);
  line += "}\n";
  const std::lock_guard<std::mutex> lock(log_mu_);
  log_tail_.push_back(line);
  while (log_tail_.size() > kLogTailMax) log_tail_.pop_front();
  if (log_file_ != nullptr) {
    std::fputs(line.c_str(), log_file_);
    std::fflush(log_file_);
  }
}

}  // namespace emjoin::serve
