#include "serve/query_spec.h"

#include <cstdlib>

#include "obs/progress.h"

namespace emjoin::serve {

namespace {

extmem::Status SpecError(std::size_t line_no, const std::string& message) {
  return extmem::Status(extmem::StatusCode::kInvalidInput,
                        "query spec line " + std::to_string(line_no) + ": " +
                            message);
}

bool ParseU64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseProbability(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  if (value < 0.0 || value > 1.0) return false;
  *out = value;
  return true;
}

bool ValidId(const std::string& id) {
  if (id.empty() || id.size() > 64) return false;
  for (const char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

extmem::Result<QuerySpec> ParseQuerySpec(const std::string& body) {
  QuerySpec spec;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos <= body.size()) {
    std::size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') {
      if (pos > body.size()) break;
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return SpecError(line_no, "expected key=value, got '" + line + "'");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    std::uint64_t number = 0;
    double probability = 0.0;
    if (key == "id") {
      if (!ValidId(value)) {
        return SpecError(line_no,
                         "id must be 1-64 chars of [A-Za-z0-9_.-], got '" +
                             value + "'");
      }
      spec.id = value;
    } else if (key == "memory") {
      if (!ParseU64(value, &number) || number == 0) {
        return SpecError(line_no, "memory must be a positive tuple count");
      }
      spec.memory = number;
    } else if (key == "block") {
      if (!ParseU64(value, &number) || number == 0) {
        return SpecError(line_no, "block must be a positive tuple count");
      }
      spec.block = number;
    } else if (key == "shards") {
      if (!ParseU64(value, &number) || number == 0 ||
          number > obs::ProgressTracker::kMaxShards) {
        return SpecError(
            line_no,
            "shards must be in [1, " +
                std::to_string(obs::ProgressTracker::kMaxShards) + "]");
      }
      spec.shards = static_cast<std::uint32_t>(number);
    } else if (key == "workers") {
      if (!ParseU64(value, &number) || number == 0 || number > 64) {
        return SpecError(line_no, "workers must be in [1, 64]");
      }
      spec.workers = static_cast<std::uint32_t>(number);
    } else if (key == "output") {
      if (value.empty()) {
        return SpecError(line_no, "output path must not be empty");
      }
      spec.output_path = value;
    } else if (key == "rel") {
      const std::size_t inner = value.find('=');
      if (inner == std::string::npos || inner == 0 ||
          inner + 1 == value.size()) {
        return SpecError(line_no,
                         "rel must be 'attrs=path.csv', got '" + value + "'");
      }
      spec.relations.push_back(
          RelationSpec{value.substr(0, inner), value.substr(inner + 1)});
    } else if (key == "fault-seed") {
      if (!ParseU64(value, &number)) {
        return SpecError(line_no, "fault-seed must be an unsigned integer");
      }
      spec.fault_config.seed = number;
    } else if (key == "fault-read") {
      if (!ParseProbability(value, &probability)) {
        return SpecError(line_no, "fault-read must be in [0, 1]");
      }
      spec.fault_config.read_fail = probability;
    } else if (key == "fault-write") {
      if (!ParseProbability(value, &probability)) {
        return SpecError(line_no, "fault-write must be in [0, 1]");
      }
      spec.fault_config.write_fail = probability;
    } else if (key == "fault-torn") {
      if (!ParseProbability(value, &probability)) {
        return SpecError(line_no, "fault-torn must be in [0, 1]");
      }
      spec.fault_config.torn_write = probability;
    } else if (key == "fault-retries") {
      if (!ParseU64(value, &number)) {
        return SpecError(line_no, "fault-retries must be an unsigned integer");
      }
      spec.fault_config.retry.max_retries =
          static_cast<std::uint32_t>(number);
    } else if (key == "fault-kill-at") {
      if (!ParseU64(value, &number)) {
        return SpecError(line_no, "fault-kill-at must be an unsigned integer");
      }
      spec.fault_config.kill_at_ios = number;
    } else if (key == "fault-adaptive-retry") {
      if (value != "0" && value != "1") {
        return SpecError(line_no, "fault-adaptive-retry must be 0 or 1");
      }
      spec.fault_config.adaptive_retry = value == "1";
    } else {
      return SpecError(line_no, "unknown key '" + key + "'");
    }
    if (pos > body.size()) break;
  }

  if (spec.id.empty()) {
    return extmem::Status(extmem::StatusCode::kInvalidInput,
                          "query spec: missing required 'id'");
  }
  if (spec.relations.empty()) {
    return extmem::Status(extmem::StatusCode::kInvalidInput,
                          "query spec: at least one 'rel' is required");
  }
  // The operators need room for a handful of blocks; admission-checking
  // degenerate budgets here turns them into a 400 instead of a late
  // kBudgetExceeded deep inside the run.
  if (spec.memory < 4 * spec.block) {
    return extmem::Status(extmem::StatusCode::kInvalidInput,
                          "query spec: memory must be at least 4*block");
  }
  return spec;
}

}  // namespace emjoin::serve
