#ifndef EMJOIN_SERVE_ADMISSION_H_
#define EMJOIN_SERVE_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/thread_annotations.h"
#include "extmem/defs.h"

namespace emjoin::serve {

/// Global admission limits. `memory_budget` caps the sum of the memory
/// budgets (M, in tuples) of all concurrently admitted queries — the
/// daemon-wide analogue of one query's Aggarwal–Vitter M. Queries that
/// do not fit wait in a bounded FIFO queue.
struct AdmissionConfig {
  TupleCount memory_budget = 1 << 16;
  std::size_t max_queued = 16;
};

enum class AdmissionDecision : int {
  kAdmitted = 0,  // budget reserved; run now
  kQueued,        // waiting for running queries to release budget
  kRejected,      // cannot ever fit, or the wait queue is full
};

const char* AdmissionDecisionName(AdmissionDecision decision);

/// Counters and gauges for /metrics and /healthz.
struct AdmissionSnapshot {
  TupleCount memory_budget = 0;
  TupleCount admitted_memory = 0;
  std::size_t running = 0;  // admitted, not yet released
  std::size_t queued = 0;
  std::uint64_t admitted_total = 0;
  std::uint64_t queued_total = 0;
  std::uint64_t rejected_total = 0;
  std::uint64_t resumed_total = 0;
};

/// Thread-safe admission ledger: pure budget arithmetic plus the FIFO
/// wait queue. Owns no sessions — the server maps the returned ids back
/// to its session table. FIFO is strict: while anything is queued, new
/// arrivals queue behind it even if they would fit right now, so a
/// stream of small queries cannot starve a large one.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// Decides for a query needing `memory` tuples. kAdmitted reserves
  /// the budget immediately.
  AdmissionDecision Submit(const std::string& id, TupleCount memory)
      EXCLUDES(mu_);

  /// Releases an admitted query's reservation and promotes queued
  /// queries that now fit, in FIFO order. Returns the promoted ids
  /// (their budget is already reserved).
  std::vector<std::string> Release(TupleCount memory) EXCLUDES(mu_);

  /// Removes a queued query (live kill of a waiting submission).
  /// False if `id` is not in the queue.
  bool CancelQueued(const std::string& id) EXCLUDES(mu_);

  /// Counts a re-submission that resumed from a manifest.
  void CountResume() EXCLUDES(mu_);

  [[nodiscard]] AdmissionSnapshot Snapshot() const EXCLUDES(mu_);

 private:
  mutable std::mutex mu_;
  AdmissionConfig config_ GUARDED_BY(mu_);
  TupleCount admitted_memory_ GUARDED_BY(mu_) = 0;
  std::size_t running_ GUARDED_BY(mu_) = 0;
  std::deque<std::pair<std::string, TupleCount>> queue_ GUARDED_BY(mu_);
  std::uint64_t admitted_total_ GUARDED_BY(mu_) = 0;
  std::uint64_t queued_total_ GUARDED_BY(mu_) = 0;
  std::uint64_t rejected_total_ GUARDED_BY(mu_) = 0;
  std::uint64_t resumed_total_ GUARDED_BY(mu_) = 0;
};

}  // namespace emjoin::serve

#endif  // EMJOIN_SERVE_ADMISSION_H_
