#include "serve/admission.h"

#include <algorithm>

namespace emjoin::serve {

const char* AdmissionDecisionName(AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::kAdmitted: return "admitted";
    case AdmissionDecision::kQueued: return "queued";
    case AdmissionDecision::kRejected: return "rejected";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {}

AdmissionDecision AdmissionController::Submit(const std::string& id,
                                              TupleCount memory) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (memory > config_.memory_budget) {
    ++rejected_total_;
    return AdmissionDecision::kRejected;
  }
  if (queue_.empty() &&
      admitted_memory_ + memory <= config_.memory_budget) {
    admitted_memory_ += memory;
    ++running_;
    ++admitted_total_;
    return AdmissionDecision::kAdmitted;
  }
  if (queue_.size() >= config_.max_queued) {
    ++rejected_total_;
    return AdmissionDecision::kRejected;
  }
  queue_.emplace_back(id, memory);
  ++queued_total_;
  return AdmissionDecision::kQueued;
}

std::vector<std::string> AdmissionController::Release(TupleCount memory) {
  const std::lock_guard<std::mutex> lock(mu_);
  admitted_memory_ = admitted_memory_ > memory ? admitted_memory_ - memory : 0;
  if (running_ > 0) --running_;
  std::vector<std::string> promoted;
  while (!queue_.empty() &&
         admitted_memory_ + queue_.front().second <= config_.memory_budget) {
    admitted_memory_ += queue_.front().second;
    ++running_;
    ++admitted_total_;
    promoted.push_back(queue_.front().first);
    queue_.pop_front();
  }
  return promoted;
}

bool AdmissionController::CancelQueued(const std::string& id) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it =
      std::find_if(queue_.begin(), queue_.end(),
                   [&id](const auto& entry) { return entry.first == id; });
  if (it == queue_.end()) return false;
  queue_.erase(it);
  return true;
}

void AdmissionController::CountResume() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++resumed_total_;
}

AdmissionSnapshot AdmissionController::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  AdmissionSnapshot snap;
  snap.memory_budget = config_.memory_budget;
  snap.admitted_memory = admitted_memory_;
  snap.running = running_;
  snap.queued = queue_.size();
  snap.admitted_total = admitted_total_;
  snap.queued_total = queued_total_;
  snap.rejected_total = rejected_total_;
  snap.resumed_total = resumed_total_;
  return snap;
}

}  // namespace emjoin::serve
