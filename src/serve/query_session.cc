#include "serve/query_session.h"

#include <cstdio>
#include <utility>

namespace emjoin::serve {

namespace {

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace

const char* QueryStateName(QueryState state) {
  switch (state) {
    case QueryState::kQueued: return "queued";
    case QueryState::kAdmitted: return "admitted";
    case QueryState::kRunning: return "running";
    case QueryState::kCompleted: return "completed";
    case QueryState::kFailed: return "failed";
    case QueryState::kKilled: return "killed";
  }
  return "unknown";
}

std::string JsonQuote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

std::string QuerySessionSnapshot::ToJson() const {
  std::string out = "{";
  out += "\"id\": " + JsonQuote(id);
  out += ", \"state\": \"";
  out += QueryStateName(state);
  out += "\"";
  out += ", \"attempts\": " + std::to_string(attempts);
  out += ", \"rows\": " + std::to_string(rows);
  out += ", \"bound_ios\": " + JsonNumber(bound_ios);
  out += ", \"percent\": " + JsonNumber(progress.percent);
  out += ", \"eta_ios\": " + JsonNumber(progress.eta_ios);
  out += ", \"done_ios\": " + std::to_string(progress.done_ios);
  out += ", \"recovery_ios\": " + std::to_string(progress.recovery_ios);
  out += ", \"reads\": " + std::to_string(io.block_reads);
  out += ", \"writes\": " + std::to_string(io.block_writes);
  out += ", \"faults\": " + std::to_string(faults.TotalFaults());
  out += ", \"retries\": " + std::to_string(faults.retries);
  out += ", \"error\": " + JsonQuote(error);
  out += "}";
  return out;
}

QuerySession::QuerySession(QuerySpec spec, std::size_t recorder_capacity)
    : id_(spec.id),
      telemetry_(recorder_capacity),
      spec_(std::move(spec)) {}

QuerySpec QuerySession::spec() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spec_;
}

void QuerySession::Respec(QuerySpec spec) {
  const std::lock_guard<std::mutex> lock(mu_);
  spec_ = std::move(spec);
  error_.clear();
  kill_requested_ = false;
}

std::uint32_t QuerySession::attempts() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return attempts_;
}

std::uint32_t QuerySession::BeginAttempt() {
  set_state(QueryState::kRunning);
  const std::lock_guard<std::mutex> lock(mu_);
  return ++attempts_;
}

void QuerySession::ArmKillSwitch(extmem::FaultInjector* injector) {
  const std::lock_guard<std::mutex> lock(mu_);
  live_injector_ = injector;
  // A kill requested while the query sat in the admission queue (or
  // between attempts) lands at the first block charge of this attempt.
  if (kill_requested_ && live_injector_ != nullptr) {
    live_injector_->RequestKill();
  }
}

void QuerySession::DisarmKillSwitch() {
  const std::lock_guard<std::mutex> lock(mu_);
  live_injector_ = nullptr;
}

void QuerySession::RequestKill() {
  const std::lock_guard<std::mutex> lock(mu_);
  kill_requested_ = true;
  if (live_injector_ != nullptr) live_injector_->RequestKill();
}

bool QuerySession::kill_requested() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return kill_requested_;
}

void QuerySession::SetBound(double bound_ios) {
  const std::lock_guard<std::mutex> lock(mu_);
  bound_ios_ = bound_ios;
}

void QuerySession::AbsorbAttempt(const metrics::Registry& attempt_registry,
                                 const extmem::IoStats& io,
                                 const extmem::FaultStats& faults,
                                 std::uint64_t rows,
                                 const extmem::Status& status) {
  const std::lock_guard<std::mutex> lock(mu_);
  registry_.MergeFrom(attempt_registry);
  io_ += io;
  faults_ = faults_ + faults;
  rows_ = rows;
  error_ = status.ok() ? std::string() : status.ToString();
}

QuerySessionSnapshot QuerySession::Snapshot() const {
  QuerySessionSnapshot snap;
  snap.id = id_;
  snap.state = state();
  snap.progress = telemetry_.tracker().Snapshot();
  const std::lock_guard<std::mutex> lock(mu_);
  snap.attempts = attempts_;
  snap.rows = rows_;
  snap.bound_ios = bound_ios_;
  snap.io = io_;
  snap.faults = faults_;
  snap.error = error_;
  return snap;
}

void QuerySession::CollectInto(metrics::Registry* aggregate) const {
  const obs::ProgressSnapshot progress = telemetry_.tracker().Snapshot();
  const std::lock_guard<std::mutex> lock(mu_);
  aggregate->MergeFrom(registry_, {{"query", id_}});
  // Live gauges straight off the thread-safe tracker, so a scrape
  // mid-join sees motion even between attempt-boundary collections.
  aggregate
      ->GetGauge("emjoin_query_progress_basis_points", {{"query", id_}})
      ->Set(static_cast<std::uint64_t>(progress.percent * 100.0));
  aggregate->GetGauge("emjoin_query_done_ios", {{"query", id_}})
      ->Set(progress.done_ios);
  aggregate->GetGauge("emjoin_query_recovery_ios", {{"query", id_}})
      ->Set(progress.recovery_ios);
}

}  // namespace emjoin::serve
