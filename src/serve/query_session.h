#ifndef EMJOIN_SERVE_QUERY_SESSION_H_
#define EMJOIN_SERVE_QUERY_SESSION_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "core/thread_annotations.h"
#include "extmem/fault_injector.h"
#include "extmem/io_stats.h"
#include "extmem/status.h"
#include "metrics/registry.h"
#include "obs/progress.h"
#include "obs/telemetry.h"
#include "recover/manifest.h"
#include "serve/query_spec.h"

namespace emjoin::serve {

/// Lifecycle of a submitted query. Terminal states (completed / failed /
/// killed) can be re-submitted; kKilled and kFailed re-admissions resume
/// from the session's QueryManifest instead of restarting.
enum class QueryState : int {
  kQueued = 0,  // waiting for admission (budget or queue slot)
  kAdmitted,    // budget reserved, handed to the run pool
  kRunning,     // executing on a pool worker
  kCompleted,   // finished; the full output was delivered exactly once
  kFailed,      // typed failure (bad CSV, non-acyclic query, I/O error)
  kKilled,      // kill switch fired (scheduled or live); resumable
};

/// Short stable name ("queued", "admitted", "running", ...).
const char* QueryStateName(QueryState state);

/// Minimal JSON string literal: quotes, escapes ", \ and control bytes.
std::string JsonQuote(const std::string& text);

/// A point-in-time read of one session, as served by GET /queries.
struct QuerySessionSnapshot {
  std::string id;
  QueryState state = QueryState::kQueued;
  std::uint32_t attempts = 0;
  std::uint64_t rows = 0;
  double bound_ios = 0.0;  // PredictBoundWorstCase (0: not planned yet)
  extmem::IoStats io;      // summed across attempts
  extmem::FaultStats faults;
  std::string error;  // last attempt's failure message, empty on success
  obs::ProgressSnapshot progress;

  /// One /queries inventory entry as a JSON object.
  std::string ToJson() const;
};

/// Everything the daemon tracks for one query id, across attempts: the
/// live Telemetry (one ProgressTracker + FlightRecorder shared by every
/// attempt, so percent stays monotone through a kill/resume cycle), the
/// QueryManifest carrying the output watermark between attempts, and a
/// mutex-guarded metrics Registry populated at attempt boundaries.
///
/// Threading: the atomic `state` and the Telemetry are read lock-free
/// from the HTTP thread while a pool worker runs the query; everything
/// else (spec, registry, tallies, the kill-switch arm) is guarded by
/// the session mutex. The Registry is only ever *written* by the worker
/// at attempt end and *read* by the scraper under the same mutex,
/// honoring its thread-confinement contract.
class QuerySession {
 public:
  explicit QuerySession(QuerySpec spec, std::size_t recorder_capacity);

  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  [[nodiscard]] const std::string& id() const { return id_; }

  [[nodiscard]] QueryState state() const {
    return state_.load(std::memory_order_acquire);
  }
  void set_state(QueryState state) {
    state_.store(state, std::memory_order_release);
  }

  [[nodiscard]] obs::Telemetry& telemetry() { return telemetry_; }
  [[nodiscard]] const obs::Telemetry& telemetry() const { return telemetry_; }
  [[nodiscard]] recover::QueryManifest& manifest() { return manifest_; }

  /// The current spec, copied under the session lock.
  [[nodiscard]] QuerySpec spec() const EXCLUDES(mu_);

  /// Replaces the spec for a resume re-submission and clears the
  /// previous attempt's error and any pending kill request.
  void Respec(QuerySpec spec) EXCLUDES(mu_);

  [[nodiscard]] std::uint32_t attempts() const EXCLUDES(mu_);

  /// Stamps kRunning and returns this attempt's 1-based ordinal.
  std::uint32_t BeginAttempt() EXCLUDES(mu_);

  /// Kill plumbing. The worker arms the session with its attempt's
  /// injector; RequestKill (HTTP thread) forwards to the armed injector
  /// or, if none is armed yet, leaves the request pending so the next
  /// attempt dies at its first block charge.
  void ArmKillSwitch(extmem::FaultInjector* injector) EXCLUDES(mu_);
  void DisarmKillSwitch() EXCLUDES(mu_);
  void RequestKill() EXCLUDES(mu_);
  [[nodiscard]] bool kill_requested() const EXCLUDES(mu_);

  void SetBound(double bound_ios) EXCLUDES(mu_);

  /// Folds one finished attempt into the session: merges the attempt's
  /// thread-confined registry, sums device I/O and fault tallies, and
  /// records the journaled row total and (on failure) the error text.
  void AbsorbAttempt(const metrics::Registry& attempt_registry,
                     const extmem::IoStats& io,
                     const extmem::FaultStats& faults, std::uint64_t rows,
                     const extmem::Status& status) EXCLUDES(mu_);

  [[nodiscard]] QuerySessionSnapshot Snapshot() const EXCLUDES(mu_);

  /// Merges this session's registry into `aggregate` under a
  /// query="<id>" label, plus live progress gauges from the tracker.
  void CollectInto(metrics::Registry* aggregate) const EXCLUDES(mu_);

 private:
  const std::string id_;
  // Lock-free: the HTTP thread polls the state while a pool worker
  // drives the lifecycle; release/acquire pairing in state()/set_state.
  std::atomic<QueryState> state_ LOCK_FREE_ATOMIC{QueryState::kQueued};
  obs::Telemetry telemetry_;
  recover::QueryManifest manifest_;

  mutable std::mutex mu_;
  QuerySpec spec_ GUARDED_BY(mu_);
  std::uint32_t attempts_ GUARDED_BY(mu_) = 0;
  std::uint64_t rows_ GUARDED_BY(mu_) = 0;
  double bound_ios_ GUARDED_BY(mu_) = 0.0;
  extmem::IoStats io_ GUARDED_BY(mu_);
  extmem::FaultStats faults_ GUARDED_BY(mu_);
  std::string error_ GUARDED_BY(mu_);
  metrics::Registry registry_ GUARDED_BY(mu_);
  bool kill_requested_ GUARDED_BY(mu_) = false;
  extmem::FaultInjector* live_injector_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace emjoin::serve

#endif  // EMJOIN_SERVE_QUERY_SESSION_H_
