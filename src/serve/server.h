#ifndef EMJOIN_SERVE_SERVER_H_
#define EMJOIN_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/thread_annotations.h"
#include "extmem/status.h"
#include "obs/http_exporter.h"
#include "obs/telemetry.h"
#include "parallel/worker_pool.h"
#include "serve/admission.h"
#include "serve/query_session.h"

namespace emjoin::serve {

struct ServerOptions {
  /// Listener port; 0 picks an ephemeral port (see Server::port()).
  std::uint16_t port = 0;
  /// Pool workers executing admitted queries (concurrency ceiling on
  /// top of the admission budget).
  std::uint32_t run_workers = 2;
  AdmissionConfig admission;
  /// JSONL request log file (empty: in-memory ring only, GET /log).
  std::string request_log_path;
  /// Per-query FlightRecorder capacity (events).
  std::size_t recorder_capacity = 4096;
  /// Directory for persisted QueryManifests (empty: manifests live in
  /// the session only — resume works across re-submissions to this
  /// process, not across daemon restarts).
  std::string manifest_dir;
};

/// The emjoin_serve daemon core: a multi-query observability plane over
/// the single-query telemetry stack.
///
///   POST /queries               submit a QuerySpec (see query_spec.h)
///   POST /queries/<id>/kill     live kill (running) / dequeue (queued)
///   GET  /queries               inventory of every session
///   GET  /queries/<id>          one session's snapshot
///   GET  /queries/<id>/progress that query's ProgressTracker JSON
///   GET  /queries/<id>/events   that query's FlightRecorder JSONL
///   GET  /metrics               aggregate across all queries, each
///                               series labeled query="<id>"
///   GET  /progress              all live trackers in one JSON object
///   GET  /events                every recorder's JSONL, delimited by
///                               {"query": "<id>"} marker lines
///   GET  /healthz               daemon-wide liveness JSON
///   GET  /log                   the request log's in-memory tail
///
/// Admission: each query's memory budget (spec `memory`) is reserved
/// against AdmissionConfig::memory_budget; non-fitting queries wait in
/// a FIFO queue surfaced as gauges. Re-submitting a killed or failed id
/// resumes from that session's QueryManifest — completed phases and
/// journaled rows are never re-done, so the output file's final
/// contents are exactly the uninterrupted run's (zero duplicate emits).
///
/// Every request is appended to a structured JSONL log stamped with a
/// sequence number and the daemon's virtual I/O clock (the sum of all
/// trackers' clocks) — the service-grade sibling of the flight
/// recorder's per-query timeline.
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener and starts the run pool. kIoError if the port
  /// cannot be bound.
  [[nodiscard]] extmem::Status Start();

  /// Stops accepting requests, kills still-running queries, drains the
  /// run pool, flushes the request log. Idempotent.
  void Stop();

  [[nodiscard]] bool running() const { return exporter_.running(); }
  [[nodiscard]] std::uint16_t port() const { return exporter_.port(); }

  /// Submits a spec body exactly as POST /queries does (tests and the
  /// CLI drive this directly). `http_status` receives the HTTP status
  /// line; the return value is the response JSON.
  std::string Submit(const std::string& body, std::string* http_status);

  /// The aggregate exposition GET /metrics serves.
  [[nodiscard]] std::string MetricsText();
  [[nodiscard]] std::string QueriesJson();
  [[nodiscard]] std::string HealthzJson();

  /// Sum of every session tracker's virtual I/O clock.
  [[nodiscard]] std::uint64_t IoClock();

 private:
  struct StateCounts {
    std::size_t live = 0;       // queued + admitted + running
    std::size_t completed = 0;
    std::size_t failed = 0;     // failed + killed
    std::size_t by_state[6] = {};
  };

  bool Handle(const obs::HttpRequest& request, obs::HttpReply* reply);
  void RouteGet(const std::string& path, obs::HttpReply* reply);
  void RoutePost(const std::string& path, const std::string& body,
                 obs::HttpReply* reply);
  std::string KillQuery(const std::string& id, std::string* http_status);

  /// Runs one attempt of `session` on a pool worker, then releases its
  /// admission reservation and launches any promoted queued sessions.
  void RunSession(QuerySession* session);
  /// `attempt_registry` receives the sharded run's merged per-shard
  /// metrics (shard="<i>" labels); `shard_io`/`shard_faults` sum the
  /// shard devices' tallies, which the orchestrator `device` never sees.
  [[nodiscard]] extmem::Status ExecuteAttempt(const QuerySpec& spec,
                                              QuerySession* session,
                                              extmem::Device* device,
                                              metrics::Registry* attempt_registry,
                                              extmem::IoStats* shard_io,
                                              extmem::FaultStats* shard_faults);
  void LaunchAdmitted(QuerySession* session);

  QuerySession* FindSession(const std::string& id) REQUIRES(mu_);
  StateCounts CountStates() EXCLUDES(mu_);
  [[nodiscard]] std::string ManifestPathFor(const std::string& id) const;
  void LogRequest(const obs::HttpRequest& request,
                  const obs::HttpReply& reply) EXCLUDES(log_mu_);

  ServerOptions options_;
  // The exporter requires a Telemetry for its single-query built-ins;
  // the daemon's handler claims every route, so this one stays idle.
  obs::Telemetry idle_telemetry_;
  obs::HttpExporter exporter_;
  AdmissionController admission_;
  std::unique_ptr<parallel::WorkerPool> run_pool_;
  // Lock-free: flipped by Stop() (any thread) and polled by pool
  // workers entering RunSession; release/acquire pairing.
  std::atomic<bool> stopping_ LOCK_FREE_ATOMIC{false};

  std::mutex mu_;  // sessions table + submission ordering
  std::map<std::string, std::unique_ptr<QuerySession>> sessions_
      GUARDED_BY(mu_);
  // Submission order, for listings.
  std::vector<QuerySession*> order_ GUARDED_BY(mu_);

  std::mutex log_mu_;
  // Last kLogTailMax JSONL lines.
  std::deque<std::string> log_tail_ GUARDED_BY(log_mu_);
  std::uint64_t log_seq_ GUARDED_BY(log_mu_) = 0;
  std::FILE* log_file_ GUARDED_BY(log_mu_) = nullptr;
};

}  // namespace emjoin::serve

#endif  // EMJOIN_SERVE_SERVER_H_
