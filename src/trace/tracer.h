#ifndef EMJOIN_TRACE_TRACER_H_
#define EMJOIN_TRACE_TRACER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "extmem/device.h"
#include "extmem/fault_injector.h"
#include "extmem/io_stats.h"

namespace emjoin::trace {

using SpanId = std::uint32_t;
inline constexpr SpanId kNoSpan = ~SpanId{0};

/// One closed (or still-open) span of a trace: a named phase of a join
/// algorithm, positioned in the hierarchy by `parent`/`depth` and carrying
/// the I/O, memory, and counter deltas observed between its open and
/// close. Spans are identified by their open order: `SpanId` is the index
/// into Tracer::spans(), and children always have larger ids than their
/// parents.
struct SpanRecord {
  const char* name = "";       // string literal, like Device tags
  SpanId parent = kNoSpan;     // kNoSpan for root spans
  std::uint32_t depth = 0;     // root spans have depth 0

  /// Device block-charge delta between open and close (inclusive of
  /// children). exclusive() subtracts the children's inclusive deltas.
  extmem::IoStats inclusive;
  extmem::IoStats child_sum;
  extmem::IoStats exclusive() const { return inclusive - child_sum; }

  /// Per-tag breakdown of `inclusive` (only tags with nonzero deltas).
  /// Consistent with Device::per_tag() by construction: both are diffs of
  /// the same counters, so a span's tag deltas sum to its inclusive I/O.
  std::map<std::string, extmem::IoStats, std::less<>> by_tag;

  /// Peak tuples resident in simulated memory while the span was open
  /// (includes peaks reached inside child spans).
  TupleCount peak_resident = 0;

  /// Counters bumped via Tracer::AddCount while this span was innermost.
  std::map<std::string, std::uint64_t, std::less<>> counters;

  /// Injected-fault activity (retries, backoff I/Os, shrinks, ...)
  /// observed between open and close. has_faults is true only when a
  /// FaultInjector was attached to the device at span open, so
  /// fault-free traces carry no fault noise in their sinks.
  extmem::FaultStats faults;
  bool has_faults = false;

  /// Expected I/O cost from the paper's formulas (Span::ExpectIos);
  /// negative when unset. measured/expected is the per-phase ratio the
  /// benches assert on.
  long double expect_ios = -1.0L;
  bool has_expect() const { return expect_ios >= 0.0L; }

  /// Virtual timeline position: cumulative charged I/Os at open. Chrome
  /// trace export uses this as the timestamp and `inclusive.total()` as
  /// the duration, so the Perfetto timeline visualizes the cost model
  /// (one "microsecond" = one block I/O), not wall time.
  std::uint64_t open_clock = 0;

  bool closed = false;
};

/// Hierarchical phase tracer for the external-memory cost model.
///
/// A Tracer records a forest of spans. Opening a span snapshots the
/// owning Device's stats(), per-tag breakdown, and memory gauge; closing
/// it turns the snapshots into deltas. Algorithms never talk to the
/// Tracer directly — they open trace::Span RAII scopes against their
/// Device and bump counters through trace::Count, both of which are a
/// single null-check when no tracer is attached, preserving the traced
/// code's disabled-path wall clock.
///
/// The tracer is an observer only: it reads Device counters at span
/// boundaries and never charges or suppresses an I/O, so enabling it
/// changes zero block counts (pinned by io_invariance tests).
///
/// Spans must be strictly nested (guaranteed by the RAII wrapper). A
/// single tracer may observe several devices over its lifetime (each
/// bench configuration creates a fresh Device); spans nested under one
/// root must all charge the same device for the parent/child I/O
/// roll-ups to be meaningful.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span named `name` (a string literal) charging `dev`.
  SpanId OpenSpan(extmem::Device* dev, const char* name);

  /// Closes the innermost span; `id` must match it.
  void CloseSpan(SpanId id);

  /// Adds `delta` to counter `name` on the innermost open span (and to
  /// the process totals). With no open span only the totals are bumped.
  void AddCount(std::string_view name, std::uint64_t delta);

  /// Annotates `id` with the phase's expected I/O cost (eq. (4) / the
  /// Theorem bounds), enabling per-phase measured/expected reporting.
  void ExpectIos(SpanId id, long double ios);

  bool InSpan() const { return !stack_.empty(); }

  /// Imports every span of `other` under a fresh synthetic root named
  /// `root_name` (a literal or interned string): the root's inclusive
  /// I/O, tag breakdown, peak residency, and fault tallies aggregate
  /// `other`'s root spans, and `other`'s spans are re-parented one level
  /// down with their ids shifted past this tracer's. Successive absorbs
  /// advance the virtual clock by each subtree's inclusive I/O, so
  /// shards absorbed at a merge barrier occupy disjoint (sequential)
  /// timeline intervals — the Chrome export shows per-shard work
  /// side by side on the I/O axis, not overlapped. Counter totals add.
  void Absorb(const Tracer& other, const char* root_name);

  /// All spans in open order (SpanId == index).
  const std::vector<SpanRecord>& spans() const { return spans_; }

  /// Counter totals across all spans.
  const std::map<std::string, std::uint64_t, std::less<>>& totals() const {
    return totals_;
  }

 private:
  struct Frame {
    SpanId id = kNoSpan;
    extmem::Device* dev = nullptr;
    extmem::IoStats open_io;
    std::map<std::string, extmem::IoStats, std::less<>> open_tags;
    extmem::FaultStats open_faults;
    bool has_injector = false;  // injector attached at span open
  };

  std::vector<SpanRecord> spans_;
  std::vector<Frame> stack_;
  std::map<std::string, std::uint64_t, std::less<>> totals_;
  // Virtual I/O clock: advances by each root span's inclusive I/O so
  // spans from successive devices occupy disjoint timeline intervals.
  std::uint64_t clock_ = 0;
  // Maps a root span's device total at open to the global clock.
  std::map<const extmem::Device*, std::uint64_t> clock_base_;
};

/// RAII span scope. Opens a span on `dev`'s attached tracer, or does
/// nothing (one branch) when no tracer is attached. When an event sink
/// is attached to the device (independently of the tracer), the span
/// additionally emits kPhaseBegin/kPhaseEnd events — this is how every
/// instrumented operator phase reaches the flight recorder and the
/// progress tracker without further per-operator wiring.
class Span {
 public:
  Span(extmem::Device* dev, const char* name)
      : tracer_(dev->tracer()), events_(dev->events()), name_(name) {
    if (tracer_ != nullptr) [[unlikely]] {
      id_ = tracer_->OpenSpan(dev, name);
    }
    if (events_ != nullptr) [[unlikely]] {
      events_->OnEvent(
          extmem::ObsEvent{extmem::ObsEventKind::kPhaseBegin, name_});
    }
  }
  ~Span() {
    if (tracer_ != nullptr) [[unlikely]] {
      tracer_->CloseSpan(id_);
    }
    if (events_ != nullptr) [[unlikely]] {
      events_->OnEvent(
          extmem::ObsEvent{extmem::ObsEventKind::kPhaseEnd, name_});
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Annotates this span with its expected I/O cost.
  void ExpectIos(long double ios) {
    if (tracer_ != nullptr) tracer_->ExpectIos(id_, ios);
  }

  /// Bumps a counter (attributed to the innermost open span, which is
  /// this one unless a child is open).
  void Count(std::string_view name, std::uint64_t delta = 1) {
    if (tracer_ != nullptr) tracer_->AddCount(name, delta);
  }

  bool enabled() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_;
  extmem::IoEventSink* events_;
  const char* name_;
  SpanId id_ = kNoSpan;
};

/// Bumps a counter on `dev`'s tracer; a single branch when detached.
inline void Count(extmem::Device* dev, std::string_view name,
                  std::uint64_t delta = 1) {
  if (Tracer* t = dev->tracer(); t != nullptr) [[unlikely]] {
    t->AddCount(name, delta);
  }
}

}  // namespace emjoin::trace

#endif  // EMJOIN_TRACE_TRACER_H_
