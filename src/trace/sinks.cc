#include "trace/sinks.h"

#include <cinttypes>
#include <cstdio>
#include <string>

namespace emjoin::trace {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string U64(std::uint64_t v) { return std::to_string(v); }

std::string Ld(long double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3Lf", v);
  return buf;
}

// {"tag": {"reads": r, "writes": w}, ...}
std::string TagsJson(
    const std::map<std::string, extmem::IoStats, std::less<>>& tags) {
  std::string out = "{";
  bool first = true;
  for (const auto& [tag, st] : tags) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(tag) + "\": {\"reads\": " + U64(st.block_reads) +
           ", \"writes\": " + U64(st.block_writes) + "}";
  }
  return out + "}";
}

// {"read_faults": r, ..., "exhaustions": e} — only nonzero kinds.
std::string FaultsJson(const extmem::FaultStats& fs) {
  std::string out = "{";
  bool first = true;
  const auto add = [&out, &first](const char* kind, std::uint64_t v) {
    if (v == 0) return;
    if (!first) out += ", ";
    first = false;
    out += "\"" + std::string(kind) + "\": " + U64(v);
  };
  add("read_faults", fs.read_faults);
  add("write_faults", fs.write_faults);
  add("torn_writes", fs.torn_writes);
  add("retries", fs.retries);
  add("backoff_ios", fs.backoff_ios);
  add("shrinks", fs.shrinks);
  add("exhaustions", fs.exhaustions);
  return out + "}";
}

std::string CountersJson(
    const std::map<std::string, std::uint64_t, std::less<>>& counters) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + JsonEscape(name) + "\": " + U64(v);
  }
  return out + "}";
}

}  // namespace

std::string TreeReport(const Tracer& tracer) {
  const std::vector<SpanRecord>& spans = tracer.spans();
  std::string out =
      "trace: " + std::to_string(spans.size()) +
      " spans (incl = block I/Os inside span, excl = minus children, % = "
      "share of parent)\n";
  for (const SpanRecord& s : spans) {
    const extmem::IoStats excl = s.exclusive();
    std::string line(static_cast<std::size_t>(s.depth) * 2, ' ');
    line += s.name;
    line += "  incl=" + U64(s.inclusive.total()) +
            " (r=" + U64(s.inclusive.block_reads) +
            " w=" + U64(s.inclusive.block_writes) + ")";
    line += " excl=" + U64(excl.total());
    if (s.parent != kNoSpan) {
      const std::uint64_t p = spans[s.parent].inclusive.total();
      char pct[32];
      std::snprintf(pct, sizeof pct, "%.1f%%",
                    p == 0 ? 0.0
                           : 100.0 * static_cast<double>(s.inclusive.total()) /
                                 static_cast<double>(p));
      line += " (";
      line += pct;
      line += " of parent)";
    }
    line += " peak_mem=" + U64(s.peak_resident);
    for (const auto& [name, v] : s.counters) {
      line += " " + name + "=" + U64(v);
    }
    if (s.has_faults && s.faults.TotalActivity() > 0) {
      line += " faults=" + U64(s.faults.TotalFaults()) +
              " retries=" + U64(s.faults.retries);
    }
    if (s.has_expect()) {
      line += " expect=" + Ld(s.expect_ios);
      if (s.expect_ios > 0.0L) {
        line += " meas/exp=" +
                Ld(static_cast<long double>(s.inclusive.total()) /
                   s.expect_ios);
      }
    }
    if (!s.closed) line += " [UNCLOSED]";
    out += line + "\n";
  }
  if (!tracer.totals().empty()) {
    out += "counters:";
    for (const auto& [name, v] : tracer.totals()) {
      out += " " + name + "=" + U64(v);
    }
    out += "\n";
  }
  return out;
}

bool WriteJsonl(const Tracer& tracer, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"event\": \"meta\", \"spans\": %zu}\n",
               tracer.spans().size());
  for (SpanId id = 0; id < tracer.spans().size(); ++id) {
    const SpanRecord& s = tracer.spans()[id];
    const extmem::IoStats excl = s.exclusive();
    std::string line = "{\"event\": \"span\", \"id\": " + U64(id) +
                       ", \"parent\": " +
                       (s.parent == kNoSpan ? std::string("-1")
                                            : U64(s.parent)) +
                       ", \"depth\": " + U64(s.depth) + ", \"name\": \"" +
                       JsonEscape(s.name) + "\"";
    line += ", \"open_clock\": " + U64(s.open_clock);
    line += ", \"reads\": " + U64(s.inclusive.block_reads) +
            ", \"writes\": " + U64(s.inclusive.block_writes);
    line += ", \"excl_reads\": " + U64(excl.block_reads) +
            ", \"excl_writes\": " + U64(excl.block_writes);
    line += ", \"peak_resident\": " + U64(s.peak_resident);
    line += ", \"tags\": " + TagsJson(s.by_tag);
    line += ", \"counters\": " + CountersJson(s.counters);
    if (s.has_faults && s.faults.TotalActivity() > 0) {
      line += ", \"faults\": " + FaultsJson(s.faults);
    }
    if (s.has_expect()) {
      line += ", \"expect_ios\": " + Ld(s.expect_ios);
    }
    if (!s.closed) line += ", \"unclosed\": true";
    line += "}";
    std::fprintf(f, "%s\n", line.c_str());
  }
  // Root spans partition the trace, so summing them (not every span)
  // counts each injected fault exactly once.
  extmem::FaultStats fault_totals;
  bool any_faults = false;
  for (const SpanRecord& s : tracer.spans()) {
    if (s.parent == kNoSpan && s.has_faults) {
      fault_totals = fault_totals + s.faults;
      any_faults = true;
    }
  }
  std::string totals_line = "{\"event\": \"totals\", \"counters\": " +
                            CountersJson(tracer.totals());
  if (any_faults) totals_line += ", \"faults\": " + FaultsJson(fault_totals);
  std::fprintf(f, "%s}\n", totals_line.c_str());
  std::fclose(f);
  return true;
}

bool WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
  std::fprintf(
      f,
      "  {\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
      "\"args\": {\"name\": \"emjoin (1 us = 1 block I/O)\"}}");
  for (SpanId id = 0; id < tracer.spans().size(); ++id) {
    const SpanRecord& s = tracer.spans()[id];
    const extmem::IoStats excl = s.exclusive();
    std::string args = "{\"reads\": " + U64(s.inclusive.block_reads) +
                       ", \"writes\": " + U64(s.inclusive.block_writes) +
                       ", \"excl_ios\": " + U64(excl.total()) +
                       ", \"peak_resident\": " + U64(s.peak_resident);
    if (!s.by_tag.empty()) args += ", \"tags\": " + TagsJson(s.by_tag);
    if (!s.counters.empty()) {
      args += ", \"counters\": " + CountersJson(s.counters);
    }
    if (s.has_faults && s.faults.TotalActivity() > 0) {
      args += ", \"faults\": " + FaultsJson(s.faults);
    }
    if (s.has_expect()) {
      args += ", \"expect_ios\": " + Ld(s.expect_ios);
      if (s.expect_ios > 0.0L) {
        args += ", \"io_ratio\": " +
                Ld(static_cast<long double>(s.inclusive.total()) /
                   s.expect_ios);
      }
    }
    args += "}";
    std::fprintf(f,
                 ",\n  {\"name\": \"%s\", \"cat\": \"emjoin\", \"ph\": \"X\", "
                 "\"ts\": %" PRIu64 ", \"dur\": %" PRIu64
                 ", \"pid\": 1, \"tid\": 1, \"args\": %s}",
                 JsonEscape(s.name).c_str(), s.open_clock,
                 s.inclusive.total(), args.c_str());
  }
  extmem::FaultStats fault_totals;
  bool any_faults = false;
  for (const SpanRecord& s : tracer.spans()) {
    if (s.parent == kNoSpan && s.has_faults) {
      fault_totals = fault_totals + s.faults;
      any_faults = true;
    }
  }
  if (any_faults) {
    std::fprintf(f,
                 ",\n  {\"ph\": \"M\", \"pid\": 1, \"name\": "
                 "\"fault_totals\", \"args\": %s}",
                 FaultsJson(fault_totals).c_str());
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return true;
}

}  // namespace emjoin::trace
