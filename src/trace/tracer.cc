#include "trace/tracer.h"

#include <cassert>

namespace emjoin::trace {

SpanId Tracer::OpenSpan(extmem::Device* dev, const char* name) {
  assert(dev != nullptr);
  const SpanId id = static_cast<SpanId>(spans_.size());

  SpanRecord rec;
  rec.name = name;
  if (!stack_.empty()) {
    rec.parent = stack_.back().id;
    rec.depth = spans_[rec.parent].depth + 1;
  } else {
    // A root span anchors its device's cumulative-I/O timeline at the
    // current global clock, so successive root spans (possibly on fresh
    // devices) occupy successive timeline intervals.
    clock_base_[dev] = clock_ - dev->stats().total();
  }
  rec.open_clock = clock_base_[dev] + dev->stats().total();
  spans_.push_back(std::move(rec));

  Frame frame;
  frame.id = id;
  frame.dev = dev;
  frame.open_io = dev->stats();
  frame.open_tags = dev->per_tag();
  if (const extmem::FaultInjector* inj = dev->fault_injector()) {
    frame.open_faults = inj->stats();
    frame.has_injector = true;
  }
  stack_.push_back(std::move(frame));
  dev->gauge().PushWatermark();
  return id;
}

void Tracer::CloseSpan(SpanId id) {
  assert(!stack_.empty());
  assert(stack_.back().id == id && "spans must close in LIFO order");
  const Frame& frame = stack_.back();
  extmem::Device* dev = frame.dev;
  SpanRecord& rec = spans_[id];

  rec.inclusive = dev->stats() - frame.open_io;
  rec.peak_resident = dev->gauge().PopWatermark();
  for (const auto& [tag, now] : dev->per_tag()) {
    extmem::IoStats delta = now;
    if (const auto it = frame.open_tags.find(tag);
        it != frame.open_tags.end()) {
      delta = now - it->second;
    }
    if (delta.total() != 0) rec.by_tag.emplace(tag, delta);
  }
  // An injector detached (or swapped in) mid-span yields no meaningful
  // delta, so fault attribution requires the same injector view at both
  // ends.
  if (frame.has_injector) {
    if (const extmem::FaultInjector* inj = dev->fault_injector()) {
      rec.faults = inj->stats() - frame.open_faults;
      rec.has_faults = true;
    }
  }
  rec.closed = true;
  stack_.pop_back();

  if (rec.parent != kNoSpan) {
    spans_[rec.parent].child_sum += rec.inclusive;
  }
  const std::uint64_t end_clock = rec.open_clock + rec.inclusive.total();
  if (end_clock > clock_) clock_ = end_clock;
}

void Tracer::Absorb(const Tracer& other, const char* root_name) {
  const SpanId base = static_cast<SpanId>(spans_.size());

  SpanRecord root;
  root.name = root_name;
  root.parent = kNoSpan;
  root.depth = 0;
  root.open_clock = clock_;
  root.closed = true;
  for (const SpanRecord& s : other.spans_) {
    if (s.parent != kNoSpan) continue;
    root.inclusive += s.inclusive;
    root.child_sum += s.inclusive;
    if (s.peak_resident > root.peak_resident) {
      root.peak_resident = s.peak_resident;
    }
    if (s.has_faults) {
      root.faults = root.faults + s.faults;
      root.has_faults = true;
    }
    for (const auto& [tag, io] : s.by_tag) {
      const auto it = root.by_tag.find(tag);
      if (it != root.by_tag.end()) {
        it->second += io;
      } else {
        root.by_tag.emplace(tag, io);
      }
    }
  }
  const std::uint64_t subtree_ios = root.inclusive.total();
  spans_.push_back(std::move(root));

  // Copies keep their relative order, so the shifted ids stay in open
  // order and children still have larger ids than their parents.
  for (const SpanRecord& s : other.spans_) {
    SpanRecord copy = s;
    copy.parent = s.parent == kNoSpan ? base : base + 1 + s.parent;
    copy.depth = s.depth + 1;
    copy.open_clock = clock_ + s.open_clock;
    spans_.push_back(std::move(copy));
  }

  for (const auto& [name, delta] : other.totals_) {
    const auto it = totals_.find(name);
    if (it != totals_.end()) {
      it->second += delta;
    } else {
      totals_.emplace(name, delta);
    }
  }
  clock_ += subtree_ios;
}

void Tracer::AddCount(std::string_view name, std::uint64_t delta) {
  if (!stack_.empty()) {
    auto& counters = spans_[stack_.back().id].counters;
    const auto it = counters.find(name);
    if (it != counters.end()) {
      it->second += delta;
    } else {
      counters.emplace(std::string(name), delta);
    }
  }
  const auto it = totals_.find(name);
  if (it != totals_.end()) {
    it->second += delta;
  } else {
    totals_.emplace(std::string(name), delta);
  }
}

void Tracer::ExpectIos(SpanId id, long double ios) {
  assert(id < spans_.size());
  spans_[id].expect_ios = ios;
}

}  // namespace emjoin::trace
