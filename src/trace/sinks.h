#ifndef EMJOIN_TRACE_SINKS_H_
#define EMJOIN_TRACE_SINKS_H_

#include <string>

#include "trace/tracer.h"

namespace emjoin::trace {

/// Human-readable span tree: one indented line per span with inclusive
/// and exclusive block I/Os, the inclusive share of the parent, per-span
/// peak resident tuples, counters, and (when annotated via
/// Span::ExpectIos) the measured/expected I/O ratio. A footer lists the
/// process-wide counter totals.
std::string TreeReport(const Tracer& tracer);

/// One JSON object per line: a meta line, every span in open order
/// (fields: id, parent [-1 for roots], depth, name, open_clock, reads,
/// writes, excl_reads, excl_writes, peak_resident, tags, counters,
/// expect_ios), and a closing totals line. Returns false if `path`
/// cannot be opened.
bool WriteJsonl(const Tracer& tracer, const std::string& path);

/// Chrome trace_event JSON (load in Perfetto or chrome://tracing). Every
/// span becomes a complete ("ph":"X") event whose timestamp is the
/// cumulative charged I/O at open and whose duration is the span's
/// inclusive block I/Os — the timeline renders the Aggarwal-Vitter cost
/// model, not wall time. Span attributes (per-tag deltas, counters, peak
/// memory, expected-cost ratio) ride in "args". Returns false if `path`
/// cannot be opened.
bool WriteChromeTrace(const Tracer& tracer, const std::string& path);

}  // namespace emjoin::trace

#endif  // EMJOIN_TRACE_SINKS_H_
