#include "query/hypergraph.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>

namespace emjoin::query {

namespace {

/// Union-find over a small id space.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns false if x and y were already connected (i.e. a cycle).
  bool Union(std::size_t x, std::size_t y) {
    const std::size_t rx = Find(x), ry = Find(y);
    if (rx == ry) return false;
    parent_[rx] = ry;
    return true;
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

EdgeId JoinQuery::AddRelation(Schema schema, TupleCount size) {
  edges_.push_back(std::move(schema));
  sizes_.push_back(size);
  return static_cast<EdgeId>(edges_.size() - 1);
}

std::vector<AttrId> JoinQuery::attrs() const {
  std::vector<AttrId> out;
  for (const Schema& s : edges_) {
    for (AttrId a : s.attrs()) {
      if (std::find(out.begin(), out.end(), a) == out.end()) out.push_back(a);
    }
  }
  return out;
}

std::vector<EdgeId> JoinQuery::EdgesWith(AttrId a) const {
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < num_edges(); ++e) {
    if (edges_[e].Contains(a)) out.push_back(e);
  }
  return out;
}

std::uint32_t JoinQuery::AttrDegree(AttrId a) const {
  std::uint32_t d = 0;
  for (const Schema& s : edges_) {
    if (s.Contains(a)) ++d;
  }
  return d;
}

bool JoinQuery::IsBergeAcyclic() const {
  // Nodes: attributes [0, A) then edges [A, A+E). The incidence graph is
  // acyclic iff every (attr, edge) incidence unions two fresh components.
  const std::vector<AttrId> all = attrs();
  UnionFind uf(all.size() + edges_.size());
  auto attr_index = [&](AttrId a) {
    return static_cast<std::size_t>(
        std::find(all.begin(), all.end(), a) - all.begin());
  };
  for (EdgeId e = 0; e < num_edges(); ++e) {
    for (AttrId a : edges_[e].attrs()) {
      if (!uf.Union(attr_index(a), all.size() + e)) return false;
    }
  }
  return true;
}

bool JoinQuery::IsConnected() const {
  if (edges_.empty()) return true;
  std::vector<EdgeId> all(num_edges());
  std::iota(all.begin(), all.end(), 0);
  return ConnectedComponents(all).size() == 1;
}

std::vector<std::vector<EdgeId>> JoinQuery::ConnectedComponents(
    const std::vector<EdgeId>& subset) const {
  UnionFind uf(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    for (std::size_t j = i + 1; j < subset.size(); ++j) {
      if (!edges_[subset[i]].CommonAttrs(edges_[subset[j]]).empty()) {
        uf.Union(i, j);
      }
    }
  }
  std::vector<std::vector<EdgeId>> components;
  std::vector<int> component_of(subset.size(), -1);
  for (std::size_t i = 0; i < subset.size(); ++i) {
    const std::size_t root = uf.Find(i);
    if (component_of[root] < 0) {
      component_of[root] = static_cast<int>(components.size());
      components.emplace_back();
    }
    components[component_of[root]].push_back(subset[i]);
  }
  return components;
}

JoinQuery JoinQuery::WithoutEdge(EdgeId e) const {
  JoinQuery q;
  for (EdgeId i = 0; i < num_edges(); ++i) {
    if (i != e) q.AddRelation(edges_[i], sizes_[i]);
  }
  return q;
}

JoinQuery JoinQuery::WithoutAttrs(const std::vector<AttrId>& attrs) const {
  JoinQuery q;
  for (EdgeId i = 0; i < num_edges(); ++i) {
    std::vector<AttrId> kept;
    for (AttrId a : edges_[i].attrs()) {
      if (std::find(attrs.begin(), attrs.end(), a) == attrs.end()) {
        kept.push_back(a);
      }
    }
    if (!kept.empty()) q.AddRelation(Schema(std::move(kept)), sizes_[i]);
  }
  return q;
}

std::string JoinQuery::ToString() const {
  std::ostringstream os;
  for (EdgeId e = 0; e < num_edges(); ++e) {
    if (e > 0) os << " ⋈ ";
    os << "R" << e << edges_[e].ToString();
    if (sizes_[e] > 0) os << "[N=" << sizes_[e] << "]";
  }
  return os.str();
}

JoinQuery JoinQuery::Line(std::uint32_t n,
                          const std::vector<TupleCount>& sizes) {
  assert(sizes.empty() || sizes.size() == n);
  JoinQuery q;
  for (std::uint32_t i = 0; i < n; ++i) {
    q.AddRelation(Schema({i, i + 1}), sizes.empty() ? 0 : sizes[i]);
  }
  return q;
}

JoinQuery JoinQuery::Star(std::uint32_t petals,
                          const std::vector<TupleCount>& sizes) {
  assert(sizes.empty() || sizes.size() == petals + 1);
  JoinQuery q;
  // Core uses attrs [0, petals); petal i adds unique attr petals + i.
  std::vector<AttrId> core_attrs;
  for (std::uint32_t i = 0; i < petals; ++i) core_attrs.push_back(i);
  q.AddRelation(Schema(core_attrs), sizes.empty() ? 0 : sizes[0]);
  for (std::uint32_t i = 0; i < petals; ++i) {
    q.AddRelation(Schema({i, petals + i}), sizes.empty() ? 0 : sizes[i + 1]);
  }
  return q;
}

JoinQuery JoinQuery::Lollipop(std::uint32_t petals,
                              const std::vector<TupleCount>& sizes) {
  assert(petals >= 1);
  assert(sizes.empty() || sizes.size() == petals + 2u);
  auto size_of = [&](std::size_t i) -> TupleCount {
    return sizes.empty() ? 0 : sizes[i];
  };
  JoinQuery q;
  // Core over v_1..v_p = attrs 0..p-1.
  std::vector<AttrId> core_attrs;
  for (std::uint32_t i = 0; i < petals; ++i) core_attrs.push_back(i);
  q.AddRelation(Schema(core_attrs), size_of(0));
  // Plain petals on v_1..v_{p-1}, unique attrs p..2p-2.
  for (std::uint32_t i = 0; i + 1 < petals; ++i) {
    q.AddRelation(Schema({i, petals + i}), size_of(1 + i));
  }
  // Extending petal e_n = {v_p, v_{n+1}} and tail e_{n+1} = {v_{n+1}, u}.
  const AttrId mid = 2 * petals - 1;
  q.AddRelation(Schema({petals - 1, mid}), size_of(petals));
  q.AddRelation(Schema({mid, mid + 1}), size_of(petals + 1));
  return q;
}

JoinQuery JoinQuery::Dumbbell(std::uint32_t left_petals,
                              std::uint32_t right_petals,
                              const std::vector<TupleCount>& sizes) {
  assert(left_petals >= 1 && right_petals >= 1);
  const std::size_t total = 1 + (left_petals - 1) + 1 + 1 + (right_petals - 1);
  assert(sizes.empty() || sizes.size() == total);
  (void)total;
  auto size_of = [&](std::size_t i) -> TupleCount {
    return sizes.empty() ? 0 : sizes[i];
  };
  JoinQuery q;
  std::size_t idx = 0;
  // Left core over attrs 0..l-1.
  std::vector<AttrId> left_core;
  for (std::uint32_t i = 0; i < left_petals; ++i) left_core.push_back(i);
  q.AddRelation(Schema(left_core), size_of(idx++));
  // Left plain petals, unique attrs l..2l-2.
  for (std::uint32_t i = 0; i + 1 < left_petals; ++i) {
    q.AddRelation(Schema({i, left_petals + i}), size_of(idx++));
  }
  // Shared petal {v_l, w_1}.
  const AttrId w0 = 2 * left_petals - 1;
  q.AddRelation(Schema({left_petals - 1, w0}), size_of(idx++));
  // Right core over attrs w0..w0+r-1.
  std::vector<AttrId> right_core;
  for (std::uint32_t j = 0; j < right_petals; ++j) right_core.push_back(w0 + j);
  q.AddRelation(Schema(right_core), size_of(idx++));
  // Right plain petals on w_2..w_r, unique attrs after the cores.
  const AttrId unique_base = w0 + right_petals;
  for (std::uint32_t j = 1; j < right_petals; ++j) {
    q.AddRelation(Schema({w0 + j, unique_base + j}), size_of(idx++));
  }
  return q;
}

}  // namespace emjoin::query
