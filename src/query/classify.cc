#include "query/classify.h"

#include <cassert>

namespace emjoin::query {

bool IsUniqueAttr(const JoinQuery& q, AttrId a) {
  return q.AttrDegree(a) == 1;
}

bool IsJoinAttr(const JoinQuery& q, AttrId a) { return q.AttrDegree(a) >= 2; }

std::vector<AttrId> UniqueAttrsOf(const JoinQuery& q, EdgeId e) {
  std::vector<AttrId> out;
  for (AttrId a : q.edge(e).attrs()) {
    if (IsUniqueAttr(q, a)) out.push_back(a);
  }
  return out;
}

std::vector<AttrId> JoinAttrsOf(const JoinQuery& q, EdgeId e) {
  std::vector<AttrId> out;
  for (AttrId a : q.edge(e).attrs()) {
    if (IsJoinAttr(q, a)) out.push_back(a);
  }
  return out;
}

EdgeKind ClassifyEdge(const JoinQuery& q, EdgeId e) {
  const std::size_t joins = JoinAttrsOf(q, e).size();
  const std::size_t uniques = UniqueAttrsOf(q, e).size();
  if (joins == 0) return EdgeKind::kIsland;
  if (joins == 1 && uniques == 0) return EdgeKind::kBud;
  if (joins == 1) return EdgeKind::kLeaf;
  return EdgeKind::kInternal;
}

std::vector<EdgeId> EdgesOfKind(const JoinQuery& q, EdgeKind kind) {
  std::vector<EdgeId> out;
  for (EdgeId e = 0; e < q.num_edges(); ++e) {
    if (ClassifyEdge(q, e) == kind) out.push_back(e);
  }
  return out;
}

LeafInfo DescribeLeaf(const JoinQuery& q, EdgeId e) {
  assert(ClassifyEdge(q, e) == EdgeKind::kLeaf);
  LeafInfo info;
  info.leaf = e;
  info.unique_attrs = UniqueAttrsOf(q, e);
  info.join_attr = JoinAttrsOf(q, e).front();
  for (EdgeId other : q.EdgesWith(info.join_attr)) {
    if (other != e) info.neighbors.push_back(other);
  }
  return info;
}

std::vector<Star> FindStars(const JoinQuery& q) {
  std::vector<Star> stars;
  for (EdgeId core = 0; core < q.num_edges(); ++core) {
    if (!UniqueAttrsOf(q, core).empty()) continue;
    if (q.edge(core).arity() == 0) continue;

    const std::vector<AttrId>& core_attrs = q.edge(core).attrs();

    // A core attribute is "petal-capable" when every other edge containing
    // it is a leaf joining on that attribute (those leaves are petals).
    auto petal_capable = [&](AttrId v) {
      for (EdgeId other : q.EdgesWith(v)) {
        if (other == core) continue;
        if (ClassifyEdge(q, other) != EdgeKind::kLeaf) return false;
        if (DescribeLeaf(q, other).join_attr != v) return false;
      }
      return true;
    };

    // Choice of the (at most one) outward attribute: none, or any core
    // attribute; all remaining core attributes must be petal-capable.
    std::vector<std::optional<AttrId>> outward_choices;
    outward_choices.push_back(std::nullopt);
    for (AttrId v : core_attrs) outward_choices.emplace_back(v);

    for (const auto& outward : outward_choices) {
      bool ok = true;
      std::vector<EdgeId> petals;
      for (AttrId v : core_attrs) {
        if (outward.has_value() && v == *outward) continue;
        if (!petal_capable(v)) {
          ok = false;
          break;
        }
        for (EdgeId other : q.EdgesWith(v)) {
          if (other != core) petals.push_back(other);
        }
      }
      if (!ok || petals.empty()) continue;
      stars.push_back(Star{core, std::move(petals), outward});
    }
  }
  return stars;
}

}  // namespace emjoin::query
