#include "query/join_tree.h"

#include <cassert>
#include <functional>

namespace emjoin::query {

JoinTree BuildJoinTree(const JoinQuery& q) {
  assert(q.IsBergeAcyclic());
  const std::uint32_t n = q.num_edges();

  // Undirected adjacency via per-attribute hubs.
  std::vector<std::vector<std::pair<EdgeId, AttrId>>> adj(n);
  for (AttrId a : q.attrs()) {
    const std::vector<EdgeId> with = q.EdgesWith(a);
    for (std::size_t i = 1; i < with.size(); ++i) {
      adj[with[0]].push_back({with[i], a});
      adj[with[i]].push_back({with[0], a});
    }
  }

  JoinTree tree;
  tree.parent.assign(n, -1);
  tree.parent_attr.assign(n, 0);
  tree.children.assign(n, {});

  std::vector<bool> visited(n, false);
  for (EdgeId root = 0; root < n; ++root) {
    if (visited[root]) continue;
    tree.roots.push_back(root);
    // Iterative DFS; record bottom-up order by post-order push.
    std::vector<std::pair<EdgeId, std::size_t>> stack;
    stack.push_back({root, 0});
    visited[root] = true;
    while (!stack.empty()) {
      auto& [e, next_child] = stack.back();
      if (next_child < adj[e].size()) {
        const auto [f, a] = adj[e][next_child];
        ++next_child;
        if (!visited[f]) {
          visited[f] = true;
          tree.parent[f] = static_cast<int>(e);
          tree.parent_attr[f] = a;
          tree.children[e].push_back(f);
          stack.push_back({f, 0});
        }
      } else {
        tree.bottom_up.push_back(e);
        stack.pop_back();
      }
    }
  }
  return tree;
}

}  // namespace emjoin::query
