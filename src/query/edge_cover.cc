#include "query/edge_cover.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "query/classify.h"

namespace emjoin::query {

bool IsEdgeCover(const JoinQuery& q, const std::vector<EdgeId>& edges) {
  for (AttrId a : q.attrs()) {
    bool covered = false;
    for (EdgeId e : edges) {
      if (q.edge(e).Contains(a)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

EdgeCover OptimalEdgeCover(const JoinQuery& q) {
  const std::uint32_t n = q.num_edges();
  assert(n <= 24 && "query size must be constant/small");
  for (EdgeId e = 0; e < n; ++e) assert(q.size(e) > 0);

  long double best_log = 0.0L;
  std::uint32_t best_mask = 0;
  bool found = false;

  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<EdgeId> subset;
    long double log_prod = 0.0L;
    for (EdgeId e = 0; e < n; ++e) {
      if (mask & (1u << e)) {
        subset.push_back(e);
        log_prod += std::log(static_cast<long double>(q.size(e)));
      }
    }
    if (!IsEdgeCover(q, subset)) continue;
    if (!found || log_prod < best_log) {
      found = true;
      best_log = log_prod;
      best_mask = mask;
    }
  }
  assert(found && "every query has the full edge set as a cover");

  EdgeCover cover;
  for (EdgeId e = 0; e < n; ++e) {
    if (best_mask & (1u << e)) {
      cover.edges.push_back(e);
      cover.product *= static_cast<long double>(q.size(e));
    }
  }
  return cover;
}

long double AgmBound(const JoinQuery& q) { return OptimalEdgeCover(q).product; }

std::vector<EdgeId> GreedyMinEdgeCover(const JoinQuery& q) {
  return GreedyCoverWithPacking(q).cover;
}

CoverWithPacking GreedyCoverWithPacking(const JoinQuery& q) {
  // Algorithm 6, tracked with explicit removed-flags so edge ids stay
  // stable relative to `q`.
  const std::vector<AttrId> all_attrs = q.attrs();
  std::vector<bool> attr_removed(all_attrs.size(), false);
  std::vector<bool> edge_removed(q.num_edges(), false);
  CoverWithPacking out;

  auto attr_index = [&](AttrId a) {
    return static_cast<std::size_t>(
        std::find(all_attrs.begin(), all_attrs.end(), a) - all_attrs.begin());
  };
  auto live_attrs_of = [&](EdgeId e) {
    std::vector<AttrId> out;
    for (AttrId a : q.edge(e).attrs()) {
      if (!attr_removed[attr_index(a)]) out.push_back(a);
    }
    return out;
  };
  auto live_degree = [&](AttrId a) {
    std::uint32_t d = 0;
    for (EdgeId e = 0; e < q.num_edges(); ++e) {
      if (!edge_removed[e] && q.edge(e).Contains(a)) ++d;
    }
    return d;
  };
  auto uncovered_exists = [&] {
    return std::find(attr_removed.begin(), attr_removed.end(), false) !=
           attr_removed.end();
  };

  while (uncovered_exists()) {
    // "Let e be any edge containing unique attributes" (w.r.t. the live
    // sub-hypergraph). Lemma 1 guarantees one exists in an acyclic query
    // unless all remaining live attributes are shared (e.g. duplicate bud
    // edges), in which case any live edge works.
    EdgeId pick = q.num_edges();
    AttrId pick_witness = 0;
    bool has_witness = false;
    for (EdgeId e = 0; e < q.num_edges(); ++e) {
      if (edge_removed[e]) continue;
      for (AttrId a : live_attrs_of(e)) {
        if (live_degree(a) == 1) {
          pick = e;
          pick_witness = a;
          has_witness = true;
          break;
        }
      }
      if (pick != q.num_edges()) break;
    }
    if (pick == q.num_edges()) {
      // No unique live attribute anywhere. Discard a dominated edge (its
      // live attributes are a subset of another live edge's) — it can
      // never be needed by a minimum cover, and its removal re-creates
      // unique attributes (e.g. buds next to an internal edge).
      bool discarded = false;
      for (EdgeId e = 0; e < q.num_edges() && !discarded; ++e) {
        if (edge_removed[e]) continue;
        const std::vector<AttrId> live_e = live_attrs_of(e);
        if (live_e.empty()) continue;
        for (EdgeId f = 0; f < q.num_edges(); ++f) {
          if (f == e || edge_removed[f]) continue;
          const std::vector<AttrId> live_f = live_attrs_of(f);
          bool subset = true;
          for (AttrId a : live_e) {
            if (std::find(live_f.begin(), live_f.end(), a) == live_f.end()) {
              subset = false;
              break;
            }
          }
          if (subset && live_f.size() >= live_e.size()) {
            edge_removed[e] = true;
            discarded = true;
            break;
          }
        }
      }
      if (discarded) continue;
      // Last resort: any live edge.
      for (EdgeId e = 0; e < q.num_edges(); ++e) {
        if (!edge_removed[e] && !live_attrs_of(e).empty()) {
          pick = e;
          break;
        }
      }
    }
    assert(pick < q.num_edges());
    if (!has_witness) {
      // Last-resort pick: witness with any live attribute (acyclic
      // queries rarely reach here; duplicate buds can).
      pick_witness = live_attrs_of(pick).front();
    }
    out.cover.push_back(pick);
    out.packing.push_back(pick_witness);
    for (AttrId a : q.edge(pick).attrs()) attr_removed[attr_index(a)] = true;
    edge_removed[pick] = true;
  }
  return out;
}

}  // namespace emjoin::query
