#ifndef EMJOIN_QUERY_CLASSIFY_H_
#define EMJOIN_QUERY_CLASSIFY_H_

#include <optional>
#include <vector>

#include "query/hypergraph.h"

namespace emjoin::query {

/// Structural role of a relation in an acyclic query (§2.2.2, Fig. 2):
///  - kIsland: no join attributes;
///  - kBud:    exactly one join attribute and no unique attributes;
///  - kLeaf:   at least one unique attribute and exactly one join attribute;
///  - kInternal: anything else (>= 2 join attributes).
enum class EdgeKind { kIsland, kBud, kLeaf, kInternal };

/// True if attribute `a` appears in exactly one relation of `q`.
bool IsUniqueAttr(const JoinQuery& q, AttrId a);

/// True if attribute `a` appears in two or more relations of `q`.
bool IsJoinAttr(const JoinQuery& q, AttrId a);

/// Unique attributes of edge `e`.
std::vector<AttrId> UniqueAttrsOf(const JoinQuery& q, EdgeId e);

/// Join attributes of edge `e`.
std::vector<AttrId> JoinAttrsOf(const JoinQuery& q, EdgeId e);

EdgeKind ClassifyEdge(const JoinQuery& q, EdgeId e);

std::vector<EdgeId> EdgesOfKind(const JoinQuery& q, EdgeKind kind);

/// Structural description of a leaf: its unique attributes U, its single
/// join attribute v, and its neighbours Γ (other edges containing v).
struct LeafInfo {
  EdgeId leaf;
  std::vector<AttrId> unique_attrs;
  AttrId join_attr;
  std::vector<EdgeId> neighbors;
};

/// Describes `e` as a leaf; requires ClassifyEdge(q, e) == kLeaf.
LeafInfo DescribeLeaf(const JoinQuery& q, EdgeId e);

/// A star (§4.2, Fig. 5): a core e0 with no unique attributes and k >= 1
/// petals, each a leaf whose join attribute lies in e0. The core connects
/// with the rest of the query via at most one join attribute (exactly one
/// when the star is not the whole query).
struct Star {
  EdgeId core;
  std::vector<EdgeId> petals;
  /// Attribute connecting the core to the rest of Q, if any.
  std::optional<AttrId> outward_attr;
};

/// All stars present in `q`.
std::vector<Star> FindStars(const JoinQuery& q);

}  // namespace emjoin::query

#endif  // EMJOIN_QUERY_CLASSIFY_H_
