#ifndef EMJOIN_QUERY_JOIN_TREE_H_
#define EMJOIN_QUERY_JOIN_TREE_H_

#include <vector>

#include "query/hypergraph.h"

namespace emjoin::query {

/// A join forest over the relations of a Berge-acyclic query: adjacent
/// edges share exactly one attribute. Used by the full reducer,
/// Yannakakis baseline, and the cardinality counter.
struct JoinTree {
  /// parent[e] is the parent edge of e, or -1 for a root.
  std::vector<int> parent;
  /// Attribute shared between e and parent[e] (unset for roots).
  std::vector<AttrId> parent_attr;
  /// Children of each edge.
  std::vector<std::vector<EdgeId>> children;
  /// Every edge, children before parents (bottom-up order).
  std::vector<EdgeId> bottom_up;
  /// Roots, one per connected component.
  std::vector<EdgeId> roots;
};

/// Builds a join forest for a Berge-acyclic query. For every attribute
/// shared by k edges, one edge acts as a hub and the others attach to it;
/// Berge-acyclicity guarantees the result is a forest.
JoinTree BuildJoinTree(const JoinQuery& q);

}  // namespace emjoin::query

#endif  // EMJOIN_QUERY_JOIN_TREE_H_
