#ifndef EMJOIN_QUERY_EDGE_COVER_H_
#define EMJOIN_QUERY_EDGE_COVER_H_

#include <vector>

#include "query/hypergraph.h"

namespace emjoin::query {

/// An integral edge cover together with its AGM product Π_{e in cover} N(e).
struct EdgeCover {
  std::vector<EdgeId> edges;
  /// Π N(e) over the cover, as long double (can exceed 2^64).
  long double product = 1.0L;
};

/// Optimal fractional edge cover of an acyclic query. By Lemma 2 the LP
/// optimum is integral (x(e) ∈ {0,1}), so this enumerates covering subsets
/// and minimizes Π N(e)^{x(e)} — O(2^n) with constant query size.
/// All sizes N(e) must be set (> 0).
EdgeCover OptimalEdgeCover(const JoinQuery& q);

/// The AGM bound max_R |Q(R)| = min_x Π N(e)^{x(e)} (§2.1).
long double AgmBound(const JoinQuery& q);

/// Greedy minimum (cardinality) edge cover for acyclic hypergraphs,
/// Algorithm 6: repeatedly pick an edge containing unique attributes,
/// remove it and its attributes. Ignores N(e); used for the equal-size
/// case (§7.1) where the optimal cover is the minimum-cardinality one.
std::vector<EdgeId> GreedyMinEdgeCover(const JoinQuery& q);

/// A minimum edge cover together with its dual vertex packing witness
/// (§7.1, LP duality): packing[i] is an attribute that was unique to
/// cover[i] at the moment the greedy picked it, so no relation contains
/// two packing attributes. Drives the equal-size worst-case instance.
struct CoverWithPacking {
  std::vector<EdgeId> cover;
  std::vector<AttrId> packing;
};

CoverWithPacking GreedyCoverWithPacking(const JoinQuery& q);

/// True if `edges` covers every attribute of `q`.
bool IsEdgeCover(const JoinQuery& q, const std::vector<EdgeId>& edges);

}  // namespace emjoin::query

#endif  // EMJOIN_QUERY_EDGE_COVER_H_
