#ifndef EMJOIN_QUERY_HYPERGRAPH_H_
#define EMJOIN_QUERY_HYPERGRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/schema.h"

namespace emjoin::query {

using storage::AttrId;
using storage::Schema;

/// Index of a relation (hyperedge) within a JoinQuery.
using EdgeId = std::uint32_t;

/// A natural join query Q = (V, E, N): a hypergraph whose vertices are
/// attributes and whose hyperedges are relation schemas, plus a size bound
/// N(e) per relation (§1.1).
///
/// JoinQuery is a small value type; the recursive algorithms freely derive
/// modified copies (edge removed, attributes dropped).
class JoinQuery {
 public:
  JoinQuery() = default;

  /// Adds a relation with the given schema and size bound N(e).
  EdgeId AddRelation(Schema schema, TupleCount size = 0);

  std::uint32_t num_edges() const {
    return static_cast<std::uint32_t>(edges_.size());
  }

  const Schema& edge(EdgeId e) const { return edges_[e]; }
  TupleCount size(EdgeId e) const { return sizes_[e]; }
  void set_size(EdgeId e, TupleCount n) { sizes_[e] = n; }

  /// All attributes appearing in any edge (deduplicated, insertion order).
  std::vector<AttrId> attrs() const;

  /// Edges containing attribute `a`.
  std::vector<EdgeId> EdgesWith(AttrId a) const;

  /// Number of edges containing attribute `a`.
  std::uint32_t AttrDegree(AttrId a) const;

  /// Berge acyclicity: the bipartite incidence graph (attributes vs.
  /// edges) contains no cycle (§1.3). Note this implies any two relations
  /// share at most one attribute.
  bool IsBergeAcyclic() const;

  /// True if the join graph over all edges is connected (edges adjacent
  /// when they share an attribute).
  bool IsConnected() const;

  /// Connected components of the sub-hypergraph induced by `subset`
  /// (adjacency = shared attribute within the subset).
  std::vector<std::vector<EdgeId>> ConnectedComponents(
      const std::vector<EdgeId>& subset) const;

  /// The query with edge `e` removed (edge ids above `e` shift down).
  JoinQuery WithoutEdge(EdgeId e) const;

  /// The query with attributes `attrs` removed from every edge. Edges
  /// whose schema becomes empty are dropped.
  JoinQuery WithoutAttrs(const std::vector<AttrId>& attrs) const;

  std::string ToString() const;

  // --- Common query shapes (used throughout tests and benches) ---

  /// Line join L_n: e_i = {v_i, v_{i+1}}, i = 1..n (Fig. 7).
  static JoinQuery Line(std::uint32_t n,
                        const std::vector<TupleCount>& sizes = {});

  /// Star join: core e_0 = {v_1..v_k}, petals e_i = {v_i, u_i} (Fig. 5),
  /// `sizes` order: core first, then petals.
  static JoinQuery Star(std::uint32_t petals,
                        const std::vector<TupleCount>& sizes = {});

  /// Lollipop join (Fig. 8): a star with `petals` >= 1 petals whose last
  /// petal e_n = {v_n, v_{n+1}} extends to one more relation
  /// e_{n+1} = {v_{n+1}, u}. Edge order: core, petals e_1..e_{n-1}, e_n,
  /// e_{n+1}.
  static JoinQuery Lollipop(std::uint32_t petals,
                            const std::vector<TupleCount>& sizes = {});

  /// Dumbbell join (Fig. 9): two stars sharing a common petal. Left core
  /// e_0 over {v_1..v_n} with petals e_1..e_{n-1}; the shared petal
  /// e_n = {v_n, w_1}; right core e_m over {w_1..w_k} with petals on
  /// w_2..w_k. Edge order: left core, left petals, shared petal, right
  /// core, right petals.
  static JoinQuery Dumbbell(std::uint32_t left_petals,
                            std::uint32_t right_petals,
                            const std::vector<TupleCount>& sizes = {});

 private:
  std::vector<Schema> edges_;
  std::vector<TupleCount> sizes_;
};

}  // namespace emjoin::query

#endif  // EMJOIN_QUERY_HYPERGRAPH_H_
