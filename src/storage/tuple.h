#ifndef EMJOIN_STORAGE_TUPLE_H_
#define EMJOIN_STORAGE_TUPLE_H_

#include <span>
#include <string>
#include <vector>

#include "extmem/defs.h"
#include "storage/schema.h"

namespace emjoin::storage {

/// An owned tuple: a row of attribute values laid out per some Schema.
using Tuple = std::vector<Value>;

/// A borrowed tuple (one row inside a disk block or memory chunk).
using TupleRef = std::span<const Value>;

/// Renders `tuple` as e.g. "[3, 7, 1]".
std::string TupleToString(TupleRef tuple);

/// Projects `tuple` (laid out per `from`) onto the attributes of `to`.
/// Every attribute of `to` must be present in `from`.
Tuple ProjectTuple(TupleRef tuple, const Schema& from, const Schema& to);

/// True if `a` (per schema_a) and `b` (per schema_b) agree on every
/// attribute they share.
bool TuplesJoinable(TupleRef a, const Schema& schema_a, TupleRef b,
                    const Schema& schema_b);

/// Concatenates the values of `a` with the values of `b` restricted to
/// attributes not already in `schema_a`; the result is laid out per
/// `JoinedSchema(schema_a, schema_b)`.
Tuple ConcatTuples(TupleRef a, const Schema& schema_a, TupleRef b,
                   const Schema& schema_b);

/// Schema of the natural join of two relations: `a`'s attributes followed
/// by `b`'s attributes not in `a`.
Schema JoinedSchema(const Schema& a, const Schema& b);

}  // namespace emjoin::storage

#endif  // EMJOIN_STORAGE_TUPLE_H_
