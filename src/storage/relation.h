#ifndef EMJOIN_STORAGE_RELATION_H_
#define EMJOIN_STORAGE_RELATION_H_

#include <functional>
#include <optional>
#include <vector>

#include "extmem/file.h"
#include "extmem/sorter.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace emjoin::storage {

/// A disk-resident relation instance R(e): a schema plus a range of tuples
/// in a file, with optional sorted-ness metadata.
///
/// Relations are cheap value types: copying one copies a file *reference*
/// (shared_ptr + offsets), never tuple data. Sub-ranges of a sorted
/// relation (the paper's `R(e')|v=a`) are again Relations over the same
/// file, at zero I/O cost.
class Relation {
 public:
  Relation() = default;

  Relation(Schema schema, extmem::FileRange range,
           std::optional<AttrId> sorted_by = std::nullopt)
      : schema_(std::move(schema)),
        range_(std::move(range)),
        sorted_by_(sorted_by) {}

  /// Materializes `tuples` into a new file on `device`, charging the write.
  static Relation FromTuples(extmem::Device* device, Schema schema,
                             const std::vector<Tuple>& tuples);

  const Schema& schema() const { return schema_; }
  const extmem::FileRange& range() const { return range_; }
  TupleCount size() const { return range_.size(); }
  bool empty() const { return range_.empty(); }
  extmem::Device* device() const { return range_.file->device(); }

  /// The attribute this relation's tuples are sorted by, if any.
  std::optional<AttrId> sorted_by() const { return sorted_by_; }

  bool IsSortedBy(AttrId a) const {
    return sorted_by_.has_value() && *sorted_by_ == a;
  }

  /// Returns this relation sorted by attribute `a` (external sort unless
  /// already sorted). Charges sort I/Os.
  Relation SortedBy(AttrId a) const;

  /// Sub-range [begin, end) relative to this relation; inherits sort order.
  Relation Slice(TupleCount begin, TupleCount end) const {
    return Relation(schema_, range_.Sub(begin, end), sorted_by_);
  }

  /// For a relation sorted by `a`: the sub-relation with value `val` on
  /// `a` (the paper's R(e)|_{v=a}). Charges O(log(size/B)) probe reads.
  Relation EqualRange(AttrId a, Value val) const;

  /// For a relation sorted by `a`: calls `fn(value, slice)` for every
  /// distinct value of `a`, in one charged sequential scan.
  void ForEachGroup(AttrId a,
                    const std::function<void(Value, Relation)>& fn) const;

  /// Reads the whole relation into a vector of owned tuples (charged scan).
  std::vector<Tuple> ReadAll() const;

 private:
  Schema schema_;
  extmem::FileRange range_;
  std::optional<AttrId> sorted_by_;
};

/// A chunk of tuples resident in simulated memory, accounted against the
/// device's MemoryGauge. This is the paper's `M(e)` / `M1`.
class MemChunk {
 public:
  MemChunk() = default;
  MemChunk(Schema schema, extmem::Device* device)
      : schema_(std::move(schema)),
        reservation_(&device->gauge(), 0) {}

  MemChunk(MemChunk&&) = default;
  MemChunk& operator=(MemChunk&&) = default;

  const Schema& schema() const { return schema_; }
  TupleCount size() const { return count_; }
  bool empty() const { return count_ == 0; }

  TupleRef tuple(TupleCount i) const {
    return TupleRef(data_.data() + i * schema_.arity(), schema_.arity());
  }

  void Append(TupleRef t) {
    data_.insert(data_.end(), t.begin(), t.end());
    ++count_;
    reservation_.Resize(count_);
  }

  /// Bulk append of whole tuples (one copy, one gauge update).
  void AppendBlock(std::span<const Value> tuples) {
    assert(tuples.size() % schema_.arity() == 0);
    data_.insert(data_.end(), tuples.begin(), tuples.end());
    count_ += tuples.size() / schema_.arity();
    reservation_.Resize(count_);
  }

  void Clear() {
    data_.clear();
    count_ = 0;
    reservation_.Resize(0);
  }

  /// Flat view of all resident tuples (size() * arity values), for bulk
  /// spills (FileWriter::AppendBlock) and re-plan helpers.
  std::span<const Value> data() const { return data_; }

  /// Calls `fn` for every tuple whose column `col` equals `val`.
  void ForEachMatch(std::uint32_t col, Value val,
                    const std::function<void(TupleRef)>& fn) const;

  /// Distinct values in column `col` (unsorted chunk OK).
  std::vector<Value> DistinctValues(std::uint32_t col) const;

 private:
  Schema schema_;
  std::vector<Value> data_;
  TupleCount count_ = 0;
  extmem::MemoryReservation reservation_;
};

/// Pull-based iteration over the value groups of a relation sorted by
/// attribute `a`: yields (value, slice) pairs in ascending value order.
/// Scans the relation once (charged); callers typically re-read each
/// group they process, which costs at most one extra pass.
class GroupCursor {
 public:
  GroupCursor(const Relation& rel, AttrId a);

  bool Done() const { return begin_ >= rel_.size(); }

  Value value() const { return value_; }

  /// Slice of the current group (zero I/O; a view into the sorted file).
  Relation group() const { return rel_.Slice(begin_, end_); }

  void Advance();

 private:
  void ScanGroup();

  Relation rel_;
  std::uint32_t col_ = 0;
  extmem::FileReader reader_;
  TupleCount begin_ = 0;
  TupleCount end_ = 0;
  Value value_ = 0;
};

/// Loads up to `max_tuples` tuples from `reader` into a chunk
/// ("load R(e) into memory as M(e)"). Returns false when the reader was
/// already exhausted.
bool LoadChunk(extmem::FileReader& reader, const Schema& schema,
               extmem::Device* device, TupleCount max_tuples, MemChunk* out);

/// Loads tuples from `reader` (sorted by the attribute at column `col`)
/// until at least `min_tuples` are fetched, never splitting a group of
/// equal values across chunks ("load R(e) by v into memory as M(e)").
/// With only light values present the chunk holds < min_tuples + M tuples.
/// Returns false when the reader was already exhausted.
bool LoadChunkByValue(extmem::FileReader& reader, const Schema& schema,
                      extmem::Device* device, std::uint32_t col,
                      TupleCount min_tuples, MemChunk* out);

/// Runs `process(*chunk)` with budget-shrink re-planning: a
/// kBudgetExceeded trip inside `process` is not terminal — the chunk is
/// spilled to scratch (its residency released), then re-loaded and
/// re-processed in halved sub-chunks, recursively, until the work fits
/// the shrunken budget or a single tuple still trips (then the original
/// status unwinds — the budget is below the operator's hard floor).
///
/// All spill/re-read rework is charged under the "recovery" tag, so
/// fault-free golden counts never see it (fault-free runs take the
/// `process` fast path and charge nothing extra). `process` may emit
/// rows before tripping, so callers that can trip MUST route emission
/// through an EmitJournal (core/emit.h) to suppress the re-derived
/// prefix; `process` must otherwise be safe to re-run over sub-ranges
/// of the chunk (true for the chunk-at-a-time operator bodies: each
/// chunk tuple contributes its results independently).
void ProcessChunkWithReplan(
    extmem::Device* dev, MemChunk* chunk, const Schema& schema,
    const std::function<void(const MemChunk&)>& process);

}  // namespace emjoin::storage

#endif  // EMJOIN_STORAGE_RELATION_H_
