#include "storage/csv.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace emjoin::storage {

namespace {

using extmem::Result;
using extmem::Status;
using extmem::StatusCode;

Status InputError(std::string_view source, std::size_t line_no,
                  const std::string& what) {
  std::ostringstream os;
  os << source;
  if (line_no > 0) os << ": line " << line_no;
  os << ": " << what;
  return Status(StatusCode::kInvalidInput, os.str());
}

bool ParseFields(const std::string& line, std::uint32_t expected,
                 Tuple* out, std::string* error) {
  out->clear();
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const std::size_t comma = line.find(',', pos);
    const std::size_t end = comma == std::string::npos ? line.size() : comma;
    // Trim spaces.
    std::size_t b = pos, e = end;
    while (b < e && std::isspace(static_cast<unsigned char>(line[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(line[e - 1]))) {
      --e;
    }
    Value v = 0;
    const auto [ptr, ec] = std::from_chars(line.data() + b, line.data() + e,
                                           v);
    if (ec != std::errc() || ptr != line.data() + e || b == e) {
      *error = "non-numeric field '" + line.substr(pos, end - pos) + "'";
      return false;
    }
    out->push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out->size() != expected) {
    std::ostringstream os;
    os << "expected " << expected << " fields, got " << out->size();
    *error = os.str();
    return false;
  }
  return true;
}

}  // namespace

Result<Relation> RelationFromCsv(extmem::Device* dev, Schema schema,
                                 std::istream& in, std::string_view source) {
  // Rows are fully parsed into host memory before any device write, so a
  // parse error on line k never leaves the first k-1 tuples behind on
  // the device (no partial device-side writes to clean up).
  std::vector<Tuple> rows;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.size() > kMaxCsvLineBytes) {
      std::ostringstream os;
      os << "line too long (" << line.size() << " bytes, limit "
         << kMaxCsvLineBytes << ")";
      return InputError(source, line_no, os.str());
    }
    // Strip a trailing CR (files from other platforms). A last line
    // without a trailing newline arrives here like any other.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    Tuple t;
    std::string field_error;
    if (!ParseFields(line, schema.arity(), &t, &field_error)) {
      return InputError(source, line_no, field_error);
    }
    rows.push_back(std::move(t));
  }
  if (in.bad()) {
    return Status(StatusCode::kIoError,
                  std::string(source) + ": read error after line " +
                      std::to_string(line_no));
  }
  if (line_no == 0) {
    // A zero-byte file is almost always a truncated upload or a wrong
    // path, not an intentionally empty relation (use a comment line for
    // that), so reject it loudly.
    return InputError(source, 0, "file is empty (no lines); use '#' comment "
                                 "lines for an intentionally empty relation");
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return extmem::CatchStatus(
      [&] { return Relation::FromTuples(dev, std::move(schema), rows); });
}

Result<Relation> RelationFromCsvFile(extmem::Device* dev, Schema schema,
                                     const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status(StatusCode::kNotFound,
                  path + ": cannot open file for reading");
  }
  return RelationFromCsv(dev, std::move(schema), in, path);
}

void RelationToCsv(const Relation& rel, std::ostream& out) {
  extmem::FileReader reader(rel.range());
  const std::uint32_t w = rel.schema().arity();
  while (!reader.Done()) {
    const std::span<const Value> block = reader.NextBlock();
    for (std::size_t off = 0; off < block.size(); off += w) {
      for (std::uint32_t i = 0; i < w; ++i) {
        if (i > 0) out << ',';
        out << block[off + i];
      }
      out << '\n';
    }
  }
}

Result<Schema> ParseSchemaSpec(const std::string& spec,
                               std::vector<std::string>* names) {
  std::vector<AttrId> attrs;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    std::string name = spec.substr(pos, end - pos);
    // Trim.
    while (!name.empty() && std::isspace(static_cast<unsigned char>(
                                name.front()))) {
      name.erase(name.begin());
    }
    while (!name.empty() &&
           std::isspace(static_cast<unsigned char>(name.back()))) {
      name.pop_back();
    }
    if (name.empty()) {
      return Status(StatusCode::kInvalidInput,
                    "empty attribute name in schema spec '" + spec + "'");
    }
    const auto it = std::find(names->begin(), names->end(), name);
    AttrId id;
    if (it == names->end()) {
      id = static_cast<AttrId>(names->size());
      names->push_back(name);
    } else {
      id = static_cast<AttrId>(it - names->begin());
    }
    if (std::find(attrs.begin(), attrs.end(), id) != attrs.end()) {
      return Status(StatusCode::kInvalidInput, "duplicate attribute '" +
                                                   name + "' in schema spec '" +
                                                   spec + "'");
    }
    attrs.push_back(id);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return Schema(std::move(attrs));
}

}  // namespace emjoin::storage
