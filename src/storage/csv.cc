#include "storage/csv.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace emjoin::storage {

namespace {

bool ParseFields(const std::string& line, std::uint32_t expected,
                 Tuple* out, std::string* error) {
  out->clear();
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const std::size_t comma = line.find(',', pos);
    const std::size_t end = comma == std::string::npos ? line.size() : comma;
    // Trim spaces.
    std::size_t b = pos, e = end;
    while (b < e && std::isspace(static_cast<unsigned char>(line[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(line[e - 1]))) {
      --e;
    }
    Value v = 0;
    const auto [ptr, ec] = std::from_chars(line.data() + b, line.data() + e,
                                           v);
    if (ec != std::errc() || ptr != line.data() + e || b == e) {
      *error = "non-numeric field '" + line.substr(pos, end - pos) + "'";
      return false;
    }
    out->push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out->size() != expected) {
    std::ostringstream os;
    os << "expected " << expected << " fields, got " << out->size();
    *error = os.str();
    return false;
  }
  return true;
}

}  // namespace

std::optional<Relation> RelationFromCsv(extmem::Device* dev, Schema schema,
                                        std::istream& in,
                                        std::string* error) {
  std::vector<Tuple> rows;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip a trailing CR (files from other platforms).
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    Tuple t;
    std::string field_error;
    if (!ParseFields(line, schema.arity(), &t, &field_error)) {
      std::ostringstream os;
      os << "line " << line_no << ": " << field_error;
      *error = os.str();
      return std::nullopt;
    }
    rows.push_back(std::move(t));
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return Relation::FromTuples(dev, std::move(schema), rows);
}

std::optional<Relation> RelationFromCsvFile(extmem::Device* dev,
                                            Schema schema,
                                            const std::string& path,
                                            std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  return RelationFromCsv(dev, std::move(schema), in, error);
}

void RelationToCsv(const Relation& rel, std::ostream& out) {
  extmem::FileReader reader(rel.range());
  const std::uint32_t w = rel.schema().arity();
  while (!reader.Done()) {
    const std::span<const Value> block = reader.NextBlock();
    for (std::size_t off = 0; off < block.size(); off += w) {
      for (std::uint32_t i = 0; i < w; ++i) {
        if (i > 0) out << ',';
        out << block[off + i];
      }
      out << '\n';
    }
  }
}

std::optional<Schema> ParseSchemaSpec(const std::string& spec,
                                      std::vector<std::string>* names,
                                      std::string* error) {
  std::vector<AttrId> attrs;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    std::string name = spec.substr(pos, end - pos);
    // Trim.
    while (!name.empty() && std::isspace(static_cast<unsigned char>(
                                name.front()))) {
      name.erase(name.begin());
    }
    while (!name.empty() &&
           std::isspace(static_cast<unsigned char>(name.back()))) {
      name.pop_back();
    }
    if (name.empty()) {
      *error = "empty attribute name in '" + spec + "'";
      return std::nullopt;
    }
    const auto it = std::find(names->begin(), names->end(), name);
    AttrId id;
    if (it == names->end()) {
      id = static_cast<AttrId>(names->size());
      names->push_back(name);
    } else {
      id = static_cast<AttrId>(it - names->begin());
    }
    if (std::find(attrs.begin(), attrs.end(), id) != attrs.end()) {
      *error = "duplicate attribute '" + name + "' in '" + spec + "'";
      return std::nullopt;
    }
    attrs.push_back(id);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return Schema(std::move(attrs));
}

}  // namespace emjoin::storage
