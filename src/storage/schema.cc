#include "storage/schema.h"

#include <cassert>
#include <sstream>

namespace emjoin::storage {

Schema::Schema(std::vector<AttrId> attrs) : attrs_(std::move(attrs)) {
  // Attributes must be distinct within a relation.
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    for (std::size_t j = i + 1; j < attrs_.size(); ++j) {
      assert(attrs_[i] != attrs_[j]);
    }
  }
}

std::optional<std::uint32_t> Schema::PositionOf(AttrId a) const {
  for (std::uint32_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i] == a) return i;
  }
  return std::nullopt;
}

std::vector<AttrId> Schema::CommonAttrs(const Schema& other) const {
  std::vector<AttrId> common;
  for (AttrId a : attrs_) {
    if (other.Contains(a)) common.push_back(a);
  }
  return common;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) os << ",";
    os << "v" << attrs_[i];
  }
  os << ")";
  return os.str();
}

}  // namespace emjoin::storage
