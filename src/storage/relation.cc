#include "storage/relation.h"

#include <cassert>
#include <algorithm>
#include <cmath>

#include "extmem/status.h"
#include "trace/tracer.h"

namespace emjoin::storage {

Relation Relation::FromTuples(extmem::Device* device, Schema schema,
                              const std::vector<Tuple>& tuples) {
  extmem::FilePtr file = device->NewFile(schema.arity());
  extmem::FileWriter writer(file);
  for (const Tuple& t : tuples) {
    assert(t.size() == schema.arity());
    writer.Append(t);
  }
  writer.Finish();
  extmem::FileRange range(file);
  return Relation(std::move(schema), std::move(range));
}

Relation Relation::SortedBy(AttrId a) const {
  if (IsSortedBy(a)) return *this;
  const auto pos = schema_.PositionOf(a);
  assert(pos.has_value());
  const std::uint32_t key[] = {*pos};
  extmem::FilePtr sorted = extmem::ExternalSort(range_, key);
  return Relation(schema_, extmem::FileRange(sorted), a);
}

// lint: tagged-by-caller — binary-search probes are attributed to
// whatever operator (semijoin, petal scan, ...) drives the lookup.
Relation Relation::EqualRange(AttrId a, Value val) const {
  assert(IsSortedBy(a));
  const auto pos = schema_.PositionOf(a);
  assert(pos.has_value());
  const std::uint32_t col = *pos;

  // Binary search for the first tuple with value >= val and the first with
  // value > val. Each probe touches one block; charge the probes.
  extmem::Device* dev = device();
  std::uint64_t probes = 0;
  auto value_at = [&](TupleCount i) {
    ++probes;
    return range_.RawTuple(i)[col];
  };

  TupleCount lo = 0, hi = range_.size();
  while (lo < hi) {
    const TupleCount mid = lo + (hi - lo) / 2;
    if (value_at(mid) < val) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const TupleCount first = lo;
  hi = range_.size();
  while (lo < hi) {
    const TupleCount mid = lo + (hi - lo) / 2;
    if (value_at(mid) <= val) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  dev->ChargeReadBlocks(probes);
  return Slice(first, lo);
}

void Relation::ForEachGroup(
    AttrId a, const std::function<void(Value, Relation)>& fn) const {
  assert(IsSortedBy(a));
  const auto pos = schema_.PositionOf(a);
  assert(pos.has_value());
  const std::uint32_t col = *pos;

  extmem::FileReader reader(range_);
  const std::uint32_t w = schema_.arity();
  TupleCount group_start = 0;
  TupleCount i = 0;
  std::optional<Value> current;
  while (!reader.Done()) {
    const std::span<const Value> block = reader.NextBlock();
    for (std::size_t off = 0; off < block.size(); off += w) {
      const Value v = block[off + col];
      if (current.has_value() && v != *current) {
        fn(*current, Slice(group_start, i));
        group_start = i;
      }
      current = v;
      ++i;
    }
  }
  if (current.has_value()) {
    fn(*current, Slice(group_start, i));
  }
}

std::vector<Tuple> Relation::ReadAll() const {
  std::vector<Tuple> out;
  out.reserve(size());
  extmem::FileReader reader(range_);
  const std::uint32_t w = schema_.arity();
  while (!reader.Done()) {
    const std::span<const Value> block = reader.NextBlock();
    for (std::size_t off = 0; off < block.size(); off += w) {
      out.emplace_back(block.data() + off, block.data() + off + w);
    }
  }
  return out;
}

void MemChunk::ForEachMatch(std::uint32_t col, Value val,
                            const std::function<void(TupleRef)>& fn) const {
  for (TupleCount i = 0; i < count_; ++i) {
    TupleRef t = tuple(i);
    if (t[col] == val) fn(t);
  }
}

std::vector<Value> MemChunk::DistinctValues(std::uint32_t col) const {
  std::vector<Value> vals;
  vals.reserve(count_);
  for (TupleCount i = 0; i < count_; ++i) vals.push_back(tuple(i)[col]);
  std::sort(vals.begin(), vals.end());
  vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
  return vals;
}

GroupCursor::GroupCursor(const Relation& rel, AttrId a)
    : rel_(rel), reader_(rel.range()) {
  assert(rel.IsSortedBy(a));
  const auto pos = rel.schema().PositionOf(a);
  assert(pos.has_value());
  col_ = *pos;
  ScanGroup();
}

void GroupCursor::ScanGroup() {
  if (begin_ >= rel_.size()) return;
  value_ = reader_.Next()[col_];
  end_ = begin_ + 1;
  while (!reader_.Done() && reader_.Peek()[col_] == value_) {
    reader_.Next();
    ++end_;
  }
}

void GroupCursor::Advance() {
  begin_ = end_;
  ScanGroup();
}

bool LoadChunk(extmem::FileReader& reader, const Schema& schema,
               extmem::Device* device, TupleCount max_tuples, MemChunk* out) {
  if (reader.Done()) return false;
  *out = MemChunk(schema, device);
  TupleCount loaded = 0;
  while (!reader.Done() && loaded < max_tuples) {
    const std::span<const Value> block = reader.NextBlock(max_tuples - loaded);
    out->AppendBlock(block);
    loaded += block.size() / schema.arity();
  }
  return true;
}

void ProcessChunkWithReplan(
    extmem::Device* dev, MemChunk* chunk, const Schema& schema,
    const std::function<void(const MemChunk&)>& process) {
  auto trip = extmem::BudgetTripOf([&] { process(*chunk); });
  if (!trip.has_value()) return;
  const TupleCount total = chunk->size();
  if (total <= 1) {
    // Even a single tuple's processing overruns the budget: the limit is
    // below the operator's hard floor. Nothing left to halve — terminal.
    extmem::ThrowStatus(*std::move(trip));
  }
  trace::Count(dev, "budget_replans", 1);

  // Rework after a caught trip is recovery I/O: spill the chunk so its
  // residency can be released, then re-read and re-process it in halved
  // sub-chunks. (The nested operator work keeps its own tags — only the
  // spill/re-read bookkeeping lands on "recovery".)
  extmem::ScopedIoTag tag(dev, "recovery");
  extmem::FilePtr scratch = dev->NewFile(schema.arity());
  {
    extmem::FileWriter writer(scratch);
    writer.AppendBlock(chunk->data());
    writer.Finish();
  }
  chunk->Clear();

  const TupleCount half = total / 2 > 0 ? total / 2 : 1;
  extmem::FileReader reader{extmem::FileRange(scratch)};
  while (!reader.Done()) {
    // Re-polled per sub-chunk: further shrinks land between sub-chunks.
    TupleCount cap = std::min(half, dev->DegradedChunkCap(half));
    if (cap < 1) cap = 1;
    MemChunk sub(schema, dev);
    auto load_trip = extmem::BudgetTripOf(
        [&] { static_cast<void>(LoadChunk(reader, schema, dev, cap, &sub)); });
    if (load_trip.has_value() && sub.empty()) {
      extmem::ThrowStatus(*std::move(load_trip));
    }
    // A trip mid-load leaves `sub` holding exactly the tuples consumed
    // from the reader so far — process them; nothing is lost or doubled.
    if (!sub.empty()) ProcessChunkWithReplan(dev, &sub, schema, process);
  }
}

bool LoadChunkByValue(extmem::FileReader& reader, const Schema& schema,
                      extmem::Device* device, std::uint32_t col,
                      TupleCount min_tuples, MemChunk* out) {
  if (reader.Done()) return false;
  *out = MemChunk(schema, device);
  TupleCount loaded = 0;
  while (!reader.Done()) {
    if (loaded >= min_tuples) {
      // Stop at a group boundary: only continue while the next tuple has
      // the same value as the last loaded one.
      const Value last = out->tuple(loaded - 1)[col];
      if (reader.Peek()[col] != last) break;
    }
    out->Append(TupleRef(reader.Next(), schema.arity()));
    ++loaded;
  }
  return true;
}

}  // namespace emjoin::storage
