#ifndef EMJOIN_STORAGE_CSV_H_
#define EMJOIN_STORAGE_CSV_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "storage/relation.h"

namespace emjoin::storage {

/// Parses a relation from CSV text with unsigned-integer columns, one
/// tuple per line. Empty lines and lines starting with '#' are skipped;
/// duplicate rows are removed (relations are sets). Returns nullopt with
/// `error` set on malformed input (wrong column count, non-numeric
/// field). Loading charges the materialization write, like FromTuples.
std::optional<Relation> RelationFromCsv(extmem::Device* dev, Schema schema,
                                        std::istream& in,
                                        std::string* error);

/// Convenience: parse from a file path.
std::optional<Relation> RelationFromCsvFile(extmem::Device* dev,
                                            Schema schema,
                                            const std::string& path,
                                            std::string* error);

/// Writes `rel` as CSV (one tuple per line), charging a sequential scan.
void RelationToCsv(const Relation& rel, std::ostream& out);

/// Parses "a,b,c" into a Schema over attribute ids. Attribute names are
/// interned in `names` (first occurrence assigns the next id), so several
/// relations can share attributes by name. Returns nullopt on duplicates
/// within one schema.
std::optional<Schema> ParseSchemaSpec(const std::string& spec,
                                      std::vector<std::string>* names,
                                      std::string* error);

}  // namespace emjoin::storage

#endif  // EMJOIN_STORAGE_CSV_H_
