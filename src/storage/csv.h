#ifndef EMJOIN_STORAGE_CSV_H_
#define EMJOIN_STORAGE_CSV_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "extmem/status.h"
#include "storage/relation.h"

namespace emjoin::storage {

/// Maximum accepted CSV line length in bytes. Longer lines are rejected
/// with a typed error instead of being buffered unboundedly.
inline constexpr std::size_t kMaxCsvLineBytes = 1 << 20;

/// Parses a relation from CSV text with unsigned-integer columns, one
/// tuple per line. Empty lines and lines starting with '#' are skipped
/// (a final line without a trailing newline is accepted); duplicate rows
/// are removed (relations are sets). Returns kInvalidInput on malformed
/// input — wrong column count, non-numeric field, overlong line, or a
/// stream with no lines at all — with `source` and the line number in
/// the message. Rows are staged in host memory and materialized only
/// after the whole input parses, so a parse error never leaves partial
/// tuples on the device. Loading charges the materialization write, like
/// FromTuples.
[[nodiscard]] extmem::Result<Relation> RelationFromCsv(
    extmem::Device* dev, Schema schema, std::istream& in,
    std::string_view source = "<csv>");

/// Convenience: parse from a file path. Every error message includes
/// `path`; a missing/unreadable file is kNotFound, an empty (zero data
/// line) file and parse errors are kInvalidInput.
[[nodiscard]] extmem::Result<Relation> RelationFromCsvFile(
    extmem::Device* dev, Schema schema, const std::string& path);

/// Writes `rel` as CSV (one tuple per line), charging a sequential scan.
void RelationToCsv(const Relation& rel, std::ostream& out);

/// Parses "a,b,c" into a Schema over attribute ids. Attribute names are
/// interned in `names` (first occurrence assigns the next id), so several
/// relations can share attributes by name. Returns kInvalidInput on an
/// empty or duplicate attribute within one schema.
[[nodiscard]] extmem::Result<Schema> ParseSchemaSpec(
    const std::string& spec, std::vector<std::string>* names);

}  // namespace emjoin::storage

#endif  // EMJOIN_STORAGE_CSV_H_
