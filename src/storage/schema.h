#ifndef EMJOIN_STORAGE_SCHEMA_H_
#define EMJOIN_STORAGE_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "extmem/defs.h"

namespace emjoin::storage {

/// Identifier of an attribute (a vertex of the query hypergraph).
using AttrId = std::uint32_t;

/// Ordered list of attributes of one relation. The order fixes the column
/// layout of tuples on disk.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttrId> attrs);

  std::uint32_t arity() const {
    return static_cast<std::uint32_t>(attrs_.size());
  }

  AttrId attr(std::uint32_t pos) const { return attrs_[pos]; }

  const std::vector<AttrId>& attrs() const { return attrs_; }

  /// Column position of attribute `a`, if present.
  std::optional<std::uint32_t> PositionOf(AttrId a) const;

  bool Contains(AttrId a) const { return PositionOf(a).has_value(); }

  /// Attributes present in both schemas (in this schema's order).
  std::vector<AttrId> CommonAttrs(const Schema& other) const;

  bool operator==(const Schema& other) const { return attrs_ == other.attrs_; }

  std::string ToString() const;

 private:
  std::vector<AttrId> attrs_;
};

}  // namespace emjoin::storage

#endif  // EMJOIN_STORAGE_SCHEMA_H_
