#include "storage/tuple.h"

#include <cassert>
#include <sstream>

namespace emjoin::storage {

std::string TupleToString(TupleRef tuple) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) os << ", ";
    os << tuple[i];
  }
  os << "]";
  return os.str();
}

Tuple ProjectTuple(TupleRef tuple, const Schema& from, const Schema& to) {
  Tuple out;
  out.reserve(to.arity());
  for (AttrId a : to.attrs()) {
    const auto pos = from.PositionOf(a);
    assert(pos.has_value());
    out.push_back(tuple[*pos]);
  }
  return out;
}

bool TuplesJoinable(TupleRef a, const Schema& schema_a, TupleRef b,
                    const Schema& schema_b) {
  for (std::uint32_t i = 0; i < schema_a.arity(); ++i) {
    const auto pos = schema_b.PositionOf(schema_a.attr(i));
    if (pos.has_value() && a[i] != b[*pos]) return false;
  }
  return true;
}

Tuple ConcatTuples(TupleRef a, const Schema& schema_a, TupleRef b,
                   const Schema& schema_b) {
  Tuple out(a.begin(), a.end());
  for (std::uint32_t i = 0; i < schema_b.arity(); ++i) {
    if (!schema_a.Contains(schema_b.attr(i))) out.push_back(b[i]);
  }
  return out;
}

Schema JoinedSchema(const Schema& a, const Schema& b) {
  std::vector<AttrId> attrs = a.attrs();
  for (AttrId x : b.attrs()) {
    if (!a.Contains(x)) attrs.push_back(x);
  }
  return Schema(std::move(attrs));
}

}  // namespace emjoin::storage
