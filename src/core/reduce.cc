#include "core/reduce.h"

#include <algorithm>
#include <cassert>

#include "extmem/status.h"
#include "query/join_tree.h"
#include "trace/tracer.h"

namespace emjoin::core {

Relation SemiJoin(const Relation& rel, const Relation& filter,
                  storage::AttrId a) {
  extmem::ScopedIoTag tag(rel.device(), "semijoin");
  trace::Span span(rel.device(), "semijoin");
  const Relation left = rel.SortedBy(a);
  const Relation right = filter.SortedBy(a);
  const std::uint32_t lcol = *left.schema().PositionOf(a);
  const std::uint32_t rcol = *right.schema().PositionOf(a);

  extmem::Device* dev = rel.device();
  extmem::FilePtr out = dev->NewFile(left.schema().arity());
  extmem::FileWriter writer(out);

  const std::uint32_t w = left.schema().arity();
  extmem::FileReader lr(left.range());
  extmem::BlockCursor rr(right.range());
  bool have_r = !rr.Done();
  Value rv = 0;
  if (have_r) rv = rr.Next()[rcol];

  while (!lr.Done()) {
    const std::span<const Value> block = lr.NextBlock();
    for (const Value* t = block.data(); t != block.data() + block.size();
         t += w) {
      const Value lv = t[lcol];
      while (have_r && rv < lv) {
        if (rr.Done()) {
          have_r = false;
        } else {
          rv = rr.Next()[rcol];
        }
      }
      if (have_r && rv == lv) {
        writer.Append({t, w});
      }
    }
  }
  writer.Finish();
  span.Count("semijoin_survivors", out->size());
  return Relation(left.schema(), extmem::FileRange(out), a);
}

Relation SemiJoinValues(const Relation& rel, storage::AttrId a,
                        std::span<const Value> values) {
  extmem::ScopedIoTag tag(rel.device(), "semijoin");
  trace::Span span(rel.device(), "semijoin.values");
  assert(rel.IsSortedBy(a));
  assert(std::is_sorted(values.begin(), values.end()));
  const std::uint32_t col = *rel.schema().PositionOf(a);
  extmem::Device* dev = rel.device();
  extmem::FilePtr out = dev->NewFile(rel.schema().arity());
  extmem::FileWriter writer(out);

  if (!values.empty()) {
    // Narrow to the value interval, then scan and filter by membership.
    const Relation lo = rel.EqualRange(a, values.front());
    const Relation hi = rel.EqualRange(a, values.back());
    const TupleCount begin = lo.range().begin - rel.range().begin;
    const TupleCount end = hi.range().end - rel.range().begin;
    const Relation span_rel = rel.Slice(begin, end);
    const std::uint32_t w = rel.schema().arity();
    extmem::FileReader reader(span_rel.range());
    while (!reader.Done()) {
      const std::span<const Value> block = reader.NextBlock();
      for (const Value* t = block.data(); t != block.data() + block.size();
           t += w) {
        if (std::binary_search(values.begin(), values.end(), t[col])) {
          writer.Append({t, w});
        }
      }
    }
  }
  writer.Finish();
  span.Count("semijoin_survivors", out->size());
  return Relation(rel.schema(), extmem::FileRange(out), a);
}

std::vector<Relation> FullyReduce(const std::vector<Relation>& rels) {
  if (rels.empty()) return {};
  query::JoinQuery q;
  for (const Relation& r : rels) q.AddRelation(r.schema(), r.size());
  if (!q.IsBergeAcyclic()) {
    // Typed error instead of the former assert: semijoin sweeps along a
    // join tree are only defined for Berge-acyclic queries. Surfaces as
    // kInvalidInput at the Try* boundaries.
    extmem::ThrowStatus(
        extmem::Status(extmem::StatusCode::kInvalidInput,
                       "FullyReduce requires a Berge-acyclic query, got " +
                           q.ToString()));
  }
  const query::JoinTree tree = query::BuildJoinTree(q);

  std::vector<Relation> work = rels;
  trace::Span span(rels.front().device(), "reduce");

  // Upward sweep: children filter parents (bottom-up order).
  {
    trace::Span up(rels.front().device(), "reduce.up");
    for (query::EdgeId e : tree.bottom_up) {
      if (tree.parent[e] < 0) continue;
      const query::EdgeId p = static_cast<query::EdgeId>(tree.parent[e]);
      work[p] = SemiJoin(work[p], work[e], tree.parent_attr[e]);
    }
  }
  // Downward sweep: parents filter children (top-down order).
  {
    trace::Span down(rels.front().device(), "reduce.down");
    for (auto it = tree.bottom_up.rbegin(); it != tree.bottom_up.rend();
         ++it) {
      const query::EdgeId e = *it;
      for (query::EdgeId c : tree.children[e]) {
        work[c] = SemiJoin(work[c], work[e], tree.parent_attr[c]);
      }
    }
  }
  return work;
}

}  // namespace emjoin::core
