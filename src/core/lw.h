#ifndef EMJOIN_CORE_LW_H_
#define EMJOIN_CORE_LW_H_

#include <vector>

#include "core/emit.h"
#include "storage/relation.h"

namespace emjoin::core {

/// Loomis–Whitney joins LW_n (Table 1, row 3; [6] in the paper): over
/// attributes {v_1..v_n}, relation e_i spans all attributes except v_i.
/// LW_3 is the triangle query. The paper lists the external-memory cost
/// Π_i (N_i/M)^{1/(n-1)} · M/B from Hu, Qiao and Tao, with optimality
/// unknown — included here as the cyclic companion of the acyclic
/// algorithms, using the value-partitioning scheme generalized from the
/// triangle case: hash every attribute's domain into p groups, sort each
/// relation by its group vector, and solve each of the p^n cells in
/// memory. With light values each cell holds O(N/p^{n-1}) tuples per
/// relation, giving Õ(p · ΣN_i / B) = Õ(N^{n/(n-1)} / (M^{1/(n-1)} B))
/// I/Os for equal sizes.
///
/// `rels` must form an LW query (n relations of arity n-1 whose missing
/// attributes are distinct), n >= 3. Emits assignments over
/// MakeResultSchema(rels).
void LoomisWhitneyJoin(const std::vector<storage::Relation>& rels,
                       const EmitFn& emit);

/// True if the schemas form a Loomis–Whitney query.
bool IsLoomisWhitney(const std::vector<storage::Relation>& rels);

}  // namespace emjoin::core

#endif  // EMJOIN_CORE_LW_H_
