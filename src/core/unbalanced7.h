#ifndef EMJOIN_CORE_UNBALANCED7_H_
#define EMJOIN_CORE_UNBALANCED7_H_

#include <vector>

#include "core/emit.h"
#include "storage/relation.h"

namespace emjoin::core {

/// Algorithm 5: LineJoinUnbalanced7 — optimal for a 7-relation line join
/// with alternating optimal edge cover (1,0,1,0,1,0,1) when any of the
/// three balance conditions breaks (§6.3, Appendix A.3):
///
///   1. S = R3 ⋈ R4 ⋈ R5 (Algorithm 1), written to disk;
///   2. run AcyclicJoin on {R1, R2, S, R6, R7}.
///
/// `rels` must be the 7 relations in line order.
void LineJoinUnbalanced7(const std::vector<storage::Relation>& rels,
                         const EmitFn& emit, bool reduce_first = true);

/// Algorithm 5 binding into an existing assignment (input must already be
/// fully reduced; `rels` in line order).
void LineJoinUnbalanced7UnderAssignment(
    const std::vector<storage::Relation>& rels, Assignment* assignment,
    const EmitFn& emit);

}  // namespace emjoin::core

#endif  // EMJOIN_CORE_UNBALANCED7_H_
