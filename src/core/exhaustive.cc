#include "core/exhaustive.h"

#include <cassert>

#include "core/acyclic_join.h"
#include "core/reduce.h"

namespace emjoin::core {

namespace {

std::string ShapeKey(const query::JoinQuery& q) {
  std::string key;
  for (query::EdgeId e = 0; e < q.num_edges(); ++e) {
    for (storage::AttrId a : q.edge(e).attrs()) {
      key += std::to_string(a);
      key += ',';
    }
    key += ';';
  }
  return key;
}

}  // namespace

std::vector<BranchResult> ExhaustivePeelSearch(
    const std::vector<storage::Relation>& rels, std::size_t max_branches) {
  std::vector<BranchResult> out;
  if (rels.empty()) return out;
  extmem::Device* dev = rels.front().device();

  // Reduce once so every branch joins the same instance.
  const std::vector<storage::Relation> reduced = FullyReduce(rels);

  // Current strategy: shape -> chosen index; shapes are discovered during
  // execution. `counts` remembers how many candidates each shape offered,
  // so the odometer below knows the radix per position.
  std::map<std::string, std::size_t> script;
  std::map<std::string, std::size_t> counts;

  while (out.size() < max_branches) {
    gens::LeafChooser chooser =
        [&script, &counts](const query::JoinQuery& live,
                           const std::vector<storage::Relation>&,
                           const std::vector<query::EdgeId>& candidates)
        -> std::size_t {
      const std::string key = ShapeKey(live);
      counts[key] = candidates.size();
      const auto it = script.find(key);
      if (it == script.end()) {
        script[key] = 0;
        return 0;
      }
      assert(it->second < candidates.size());
      return it->second;
    };

    BranchResult branch;
    const extmem::IoStats before = dev->stats();
    CountingSink sink;
    AcyclicJoinOptions opts;
    opts.leaf_chooser = chooser;
    opts.reduce_first = false;
    AcyclicJoin(reduced, sink.AsEmitFn(), opts);
    branch.ios = (dev->stats() - before).total();
    branch.results = sink.count();
    branch.script = script;
    out.push_back(std::move(branch));

    // Odometer: advance the last shape (in key order) that still has a
    // next candidate; reset the ones after it. Note newly-discovered
    // shapes in later runs extend the odometer automatically.
    bool advanced = false;
    for (auto it = script.rbegin(); it != script.rend(); ++it) {
      const std::size_t radix = counts[it->first];
      if (it->second + 1 < radix) {
        ++it->second;
        // Reset all positions after this one (in forward order).
        for (auto jt = script.upper_bound(it->first); jt != script.end();
             ++jt) {
          jt->second = 0;
        }
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  return out;
}

}  // namespace emjoin::core
