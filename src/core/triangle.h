#ifndef EMJOIN_CORE_TRIANGLE_H_
#define EMJOIN_CORE_TRIANGLE_H_

#include "core/emit.h"
#include "storage/relation.h"

namespace emjoin::core {

/// The triangle query C3 (Table 1, row 2; [7, 12] in the paper):
///
///   R1(v1,v2) ⋈ R2(v1,v3) ⋈ R3(v2,v3)
///
/// is the simplest cyclic join. For equal relation sizes N the known
/// worst-case optimal external-memory cost is Õ(N^{3/2} / (√M · B)).
/// This implements the value-partitioning scheme: hash each attribute's
/// domain into p ≈ √(cN/M) groups, pre-sort each relation by its group
/// pair, and for each of the p³ group triples join the three contiguous
/// sub-relations in memory. With light values (degree ≤ N/p) each
/// sub-relation holds O(N/p²) tuples; heavy values are handled by an
/// extra splitting level. Included as the paper's cyclic point of
/// comparison — the acyclic machinery (GenS, Algorithm 2) does not apply
/// here, which is exactly the contrast Table 1 draws.
///
/// Emits assignments over MakeResultSchema({r1, r2, r3}).
void TriangleJoin(const storage::Relation& r1, const storage::Relation& r2,
                  const storage::Relation& r3, const EmitFn& emit);

/// Baseline for the gap experiment: materializes R1 ⋈ R2 on disk (size up
/// to N²/values) and merge-filters it against R3. Õ(|R1⋈R2|/B) I/Os.
void TriangleViaMaterialization(const storage::Relation& r1,
                                const storage::Relation& r2,
                                const storage::Relation& r3,
                                const EmitFn& emit);

}  // namespace emjoin::core

#endif  // EMJOIN_CORE_TRIANGLE_H_
