#ifndef EMJOIN_CORE_PAIRWISE_H_
#define EMJOIN_CORE_PAIRWISE_H_

#include "core/emit.h"
#include "storage/relation.h"

namespace emjoin::core {

using storage::Relation;

/// Block nested-loop join in the emit model: loads `outer` one M-chunk at
/// a time and streams `inner` once per chunk, emitting every combination
/// that agrees on all shared attributes. O(⌈N_out/M⌉ · N_in/B) I/Os —
/// worst-case optimal for two relations (Table 1, row 1). Also serves as
/// the cross-product operator when the relations share no attribute.
///
/// `base` carries bindings for attributes outside the two relations
/// (pass a fresh Assignment at top level).
void BlockNestedLoopJoin(const Relation& outer, const Relation& inner,
                         Assignment* base, const EmitFn& emit);

/// Instance-optimal 2-relation join (§3): sort both relations on their
/// (single) shared attribute and merge; a value heavy on both sides is
/// handled by an in-memory block nested loop. Õ(Σ_a N1|a · N2|a / (MB) +
/// (N1+N2)/B) I/Os on every instance.
void SortMergeJoin(const Relation& r1, const Relation& r2, Assignment* base,
                   const EmitFn& emit);

/// Materializing sort-merge join: like SortMergeJoin but the results are
/// written to a new relation on disk (charged), with schema
/// JoinedSchema(r1.schema(), r2.schema()). Used where an algorithm
/// explicitly stores an intermediate (Algorithms 4–5, Yannakakis).
Relation JoinToDisk(const Relation& r1, const Relation& r2);

}  // namespace emjoin::core

#endif  // EMJOIN_CORE_PAIRWISE_H_
