#ifndef EMJOIN_CORE_THREAD_ANNOTATIONS_H_
#define EMJOIN_CORE_THREAD_ANNOTATIONS_H_

// Portable wrappers for clang's Thread Safety Analysis attributes, so the
// locking protocol of every concurrent layer (parallel/, obs/, serve/,
// and the one cross-thread atom in extmem/) is written in the type system
// and machine-checked, not just described in comments.
//
// The analysis runs in the dedicated `thread-safety` CI job, which
// compiles with clang against libc++ and
// -D_LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS -Wthread-safety
// -Werror=thread-safety. That combination is required because only
// libc++ annotates std::mutex as a capability and std::lock_guard as a
// scoped capability; with libstdc++ (the default g++ build) the
// attributes would be attached to an un-annotated mutex type and clang
// would reject them under -Wthread-safety-attributes. Everywhere else —
// g++, clang+libstdc++, clang without the opt-in define — every macro
// below expands to nothing and the build is bit-for-bit the usual one.
//
// Catalogue (see docs/STATIC_ANALYSIS.md, "Concurrency & layering"):
//
//   GUARDED_BY(mu)       data member readable/writable only with `mu` held
//   PT_GUARDED_BY(mu)    pointee (not the pointer) protected by `mu`
//   REQUIRES(mu)         function may only be called with `mu` held
//   EXCLUDES(mu)         function acquires `mu` itself; callers must NOT
//                        hold it (documents non-reentrancy)
//   ACQUIRE(mu)          function leaves `mu` held
//   RELEASE(mu)          function leaves `mu` released
//   NO_THREAD_SAFETY_ANALYSIS
//                        opt a function out (condition-variable wait
//                        protocols, which the analysis cannot model
//                        through std::unique_lock)
//
// Two further macros are documentation-only (they expand to nothing on
// every compiler) but are load-bearing for emjoin_lint's lock-discipline
// rule, which requires every mutex/condition-variable/atomic member to
// state its protocol:
//
//   LOCK_FREE_ATOMIC     this std::atomic member is intentionally not
//                        mutex-guarded; its memory orderings are spelled
//                        explicitly at every access
//   WAITS_ON(mu)         this condition variable is always waited on
//                        under `mu` (the analysis itself cannot check
//                        cv/mutex pairing)
//
// This header is deliberately dependency-free and sits outside the
// subsystem DAG (emjoin_lint's include-layering rule lists it as
// layerless), so even the bottom layer (src/extmem) may include it.

// <version> is the cheapest standard header that reveals the library
// vendor macro (_LIBCPP_VERSION) we gate on.
#include <version>

#if defined(__clang__) && defined(_LIBCPP_VERSION) && \
    defined(_LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS)
#define EMJOIN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EMJOIN_THREAD_ANNOTATION(x)
#endif

#define GUARDED_BY(x) EMJOIN_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) EMJOIN_THREAD_ANNOTATION(pt_guarded_by(x))
#define REQUIRES(...) \
  EMJOIN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EXCLUDES(...) EMJOIN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ACQUIRE(...) EMJOIN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) EMJOIN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define NO_THREAD_SAFETY_ANALYSIS \
  EMJOIN_THREAD_ANNOTATION(no_thread_safety_analysis)

// Documentation-only protocol markers (checked lexically by emjoin_lint,
// never by the compiler).
#define LOCK_FREE_ATOMIC
#define WAITS_ON(...)

#endif  // EMJOIN_CORE_THREAD_ANNOTATIONS_H_
