#include "core/dispatch.h"

#include <algorithm>
#include <cassert>

#include "core/acyclic_join.h"
#include "core/reduce.h"
#include "core/unbalanced5.h"
#include "core/unbalanced7.h"
#include "query/edge_cover.h"
#include "trace/tracer.h"

namespace emjoin::core {

namespace {

using storage::Relation;

// Runs `run_inner` once per M-chunk of `outer`; each inner result is
// combined with the chunk tuples matching on `shared` (the attribute
// joining `outer` to the inner query). This is the paper's "nested-loop
// join with R_k as the outer relation and <sub-join> as the inner
// relation": the inner join re-runs once per outer chunk.
void NestedLoopWrap(const Relation& outer, storage::AttrId shared,
                    Assignment* assignment, const EmitFn& user_emit,
                    const std::function<void(const EmitFn&)>& run_inner) {
  extmem::Device* dev = outer.device();
  trace::Span span(dev, "nested_loop_wrap");
  const std::uint32_t col = *outer.schema().PositionOf(shared);
  extmem::FileReader reader(outer.range());
  storage::MemChunk chunk;
  while (storage::LoadChunk(reader, outer.schema(), dev, dev->M(), &chunk)) {
    span.Count("nl_chunks", 1);
    run_inner([&](std::span<const Value>) {
      const Value val = assignment->ValueOf(shared);
      chunk.ForEachMatch(col, val, [&](storage::TupleRef t) {
        assignment->Bind(outer.schema(), t.data());
        user_emit(assignment->values());
      });
    });
  }
}

std::vector<TupleCount> SizesOf(const std::vector<Relation>& rels) {
  std::vector<TupleCount> sizes;
  sizes.reserve(rels.size());
  for (const Relation& r : rels) sizes.push_back(r.size());
  return sizes;
}

bool BalancedInterval(const std::vector<TupleCount>& sizes, std::size_t lo,
                      std::size_t hi) {
  std::vector<TupleCount> sub(sizes.begin() + lo, sizes.begin() + hi + 1);
  return IsBalancedLine(sub);
}

// True if some odd split k makes both halves balanced (Theorem 6).
bool HasBalancedSplit(const std::vector<TupleCount>& sizes) {
  const std::size_t n = sizes.size();
  for (std::size_t k = 1; k < n; k += 2) {
    if (BalancedInterval(sizes, 0, k - 1) &&
        BalancedInterval(sizes, k, n - 1)) {
      return true;
    }
  }
  return false;
}

// Shared attribute between consecutive line relations.
storage::AttrId SharedAttr(const Relation& a, const Relation& b) {
  const std::vector<storage::AttrId> common =
      a.schema().CommonAttrs(b.schema());
  assert(common.size() == 1);
  return common.front();
}

// Cover indicator x_i for the line-ordered relations.
std::vector<bool> CoverPattern(const std::vector<Relation>& line) {
  query::JoinQuery q;
  for (const Relation& r : line) q.AddRelation(r.schema(), r.size());
  const query::EdgeCover cover = query::OptimalEdgeCover(q);
  std::vector<bool> x(line.size(), false);
  for (query::EdgeId e : cover.edges) x[e] = true;
  return x;
}

// Dispatches an already-reduced line join (relations in line order).
AutoJoinReport DispatchLine(const std::vector<Relation>& line,
                            Assignment* assignment, const EmitFn& emit,
                            const gens::LeafChooser& chooser) {
  const std::size_t n = line.size();
  const std::vector<TupleCount> sizes = SizesOf(line);

  auto run_acyclic = [&](const std::string& reason) {
    AcyclicJoinUnderAssignment(line, assignment, emit, chooser);
    return AutoJoinReport{"AcyclicJoin", reason};
  };

  if (n <= 4) return run_acyclic("line join with n <= 4 is always optimal");
  if (IsBalancedLine(sizes)) {
    return run_acyclic("balanced line join (Theorem 5)");
  }

  if (n == 5) {
    LineJoinUnbalanced5UnderAssignment(line[0], line[1], line[2], line[3],
                                       line[4], assignment, emit);
    return {"LineJoinUnbalanced5", "unbalanced L5 (Algorithm 4)"};
  }

  if (n == 6) {
    if (HasBalancedSplit(sizes)) {
      return run_acyclic("L6 with a balanced split (Theorem 6)");
    }
    // §6.3: nested loop with an end relation as the outer and the
    // unbalanced 5-relation prefix/suffix as the inner (Algorithm 4).
    if (!BalancedInterval(sizes, 0, 4)) {
      NestedLoopWrap(line[5], SharedAttr(line[4], line[5]), assignment, emit,
                     [&](const EmitFn& inner) {
                       LineJoinUnbalanced5UnderAssignment(
                           line[0], line[1], line[2], line[3], line[4],
                           assignment, inner);
                     });
      return {"L6=NL(R6, Alg4)", "unbalanced L6, prefix unbalanced"};
    }
    NestedLoopWrap(line[0], SharedAttr(line[0], line[1]), assignment, emit,
                   [&](const EmitFn& inner) {
                     LineJoinUnbalanced5UnderAssignment(
                         line[1], line[2], line[3], line[4], line[5],
                         assignment, inner);
                   });
    return {"L6=NL(R1, Alg4)", "unbalanced L6, suffix unbalanced"};
  }

  if (n == 7) {
    const std::vector<bool> x = CoverPattern(line);
    if (x[0] && x[1] && x[5] && x[6]) {
      // Cover (1,1,0,1,0,1,1): R1 ⋈ (R2..R6 via Algorithm 4) ⋈ R7.
      NestedLoopWrap(
          line[0], SharedAttr(line[0], line[1]), assignment, emit,
          [&](const EmitFn& mid) {
            NestedLoopWrap(line[6], SharedAttr(line[5], line[6]), assignment,
                           mid, [&](const EmitFn& inner) {
                             LineJoinUnbalanced5UnderAssignment(
                                 line[1], line[2], line[3], line[4], line[5],
                                 assignment, inner);
                           });
          });
      return {"L7=NL(R1,R7, Alg4)", "L7 with cover (1,1,0,1,0,1,1)"};
    }
    LineJoinUnbalanced7UnderAssignment(line, assignment, emit);
    return {"LineJoinUnbalanced7",
            "unbalanced L7 with alternating cover (Algorithm 5)"};
  }

  if (n == 8) {
    // On fully reduced instances a balanced split always exists (break
    // the k=5 split and full reduction forces N4 > N5; break the k=3
    // split and it forces N4 < N5), so this branch is the expected one
    // and the nested-loop reduction below is a safety net for inputs
    // that skipped reduction.
    if (HasBalancedSplit(sizes)) {
      return run_acyclic("L8 with a balanced split (Theorem 6)");
    }
    // Reduce to an L7: wrap whichever end relation the optimal cover
    // pairs with its neighbour; fall back to the right end.
    const std::vector<bool> x = CoverPattern(line);
    const bool wrap_left = x[0] && x[1];
    const std::size_t outer_idx = wrap_left ? 0 : 7;
    std::vector<Relation> inner(line.begin() + (wrap_left ? 1 : 0),
                                line.end() - (wrap_left ? 0 : 1));
    const storage::AttrId shared =
        wrap_left ? SharedAttr(line[0], line[1]) : SharedAttr(line[6], line[7]);
    AutoJoinReport inner_report;
    NestedLoopWrap(line[outer_idx], shared, assignment, emit,
                   [&](const EmitFn& mid) {
                     inner_report =
                         DispatchLine(inner, assignment, mid, chooser);
                   });
    return {"L8=NL(end, " + inner_report.algorithm + ")",
            "unbalanced L8 reduced to L7 (§6.3)"};
  }

  // n >= 9: no general optimal algorithm is known for the unbalanced
  // case (§6.3); Algorithm 2 is still correct and optimal when balanced.
  return run_acyclic("n >= 9: Algorithm 2 fallback (open problem in paper)");
}

}  // namespace

std::optional<std::vector<query::EdgeId>> LineOrder(
    const query::JoinQuery& q) {
  const std::uint32_t n = q.num_edges();
  if (n == 0) return std::nullopt;
  for (query::EdgeId e = 0; e < n; ++e) {
    if (q.edge(e).arity() != 2) return std::nullopt;
  }
  for (query::AttrId a : q.attrs()) {
    if (q.AttrDegree(a) > 2) return std::nullopt;
  }
  if (n == 1) return std::vector<query::EdgeId>{0};

  // Find an endpoint: an edge with a degree-1 attribute.
  query::EdgeId start = n;
  query::AttrId start_attr = 0;
  for (query::EdgeId e = 0; e < n && start == n; ++e) {
    for (query::AttrId a : q.edge(e).attrs()) {
      if (q.AttrDegree(a) == 1) {
        start = e;
        start_attr = a;
        break;
      }
    }
  }
  if (start == n) return std::nullopt;  // no endpoint: a cycle

  std::vector<query::EdgeId> order;
  std::vector<bool> used(n, false);
  query::EdgeId cur = start;
  query::AttrId incoming = start_attr;
  while (true) {
    order.push_back(cur);
    used[cur] = true;
    // The other attribute of cur leads to the next edge.
    query::AttrId outgoing = q.edge(cur).attr(0) == incoming
                                 ? q.edge(cur).attr(1)
                                 : q.edge(cur).attr(0);
    query::EdgeId next = n;
    for (query::EdgeId e : q.EdgesWith(outgoing)) {
      if (e != cur && !used[e]) {
        next = e;
        break;
      }
    }
    if (next == n) break;
    cur = next;
    incoming = outgoing;
  }
  if (order.size() != n) return std::nullopt;  // disconnected
  return order;
}

bool IsBalancedLine(const std::vector<TupleCount>& sizes) {
  const std::size_t n = sizes.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 2; j < n; j += 2) {
      long double odd = 1.0L, even = 1.0L;
      for (std::size_t k = i; k <= j; k += 2) {
        odd *= static_cast<long double>(sizes[k]);
      }
      for (std::size_t k = i + 1; k < j; k += 2) {
        even *= static_cast<long double>(sizes[k]);
      }
      if (odd < even) return false;
    }
  }
  return true;
}

extmem::Result<AutoJoinReport> TryJoinAuto(
    const std::vector<storage::Relation>& rels, const EmitFn& emit) {
  if (rels.empty()) return AutoJoinReport{"none", "empty query"};

  query::JoinQuery q;
  for (const Relation& r : rels) q.AddRelation(r.schema(), r.size());
  if (!q.IsBergeAcyclic()) {
    return extmem::Status(extmem::StatusCode::kInvalidInput,
                          "query is not Berge-acyclic: " + q.ToString());
  }

  return extmem::CatchStatus([&]() -> AutoJoinReport {
    extmem::Device* dev = rels.front().device();
    trace::Span span(dev, "auto_join");

    const std::vector<Relation> reduced = FullyReduce(rels);
    Assignment assignment(MakeResultSchema(rels));
    const gens::LeafChooser chooser =
        gens::CostGuidedChooser(dev->M(), dev->B());

    if (const auto order = LineOrder(q);
        order.has_value() && rels.size() >= 5) {
      std::vector<Relation> line;
      line.reserve(order->size());
      for (query::EdgeId e : *order) line.push_back(reduced[e]);
      return DispatchLine(line, &assignment, emit, chooser);
    }

    AcyclicJoinUnderAssignment(reduced, &assignment, emit, chooser);
    return AutoJoinReport{"AcyclicJoin", "general acyclic query (Algorithm 2)"};
  });
}

AutoJoinReport JoinAuto(const std::vector<storage::Relation>& rels,
                        const EmitFn& emit) {
  extmem::Result<AutoJoinReport> result = TryJoinAuto(rels, emit);
  if (!result.ok()) extmem::ThrowStatus(result.status());
  return *std::move(result);
}

}  // namespace emjoin::core
