#include "core/yannakakis.h"

#include <cassert>

#include "core/pairwise.h"
#include "core/reduce.h"
#include "query/join_tree.h"
#include "trace/tracer.h"

namespace emjoin::core {

YannakakisReport YannakakisJoin(const std::vector<storage::Relation>& rels,
                                const EmitFn& emit, bool reduce_first) {
  YannakakisReport report;
  if (rels.empty()) return report;
  trace::Span span(rels.front().device(), "yannakakis");

  std::vector<storage::Relation> work = rels;
  if (reduce_first) work = FullyReduce(work);

  query::JoinQuery q;
  for (const storage::Relation& r : work) q.AddRelation(r.schema(), r.size());
  const query::JoinTree tree = query::BuildJoinTree(q);

  // Bottom-up pairwise joins: each child's accumulated result is joined
  // into its parent, materialized on disk.
  std::vector<storage::Relation> acc = work;
  {
    trace::Span join_span(rels.front().device(), "yannakakis.join");
    for (query::EdgeId e : tree.bottom_up) {
      if (tree.parent[e] < 0) continue;
      const query::EdgeId p = static_cast<query::EdgeId>(tree.parent[e]);
      acc[p] = JoinToDisk(acc[p], acc[e]);
      report.intermediate_tuples += acc[p].size();
    }

    // Combine the roots (cross products for disconnected queries).
    for (std::size_t i = 1; i < tree.roots.size(); ++i) {
      acc[tree.roots.front()] =
          JoinToDisk(acc[tree.roots.front()], acc[tree.roots[i]]);
      report.intermediate_tuples += acc[tree.roots.front()].size();
    }
    join_span.Count("intermediate_tuples", report.intermediate_tuples);
  }
  const storage::Relation final_rel = acc[tree.roots.front()];

  // Emit phase: one scan of the final result. Guarded: the semijoin and
  // join passes above re-plan under budget shrinks, and a replayed run
  // must not double-emit rows the watermark already journaled.
  trace::Span emit_span(rels.front().device(), "yannakakis.emit");
  GuardedEmit guarded(rels.front().device(), emit);
  std::uint64_t emitted = 0;
  Assignment assignment(MakeResultSchema(rels));
  const std::uint32_t w = final_rel.schema().arity();
  extmem::FileReader reader(final_rel.range());
  while (!reader.Done()) {
    const std::span<const Value> block = reader.NextBlock();
    for (const Value* t = block.data(); t != block.data() + block.size();
         t += w) {
      assignment.Bind(final_rel.schema(), t);
      guarded.fn()(assignment.values());
      ++emitted;
    }
  }
  emit_span.Count("emitted", emitted);
  return report;
}

extmem::Result<YannakakisReport> TryYannakakisJoin(
    const std::vector<storage::Relation>& rels, const EmitFn& emit,
    bool reduce_first) {
  if (!rels.empty()) {
    query::JoinQuery q;
    for (const storage::Relation& r : rels) {
      q.AddRelation(r.schema(), r.size());
    }
    if (!q.IsBergeAcyclic()) {
      return extmem::Status(extmem::StatusCode::kInvalidInput,
                            "query is not Berge-acyclic: " + q.ToString());
    }
  }
  return extmem::CatchStatus(
      [&] { return YannakakisJoin(rels, emit, reduce_first); });
}

}  // namespace emjoin::core
