#ifndef EMJOIN_CORE_REDUCE_H_
#define EMJOIN_CORE_REDUCE_H_

#include <span>
#include <vector>

#include "storage/relation.h"

namespace emjoin::core {

using storage::Relation;

/// rel ⋉_a filter: the tuples of `rel` whose value on attribute `a` also
/// occurs in `filter`. Sorts both sides by `a` if needed, then one merge
/// scan; the result is written to a new file, sorted by `a`. Õ((|rel| +
/// |filter|)/B) I/Os.
Relation SemiJoin(const Relation& rel, const Relation& filter,
                  storage::AttrId a);

/// rel ⋉_a values: tuples of `rel` (sorted by `a`) whose `a`-value is in
/// `values` (ascending, memory-resident — the caller accounts for them).
/// Only the file range spanning [values.front(), values.back()] is
/// scanned. Result written to a new file, sorted by `a`.
Relation SemiJoinValues(const Relation& rel, storage::AttrId a,
                        std::span<const Value> values);

/// Removes all dangling tuples (tuples that do not participate in any
/// join result): Yannakakis' first phase, two semijoin sweeps along a
/// join tree of the (Berge-acyclic) query. Õ(ΣN/B) I/Os.
///
/// The paper's optimality statements assume fully reduced instances; the
/// top-level join entry points call this first.
std::vector<Relation> FullyReduce(const std::vector<Relation>& rels);

}  // namespace emjoin::core

#endif  // EMJOIN_CORE_REDUCE_H_
