#include "core/pairwise.h"

#include <cassert>

#include "extmem/status.h"
#include "trace/tracer.h"

namespace emjoin::core {

namespace {

// Emits all combinations of a memory-resident chunk with one streamed
// tuple that agree on the chunk-vs-tuple shared attributes.
void EmitChunkMatches(const storage::MemChunk& chunk,
                      const storage::Schema& streamed_schema, const Value* t,
                      Assignment* base, const EmitFn& emit) {
  for (TupleCount i = 0; i < chunk.size(); ++i) {
    const storage::TupleRef c = chunk.tuple(i);
    if (!storage::TuplesJoinable(c, chunk.schema(),
                                 {t, streamed_schema.arity()},
                                 streamed_schema)) {
      continue;
    }
    base->Bind(chunk.schema(), c.data());
    base->Bind(streamed_schema, t);
    emit(base->values());
  }
}

}  // namespace

void BlockNestedLoopJoin(const Relation& outer, const Relation& inner,
                         Assignment* base, const EmitFn& emit) {
  extmem::Device* dev = outer.device();
  trace::Count(dev, "bnl_joins");
  GuardedEmit guarded(dev, emit);
  extmem::FileReader outer_reader(outer.range());
  const std::uint32_t iw = inner.schema().arity();
  const auto process = [&](const storage::MemChunk& chunk) {
    extmem::FileReader inner_reader(inner.range());
    while (!inner_reader.Done()) {
      const std::span<const Value> block = inner_reader.NextBlock();
      for (const Value* t = block.data(); t != block.data() + block.size();
           t += iw) {
        EmitChunkMatches(chunk, inner.schema(), t, base, guarded.fn());
      }
    }
  };
  while (!outer_reader.Done()) {
    // Re-polled per chunk: a budget shrink lands here as a smaller load.
    const TupleCount cap = dev->DegradedChunkCap(dev->M());
    storage::MemChunk chunk;
    auto trip = extmem::BudgetTripOf([&] {
      static_cast<void>(
          storage::LoadChunk(outer_reader, outer.schema(), dev, cap, &chunk));
    });
    if (trip.has_value() && chunk.empty()) {
      extmem::ThrowStatus(*std::move(trip));
    }
    // A trip mid-load leaves the chunk holding exactly the tuples already
    // consumed from the reader — process the partial chunk; the next loop
    // iteration continues from the reader's position.
    if (!chunk.empty()) {
      storage::ProcessChunkWithReplan(dev, &chunk, outer.schema(), process);
    }
  }
}

void SortMergeJoin(const Relation& r1, const Relation& r2, Assignment* base,
                   const EmitFn& emit) {
  const std::vector<storage::AttrId> common =
      r1.schema().CommonAttrs(r2.schema());
  if (common.empty()) {
    BlockNestedLoopJoin(r1, r2, base, emit);
    return;
  }
  assert(common.size() == 1 && "Berge-acyclic: at most one shared attribute");
  const storage::AttrId v = common.front();

  const Relation s1 = r1.SortedBy(v);
  const Relation s2 = r2.SortedBy(v);
  extmem::Device* dev = r1.device();
  const TupleCount m = dev->M();

  storage::GroupCursor c1(s1, v);
  storage::GroupCursor c2(s2, v);
  while (!c1.Done() && !c2.Done()) {
    if (c1.value() < c2.value()) {
      c1.Advance();
      continue;
    }
    if (c2.value() < c1.value()) {
      c2.Advance();
      continue;
    }
    const Relation g1 = c1.group();
    const Relation g2 = c2.group();
    if (g1.size() >= m && g2.size() >= m) {
      // Heavy on both sides: block nested loop within the value.
      BlockNestedLoopJoin(g1, g2, base, emit);
    } else {
      // Load the lighter group, stream the other.
      const Relation& small = g1.size() <= g2.size() ? g1 : g2;
      const Relation& large = g1.size() <= g2.size() ? g2 : g1;
      if (dev->DegradedChunkCap(small.size()) < small.size()) {
        // Degraded: the light group no longer fits the shrunken budget.
        // Fall back to the chunked nested loop, which re-plans its own
        // fan-in. Fault-free the cap equals small.size() and this branch
        // is never taken, so golden counts are unchanged.
        BlockNestedLoopJoin(small, large, base, emit);
      } else {
        extmem::FileReader small_reader(small.range());
        storage::MemChunk chunk;
        storage::LoadChunk(small_reader, small.schema(), dev, small.size(),
                           &chunk);
        const std::uint32_t lw = large.schema().arity();
        extmem::FileReader large_reader(large.range());
        while (!large_reader.Done()) {
          const std::span<const Value> block = large_reader.NextBlock();
          for (const Value* t = block.data(); t != block.data() + block.size();
               t += lw) {
            EmitChunkMatches(chunk, large.schema(), t, base, emit);
          }
        }
      }
    }
    c1.Advance();
    c2.Advance();
  }
}

Relation JoinToDisk(const Relation& r1, const Relation& r2) {
  extmem::ScopedIoTag tag(r1.device(), "materialize");
  trace::Span span(r1.device(), "materialize");
  const storage::Schema joined =
      storage::JoinedSchema(r1.schema(), r2.schema());
  extmem::Device* dev = r1.device();
  extmem::FilePtr out = dev->NewFile(joined.arity());
  extmem::FileWriter writer(out);

  std::vector<storage::Relation> pair = {r1, r2};
  Assignment assignment(ResultSchema{joined.attrs()});
  // The assignment's attribute order equals the joined schema's order, so
  // emitted rows can be appended verbatim.
  SortMergeJoin(r1, r2, &assignment,
                [&](std::span<const Value> row) { writer.Append(row); });
  writer.Finish();
  return Relation(joined, extmem::FileRange(out));
}

}  // namespace emjoin::core
