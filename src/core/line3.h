#ifndef EMJOIN_CORE_LINE3_H_
#define EMJOIN_CORE_LINE3_H_

#include "core/emit.h"
#include "storage/relation.h"

namespace emjoin::core {

/// Algorithm 1: the I/O-optimal 3-relation line join
/// R1(v1,v2) ⋈ R2(v2,v3) ⋈ R3(v3,v4), Õ(N1·N3/(MB) + ΣN/B) I/Os
/// (Theorem 1). The relations must form a line (r1–r2 and r2–r3 each
/// share exactly one attribute, r1 and r3 none).
///
/// Heavy v2-values in R1 are handled by materializing R2|v2=a ⋈ R3 and
/// nested-looping R1|v2=a against it; light values are chunked through
/// memory with semijoined R2 and a sort-merge against R3 (§3).
void LineJoin3(const storage::Relation& r1, const storage::Relation& r2,
               const storage::Relation& r3, const EmitFn& emit,
               bool reduce_first = true);

/// LineJoin3 binding into an existing assignment (no reduction; used as a
/// building block by Algorithms 4–5 and the L6/L7 compositions).
void LineJoin3UnderAssignment(const storage::Relation& r1,
                              const storage::Relation& r2,
                              const storage::Relation& r3,
                              Assignment* assignment, const EmitFn& emit);

/// Variant that writes the results to disk as a relation over the result
/// schema of (r1, r2, r3), charging the output writes. Used by
/// Algorithms 4 and 5, which explicitly store these intermediates.
storage::Relation LineJoin3ToDisk(const storage::Relation& r1,
                                  const storage::Relation& r2,
                                  const storage::Relation& r3);

}  // namespace emjoin::core

#endif  // EMJOIN_CORE_LINE3_H_
