#ifndef EMJOIN_CORE_DISPATCH_H_
#define EMJOIN_CORE_DISPATCH_H_

#include <optional>
#include <string>
#include <vector>

#include "core/emit.h"
#include "extmem/status.h"
#include "query/hypergraph.h"
#include "storage/relation.h"

namespace emjoin::core {

/// If the query is a line join (arity-2 relations forming a path),
/// returns the edge ids in path order; otherwise nullopt.
std::optional<std::vector<query::EdgeId>> LineOrder(const query::JoinQuery& q);

/// The §6.2 balance condition for a line join with the given sizes (in
/// line order): for every interval [i, j] with j−i even,
///   N_i · N_{i+2} · … · N_j  ≥  N_{i+1} · N_{i+3} · … · N_{j−1}.
bool IsBalancedLine(const std::vector<TupleCount>& sizes);

/// Which algorithm JoinAuto selected, for reporting and tests.
struct AutoJoinReport {
  std::string algorithm;
  std::string reason;
};

/// Top-level optimal join: fully reduces the instance, classifies the
/// query, and routes per §6–§7:
///   - line joins n ≤ 4, or balanced per Theorems 5/6: Algorithm 2;
///   - unbalanced L5: Algorithm 4;
///   - unbalanced L6: nested loop around Algorithm 4 (§6.3);
///   - L7 with cover (1,1,0,1,0,1,1): R1/R7 nested loop around Alg. 4;
///   - L7 alternating cover, balance broken: Algorithm 5;
///   - L8: balanced split if one exists, else end-relation nested loop
///     around the inner L7 dispatch;
///   - everything else: Algorithm 2 with the cost-guided chooser.
AutoJoinReport JoinAuto(const std::vector<storage::Relation>& rels,
                        const EmitFn& emit);

/// JoinAuto with a typed result: the boundary where every failure mode
/// of a run surfaces as a Status instead of an abort or an escaping
/// exception — kInvalidInput for a non-Berge-acyclic query, and the
/// device-layer codes (kIoError, kDeviceFull, kBudgetExceeded,
/// kDataLoss) for runs under fault injection or budget enforcement.
/// Rows already emitted before a failure must be discarded by the
/// caller; only an ok() result means the emitted set is complete.
[[nodiscard]] extmem::Result<AutoJoinReport> TryJoinAuto(
    const std::vector<storage::Relation>& rels, const EmitFn& emit);

}  // namespace emjoin::core

#endif  // EMJOIN_CORE_DISPATCH_H_
