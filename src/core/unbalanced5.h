#ifndef EMJOIN_CORE_UNBALANCED5_H_
#define EMJOIN_CORE_UNBALANCED5_H_

#include "core/emit.h"
#include "storage/relation.h"

namespace emjoin::core {

/// Algorithm 4: LineJoinUnbalanced5 — optimal for a 5-relation line join
/// whose balance condition breaks (N1·N3·N5 < N2·N4, §6.3):
///
///   1. S = R1 ⋈ R2 ⋈ R3 (Algorithm 1), written to disk;
///   2. T = R3 ⋈ R4 ⋈ R5 (Algorithm 1), written to disk;
///   3. for each t ∈ R3 (sorted lexicographically by its two attributes),
///      nested-loop join S ⋉ t with T ⋉ t.
///
/// Õ(N1·N3·N5/(MB) + N1·N3/B + N3·N5/B + ΣN/B) I/Os.
/// Relations must form a line r1–r2–r3–r4–r5.
void LineJoinUnbalanced5(const storage::Relation& r1,
                         const storage::Relation& r2,
                         const storage::Relation& r3,
                         const storage::Relation& r4,
                         const storage::Relation& r5, const EmitFn& emit,
                         bool reduce_first = true);

/// Algorithm 4 binding into an existing assignment (no reduction); used
/// by the L6/L7 compositions.
void LineJoinUnbalanced5UnderAssignment(
    const storage::Relation& r1, const storage::Relation& r2,
    const storage::Relation& r3, const storage::Relation& r4,
    const storage::Relation& r5, Assignment* assignment, const EmitFn& emit);

}  // namespace emjoin::core

#endif  // EMJOIN_CORE_UNBALANCED5_H_
