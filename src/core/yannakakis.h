#ifndef EMJOIN_CORE_YANNAKAKIS_H_
#define EMJOIN_CORE_YANNAKAKIS_H_

#include <vector>

#include "core/emit.h"
#include "extmem/status.h"
#include "storage/relation.h"

namespace emjoin::core {

/// Statistics from a Yannakakis run, for the optimality-gap experiments.
struct YannakakisReport {
  /// Total tuples across all materialized intermediate results.
  std::uint64_t intermediate_tuples = 0;
};

/// The external-memory Yannakakis baseline (§1.2): fully reduce, then
/// perform a series of pairwise joins along a join tree, writing every
/// intermediate result to disk, and finally scan the last intermediate to
/// emit. Õ((ΣN + Σ|intermediate|)/B) I/Os — instance-optimal when results
/// must be written out, but worse than Algorithm 2 by up to a factor of M
/// in the emit model, which is what bench_yannakakis_gap demonstrates.
YannakakisReport YannakakisJoin(const std::vector<storage::Relation>& rels,
                                const EmitFn& emit, bool reduce_first = true);

/// YannakakisJoin with a typed result (see TryJoinAuto for the error
/// taxonomy and the partial-emission caveat).
[[nodiscard]] extmem::Result<YannakakisReport> TryYannakakisJoin(
    const std::vector<storage::Relation>& rels, const EmitFn& emit,
    bool reduce_first = true);

}  // namespace emjoin::core

#endif  // EMJOIN_CORE_YANNAKAKIS_H_
