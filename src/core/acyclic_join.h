#ifndef EMJOIN_CORE_ACYCLIC_JOIN_H_
#define EMJOIN_CORE_ACYCLIC_JOIN_H_

#include <vector>

#include "core/emit.h"
#include "gens/planner.h"
#include "storage/relation.h"

namespace emjoin::core {

/// Options for the AcyclicJoin executor.
struct AcyclicJoinOptions {
  /// Which leaf to peel at each recursive call (the paper's
  /// nondeterministic choice, Algorithm 2 line 11). Defaults to the
  /// cost-guided chooser, which realizes the effect of the paper's
  /// round-robin simulation of all branches.
  gens::LeafChooser leaf_chooser;

  /// Run the full reducer first (the paper assumes fully reduced
  /// instances). Disable only if the input is known reduced.
  bool reduce_first = true;
};

/// Algorithm 2: the worst-case I/O-optimal join for Berge-acyclic
/// queries in the emit model. Results are delivered as assignments over
/// MakeResultSchema(rels).
///
/// I/O cost (Theorem 3): Õ( min_{S ∈ GenS(Q)} max_{S∈S} Ψ(R, S) ) for the
/// best peeling branch.
void AcyclicJoin(const std::vector<storage::Relation>& rels,
                 const EmitFn& emit, const AcyclicJoinOptions& options = {});

/// Internal entry point used by Algorithm 5 and the L6/L7 reductions:
/// joins `rels` (already reduced) under an existing assignment/emit chain.
void AcyclicJoinUnderAssignment(const std::vector<storage::Relation>& rels,
                                Assignment* assignment, const EmitFn& emit,
                                const gens::LeafChooser& chooser);

}  // namespace emjoin::core

#endif  // EMJOIN_CORE_ACYCLIC_JOIN_H_
