#ifndef EMJOIN_CORE_EMIT_H_
#define EMJOIN_CORE_EMIT_H_

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "query/hypergraph.h"
#include "storage/relation.h"

namespace emjoin::core {

/// The emit model (§1.1): each join result is delivered to a callback
/// while all participating tuples are memory-resident; results are never
/// written to disk.
///
/// A join result is represented as an assignment of values to the query's
/// attributes, in the order given by the accompanying ResultSchema. With
/// set-semantics relations, result assignments are in bijection with
/// result combinations (each relation's participating tuple is the unique
/// tuple matching the assignment), so this is equivalent to the paper's
/// emit(t1, ..., tn) with all participating tuples identified.
using EmitFn = std::function<void(std::span<const Value>)>;

/// Attribute order of emitted assignments.
struct ResultSchema {
  std::vector<storage::AttrId> attrs;

  std::uint32_t PositionOf(storage::AttrId a) const {
    for (std::uint32_t i = 0; i < attrs.size(); ++i) {
      if (attrs[i] == a) return i;
    }
    return static_cast<std::uint32_t>(attrs.size());
  }
};

/// Result schema for a set of relations: every attribute, in first-seen
/// order.
ResultSchema MakeResultSchema(const std::vector<storage::Relation>& rels);

/// A mutable result assignment. Operators bind the physical tuples that
/// participate in a result, then hand `values()` to the EmitFn.
class Assignment {
 public:
  explicit Assignment(ResultSchema schema)
      : schema_(std::move(schema)), values_(schema_.attrs.size(), 0) {}

  const ResultSchema& schema() const { return schema_; }

  /// Binds every attribute of `phys` that occurs in the result schema to
  /// the corresponding value of tuple `t`.
  void Bind(const storage::Schema& phys, const Value* t) {
    for (std::uint32_t i = 0; i < phys.arity(); ++i) {
      const std::uint32_t pos = schema_.PositionOf(phys.attr(i));
      if (pos < values_.size()) values_[pos] = t[i];
    }
  }

  Value ValueOf(storage::AttrId a) const {
    return values_[schema_.PositionOf(a)];
  }

  std::span<const Value> values() const { return values_; }

 private:
  ResultSchema schema_;
  std::vector<Value> values_;
};

/// Convenience sink that counts results.
class CountingSink {
 public:
  EmitFn AsEmitFn() {
    return [this](std::span<const Value>) { ++count_; };
  }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

/// Ordered, deduplicating journal of emitted result rows — the *output
/// watermark* of the recovery layer (ROADMAP item 4). Operators under
/// fault injection (or an enforced budget) route their EmitFn through
/// JournaledEmit(journal, sink): a row reaching the journal for the
/// first time is recorded and forwarded; a row already journaled is
/// suppressed. Because set-semantics joins emit DISTINCT rows, every
/// duplicate arriving here is by construction a *replay artifact* — a
/// budget-shrink re-plan re-deriving rows it already delivered, or a
/// resumed query re-running a phase an earlier attempt completed — so
/// suppression restores exactly the uninterrupted output, bit-identically
/// and in first-emission order.
///
/// The journal is host-side state (like tracer buffers and the metrics
/// registry): it charges no device I/O, so fault-free golden counts are
/// untouched. QueryManifest (src/recover/) persists and reloads it.
class EmitJournal {
 public:
  EmitJournal() = default;

  /// Records `row`. Returns true when the row is new (caller should
  /// forward it), false when it was journaled before (replay artifact).
  bool Record(std::span<const Value> row);

  /// True when `row` is already journaled, without recording it.
  bool Contains(std::span<const Value> row) const;

  std::uint64_t rows() const { return rows_; }
  std::uint32_t width() const { return width_; }

  /// Order-sensitive FNV-1a hash over all journaled rows, in first-
  /// emission order. Two journals holding the same rows in the same
  /// order agree; the soak harness compares this against a baseline run.
  std::uint64_t hash() const;

  /// Re-emits every journaled row, in first-emission order, into `emit`.
  /// A resumed query calls this before running anything: the downstream
  /// sink sees the pre-crash prefix exactly as the first run produced it.
  void ReplayInto(const EmitFn& emit) const;

  /// Folds `other`'s rows into this journal, preserving `other`'s
  /// first-emission order for rows this journal has not seen (the same
  /// discipline as metrics::Registry::MergeFrom: the receiver keeps its
  /// own prefix, the donor appends). Used to merge per-shard journals in
  /// shard order.
  void MergeFrom(const EmitJournal& other);

  /// Serialization surface for QueryManifest: the flat row store in
  /// first-emission order.
  const std::vector<Value>& data() const { return data_; }

  /// Rebuilds the journal from a flat row store (width values per row).
  void Restore(std::uint32_t width, std::vector<Value> data);

 private:
  static std::uint64_t HashRow(std::span<const Value> row);
  /// Index of `row` in data_, or rows_ if absent.
  std::uint64_t FindRow(std::span<const Value> row) const;

  std::uint32_t width_ = 0;  // values per row; fixed by the first Record
  std::uint64_t rows_ = 0;
  std::vector<Value> data_;  // rows_ * width_ values, first-emission order
  // Hash -> indices of rows with that hash (collision chain). Keyed by
  // value, never by pointer, and iteration order is never observed —
  // fine under the determinism lint rule.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index_;
};

/// Wraps `sink` so rows are journaled in `journal` and duplicates are
/// suppressed (see EmitJournal). `journal` must outlive the returned
/// EmitFn.
EmitFn JournaledEmit(EmitJournal* journal, EmitFn sink);

/// True when this run can trip the budget and replay work (a fault
/// injector is attached, or the gauge enforces a limit): only then do
/// operators pay for an EmitJournal. Fault-free unguarded runs keep the
/// zero-overhead emit path — and their golden I/O counts — untouched.
inline bool NeedsEmitGuard(extmem::Device* dev) {
  return dev->fault_injector() != nullptr || dev->gauge().enforcing();
}

/// Scoped emit guard: wraps `emit` through a local journal when
/// NeedsEmitGuard(dev), otherwise aliases `emit` directly. Operators
/// construct one at entry and emit through `fn()`.
class GuardedEmit {
 public:
  GuardedEmit(extmem::Device* dev, const EmitFn& emit) : fn_(&emit) {
    if (NeedsEmitGuard(dev)) {
      journaled_ = JournaledEmit(&journal_, emit);
      fn_ = &journaled_;
    }
  }

  const EmitFn& fn() const { return *fn_; }

 private:
  EmitJournal journal_;
  EmitFn journaled_;
  const EmitFn* fn_;
};

/// Convenience sink that materializes results (tests / small instances).
class CollectingSink {
 public:
  EmitFn AsEmitFn() {
    return [this](std::span<const Value> row) {
      results_.emplace_back(row.begin(), row.end());
    };
  }
  std::vector<std::vector<Value>>& results() { return results_; }

 private:
  std::vector<std::vector<Value>> results_;
};

}  // namespace emjoin::core

#endif  // EMJOIN_CORE_EMIT_H_
