#ifndef EMJOIN_CORE_EMIT_H_
#define EMJOIN_CORE_EMIT_H_

#include <functional>
#include <span>
#include <vector>

#include "query/hypergraph.h"
#include "storage/relation.h"

namespace emjoin::core {

/// The emit model (§1.1): each join result is delivered to a callback
/// while all participating tuples are memory-resident; results are never
/// written to disk.
///
/// A join result is represented as an assignment of values to the query's
/// attributes, in the order given by the accompanying ResultSchema. With
/// set-semantics relations, result assignments are in bijection with
/// result combinations (each relation's participating tuple is the unique
/// tuple matching the assignment), so this is equivalent to the paper's
/// emit(t1, ..., tn) with all participating tuples identified.
using EmitFn = std::function<void(std::span<const Value>)>;

/// Attribute order of emitted assignments.
struct ResultSchema {
  std::vector<storage::AttrId> attrs;

  std::uint32_t PositionOf(storage::AttrId a) const {
    for (std::uint32_t i = 0; i < attrs.size(); ++i) {
      if (attrs[i] == a) return i;
    }
    return static_cast<std::uint32_t>(attrs.size());
  }
};

/// Result schema for a set of relations: every attribute, in first-seen
/// order.
ResultSchema MakeResultSchema(const std::vector<storage::Relation>& rels);

/// A mutable result assignment. Operators bind the physical tuples that
/// participate in a result, then hand `values()` to the EmitFn.
class Assignment {
 public:
  explicit Assignment(ResultSchema schema)
      : schema_(std::move(schema)), values_(schema_.attrs.size(), 0) {}

  const ResultSchema& schema() const { return schema_; }

  /// Binds every attribute of `phys` that occurs in the result schema to
  /// the corresponding value of tuple `t`.
  void Bind(const storage::Schema& phys, const Value* t) {
    for (std::uint32_t i = 0; i < phys.arity(); ++i) {
      const std::uint32_t pos = schema_.PositionOf(phys.attr(i));
      if (pos < values_.size()) values_[pos] = t[i];
    }
  }

  Value ValueOf(storage::AttrId a) const {
    return values_[schema_.PositionOf(a)];
  }

  std::span<const Value> values() const { return values_; }

 private:
  ResultSchema schema_;
  std::vector<Value> values_;
};

/// Convenience sink that counts results.
class CountingSink {
 public:
  EmitFn AsEmitFn() {
    return [this](std::span<const Value>) { ++count_; };
  }
  std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

/// Convenience sink that materializes results (tests / small instances).
class CollectingSink {
 public:
  EmitFn AsEmitFn() {
    return [this](std::span<const Value> row) {
      results_.emplace_back(row.begin(), row.end());
    };
  }
  std::vector<std::vector<Value>>& results() { return results_; }

 private:
  std::vector<std::vector<Value>> results_;
};

}  // namespace emjoin::core

#endif  // EMJOIN_CORE_EMIT_H_
