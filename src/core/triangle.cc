#include "core/triangle.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "core/pairwise.h"
#include "extmem/sorter.h"
#include "trace/tracer.h"

namespace emjoin::core {

namespace {

using storage::AttrId;
using storage::Relation;
using storage::Schema;

AttrId SharedAttr(const Relation& a, const Relation& b) {
  const std::vector<AttrId> common = a.schema().CommonAttrs(b.schema());
  assert(common.size() == 1);
  return common.front();
}

// Mixes a value into a group id (splitmix-style).
std::uint64_t GroupOf(Value v, std::uint64_t p) {
  std::uint64_t x = v + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return (x ^ (x >> 31)) % p;
}

// A relation re-written as (g_x, g_y, x, y), sorted by (g_x, g_y), plus
// the start offset of every group pair. The boundary index has p^2 + 1
// entries and is treated as in-memory metadata (requires p^2 = O(N/M)
// to fit in memory — the usual tall-cache shape M^2 >= c*N).
struct PartitionedRelation {
  Relation sorted;                     // width 4: (g_x, g_y, x, y)
  std::vector<TupleCount> start;       // size p*p + 1
  std::uint64_t p = 1;

  extmem::FileRange GroupRange(std::uint64_t gx, std::uint64_t gy) const {
    const std::size_t idx = gx * p + gy;
    return sorted.range().Sub(start[idx], start[idx + 1]);
  }
};

PartitionedRelation Partition(const Relation& rel, std::uint64_t p) {
  extmem::Device* dev = rel.device();
  trace::Span span(dev, "triangle.partition");
  PartitionedRelation out;
  out.p = p;

  // Augment with group columns (one charged pass read + write).
  extmem::FilePtr augmented = dev->NewFile(4);
  {
    extmem::FileWriter writer(augmented);
    extmem::FileReader reader(rel.range());
    while (!reader.Done()) {
      const std::span<const Value> block = reader.NextBlock();
      for (const Value* t = block.data(); t != block.data() + block.size();
           t += 2) {
        const Value row[4] = {GroupOf(t[0], p), GroupOf(t[1], p), t[0], t[1]};
        writer.Append(row);
      }
    }
    writer.Finish();
  }

  const std::uint32_t keys[2] = {0, 1};
  extmem::FilePtr sorted =
      extmem::ExternalSort(extmem::FileRange(augmented), keys);
  out.sorted = Relation(Schema({1000, 1001, 1002, 1003}),
                        extmem::FileRange(sorted));

  // Boundary index: one charged scan.
  out.start.assign(p * p + 1, 0);
  {
    extmem::FileReader reader(out.sorted.range());
    TupleCount i = 0;
    std::size_t next_bucket = 0;
    while (!reader.Done()) {
      const std::span<const Value> block = reader.NextBlock();
      for (const Value* t = block.data(); t != block.data() + block.size();
           t += 4) {
        const std::size_t bucket =
            static_cast<std::size_t>(t[0] * p + t[1]);
        while (next_bucket <= bucket) out.start[next_bucket++] = i;
        ++i;
      }
    }
    while (next_bucket <= p * p) out.start[next_bucket++] = i;
  }
  return out;
}

struct PairHash {
  std::size_t operator()(const std::pair<Value, Value>& x) const {
    return std::hash<Value>()(x.first) * 0x9e3779b97f4a7c15ull ^
           std::hash<Value>()(x.second);
  }
};

// Loads an augmented group range into memory (charged), capped chunks.
class AugmentedChunks {
 public:
  AugmentedChunks(extmem::FileRange range, extmem::Device* dev,
                  TupleCount cap)
      : reader_(std::move(range)), dev_(dev), cap_(cap) {}

  // Returns tuples as (x, y) pairs; false when exhausted.
  bool Next(std::vector<std::pair<Value, Value>>* out,
            extmem::MemoryReservation* res) {
    if (reader_.Done()) return false;
    out->clear();
    while (!reader_.Done() && out->size() < cap_) {
      const Value* t = reader_.Next();
      out->push_back({t[2], t[3]});
    }
    res->Resize(out->size());
    return true;
  }

 private:
  extmem::FileReader reader_;
  extmem::Device* dev_;
  TupleCount cap_;
};

}  // namespace

void TriangleJoin(const Relation& r1, const Relation& r2, const Relation& r3,
                  const EmitFn& emit) {
  extmem::Device* dev = r1.device();
  trace::Span span(dev, "triangle");
  const TupleCount m = dev->M();

  // Attribute roles: r1 = (a, b), r2 = (a, c), r3 = (b, c).
  const AttrId a = SharedAttr(r1, r2);
  const AttrId b = SharedAttr(r1, r3);
  const AttrId c = SharedAttr(r2, r3);
  assert(a != b && b != c && a != c);

  // Column order within each relation: ensure (a,b), (a,c), (b,c).
  auto oriented = [&](const Relation& rel, AttrId first,
                      AttrId second) -> Relation {
    if (rel.schema().attr(0) == first && rel.schema().attr(1) == second) {
      return rel;
    }
    // Swap the two columns (one charged pass).
    extmem::FilePtr f = rel.device()->NewFile(2);
    extmem::FileWriter writer(f);
    extmem::FileReader reader(rel.range());
    while (!reader.Done()) {
      const std::span<const Value> block = reader.NextBlock();
      for (const Value* t = block.data(); t != block.data() + block.size();
           t += 2) {
        const Value row[2] = {t[1], t[0]};
        writer.Append(row);
      }
    }
    writer.Finish();
    return Relation(Schema({first, second}), extmem::FileRange(f));
  };
  const Relation s1 = oriented(r1, a, b);
  const Relation s2 = oriented(r2, a, c);
  const Relation s3 = oriented(r3, b, c);

  const TupleCount n =
      std::max(std::max(s1.size(), s2.size()), s3.size());
  const std::uint64_t p = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(std::sqrt(3.0 * static_cast<double>(n) / m))));

  const PartitionedRelation p1 = Partition(s1, p);
  const PartitionedRelation p2 = Partition(s2, p);
  const PartitionedRelation p3 = Partition(s3, p);

  Assignment assignment(MakeResultSchema({r1, r2, r3}));
  const Schema sch1({a, b}), sch2({a, c}), sch3({b, c});
  const TupleCount cap = std::max<TupleCount>(1, m / 3);

  for (std::uint64_t ga = 0; ga < p; ++ga) {
    for (std::uint64_t gb = 0; gb < p; ++gb) {
      const extmem::FileRange sub1 = p1.GroupRange(ga, gb);
      if (sub1.empty()) continue;
      for (std::uint64_t gc = 0; gc < p; ++gc) {
        const extmem::FileRange sub2 = p2.GroupRange(ga, gc);
        if (sub2.empty()) continue;
        const extmem::FileRange sub3 = p3.GroupRange(gb, gc);
        if (sub3.empty()) continue;
        span.Count("triangle_cells_joined", 1);

        // Chunked in-memory triple join: heavy groups degrade to more
        // chunk rounds instead of overflowing memory.
        AugmentedChunks chunks1(sub1, dev, cap);
        std::vector<std::pair<Value, Value>> t1;
        extmem::MemoryReservation res1(&dev->gauge(), 0);
        while (chunks1.Next(&t1, &res1)) {
          std::unordered_map<Value, std::vector<Value>> a_by_b;
          for (const auto& [va, vb] : t1) a_by_b[vb].push_back(va);

          AugmentedChunks chunks2(sub2, dev, cap);
          std::vector<std::pair<Value, Value>> t2;
          extmem::MemoryReservation res2(&dev->gauge(), 0);
          while (chunks2.Next(&t2, &res2)) {
            std::unordered_set<std::pair<Value, Value>, PairHash> ac_set;
            std::unordered_map<Value, bool> c_present;
            for (const auto& [va, vc] : t2) {
              ac_set.insert({va, vc});
              c_present[vc] = true;
            }

            extmem::FileReader reader3(sub3);
            while (!reader3.Done()) {
              const std::span<const Value> block3 = reader3.NextBlock();
              for (const Value* t = block3.data();
                   t != block3.data() + block3.size(); t += 4) {
                const Value vb = t[2], vc = t[3];
                const auto it = a_by_b.find(vb);
                if (it == a_by_b.end() || !c_present.count(vc)) continue;
                for (Value va : it->second) {
                  if (!ac_set.count({va, vc})) continue;
                  const Value row1[2] = {va, vb};
                  const Value row2[2] = {va, vc};
                  const Value row3[2] = {vb, vc};
                  assignment.Bind(sch1, row1);
                  assignment.Bind(sch2, row2);
                  assignment.Bind(sch3, row3);
                  emit(assignment.values());
                }
              }
            }
          }
        }
      }
    }
  }
}

void TriangleViaMaterialization(const Relation& r1, const Relation& r2,
                                const Relation& r3, const EmitFn& emit) {
  // R1 ⋈ R2 on their shared attribute, written to disk (up to N1*N2/|dom|
  // tuples), then merge-filtered against R3 on the two remaining
  // attributes. Õ((|R1⋈R2| + ΣN)/B) — the cost of any pairwise plan that
  // materializes its intermediate.
  const AttrId b = SharedAttr(r1, r3);
  const AttrId c = SharedAttr(r2, r3);

  trace::Span span(r1.device(), "triangle.via_materialization");
  const Relation joined = JoinToDisk(r1, r2);

  auto sort_lex = [](const Relation& rel, AttrId k1, AttrId k2) {
    const std::uint32_t keys[2] = {*rel.schema().PositionOf(k1),
                                   *rel.schema().PositionOf(k2)};
    extmem::FilePtr f = extmem::ExternalSort(rel.range(), keys);
    return Relation(rel.schema(), extmem::FileRange(f), k1);
  };
  const Relation js = sort_lex(joined, b, c);
  const Relation r3s = sort_lex(r3, b, c);

  const std::uint32_t jb = *js.schema().PositionOf(b);
  const std::uint32_t jc = *js.schema().PositionOf(c);
  const std::uint32_t tb = *r3s.schema().PositionOf(b);
  const std::uint32_t tc = *r3s.schema().PositionOf(c);

  Assignment assignment(MakeResultSchema({r1, r2, r3}));
  extmem::FileReader jr(js.range());
  extmem::FileReader tr(r3s.range());
  // R3 has at most one tuple per (b, c); advance it lazily.
  while (!jr.Done()) {
    const Value* row = jr.Next();
    const Value key[2] = {row[jb], row[jc]};
    while (!tr.Done() && (tr.Peek()[tb] < key[0] ||
                          (tr.Peek()[tb] == key[0] &&
                           tr.Peek()[tc] < key[1]))) {
      tr.Next();
    }
    if (tr.Done()) break;
    const Value* t3 = tr.Peek();
    if (t3[tb] == key[0] && t3[tc] == key[1]) {
      assignment.Bind(js.schema(), row);
      assignment.Bind(r3s.schema(), t3);
      emit(assignment.values());
    }
  }
}

}  // namespace emjoin::core
