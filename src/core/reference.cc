#include "core/reference.h"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>

namespace emjoin::core {

namespace {

// Backtracks over relations, indexing each relation by its first attribute
// already bound when reached (simple but adequate for an oracle).
void Enumerate(const std::vector<storage::Relation>& rels,
               const ResultSchema& schema,
               const std::function<void(std::span<const Value>)>& yield) {
  std::vector<Value> assignment(schema.attrs.size(), 0);
  std::vector<bool> bound(schema.attrs.size(), false);

  std::function<void(std::size_t)> recurse = [&](std::size_t level) {
    if (level == rels.size()) {
      yield(assignment);
      return;
    }
    const storage::Relation& rel = rels[level];
    const storage::Schema& phys = rel.schema();
    const extmem::FileRange& range = rel.range();
    for (TupleCount i = 0; i < range.size(); ++i) {
      const Value* t = range.RawTuple(i);
      bool compatible = true;
      std::vector<std::uint32_t> newly;
      for (std::uint32_t c = 0; c < phys.arity(); ++c) {
        const std::uint32_t pos = schema.PositionOf(phys.attr(c));
        if (!bound[pos]) {
          assignment[pos] = t[c];
          bound[pos] = true;
          newly.push_back(pos);
        } else if (assignment[pos] != t[c]) {
          compatible = false;
          break;
        }
      }
      if (compatible) recurse(level + 1);
      for (std::uint32_t pos : newly) bound[pos] = false;
    }
  };
  recurse(0);
}

}  // namespace

std::vector<std::vector<Value>> ReferenceJoin(
    const std::vector<storage::Relation>& rels) {
  const ResultSchema schema = MakeResultSchema(rels);
  std::vector<std::vector<Value>> out;
  Enumerate(rels, schema, [&](std::span<const Value> row) {
    out.emplace_back(row.begin(), row.end());
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t ReferenceJoinCount(const std::vector<storage::Relation>& rels) {
  const ResultSchema schema = MakeResultSchema(rels);
  std::uint64_t count = 0;
  Enumerate(rels, schema, [&](std::span<const Value>) { ++count; });
  return count;
}

}  // namespace emjoin::core
