#include "core/line3.h"

#include <cassert>

#include "core/pairwise.h"
#include "core/reduce.h"
#include "extmem/status.h"
#include "trace/tracer.h"

namespace emjoin::core {

namespace {

storage::AttrId SharedAttr(const storage::Relation& a,
                           const storage::Relation& b) {
  const std::vector<storage::AttrId> common =
      a.schema().CommonAttrs(b.schema());
  assert(common.size() == 1);
  return common.front();
}

}  // namespace

void LineJoin3UnderAssignment(const storage::Relation& r1_in,
                              const storage::Relation& r2_in,
                              const storage::Relation& r3_in,
                              Assignment* assignment, const EmitFn& emit) {
  assert(r1_in.schema().CommonAttrs(r3_in.schema()).empty() &&
         "r1 and r3 must not share an attribute in a line join");
  const storage::AttrId v2 = SharedAttr(r1_in, r2_in);
  const storage::AttrId v3 = SharedAttr(r2_in, r3_in);
  extmem::Device* dev = r1_in.device();
  trace::Span span(dev, "line3");
  GuardedEmit guarded(dev, emit);
  const TupleCount m = dev->M();

  // Lines 1–3: sort R1, R2 by v2; R3 by v3.
  const storage::Relation r1 = r1_in.SortedBy(v2);
  const storage::Relation r2 = r2_in.SortedBy(v2);
  const storage::Relation r3 = r3_in.SortedBy(v3);
  const std::uint32_t r1_v2col = *r1.schema().PositionOf(v2);

  // Lines 4–7: heavy values of v2 in R1.
  for (storage::GroupCursor cur(r1, v2); !cur.Done(); cur.Advance()) {
    if (cur.group().size() < m) continue;
    trace::Span heavy_span(dev, "line3.heavy");
    heavy_span.Count("heavy_values", 1);
    const Value a = cur.value();
    // Line 5: W = R2|v2=a ⋈ R3, merge join, stored on disk. All tuples of
    // R2|v2=a share v2=a, so their v3 values are distinct (set semantics).
    const storage::Relation r2a = r2.EqualRange(v2, a);
    const storage::Relation w = JoinToDisk(r2a, r3);
    // Line 6: R1|v2=a ⋈ W by nested-loop join.
    BlockNestedLoopJoin(cur.group(), w, assignment, guarded.fn());
  }

  // Lines 8–12: light values, one memory chunk at a time. The chunk body
  // runs through ProcessChunkWithReplan: a budget trip mid-chunk is
  // re-processed in halved sub-chunks (each R1 tuple contributes its
  // results independently, so sub-chunking changes order, never the set;
  // the GuardedEmit journal suppresses any re-derived prefix).
  storage::MemChunk chunk(r1.schema(), dev);
  const auto process = [&](const storage::MemChunk& part) {
    trace::Span light_span(dev, "line3.light");
    light_span.Count("light_chunks", 1);
    const std::vector<Value> vals = part.DistinctValues(r1_v2col);
    // Line 9: semijoin R2(M1) = R2 ⋉ M1 (one scan; R1, R2 sorted by v2).
    const storage::Relation r2m = SemiJoinValues(r2, v2, vals);
    // Line 10: sort-merge R2(M1) ⋈ R3; no value of v3 is heavy enough to
    // matter (≤ M repetitions), the instance-optimal 2-relation join
    // handles either way.
    SortMergeJoin(r2m, r3, assignment, [&](std::span<const Value>) {
      // Lines 11–12: combine with the matching R1 tuples in memory.
      const Value val = assignment->ValueOf(v2);
      part.ForEachMatch(r1_v2col, val, [&](storage::TupleRef t) {
        assignment->Bind(r1.schema(), t.data());
        guarded.fn()(assignment->values());
      });
    });
  };
  auto flush = [&] {
    if (chunk.empty()) return;
    storage::ProcessChunkWithReplan(dev, &chunk, r1.schema(), process);
    chunk.Clear();
  };

  for (storage::GroupCursor cur(r1, v2); !cur.Done(); cur.Advance()) {
    const storage::Relation group = cur.group();
    if (group.size() >= m) continue;
    extmem::FileReader reader(group.range());
    while (!reader.Done()) {
      auto trip = extmem::BudgetTripOf(
          [&] { chunk.AppendBlock(reader.NextBlock()); });
      if (trip.has_value()) {
        // The block's tuples are in the chunk (append lands before the
        // reservation check trips) — drain it and keep accumulating.
        if (chunk.empty()) extmem::ThrowStatus(*std::move(trip));
        flush();
      }
    }
    // Re-polled per group: a shrink lands here as an earlier flush.
    if (chunk.size() >= dev->DegradedChunkCap(m)) flush();
  }
  flush();
}

void LineJoin3(const storage::Relation& r1, const storage::Relation& r2,
               const storage::Relation& r3, const EmitFn& emit,
               bool reduce_first) {
  std::vector<storage::Relation> rels = {r1, r2, r3};
  if (reduce_first) rels = FullyReduce(rels);
  Assignment assignment(MakeResultSchema({r1, r2, r3}));
  LineJoin3UnderAssignment(rels[0], rels[1], rels[2], &assignment, emit);
}

storage::Relation LineJoin3ToDisk(const storage::Relation& r1,
                                  const storage::Relation& r2,
                                  const storage::Relation& r3) {
  const ResultSchema rs = MakeResultSchema({r1, r2, r3});
  const storage::Schema out_schema(rs.attrs);
  extmem::Device* dev = r1.device();
  extmem::FilePtr out = dev->NewFile(out_schema.arity());
  extmem::FileWriter writer(out);
  Assignment assignment(rs);
  LineJoin3UnderAssignment(
      r1, r2, r3, &assignment,
      [&](std::span<const Value> row) { writer.Append(row); });
  writer.Finish();
  return storage::Relation(out_schema, extmem::FileRange(out));
}

}  // namespace emjoin::core
