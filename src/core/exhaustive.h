#ifndef EMJOIN_CORE_EXHAUSTIVE_H_
#define EMJOIN_CORE_EXHAUSTIVE_H_

#include <map>
#include <string>
#include <vector>

#include "core/emit.h"
#include "storage/relation.h"

namespace emjoin::core {

/// One deterministic peel strategy of Algorithm 2 and its measured cost.
struct BranchResult {
  /// Canonical live-query shape -> chosen candidate index. A strategy is
  /// uniform: every recursive call whose live query has the same shape
  /// makes the same choice, mirroring how a GenS branch fixes the peel
  /// per sub-query.
  std::map<std::string, std::size_t> script;
  std::uint64_t ios = 0;
  std::uint64_t results = 0;
};

/// The literal counterpart of the paper's round-robin simulation of the
/// nondeterministic Algorithm 2: enumerates every uniform peel strategy
/// (discovering choice points on the fly), runs the join once per
/// strategy, and returns each branch's exact I/O cost. The minimum entry
/// is the cost the round-robin simulation attains up to the constant
/// interleaving factor. `max_branches` caps the enumeration.
std::vector<BranchResult> ExhaustivePeelSearch(
    const std::vector<storage::Relation>& rels,
    std::size_t max_branches = 64);

}  // namespace emjoin::core

#endif  // EMJOIN_CORE_EXHAUSTIVE_H_
