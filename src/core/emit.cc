#include "core/emit.h"

namespace emjoin::core {

ResultSchema MakeResultSchema(const std::vector<storage::Relation>& rels) {
  ResultSchema schema;
  for (const storage::Relation& r : rels) {
    for (storage::AttrId a : r.schema().attrs()) {
      if (schema.PositionOf(a) == schema.attrs.size()) {
        schema.attrs.push_back(a);
      }
    }
  }
  return schema;
}

}  // namespace emjoin::core
