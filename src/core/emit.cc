#include "core/emit.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace emjoin::core {

namespace {
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t FnvMix(std::uint64_t h, std::uint64_t v) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (byte * 8)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}
}  // namespace

std::uint64_t EmitJournal::HashRow(std::span<const Value> row) {
  std::uint64_t h = kFnvOffset;
  for (const Value v : row) h = FnvMix(h, static_cast<std::uint64_t>(v));
  return h;
}

std::uint64_t EmitJournal::FindRow(std::span<const Value> row) const {
  const auto it = index_.find(HashRow(row));
  if (it == index_.end()) return rows_;
  for (const std::uint32_t idx : it->second) {
    const Value* stored = data_.data() + static_cast<std::size_t>(idx) * width_;
    if (std::equal(row.begin(), row.end(), stored)) return idx;
  }
  return rows_;
}

bool EmitJournal::Record(std::span<const Value> row) {
  if (rows_ == 0 && width_ == 0) width_ = static_cast<std::uint32_t>(row.size());
  assert(row.size() == width_);
  if (FindRow(row) != rows_) return false;
  index_[HashRow(row)].push_back(static_cast<std::uint32_t>(rows_));
  data_.insert(data_.end(), row.begin(), row.end());
  ++rows_;
  return true;
}

bool EmitJournal::Contains(std::span<const Value> row) const {
  if (rows_ == 0) return false;
  if (row.size() != width_) return false;
  return FindRow(row) != rows_;
}

std::uint64_t EmitJournal::hash() const {
  std::uint64_t h = kFnvOffset;
  for (const Value v : data_) h = FnvMix(h, static_cast<std::uint64_t>(v));
  // Mix in the row count so journals of different shapes with equal flat
  // contents (e.g. width 2 x 3 rows vs width 3 x 2 rows) do not collide.
  return FnvMix(h, rows_);
}

void EmitJournal::ReplayInto(const EmitFn& emit) const {
  for (std::uint64_t i = 0; i < rows_; ++i) {
    emit(std::span<const Value>(
        data_.data() + static_cast<std::size_t>(i) * width_, width_));
  }
}

void EmitJournal::MergeFrom(const EmitJournal& other) {
  for (std::uint64_t i = 0; i < other.rows_; ++i) {
    static_cast<void>(Record(std::span<const Value>(
        other.data_.data() + static_cast<std::size_t>(i) * other.width_,
        other.width_)));
  }
}

void EmitJournal::Restore(std::uint32_t width, std::vector<Value> data) {
  assert(width == 0 || data.size() % width == 0);
  width_ = width;
  data_ = std::move(data);
  rows_ = width == 0 ? 0 : data_.size() / width;
  index_.clear();
  for (std::uint64_t i = 0; i < rows_; ++i) {
    const std::span<const Value> row(
        data_.data() + static_cast<std::size_t>(i) * width_, width_);
    index_[HashRow(row)].push_back(static_cast<std::uint32_t>(i));
  }
}

EmitFn JournaledEmit(EmitJournal* journal, EmitFn sink) {
  return [journal, sink = std::move(sink)](std::span<const Value> row) {
    if (journal->Record(row)) sink(row);
  };
}

ResultSchema MakeResultSchema(const std::vector<storage::Relation>& rels) {
  ResultSchema schema;
  for (const storage::Relation& r : rels) {
    for (storage::AttrId a : r.schema().attrs()) {
      if (schema.PositionOf(a) == schema.attrs.size()) {
        schema.attrs.push_back(a);
      }
    }
  }
  return schema;
}

}  // namespace emjoin::core
