#ifndef EMJOIN_CORE_REFERENCE_H_
#define EMJOIN_CORE_REFERENCE_H_

#include <vector>

#include "core/emit.h"
#include "storage/relation.h"

namespace emjoin::core {

/// In-memory reference join: enumerates every result of the natural join
/// of `rels` (any query shape, cyclic or not) by backtracking, with zero
/// I/O accounting. Test/verification oracle only.
///
/// Returns the results as assignments over MakeResultSchema(rels), sorted
/// lexicographically for stable comparison.
std::vector<std::vector<Value>> ReferenceJoin(
    const std::vector<storage::Relation>& rels);

/// Number of results of the natural join (reference oracle).
std::uint64_t ReferenceJoinCount(const std::vector<storage::Relation>& rels);

}  // namespace emjoin::core

#endif  // EMJOIN_CORE_REFERENCE_H_
