#include "core/lw.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "extmem/sorter.h"
#include "trace/tracer.h"

namespace emjoin::core {

namespace {

using storage::AttrId;
using storage::Relation;
using storage::Schema;

std::uint64_t GroupOf(Value v, std::uint64_t p) {
  std::uint64_t x = v + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return (x ^ (x >> 31)) % p;
}

// Hash for small value vectors (projection keys).
struct VecHash {
  std::size_t operator()(const std::vector<Value>& v) const {
    std::size_t h = 0x9e3779b97f4a7c15ull;
    for (Value x : v) {
      h ^= std::hash<Value>()(x) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

// A relation augmented with one group column per attribute, sorted by
// the group columns, plus the cell start index (p^k + 1 entries for
// arity k). Metadata is in-memory (requires p^k = O(ΣN/M)).
struct PartitionedRelation {
  Relation sorted;  // width 2k: (g_1..g_k, x_1..x_k)
  std::vector<TupleCount> start;
  std::uint64_t p = 1;
  std::uint32_t arity = 0;

  extmem::FileRange CellRange(const std::vector<std::uint64_t>& gs) const {
    std::size_t idx = 0;
    for (std::uint64_t g : gs) idx = idx * p + g;
    return sorted.range().Sub(start[idx], start[idx + 1]);
  }
};

PartitionedRelation Partition(const Relation& rel, std::uint64_t p) {
  extmem::Device* dev = rel.device();
  trace::Span span(dev, "lw.partition");
  const std::uint32_t k = rel.schema().arity();
  PartitionedRelation out;
  out.p = p;
  out.arity = k;

  extmem::FilePtr augmented = dev->NewFile(2 * k);
  {
    extmem::FileWriter writer(augmented);
    extmem::FileReader reader(rel.range());
    std::vector<Value> row(2 * k);
    while (!reader.Done()) {
      const std::span<const Value> block = reader.NextBlock();
      for (const Value* t = block.data(); t != block.data() + block.size();
           t += k) {
        for (std::uint32_t i = 0; i < k; ++i) {
          row[i] = GroupOf(t[i], p);
          row[k + i] = t[i];
        }
        writer.Append(row);
      }
    }
    writer.Finish();
  }

  std::vector<std::uint32_t> keys(k);
  for (std::uint32_t i = 0; i < k; ++i) keys[i] = i;
  extmem::FilePtr sorted =
      extmem::ExternalSort(extmem::FileRange(augmented), keys);
  std::vector<AttrId> aug_attrs;
  for (std::uint32_t i = 0; i < 2 * k; ++i) aug_attrs.push_back(10000 + i);
  out.sorted = Relation(Schema(aug_attrs), extmem::FileRange(sorted));

  std::size_t cells = 1;
  for (std::uint32_t i = 0; i < k; ++i) cells *= p;
  out.start.assign(cells + 1, 0);
  {
    extmem::FileReader reader(out.sorted.range());
    TupleCount i = 0;
    std::size_t next_cell = 0;
    while (!reader.Done()) {
      const std::span<const Value> block = reader.NextBlock();
      for (const Value* t = block.data(); t != block.data() + block.size();
           t += 2 * k) {
        std::size_t cell = 0;
        for (std::uint32_t j = 0; j < k; ++j) {
          cell = cell * p + static_cast<std::size_t>(t[j]);
        }
        while (next_cell <= cell) out.start[next_cell++] = i;
        ++i;
      }
    }
    while (next_cell <= cells) out.start[next_cell++] = i;
  }
  return out;
}

}  // namespace

bool IsLoomisWhitney(const std::vector<storage::Relation>& rels) {
  const std::size_t n = rels.size();
  if (n < 3) return false;
  // Collect the attribute universe.
  std::vector<AttrId> universe;
  for (const Relation& r : rels) {
    for (AttrId a : r.schema().attrs()) {
      if (std::find(universe.begin(), universe.end(), a) == universe.end()) {
        universe.push_back(a);
      }
    }
  }
  if (universe.size() != n) return false;
  // Each relation must miss exactly one distinct attribute.
  std::vector<AttrId> missing;
  for (const Relation& r : rels) {
    if (r.schema().arity() != n - 1) return false;
    for (AttrId a : universe) {
      if (!r.schema().Contains(a)) missing.push_back(a);
    }
  }
  if (missing.size() != n) return false;
  std::sort(missing.begin(), missing.end());
  return std::adjacent_find(missing.begin(), missing.end()) ==
         missing.end();
}

void LoomisWhitneyJoin(const std::vector<storage::Relation>& rels,
                       const EmitFn& emit) {
  assert(IsLoomisWhitney(rels));
  extmem::Device* dev = rels.front().device();
  trace::Span span(dev, "lw");
  const std::size_t n = rels.size();

  // Attribute universe in a fixed order v_0..v_{n-1}.
  std::vector<AttrId> universe;
  for (const Relation& r : rels) {
    for (AttrId a : r.schema().attrs()) {
      if (std::find(universe.begin(), universe.end(), a) == universe.end()) {
        universe.push_back(a);
      }
    }
  }
  auto attr_index = [&](AttrId a) {
    return static_cast<std::size_t>(
        std::find(universe.begin(), universe.end(), a) - universe.begin());
  };

  TupleCount max_n = 0;
  for (const Relation& r : rels) max_n = std::max(max_n, r.size());
  const double target = static_cast<double>(n) *
                        static_cast<double>(max_n) / dev->M();
  const std::uint64_t p = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(std::pow(target, 1.0 / (n - 1)))));

  std::vector<PartitionedRelation> parts;
  parts.reserve(n);
  for (const Relation& r : rels) parts.push_back(Partition(r, p));

  Assignment assignment(MakeResultSchema(rels));

  // Enumerate group assignments (g_0..g_{n-1}) odometer-style.
  std::vector<std::uint64_t> gs(n, 0);
  std::vector<std::vector<std::vector<Value>>> cell(n);  // tuples per rel
  for (;;) {
    // Load each relation's cell; groups in the relation's column order.
    bool any_empty = false;
    TupleCount total = 0;
    for (std::size_t i = 0; i < n && !any_empty; ++i) {
      std::vector<std::uint64_t> rel_gs;
      for (AttrId a : rels[i].schema().attrs()) {
        rel_gs.push_back(gs[attr_index(a)]);
      }
      const extmem::FileRange range = parts[i].CellRange(rel_gs);
      if (range.empty()) any_empty = true;
      total += range.size();
    }

    if (!any_empty) {
      span.Count("lw_cells_joined", 1);
      extmem::MemoryReservation res(&dev->gauge(), 0);
      TupleCount loaded = 0;
      const std::uint32_t k = static_cast<std::uint32_t>(n - 1);
      for (std::size_t i = 0; i < n; ++i) {
        cell[i].clear();
        std::vector<std::uint64_t> rel_gs;
        for (AttrId a : rels[i].schema().attrs()) {
          rel_gs.push_back(gs[attr_index(a)]);
        }
        extmem::FileReader reader(parts[i].CellRange(rel_gs));
        while (!reader.Done()) {
          const std::span<const Value> block = reader.NextBlock();
          for (const Value* t = block.data(); t != block.data() + block.size();
               t += 2 * k) {
            cell[i].emplace_back(t + k, t + 2 * k);  // original values
            ++loaded;
          }
        }
      }
      res.Resize(loaded);

      // In-memory cell join: enumerate rel 0's tuples (binding all
      // attributes but v_miss0), look up v_miss0 candidates in rel 1 by
      // its shared projection, then verify membership in rels 2..n-1.
      // Indexes keyed by the relation's attributes shared with the
      // already-bound set.
      std::vector<Value> bound(universe.size(), 0);

      // Relation 1 contains miss0 (it only misses its own attribute);
      // index it by its other attributes — all bound once a rel-0 tuple
      // is fixed — mapping to the candidate miss0 values.
      AttrId miss0 = 0;
      for (AttrId a : universe) {
        if (!rels[0].schema().Contains(a)) miss0 = a;
      }
      std::unordered_map<std::vector<Value>, std::vector<Value>, VecHash>
          rel1_index;
      {
        const Schema& s1 = rels[1].schema();
        std::vector<Value> key;
        for (const auto& t : cell[1]) {
          key.clear();
          Value m0_val = 0;
          for (std::uint32_t c = 0; c < s1.arity(); ++c) {
            if (s1.attr(c) == miss0) {
              m0_val = t[c];
            } else {
              key.push_back(t[c]);
            }
          }
          rel1_index[key].push_back(m0_val);
        }
      }
      // Membership sets for rels 2..n-1 (all their attrs will be bound).
      std::vector<std::unordered_map<std::vector<Value>, bool, VecHash>>
          member(n);
      for (std::size_t i = 2; i < n; ++i) {
        for (const auto& t : cell[i]) member[i][t] = true;
      }

      const Schema& s0 = rels[0].schema();
      const Schema& s1 = rels[1].schema();
      std::vector<Value> key, probe;
      for (const auto& t0 : cell[0]) {
        for (std::uint32_t c = 0; c < s0.arity(); ++c) {
          bound[attr_index(s0.attr(c))] = t0[c];
        }
        // rel1 key: its attrs except miss0, in schema order.
        key.clear();
        for (std::uint32_t c = 0; c < s1.arity(); ++c) {
          if (s1.attr(c) != miss0) {
            key.push_back(bound[attr_index(s1.attr(c))]);
          }
        }
        const auto it = rel1_index.find(key);
        if (it == rel1_index.end()) continue;
        for (Value m0 : it->second) {
          bound[attr_index(miss0)] = m0;
          bool ok = true;
          for (std::size_t i = 2; i < n && ok; ++i) {
            probe.clear();
            for (AttrId a : rels[i].schema().attrs()) {
              probe.push_back(bound[attr_index(a)]);
            }
            ok = member[i].count(probe) > 0;
          }
          if (!ok) continue;
          for (std::size_t i = 0; i < universe.size(); ++i) {
            const Value row[1] = {bound[i]};
            assignment.Bind(Schema({universe[i]}), row);
          }
          emit(assignment.values());
        }
      }
    }

    // Advance the odometer.
    std::size_t pos = n;
    while (pos > 0) {
      --pos;
      if (++gs[pos] < p) break;
      gs[pos] = 0;
      if (pos == 0) return;
    }
  }
}

}  // namespace emjoin::core
