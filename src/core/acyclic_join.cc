#include "core/acyclic_join.h"

#include <algorithm>
#include <cassert>

#include "core/reduce.h"
#include "extmem/status.h"
#include "metrics/registry.h"
#include "query/classify.h"
#include "trace/tracer.h"

namespace emjoin::core {

namespace {

using storage::MemChunk;
using storage::Relation;
using storage::Schema;

// A relation in the current recursive sub-query: the physical tuples plus
// the logical attribute set (a subset of the physical schema; attributes
// the recursion has removed are physically constant within the relation).
struct LiveRel {
  Relation rel;
  Schema logical;
};

class Executor {
 public:
  Executor(extmem::Device* device, Assignment* assignment, const EmitFn& emit,
           const gens::LeafChooser& chooser)
      : dev_(device),
        assignment_(assignment),
        emit_(emit),
        chooser_(chooser) {}

  void Run(std::vector<LiveRel> rels) {
    if (rels.empty()) return;
    Rec(std::move(rels), [this] { emit_(assignment_->values()); });
  }

 private:
  // Logical query hypergraph of the live relations, sizes up to date.
  static query::JoinQuery LiveQuery(const std::vector<LiveRel>& rels) {
    query::JoinQuery q;
    for (const LiveRel& lr : rels) q.AddRelation(lr.logical, lr.rel.size());
    return q;
  }

  // Binds a physical tuple into the shared assignment.
  void Bind(const Schema& phys, const Value* t) {
    assignment_->Bind(phys, t);
  }

  // Calls `on_result` once per result of the natural join of `rels`,
  // with all their attributes bound in the assignment.
  void Rec(std::vector<LiveRel> rels, const std::function<void()>& on_result);

  void PeelBud(std::vector<LiveRel> rels, query::EdgeId bud,
               storage::AttrId v, const std::function<void()>& on_result);
  void PeelIsland(std::vector<LiveRel> rels, query::EdgeId island,
                  const std::function<void()>& on_result);
  void PeelLeaf(std::vector<LiveRel> rels, const query::LeafInfo& info,
                const std::function<void()>& on_result);

  extmem::Device* dev_;
  Assignment* assignment_;
  EmitFn emit_;
  gens::LeafChooser chooser_;
};

void Executor::Rec(std::vector<LiveRel> rels,
                   const std::function<void()>& on_result) {
  assert(!rels.empty());

  // Base case: a single relation — emit all tuples (Algorithm 2, line 2).
  if (rels.size() == 1) {
    const LiveRel& lr = rels.front();
    const std::uint32_t w = lr.rel.schema().arity();
    extmem::FileReader reader(lr.rel.range());
    while (!reader.Done()) {
      const std::span<const Value> block = reader.NextBlock();
      for (const Value* t = block.data(); t != block.data() + block.size();
           t += w) {
        Bind(lr.rel.schema(), t);
        on_result();
      }
    }
    return;
  }

  const query::JoinQuery q = LiveQuery(rels);

  // Buds first (line 3–4).
  const std::vector<query::EdgeId> buds =
      query::EdgesOfKind(q, query::EdgeKind::kBud);
  if (!buds.empty()) {
    const query::EdgeId b = buds.front();
    const storage::AttrId v = query::JoinAttrsOf(q, b).front();
    PeelBud(std::move(rels), b, v, on_result);
    return;
  }

  // Islands next (line 5–9).
  const std::vector<query::EdgeId> islands =
      query::EdgesOfKind(q, query::EdgeKind::kIsland);
  if (!islands.empty()) {
    PeelIsland(std::move(rels), islands.front(), on_result);
    return;
  }

  // Otherwise peel a leaf (line 10–27); the choice among leaves is the
  // nondeterministic branch.
  const std::vector<query::EdgeId> leaves =
      query::EdgesOfKind(q, query::EdgeKind::kLeaf);
  assert(!leaves.empty() && "Lemma 1: acyclic queries have a leaf here");
  std::vector<Relation> live_rels;
  live_rels.reserve(rels.size());
  for (const LiveRel& lr : rels) live_rels.push_back(lr.rel);
  const std::size_t idx = chooser_(q, live_rels, leaves);
  assert(idx < leaves.size());
  const query::LeafInfo info = query::DescribeLeaf(q, leaves[idx]);
  PeelLeaf(std::move(rels), info, on_result);
}

void Executor::PeelBud(std::vector<LiveRel> rels, query::EdgeId bud,
                       storage::AttrId v,
                       const std::function<void()>& on_result) {
  trace::Span span(dev_, "peel.bud");
  span.Count("peel_steps", 1);
  // Dropping a bud is only sound if every surviving result's v-value has
  // a matching bud tuple. The instance is fully reduced only globally, so
  // we first semijoin the bud into one neighbour (Õ(N/B), within the
  // paper's bud-peeling budget). The bud's own physical tuple is then
  // determined by the assignment, so it needs no explicit binding.
  std::size_t neighbor = rels.size();
  for (std::size_t i = 0; i < rels.size(); ++i) {
    if (i != bud && rels[i].logical.Contains(v)) {
      neighbor = i;
      break;
    }
  }
  assert(neighbor < rels.size() && "a bud's join attribute has a neighbor");
  rels[neighbor].rel = SemiJoin(rels[neighbor].rel, rels[bud].rel, v);
  rels.erase(rels.begin() + bud);
  Rec(std::move(rels), on_result);
}

void Executor::PeelIsland(std::vector<LiveRel> rels, query::EdgeId island,
                          const std::function<void()>& on_result) {
  trace::Span span(dev_, "peel.island");
  span.Count("peel_steps", 1);
  const LiveRel lr = rels[island];
  std::vector<LiveRel> rest = rels;
  rest.erase(rest.begin() + island);

  extmem::FileReader reader(lr.rel.range());
  // An island shares no live attribute with the rest: every chunk tuple
  // combines with every emitted result (line 8–9).
  const auto process = [&](const MemChunk& part) {
    Rec(rest, [&] {
      for (TupleCount i = 0; i < part.size(); ++i) {
        Bind(lr.rel.schema(), part.tuple(i).data());
        on_result();
      }
    });
  };
  while (!reader.Done()) {
    // Re-polled per chunk: a budget shrink lands here as a smaller load.
    const TupleCount cap = dev_->DegradedChunkCap(dev_->M());
    MemChunk chunk;
    auto trip = extmem::BudgetTripOf([&] {
      static_cast<void>(
          storage::LoadChunk(reader, lr.rel.schema(), dev_, cap, &chunk));
    });
    if (trip.has_value() && chunk.empty()) {
      extmem::ThrowStatus(*std::move(trip));
    }
    if (!chunk.empty()) {
      storage::ProcessChunkWithReplan(dev_, &chunk, lr.rel.schema(), process);
    }
  }
}

void Executor::PeelLeaf(std::vector<LiveRel> rels,
                        const query::LeafInfo& info,
                        const std::function<void()>& on_result) {
  trace::Span span(dev_, "peel.leaf");
  span.Count("peel_steps", 1);
  const storage::AttrId v = info.join_attr;
  const TupleCount m = dev_->M();

  // Sort the leaf and its neighbours by v (lines 12–13).
  rels[info.leaf].rel = rels[info.leaf].rel.SortedBy(v);
  for (query::EdgeId n : info.neighbors) {
    rels[n].rel = rels[n].rel.SortedBy(v);
  }
  const LiveRel leaf = rels[info.leaf];
  const std::uint32_t leaf_vcol = *leaf.rel.schema().PositionOf(v);

  // --- Heavy values (lines 14–20). ---
  for (storage::GroupCursor cur(leaf.rel, v); !cur.Done(); cur.Advance()) {
    if (cur.group().size() < m) continue;
    span.Count("heavy_values", 1);
    const Value a = cur.value();

    // R'(a): neighbours restricted to v = a; v leaves the logical query,
    // which may disconnect it (handled naturally by the recursion).
    std::vector<LiveRel> rest;
    rest.reserve(rels.size() - 1);
    for (std::size_t i = 0; i < rels.size(); ++i) {
      if (i == info.leaf) continue;
      LiveRel lr = rels[i];
      if (lr.logical.Contains(v)) {
        lr.rel = lr.rel.EqualRange(v, a);
        std::vector<storage::AttrId> kept;
        for (storage::AttrId x : lr.logical.attrs()) {
          if (x != v) kept.push_back(x);
        }
        lr.logical = Schema(std::move(kept));
      }
      rest.push_back(std::move(lr));
    }

    extmem::FileReader reader(cur.group().range());
    // Every chunk tuple has value a on v, as does every recursive
    // result, so all combinations match (lines 18–19).
    const auto process = [&](const MemChunk& part) {
      Rec(rest, [&] {
        for (TupleCount i = 0; i < part.size(); ++i) {
          Bind(leaf.rel.schema(), part.tuple(i).data());
          on_result();
        }
      });
    };
    while (!reader.Done()) {
      const TupleCount cap = dev_->DegradedChunkCap(m);
      MemChunk chunk;
      auto trip = extmem::BudgetTripOf([&] {
        static_cast<void>(
            storage::LoadChunk(reader, leaf.rel.schema(), dev_, cap, &chunk));
      });
      if (trip.has_value() && chunk.empty()) {
        extmem::ThrowStatus(*std::move(trip));
      }
      if (!chunk.empty()) {
        storage::ProcessChunkWithReplan(dev_, &chunk, leaf.rel.schema(),
                                        process);
      }
    }
  }

  // --- Light values (lines 21–27). ---
  MemChunk chunk(leaf.rel.schema(), dev_);
  const auto process = [&](const MemChunk& part) {
    span.Count("light_chunks", 1);
    if (metrics::Registry* reg = dev_->metrics()) [[unlikely]] {
      reg->GetHistogram("emjoin_emit_batch_tuples")->Record(part.size());
    }
    const std::vector<Value> vals = part.DistinctValues(leaf_vcol);

    // R'(M1): neighbours semijoined with the chunk; v stays in the
    // logical query, so the query remains connected.
    std::vector<LiveRel> rest;
    rest.reserve(rels.size() - 1);
    for (std::size_t i = 0; i < rels.size(); ++i) {
      if (i == info.leaf) continue;
      LiveRel lr = rels[i];
      if (lr.logical.Contains(v)) {
        lr.rel = SemiJoinValues(lr.rel, v, vals);
      }
      rest.push_back(std::move(lr));
    }

    Rec(rest, [&] {
      // Line 27: find the chunk tuples matching the result's v-value.
      const Value val = assignment_->ValueOf(v);
      part.ForEachMatch(leaf_vcol, val, [&](storage::TupleRef t) {
        Bind(leaf.rel.schema(), t.data());
        on_result();
      });
    });
  };
  auto flush = [&] {
    if (chunk.empty()) return;
    storage::ProcessChunkWithReplan(dev_, &chunk, leaf.rel.schema(), process);
    chunk.Clear();
  };

  for (storage::GroupCursor cur(leaf.rel, v); !cur.Done(); cur.Advance()) {
    const Relation group = cur.group();
    if (group.size() >= m) continue;  // heavy: already handled
    extmem::FileReader reader(group.range());
    while (!reader.Done()) {
      auto trip = extmem::BudgetTripOf(
          [&] { chunk.AppendBlock(reader.NextBlock()); });
      if (trip.has_value()) {
        // The block's tuples landed in the chunk before the reservation
        // check tripped — drain it and keep accumulating.
        if (chunk.empty()) extmem::ThrowStatus(*std::move(trip));
        flush();
      }
    }
    // Re-polled per group: a shrink lands here as an earlier flush.
    if (chunk.size() >= dev_->DegradedChunkCap(m)) flush();
  }
  flush();
}

}  // namespace

void AcyclicJoinUnderAssignment(const std::vector<storage::Relation>& rels,
                                Assignment* assignment, const EmitFn& emit,
                                const gens::LeafChooser& chooser) {
  if (rels.empty()) return;
  extmem::Device* dev = rels.front().device();
  // Executor-level watermark: budget-replan re-runs re-derive their
  // pre-trip prefix; the journal suppresses the duplicates. Fault-free
  // unguarded runs alias `emit` directly (zero overhead).
  GuardedEmit guarded(dev, emit);
  std::vector<LiveRel> live;
  live.reserve(rels.size());
  for (const Relation& r : rels) live.push_back({r, r.schema()});
  Executor exec(dev, assignment, guarded.fn(), chooser);
  exec.Run(std::move(live));
}

void AcyclicJoin(const std::vector<storage::Relation>& rels,
                 const EmitFn& emit, const AcyclicJoinOptions& options) {
  if (rels.empty()) return;
  extmem::Device* dev = rels.front().device();
  trace::Span span(dev, "acyclic_join");

  std::vector<Relation> input = rels;
  if (options.reduce_first) input = FullyReduce(input);

  gens::LeafChooser chooser = options.leaf_chooser;
  if (!chooser) chooser = gens::CostGuidedChooser(dev->M(), dev->B());

  Assignment assignment(MakeResultSchema(rels));
  AcyclicJoinUnderAssignment(input, &assignment, emit, chooser);
}

}  // namespace emjoin::core
