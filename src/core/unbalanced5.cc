#include "core/unbalanced5.h"

#include <cassert>

#include "core/line3.h"
#include "core/pairwise.h"
#include "core/reduce.h"
#include "extmem/sorter.h"
#include "trace/tracer.h"

namespace emjoin::core {

namespace {

// rel sorted lexicographically by `keys` (then full tuple).
storage::Relation SortLex(const storage::Relation& rel,
                          const std::vector<storage::AttrId>& keys) {
  std::vector<std::uint32_t> cols;
  for (storage::AttrId a : keys) {
    const auto pos = rel.schema().PositionOf(a);
    assert(pos.has_value());
    cols.push_back(*pos);
  }
  extmem::FilePtr f = extmem::ExternalSort(rel.range(), cols);
  return storage::Relation(rel.schema(), extmem::FileRange(f), keys.front());
}

// Forward-only scanner over a relation sorted lexicographically by
// `cols`: for ascending targets, returns the slice of rows equal to the
// target key. One charged pass over the relation in total.
class KeyedScanner {
 public:
  KeyedScanner(storage::Relation rel, std::vector<std::uint32_t> cols)
      : rel_(std::move(rel)), cols_(std::move(cols)),
        reader_(rel_.range()) {}

  storage::Relation CollectEqual(std::span<const Value> key) {
    while (!reader_.Done() && Compare(reader_.Peek(), key) < 0) {
      reader_.Next();
    }
    const TupleCount start = reader_.position() - rel_.range().begin;
    while (!reader_.Done() && Compare(reader_.Peek(), key) == 0) {
      reader_.Next();
    }
    const TupleCount end = reader_.position() - rel_.range().begin;
    return rel_.Slice(start, end);
  }

 private:
  int Compare(const Value* row, std::span<const Value> key) const {
    for (std::size_t i = 0; i < cols_.size(); ++i) {
      if (row[cols_[i]] != key[i]) return row[cols_[i]] < key[i] ? -1 : 1;
    }
    return 0;
  }

  storage::Relation rel_;
  std::vector<std::uint32_t> cols_;
  extmem::FileReader reader_;
};

std::vector<std::uint32_t> ColsOf(const storage::Schema& schema,
                                  const std::vector<storage::AttrId>& keys) {
  std::vector<std::uint32_t> cols;
  for (storage::AttrId a : keys) {
    const auto pos = schema.PositionOf(a);
    assert(pos.has_value());
    cols.push_back(*pos);
  }
  return cols;
}

}  // namespace

void LineJoinUnbalanced5UnderAssignment(
    const storage::Relation& r1, const storage::Relation& r2,
    const storage::Relation& r3, const storage::Relation& r4,
    const storage::Relation& r5, Assignment* assignment, const EmitFn& emit) {
  trace::Span span(r1.device(), "line5");
  // Operator-level watermark over the per-key nested loops (each of which
  // also re-plans internally); fault-free this aliases `emit` directly.
  GuardedEmit guarded(r1.device(), emit);
  // Line attributes: r3 = {v3, v4}, shared with r2 and r4 respectively.
  const std::vector<storage::AttrId> c23 =
      r2.schema().CommonAttrs(r3.schema());
  const std::vector<storage::AttrId> c34 =
      r3.schema().CommonAttrs(r4.schema());
  assert(c23.size() == 1 && c34.size() == 1);
  const storage::AttrId v3 = c23.front();
  const storage::AttrId v4 = c34.front();
  const std::vector<storage::AttrId> keys = {v3, v4};

  // Lines 1–2: the two 3-relation line joins, written to disk.
  const storage::Relation s = LineJoin3ToDisk(r1, r2, r3);
  const storage::Relation t = LineJoin3ToDisk(r3, r4, r5);

  // Lines 3–4: sort R3, S and T lexicographically by (v3, v4).
  const storage::Relation r3s = SortLex(r3, keys);
  const storage::Relation ss = SortLex(s, keys);
  const storage::Relation ts = SortLex(t, keys);

  // Lines 5–8: for each tuple of R3, nested-loop S(t) against T(t).
  KeyedScanner s_scan(ss, ColsOf(ss.schema(), keys));
  KeyedScanner t_scan(ts, ColsOf(ts.schema(), keys));
  const std::vector<std::uint32_t> r3_cols = ColsOf(r3s.schema(), keys);

  const std::uint32_t r3w = r3s.schema().arity();
  extmem::FileReader r3_reader(r3s.range());
  while (!r3_reader.Done()) {
    const std::span<const Value> block = r3_reader.NextBlock();
    for (const Value* tup = block.data(); tup != block.data() + block.size();
         tup += r3w) {
      const Value key[2] = {tup[r3_cols[0]], tup[r3_cols[1]]};
      const storage::Relation s_t = s_scan.CollectEqual(key);
      if (s_t.empty()) continue;
      const storage::Relation t_t = t_scan.CollectEqual(key);
      if (t_t.empty()) continue;
      // Every pair matches (the slices agree on v3, v4, the only shared
      // attributes); S(t) has size ≤ N1, T(t) ≤ N5.
      BlockNestedLoopJoin(s_t, t_t, assignment, guarded.fn());
    }
  }
}

void LineJoinUnbalanced5(const storage::Relation& r1,
                         const storage::Relation& r2,
                         const storage::Relation& r3,
                         const storage::Relation& r4,
                         const storage::Relation& r5, const EmitFn& emit,
                         bool reduce_first) {
  std::vector<storage::Relation> rels = {r1, r2, r3, r4, r5};
  if (reduce_first) rels = FullyReduce(rels);
  Assignment assignment(MakeResultSchema({r1, r2, r3, r4, r5}));
  LineJoinUnbalanced5UnderAssignment(rels[0], rels[1], rels[2], rels[3],
                                     rels[4], &assignment, emit);
}

}  // namespace emjoin::core
