#include "core/unbalanced7.h"

#include <cassert>

#include "core/acyclic_join.h"
#include "core/line3.h"
#include "core/reduce.h"
#include "trace/tracer.h"

namespace emjoin::core {

void LineJoinUnbalanced7UnderAssignment(
    const std::vector<storage::Relation>& rels, Assignment* assignment,
    const EmitFn& emit) {
  assert(rels.size() == 7);
  extmem::Device* dev = rels.front().device();
  trace::Span span(dev, "line7");

  // Line 1: S = R3 ⋈ R4 ⋈ R5, stored on disk. S becomes one hyperedge
  // {v3, v4, v5, v6}; the composed query {R1, R2, S, R6, R7} is an
  // acyclic 5-edge query.
  const storage::Relation s = LineJoin3ToDisk(rels[2], rels[3], rels[4]);

  // Lines 2–3: AcyclicJoin on the composed instance. Reduce it first (S
  // may contain tuples dangling with respect to R2 / R6).
  std::vector<storage::Relation> composed = {rels[0], rels[1], s, rels[5],
                                             rels[6]};
  composed = FullyReduce(composed);

  AcyclicJoinUnderAssignment(composed, assignment, emit,
                             gens::CostGuidedChooser(dev->M(), dev->B()));
}

void LineJoinUnbalanced7(const std::vector<storage::Relation>& rels,
                         const EmitFn& emit, bool reduce_first) {
  assert(rels.size() == 7);
  std::vector<storage::Relation> in = rels;
  if (reduce_first) in = FullyReduce(in);
  Assignment assignment(MakeResultSchema(rels));
  LineJoinUnbalanced7UnderAssignment(in, &assignment, emit);
}

}  // namespace emjoin::core
