#include "metrics/parallel_audit.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "core/emit.h"
#include "extmem/device.h"
#include "parallel/parallel_join.h"
#include "query/hypergraph.h"
#include "workload/random_instance.h"

namespace emjoin::metrics {

namespace {

// One audited workload shape. Geometry is sort-heavy on purpose: with
// M = 512 and B = 16 a 4000-tuple relation takes several merge passes,
// so per-shard work dominates the fixed partition cost.
struct ParallelWorkload {
  const char* name;
  const char* claim;
  double band;  // measured/expected ceiling (skew-dependent)
  double zipf_s;
};

constexpr TupleCount kM = 512;
constexpr TupleCount kB = 16;
constexpr TupleCount kDomain = 256;
constexpr std::uint64_t kSeed = 42;
constexpr std::uint32_t kSweep[] = {2, 4, 8};

const ParallelWorkload kWorkloads[] = {
    {"parallel_line3",
     "max-shard I/O <= 1.6 * (sum / K) and < serial I/O, K in {2,4,8}, "
     "uniform L3", 1.6, 0.0},
    {"parallel_star",
     "max-shard I/O <= 1.6 * (sum / K) and < serial I/O, K in {2,4,8}, "
     "uniform 3-star", 1.6, 0.0},
    {"parallel_line3_zipf",
     "max-shard I/O <= 3.0 * (sum / K) and < serial I/O, K in {2,4,8}, "
     "Zipf(1.0) L3", 3.0, 1.0},
};

std::pair<query::JoinQuery, std::vector<TupleCount>> Shape(
    const ParallelWorkload& w) {
  // Star: a dominant core with small petals. Only the core and one
  // petal hash-partition (the others broadcast), so the core must carry
  // the bulk of the data for sharding to shorten the critical path.
  if (std::string_view(w.name) == "parallel_star") {
    return {query::JoinQuery::Star(3), {6000, 600, 600, 600}};
  }
  return {query::JoinQuery::Line(3), {4000, 4000, 4000}};
}

// Builds the workload's instance on a fresh device and measures the I/O
// delta of one sharded (or serial, K=1) run.
parallel::ParallelJoinReport RunOnce(const ParallelWorkload& w,
                                     std::uint32_t shards,
                                     std::uint64_t* serial_ios) {
  auto [q, sizes] = Shape(w);
  extmem::Device dev(kM, kB);
  workload::RandomOptions rnd;
  rnd.seed = kSeed;
  rnd.domain_size = kDomain;
  rnd.zipf_s = w.zipf_s;
  const std::vector<storage::Relation> rels =
      workload::RandomInstance(&dev, q, sizes, rnd);

  core::CountingSink sink;
  parallel::ParallelOptions options;
  options.shards = shards;
  options.workers = 1;  // audit measures I/O, not wall clock
  const extmem::IoStats before = dev.stats();
  extmem::Result<parallel::ParallelJoinReport> r =
      parallel::TryParallelJoinAuto(rels, sink.AsEmitFn(), options);
  if (!r.ok()) {
    // Fault-free simulated runs cannot fail; surface loudly if one does.
    std::fprintf(stderr, "parallel audit %s K=%u: %s\n", w.name, shards,
                 r.status().ToString().c_str());
    return parallel::ParallelJoinReport{};
  }
  if (serial_ios != nullptr) {
    *serial_ios = (dev.stats() - before).total();
  }
  return std::move(r).value();
}

AuditRow AuditWorkload(const ParallelWorkload& w,
                       const AuditOptions& options) {
  AuditRow row;
  row.name = w.name;
  row.row = "Hu & Yi, parallel acyclic joins (PAPERS.md)";
  row.claim = w.claim;
  row.slope_tol = options.slope_tol;
  row.max_ratio = w.band;
  row.pass = true;

  std::uint64_t serial_ios = 0;
  static_cast<void>(RunOnce(w, /*shards=*/1, &serial_ios));

  std::vector<std::pair<double, double>> fit_measured;
  std::vector<std::pair<double, double>> fit_expected;
  for (const std::uint32_t k : kSweep) {
    const parallel::ParallelJoinReport report = RunOnce(w, k, nullptr);
    CostPoint p;
    p.n = k;
    p.m = std::max<TupleCount>(kM / k, kB);
    p.b = kB;
    p.measured = report.max_shard_ios;
    p.results = report.results;
    p.expected = static_cast<long double>(report.sum_shard_ios) / k;
    row.n_points.push_back(p);

    const double ratio = p.ratio();
    if (row.ratio_min == 0 || ratio < row.ratio_min) row.ratio_min = ratio;
    if (ratio > row.ratio_max) row.ratio_max = ratio;
    fit_measured.emplace_back(std::log2(double(k)),
                              std::log2(double(p.measured)));
    fit_expected.emplace_back(std::log2(double(k)),
                              std::log2(double(p.expected)));

    if (ratio > w.band) {
      row.pass = false;
      row.failures.push_back(
          "K=" + std::to_string(k) + ": max-shard/(sum/K) ratio " +
          std::to_string(ratio) + " exceeds band " + std::to_string(w.band));
    }
    if (report.max_shard_ios >= serial_ios) {
      row.pass = false;
      row.failures.push_back(
          "K=" + std::to_string(k) + ": critical path " +
          std::to_string(report.max_shard_ios) +
          " I/Os does not beat serial " + std::to_string(serial_ios));
    }
  }

  // Informational: how the critical path scales in K (ideal slope -1;
  // broadcast relations flatten it) vs how perfect balance would.
  row.n_fit.measured = FitSlope(fit_measured);
  row.n_fit.expected = FitSlope(fit_expected);
  return row;
}

}  // namespace

std::vector<std::string> ParallelAuditNames() {
  std::vector<std::string> names;
  for (const ParallelWorkload& w : kWorkloads) names.emplace_back(w.name);
  return names;
}

bool IsParallelAuditName(const std::string& name) {
  for (const ParallelWorkload& w : kWorkloads) {
    if (name == w.name) return true;
  }
  return false;
}

std::vector<AuditRow> RunParallelAudits(const AuditOptions& options,
                                        const std::string& only_name) {
  std::vector<AuditRow> rows;
  for (const ParallelWorkload& w : kWorkloads) {
    if (!only_name.empty() && only_name != w.name) continue;
    rows.push_back(AuditWorkload(w, options));
  }
  return rows;
}

}  // namespace emjoin::metrics
