#include "metrics/registry.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace emjoin::metrics {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  Registry::AppendEscapedLabelValue(out, s);
}

// HELP text escaping differs from label values: only backslash and
// newline are escaped (quotes are legal in help text).
void AppendEscapedHelp(std::string* out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

std::string U64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

void Registry::AppendEscapedLabelValue(std::string* out,
                                       const std::string& value) {
  for (const char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

void Registry::SetHelp(const std::string& family, const std::string& help) {
  help_[family] = help;
}

std::string Registry::LabelKey(const Labels& labels) {
  if (labels.empty()) return "";
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ",";
    key += sorted[i].first;
    key += "=\"";
    AppendEscaped(&key, sorted[i].second);
    key += "\"";
  }
  key += "}";
  return key;
}

Counter* Registry::GetCounter(const std::string& family,
                              const Labels& labels) {
  return &counters_[family][LabelKey(labels)];
}

Gauge* Registry::GetGauge(const std::string& family, const Labels& labels) {
  return &gauges_[family][LabelKey(labels)];
}

Histogram* Registry::GetHistogram(const std::string& family,
                                  const Labels& labels) {
  return &histograms_[family][LabelKey(labels)];
}

Labels Registry::ParseLabelKey(const std::string& key) {
  Labels labels;
  if (key.size() < 2 || key.front() != '{') return labels;
  std::size_t i = 1;
  while (i < key.size() && key[i] != '}') {
    const std::size_t eq = key.find('=', i);
    if (eq == std::string::npos) break;
    std::string name = key.substr(i, eq - i);
    i = eq + 2;  // skip ="
    std::string value;
    while (i < key.size() && key[i] != '"') {
      if (key[i] == '\\' && i + 1 < key.size()) {
        ++i;
        value += key[i] == 'n' ? '\n' : key[i];
      } else {
        value += key[i];
      }
      ++i;
    }
    ++i;  // closing quote
    labels.emplace_back(std::move(name), std::move(value));
    if (i < key.size() && key[i] == ',') ++i;
  }
  return labels;
}

void Registry::MergeFrom(const Registry& other, const Labels& extra_labels) {
  if (extra_labels.empty()) {
    MergeFrom(other);
    return;
  }
  const auto rekey = [&extra_labels](const std::string& key) {
    Labels labels = ParseLabelKey(key);
    labels.insert(labels.end(), extra_labels.begin(), extra_labels.end());
    return LabelKey(labels);
  };
  for (const auto& [family, series] : other.counters_) {
    for (const auto& [key, counter] : series) {
      counters_[family][rekey(key)].Add(counter.value());
    }
  }
  for (const auto& [family, series] : other.gauges_) {
    for (const auto& [key, gauge] : series) {
      gauges_[family][rekey(key)].SetMax(gauge.value());
    }
  }
  for (const auto& [family, series] : other.histograms_) {
    for (const auto& [key, hist] : series) {
      histograms_[family][rekey(key)].MergeFrom(hist);
    }
  }
  for (const auto& [family, help] : other.help_) {
    help_.emplace(family, help);  // first writer wins
  }
}

void Registry::MergeFrom(const Registry& other) {
  for (const auto& [family, series] : other.counters_) {
    for (const auto& [key, counter] : series) {
      counters_[family][key].Add(counter.value());
    }
  }
  for (const auto& [family, series] : other.gauges_) {
    for (const auto& [key, gauge] : series) {
      gauges_[family][key].SetMax(gauge.value());
    }
  }
  for (const auto& [family, series] : other.histograms_) {
    for (const auto& [key, hist] : series) {
      histograms_[family][key].MergeFrom(hist);
    }
  }
  for (const auto& [family, help] : other.help_) {
    help_.emplace(family, help);  // first writer wins
  }
}

std::string Registry::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [family, series] : counters_) {
    for (const auto& [key, counter] : series) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    \"";
      AppendEscaped(&out, family + key);
      out += "\": " + U64(counter.value());
    }
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [family, series] : gauges_) {
    for (const auto& [key, gauge] : series) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    \"";
      AppendEscaped(&out, family + key);
      out += "\": " + U64(gauge.value());
    }
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [family, series] : histograms_) {
    for (const auto& [key, hist] : series) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    \"";
      AppendEscaped(&out, family + key);
      out += "\": {\"count\": " + U64(hist.count()) +
             ", \"sum\": " + U64(hist.sum()) + ", \"buckets\": {";
      bool first_bucket = true;
      const auto& buckets = hist.buckets();
      for (int i = 0; i <= Histogram::kFiniteBuckets; ++i) {
        if (buckets[static_cast<std::size_t>(i)] == 0) continue;
        if (!first_bucket) out += ", ";
        first_bucket = false;
        out += "\"";
        out += i == Histogram::kFiniteBuckets ? "+Inf"
                                              : U64(Histogram::BucketBound(i));
        out += "\": " + U64(buckets[static_cast<std::size_t>(i)]);
      }
      out += "}}";
    }
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string Registry::ToPrometheusText() const {
  const auto help_line = [this](const std::string& family) {
    std::string line = "# HELP " + family + " ";
    const auto it = help_.find(family);
    AppendEscapedHelp(&line, it != help_.end() ? it->second
                                               : "emjoin collected metric");
    line += "\n";
    return line;
  };
  std::string out;
  for (const auto& [family, series] : counters_) {
    out += help_line(family);
    out += "# TYPE " + family + " counter\n";
    for (const auto& [key, counter] : series) {
      out += family + key + " " + U64(counter.value()) + "\n";
    }
  }
  for (const auto& [family, series] : gauges_) {
    out += help_line(family);
    out += "# TYPE " + family + " gauge\n";
    for (const auto& [key, gauge] : series) {
      out += family + key + " " + U64(gauge.value()) + "\n";
    }
  }
  for (const auto& [family, series] : histograms_) {
    out += help_line(family);
    out += "# TYPE " + family + " histogram\n";
    for (const auto& [key, hist] : series) {
      // Prometheus buckets are cumulative and each carries an `le` label
      // appended to the series' own labels.
      const std::string prefix =
          key.empty() ? family + "_bucket{"
                      : family + "_bucket" + key.substr(0, key.size() - 1) +
                            ",";
      std::uint64_t cumulative = 0;
      const auto& buckets = hist.buckets();
      for (int i = 0; i <= Histogram::kFiniteBuckets; ++i) {
        cumulative += buckets[static_cast<std::size_t>(i)];
        // Emit only buckets that change the cumulative count, plus +Inf
        // (mandatory), to keep the exposition compact.
        const bool last = i == Histogram::kFiniteBuckets;
        if (!last && buckets[static_cast<std::size_t>(i)] == 0) continue;
        out += prefix + "le=\"" +
               (last ? "+Inf" : U64(Histogram::BucketBound(i))) + "\"} " +
               U64(cumulative) + "\n";
      }
      out += family + "_sum" + key + " " + U64(hist.sum()) + "\n";
      out += family + "_count" + key + " " + U64(hist.count()) + "\n";
    }
  }
  return out;
}

namespace {
bool WriteFile(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}
}  // namespace

bool Registry::WriteJson(const std::string& path) const {
  return WriteFile(path, ToJson());
}

bool Registry::WritePrometheus(const std::string& path) const {
  return WriteFile(path, ToPrometheusText());
}

// ---------------------------------------------------------------------
// Prometheus exposition-format conformance checking.
// ---------------------------------------------------------------------

namespace {

bool ValidMetricName(const std::string& s) {
  if (s.empty()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (alpha || c == '_' || c == ':') continue;
    if (digit && i > 0) continue;
    return false;
  }
  return true;
}

bool ValidLabelName(const std::string& s) {
  if (s.empty()) return false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (alpha || c == '_') continue;
    if (digit && i > 0) continue;
    return false;
  }
  return true;
}

bool ParseSampleValue(const std::string& token, double* out) {
  if (token == "+Inf" || token == "Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "-Inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "NaN") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  if (token.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end != nullptr && *end == '\0';
}

struct ParsedSample {
  std::string name;
  Labels labels;
  double value = 0.0;
};

// Parses `name{label="value",...} value [timestamp]`. Returns false with
// a diagnostic in *err on any syntax violation.
bool ParseSampleLine(const std::string& line, ParsedSample* out,
                     std::string* err) {
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  out->name = line.substr(0, i);
  if (!ValidMetricName(out->name)) {
    *err = "bad metric name '" + out->name + "'";
    return false;
  }
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      std::size_t eq = i;
      while (eq < line.size() && line[eq] != '=' && line[eq] != '}') ++eq;
      if (eq >= line.size() || line[eq] != '=') {
        *err = "label without '='";
        return false;
      }
      const std::string label_name = line.substr(i, eq - i);
      if (!ValidLabelName(label_name)) {
        *err = "bad label name '" + label_name + "'";
        return false;
      }
      i = eq + 1;
      if (i >= line.size() || line[i] != '"') {
        *err = "label value for '" + label_name + "' is not quoted";
        return false;
      }
      ++i;
      std::string value;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') {
          if (i + 1 >= line.size() ||
              (line[i + 1] != '\\' && line[i + 1] != '"' &&
               line[i + 1] != 'n')) {
            *err = "invalid escape in label value of '" + label_name + "'";
            return false;
          }
          value += line[i + 1] == 'n' ? '\n' : line[i + 1];
          i += 2;
        } else if (line[i] == '\n') {
          *err = "unescaped newline in label value";
          return false;
        } else {
          value += line[i];
          ++i;
        }
      }
      if (i >= line.size()) {
        *err = "unterminated label value";
        return false;
      }
      ++i;  // closing quote
      out->labels.emplace_back(label_name, std::move(value));
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size()) {
      *err = "unterminated label set";
      return false;
    }
    ++i;  // closing brace
  }
  if (i >= line.size() || line[i] != ' ') {
    *err = "missing value";
    return false;
  }
  while (i < line.size() && line[i] == ' ') ++i;
  std::size_t value_end = i;
  while (value_end < line.size() && line[value_end] != ' ') ++value_end;
  if (!ParseSampleValue(line.substr(i, value_end - i), &out->value)) {
    *err = "bad sample value '" + line.substr(i, value_end - i) + "'";
    return false;
  }
  // Optional timestamp: a plain integer after the value.
  while (value_end < line.size() && line[value_end] == ' ') ++value_end;
  for (std::size_t t = value_end; t < line.size(); ++t) {
    if (std::isdigit(static_cast<unsigned char>(line[t])) == 0 &&
        !(t == value_end && line[t] == '-')) {
      *err = "trailing garbage after value";
      return false;
    }
  }
  return true;
}

// Splits "# HELP name text" / "# TYPE name type" into (name, rest).
bool SplitComment(const std::string& line, const std::string& keyword,
                  std::string* name, std::string* rest) {
  const std::string prefix = "# " + keyword + " ";
  if (line.rfind(prefix, 0) != 0) return false;
  const std::size_t name_begin = prefix.size();
  const std::size_t name_end = line.find(' ', name_begin);
  *name = line.substr(name_begin, name_end == std::string::npos
                                      ? std::string::npos
                                      : name_end - name_begin);
  *rest = name_end == std::string::npos ? "" : line.substr(name_end + 1);
  return true;
}

}  // namespace

bool CheckPrometheusText(const std::string& text, std::string* error) {
  std::size_t line_no = 0;
  const auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + msg;
    }
    return false;
  };

  std::map<std::string, std::string> types;  // family -> declared type
  std::map<std::string, bool> helped;        // family -> HELP seen
  std::map<std::string, bool> family_sampled;
  // Histogram structure: family -> (non-le label key -> ordered
  // (le, cumulative) pairs), plus the _count samples to cross-check.
  std::map<std::string, std::map<std::string, std::vector<
                            std::pair<double, double>>>> hist_buckets;
  std::map<std::string, std::map<std::string, double>> hist_counts;

  // Resolves a sample name to its declared family, honoring histogram
  // suffixes. Empty when no TYPE line covers the sample.
  const auto family_of = [&types](const std::string& name) -> std::string {
    if (types.count(name) != 0) return name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::size_t len = std::string(suffix).size();
      if (name.size() > len &&
          name.compare(name.size() - len, len, suffix) == 0) {
        const std::string base = name.substr(0, name.size() - len);
        const auto it = types.find(base);
        if (it != types.end() && it->second == "histogram") return base;
      }
    }
    return "";
  };

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line =
        text.substr(pos, eol == std::string::npos ? std::string::npos
                                                  : eol - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line[0] == '#') {
      std::string name, rest;
      if (SplitComment(line, "TYPE", &name, &rest)) {
        if (!ValidMetricName(name)) return fail("bad family name in TYPE");
        if (rest != "counter" && rest != "gauge" && rest != "histogram" &&
            rest != "summary" && rest != "untyped") {
          return fail("unknown type '" + rest + "' for " + name);
        }
        if (types.count(name) != 0) return fail("duplicate TYPE for " + name);
        if (family_sampled[name]) {
          return fail("TYPE for " + name + " after its samples");
        }
        types[name] = rest;
      } else if (SplitComment(line, "HELP", &name, &rest)) {
        if (!ValidMetricName(name)) return fail("bad family name in HELP");
        if (helped[name]) return fail("duplicate HELP for " + name);
        if (family_sampled[name]) {
          return fail("HELP for " + name + " after its samples");
        }
        helped[name] = true;
        for (std::size_t i = 0; i < rest.size(); ++i) {
          if (rest[i] == '\\' &&
              (i + 1 >= rest.size() ||
               (rest[i + 1] != '\\' && rest[i + 1] != 'n'))) {
            return fail("invalid escape in HELP text for " + name);
          }
          if (rest[i] == '\\') ++i;
        }
      }
      continue;  // other comments are free-form
    }

    ParsedSample sample;
    std::string err;
    if (!ParseSampleLine(line, &sample, &err)) return fail(err);
    const std::string family = family_of(sample.name);
    if (family.empty()) {
      return fail("sample '" + sample.name + "' has no preceding # TYPE");
    }
    family_sampled[family] = true;

    if (types[family] == "histogram") {
      Labels without_le;
      double le = 0.0;
      bool has_le = false;
      for (const auto& [k, v] : sample.labels) {
        if (k == "le") {
          has_le = true;
          if (!ParseSampleValue(v, &le)) {
            return fail("unparsable le '" + v + "'");
          }
        } else {
          without_le.emplace_back(k, v);
        }
      }
      const std::string key = Registry::LabelKey(without_le);
      if (sample.name == family + "_bucket") {
        if (!has_le) return fail("histogram bucket without le label");
        hist_buckets[family][key].emplace_back(le, sample.value);
      } else if (sample.name == family + "_count") {
        if (has_le) return fail("histogram _count with le label");
        hist_counts[family][key] = sample.value;
      } else if (has_le) {
        return fail("le label outside _bucket series");
      }
    }
  }

  for (const auto& [family, groups] : hist_buckets) {
    for (const auto& [key, buckets] : groups) {
      const std::string where =
          family + (key.empty() ? std::string() : key);
      double prev_le = -std::numeric_limits<double>::infinity();
      double prev_count = -1.0;
      bool has_inf = false;
      double inf_count = 0.0;
      for (const auto& [le, count] : buckets) {
        if (le <= prev_le) {
          if (error != nullptr) {
            *error = where + ": buckets not sorted by le";
          }
          return false;
        }
        if (count < prev_count) {
          if (error != nullptr) {
            *error = where + ": bucket counts not cumulative";
          }
          return false;
        }
        prev_le = le;
        prev_count = count;
        if (le == std::numeric_limits<double>::infinity()) {
          has_inf = true;
          inf_count = count;
        }
      }
      if (!has_inf) {
        if (error != nullptr) *error = where + ": missing le=\"+Inf\" bucket";
        return false;
      }
      const auto counts_it = hist_counts.find(family);
      if (counts_it == hist_counts.end() ||
          counts_it->second.count(key) == 0) {
        if (error != nullptr) *error = where + ": missing _count series";
        return false;
      }
      if (counts_it->second.at(key) != inf_count) {
        if (error != nullptr) {
          *error = where + ": le=\"+Inf\" bucket does not equal _count";
        }
        return false;
      }
    }
  }
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace emjoin::metrics
