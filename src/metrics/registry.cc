#include "metrics/registry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace emjoin::metrics {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

std::string U64(std::uint64_t v) { return std::to_string(v); }

}  // namespace

std::string Registry::LabelKey(const Labels& labels) {
  if (labels.empty()) return "";
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ",";
    key += sorted[i].first;
    key += "=\"";
    AppendEscaped(&key, sorted[i].second);
    key += "\"";
  }
  key += "}";
  return key;
}

Counter* Registry::GetCounter(const std::string& family,
                              const Labels& labels) {
  return &counters_[family][LabelKey(labels)];
}

Gauge* Registry::GetGauge(const std::string& family, const Labels& labels) {
  return &gauges_[family][LabelKey(labels)];
}

Histogram* Registry::GetHistogram(const std::string& family,
                                  const Labels& labels) {
  return &histograms_[family][LabelKey(labels)];
}

Labels Registry::ParseLabelKey(const std::string& key) {
  Labels labels;
  if (key.size() < 2 || key.front() != '{') return labels;
  std::size_t i = 1;
  while (i < key.size() && key[i] != '}') {
    const std::size_t eq = key.find('=', i);
    if (eq == std::string::npos) break;
    std::string name = key.substr(i, eq - i);
    i = eq + 2;  // skip ="
    std::string value;
    while (i < key.size() && key[i] != '"') {
      if (key[i] == '\\' && i + 1 < key.size()) {
        ++i;
        value += key[i] == 'n' ? '\n' : key[i];
      } else {
        value += key[i];
      }
      ++i;
    }
    ++i;  // closing quote
    labels.emplace_back(std::move(name), std::move(value));
    if (i < key.size() && key[i] == ',') ++i;
  }
  return labels;
}

void Registry::MergeFrom(const Registry& other, const Labels& extra_labels) {
  if (extra_labels.empty()) {
    MergeFrom(other);
    return;
  }
  const auto rekey = [&extra_labels](const std::string& key) {
    Labels labels = ParseLabelKey(key);
    labels.insert(labels.end(), extra_labels.begin(), extra_labels.end());
    return LabelKey(labels);
  };
  for (const auto& [family, series] : other.counters_) {
    for (const auto& [key, counter] : series) {
      counters_[family][rekey(key)].Add(counter.value());
    }
  }
  for (const auto& [family, series] : other.gauges_) {
    for (const auto& [key, gauge] : series) {
      gauges_[family][rekey(key)].SetMax(gauge.value());
    }
  }
  for (const auto& [family, series] : other.histograms_) {
    for (const auto& [key, hist] : series) {
      histograms_[family][rekey(key)].MergeFrom(hist);
    }
  }
}

void Registry::MergeFrom(const Registry& other) {
  for (const auto& [family, series] : other.counters_) {
    for (const auto& [key, counter] : series) {
      counters_[family][key].Add(counter.value());
    }
  }
  for (const auto& [family, series] : other.gauges_) {
    for (const auto& [key, gauge] : series) {
      gauges_[family][key].SetMax(gauge.value());
    }
  }
  for (const auto& [family, series] : other.histograms_) {
    for (const auto& [key, hist] : series) {
      histograms_[family][key].MergeFrom(hist);
    }
  }
}

std::string Registry::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [family, series] : counters_) {
    for (const auto& [key, counter] : series) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    \"";
      AppendEscaped(&out, family + key);
      out += "\": " + U64(counter.value());
    }
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [family, series] : gauges_) {
    for (const auto& [key, gauge] : series) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    \"";
      AppendEscaped(&out, family + key);
      out += "\": " + U64(gauge.value());
    }
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [family, series] : histograms_) {
    for (const auto& [key, hist] : series) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    \"";
      AppendEscaped(&out, family + key);
      out += "\": {\"count\": " + U64(hist.count()) +
             ", \"sum\": " + U64(hist.sum()) + ", \"buckets\": {";
      bool first_bucket = true;
      const auto& buckets = hist.buckets();
      for (int i = 0; i <= Histogram::kFiniteBuckets; ++i) {
        if (buckets[static_cast<std::size_t>(i)] == 0) continue;
        if (!first_bucket) out += ", ";
        first_bucket = false;
        out += "\"";
        out += i == Histogram::kFiniteBuckets ? "+Inf"
                                              : U64(Histogram::BucketBound(i));
        out += "\": " + U64(buckets[static_cast<std::size_t>(i)]);
      }
      out += "}}";
    }
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string Registry::ToPrometheusText() const {
  std::string out;
  for (const auto& [family, series] : counters_) {
    out += "# TYPE " + family + " counter\n";
    for (const auto& [key, counter] : series) {
      out += family + key + " " + U64(counter.value()) + "\n";
    }
  }
  for (const auto& [family, series] : gauges_) {
    out += "# TYPE " + family + " gauge\n";
    for (const auto& [key, gauge] : series) {
      out += family + key + " " + U64(gauge.value()) + "\n";
    }
  }
  for (const auto& [family, series] : histograms_) {
    out += "# TYPE " + family + " histogram\n";
    for (const auto& [key, hist] : series) {
      // Prometheus buckets are cumulative and each carries an `le` label
      // appended to the series' own labels.
      const std::string prefix =
          key.empty() ? family + "_bucket{"
                      : family + "_bucket" + key.substr(0, key.size() - 1) +
                            ",";
      std::uint64_t cumulative = 0;
      const auto& buckets = hist.buckets();
      for (int i = 0; i <= Histogram::kFiniteBuckets; ++i) {
        cumulative += buckets[static_cast<std::size_t>(i)];
        // Emit only buckets that change the cumulative count, plus +Inf
        // (mandatory), to keep the exposition compact.
        const bool last = i == Histogram::kFiniteBuckets;
        if (!last && buckets[static_cast<std::size_t>(i)] == 0) continue;
        out += prefix + "le=\"" +
               (last ? "+Inf" : U64(Histogram::BucketBound(i))) + "\"} " +
               U64(cumulative) + "\n";
      }
      out += family + "_sum" + key + " " + U64(hist.sum()) + "\n";
      out += family + "_count" + key + " " + U64(hist.count()) + "\n";
    }
  }
  return out;
}

namespace {
bool WriteFile(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}
}  // namespace

bool Registry::WriteJson(const std::string& path) const {
  return WriteFile(path, ToJson());
}

bool Registry::WritePrometheus(const std::string& path) const {
  return WriteFile(path, ToPrometheusText());
}

}  // namespace emjoin::metrics
