#ifndef EMJOIN_METRICS_COLLECT_H_
#define EMJOIN_METRICS_COLLECT_H_

#include <map>
#include <string>

#include "extmem/device.h"
#include "extmem/fault_injector.h"
#include "extmem/io_stats.h"
#include "metrics/registry.h"

/// Snapshot/delta collectors that fold substrate state into a Registry.
///
/// The substrate's live instrumentation (sorter fan-ins, run lengths,
/// operator emit batches) records directly through Device::metrics();
/// the aggregate views below — per-tag I/O, totals, peak residency,
/// fault tallies — are cheaper to collect as before/after diffs around
/// a measured region than to stream per charge, and diffing keeps the
/// device's charge paths untouched (io_invariance pins that attaching a
/// registry changes zero counts).
namespace emjoin::metrics {

/// Per-tag I/O snapshot, taken before the measured region.
using TagSnapshot = std::map<std::string, extmem::IoStats, std::less<>>;

/// Folds the device's I/O delta since (`before`, `tags_before`) into
/// `reg`: `emjoin_device_io_blocks_total{op,tag}` per nonzero tag delta,
/// `emjoin_device_io_blocks_total{op}` totals (tag label absent), and
/// the `emjoin_peak_resident_tuples` gauge (max over collections).
inline void CollectDeviceDelta(const extmem::Device& dev,
                               const extmem::IoStats& before,
                               const TagSnapshot& tags_before,
                               Registry* reg) {
  const extmem::IoStats delta = dev.stats() - before;
  if (delta.block_reads > 0) {
    reg->GetCounter("emjoin_device_io_blocks_total", {{"op", "read"}})
        ->Add(delta.block_reads);
  }
  if (delta.block_writes > 0) {
    reg->GetCounter("emjoin_device_io_blocks_total", {{"op", "write"}})
        ->Add(delta.block_writes);
  }
  for (const auto& [tag, after] : dev.per_tag()) {
    extmem::IoStats tag_delta = after;
    if (const auto it = tags_before.find(tag); it != tags_before.end()) {
      tag_delta = after - it->second;
    }
    if (tag_delta.block_reads > 0) {
      reg->GetCounter("emjoin_device_io_blocks_total",
                      {{"op", "read"}, {"tag", tag}})
          ->Add(tag_delta.block_reads);
    }
    if (tag_delta.block_writes > 0) {
      reg->GetCounter("emjoin_device_io_blocks_total",
                      {{"op", "write"}, {"tag", tag}})
          ->Add(tag_delta.block_writes);
    }
  }
  reg->GetGauge("emjoin_peak_resident_tuples")
      ->SetMax(dev.gauge().high_water());
}

/// Folds a FaultStats delta into `emjoin_faults_total{kind}` counters
/// (zero kinds are skipped so fault-free runs export no fault series)
/// and records each retry burst's size in the retry histogram.
inline void CollectFaultDelta(const extmem::FaultStats& delta, Registry* reg) {
  const auto add = [reg](const char* kind, std::uint64_t v) {
    if (v > 0) reg->GetCounter("emjoin_faults_total", {{"kind", kind}})->Add(v);
  };
  add("read_fault", delta.read_faults);
  add("write_fault", delta.write_faults);
  add("torn_write", delta.torn_writes);
  add("retry", delta.retries);
  add("backoff_io", delta.backoff_ios);
  add("budget_shrink", delta.shrinks);
  add("retry_exhaustion", delta.exhaustions);
  if (delta.retries > 0) {
    reg->GetHistogram("emjoin_fault_retry_burst")->Record(delta.retries);
  }
}

/// Convenience: collect the injector's lifetime stats (no baseline).
inline void CollectFaultStats(const extmem::Device& dev, Registry* reg) {
  if (const extmem::FaultInjector* inj = dev.fault_injector()) {
    CollectFaultDelta(inj->stats(), reg);
  }
}

}  // namespace emjoin::metrics

#endif  // EMJOIN_METRICS_COLLECT_H_
