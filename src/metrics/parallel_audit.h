#ifndef EMJOIN_METRICS_PARALLEL_AUDIT_H_
#define EMJOIN_METRICS_PARALLEL_AUDIT_H_

#include <string>
#include <vector>

#include "metrics/cost_model.h"

namespace emjoin::metrics {

/// The parallel-speedup audit: the load-balance claim of sharded
/// execution, checked the same way Table 1's formulas are.
///
/// For each audited workload (uniform line3, uniform star, Zipf-skewed
/// line3) and each K in {2, 4, 8}, a seeded random instance is joined
/// via TryParallelJoinAuto and one CostPoint is recorded with
///   n        = K,
///   measured = max-per-shard I/O (the critical path),
///   expected = sum-per-shard I/O / K (perfect balance).
/// The row PASSes iff every point's measured/expected ratio stays under
/// a per-workload band (wider under skew, per "Skew Strikes Back") and
/// the critical path at every K beats the serial join's I/O — i.e.
/// sharding balances AND actually shortens the I/O critical path.
/// Everything is seeded and simulated, so the points are bit-stable and
/// bench_diff gates them exactly against the committed baseline.
///
/// Names all start with "parallel_" so emjoin_audit's --model filter
/// can address them; rows serialize through the standard AuditRow JSON
/// (m_points stays empty — there is no M-series here).
std::vector<std::string> ParallelAuditNames();

bool IsParallelAuditName(const std::string& name);

/// Runs the parallel audits; `only_name` (when non-empty) restricts to
/// that row. `options.slope_tol` is recorded for reference; the verdict
/// uses the per-workload band as max_ratio.
std::vector<AuditRow> RunParallelAudits(const AuditOptions& options = {},
                                        const std::string& only_name = "");

}  // namespace emjoin::metrics

#endif  // EMJOIN_METRICS_PARALLEL_AUDIT_H_
