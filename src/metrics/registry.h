#ifndef EMJOIN_METRICS_REGISTRY_H_
#define EMJOIN_METRICS_REGISTRY_H_

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace emjoin::metrics {

/// A label set attached to one series of a metric family, e.g.
/// {{"op", "read"}, {"tag", "sort"}}. Labels are sorted by key before a
/// series is materialized, so insertion order never changes identity or
/// output order.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(std::uint64_t delta) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time value. Merging registries keeps the max, which is the
/// right semantics for the peaks (resident tuples, high water) this
/// subsystem tracks; use a Counter for anything additive.
class Gauge {
 public:
  void Set(std::uint64_t v) { value_ = v; }
  void SetMax(std::uint64_t v) {
    if (v > value_) value_ = v;
  }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Log2-bucketed histogram: bucket i counts observations with
/// value <= 2^i (non-cumulative storage; the Prometheus exposition
/// accumulates). Covers 2^0 .. 2^(kFiniteBuckets-1) plus an overflow
/// (+Inf) bucket, which is plenty for fan-ins, run lengths, and batch
/// sizes in a simulator whose instances are < 2^32 tuples.
class Histogram {
 public:
  static constexpr int kFiniteBuckets = 32;

  /// Index of the smallest power-of-two upper bound holding `v`
  /// (0 and 1 land in bucket 0, 2 in 1, 3..4 in 2, ...).
  static int BucketFor(std::uint64_t v) {
    if (v <= 1) return 0;
    const int bucket = std::bit_width(v - 1);
    return bucket < kFiniteBuckets ? bucket : kFiniteBuckets;
  }

  /// Upper bound of finite bucket i (2^i).
  static std::uint64_t BucketBound(int i) { return std::uint64_t{1} << i; }

  void Record(std::uint64_t v) {
    ++counts_[static_cast<std::size_t>(BucketFor(v))];
    sum_ += v;
    ++count_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  const std::array<std::uint64_t, kFiniteBuckets + 1>& buckets() const {
    return counts_;
  }

  void MergeFrom(const Histogram& other) {
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      counts_[i] += other.counts_[i];
    }
    sum_ += other.sum_;
    count_ += other.count_;
  }

 private:
  std::array<std::uint64_t, kFiniteBuckets + 1> counts_{};
  std::uint64_t sum_ = 0;
  std::uint64_t count_ = 0;
};

/// Registry of named metric families, each fanned out by label set.
///
/// Like the tracer, the registry is a pure observer: instrumented code
/// holds a `Registry*` that is nullptr by default, and attaching one
/// never charges or suppresses an I/O (pinned by io_invariance tests).
/// Lookups return stable pointers (node-based storage), so hot loops
/// can resolve a series once and bump it repeatedly.
///
/// Threading contract (see docs/PARALLELISM.md): a Registry instance is
/// confined to one thread and takes no locks. Sharded execution gives
/// each shard its own Registry (attached to its own Device) and the
/// orchestrator folds them into the query-level registry at the merge
/// barrier via the labeled MergeFrom overload, tagging every absorbed
/// series with shard=<i>.
class Registry {
 public:
  Counter* GetCounter(const std::string& family, const Labels& labels = {});
  Gauge* GetGauge(const std::string& family, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& family,
                          const Labels& labels = {});

  /// Sets the family's `# HELP` text for the Prometheus exposition.
  /// Families without help text get a generic default line, so the
  /// exposition always carries HELP before TYPE for every family.
  void SetHelp(const std::string& family, const std::string& help);

  /// Folds `other` in: counters and histograms add, gauges keep the max.
  void MergeFrom(const Registry& other);

  /// MergeFrom, with `extra_labels` appended to every absorbed series'
  /// label set (e.g. {{"shard", "3"}}). Series that differ only in the
  /// extra labels stay distinct in this registry.
  void MergeFrom(const Registry& other, const Labels& extra_labels);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// JSON object with "counters" / "gauges" / "histograms" sections;
  /// series keys are `family{label="value",...}`. Deterministic order.
  std::string ToJson() const;

  /// Prometheus text exposition format: `# HELP` and `# TYPE` lines per
  /// family, fully escaped label values, cumulative histogram buckets
  /// with _bucket/_sum/_count series. Conformance is pinned by
  /// CheckPrometheusText (metrics_test + the CI telemetry smoke job).
  std::string ToPrometheusText() const;

  bool WriteJson(const std::string& path) const;
  bool WritePrometheus(const std::string& path) const;

  /// Canonical series key: `{k1="v1",k2="v2"}` with keys sorted, or ""
  /// for a label-free series.
  static std::string LabelKey(const Labels& labels);

  /// Appends `value` with Prometheus label-value escaping (backslash,
  /// double quote, and newline become \\, \", and \n).
  static void AppendEscapedLabelValue(std::string* out,
                                      const std::string& value);

 private:
  /// Inverse of LabelKey: reconstructs the label pairs from a canonical
  /// series key (undoing the escaping), so merged series can be re-keyed
  /// with extra labels appended.
  static Labels ParseLabelKey(const std::string& key);

  template <typename T>
  using FamilyMap = std::map<std::string, std::map<std::string, T>>;

  FamilyMap<Counter> counters_;
  FamilyMap<Gauge> gauges_;
  FamilyMap<Histogram> histograms_;
  std::map<std::string, std::string> help_;
};

/// Validates `text` against the Prometheus text exposition format:
/// comment/sample line syntax, metric and label name charsets, label
/// value escaping, float sample values, HELP/TYPE at most once per
/// family with TYPE preceding that family's samples, every sample
/// preceded by its family's TYPE, and histogram structure (each
/// _bucket series carries `le`, cumulative counts are non-decreasing,
/// the mandatory le="+Inf" bucket is present and equals _count).
/// Returns true when the text conforms; otherwise false with a
/// line-numbered diagnostic in *error (when non-null).
bool CheckPrometheusText(const std::string& text, std::string* error);

}  // namespace emjoin::metrics

#endif  // EMJOIN_METRICS_REGISTRY_H_
