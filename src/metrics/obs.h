#ifndef EMJOIN_METRICS_OBS_H_
#define EMJOIN_METRICS_OBS_H_

// Shared observability flag surface for the benches and emjoin_cli:
//
//   --metrics=PATH             export the global metrics registry
//   --metrics-format={json,prom}   export format (default json)
//   --audit=PATH               write a measured-vs-bound audit file
//   --export-port=PORT         serve /metrics, /healthz, /progress,
//                              /events over HTTP while the run lasts
//                              (0 picks an ephemeral port)
//   --export-linger-ms=MS      keep the exporter up this long after the
//                              run finishes, for one final scrape
//   --recorder=PATH            dump the flight-recorder event log as
//                              JSONL when the run exits
//
// Header-only so tools and benches share one parser without a new
// library target. The registry itself stays observer-only: attaching
// it to a Device changes zero charged I/Os (pinned by io_invariance).
// The live-telemetry side of these flags (attachment, exporter
// lifecycle) lives in obs/runtime.h, one layer up.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "extmem/device.h"
#include "metrics/registry.h"

namespace emjoin::metrics {

struct ObsConfig {
  bool metrics_enabled = false;
  std::string metrics_path;
  std::string metrics_format = "json";  // json | prom
  std::string audit_path;               // empty: no audit output
  int export_port = -1;                 // <0: no HTTP exporter
  unsigned export_linger_ms = 0;        // exporter grace after the run
  std::string recorder_path;            // empty: no flight-recorder dump
};

inline ObsConfig& GlobalObsConfig() {
  static ObsConfig config;
  return config;
}

/// The process-wide registry every instrumented Device feeds.
inline Registry& GlobalMetricsRegistry() {
  static Registry registry;
  return registry;
}

/// Tries to consume one observability flag. Returns 1 when `arg` was
/// consumed, 0 when it is not an observability flag, -1 on a malformed
/// value (diagnostic already printed to stderr).
inline int ParseObsFlag(std::string_view arg) {
  ObsConfig& config = GlobalObsConfig();
  if (arg.rfind("--metrics=", 0) == 0) {
    config.metrics_enabled = true;
    config.metrics_path = std::string(arg.substr(10));
    if (config.metrics_path.empty()) {
      std::fprintf(stderr, "--metrics requires a path\n");
      return -1;
    }
    return 1;
  }
  if (arg.rfind("--metrics-format=", 0) == 0) {
    config.metrics_format = std::string(arg.substr(17));
    if (config.metrics_format != "json" && config.metrics_format != "prom") {
      std::fprintf(stderr,
                   "unknown metrics format '%s' (expected json or prom)\n",
                   config.metrics_format.c_str());
      return -1;
    }
    return 1;
  }
  if (arg.rfind("--audit=", 0) == 0) {
    config.audit_path = std::string(arg.substr(8));
    if (config.audit_path.empty()) {
      std::fprintf(stderr, "--audit requires a path\n");
      return -1;
    }
    return 1;
  }
  if (arg.rfind("--export-port=", 0) == 0) {
    const std::string value(arg.substr(14));
    char* end = nullptr;
    const long port = std::strtol(value.c_str(), &end, 10);
    if (value.empty() || end == nullptr || *end != '\0' || port < 0 ||
        port > 65535) {
      std::fprintf(stderr, "--export-port requires a port in [0, 65535]\n");
      return -1;
    }
    config.export_port = static_cast<int>(port);
    return 1;
  }
  if (arg.rfind("--export-linger-ms=", 0) == 0) {
    const std::string value(arg.substr(19));
    char* end = nullptr;
    const long ms = std::strtol(value.c_str(), &end, 10);
    if (value.empty() || end == nullptr || *end != '\0' || ms < 0) {
      std::fprintf(stderr,
                   "--export-linger-ms requires a non-negative integer\n");
      return -1;
    }
    config.export_linger_ms = static_cast<unsigned>(ms);
    return 1;
  }
  if (arg.rfind("--recorder=", 0) == 0) {
    config.recorder_path = std::string(arg.substr(11));
    if (config.recorder_path.empty()) {
      std::fprintf(stderr, "--recorder requires a path\n");
      return -1;
    }
    return 1;
  }
  return 0;
}

/// True when per-run registry collection should happen: either the user
/// asked for a metrics file, or the HTTP exporter needs fresh samples
/// to serve on /metrics.
inline bool MetricsCollectionEnabled() {
  const ObsConfig& config = GlobalObsConfig();
  return config.metrics_enabled || config.export_port >= 0;
}

/// Attaches the global registry to `dev` whenever samples will be
/// consumed — a metrics file was requested, or the HTTP exporter will
/// serve them live.
inline void AttachMetrics(extmem::Device* dev) {
  if (MetricsCollectionEnabled()) {
    dev->set_metrics(&GlobalMetricsRegistry());
  }
}

/// Writes the global registry to the configured path. Returns false
/// (after a diagnostic) only when a requested export cannot be written.
inline bool WriteMetricsFile() {
  const ObsConfig& config = GlobalObsConfig();
  if (!config.metrics_enabled) return true;
  const Registry& reg = GlobalMetricsRegistry();
  const bool ok = config.metrics_format == "prom"
                      ? reg.WritePrometheus(config.metrics_path)
                      : reg.WriteJson(config.metrics_path);
  if (!ok) {
    std::fprintf(stderr, "failed to write metrics to %s\n",
                 config.metrics_path.c_str());
    return false;
  }
  std::fprintf(stderr, "metrics (%s) -> %s\n", config.metrics_format.c_str(),
               config.metrics_path.c_str());
  return true;
}

}  // namespace emjoin::metrics

#endif  // EMJOIN_METRICS_OBS_H_
