#ifndef EMJOIN_METRICS_OBS_H_
#define EMJOIN_METRICS_OBS_H_

// Shared observability flag surface for the benches and emjoin_cli:
//
//   --metrics=PATH             export the global metrics registry
//   --metrics-format={json,prom}   export format (default json)
//   --audit=PATH               write a measured-vs-bound audit file
//
// Header-only so tools and benches share one parser without a new
// library target. The registry itself stays observer-only: attaching
// it to a Device changes zero charged I/Os (pinned by io_invariance).

#include <cstdio>
#include <string>
#include <string_view>

#include "extmem/device.h"
#include "metrics/registry.h"

namespace emjoin::metrics {

struct ObsConfig {
  bool metrics_enabled = false;
  std::string metrics_path;
  std::string metrics_format = "json";  // json | prom
  std::string audit_path;               // empty: no audit output
};

inline ObsConfig& GlobalObsConfig() {
  static ObsConfig config;
  return config;
}

/// The process-wide registry every instrumented Device feeds.
inline Registry& GlobalMetricsRegistry() {
  static Registry registry;
  return registry;
}

/// Tries to consume one observability flag. Returns 1 when `arg` was
/// consumed, 0 when it is not an observability flag, -1 on a malformed
/// value (diagnostic already printed to stderr).
inline int ParseObsFlag(std::string_view arg) {
  ObsConfig& config = GlobalObsConfig();
  if (arg.rfind("--metrics=", 0) == 0) {
    config.metrics_enabled = true;
    config.metrics_path = std::string(arg.substr(10));
    if (config.metrics_path.empty()) {
      std::fprintf(stderr, "--metrics requires a path\n");
      return -1;
    }
    return 1;
  }
  if (arg.rfind("--metrics-format=", 0) == 0) {
    config.metrics_format = std::string(arg.substr(17));
    if (config.metrics_format != "json" && config.metrics_format != "prom") {
      std::fprintf(stderr,
                   "unknown metrics format '%s' (expected json or prom)\n",
                   config.metrics_format.c_str());
      return -1;
    }
    return 1;
  }
  if (arg.rfind("--audit=", 0) == 0) {
    config.audit_path = std::string(arg.substr(8));
    if (config.audit_path.empty()) {
      std::fprintf(stderr, "--audit requires a path\n");
      return -1;
    }
    return 1;
  }
  return 0;
}

/// Attaches the global registry to `dev` iff --metrics was requested.
inline void AttachMetrics(extmem::Device* dev) {
  if (GlobalObsConfig().metrics_enabled) {
    dev->set_metrics(&GlobalMetricsRegistry());
  }
}

/// Writes the global registry to the configured path. Returns false
/// (after a diagnostic) only when a requested export cannot be written.
inline bool WriteMetricsFile() {
  const ObsConfig& config = GlobalObsConfig();
  if (!config.metrics_enabled) return true;
  const Registry& reg = GlobalMetricsRegistry();
  const bool ok = config.metrics_format == "prom"
                      ? reg.WritePrometheus(config.metrics_path)
                      : reg.WriteJson(config.metrics_path);
  if (!ok) {
    std::fprintf(stderr, "failed to write metrics to %s\n",
                 config.metrics_path.c_str());
    return false;
  }
  std::fprintf(stderr, "metrics (%s) -> %s\n", config.metrics_format.c_str(),
               config.metrics_path.c_str());
  return true;
}

}  // namespace emjoin::metrics

#endif  // EMJOIN_METRICS_OBS_H_
