#include "metrics/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>

#include "core/acyclic_join.h"
#include "core/line3.h"
#include "core/lw.h"
#include "core/pairwise.h"
#include "core/triangle.h"
#include "core/unbalanced5.h"
#include "core/unbalanced7.h"
#include "core/yannakakis.h"
#include "gens/psi.h"
#include "query/hypergraph.h"
#include "storage/relation.h"
#include "workload/constructions.h"

namespace emjoin::metrics {

namespace {

using storage::Relation;

/// Instance-exact Theorem 3 bound (GenS families + Ψ via the uncharged
/// counting oracle) — the expected curve for the models whose closed
/// form depends on the built instance, not just the scale parameter.
long double Theorem3Exact(const std::vector<Relation>& rels, TupleCount m,
                          TupleCount b) {
  query::JoinQuery q;
  for (const Relation& r : rels) q.AddRelation(r.schema(), r.size());
  return gens::PredictBoundExact(q, rels, m, b).bound;
}

void RunAcyclic(const std::vector<Relation>& rels, const core::EmitFn& emit) {
  core::AcyclicJoin(rels, emit);
}

/// §6.3 hard L5 (same shape as bench_line5_unbalanced): matchings at the
/// ends, cross products R2/R4, R3 a z1 -> z2 mapping. N1 = N5 = k,
/// N2 = k*z1, N3 = z1, N4 = z2*k; unbalanced iff z2 > 1.
std::vector<Relation> HardL5(extmem::Device* dev, TupleCount k, TupleCount z1,
                             TupleCount z2) {
  std::vector<Relation> rels;
  rels.push_back(workload::Matching(dev, 0, 1, k));
  rels.push_back(workload::CrossProduct(dev, 1, 2, k, z1));
  rels.push_back(workload::ManyToOne(dev, 2, 3, z1, z2));
  rels.push_back(workload::CrossProduct(dev, 3, 4, z2, k));
  rels.push_back(workload::Matching(dev, 4, 5, k));
  return rels;
}

/// A.3 unbalanced-middle L7: the hard L5 prefix plus matching tails.
std::vector<Relation> HardL7(extmem::Device* dev, TupleCount k, TupleCount z1,
                             TupleCount z2) {
  std::vector<Relation> rels = HardL5(dev, k, z1, z2);
  rels.push_back(workload::Matching(dev, 5, 6, k));
  rels.push_back(workload::Matching(dev, 6, 7, k));
  return rels;
}

/// §7.2 lollipop (same shape as bench_lollipop): cross-product core over
/// {v0,v1}, petal on v0, stick on v1, tail extending the stick.
std::vector<Relation> LollipopInstance(extmem::Device* dev,
                                       TupleCount core_dom, TupleCount n) {
  std::vector<Relation> rels;
  rels.push_back(workload::CrossProduct(dev, 0, 1, core_dom, core_dom));
  rels.push_back(workload::OneToMany(dev, 0, 2, n, core_dom));
  rels.push_back(workload::OneToMany(dev, 1, 3, n, core_dom));
  rels.push_back(workload::OneToMany(dev, 3, 4, n, n));
  return rels;
}

/// §7.3 dumbbell (same shape as bench_dumbbell).
std::vector<Relation> DumbbellInstance(extmem::Device* dev, TupleCount dl,
                                       TupleCount dr, TupleCount n) {
  std::vector<Relation> rels;
  rels.push_back(workload::CrossProduct(dev, 0, 1, dl, dl));
  rels.push_back(workload::OneToMany(dev, 0, 2, n, dl));
  rels.push_back(workload::OneToMany(dev, 1, 3, n, dl));
  rels.push_back(workload::CrossProduct(dev, 3, 4, dr, dr));
  rels.push_back(workload::OneToMany(dev, 4, 5, n, dr));
  return rels;
}

/// Deterministic random triangle: three dom x dom edge sets of ~dom^2/4
/// edges each (same construction as bench_triangle_lw, seed fixed).
std::vector<Relation> RandomTriangle(extmem::Device* dev, TupleCount dom) {
  std::mt19937_64 rng(17);
  const TupleCount target = dom * dom / 4;
  auto edges = [&](storage::AttrId x, storage::AttrId y) {
    std::vector<storage::Tuple> rows;
    for (TupleCount i = 0; i < target; ++i) {
      rows.push_back({rng() % dom, rng() % dom});
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    return Relation::FromTuples(dev, storage::Schema({x, y}), rows);
  };
  return {edges(0, 1), edges(0, 2), edges(1, 2)};
}

/// Deterministic LW_3 instance: each relation misses one of the three
/// attributes; ~dom^2/2 random tuples each.
std::vector<Relation> RandomLw3(extmem::Device* dev, TupleCount dom) {
  std::mt19937_64 rng(300 + dom);
  std::vector<Relation> rels;
  for (std::size_t i = 0; i < 3; ++i) {
    std::vector<storage::AttrId> attrs;
    for (std::size_t j = 0; j < 3; ++j) {
      if (j != i) attrs.push_back(static_cast<storage::AttrId>(j));
    }
    std::vector<storage::Tuple> rows;
    for (TupleCount t = 0; t < dom * dom / 2; ++t) {
      rows.push_back({rng() % dom, rng() % dom});
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    rels.push_back(Relation::FromTuples(dev, storage::Schema(attrs), rows));
  }
  return rels;
}

TupleCount MaxSize(const std::vector<Relation>& rels) {
  TupleCount n = 0;
  for (const Relation& r : rels) n = std::max(n, r.size());
  return n;
}

}  // namespace

std::vector<CostModel> Table1Models() {
  std::vector<CostModel> models;

  {
    CostModel m;
    m.name = "two_rel_bnl";
    m.row = "Table 1, row 1 (§3)";
    m.claim = "N1*N2/(MB) + SumN/B, block nested loop";
    m.m = 128;
    m.b = 16;
    m.n_series = {512, 1024, 2048, 4096};
    m.m_series = {64, 128, 256, 512};
    m.m_series_n = 2048;
    m.build = [](extmem::Device* dev, TupleCount n) {
      return std::vector<Relation>{workload::ManyToOne(dev, 0, 1, n, 1),
                                   workload::OneToMany(dev, 1, 2, n, 1)};
    };
    m.exec = [](const std::vector<Relation>& rels, const core::EmitFn& emit) {
      core::Assignment a(core::MakeResultSchema(rels));
      core::BlockNestedLoopJoin(rels[0], rels[1], &a, emit);
    };
    m.expected = [](TupleCount n, TupleCount mm, TupleCount bb) {
      return static_cast<long double>(n) * n / (mm * bb) + 2.0L * n / bb;
    };
    models.push_back(std::move(m));
  }

  {
    CostModel m;
    m.name = "line3_alg1";
    m.row = "Table 1 / Theorem 1 (L3, Algorithm 1)";
    m.claim = "N1*N3/(MB) + SumN/B on the Fig. 3 instance";
    m.m = 64;
    m.b = 8;
    m.n_series = {512, 1024, 2048, 4096};
    m.m_series = {32, 64, 128, 256};
    m.m_series_n = 2048;
    m.build = [](extmem::Device* dev, TupleCount n) {
      return workload::L3WorstCase(dev, n, 1, n);
    };
    m.exec = [](const std::vector<Relation>& rels, const core::EmitFn& emit) {
      core::LineJoin3(rels[0], rels[1], rels[2], emit);
    };
    m.expected = [](TupleCount n, TupleCount mm, TupleCount bb) {
      return static_cast<long double>(n) * n / (mm * bb) + 3.0L * n / bb;
    };
    models.push_back(std::move(m));
  }

  {
    CostModel m;
    m.name = "line3_gens";
    m.row = "Theorem 3 / eq. (4) GenS families (L3, Algorithm 2)";
    m.claim = "exact GenS bound: min over families of max Psi + SumN/B";
    m.m = 64;
    m.b = 8;
    m.n_series = {512, 1024, 2048, 4096};
    m.m_series = {32, 64, 128, 256};
    m.m_series_n = 2048;
    m.build = [](extmem::Device* dev, TupleCount n) {
      return workload::L3WorstCase(dev, n, 1, n);
    };
    m.exec = RunAcyclic;
    m.expected_instance = Theorem3Exact;
    models.push_back(std::move(m));
  }

  {
    CostModel m;
    m.name = "line4_alg2";
    m.row = "§4.1 (L4 peeling)";
    m.claim = "max(N1N3, N2N4)/(MB) + SumN/B on the cross-product line";
    m.m = 32;
    m.b = 8;
    m.n_series = {256, 512, 1024, 2048};
    m.m_series = {16, 32, 64, 128};
    m.m_series_n = 1024;
    m.build = [](extmem::Device* dev, TupleCount n) {
      return workload::CrossProductLine(dev, {1, n, 1, n, 1});
    };
    m.exec = RunAcyclic;
    m.expected = [](TupleCount n, TupleCount mm, TupleCount bb) {
      return static_cast<long double>(n) * n / (mm * bb) + 4.0L * n / bb;
    };
    models.push_back(std::move(m));
  }

  {
    CostModel m;
    m.name = "line5_alg2";
    m.row = "Theorem 5 / Corollary 2 (balanced L5)";
    m.claim = "N1*N3*N5/(M^2 B) + SumN/B on the cross-product line";
    m.m = 32;
    m.b = 8;
    m.n_series = {32, 64, 128};
    m.m_series = {16, 32, 64};
    m.m_series_n = 64;
    m.build = [](extmem::Device* dev, TupleCount n) {
      return workload::CrossProductLine(dev, {1, n, 1, n, 1, n});
    };
    m.exec = RunAcyclic;
    m.expected = [](TupleCount n, TupleCount mm, TupleCount bb) {
      return static_cast<long double>(n) * n * n / (mm * mm * bb) +
             5.0L * n / bb;
    };
    models.push_back(std::move(m));
  }

  {
    CostModel m;
    m.name = "star3_alg2";
    m.row = "Table 1 / Theorem 4 (star T_3)";
    m.claim = "Prod N_i/(M^(n-1) B) + SumN/B on the Theorem 4 instance";
    m.m = 64;
    m.b = 8;
    m.n_series = {64, 128, 192};
    m.m_series = {32, 64, 128};
    m.m_series_n = 128;
    m.build = [](extmem::Device* dev, TupleCount n) {
      return workload::StarWorstCase(dev, {n, n, n});
    };
    m.exec = RunAcyclic;
    m.expected = [](TupleCount n, TupleCount mm, TupleCount bb) {
      return static_cast<long double>(n) * n * n / (mm * mm * bb) +
             (3.0L * n + 1) / bb;
    };
    models.push_back(std::move(m));
  }

  {
    CostModel m;
    m.name = "lollipop_alg2";
    m.row = "§7.2 (lollipop)";
    m.claim = "exact Theorem 3 bound, core_dom = 4";
    m.m = 32;
    m.b = 8;
    m.n_series = {64, 128, 256};
    m.m_series = {16, 32, 64};
    m.m_series_n = 128;
    m.build = [](extmem::Device* dev, TupleCount n) {
      return LollipopInstance(dev, 4, n);
    };
    m.exec = RunAcyclic;
    m.expected_instance = Theorem3Exact;
    models.push_back(std::move(m));
  }

  {
    CostModel m;
    m.name = "dumbbell_alg2";
    m.row = "§7.3 (dumbbell)";
    m.claim = "exact Theorem 3 bound, cores 4x4";
    m.m = 32;
    m.b = 8;
    m.n_series = {64, 128, 256};
    m.m_series = {16, 32, 64};
    m.m_series_n = 128;
    m.build = [](extmem::Device* dev, TupleCount n) {
      return DumbbellInstance(dev, 4, 4, n);
    };
    m.exec = RunAcyclic;
    m.expected_instance = Theorem3Exact;
    models.push_back(std::move(m));
  }

  {
    CostModel m;
    m.name = "equal_size_l5";
    m.row = "§7.1 / Theorem 7 (equal sizes, L5: c = 3)";
    m.claim = "(N/M)^c * M/B + SumN/B via the vertex-packing instance";
    m.m = 32;
    m.b = 8;
    m.n_series = {64, 128, 256};
    m.m_series = {16, 32, 64};
    m.m_series_n = 128;
    m.build = [](extmem::Device* dev, TupleCount n) {
      return workload::EqualSizeWorstCase(dev, query::JoinQuery::Line(5), n);
    };
    m.exec = RunAcyclic;
    m.expected = [](TupleCount n, TupleCount mm, TupleCount bb) {
      const long double r = static_cast<long double>(n) / mm;
      return r * r * r * mm / bb + 5.0L * n / bb;
    };
    models.push_back(std::move(m));
  }

  {
    CostModel m;
    m.name = "unbalanced5_alg4";
    m.row = "§6.3 / Algorithm 4 (unbalanced L5)";
    m.claim = "N1N3N5/(MB) + N1N3/B + N3N5/B + SumN/B, z1=32 z2=8";
    m.m = 64;
    m.b = 8;
    m.n_series = {64, 128, 256};
    m.m_series = {32, 64, 128};
    m.m_series_n = 128;
    m.build = [](extmem::Device* dev, TupleCount k) {
      return HardL5(dev, k, 32, 8);
    };
    m.exec = [](const std::vector<Relation>& rels, const core::EmitFn& emit) {
      core::LineJoinUnbalanced5(rels[0], rels[1], rels[2], rels[3], rels[4],
                                emit);
    };
    m.expected = [](TupleCount k, TupleCount mm, TupleCount bb) {
      const long double z1 = 32, z2 = 8;
      return static_cast<long double>(k) * z1 * k / (mm * bb) +
             2.0L * k * z1 / bb +
             (2.0L * k + k * z1 + z1 + z2 * k) / bb;
    };
    models.push_back(std::move(m));
  }

  {
    CostModel m;
    m.name = "unbalanced7_alg5";
    m.row = "§6.3 / Algorithm 5, Appendix A.3 (unbalanced L7)";
    m.claim = "materialize S=R3R4R5 then Alg 2: N1|S|N7/(M^2 B) + 3|S|/B "
              "+ SumN/B, z1=z2=32";
    m.m = 64;
    m.b = 8;
    m.n_series = {32, 64, 128};
    m.m_series = {32, 64, 128};
    m.m_series_n = 64;
    m.build = [](extmem::Device* dev, TupleCount k) {
      return HardL7(dev, k, 32, 32);
    };
    m.exec = [](const std::vector<Relation>& rels, const core::EmitFn& emit) {
      core::LineJoinUnbalanced7(rels, emit);
    };
    m.expected = [](TupleCount k, TupleCount mm, TupleCount bb) {
      const long double z1 = 32;
      return static_cast<long double>(k) * k * k * z1 / (mm * mm * bb) +
             3.0L * k * z1 / bb + (4.0L * k + z1) / bb;
    };
    // The composed pipeline (materialize S, then the general acyclic
    // join over {R1, R2, S, R6, R7}) re-sorts S and the flanking
    // matchings on every boundary, so its constant sits near 50x the
    // bare formula; the exponent still tracks.
    m.max_ratio = 64.0;
    models.push_back(std::move(m));
  }

  {
    CostModel m;
    m.name = "yannakakis_gap";
    m.row = "§1.2 (pairwise/materializing baseline, factor-M gap)";
    m.claim = "Yannakakis pays |Q(R)|/B, flat in M — the emit-model "
              "optimum is |Q(R)|/(MB)";
    m.m = 64;
    m.b = 8;
    m.n_series = {128, 256, 512};
    m.m_series = {16, 32, 64, 128};
    m.m_series_n = 256;
    m.build = [](extmem::Device* dev, TupleCount n) {
      return std::vector<Relation>{workload::ManyToOne(dev, 0, 1, n, 1),
                                   workload::OneToMany(dev, 1, 2, n, 1)};
    };
    m.exec = [](const std::vector<Relation>& rels, const core::EmitFn& emit) {
      core::YannakakisJoin(rels, emit);
    };
    m.expected = [](TupleCount n, TupleCount /*mm*/, TupleCount bb) {
      return 2.0L * n * n / bb + 4.0L * n / bb;
    };
    models.push_back(std::move(m));
  }

  {
    CostModel m;
    m.name = "triangle_c3";
    m.row = "Table 1, row 2 (triangle, cyclic comparison)";
    m.claim = "N^{3/2}/(sqrt(M) B) + SumN/B, value partitioning";
    m.m = 256;
    m.b = 16;
    m.n_series = {64, 96, 128};  // scale = attribute domain size
    m.m_series = {128, 256, 512};
    m.m_series_n = 128;
    m.build = [](extmem::Device* dev, TupleCount dom) {
      return RandomTriangle(dev, dom);
    };
    m.exec = [](const std::vector<Relation>& rels, const core::EmitFn& emit) {
      core::TriangleJoin(rels[0], rels[1], rels[2], emit);
    };
    m.expected_instance = [](const std::vector<Relation>& rels, TupleCount mm,
                             TupleCount bb) {
      const long double n = static_cast<long double>(MaxSize(rels));
      return std::pow(n, 1.5L) / (std::sqrt(static_cast<long double>(mm)) *
                                  bb) +
             3.0L * n / bb;
    };
    models.push_back(std::move(m));
  }

  {
    CostModel m;
    m.name = "lw3";
    m.row = "Table 1, row 3 (Loomis-Whitney LW_3)";
    m.claim = "(N/M)^{n/(n-1)} M/B + SumN/B, value partitioning";
    m.m = 256;
    m.b = 16;
    m.n_series = {64, 96, 128};  // scale = attribute domain size
    m.m_series = {128, 256, 512};
    m.m_series_n = 96;
    m.build = [](extmem::Device* dev, TupleCount dom) {
      return RandomLw3(dev, dom);
    };
    m.exec = [](const std::vector<Relation>& rels, const core::EmitFn& emit) {
      core::LoomisWhitneyJoin(rels, emit);
    };
    m.expected_instance = [](const std::vector<Relation>& rels, TupleCount mm,
                             TupleCount bb) {
      const long double n = static_cast<long double>(MaxSize(rels));
      return std::pow(n / mm, 1.5L) * mm / bb + 3.0L * n / bb;
    };
    models.push_back(std::move(m));
  }

  return models;
}

// ---------------------------------------------------------------------
// Audit runner.
// ---------------------------------------------------------------------

double FitSlope(const std::vector<std::pair<double, double>>& xy) {
  if (xy.size() < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const auto& [x, y] : xy) {
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double n = static_cast<double>(xy.size());
  const double denom = n * sxx - sx * sx;
  if (denom == 0) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

namespace {

CostPoint RunPoint(const CostModel& model, TupleCount n, TupleCount m,
                   TupleCount b) {
  extmem::Device dev(m, b);
  const std::vector<Relation> rels = model.build(&dev, n);
  CostPoint p;
  p.n = n;
  p.m = m;
  p.b = b;
  p.expected = model.expected_instance
                   ? model.expected_instance(rels, m, b)
                   : model.expected(n, m, b);
  core::CountingSink sink;
  const extmem::IoStats before = dev.stats();
  model.exec(rels, sink.AsEmitFn());
  p.measured = (dev.stats() - before).total();
  p.results = sink.count();
  return p;
}

SlopeFit FitSeries(const std::vector<CostPoint>& points,
                   bool against_m) {
  std::vector<std::pair<double, double>> meas, expd;
  for (const CostPoint& p : points) {
    const double x =
        std::log(static_cast<double>(against_m ? p.m : p.n));
    meas.emplace_back(x, std::log(static_cast<double>(
                             p.measured > 0 ? p.measured : 1)));
    expd.emplace_back(x, std::log(static_cast<double>(
                             p.expected > 0 ? p.expected : 1.0L)));
  }
  SlopeFit fit;
  fit.measured = FitSlope(meas);
  fit.expected = FitSlope(expd);
  return fit;
}

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

AuditRow RunAudit(const CostModel& model, const AuditOptions& options) {
  AuditRow row;
  row.name = model.name;
  row.row = model.row;
  row.claim = model.claim;
  row.slope_tol =
      model.slope_tol > 0 ? model.slope_tol : options.slope_tol;
  row.max_ratio =
      model.max_ratio > 0 ? model.max_ratio : options.max_ratio;

  for (const TupleCount n : model.n_series) {
    row.n_points.push_back(RunPoint(model, n, model.m, model.b));
  }
  for (const TupleCount m : model.m_series) {
    row.m_points.push_back(RunPoint(model, model.m_series_n, m, model.b));
  }
  row.n_fit = FitSeries(row.n_points, /*against_m=*/false);
  row.m_fit = FitSeries(row.m_points, /*against_m=*/true);

  row.ratio_min = 0;
  row.ratio_max = 0;
  auto fold_ratio = [&row](const CostPoint& p) {
    const double r = p.ratio();
    if (row.ratio_min == 0 || r < row.ratio_min) row.ratio_min = r;
    if (r > row.ratio_max) row.ratio_max = r;
  };
  for (const CostPoint& p : row.n_points) fold_ratio(p);
  for (const CostPoint& p : row.m_points) fold_ratio(p);

  // The Table 1 claims are upper bounds, so the exponent checks are
  // one-sided: measured cost must not grow *faster* in n than the
  // claimed curve (beating the bound on small instances, where the
  // linear scan terms dominate, is fine and common). In M the only
  // hard requirement is that cost must not increase with more memory;
  // the fitted M-slope is still recorded so the Yannakakis gap row can
  // demonstrate its missing factor of M (flat slope vs the optimal
  // algorithms' negative slopes).
  if (row.n_fit.measured > row.n_fit.expected + row.slope_tol) {
    row.failures.push_back("n-exponent too steep: measured " +
                           Fmt(row.n_fit.measured) + " vs claimed " +
                           Fmt(row.n_fit.expected) + " (tol " +
                           Fmt(row.slope_tol) + ")");
  }
  if (row.m_points.size() >= 2 && row.m_fit.measured > row.slope_tol) {
    row.failures.push_back("cost grows with memory: M-slope " +
                           Fmt(row.m_fit.measured) + " > tol " +
                           Fmt(row.slope_tol));
  }
  if (row.ratio_max > row.max_ratio) {
    row.failures.push_back("constant factor unbounded: max ratio " +
                           Fmt(row.ratio_max) + " > " + Fmt(row.max_ratio));
  }
  if (row.ratio_min > 0 && row.ratio_min < 1.0 / row.max_ratio) {
    row.failures.push_back(
        "measured below the bound's shape: min ratio " + Fmt(row.ratio_min) +
        " < 1/" + Fmt(row.max_ratio));
  }
  row.pass = row.failures.empty();
  return row;
}

std::vector<AuditRow> RunAllAudits(const std::vector<CostModel>& models,
                                   const AuditOptions& options) {
  std::vector<AuditRow> rows;
  rows.reserve(models.size());
  for (const CostModel& m : models) rows.push_back(RunAudit(m, options));
  return rows;
}

namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
}

void AppendPoints(std::string* out, const char* key,
                  const std::vector<CostPoint>& points) {
  *out += std::string("      \"") + key + "\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const CostPoint& p = points[i];
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%s\n        {\"n\": %llu, \"M\": %llu, \"B\": %llu, "
                  "\"measured\": %llu, \"expected\": %.3Lf, "
                  "\"results\": %llu, \"ratio\": %.4f}",
                  i == 0 ? "" : ",",
                  static_cast<unsigned long long>(p.n),
                  static_cast<unsigned long long>(p.m),
                  static_cast<unsigned long long>(p.b),
                  static_cast<unsigned long long>(p.measured), p.expected,
                  static_cast<unsigned long long>(p.results), p.ratio());
    *out += buf;
  }
  *out += points.empty() ? "]" : "\n      ]";
}

}  // namespace

std::string AuditToJson(const std::vector<AuditRow>& rows,
                        const AuditOptions& options) {
  bool all_pass = true;
  for (const AuditRow& r : rows) all_pass = all_pass && r.pass;
  std::string out = "{\n  \"schema\": \"emjoin-audit-v1\",\n";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "  \"options\": {\"slope_tol\": %.3f, \"max_ratio\": %.3f},\n"
                "  \"all_pass\": %s,\n  \"rows\": [\n",
                options.slope_tol, options.max_ratio,
                all_pass ? "true" : "false");
  out += buf;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AuditRow& r = rows[i];
    out += "    {\"name\": \"";
    AppendJsonEscaped(&out, r.name);
    out += "\",\n      \"row\": \"";
    AppendJsonEscaped(&out, r.row);
    out += "\",\n      \"claim\": \"";
    AppendJsonEscaped(&out, r.claim);
    out += "\",\n";
    std::snprintf(buf, sizeof buf,
                  "      \"verdict\": \"%s\",\n"
                  "      \"n_slope\": {\"measured\": %.4f, \"expected\": "
                  "%.4f},\n"
                  "      \"m_slope\": {\"measured\": %.4f, \"expected\": "
                  "%.4f},\n"
                  "      \"ratio_min\": %.4f, \"ratio_max\": %.4f,\n"
                  "      \"slope_tol\": %.3f, \"max_ratio\": %.3f,\n",
                  r.pass ? "PASS" : "FAIL", r.n_fit.measured,
                  r.n_fit.expected, r.m_fit.measured, r.m_fit.expected,
                  r.ratio_min, r.ratio_max, r.slope_tol, r.max_ratio);
    out += buf;
    out += "      \"failures\": [";
    for (std::size_t j = 0; j < r.failures.size(); ++j) {
      out += j == 0 ? "\"" : ", \"";
      AppendJsonEscaped(&out, r.failures[j]);
      out += "\"";
    }
    out += "],\n";
    AppendPoints(&out, "n_points", r.n_points);
    out += ",\n";
    AppendPoints(&out, "m_points", r.m_points);
    out += "\n    }";
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

bool WriteAuditJson(const std::vector<AuditRow>& rows,
                    const AuditOptions& options, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = AuditToJson(rows, options);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace emjoin::metrics
