#ifndef EMJOIN_METRICS_COST_MODEL_H_
#define EMJOIN_METRICS_COST_MODEL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/emit.h"
#include "extmem/device.h"
#include "storage/relation.h"

namespace emjoin::metrics {

/// A named closed-form I/O formula from the paper, paired with the
/// worst-case instance family it is tight on and the algorithm that is
/// claimed to achieve it. Table 1 rows, the GenS eq. (4) machinery, and
/// the Yannakakis M-factor gap all become CostModel values, so the
/// auditor (tools/emjoin_audit) — and later the planner — can treat
/// "what should this cost" as data instead of prose.
struct CostModel {
  std::string name;   // stable id, e.g. "line3_alg1"
  std::string row;    // where the claim lives, e.g. "Table 1 / Theorem 1"
  std::string claim;  // the formula as text, for reports

  // Device geometry for the n-series (the M-series varies m).
  TupleCount m = 64;
  TupleCount b = 8;

  // Geometric scale series: the n-series fits the exponent in n at
  // fixed (m, b); the m-series fits the exponent in M at n = m_series_n.
  std::vector<TupleCount> n_series;
  std::vector<TupleCount> m_series;
  TupleCount m_series_n = 0;

  /// Builds the model's worst-case instance at scale n (construction
  /// charges are not part of the measurement).
  std::function<std::vector<storage::Relation>(extmem::Device*, TupleCount)>
      build;

  /// Runs the claimed-optimal algorithm; the caller measures the I/O
  /// delta around this call.
  std::function<void(const std::vector<storage::Relation>&,
                     const core::EmitFn&)>
      exec;

  /// Closed-form expected I/Os at scale n on a device (m, b).
  std::function<long double(TupleCount n, TupleCount m, TupleCount b)>
      expected;

  /// Instance-exact expected cost (e.g. the Theorem 3 bound via the
  /// uncharged counting oracle). When set it overrides `expected`.
  std::function<long double(const std::vector<storage::Relation>&,
                            TupleCount m, TupleCount b)>
      expected_instance;

  // Per-model tolerance overrides; <= 0 means the auditor default.
  double slope_tol = 0;
  double max_ratio = 0;
};

/// All audited models: one per Table 1 query class / theorem, plus the
/// eq. (4) GenS bound and the Yannakakis gap baseline.
std::vector<CostModel> Table1Models();

// ---------------------------------------------------------------------
// Audit runner.
// ---------------------------------------------------------------------

/// One measured point of a series.
struct CostPoint {
  TupleCount n = 0;
  TupleCount m = 0;
  TupleCount b = 0;
  std::uint64_t measured = 0;  // charged block I/Os of the exec phase
  std::uint64_t results = 0;   // emitted result count
  long double expected = 0;    // the model's formula at this point

  double ratio() const {
    return expected > 0 ? static_cast<double>(measured) /
                              static_cast<double>(expected)
                        : 0.0;
  }
};

/// Least-squares slopes of log(measured) and log(expected) against the
/// series' log(scale); the audit compares the two.
struct SlopeFit {
  double measured = 0;
  double expected = 0;
  double gap() const {
    const double g = measured - expected;
    return g < 0 ? -g : g;
  }
};

// The claims are upper bounds, so the exponent checks are one-sided:
// a row FAILs if the measured n-exponent exceeds the claimed one by
// more than slope_tol, if cost grows with memory (positive M-slope
// beyond slope_tol), or if any point's measured/expected ratio leaves
// [1/max_ratio, max_ratio]. Growing slower than the claim is allowed —
// on small instances the linear scan terms dominate the product terms.
struct AuditOptions {
  double slope_tol = 0.35;  // one-sided log-log slope headroom
  double max_ratio = 40.0;  // measured/expected must stay in
                            // [1/max_ratio, max_ratio] at every point
};

/// The audit of one model: both series, their fits, and the verdict.
struct AuditRow {
  std::string name;
  std::string row;
  std::string claim;
  std::vector<CostPoint> n_points;
  std::vector<CostPoint> m_points;
  SlopeFit n_fit;
  SlopeFit m_fit;
  double ratio_min = 0;  // over all points of both series
  double ratio_max = 0;
  double slope_tol = 0;  // resolved tolerances used for the verdict
  double max_ratio = 0;
  bool pass = false;
  std::vector<std::string> failures;  // human-readable reasons
};

/// Fits y = a + slope * x by least squares; returns the slope.
double FitSlope(const std::vector<std::pair<double, double>>& xy);

/// Runs one model's series on fresh devices and renders the verdict.
AuditRow RunAudit(const CostModel& model, const AuditOptions& options = {});

std::vector<AuditRow> RunAllAudits(const std::vector<CostModel>& models,
                                   const AuditOptions& options = {});

/// AUDIT_table1.json: {"schema", "options", "all_pass", "rows": [...]}.
std::string AuditToJson(const std::vector<AuditRow>& rows,
                        const AuditOptions& options);
bool WriteAuditJson(const std::vector<AuditRow>& rows,
                    const AuditOptions& options, const std::string& path);

}  // namespace emjoin::metrics

#endif  // EMJOIN_METRICS_COST_MODEL_H_
