#include "extmem/memory_gauge.h"

#include <string>

#include "extmem/status.h"

namespace emjoin::extmem {

void ThrowBudgetExceeded(TupleCount resident, TupleCount delta,
                         TupleCount limit) {
  throw StatusException(Status(
      StatusCode::kBudgetExceeded,
      "acquiring " + std::to_string(delta) + " tuples would raise residency " +
          std::to_string(resident) + " past the enforced budget of " +
          std::to_string(limit) + " tuples"));
}

}  // namespace emjoin::extmem
