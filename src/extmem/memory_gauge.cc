#include "extmem/memory_gauge.h"

// MemoryGauge and MemoryReservation are header-only; this translation unit
// exists so the library has a stable archive member for the component.

namespace emjoin::extmem {}  // namespace emjoin::extmem
