#include "extmem/file.h"

// DiskFile, FileRange, FileReader and FileWriter are header-only; this
// translation unit anchors the component in the archive.

namespace emjoin::extmem {}  // namespace emjoin::extmem
