#include "extmem/status.h"

namespace emjoin::extmem {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kDeviceFull:
      return "DEVICE_FULL";
    case StatusCode::kBudgetExceeded:
      return "BUDGET_EXCEEDED";
    case StatusCode::kInvalidInput:
      return "INVALID_INPUT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s(StatusCodeName(code_));
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace emjoin::extmem
