#ifndef EMJOIN_EXTMEM_MEMORY_GAUGE_H_
#define EMJOIN_EXTMEM_MEMORY_GAUGE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "extmem/defs.h"

namespace emjoin::extmem {

/// Raises StatusCode::kBudgetExceeded (declared out of line so this
/// header does not pull in the throw machinery on the hot path).
[[noreturn]] void ThrowBudgetExceeded(TupleCount resident, TupleCount delta,
                                      TupleCount limit);

/// Tracks the number of tuples currently resident in simulated main memory.
///
/// The paper assumes a memory of c*M tuples for a sufficiently large
/// constant c (constant query size => O(1) recursion depth, each level
/// holding O(M) tuples). The gauge validates that model invariant: tests
/// assert `high_water() <= limit_factor * M` after a join runs.
///
/// The gauge can also *enforce* a budget: with SetEnforcedLimit active,
/// an Acquire that would push the resident count past the limit raises a
/// typed kBudgetExceeded error instead of silently overrunning.
/// Reservations made before a limit shrink are grandfathered (resident
/// may exceed a freshly lowered limit); only further acquisition past
/// the limit trips enforcement. Unenforced (the default), behavior is
/// byte-identical to the original gauge.
///
/// Reservations are RAII: construct a `MemoryReservation` to account
/// resident tuples, and release happens on destruction.
///
/// Like the rest of the substrate the gauge is lock-free and
/// thread-confined: each shard of a parallel run owns its Device and
/// therefore its own gauge, and per-shard peaks are folded into the
/// merged report at the barrier (see src/extmem/status.h for the full
/// threading contract).
class MemoryGauge {
 public:
  static constexpr TupleCount kNoLimit = ~TupleCount{0};

  explicit MemoryGauge(TupleCount memory_tuples)
      : memory_tuples_(memory_tuples) {}

  MemoryGauge(const MemoryGauge&) = delete;
  MemoryGauge& operator=(const MemoryGauge&) = delete;

  void Acquire(TupleCount tuples) {
    if (enforcing_ && resident_ + tuples > limit_) [[unlikely]] {
      ThrowBudgetExceeded(resident_, tuples, limit_);
    }
    resident_ += tuples;
    if (resident_ > high_water_) high_water_ = resident_;
    if (!marks_.empty() && resident_ > marks_.back()) {
      marks_.back() = resident_;
    }
  }

  void Release(TupleCount tuples) {
    assert(tuples <= resident_);
    resident_ -= tuples;
  }

  /// Currently resident tuples.
  TupleCount resident() const { return resident_; }

  /// Maximum resident tuples ever observed.
  TupleCount high_water() const { return high_water_; }

  /// The configured memory size M, in tuples.
  TupleCount memory_tuples() const { return memory_tuples_; }

  /// Turns on budget enforcement at `limit` tuples. A mid-run shrink is
  /// just a second call with a smaller limit (existing residency is
  /// grandfathered; see class comment).
  void SetEnforcedLimit(TupleCount limit) {
    limit_ = limit;
    enforcing_ = true;
  }

  void ClearEnforcedLimit() {
    limit_ = kNoLimit;
    enforcing_ = false;
  }

  /// Current enforced limit, or kNoLimit when enforcement is off.
  TupleCount limit() const { return limit_; }
  bool enforcing() const { return enforcing_; }

  void ResetHighWater() { high_water_ = resident_; }

  /// Scoped watermarks (used by trace::Tracer for per-span peaks).
  ///
  /// PushWatermark opens a scope whose local high water starts at the
  /// current resident count; PopWatermark closes the innermost scope and
  /// returns the maximum resident count observed while it was open.
  /// Closing a scope folds its peak into the enclosing scope, so nested
  /// spans see peaks reached inside their children. Scopes must be
  /// strictly nested (push/pop in LIFO order).
  void PushWatermark() { marks_.push_back(resident_); }

  TupleCount PopWatermark() {
    assert(!marks_.empty());
    const TupleCount peak = marks_.back();
    marks_.pop_back();
    if (!marks_.empty() && peak > marks_.back()) marks_.back() = peak;
    return peak;
  }

 private:
  TupleCount memory_tuples_;
  TupleCount resident_ = 0;
  TupleCount high_water_ = 0;
  TupleCount limit_ = kNoLimit;
  bool enforcing_ = false;
  std::vector<TupleCount> marks_;
};

/// RAII accounting of a block of tuples held in simulated memory.
class MemoryReservation {
 public:
  MemoryReservation() : gauge_(nullptr), tuples_(0) {}

  MemoryReservation(MemoryGauge* gauge, TupleCount tuples)
      : gauge_(gauge), tuples_(tuples) {
    if (gauge_ != nullptr) gauge_->Acquire(tuples_);
  }

  MemoryReservation(MemoryReservation&& other) noexcept
      : gauge_(other.gauge_), tuples_(other.tuples_) {
    other.gauge_ = nullptr;
    other.tuples_ = 0;
  }

  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      ReleaseNow();
      gauge_ = other.gauge_;
      tuples_ = other.tuples_;
      other.gauge_ = nullptr;
      other.tuples_ = 0;
    }
    return *this;
  }

  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  ~MemoryReservation() { ReleaseNow(); }

  /// Grow or shrink the reservation to `tuples`.
  void Resize(TupleCount tuples) {
    if (gauge_ == nullptr) return;
    if (tuples > tuples_) {
      gauge_->Acquire(tuples - tuples_);
    } else {
      gauge_->Release(tuples_ - tuples);
    }
    tuples_ = tuples;
  }

  TupleCount tuples() const { return tuples_; }

 private:
  void ReleaseNow() {
    if (gauge_ != nullptr) gauge_->Release(tuples_);
    gauge_ = nullptr;
    tuples_ = 0;
  }

  MemoryGauge* gauge_;
  TupleCount tuples_;
};

}  // namespace emjoin::extmem

#endif  // EMJOIN_EXTMEM_MEMORY_GAUGE_H_
