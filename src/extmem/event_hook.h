#ifndef EMJOIN_EXTMEM_EVENT_HOOK_H_
#define EMJOIN_EXTMEM_EVENT_HOOK_H_

#include <cstdint>

namespace emjoin::extmem {

/// Structured observability events, emitted by the Device's charge
/// paths, the fault injector sites, trace::Span phase boundaries, and
/// the parallel merge barrier. Like the tracer and the metrics
/// registry, the event hook is a pure observer: a sink never charges or
/// suppresses an I/O, so attaching one changes zero block counts
/// (pinned by io_invariance tests).
enum class ObsEventKind : std::uint8_t {
  kPhaseBegin,      // a trace::Span opened (name = span name)
  kPhaseEnd,        // the matching span closed
  kReadFault,       // injector failed one block read
  kWriteFault,      // injector failed one block write
  kTornWrite,       // a landed write was detected torn
  kRetry,           // a failed transfer is being retried (a = backoff I/Os)
  kRetryExhausted,  // retries exhausted; a typed error is about to raise
  kBudgetShrink,    // memory budget shrank (a = new limit, b = old limit)
  kShardStart,      // a shard task started (parallel execution)
  kShardFinish,     // a shard task finished (a = 1 ok, 0 failed)
  kWatermark,       // a peak-residency watermark (a = tuples)
  kQueryComplete,   // the whole query finished successfully
  kRetryModeChange, // adaptive retry switched mode (a = new, b = old RetryMode)
};

/// One event. `name` follows the Device-tag convention: a string
/// literal (or interned string) that outlives the process's use of the
/// event, so sinks may store the pointer without copying.
struct ObsEvent {
  static constexpr std::uint32_t kNoShard = 0xffffffffu;

  ObsEventKind kind = ObsEventKind::kPhaseBegin;
  const char* name = "";
  std::uint64_t a = 0;  // kind-specific payload (see ObsEventKind)
  std::uint64_t b = 0;
  std::uint32_t shard = kNoShard;  // stamped by per-shard sink views
};

/// Abstract event sink, attached to a Device like the tracer and the
/// registry (nullptr by default; one `[[unlikely]]` branch per charge
/// when detached). Implementations must be thread-safe when attached to
/// devices driven from worker threads: sharded execution routes each
/// shard's device through `ShardView(s)`, and the views of one sink run
/// concurrently.
class IoEventSink {
 public:
  virtual ~IoEventSink() = default;

  /// Called after `reads`/`writes` blocks were charged to the device.
  /// `recovery` marks fault-overhead charges (the "recovery" tag:
  /// failed-transfer ticks, backoff, verify reads, rewrites) so sinks
  /// can keep algorithm progress free of retry noise.
  virtual void OnBlocks(std::uint64_t reads, std::uint64_t writes,
                        bool recovery) = 0;

  /// Called at most a handful of times per phase (never per tuple).
  virtual void OnEvent(const ObsEvent& event) = 0;

  /// The facet a shard-local device should be wired to: events flowing
  /// through the view are stamped with `shard` before reaching the
  /// underlying sink. The base implementation ignores sharding, which
  /// lets src/parallel attach views without knowing the concrete sink.
  virtual IoEventSink* ShardView(std::uint32_t shard) {
    (void)shard;
    return this;
  }
};

}  // namespace emjoin::extmem

#endif  // EMJOIN_EXTMEM_EVENT_HOOK_H_
