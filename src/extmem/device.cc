#include "extmem/device.h"

#include <cassert>
#include <map>
#include <string>

#include "extmem/file.h"

namespace emjoin::extmem {

Device::Device(TupleCount memory_tuples, TupleCount block_tuples)
    : memory_tuples_(memory_tuples),
      block_tuples_(block_tuples),
      gauge_(memory_tuples) {
  assert(block_tuples >= 1);
  assert(block_tuples <= memory_tuples);
}

std::shared_ptr<DiskFile> Device::NewFile(std::uint32_t width) {
  return std::make_shared<DiskFile>(this, width);
}

std::string Device::TagReport() const {
  // per_tag_ is keyed by string content, so equal literals from different
  // translation units already share one row.
  std::string out;
  for (const auto& [tag, stats] : per_tag_) {
    if (stats.total() == 0) continue;
    if (!out.empty()) out += ", ";
    out += tag;
    out += "=";
    out += std::to_string(stats.total());
  }
  const IoStats sum = Total(per_tag_);
  if (!out.empty()) {
    out += " (total=" + std::to_string(sum.total()) + ")";
  }
  return out;
}

void Device::ChargeReadTuples(TupleCount tuples) {
  if (tuples > 0) stats_.block_reads += BlocksFor(tuples);
}

void Device::ChargeWriteTuples(TupleCount tuples) {
  if (tuples > 0) stats_.block_writes += BlocksFor(tuples);
}

}  // namespace emjoin::extmem
