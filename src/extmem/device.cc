#include "extmem/device.h"

#include <cassert>
#include <map>
#include <string>

#include "extmem/fault_injector.h"
#include "extmem/file.h"
#include "extmem/status.h"
#include "metrics/registry.h"
#include "trace/tracer.h"

namespace emjoin::extmem {

Device::Device(TupleCount memory_tuples, TupleCount block_tuples)
    : memory_tuples_(memory_tuples),
      block_tuples_(block_tuples),
      gauge_(memory_tuples) {
  assert(block_tuples >= 1);
  assert(block_tuples <= memory_tuples);
}

std::shared_ptr<DiskFile> Device::NewFile(std::uint32_t width) {
  return std::make_shared<DiskFile>(this, width);
}

std::string Device::TagReport() const {
  // per_tag_ is keyed by string content, so equal literals from different
  // translation units already share one row.
  std::string out;
  for (const auto& [tag, stats] : per_tag_) {
    if (stats.total() == 0) continue;
    if (!out.empty()) out += ", ";
    out += tag;
    out += "=";
    out += std::to_string(stats.total());
  }
  const IoStats sum = Total(per_tag_);
  if (!out.empty()) {
    out += " (total=" + std::to_string(sum.total()) + ")";
  }
  return out;
}

void Device::ChargeReadTuples(TupleCount tuples) {
  if (tuples == 0) return;
  if (injector_ != nullptr) [[unlikely]] {
    FaultyChargeReads(BlocksFor(tuples), /*tagged=*/false);
    return;
  }
  stats_.block_reads += BlocksFor(tuples);
  NotifyBlocks(BlocksFor(tuples), 0, /*recovery=*/false);
}

void Device::ChargeWriteTuples(TupleCount tuples) {
  if (tuples == 0) return;
  if (injector_ != nullptr) [[unlikely]] {
    FaultyChargeWrites(BlocksFor(tuples), /*tagged=*/false);
    return;
  }
  stats_.block_writes += BlocksFor(tuples);
  NotifyBlocks(0, BlocksFor(tuples), /*recovery=*/false);
}

TupleCount Device::PlanningBudget() {
  if (injector_ != nullptr) [[unlikely]] {
    const FaultConfig& cfg = injector_->config();
    const TupleCount floor = cfg.shrink_floor_tuples != 0
                                 ? cfg.shrink_floor_tuples
                                 : 4 * block_tuples_;
    const TupleCount current = std::min(memory_tuples_, gauge_.limit());
    if (const auto next =
            injector_->NextShrink(stats_.total(), current, floor)) {
      gauge_.SetEnforcedLimit(*next);
      trace::Count(this, "budget_shrinks", 1);
      NotifyEvent(ObsEventKind::kBudgetShrink, "planning_budget", *next,
                  current);
    }
  }
  return std::min(memory_tuples_, gauge_.limit());
}

TupleCount Device::DegradedChunkCap(TupleCount requested) {
  const TupleCount budget = PlanningBudget();  // also applies pending shrinks
  // Fault-free (and "enforced at exactly M") path: nothing is shrunk, so
  // the caller's plan stands and golden I/O counts stay bit-identical.
  if (!gauge_.enforcing() || gauge_.limit() >= memory_tuples_) {
    return requested;
  }
  const TupleCount resident = gauge_.resident();
  const TupleCount avail = budget > resident ? budget - resident : 0;
  // Leave room for the nested work a chunk's processing does: a
  // minimum-fan-in external sort keeps ~3 blocks resident (two merge
  // inputs + one output run buffer) on top of the chunk, and halving
  // the remainder leaves geometric room for recursive re-planning.
  const TupleCount sort_headroom = 3 * block_tuples_;
  TupleCount cap =
      avail > sort_headroom ? (avail - sort_headroom) / 2 : avail / 8;
  if (cap < 1) cap = 1;
  return std::min(requested, cap);
}

// ---------------------------------------------------------------------
// Fault-injected charge paths. Invariants the soak harness relies on:
//  - the caller's tag sees exactly the charges the fault-free run would
//    make (every extra transfer and backoff tick goes to "recovery");
//  - transient faults (reads, writes, torn writes) are retried up to
//    RetryPolicy::max_retries with exponential backoff measured on the
//    virtual I/O clock; exhaustion raises a typed StatusException;
//  - the RAM-backed file contents are never corrupted — a torn write is
//    caught by the controller's verify read and repaired by a rewrite,
//    so a run either finishes with bit-identical output or errors out.
// ---------------------------------------------------------------------

void Device::ChargeRecoveryReads(std::uint64_t blocks) {
  stats_.block_reads += blocks;
  FindTagEntry("recovery")->block_reads += blocks;
  NotifyBlocks(blocks, 0, /*recovery=*/true);
}

void Device::ChargeRecoveryWrites(std::uint64_t blocks) {
  stats_.block_writes += blocks;
  FindTagEntry("recovery")->block_writes += blocks;
  NotifyBlocks(0, blocks, /*recovery=*/true);
}

void Device::RecordBackoff(std::uint64_t backoff) {
  if (metrics_ != nullptr) [[unlikely]] {
    metrics_
        ->GetHistogram("emjoin_recovery_backoff_ios", {{"tag", "recovery"}})
        ->Record(backoff);
  }
}

void Device::DrainRetryModeChange() {
  RetryMode now = RetryMode::kSteady;
  RetryMode before = RetryMode::kSteady;
  if (!injector_->TakeModeChange(&now, &before)) return;
  trace::Count(this, "retry_mode_changes", 1);
  NotifyEvent(ObsEventKind::kRetryModeChange, RetryModeName(now),
              static_cast<std::uint64_t>(now),
              static_cast<std::uint64_t>(before));
  if (metrics_ != nullptr) [[unlikely]] {
    metrics_->GetGauge("emjoin_adaptive_retry_mode", {})
        ->Set(static_cast<std::uint64_t>(now));
  }
}

void Device::ThrowKilled(const char* op) {
  throw StatusException(
      Status(StatusCode::kIoError,
             std::string(op) + " interrupted at virtual I/O tick " +
                 std::to_string(stats_.total()) + " (killed; " +
                 injector_->Describe() + ")"));
}

void Device::CheckCapacityForWrite() {
  const std::uint64_t cap = injector_->config().device_capacity_blocks;
  if (cap != 0 && stats_.block_writes >= cap) {
    throw StatusException(Status(
        StatusCode::kDeviceFull,
        "device capacity of " + std::to_string(cap) +
            " written blocks exhausted (" + injector_->Describe() + ")"));
  }
}

void Device::FaultyChargeReads(std::uint64_t blocks, bool tagged) {
  for (std::uint64_t b = 0; b < blocks; ++b) {
    if (injector_->NextKill(stats_.total())) [[unlikely]] {
      ThrowKilled("block read");
    }
    std::uint32_t failures = 0;
    while (injector_->NextReadFails()) {
      DrainRetryModeChange();
      // Re-fetched each attempt: the adaptive model may have flipped the
      // mode on the draw we just made.
      const RetryPolicy& policy = injector_->retry();
      NotifyEvent(ObsEventKind::kReadFault, "read");
      ChargeRecoveryReads(1);  // the failed transfer still cost a tick
      ++failures;
      if (failures > policy.max_retries) {
        injector_->CountExhaustion();
        NotifyEvent(ObsEventKind::kRetryExhausted, "read", failures);
        throw StatusException(
            Status(StatusCode::kIoError,
                   "block read failed after " + std::to_string(failures) +
                       " attempts (" + injector_->Describe() + ")"));
      }
      const std::uint64_t backoff = policy.BackoffFor(failures - 1);
      ChargeRecoveryReads(backoff);
      injector_->CountRetry(backoff);
      RecordBackoff(backoff);
      trace::Count(this, "io_retries", 1);
      NotifyEvent(ObsEventKind::kRetry, "read", backoff, failures);
    }
    DrainRetryModeChange();
    stats_.block_reads += 1;
    if (tagged) TagEntry()->block_reads += 1;
    NotifyBlocks(1, 0, /*recovery=*/false);
  }
}

void Device::FaultyChargeWrites(std::uint64_t blocks, bool tagged) {
  for (std::uint64_t b = 0; b < blocks; ++b) {
    if (injector_->NextKill(stats_.total())) [[unlikely]] {
      ThrowKilled("block write");
    }
    // Transient failures before the block lands.
    std::uint32_t failures = 0;
    while (injector_->NextWriteFails()) {
      DrainRetryModeChange();
      const RetryPolicy& policy = injector_->retry();
      NotifyEvent(ObsEventKind::kWriteFault, "write");
      ChargeRecoveryWrites(1);
      ++failures;
      if (failures > policy.max_retries) {
        injector_->CountExhaustion();
        NotifyEvent(ObsEventKind::kRetryExhausted, "write", failures);
        throw StatusException(
            Status(StatusCode::kIoError,
                   "block write failed after " + std::to_string(failures) +
                       " attempts (" + injector_->Describe() + ")"));
      }
      const std::uint64_t backoff = policy.BackoffFor(failures - 1);
      ChargeRecoveryWrites(backoff);
      injector_->CountRetry(backoff);
      RecordBackoff(backoff);
      trace::Count(this, "io_retries", 1);
      NotifyEvent(ObsEventKind::kRetry, "write", backoff, failures);
    }
    DrainRetryModeChange();
    CheckCapacityForWrite();
    stats_.block_writes += 1;
    if (tagged) TagEntry()->block_writes += 1;
    NotifyBlocks(0, 1, /*recovery=*/false);

    // Torn landings: the verify read detects the tear, the rewrite
    // repairs it (and is itself subject to transient write faults).
    std::uint32_t tears = 0;
    while (injector_->NextWriteTorn()) {
      DrainRetryModeChange();
      const RetryPolicy& policy = injector_->retry();
      NotifyEvent(ObsEventKind::kTornWrite, "write", tears + 1);
      ChargeRecoveryReads(1);  // verify read that caught the tear
      ++tears;
      if (tears > policy.max_retries) {
        injector_->CountExhaustion();
        NotifyEvent(ObsEventKind::kRetryExhausted, "torn", tears);
        throw StatusException(
            Status(StatusCode::kDataLoss,
                   "torn block write could not be repaired after " +
                       std::to_string(tears) + " rewrites (" +
                       injector_->Describe() + ")"));
      }
      injector_->CountRetry(0);
      trace::Count(this, "torn_rewrites", 1);
      std::uint32_t rewrite_failures = 0;
      while (injector_->NextWriteFails()) {
        NotifyEvent(ObsEventKind::kWriteFault, "rewrite");
        ChargeRecoveryWrites(1);
        ++rewrite_failures;
        if (rewrite_failures > policy.max_retries) {
          injector_->CountExhaustion();
          NotifyEvent(ObsEventKind::kRetryExhausted, "rewrite",
                      rewrite_failures);
          throw StatusException(Status(
              StatusCode::kIoError,
              "rewrite of torn block failed after " +
                  std::to_string(rewrite_failures) + " attempts (" +
                  injector_->Describe() + ")"));
        }
        const std::uint64_t backoff = policy.BackoffFor(rewrite_failures - 1);
        ChargeRecoveryWrites(backoff);
        injector_->CountRetry(backoff);
        RecordBackoff(backoff);
        NotifyEvent(ObsEventKind::kRetry, "rewrite", backoff,
                    rewrite_failures);
      }
      CheckCapacityForWrite();
      ChargeRecoveryWrites(1);  // the repairing rewrite lands
    }
  }
}

}  // namespace emjoin::extmem
