#ifndef EMJOIN_EXTMEM_DEFS_H_
#define EMJOIN_EXTMEM_DEFS_H_

#include <cstddef>
#include <cstdint>

namespace emjoin {

/// Attribute value. The paper treats tuples as constant-size records of
/// attribute values drawn from arbitrary domains; we use 64-bit integers.
using Value = std::uint64_t;

/// Number of tuples. All capacities (M, B, relation sizes) are measured in
/// tuples, following the paper's convention that tuple width is constant.
using TupleCount = std::uint64_t;

}  // namespace emjoin

#endif  // EMJOIN_EXTMEM_DEFS_H_
