#include "extmem/sorter.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "metrics/registry.h"
#include "trace/tracer.h"

namespace emjoin::extmem {

int CompareTuples(const Value* a, const Value* b, std::uint32_t width,
                  std::span<const std::uint32_t> key_cols) {
  for (std::uint32_t c : key_cols) {
    if (a[c] != b[c]) return a[c] < b[c] ? -1 : 1;
  }
  for (std::uint32_t c = 0; c < width; ++c) {
    if (a[c] != b[c]) return a[c] < b[c] ? -1 : 1;
  }
  return 0;
}

namespace {

// ---------------------------------------------------------------------
// In-place tuple sorting. Tuples are sorted by physically reordering the
// w-value records inside the run buffer (no index indirection, so the
// comparison loop reads contiguous memory). Order is the CompareTuples
// total order — a total order, so every correct sort produces the same
// output sequence and downstream I/O counts are independent of the
// algorithm used here.
// ---------------------------------------------------------------------

class TupleSorter {
 public:
  TupleSorter(std::uint32_t w, std::span<const std::uint32_t> key_cols)
      : w_(w), key_cols_(key_cols), pivot_(w), tmp_(w) {}

  void Sort(Value* data, TupleCount n) {
    std::uint32_t depth = 2;
    for (TupleCount m = n; m > 1; m >>= 1) depth += 2;
    Introsort(data, n, depth);
  }

 private:
  int Cmp(const Value* a, const Value* b) const {
    return CompareTuples(a, b, w_, key_cols_);
  }

  void Swap(Value* a, Value* b) { std::swap_ranges(a, a + w_, b); }

  // Binary-insertion-style sort for small partitions: one memmove shifts
  // the whole displaced prefix instead of per-slot swaps.
  void InsertionSort(Value* data, TupleCount n) {
    for (TupleCount i = 1; i < n; ++i) {
      Value* cur = data + i * w_;
      TupleCount lo = 0, hi = i;
      while (lo < hi) {
        const TupleCount mid = (lo + hi) / 2;
        if (Cmp(data + mid * w_, cur) <= 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo == i) continue;
      std::memcpy(tmp_.data(), cur, w_ * sizeof(Value));
      std::memmove(data + (lo + 1) * w_, data + lo * w_,
                   (i - lo) * w_ * sizeof(Value));
      std::memcpy(data + lo * w_, tmp_.data(), w_ * sizeof(Value));
    }
  }

  // In-place heapsort over tuple slots; the introsort depth-limit
  // fallback, guaranteeing O(n log n) on adversarial pivot sequences.
  void HeapSort(Value* data, TupleCount n) {
    auto sift = [&](TupleCount root, TupleCount end) {
      while (true) {
        TupleCount child = 2 * root + 1;
        if (child >= end) return;
        if (child + 1 < end &&
            Cmp(data + child * w_, data + (child + 1) * w_) < 0) {
          ++child;
        }
        if (Cmp(data + root * w_, data + child * w_) >= 0) return;
        Swap(data + root * w_, data + child * w_);
        root = child;
      }
    };
    for (TupleCount i = n / 2; i > 0; --i) sift(i - 1, n);
    for (TupleCount i = n; i > 1; --i) {
      Swap(data, data + (i - 1) * w_);
      sift(0, i - 1);
    }
  }

  void Introsort(Value* data, TupleCount n, std::uint32_t depth) {
    while (n > 24) {
      if (depth == 0) {
        HeapSort(data, n);
        return;
      }
      --depth;
      // Median-of-3 pivot, copied out so partitioning can move tuples
      // freely under it.
      Value* lo = data;
      Value* mid = data + (n / 2) * w_;
      Value* hi = data + (n - 1) * w_;
      if (Cmp(mid, lo) < 0) Swap(mid, lo);
      if (Cmp(hi, mid) < 0) {
        Swap(hi, mid);
        if (Cmp(mid, lo) < 0) Swap(mid, lo);
      }
      std::memcpy(pivot_.data(), mid, w_ * sizeof(Value));

      // Hoare partition: balanced on runs of equal tuples.
      TupleCount i = 0, j = n - 1;
      while (true) {
        while (Cmp(data + i * w_, pivot_.data()) < 0) ++i;
        while (Cmp(data + j * w_, pivot_.data()) > 0) --j;
        if (i >= j) break;
        Swap(data + i * w_, data + j * w_);
        ++i;
        --j;
      }
      const TupleCount split = j + 1;
      // Recurse into the smaller side, iterate on the larger.
      if (split <= n - split) {
        Introsort(data, split, depth);
        data += split * w_;
        n -= split;
      } else {
        Introsort(data + split * w_, n - split, depth);
        n = split;
      }
    }
    InsertionSort(data, n);
  }

  std::uint32_t w_;
  std::span<const std::uint32_t> key_cols_;
  std::vector<Value> pivot_;
  std::vector<Value> tmp_;
};

// LSD radix sort on a single 64-bit key column, moving whole tuples
// between the run buffer and a scratch buffer one byte-digit at a time.
// Passes whose digit is constant across the run are skipped, so small key
// domains cost only the histogram pass plus the digits actually used.
// Radix is stable, so equal-key tuples keep input order; the caller then
// fixes up equal-key runs with the full-tuple comparator.
class RadixSorter {
 public:
  explicit RadixSorter(std::uint32_t w) : w_(w) {}

  void Sort(std::vector<Value>& buffer, std::vector<Value>& scratch,
            TupleCount n, std::uint32_t key_col) {
    scratch.resize(buffer.size());
    std::uint64_t hist[8][256] = {};
    for (TupleCount i = 0; i < n; ++i) {
      const Value key = buffer[i * w_ + key_col];
      for (std::uint32_t d = 0; d < 8; ++d) {
        ++hist[d][(key >> (8 * d)) & 0xff];
      }
    }
    Value* src = buffer.data();
    Value* dst = scratch.data();
    for (std::uint32_t d = 0; d < 8; ++d) {
      // Skip digits where every key agrees (one bucket holds all n).
      bool constant = false;
      for (std::uint32_t v = 0; v < 256; ++v) {
        if (hist[d][v] == n) {
          constant = true;
          break;
        }
        if (hist[d][v] != 0) break;
      }
      if (constant) continue;
      std::uint64_t offset[256];
      std::uint64_t sum = 0;
      for (std::uint32_t v = 0; v < 256; ++v) {
        offset[v] = sum;
        sum += hist[d][v];
      }
      for (TupleCount i = 0; i < n; ++i) {
        const Value* t = src + i * w_;
        const std::uint32_t v = (t[key_col] >> (8 * d)) & 0xff;
        std::memcpy(dst + offset[v]++ * w_, t, w_ * sizeof(Value));
      }
      std::swap(src, dst);
    }
    if (src != buffer.data()) {
      std::memcpy(buffer.data(), src, n * w_ * sizeof(Value));
    }
  }

 private:
  std::uint32_t w_;
};

// Sorts the `n`-tuple run in `buffer` into the CompareTuples total order.
// Single-key inputs take the radix fast path (using `scratch`); the
// general case and equal-key fix-up use the in-place comparison sort.
void SortRun(std::vector<Value>& buffer, std::vector<Value>& scratch,
             TupleCount n, std::uint32_t w,
             std::span<const std::uint32_t> key_cols) {
  if (n < 2) return;
  TupleSorter cmp_sort(w, key_cols);
  if (key_cols.size() == 1 && n > 48) {
    const std::uint32_t key_col = key_cols[0];
    RadixSorter(w).Sort(buffer, scratch, n, key_col);
    if (w == 1) return;  // key == whole tuple; nothing left to order
    // Restore the full CompareTuples order inside equal-key runs.
    TupleCount i = 0;
    while (i < n) {
      TupleCount j = i + 1;
      const Value key = buffer[i * w + key_col];
      while (j < n && buffer[j * w + key_col] == key) ++j;
      if (j - i > 1) cmp_sort.Sort(buffer.data() + i * w, j - i);
      i = j;
    }
    return;
  }
  cmp_sort.Sort(buffer.data(), n);
}

// Reads up to min(M, planning budget) tuples at a time via
// block-granularity transfers, sorts each load in place, and writes it
// out as one sorted run per load. The budget is re-polled per block, so
// a mid-run shrink of the enforced memory budget closes the current run
// early (more, smaller runs — extra merge passes later) instead of
// overrunning; the floor is one block per run. Without an enforced
// budget the cap is exactly M and the charge profile is unchanged.
std::vector<FilePtr> FormRuns(const FileRange& input,
                              std::span<const std::uint32_t> key_cols) {
  Device* dev = input.file->device();
  const std::uint32_t w = input.width();
  const TupleCount m = dev->M();
  const TupleCount b = dev->B();

  std::vector<FilePtr> runs;
  FileReader reader(input);
  std::vector<Value> buffer;
  std::vector<Value> scratch;
  buffer.reserve(m * w);

  while (!reader.Done()) {
    buffer.clear();
    MemoryReservation res(&dev->gauge(), 0);
    TupleCount loaded = 0;
    TupleCount cap = std::max(std::min(m, dev->PlanningBudget()), b);
    while (!reader.Done() && loaded < cap) {
      const std::span<const Value> block = reader.NextBlock(cap - loaded);
      buffer.insert(buffer.end(), block.begin(), block.end());
      loaded += block.size() / w;
      res.Resize(loaded);
      cap = std::max(std::min(m, dev->PlanningBudget()), b);
    }

    SortRun(buffer, scratch, loaded, w, key_cols);

    FilePtr run = dev->NewFile(w);
    FileWriter writer(run);
    writer.AppendBlock(buffer);
    writer.Finish();
    runs.push_back(std::move(run));
  }
  return runs;
}

// The first two distinct comparison columns in CompareTuples order (key
// columns first, then the rest). The first difference along this
// sequence decides a comparison, so for w <= 2 two cached key values
// (plus a run-rank tiebreak) decide it completely, with no
// data-dependent branch — which is what makes the merge engines below
// fast on data where comparison outcomes are unpredictable.
struct CompareColumns {
  std::uint32_t col1 = 0;
  std::uint32_t col2 = 0;
  bool two_cols_decide = false;
};

CompareColumns FindCompareColumns(std::uint32_t w,
                                  std::span<const std::uint32_t> key_cols) {
  std::vector<std::uint32_t> order;
  for (std::uint32_t c : key_cols) {
    if (std::find(order.begin(), order.end(), c) == order.end()) {
      order.push_back(c);
    }
  }
  for (std::uint32_t c = 0; c < w; ++c) {
    if (std::find(order.begin(), order.end(), c) == order.end()) {
      order.push_back(c);
    }
  }
  CompareColumns cc;
  cc.col1 = order.empty() ? 0 : order[0];
  cc.col2 = order.size() > 1 ? order[1] : cc.col1;
  cc.two_cols_decide = order.size() <= 2;
  return cc;
}

// ---------------------------------------------------------------------
// k-way merge via a tournament loser tree (the engine for fan-ins past
// the cascade's limit). Each leaf holds a direct [cur, end) pointer
// pair into its run's current resident block plus the head's first key
// value, so the hot path — advance the winner, replay its root path —
// touches no cursor machinery: an advance is a pointer bump, and a
// replay comparison is one integer compare (full CompareTuples runs
// only on key ties). Replacing the winner costs exactly ceil(log2 k)
// comparisons, versus ~2 log2 k for a binary heap's pop+push. Blocks
// are fetched (and charged) lazily through the per-run FileReader
// exactly when the previous block is drained, so the charge profile is
// identical to tuple-at-a-time reads.
// ---------------------------------------------------------------------

class LoserTree {
 public:
  // `readers` supply each run's tuples; ties are broken by full-tuple
  // comparison and then by run index (matching the previous heap-based
  // merge, so merge output — and with it every downstream I/O count — is
  // unchanged).
  LoserTree(std::span<FileReader> readers, std::uint32_t w,
            std::span<const std::uint32_t> key_cols)
      : readers_(readers), w_(w), key_cols_(key_cols) {
    const CompareColumns cc = FindCompareColumns(w, key_cols);
    col1_ = cc.col1;
    col2_ = cc.col2;
    two_cols_decide_ = cc.two_cols_decide;

    k_ = 1;
    while (k_ < readers.size()) k_ <<= 1;
    leaves_.resize(k_);
    for (std::size_t i = 0; i < k_; ++i) {
      Leaf& leaf = leaves_[i];
      MarkExhausted(&leaf, static_cast<std::uint32_t>(i));
      if (i < readers_.size() && !readers_[i].Done()) {
        const std::span<const Value> block = readers_[i].NextBlock();
        SetHead(&leaf, static_cast<std::uint32_t>(i), block);
      }
    }
    tree_.resize(k_);
    if (k_ > 1) {
      winner_ = Build(1);
    } else {
      winner_ = 0;
    }
  }

  bool Done() const { return leaves_[winner_].tuple == nullptr; }

  const Value* Top() const { return leaves_[winner_].tuple; }

  // Advances the winning run and replays its path to the root.
  void PopAndRefill() {
    const std::uint32_t i = winner_;
    Leaf& leaf = leaves_[i];
    leaf.tuple += w_;
    if (leaf.tuple == leaf.end) [[unlikely]] {
      // Block drained: fetch (and charge) the run's next block, or mark
      // the run exhausted. Runs once per B tuples — off the hot path.
      if (readers_[i].Done()) {
        MarkExhausted(&leaf, i);
      } else {
        SetHead(&leaf, i, readers_[i].NextBlock());
      }
    } else {
      leaf.key1 = leaf.tuple[col1_];
      leaf.key2 = leaf.tuple[col2_];
    }
    std::uint32_t cur = i;
    for (std::size_t node = (k_ + i) >> 1; node >= 1; node >>= 1) {
      const std::uint32_t other = tree_[node];
      const bool b = Beats(other, cur);
      tree_[node] = b ? cur : other;
      cur = b ? other : cur;
    }
    winner_ = cur;
  }

 private:
  struct Leaf {
    const Value* tuple;  // nullptr = run exhausted (+infinity)
    const Value* end;    // end of the resident block's span
    Value key1;          // cached first comparison column of `tuple`
    Value key2;          // cached second comparison column of `tuple`
    std::uint64_t rank;  // run index; exhausted runs rank after all live
  };

  void SetHead(Leaf* leaf, std::uint32_t i, std::span<const Value> block) {
    leaf->tuple = block.data();
    leaf->end = block.data() + block.size();
    leaf->key1 = leaf->tuple[col1_];
    leaf->key2 = leaf->tuple[col2_];
    leaf->rank = i;
  }

  // Exhausted leaves sort after every live one: +infinity cached keys,
  // and a rank past every live run so a live head with all-max keys
  // still wins the tie.
  void MarkExhausted(Leaf* leaf, std::uint32_t i) {
    leaf->tuple = nullptr;
    leaf->end = nullptr;
    leaf->key1 = ~Value{0};
    leaf->key2 = ~Value{0};
    leaf->rank = k_ + i;
  }

  // True iff leaf `a`'s head precedes leaf `b`'s in the merge order.
  bool Beats(std::uint32_t a, std::uint32_t b) const {
    const Leaf& la = leaves_[a];
    const Leaf& lb = leaves_[b];
    const bool lt1 = la.key1 < lb.key1;
    const bool eq1 = la.key1 == lb.key1;
    const bool lt2 = la.key2 < lb.key2;
    const bool eq2 = la.key2 == lb.key2;
    if (two_cols_decide_) {
      // Equal cached keys mean equal tuples; rank settles it. Pure
      // arithmetic, no data-dependent branch.
      return lt1 | (eq1 & (lt2 | (eq2 & (la.rank < lb.rank))));
    }
    if (eq1 & eq2) [[unlikely]] {
      return SlowBeats(a, b);
    }
    return lt1 | (eq1 & lt2);
  }

  // Full comparison for >2-column tuples whose cached keys tie.
  bool SlowBeats(std::uint32_t a, std::uint32_t b) const {
    const Leaf& la = leaves_[a];
    const Leaf& lb = leaves_[b];
    if (la.tuple == nullptr) return false;
    if (lb.tuple == nullptr) return true;
    const int c = CompareTuples(la.tuple, lb.tuple, w_, key_cols_);
    if (c != 0) return c < 0;
    return a < b;
  }

  // Plays the subtree under `node`, recording losers; returns the winner.
  std::uint32_t Build(std::size_t node) {
    std::uint32_t a, b;
    if (2 * node >= k_) {
      a = static_cast<std::uint32_t>(2 * node - k_);
      b = static_cast<std::uint32_t>(2 * node - k_ + 1);
    } else {
      a = Build(2 * node);
      b = Build(2 * node + 1);
    }
    if (Beats(a, b)) {
      tree_[node] = b;
      return a;
    }
    tree_[node] = a;
    return b;
  }

  std::span<FileReader> readers_;
  std::uint32_t w_;
  std::span<const std::uint32_t> key_cols_;
  std::uint32_t col1_ = 0;
  std::uint32_t col2_ = 0;
  bool two_cols_decide_ = false;
  std::size_t k_ = 0;
  std::vector<Leaf> leaves_;
  std::vector<std::uint32_t> tree_;  // tree_[node] = losing leaf at node
  std::uint32_t winner_ = 0;
};

// ---------------------------------------------------------------------
// Binary merge cascade, the engine for fan-ins up to kCascadeMaxFanIn.
//
// Any selection-based k-way merge (heap, loser tree, flat argmin) pays a
// serial dependency per output tuple: the winner's replacement key must
// be loaded and compared against the other heads before the next winner
// is known. Measured on merge workloads, that chain — not data movement
// — is >90% of wall time. The cascade breaks it by merging pairwise
// through a balanced binary tree of streaming nodes: each node's refill
// is a tight two-way merge whose comparison feeds only that node's two
// cursors, so steps at different nodes (and successive steps whose
// branchless selects retire out of order) overlap in the pipeline.
//
// Each internal node stages B tuples; leaves expose file blocks
// zero-copy via FileReader::NextBlock(). The staging therefore totals
// (k-1)*B tuples — strictly less than the (k+1)*B-block reservation the
// merge already holds — and is implementation scratch of the same kind
// as the run-formation sorter's radix buffer: invisible to the cost
// model, which sees the identical sequential block reads per run and
// sequential block writes of the merged output.
//
// Order: a node takes from its right child only when the right head is
// strictly smaller (first difference along the CompareColumns sequence,
// full CompareTuples on two-column ties of wider tuples). Left-on-ties
// makes the cascade stable over the leaf order, which is the run order
// — exactly the CompareTuples-then-run-index order of the other
// engines, so merge output and every downstream I/O count are
// unchanged.
//
// The width template parameter (0 = generic) turns the per-tuple copy
// and stride into compile-time constants for the common narrow widths.
// ---------------------------------------------------------------------

constexpr std::size_t kCascadeMaxFanIn = 16;

template <std::uint32_t W>
class CascadeMerge {
 public:
  CascadeMerge(std::span<FileReader> readers, std::uint32_t w,
               std::span<const std::uint32_t> key_cols, TupleCount buf_tuples)
      : w_(w), key_cols_(key_cols) {
    assert(W == 0 || W == w);
    const CompareColumns cc = FindCompareColumns(w, key_cols);
    col1_ = cc.col1;
    col2_ = cc.col2;
    two_cols_decide_ = cc.two_cols_decide;
    nodes_.reserve(2 * readers.size());
    for (FileReader& r : readers) {
      nodes_.emplace_back();
      nodes_.back().reader = &r;
    }
    // Pair up streams left-to-right until one remains; a breadth-first
    // build keeps the tree balanced and preserves run order under the
    // stable left-on-ties rule.
    std::vector<std::size_t> level(nodes_.size());
    for (std::size_t i = 0; i < level.size(); ++i) level[i] = i;
    while (level.size() > 1) {
      std::vector<std::size_t> next;
      for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
        nodes_.emplace_back();
        Node& n = nodes_.back();
        n.lc = level[i];
        n.rc = level[i + 1];
        n.buf.resize(static_cast<std::size_t>(buf_tuples) * w_);
        next.push_back(nodes_.size() - 1);
      }
      if (level.size() % 2 == 1) next.push_back(level.back());
      level = std::move(next);
    }
    root_ = level.front();
  }

  // The next span of merged tuples (empty once the merge is finished).
  // The span is valid until the next Pull().
  std::span<const Value> Pull() {
    Node& root = nodes_[root_];
    if (!root.exhausted) Refill(&root);
    return {root.cur, static_cast<std::size_t>(root.end - root.cur)};
  }

 private:
  struct Node {
    std::size_t lc = 0;
    std::size_t rc = 0;
    FileReader* reader = nullptr;  // leaf streams read blocks zero-copy
    std::vector<Value> buf;        // internal nodes stage merged tuples
    const Value* cur = nullptr;
    const Value* end = nullptr;
    bool exhausted = false;
  };

  void Refill(Node* n) {
    if (n->reader != nullptr) {
      if (n->reader->Done()) {
        n->cur = n->end = nullptr;
        n->exhausted = true;
        return;
      }
      const std::span<const Value> block = n->reader->NextBlock();
      n->cur = block.data();
      n->end = block.data() + block.size();
      return;
    }
    const std::uint32_t w = W != 0 ? W : w_;
    Node* const a = &nodes_[n->lc];
    Node* const b = &nodes_[n->rc];
    Value* o = n->buf.data();
    Value* const oe = o + n->buf.size();
    while (o != oe) {
      if (a->cur == a->end && !a->exhausted) Refill(a);
      if (b->cur == b->end && !b->exhausted) Refill(b);
      const bool lv = a->cur != a->end;
      const bool rv = b->cur != b->end;
      if (lv & rv) {
        const std::size_t steps =
            std::min({static_cast<std::size_t>(oe - o),
                      static_cast<std::size_t>(a->end - a->cur),
                      static_cast<std::size_t>(b->end - b->cur)}) /
            w;
        if (two_cols_decide_) {
          o = MergeSteps<true>(steps, a, b, o);
        } else {
          o = MergeSteps<false>(steps, a, b, o);
        }
      } else if (lv) {
        const std::size_t c = std::min<std::size_t>(oe - o, a->end - a->cur);
        std::memcpy(o, a->cur, c * sizeof(Value));
        o += c;
        a->cur += c;
      } else if (rv) {
        const std::size_t c = std::min<std::size_t>(oe - o, b->end - b->cur);
        std::memcpy(o, b->cur, c * sizeof(Value));
        o += c;
        b->cur += c;
      } else {
        break;
      }
    }
    n->cur = n->buf.data();
    n->end = o;
    n->exhausted = o == n->buf.data();
  }

  // The unchecked hot loop: `steps` merge steps that can touch neither a
  // buffer boundary nor the output end. Branch-free for two-column
  // orders; wider tuples branch only on the (rare) two-column tie.
  template <bool kTwoColsDecide>
  Value* MergeSteps(std::size_t steps, Node* a, Node* b, Value* o) {
    const std::uint32_t w = W != 0 ? W : w_;
    const Value* L = a->cur;
    const Value* R = b->cur;
    while (steps-- > 0) {
      const Value lk1 = L[col1_], lk2 = L[col2_];
      const Value rk1 = R[col1_], rk2 = R[col2_];
      bool take_right;
      if constexpr (kTwoColsDecide) {
        take_right = (rk1 < lk1) | ((rk1 == lk1) & (rk2 < lk2));
      } else {
        if ((rk1 == lk1) & (rk2 == lk2)) [[unlikely]] {
          take_right = CompareTuples(R, L, w, key_cols_) < 0;
        } else {
          take_right = (rk1 < lk1) | ((rk1 == lk1) & (rk2 < lk2));
        }
      }
      const Value* t = take_right ? R : L;
      for (std::uint32_t c = 0; c < w; ++c) o[c] = t[c];
      o += w;
      L = take_right ? L : L + w;
      R = take_right ? R + w : R;
    }
    a->cur = L;
    b->cur = R;
    return o;
  }

  std::uint32_t w_;
  std::span<const std::uint32_t> key_cols_;
  std::uint32_t col1_ = 0;
  std::uint32_t col2_ = 0;
  bool two_cols_decide_ = false;
  std::vector<Node> nodes_;
  std::size_t root_ = 0;
};

// Merges `group` sorted runs into one through a width-specialized
// cascade. Charges identical I/O to any tuple-at-a-time merge: each run
// is read sequentially block by block, the output written sequentially.
template <std::uint32_t W>
FilePtr MergeCascade(Device* dev, std::span<const FilePtr> group,
                     std::uint32_t w,
                     std::span<const std::uint32_t> key_cols) {
  std::vector<FileReader> readers;
  readers.reserve(group.size());
  TupleCount total = 0;
  for (const FilePtr& f : group) {
    total += f->size();
    readers.emplace_back(FileRange(f));
  }

  // One block per input run plus one output block resident in memory.
  MemoryReservation res(&dev->gauge(), (group.size() + 1) * dev->B());

  CascadeMerge<W> cascade(readers, w, key_cols, dev->B());

  FilePtr out = dev->NewFile(w);
  out->Reserve(total);
  FileWriter writer(out);
  for (std::span<const Value> s = cascade.Pull(); !s.empty();
       s = cascade.Pull()) {
    writer.AppendBlock(s);
  }
  writer.Finish();
  return out;
}

// Merges `group` sorted runs into one using `Engine` for winner
// selection. The engines produce identical output (both implement the
// CompareTuples-then-run-index merge order) and charge identical I/O
// (each run is read sequentially block by block, the output written
// sequentially), so engine choice is invisible to the cost model.
template <typename Engine>
FilePtr MergeWithEngine(Device* dev, std::span<const FilePtr> group,
                        std::uint32_t w,
                        std::span<const std::uint32_t> key_cols) {
  std::vector<FileReader> readers;
  readers.reserve(group.size());
  TupleCount total = 0;
  for (const FilePtr& f : group) {
    total += f->size();
    readers.emplace_back(FileRange(f));
  }

  // One block per input run plus one output block resident in memory.
  MemoryReservation res(&dev->gauge(), (group.size() + 1) * dev->B());

  Engine tree(readers, w, key_cols);

  FilePtr out = dev->NewFile(w);
  out->Reserve(total);
  FileWriter writer(out);
  const std::size_t out_cap = static_cast<std::size_t>(dev->B()) * w;
  std::vector<Value> out_block(out_cap);
  Value* const out_base = out_block.data();
  Value* const out_end = out_base + out_cap;
  Value* out_ptr = out_base;
  while (!tree.Done()) {
    const Value* t = tree.Top();
    for (std::uint32_t c = 0; c < w; ++c) out_ptr[c] = t[c];
    out_ptr += w;
    tree.PopAndRefill();
    if (out_ptr == out_end) {
      writer.AppendBlock(out_block);
      out_ptr = out_base;
    }
  }
  writer.AppendBlock({out_base, static_cast<std::size_t>(out_ptr - out_base)});
  writer.Finish();
  return out;
}

// Merges `group` sorted runs into one. Small fan-ins go through the
// binary cascade (no per-tuple selection dependency); larger fan-ins use
// the loser tree, whose O(log k) replay scales better than the cascade's
// log k staging copies once k is large. Both engines implement the same
// merge order and the same charge profile, so the dispatch is invisible
// to both output bytes and I/O counts.
FilePtr MergeGroup(Device* dev, std::span<const FilePtr> group,
                   std::uint32_t w, std::span<const std::uint32_t> key_cols) {
  if (group.size() <= kCascadeMaxFanIn) {
    switch (w) {
      case 1:
        return MergeCascade<1>(dev, group, w, key_cols);
      case 2:
        return MergeCascade<2>(dev, group, w, key_cols);
      case 3:
        return MergeCascade<3>(dev, group, w, key_cols);
      case 4:
        return MergeCascade<4>(dev, group, w, key_cols);
      default:
        return MergeCascade<0>(dev, group, w, key_cols);
    }
  }
  return MergeWithEngine<LoserTree>(dev, group, w, key_cols);
}

void Checkpoint(SortManifest* manifest, std::vector<FilePtr> runs,
                std::uint64_t passes) {
  if (manifest == nullptr) return;
  manifest->valid = true;
  manifest->passes_done = passes;
  manifest->runs = std::move(runs);
}

// The sort engine behind ExternalSort / TryExternalSort. Raises
// StatusException on unrecoverable faults, after checkpointing the
// completed runs into `manifest` (when given) so a caller can resume.
FilePtr SortImpl(const FileRange& input,
                 std::span<const std::uint32_t> key_cols,
                 SortManifest* manifest, const SortOptions& options) {
  Device* dev = input.file->device();
  ScopedIoTag tag(dev, "sort");
  trace::Span span(dev, "sort");
  const std::uint32_t w = input.width();

  const bool resuming = manifest != nullptr && manifest->valid;
  if (input.empty() && !resuming) return dev->NewFile(w);

  std::vector<FilePtr> runs;
  std::uint64_t passes = 0;
  if (resuming) {
    // Resume from the manifest's completed runs: run formation and any
    // completed merge passes are not redone.
    runs = manifest->runs;
    passes = manifest->passes_done;
    trace::Count(dev, "sort_resumes", 1);
    if (runs.empty()) {
      manifest->valid = false;
      return dev->NewFile(w);
    }
  } else {
    trace::Span run_span(dev, "sort.runs");
    runs = FormRuns(input, key_cols);
    run_span.Count("runs_formed", runs.size());
    if (metrics::Registry* reg = dev->metrics()) [[unlikely]] {
      metrics::Histogram* hist = reg->GetHistogram("emjoin_sort_run_tuples");
      for (const FilePtr& run : runs) hist->Record(run->size());
    }
    Checkpoint(manifest, runs, 0);
  }

  metrics::Histogram* fanin_hist = nullptr;
  if (metrics::Registry* reg = dev->metrics()) [[unlikely]] {
    fanin_hist = reg->GetHistogram("emjoin_sort_merge_fanin");
  }
  while (runs.size() > 1) {
    trace::Span pass_span(dev, "sort.merge_pass");
    span.Count("merge_passes", 1);
    if (fanin_hist != nullptr) [[unlikely]] {
      dev->metrics()->GetCounter("emjoin_sort_merge_passes_total")->Add(1);
    }
    // Fan-in is re-planned per pass against the current budget: a
    // shrunken budget lowers the fan-in (floor 2), trading extra passes
    // — the logarithmic factor the bounds suppress — for staying inside
    // the enforced memory. Fault-free this is exactly max(2, M/B).
    const TupleCount budget =
        std::min<TupleCount>(dev->M(), dev->PlanningBudget());
    std::uint64_t fan_in = std::max<std::uint64_t>(2, budget / dev->B());
    if (dev->gauge().enforcing()) {
      // The merge holds fan_in input blocks plus one output block
      // resident; under an enforced budget the fan-in must leave that
      // headroom or the reservation itself would trip enforcement.
      // (Unenforced, M/B inputs + 1 output is the classic plan and the
      // gauge merely records the M+B peak.)
      fan_in = std::max<std::uint64_t>(
          2, std::min<std::uint64_t>(fan_in, budget / dev->B() - 1));
    }
    std::vector<FilePtr> next;
    for (std::size_t i = 0; i < runs.size(); i += fan_in) {
      const std::size_t end = std::min(runs.size(), i + fan_in);
      if (end - i == 1) {
        next.push_back(runs[i]);
        continue;
      }
      pass_span.Count("merge_groups", 1);
      pass_span.Count("merge_fanin", end - i);
      if (fanin_hist != nullptr) [[unlikely]] fanin_hist->Record(end - i);
      const std::span<const FilePtr> group(runs.data() + i, end - i);
      std::uint32_t attempts = 0;
      for (;;) {
        try {
          if (attempts == 0) {
            next.push_back(MergeGroup(dev, group, w, key_cols));
          } else {
            // Re-merge of an interrupted group. Only this group is
            // redone — completed groups and runs persist — and the
            // rework is charged under the recovery tag.
            ScopedIoTag recovery(dev, "recovery");
            trace::Count(dev, "sort_group_retries", 1);
            next.push_back(MergeGroup(dev, group, w, key_cols));
          }
          break;
        } catch (const StatusException& e) {
          const StatusCode code = e.status().code();
          const bool transient = code == StatusCode::kIoError ||
                                 code == StatusCode::kDataLoss;
          if (!transient || attempts >= options.group_retries) {
            // Checkpoint what survived: this pass's merged groups plus
            // the runs not yet consumed (including this group's inputs,
            // which are intact — only the partial output is dropped).
            std::vector<FilePtr> remaining = next;
            remaining.insert(remaining.end(), runs.begin() + i, runs.end());
            Checkpoint(manifest, std::move(remaining), passes);
            throw;
          }
          ++attempts;
        }
      }
    }
    runs = std::move(next);
    ++passes;
    Checkpoint(manifest, runs, passes);
  }
  if (manifest != nullptr) manifest->valid = false;  // consumed
  return runs.front();
}

}  // namespace

std::uint64_t MergePassesFor(const Device& device, TupleCount n) {
  const TupleCount m = device.M();
  std::uint64_t runs = (n + m - 1) / m;
  const std::uint64_t fan_in =
      std::max<std::uint64_t>(2, device.M() / device.B());
  std::uint64_t passes = 0;
  while (runs > 1) {
    runs = (runs + fan_in - 1) / fan_in;
    ++passes;
  }
  return passes;
}

FilePtr ExternalSort(const FileRange& input,
                     std::span<const std::uint32_t> key_cols) {
  return SortImpl(input, key_cols, nullptr, SortOptions{});
}

Result<FilePtr> TryExternalSort(const FileRange& input,
                                std::span<const std::uint32_t> key_cols,
                                SortManifest* manifest,
                                const SortOptions& options) {
  return CatchStatus(
      [&] { return SortImpl(input, key_cols, manifest, options); });
}

}  // namespace emjoin::extmem
