#include "extmem/sorter.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace emjoin::extmem {

int CompareTuples(const Value* a, const Value* b, std::uint32_t width,
                  std::span<const std::uint32_t> key_cols) {
  for (std::uint32_t c : key_cols) {
    if (a[c] != b[c]) return a[c] < b[c] ? -1 : 1;
  }
  for (std::uint32_t c = 0; c < width; ++c) {
    if (a[c] != b[c]) return a[c] < b[c] ? -1 : 1;
  }
  return 0;
}

namespace {

// Sorts up to M tuples at a time into run files.
std::vector<FilePtr> FormRuns(const FileRange& input,
                              std::span<const std::uint32_t> key_cols) {
  Device* dev = input.file->device();
  const std::uint32_t w = input.width();
  const TupleCount m = dev->M();

  std::vector<FilePtr> runs;
  FileReader reader(input);
  std::vector<Value> buffer;
  buffer.reserve(m * w);

  while (!reader.Done()) {
    buffer.clear();
    MemoryReservation res(&dev->gauge(), 0);
    TupleCount loaded = 0;
    while (!reader.Done() && loaded < m) {
      const Value* t = reader.Next();
      buffer.insert(buffer.end(), t, t + w);
      ++loaded;
    }
    res.Resize(loaded);

    // Sort tuple indices, then emit in order.
    std::vector<TupleCount> idx(loaded);
    for (TupleCount i = 0; i < loaded; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](TupleCount x, TupleCount y) {
      return CompareTuples(buffer.data() + x * w, buffer.data() + y * w, w,
                           key_cols) < 0;
    });

    FilePtr run = dev->NewFile(w);
    FileWriter writer(run);
    for (TupleCount i : idx) {
      writer.Append({buffer.data() + i * w, w});
    }
    writer.Finish();
    runs.push_back(std::move(run));
  }
  return runs;
}

// Merges `group` sorted runs into one.
FilePtr MergeGroup(Device* dev, std::span<const FilePtr> group,
                   std::uint32_t w, std::span<const std::uint32_t> key_cols) {
  struct HeapEntry {
    const Value* tuple;
    std::size_t source;
  };
  auto greater = [&](const HeapEntry& a, const HeapEntry& b) {
    const int c = CompareTuples(a.tuple, b.tuple, w, key_cols);
    if (c != 0) return c > 0;
    return a.source > b.source;
  };

  std::vector<FileReader> readers;
  readers.reserve(group.size());
  for (const FilePtr& f : group) readers.emplace_back(FileRange(f));

  // One block per input run plus one output block resident in memory.
  MemoryReservation res(&dev->gauge(),
                        (group.size() + 1) * dev->B());

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(greater)>
      heap(greater);
  for (std::size_t i = 0; i < readers.size(); ++i) {
    if (!readers[i].Done()) heap.push({readers[i].Next(), i});
  }

  FilePtr out = dev->NewFile(w);
  FileWriter writer(out);
  while (!heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    writer.Append({top.tuple, w});
    if (!readers[top.source].Done()) {
      heap.push({readers[top.source].Next(), top.source});
    }
  }
  writer.Finish();
  return out;
}

}  // namespace

std::uint64_t MergePassesFor(const Device& device, TupleCount n) {
  const TupleCount m = device.M();
  std::uint64_t runs = (n + m - 1) / m;
  const std::uint64_t fan_in =
      std::max<std::uint64_t>(2, device.M() / device.B());
  std::uint64_t passes = 0;
  while (runs > 1) {
    runs = (runs + fan_in - 1) / fan_in;
    ++passes;
  }
  return passes;
}

FilePtr ExternalSort(const FileRange& input,
                     std::span<const std::uint32_t> key_cols) {
  Device* dev = input.file->device();
  ScopedIoTag tag(dev, "sort");
  const std::uint32_t w = input.width();

  if (input.empty()) return dev->NewFile(w);

  std::vector<FilePtr> runs = FormRuns(input, key_cols);
  const std::uint64_t fan_in = std::max<std::uint64_t>(2, dev->M() / dev->B());

  while (runs.size() > 1) {
    std::vector<FilePtr> next;
    for (std::size_t i = 0; i < runs.size(); i += fan_in) {
      const std::size_t end = std::min(runs.size(), i + fan_in);
      if (end - i == 1) {
        next.push_back(runs[i]);
      } else {
        next.push_back(MergeGroup(
            dev, std::span<const FilePtr>(runs.data() + i, end - i), w,
            key_cols));
      }
    }
    runs = std::move(next);
  }
  return runs.front();
}

}  // namespace emjoin::extmem
