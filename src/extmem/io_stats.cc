#include "extmem/io_stats.h"

#include <sstream>

namespace emjoin::extmem {

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "reads=" << block_reads << " writes=" << block_writes
     << " total=" << total();
  return os.str();
}

}  // namespace emjoin::extmem
